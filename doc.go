// Package drugtree is the root of the DrugTree reproduction: a
// protein–ligand data analysis system that overlays ligand screening
// data on a protein-motivated phylogenetic tree, integrates data from
// heterogeneous remote sources, and optimizes interactive tree
// queries for mobile clients.
//
// This package holds only the repository-level benchmark harness
// (bench_test.go); the library lives under internal/ and the
// executables under cmd/. See README.md for the map.
package drugtree
