# DrugTree build & verification entry points.
#
# `make check` is the default gate: vet + full test suite + the race
# detector over the packages with concurrent execution paths (the
# parallel query executor and the engine that serves it).

GO ?= go

.PHONY: all build test race race-replication vet vet-compat lint bench bench-smoke chaos chaos-replica overload torture ingest check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency certificate: differential, cancellation, and stress
# tests under the race detector — the parallel query executor, the
# engine serving it, the scatter-gather shard coordinator (fan-out
# goroutines, mid-gather cancellation, failover), the replica sets
# (WAL shipping, lag-bounded routing, promotion), and the resilience
# layer (sources hammered by concurrent fetchers, health map read
# during sync, mobile sessions).
race:
	$(GO) test -race ./internal/query/... ./internal/core/... \
		./internal/shard/... ./internal/replica/... \
		./internal/source/... ./internal/integrate/... ./internal/mobile/... \
		./internal/admission/...
	$(GO) test -race -run 'TestRunT9|TestRunT12' ./internal/experiments/

vet:
	$(GO) vet ./...

# Vet-driver compatibility: the full ten-analyzer suite under
# `go vet -vettool`, one invocation per package with cross-package
# facts shipped through the driver's .vetx side files. Exercises a
# different code path than `make lint` (per-package configs, fact
# import/export, facts-only dependency invocations), so both are
# gated.
vet-compat:
	$(GO) build -o bin/drugtree-lint ./cmd/drugtree-lint
	$(GO) vet -vettool=$(CURDIR)/bin/drugtree-lint ./...
	@echo "vet-compat: all analyzers clean under the vet driver"

# Replication-layer race certificate with a wedge watchdog: the
# replica sets and the shard coordinator are the packages where a
# lock-order bug manifests as a silent wedge rather than a failure,
# so the run carries an explicit -timeout — if anything deadlocks,
# the Go test runner panics at the deadline and dumps every
# goroutine's stack, turning a hung CI job into a readable report.
race-replication:
	$(GO) test -race -count=1 -timeout=180s ./internal/replica/... ./internal/shard/...

# Static-analysis gate: go vet, then the drugtree analyzer suite
# (clockcheck, ctxcheck, fscheck, lockcheck, spawncheck, wrapcheck,
# plus the fact-propagating lockorder, errcmp, atomiccheck, sendcheck
# — see DESIGN.md "Static-analysis gates"). staticcheck runs when a
# pinned binary is available; the container image does not bake one in
# and the build is offline, so it is gated rather than required.
# Baseline (2026-08-08): 0 findings over all ten analyzers,
# suppressions ctxcheck 1/1 (mobile/server.go async prefetch root)
# and lockcheck 1/1 (store/db.go checkpoint fsync under db.mu).
STATICCHECK ?= staticcheck
STATICCHECK_VERSION ?= 2024.1.1

lint: vet
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		echo "staticcheck ($$($(STATICCHECK) -version 2>/dev/null || echo unpinned), want $(STATICCHECK_VERSION))"; \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck not installed; skipping (pin $(STATICCHECK_VERSION) when available)"; \
	fi
	$(GO) run ./cmd/drugtree-lint ./...

# One-iteration smoke over every benchmark in the tree: -benchtime=1x
# compiles and executes each Benchmark* once, so a bit-rotted
# benchmark (stale query, renamed helper, broken setup) fails the gate
# without paying for real measurement. Real numbers come from `make
# bench` and the experiment tables.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Parallel-executor microbenchmarks plus the experiment tables.
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchmem ./internal/query/...
	$(GO) test -run xxx -bench 'BenchmarkT7Parallelism' -benchmem .

# The T8 chaos experiment: scripted outage/brownout/error-burst
# timeline with the resilience stack on vs off, plus its gate test.
chaos:
	$(GO) test -run TestRunT8 -v ./internal/experiments/
	$(GO) run ./cmd/drugtree-bench -exp T8

# The T12 replication chaos experiment: scripted leader/follower
# kill-restart sequence over a live read/write workload, plus its gate
# test (zero failed reads, bounded staleness, promotion measured,
# quiesced differential).
chaos-replica:
	$(GO) test -run TestRunT12 -v ./internal/experiments/
	$(GO) run ./cmd/drugtree-bench -exp T12

# The T9 overload experiment: Poisson load sweep past saturation,
# deadline-aware shedding vs an unprotected queue, plus its gate test
# under the race detector.
overload:
	$(GO) test -race -run TestRunT9 -v ./internal/experiments/
	$(GO) run ./cmd/drugtree-bench -exp T9

# The T13 crash-point torture experiment: a deterministic FaultFS
# power-cuts every persistence path (store WAL/snapshot, shard
# MANIFEST, replica seed/ship) at every mutating operation, under
# every -wal-sync policy and three fault mixes (clean cut, torn write
# + cut, failed fsync + cut). The gate test re-runs the full matrix
# and demands zero durability violations over >= 200 distinct crash
# points; a failure prints the seed and crash-point index to replay
# it. The meta-test proves the harness has teeth by re-running with
# directory fsync disabled and demanding violations. The -timeout is
# the wedge watchdog: a crash point that hangs recovery dumps stacks
# instead of idling.
torture:
	$(GO) test -count=1 -timeout=300s -run 'TestRunT13|TestT13HarnessHasTeeth' -v ./internal/experiments/
	$(GO) run ./cmd/drugtree-bench -exp T13

# The T14 live-ingest experiment under the race detector: snapshot
# isolation while resync commits land (zero torn reads across atomic
# generation flips), the incrementally maintained subtree overlay
# bit-identical to a from-scratch recompute over 120 seeded delta
# batches, per-statement p99 right after a commit within 1.5x of
# quiescent, and a leak-free quiescent state (zero pinned snapshots,
# zero unswept dead versions). Deterministic — a red run prints the
# seed and the failing gate.
ingest:
	$(GO) test -race -count=1 -timeout=300s -run TestRunT14 -v ./internal/experiments/
	$(GO) run ./cmd/drugtree-bench -exp T14

check: lint vet-compat build test bench-smoke race chaos-replica

clean:
	$(GO) clean ./...
