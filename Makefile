# DrugTree build & verification entry points.
#
# `make check` is the default gate: vet + full test suite + the race
# detector over the packages with concurrent execution paths (the
# parallel query executor and the engine that serves it).

GO ?= go

.PHONY: all build test race vet bench check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel executor's thread-safety certificate: differential,
# cancellation, and stress tests under the race detector.
race:
	$(GO) test -race ./internal/query/... ./internal/core/...

vet:
	$(GO) vet ./...

# Parallel-executor microbenchmarks plus the experiment tables.
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchmem ./internal/query/...
	$(GO) test -run xxx -bench 'BenchmarkT7Parallelism' -benchmem .

check: vet build test race

clean:
	$(GO) clean ./...
