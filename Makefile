# DrugTree build & verification entry points.
#
# `make check` is the default gate: vet + full test suite + the race
# detector over the packages with concurrent execution paths (the
# parallel query executor and the engine that serves it).

GO ?= go

.PHONY: all build test race vet bench chaos check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency certificate: differential, cancellation, and stress
# tests under the race detector — the parallel query executor, the
# engine serving it, and the resilience layer (sources hammered by
# concurrent fetchers, health map read during sync, mobile sessions).
race:
	$(GO) test -race ./internal/query/... ./internal/core/... \
		./internal/source/... ./internal/integrate/... ./internal/mobile/...

vet:
	$(GO) vet ./...

# Parallel-executor microbenchmarks plus the experiment tables.
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallel' -benchmem ./internal/query/...
	$(GO) test -run xxx -bench 'BenchmarkT7Parallelism' -benchmem .

# The T8 chaos experiment: scripted outage/brownout/error-burst
# timeline with the resilience stack on vs off, plus its gate test.
chaos:
	$(GO) test -run TestRunT8 -v ./internal/experiments/
	$(GO) run ./cmd/drugtree-bench -exp T8

check: vet build test race

clean:
	$(GO) clean ./...
