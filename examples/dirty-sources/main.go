// Dirty sources: the integration problem the mediator exists for.
// The activity service returns protein references that do not match
// the protein service's accessions exactly — case changes, stray
// punctuation, typos — and the annotation service is flaky on top.
// This example corrupts a synthetic dataset the way real federated
// sources disagree, runs the import, and shows which resolution tier
// (exact / normalized / fuzzy) absorbed how much of the noise.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func main() {
	gen := datagen.DefaultConfig()
	gen.Seed = 11
	gen.NumFamilies = 4
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 20
	gen.ActivityDensity = 0.4
	ds, err := datagen.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}

	// Corrupt the cross-source references: 40% of activity records
	// arrive with cosmetic noise (case/punctuation), 20% with a real
	// typo, 5% unsalvageable garbage.
	rng := rand.New(rand.NewSource(99))
	dirty := 0
	for i := range ds.Activities {
		r := rng.Float64()
		switch {
		case r < 0.05:
			ds.Activities[i].ProteinID = "???" // unresolvable
			dirty++
		case r < 0.25:
			ds.Activities[i].ProteinID = integrate.CorruptID(rng, ds.Activities[i].ProteinID, 1)
			dirty++
		case r < 0.65:
			ds.Activities[i].ProteinID = integrate.CorruptID(rng, ds.Activities[i].ProteinID, 0)
			dirty++
		}
	}
	fmt.Printf("dataset: %d activities, %d with dirty protein references\n",
		len(ds.Activities), dirty)

	// Serve it from flaky simulated services (30% transient failures —
	// the retrying fetch path absorbs them).
	bundle := source.NewBundle(ds, netsim.Profile4G, 7, true)
	for _, s := range bundle.All() {
		s.SetFailureRate(0.3)
	}

	db, err := store.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	st, err := integrate.NewImporter(db, bundle).ImportAll(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	total := bundle.TotalStats()
	fmt.Printf("\nimport: %d rows in, %d rejected as unresolvable\n", st.RowsImported, st.RowsRejected)
	fmt.Printf("reference resolution: exact=%d normalized=%d fuzzy=%d\n",
		st.ResolvedExact, st.ResolvedNorm, st.ResolvedFuzzy)
	fmt.Printf("network: %d requests (%d retried after transient failures), %v modelled time\n",
		total.Requests, total.Failures, total.Elapsed.Round(1e6))

	// The integrated database is clean: every activity now references
	// a canonical accession, so the overlay just works.
	eng, err := core.New(db, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sum, err := eng.SubtreeActivity(context.Background(), eng.Root().Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverlay after integration: %d activities over %d ligands across %d proteins (mean pKd %.2f)\n",
		sum.Activities, sum.DistinctLig, sum.Proteins, sum.MeanAff)
}
