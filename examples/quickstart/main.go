// Quickstart: generate a small synthetic dataset, integrate it from
// the simulated remote sources, build the DrugTree engine, and run a
// few DTQL queries — the five-minute tour of the system.
package main

import (
	"context"
	"fmt"
	"log"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func main() {
	// 1. Generate a seeded synthetic dataset: 4 protein families
	//    diversified along simulated evolution, plus ligands and
	//    family-correlated binding activities.
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 4
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 25
	ds, err := datagen.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d proteins, %d ligands, %d activities\n",
		len(ds.Proteins), len(ds.Ligands), len(ds.Activities))

	// 2. Stand up the four simulated remote sources behind a 4G link
	//    model and integrate them into a local embedded store.
	db, err := store.Open("") // in-memory; pass a directory for WAL persistence
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	bundle := source.NewBundle(ds, netsim.Profile4G, 1, true)
	st, err := integrate.NewImporter(db, bundle).ImportAll(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated %d rows; modelled network time %v\n",
		st.RowsImported, st.Elapsed.Round(1e6))

	// 3. Build the engine: phylogenetic tree from the sequences,
	//    materialized tree relation, optimizing query engine, cache.
	eng, err := core.New(db, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %d nodes, %d leaves, height %.3f\n\n",
		eng.Tree().Len(), len(eng.Tree().Leaves()), eng.Tree().Height())

	// 4. DTQL queries.
	for _, q := range []string{
		"SELECT family, COUNT(*) AS n FROM proteins GROUP BY family ORDER BY family",
		`SELECT p.accession, a.ligand_id, a.affinity
		 FROM proteins p JOIN activities a ON p.accession = a.protein_id
		 WHERE a.affinity >= 9 ORDER BY a.affinity DESC LIMIT 5`,
		fmt.Sprintf(`SELECT COUNT(*) AS members FROM tree_nodes
		 WHERE WITHIN_SUBTREE(pre, '%s') AND is_leaf = TRUE`, eng.Root().Name),
	} {
		fmt.Println(">", q)
		res, err := eng.Query(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(query.FormatResult(res))
		fmt.Println()
	}

	// 5. The overlay API: activity summarized along the phylogeny.
	sum, err := eng.SubtreeActivity(context.Background(), eng.Root().Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-tree overlay: %d activities over %d ligands, mean pKd %.2f\n",
		sum.Activities, sum.DistinctLig, sum.MeanAff)
}
