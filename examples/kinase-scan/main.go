// Kinase scan: the drug-discovery scenario from the poster's
// motivation. Given a screening dataset, find the clades of the
// protein tree enriched for strong binders of a lead compound, then
// drill into the best clade's proteins — phylogenetic context for
// selectivity analysis.
package main

import (
	"context"
	"fmt"
	"log"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func main() {
	// A larger screen: 8 families ("kinase subfamilies"), dense
	// activity data.
	gen := datagen.DefaultConfig()
	gen.Seed = 42
	gen.NumFamilies = 8
	gen.ProteinsPerFamily = 12
	gen.NumLigands = 30
	gen.ActivityDensity = 0.5
	gen.FamilyAffinity = 0.9 // strong family structure in binding
	ds, err := datagen.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	bundle := source.NewBundle(ds, netsim.ProfileWiFi, 42, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		log.Fatal(err)
	}
	eng, err := core.New(db, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pick the lead compound: the ligand with the single strongest
	// measured affinity anywhere in the screen.
	res, err := eng.Query(context.Background(), `SELECT ligand_id, MAX(affinity) AS best FROM activities
		GROUP BY ligand_id ORDER BY best DESC LIMIT 1`)
	if err != nil {
		log.Fatal(err)
	}
	lead := res.Rows[0][0].S
	fmt.Printf("lead compound: %s (best pKd %.2f)\n\n", lead, res.Rows[0][1].AsFloat())

	// Which clades are enriched for binders of the lead?
	clades, err := eng.FamilyEnrichment(context.Background(), lead, 6, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clades enriched for the lead compound:")
	for i, c := range clades {
		fmt.Printf("%2d. %-10s leaves=%-3d hits=%-3d mean pKd=%.2f\n",
			i+1, c.Clade, c.Leaves, c.Hits, c.MeanAff)
	}
	if len(clades) == 0 {
		log.Fatal("no enriched clades found")
	}

	// Drill into the top clade: its member proteins and what else
	// they bind (selectivity risk).
	best := clades[0].Clade
	fmt.Printf("\ndrilling into %s:\n", best)
	hits, err := eng.TopLigands(context.Background(), best, 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		marker := " "
		if h.LigandID == lead {
			marker = "*"
		}
		fmt.Printf(" %s %-10s mean pKd=%.2f over %d measurements\n",
			marker, h.LigandID, h.MeanAff, h.Count)
	}

	// Chemical neighborhood of the lead: analogues in the screen by
	// Tanimoto similarity (the scaffold-hopping question).
	leadRow, err := eng.Query(context.Background(), fmt.Sprintf("SELECT smiles FROM ligands WHERE ligand_id = '%s'", lead))
	if err != nil {
		log.Fatal(err)
	}
	analogues, err := eng.SimilarLigands(context.Background(), leadRow.Rows[0][0].S, 4, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchemical analogues of the lead:")
	for _, a := range analogues {
		if a.LigandID == lead {
			continue
		}
		fmt.Printf("   %-10s sim=%.2f  %s\n", a.LigandID, a.Similarity, a.SMILES)
	}

	// Cross-source profile of one member protein.
	leaves, _, err := eng.OpenSubtree(context.Background(), best)
	if err != nil {
		log.Fatal(err)
	}
	var member string
	for _, v := range leaves {
		if v.IsLeaf {
			member = v.Name
			break
		}
	}
	prof, err := eng.ProteinProfile(context.Background(), member)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmember profile %s: family=%s organism=%s EC=%s, %d activities\n",
		prof.Accession, prof.Family, prof.Organism, prof.EC, len(prof.Activities))
}
