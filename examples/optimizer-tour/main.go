// Optimizer tour: show what each DTQL optimization does to a plan by
// printing EXPLAIN output with the optimizer progressively enabled —
// the "standards as well as novel mechanisms" of the poster, made
// visible.
package main

import (
	"context"
	"fmt"
	"log"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func buildEngine(opts query.Options) *core.Engine {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 5
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 20
	ds, err := datagen.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		log.Fatal(err)
	}
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.QueryOptions = opts
	cfg.CacheBytes = 0
	eng, err := core.New(db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

func main() {
	steps := []struct {
		title string
		opts  query.Options
	}{
		{"naive: no optimizations", query.NaiveOptions()},
		{"+ predicate pushdown", query.Options{Pushdown: true}},
		{"+ index selection", query.Options{Pushdown: true, UseIndexes: true}},
		{"+ subtree-interval rewrite", query.Options{Pushdown: true, UseIndexes: true, SubtreeRewrite: true}},
		{"+ cost-based join ordering (full optimizer)", query.DefaultOptions()},
	}

	// Pick a clade name that exists across engines (same seed ⇒ same
	// tree): use the first engine to discover one.
	probe := buildEngine(query.DefaultOptions())
	clade := ""
	for i := 0; i < probe.Tree().Len(); i++ {
		children, _ := probe.Children(probe.Root().Name)
		if len(children) > 0 {
			clade = children[0].Name
		}
		break
	}

	q := fmt.Sprintf(`EXPLAIN SELECT p.accession, l.weight, a.affinity
	FROM activities a
	JOIN ligands l ON l.ligand_id = a.ligand_id
	JOIN proteins p ON p.accession = a.protein_id
	JOIN tree_nodes t ON t.name = p.accession
	WHERE WITHIN_SUBTREE(t.pre, '%s') AND a.affinity >= 7 AND p.family = 'FAM01'`, clade)

	fmt.Println("query:")
	fmt.Println(q)
	fmt.Println()
	for _, step := range steps {
		eng := buildEngine(step.opts)
		res, err := eng.Query(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n\n", step.title, res.Plan)
	}
}
