// Mobile session: drive a simulated phone through a pan/zoom/query
// session over a shaped 3G connection, comparing the full-tree
// baseline against LOD+delta streaming — the interaction path the
// paper's title is about. The link shaping is real (the bytes travel
// through a latency/bandwidth model), so the printed latencies are
// wall-clock.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

func main() {
	// A 600-leaf tree is large enough that shipping it whole over 3G
	// visibly hurts.
	tree, err := datagen.RandomTopology(600, 7)
	if err != nil {
		log.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	eng, err := core.NewWithTree(db, tree, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The interaction script: open the root, zoom into the dominant
	// clade twice, pan to a sibling, jump back to the root.
	script := []string{eng.Root().Name}
	cur := eng.Root().Name
	for i := 0; i < 2; i++ {
		children, err := eng.Children(cur)
		if err != nil || len(children) == 0 {
			break
		}
		best := children[0]
		for _, c := range children {
			if c.LeafCount > best.LeafCount {
				best = c
			}
		}
		script = append(script, best.Name)
		cur = best.Name
	}
	children, _ := eng.Children(script[1])
	if len(children) > 1 {
		script = append(script, children[1].Name)
	}
	script = append(script, eng.Root().Name)

	// Use a tamer 3G (no jitter/loss) so the demo output is stable.
	profile := netsim.Profile3G
	profile.Jitter = 0
	profile.LossPct = 0

	for _, strategy := range []mobile.Strategy{mobile.StrategyFull, mobile.StrategyLODDelta} {
		eng.ResetSession()
		link := netsim.NewLink(profile, 1, false)
		clientConn, serverConn := netsim.Pipe(link)
		server := mobile.NewServer(eng)
		go server.ServeConn(context.Background(), serverConn)

		c, err := mobile.Dial(clientConn, strategy, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- strategy %s (3G, viewport budget 60) ---\n", strategy)
		for _, node := range script {
			delta, err := c.Open(node)
			if err != nil {
				log.Fatal(err)
			}
			last := c.Latencies[len(c.Latencies)-1]
			fmt.Printf("open %-12s +%d nodes -%d nodes  %7.0fms\n",
				node, len(delta.Add), len(delta.Remove),
				float64(last)/float64(time.Millisecond))
		}
		// One analytical query through the same session.
		res, err := c.Query("SELECT COUNT(*) FROM tree_nodes WHERE is_leaf = TRUE")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query leaves=%s  %7.0fms\n", mobile.RowsAsStrings(res)[0],
			float64(c.Latencies[len(c.Latencies)-1])/float64(time.Millisecond))
		fmt.Printf("session total: %d bytes down, client renders %d nodes\n\n",
			c.BytesDown, len(c.Nodes))
		c.Close()
		clientConn.Close()
		serverConn.Close()
	}
}
