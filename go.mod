module drugtree

go 1.22
