package drugtree

// Benchmark harness: one benchmark family per experiment table and
// figure in EXPERIMENTS.md. `go test -bench=. -benchmem` reproduces
// the relative numbers; `go run ./cmd/drugtree-bench` prints the full
// formatted tables.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/experiments"
	"drugtree/internal/integrate"
	"drugtree/internal/metrics"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// --- T1: query latency by class ---

func BenchmarkT1QueryClasses(b *testing.B) {
	naive, opt, err := experiments.T1Engines(context.Background(), 1)
	if err != nil {
		b.Fatal(err)
	}
	classes := []struct {
		name string
		mk   func(e *core.Engine) string
	}{
		{"PointLookup", func(*core.Engine) string {
			return "SELECT * FROM proteins WHERE accession = 'DT00007'"
		}},
		{"SubtreeRetrieval", func(e *core.Engine) string {
			return "SELECT pre, name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'clade_1')"
		}},
		{"TopKAffinity", func(*core.Engine) string {
			return "SELECT protein_id, affinity FROM activities WHERE affinity >= 8 ORDER BY affinity DESC LIMIT 10"
		}},
		{"Integration", func(*core.Engine) string {
			return `SELECT p.accession, n.organism, l.weight, a.affinity
				FROM proteins p
				JOIN activities a ON p.accession = a.protein_id
				JOIN ligands l ON a.ligand_id = l.ligand_id
				JOIN annotations n ON p.accession = n.protein_id
				WHERE p.family = 'FAM01' AND a.affinity >= 7`
		}},
	}
	for _, cls := range classes {
		for _, eng := range []struct {
			name string
			e    *core.Engine
		}{{"Naive", naive}, {"Optimized", opt}} {
			b.Run(cls.name+"/"+eng.name, func(b *testing.B) {
				q := cls.mk(eng.e)
				if _, err := eng.e.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.e.Query(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- T2: pushdown traffic (reported as bytes/op) ---

func BenchmarkT2SourceTraffic(b *testing.B) {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 40
	gen.ProteinsPerFamily = 25
	ds, err := datagen.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	filters := []source.Filter{{Column: "family", Op: source.OpEQ, Value: store.StringValue("FAM00")}}
	for _, mode := range []struct {
		name    string
		filters []source.Filter
	}{{"FetchAll", nil}, {"Pushdown", filters}} {
		b.Run(mode.name, func(b *testing.B) {
			bundle := source.NewBundle(ds, netsim.Profile4G, 1, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := source.FetchAll(context.Background(), bundle.Proteins, mode.filters); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := bundle.Proteins.Stats()
			b.ReportMetric(float64(st.BytesDown)/float64(b.N), "bytes/op")
			b.ReportMetric(float64(st.Elapsed.Microseconds())/1e3/float64(b.N), "ms-modelled/op")
		})
	}
}

// --- T3: join ordering ---

func BenchmarkT3JoinOrdering(b *testing.B) {
	mk := func(reorder bool) *core.Engine {
		naive, opt, err := experiments.T1Engines(context.Background(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if reorder {
			return opt
		}
		return naive
	}
	q := `SELECT p.accession, n.organism, l.weight
		FROM activities a
		JOIN ligands l ON l.ligand_id = a.ligand_id
		JOIN annotations n ON n.protein_id = a.protein_id
		JOIN proteins p ON p.accession = a.protein_id
		WHERE p.family = 'FAM02'`
	for _, mode := range []struct {
		name    string
		reorder bool
	}{{"Syntactic", false}, {"CostBased", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := mk(mode.reorder)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T4: entity resolution throughput ---

func BenchmarkT4Resolve(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	ids := make([]string, 10000)
	for i := range ids {
		buf := make([]byte, 8)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		ids[i] = "DT" + string(buf)
	}
	r := integrate.NewResolver(ids)
	for _, edits := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("edits-%d", edits), func(b *testing.B) {
			queries := make([]string, 1024)
			for i := range queries {
				queries[i] = integrate.CorruptID(rng, ids[rng.Intn(len(ids))], edits)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Resolve(queries[i%len(queries)])
			}
		})
	}
}

// --- T5: tree construction methods (time side; quality is in the
// drugtree-bench table) ---

func BenchmarkT5TreeBuild(b *testing.B) {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 6
	gen.ProteinsPerFamily = 15
	gen.SeqLen = 200
	ds, err := datagen.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		b.Fatal(err)
	}
	for _, method := range []core.TreeMethod{core.TreeNJAlign, core.TreeNJKmer, core.TreeUPGMA} {
		b.Run(string(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Each build needs a fresh DB (tree_nodes is
				// materialize-once); reuse the integrated tables via
				// an in-memory copy is costlier than re-importing the
				// deterministic dataset.
				b.StopTimer()
				db2, _ := store.Open("")
				bundle2 := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
				integrate.NewImporter(db2, bundle2).ImportAll(context.Background())
				cfg := core.DefaultConfig()
				cfg.Method = method
				b.StartTimer()
				if _, err := core.New(db2, cfg); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db2.Close()
				b.StartTimer()
			}
		})
	}
}

// --- T6: statement cache ---

func BenchmarkT6StatementCache(b *testing.B) {
	_, opt, err := experiments.T1Engines(context.Background(), 1)
	if err != nil {
		b.Fatal(err)
	}
	q := `SELECT p.accession, n.organism, l.weight, a.affinity
		FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		JOIN ligands l ON a.ligand_id = l.ligand_id
		JOIN annotations n ON p.accession = n.protein_id
		WHERE p.family = 'FAM01' AND a.affinity >= 7`
	b.Run("Uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := opt.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	// A statement-cached engine over the same data.
	cfg := core.DefaultConfig()
	cfg.Method = core.TreeNJKmer
	cfg.CacheBytes = 0
	cfg.QueryCacheEntries = 16
	cached, err := experiments.EngineWithConfig(context.Background(), 1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cached.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- F1: subtree query vs tree size ---

func BenchmarkF1SubtreeScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 50000} {
		for _, mode := range []struct {
			name string
			opts query.Options
		}{{"Naive", query.NaiveOptions()}, {"Optimized", query.DefaultOptions()}} {
			b.Run(fmt.Sprintf("leaves-%d/%s", n, mode.name), func(b *testing.B) {
				e, err := experiments.F1Engine(n, 1, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				// A fixed viewport-scale (~50 leaf) subtree query, as
				// in the F1 experiment: naive pays for the whole
				// tree, indexed for the result.
				clade := ""
				t := e.Tree()
				want := 50
				if want > n {
					want = n
				}
				bestDiff := n
				for i := 0; i < t.Len(); i++ {
					id := t.NodeAtPre(i)
					if t.Node(id).IsLeaf() {
						continue
					}
					diff := t.LeafCount(id) - want
					if diff < 0 {
						diff = -diff
					}
					if diff < bestDiff {
						bestDiff = diff
						clade = t.Node(id).Name
					}
				}
				q := fmt.Sprintf("SELECT pre FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s')", clade)
				if _, err := e.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- F2: interactive session under the cache ladder ---

func BenchmarkF2Session(b *testing.B) {
	for _, fc := range experiments.F2Configs() {
		b.Run(fc.Name, func(b *testing.B) {
			e, err := experiments.F2Engine(1000, 1, fc)
			if err != nil {
				b.Fatal(err)
			}
			trace := experiments.GenerateTrace(e.Tree(), 512, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				node := trace[i%len(trace)]
				if _, _, err := e.OpenSubtree(context.Background(), node); err != nil {
					b.Fatal(err)
				}
				if fc.Prefetch {
					e.RunPrefetch(context.Background())
				}
			}
		})
	}
}

// --- F3: mobile transfer strategies (bytes per interaction) ---

func BenchmarkF3Strategies(b *testing.B) {
	e, err := experiments.F3Engine(1)
	if err != nil {
		b.Fatal(err)
	}
	trace := experiments.GenerateTrace(e.Tree(), 256, 3)
	for _, strat := range []mobile.Strategy{mobile.StrategyFull, mobile.StrategyLOD, mobile.StrategyLODDelta} {
		b.Run(strat.String(), func(b *testing.B) {
			e.ResetSession()
			server := mobile.NewServer(e)
			clientConn, serverConn := net.Pipe()
			defer clientConn.Close()
			defer serverConn.Close()
			go server.ServeConn(context.Background(), serverConn)
			c, err := mobile.Dial(clientConn, strat, 100)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Open(trace[i%len(trace)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(c.BytesDown)/float64(b.N), "bytes/interaction")
			c.Close()
		})
	}
}

// --- F4: end-to-end ablation (modelled 3G latency per interaction) ---

func BenchmarkF4Ablation(b *testing.B) {
	g3 := netsim.Profile3G
	g3.Jitter = 0
	g3.LossPct = 0
	for _, fc := range experiments.F4Configs() {
		b.Run(fc.Name, func(b *testing.B) {
			// One op = one full 120-interaction session; b.N stays
			// small because each session costs ~0.5s of compute.
			var last *metrics.Histogram
			for i := 0; i < b.N; i++ {
				hist, err := experiments.RunF4Session(context.Background(), 1000, 1, fc)
				if err != nil {
					b.Fatal(err)
				}
				last = hist
			}
			b.ReportMetric(float64(last.Mean().Microseconds())/1e3, "ms-mean-3G")
			b.ReportMetric(float64(last.Percentile(0.99).Microseconds())/1e3, "ms-p99-3G")
		})
	}
}

// --- T7: parallel execution (serial vs morsel-driven workers) ---

// BenchmarkT7Parallelism compares the serial executor (Parallelism: 1)
// against morsel-driven execution at 2 and GOMAXPROCS workers over the
// heavy query classes the parallel operators target: residual scans,
// hash joins, and grouped aggregation. On a single-core runner the
// variants collapse to roughly serial cost; the speedup claim is
// evaluated on multi-core hardware.
func BenchmarkT7Parallelism(b *testing.B) {
	workerCounts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		workerCounts = append(workerCounts, p)
	}
	queries := []struct {
		name string
		q    string
	}{
		{"Scan", "SELECT protein_id, affinity FROM activities WHERE affinity > 5.5 AND assay != 'x'"},
		{"Join", `SELECT p.accession, a.ligand_id FROM proteins p
			JOIN activities a ON p.accession = a.protein_id WHERE a.affinity > 6`},
		{"Aggregate", "SELECT protein_id, COUNT(*), AVG(affinity) FROM activities GROUP BY protein_id"},
	}
	for _, workers := range workerCounts {
		cfg := core.DefaultConfig()
		cfg.Method = core.TreeNJKmer
		cfg.CacheBytes = 0
		cfg.QueryOptions.Parallelism = workers
		cfg.QueryOptions.UseIndexes = false
		e, err := experiments.EngineWithConfig(context.Background(), 1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, qc := range queries {
			b.Run(fmt.Sprintf("%s/workers=%d", qc.name, workers), func(b *testing.B) {
				if _, err := e.Query(context.Background(), qc.q); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(context.Background(), qc.q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- T8: resilient sync under faults ---

// BenchmarkT8ResilientSync prices one mediator refresh cycle with the
// resilience stack on: the fresh path (full replace of every table)
// against the degraded path (breaker + last-good serving while a
// source is dark). Backoff sleeps ride the virtual clock, so the
// numbers isolate compute, not waiting.
func BenchmarkT8ResilientSync(b *testing.B) {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 4
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 20
	ds, err := datagen.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		outage bool
	}{{"fresh", false}, {"degraded", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := store.Open("")
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
			vclock := netsim.NewVirtualClock()
			for _, s := range bundle.All() {
				s.SetClock(vclock)
			}
			im := integrate.NewImporter(db, bundle)
			r := integrate.DefaultResilience()
			r.Retry = source.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, JitterSeed: 1}
			r.Clock = vclock
			r.Metrics = metrics.NewRegistry()
			im.EnableResilience(r)
			if _, err := im.Sync(context.Background()); err != nil {
				b.Fatal(err)
			}
			if mode.outage {
				bundle.Activities.SetFaultPlan(&source.FaultPlan{Windows: []source.FaultWindow{
					{Mode: source.FaultOutage, Start: 0, End: 1 << 62},
				}})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := im.Sync(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T9: overload protection ---

// BenchmarkT9Overload prices one full load-sweep cell of the T9
// discrete-event overload simulation per mode: the cost of deciding
// admission (deadline prediction, queue management) for ~8000
// arrivals at 2x saturation, with all waiting carried on the virtual
// clock.
func BenchmarkT9Overload(b *testing.B) {
	for _, mode := range []string{"unprotected", "shed-fifo", "shed-lifo"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.T9Mode(context.Background(), 1, mode, []float64{2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
