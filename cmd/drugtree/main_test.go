package main

import (
	"path/filepath"
	"testing"
)

// TestCLIWorkflow drives the CLI verbs end to end against a temp
// database: init → query → tree → top → similar → crumbs.
func TestCLIWorkflow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	if err := cmdInit([]string{"-dir", dir, "-families", "2", "-per-family", "5", "-ligands", "8"}); err != nil {
		t.Fatalf("init: %v", err)
	}
	if err := cmdQuery([]string{"-dir", dir, "SELECT family, COUNT(*) FROM proteins GROUP BY family"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-dir", dir, "EXPLAIN SELECT * FROM proteins WHERE accession = 'DT00001'"}); err != nil {
		t.Fatalf("explain: %v", err)
	}
	if err := cmdQuery([]string{"-dir", dir, "-naive", "SELECT COUNT(*) FROM ligands"}); err != nil {
		t.Fatalf("naive query: %v", err)
	}
	if err := cmdTree([]string{"-dir", dir}); err != nil {
		t.Fatalf("tree: %v", err)
	}
	if err := cmdTop([]string{"-dir", dir, "-node", "DT00000", "-k", "3"}); err != nil {
		t.Fatalf("top: %v", err)
	}
	if err := cmdSimilar([]string{"-dir", dir, "-smiles", "CCO", "-k", "3", "-threshold", "0"}); err != nil {
		t.Fatalf("similar: %v", err)
	}
	if err := cmdCrumbs([]string{"-dir", dir, "-node", "DT00003"}); err != nil {
		t.Fatalf("crumbs: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdInit([]string{}); err == nil {
		t.Error("init without -dir accepted")
	}
	if err := cmdQuery([]string{"-dir", ""}); err == nil {
		t.Error("query without args accepted")
	}
	if err := cmdSimilar([]string{"-dir", "x"}); err == nil {
		t.Error("similar without -smiles accepted")
	}
	if err := cmdCrumbs([]string{"-dir", "x"}); err == nil {
		t.Error("crumbs without -node accepted")
	}
	dir := t.TempDir()
	if err := cmdQuery([]string{"-dir", dir, "SELECT 1 FROM nope"}); err == nil {
		t.Error("query against empty db accepted")
	}
}
