// drugtree is the DrugTree command-line tool: it generates synthetic
// datasets, integrates them from the simulated remote sources into a
// local database, builds the phylogenetic overlay, and runs DTQL
// queries.
//
// Usage:
//
//	drugtree init  -dir data -families 6 -per-family 15 -ligands 40
//	drugtree query -dir data 'SELECT family, COUNT(*) FROM proteins GROUP BY family'
//	drugtree query -dir data 'EXPLAIN SELECT ...'
//	drugtree tree  -dir data              # print the tree in Newick
//	drugtree top   -dir data -node clade_0 -k 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// rootCtx is cancelled on SIGINT so a Ctrl-C aborts a running query
// instead of waiting for it to finish.
var rootCtx = context.Background()

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rootCtx = ctx
	var err error
	switch os.Args[1] {
	case "init":
		err = cmdInit(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "tree":
		err = cmdTree(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "similar":
		err = cmdSimilar(os.Args[2:])
	case "crumbs":
		err = cmdCrumbs(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drugtree:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  drugtree init  -dir DIR [-seed N] [-families N] [-per-family N] [-ligands N]
  drugtree query -dir DIR [-naive] 'DTQL'
  drugtree tree  -dir DIR
  drugtree top   -dir DIR -node NAME [-k N]
  drugtree similar -dir DIR -smiles 'CCO' [-k N] [-threshold F]
  drugtree crumbs  -dir DIR -node NAME`)
}

func cmdCrumbs(args []string) error {
	fs := flag.NewFlagSet("crumbs", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	node := fs.String("node", "", "tree node name")
	fs.Parse(args)
	if *node == "" {
		return fmt.Errorf("crumbs: -node is required")
	}
	eng, db, err := openEngine(*dir, false)
	if err != nil {
		return err
	}
	defer db.Close()
	crumbs, err := eng.Breadcrumbs(rootCtx, *node)
	if err != nil {
		return err
	}
	for i, c := range crumbs {
		fmt.Printf("%s%s (leaves=%d, dist=%.3f)\n",
			strings.Repeat("  ", i), c.Name, c.LeafCount, c.RootDist)
	}
	return nil
}

func cmdSimilar(args []string) error {
	fs := flag.NewFlagSet("similar", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	smiles := fs.String("smiles", "", "query structure (SMILES)")
	k := fs.Int("k", 10, "number of hits")
	threshold := fs.Float64("threshold", 0.1, "minimum Tanimoto similarity")
	fs.Parse(args)
	if *smiles == "" {
		return fmt.Errorf("similar: -smiles is required")
	}
	eng, db, err := openEngine(*dir, false)
	if err != nil {
		return err
	}
	defer db.Close()
	hits, err := eng.SimilarLigands(rootCtx, *smiles, *k, *threshold)
	if err != nil {
		return err
	}
	for i, h := range hits {
		fmt.Printf("%2d. %-10s sim=%.3f  %s\n", i+1, h.LigandID, h.Similarity, h.SMILES)
	}
	if len(hits) == 0 {
		fmt.Println("no ligands above the similarity threshold")
	}
	return nil
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory (required)")
	seed := fs.Int64("seed", 1, "generator seed")
	families := fs.Int("families", 6, "number of protein families")
	perFamily := fs.Int("per-family", 15, "proteins per family")
	ligands := fs.Int("ligands", 40, "number of ligands")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("init: -dir is required")
	}
	gen := datagen.DefaultConfig()
	gen.Seed = *seed
	gen.NumFamilies = *families
	gen.ProteinsPerFamily = *perFamily
	gen.NumLigands = *ligands
	ds, err := datagen.Generate(gen)
	if err != nil {
		return err
	}
	db, err := store.Open(*dir)
	if err != nil {
		return err
	}
	defer db.Close()
	bundle := source.NewBundle(ds, netsim.Profile4G, *seed, true)
	st, err := integrate.NewImporter(db, bundle).ImportAll(rootCtx)
	if err != nil {
		return err
	}
	fmt.Printf("imported %d rows (%d rejected) from 4 sources; modelled network time %v\n",
		st.RowsImported, st.RowsRejected, st.Elapsed.Round(1e6))
	// Build and persist the tree as part of init so queries are fast.
	eng, err := core.New(db, core.DefaultConfig())
	if err != nil {
		return err
	}
	fmt.Printf("built phylogenetic tree: %d nodes, %d leaves\n",
		eng.Tree().Len(), len(eng.Tree().Leaves()))
	if err := db.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("checkpointed to %s\n", *dir)
	return nil
}

// openEngine reopens an initialized database.
func openEngine(dir string, naive bool) (*core.Engine, *store.DB, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("-dir is required")
	}
	db, err := store.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	if naive {
		cfg.QueryOptions = query.NaiveOptions()
		cfg.CacheBytes = 0
	}
	eng, err := core.New(db, cfg)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	return eng, db, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	naive := fs.Bool("naive", false, "disable the optimizer (baseline engine)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("query: expected exactly one DTQL string")
	}
	eng, db, err := openEngine(*dir, *naive)
	if err != nil {
		return err
	}
	defer db.Close()
	res, err := eng.Query(rootCtx, fs.Arg(0))
	if err != nil {
		return err
	}
	if strings.HasPrefix(strings.TrimSpace(strings.ToUpper(fs.Arg(0))), "EXPLAIN") {
		fmt.Println(res.Plan)
		return nil
	}
	fmt.Print(query.FormatResult(res))
	fmt.Printf("stats: scanned=%d indexed=%d joined=%d\n",
		res.Stats.RowsScanned, res.Stats.RowsIndexed, res.Stats.RowsJoined)
	return nil
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	fs.Parse(args)
	eng, db, err := openEngine(*dir, false)
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Println(eng.Tree().Newick())
	return nil
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	dir := fs.String("dir", "", "database directory")
	node := fs.String("node", "", "tree node name (accession or clade_N)")
	k := fs.Int("k", 5, "number of ligands")
	fs.Parse(args)
	if *node == "" {
		return fmt.Errorf("top: -node is required")
	}
	eng, db, err := openEngine(*dir, false)
	if err != nil {
		return err
	}
	defer db.Close()
	hits, err := eng.TopLigands(rootCtx, *node, *k, 1)
	if err != nil {
		return err
	}
	sum, err := eng.SubtreeActivity(rootCtx, *node)
	if err != nil {
		return err
	}
	fmt.Printf("subtree %s: %d proteins, %d activities over %d ligands (mean pKd %.2f)\n",
		*node, sum.Proteins, sum.Activities, sum.DistinctLig, sum.MeanAff)
	for i, h := range hits {
		fmt.Printf("%2d. %-10s meanAff=%.2f maxAff=%.2f n=%d\n",
			i+1, h.LigandID, h.MeanAff, h.MaxAff, h.Count)
	}
	return nil
}
