// drugtree-bench regenerates the DrugTree evaluation: every table
// (T1–T13) and figure (F1–F4) documented in EXPERIMENTS.md.
//
// Usage:
//
//	drugtree-bench                 # run everything
//	drugtree-bench -exp F3         # run one experiment
//	drugtree-bench -exp F3 -csv    # emit the figure series as CSV
//	drugtree-bench -seed 7         # change the dataset seed
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"drugtree/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (T1..T13, F1..F4); empty runs all")
	seed := flag.Int64("seed", 1, "dataset seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runners := experiments.All()
	if *exp != "" {
		r, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}
	failed := false
	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(ctx, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Print(rep.Render())
			fmt.Printf("   (regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}
