package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 2
	gen.ProteinsPerFamily = 6
	gen.NumLigands = 8
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(db, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(eng))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	return resp, b.String()
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/query?q="+
		"SELECT+family,+COUNT(*)+AS+n+FROM+proteins+GROUP+BY+family+ORDER+BY+family")
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var p queryPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(p.Rows) != 2 || p.Columns[0] != "family" {
		t.Fatalf("payload = %+v", p)
	}
	if p.Rows[0][0] != "FAM00" || p.Rows[0][1] != "6" {
		t.Fatalf("rows = %v", p.Rows)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv := testServer(t)
	resp, _ := get(t, srv.URL+"/query")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q = %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/query?q=SELECT+*+FROM+nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d", resp.StatusCode)
	}
}

func TestTreeEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/tree?budget=5")
	if resp.StatusCode != 200 {
		t.Fatalf("tree status = %d", resp.StatusCode)
	}
	var nodes []mobile.WireNode
	if err := json.Unmarshal([]byte(body), &nodes); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(nodes) == 0 || len(nodes) > 5 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	resp, _ = get(t, srv.URL+"/tree?node=missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing node = %d", resp.StatusCode)
	}
}

func TestSubtreeEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/subtree?node=DT00000")
	if resp.StatusCode != 200 {
		t.Fatalf("subtree status = %d: %s", resp.StatusCode, body)
	}
	var sum core.ActivitySummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if sum.Proteins != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	resp, _ = get(t, srv.URL+"/subtree")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing node = %d", resp.StatusCode)
	}
}

func TestBreadcrumbsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/breadcrumbs?node=DT00003")
	if resp.StatusCode != 200 {
		t.Fatalf("breadcrumbs status = %d: %s", resp.StatusCode, body)
	}
	var crumbs []core.NodeView
	if err := json.Unmarshal([]byte(body), &crumbs); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(crumbs) < 2 || crumbs[len(crumbs)-1].Name != "DT00003" {
		t.Fatalf("crumbs = %+v", crumbs)
	}
	resp, _ = get(t, srv.URL+"/breadcrumbs")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing node = %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	get(t, srv.URL+"/query?q=SELECT+COUNT(*)+FROM+proteins")
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != 200 || !strings.Contains(body, "query.count") {
		t.Fatalf("metrics = %d\n%s", resp.StatusCode, body)
	}
}
