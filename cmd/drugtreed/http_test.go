package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"drugtree/internal/admission"
	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 2
	gen.ProteinsPerFamily = 6
	gen.NumLigands = 8
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(db, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(eng))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	return resp, b.String()
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/query?q="+
		"SELECT+family,+COUNT(*)+AS+n+FROM+proteins+GROUP+BY+family+ORDER+BY+family")
	if resp.StatusCode != 200 {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	var p queryPayload
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(p.Rows) != 2 || p.Columns[0] != "family" {
		t.Fatalf("payload = %+v", p)
	}
	if p.Rows[0][0] != "FAM00" || p.Rows[0][1] != "6" {
		t.Fatalf("rows = %v", p.Rows)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv := testServer(t)
	resp, _ := get(t, srv.URL+"/query")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q = %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/query?q=SELECT+*+FROM+nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d", resp.StatusCode)
	}
}

func TestTreeEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/tree?budget=5")
	if resp.StatusCode != 200 {
		t.Fatalf("tree status = %d", resp.StatusCode)
	}
	var nodes []mobile.WireNode
	if err := json.Unmarshal([]byte(body), &nodes); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(nodes) == 0 || len(nodes) > 5 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	resp, _ = get(t, srv.URL+"/tree?node=missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing node = %d", resp.StatusCode)
	}
}

func TestSubtreeEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/subtree?node=DT00000")
	if resp.StatusCode != 200 {
		t.Fatalf("subtree status = %d: %s", resp.StatusCode, body)
	}
	var sum core.ActivitySummary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if sum.Proteins != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	resp, _ = get(t, srv.URL+"/subtree")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing node = %d", resp.StatusCode)
	}
}

func TestBreadcrumbsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, body := get(t, srv.URL+"/breadcrumbs?node=DT00003")
	if resp.StatusCode != 200 {
		t.Fatalf("breadcrumbs status = %d: %s", resp.StatusCode, body)
	}
	var crumbs []core.NodeView
	if err := json.Unmarshal([]byte(body), &crumbs); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(crumbs) < 2 || crumbs[len(crumbs)-1].Name != "DT00003" {
		t.Fatalf("crumbs = %+v", crumbs)
	}
	resp, _ = get(t, srv.URL+"/breadcrumbs")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing node = %d", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	get(t, srv.URL+"/query?q=SELECT+COUNT(*)+FROM+proteins")
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != 200 || !strings.Contains(body, "query.count") {
		t.Fatalf("metrics = %d\n%s", resp.StatusCode, body)
	}
}

// testServerWithEngine is like testServer but exposes the engine (to
// inspect metrics / hold the admission limiter) and lets the test
// shape the engine config and rate limiter.
func testServerWithEngine(t *testing.T, cfg core.Config, rate *admission.RateLimiter) (*httptest.Server, *core.Engine) {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 2
	gen.ProteinsPerFamily = 6
	gen.NumLigands = 8
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newAPI(eng, rate))
	t.Cleanup(srv.Close)
	return srv, eng
}

// TestParamBoundsRejectBeforeEngineWork drives oversized and malformed
// parameters through every endpoint and asserts they bounce with a 4xx
// without ever reaching the engine's query path.
func TestParamBoundsRejectBeforeEngineWork(t *testing.T) {
	srv, eng := testServerWithEngine(t, core.DefaultConfig(), nil)
	bigQ := strings.Repeat("x", maxQueryBytes+1)
	bigNode := strings.Repeat("n", maxNodeBytes+1)
	badUTF8 := "%ff%fe"
	cases := []struct {
		name string
		path string
		want int
	}{
		{"oversized query", "/query?q=" + bigQ, http.StatusRequestEntityTooLarge},
		{"non-utf8 query", "/query?q=" + badUTF8, http.StatusBadRequest},
		{"oversized tree node", "/tree?node=" + bigNode, http.StatusRequestEntityTooLarge},
		{"non-utf8 tree node", "/tree?node=" + badUTF8, http.StatusBadRequest},
		{"malformed budget", "/tree?budget=abc", http.StatusBadRequest},
		{"negative budget", "/tree?budget=-5", http.StatusBadRequest},
		{"oversized budget", "/tree?budget=2000000", http.StatusBadRequest},
		{"oversized subtree node", "/subtree?node=" + bigNode, http.StatusRequestEntityTooLarge},
		{"non-utf8 subtree node", "/subtree?node=" + badUTF8, http.StatusBadRequest},
		{"oversized breadcrumbs node", "/breadcrumbs?node=" + bigNode, http.StatusRequestEntityTooLarge},
		{"non-utf8 breadcrumbs node", "/breadcrumbs?node=" + badUTF8, http.StatusBadRequest},
	}
	before := eng.Metrics.Counter("query.count").Value()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, srv.URL+tc.path)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s = %d, want %d: %s", tc.path, resp.StatusCode, tc.want, body)
			}
		})
	}
	if after := eng.Metrics.Counter("query.count").Value(); after != before {
		t.Fatalf("rejected requests reached the engine: query.count %d -> %d", before, after)
	}
}

func TestQueryShedMapsTo429(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Admission = &admission.Config{MaxConcurrency: 1, MaxQueue: 0}
	srv, eng := testServerWithEngine(t, cfg, nil)
	release, err := eng.Limiter().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, _ := get(t, srv.URL+"/query?q=SELECT+COUNT(*)+FROM+proteins")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed query = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if eng.Metrics.Counter("query.shed").Value() == 0 {
		t.Fatal("query.shed not counted")
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	rate := admission.NewRateLimiter(admission.RateConfig{QPS: 0.001, Burst: 1})
	srv, eng := testServerWithEngine(t, core.DefaultConfig(), rate)
	if resp, _ := get(t, srv.URL+"/tree"); resp.StatusCode != 200 {
		t.Fatalf("first request = %d", resp.StatusCode)
	}
	resp, _ := get(t, srv.URL+"/tree")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited request = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want >= 1 second", ra)
	}
	if eng.Metrics.Counter("http.rate_limited").Value() == 0 {
		t.Fatal("http.rate_limited not counted")
	}
	// Liveness and metrics stay reachable while the API sheds.
	if resp, _ := get(t, srv.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz rate-limited: %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/metrics"); resp.StatusCode != 200 {
		t.Fatalf("metrics rate-limited: %d", resp.StatusCode)
	}
}

// TestHealthSourcesReplicated pins the /health/sources contract for a
// replicated topology: shard pseudo-sources carry the WAL frontier,
// replica pseudo-sources carry role/applied-seq/lag, a dead follower
// degrades (not fails) its shard, and the endpoint keeps answering 200
// because no data is missing.
func TestHealthSourcesReplicated(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 2
	gen.ProteinsPerFamily = 6
	gen.NumLigands = 8
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 3
	cfg.Replicas = 1
	cfg.ReplicaClock = netsim.NewVirtualClock()
	eng, err := core.New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(newMux(eng))
	t.Cleanup(srv.Close)

	type entry struct {
		Source     string `json:"source"`
		Status     string `json:"status"`
		Stale      bool   `json:"stale"`
		WALSeq     int64  `json:"wal_seq"`
		Role       string `json:"role"`
		AppliedSeq int64  `json:"applied_seq"`
		Lag        int64  `json:"lag"`
	}
	fetch := func() map[string]entry {
		t.Helper()
		resp, body := get(t, srv.URL+"/health/sources")
		if resp.StatusCode != 200 {
			t.Fatalf("/health/sources = %d %q", resp.StatusCode, body)
		}
		var entries []entry
		if err := json.Unmarshal([]byte(body), &entries); err != nil {
			t.Fatalf("decode %q: %v", body, err)
		}
		out := map[string]entry{}
		for _, e := range entries {
			out[e.Source] = e
		}
		return out
	}

	byName := fetch()
	for i := 0; i < 3; i++ {
		sh, ok := byName[fmtShard(i)]
		if !ok || sh.Status != "ok" || sh.Stale || sh.WALSeq == 0 {
			t.Fatalf("%s = %+v, want ok with nonzero wal_seq", fmtShard(i), sh)
		}
		for j := 0; j < 2; j++ {
			name := fmtReplica(i, j)
			rh, ok := byName[name]
			if !ok || rh.Status != "ok" || rh.Lag != 0 || rh.AppliedSeq != sh.WALSeq {
				t.Fatalf("%s = %+v, want ok at applied seq %d", name, rh, sh.WALSeq)
			}
			wantRole := "follower"
			if j == 0 {
				wantRole = "leader"
			}
			if rh.Role != wantRole {
				t.Fatalf("%s role %q, want %q", name, rh.Role, wantRole)
			}
		}
	}

	eng.Coordinator().KillReplica(1, 1)
	byName = fetch()
	if sh := byName[fmtShard(1)]; sh.Status != "degraded" || sh.Stale {
		t.Fatalf("shard with dead follower = %+v, want degraded and not stale", sh)
	}
	if rh := byName[fmtReplica(1, 1)]; rh.Status != "down" || !rh.Stale {
		t.Fatalf("dead follower = %+v, want down+stale", rh)
	}
}

func fmtShard(i int) string      { return "shard-" + strconv.Itoa(i) }
func fmtReplica(i, j int) string { return fmtShard(i) + "-replica-" + strconv.Itoa(j) }
