// drugtreed is the DrugTree server: it loads (or generates) an
// integrated dataset, builds the phylogenetic overlay, and serves
// both the binary mobile wire protocol and an HTTP JSON API.
//
// Usage:
//
//	drugtreed -dir data -listen :7047 -http :8047
//	drugtreed -generate -families 8 -per-family 20   # ephemeral demo
//
// Overload protection (DESIGN.md §7): -max-concurrency/-max-queue
// bound the engine's admission limiter (shed queries answer 429 +
// Retry-After over HTTP, RETRY over the wire), -max-sessions caps
// concurrent wire sessions, -client-qps token-buckets each client,
// and -drain-timeout bounds the ordered graceful shutdown (HTTP →
// wire sessions → engine) on SIGINT/SIGTERM.
//
// Replication (DESIGN.md §9): with -shards N and -replicas M each
// shard becomes a replica set — WAL tails ship to followers every
// -ship-interval, reads route across replicas within -max-lag records
// of the frontier, and a dead leader is promoted over on the next
// tick. -allow-partial trades refusal for annotated partial results
// when a whole shard is down.
//
// Durability (DESIGN §10): -wal-sync picks the WAL fsync policy —
// `always` acknowledges no write before it is on disk, `interval`
// (default) group-commits every -wal-sync-every records, `off` leaves
// flushing to the OS. Shard partitions and replica followers inherit
// the source store's policy, so the flag governs the whole topology.
//
// HTTP endpoints:
//
//	GET  /healthz                   liveness
//	GET  /health/sources            per-source freshness JSON (207 when degraded)
//	GET  /tree?node=NAME&budget=N   viewport JSON
//	GET  /query?q=DTQL              query results JSON
//	GET  /metrics                   engine counters (text)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"drugtree/internal/admission"
	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func main() {
	dir := flag.String("dir", "", "database directory (initialized with `drugtree init`)")
	generate := flag.Bool("generate", false, "generate an ephemeral in-memory dataset instead of -dir")
	families := flag.Int("families", 8, "families for -generate")
	perFamily := flag.Int("per-family", 20, "proteins per family for -generate")
	ligands := flag.Int("ligands", 50, "ligands for -generate")
	seed := flag.Int64("seed", 1, "seed for -generate")
	listen := flag.String("listen", ":7047", "wire-protocol listen address")
	httpAddr := flag.String("http", ":8047", "HTTP listen address")
	shards := flag.Int("shards", 0, "partition the store across N in-process shards served scatter-gather (0/1 = single-node)")
	replicas := flag.Int("replicas", 0, "read replicas per shard fed by WAL shipping (0 = leaders only; requires -shards > 1)")
	maxLag := flag.Int64("max-lag", 0, "max WAL records a replica may trail and still serve reads (0 = fully caught up, <0 = unbounded)")
	allowPartial := flag.Bool("allow-partial", false, "answer queries with shards skipped (annotated) instead of refusing when a shard has no live replica")
	shipInterval := flag.Duration("ship-interval", 250*time.Millisecond, "WAL shipping/promotion tick period when -replicas > 0")
	maxConc := flag.Int("max-concurrency", 8, "concurrent queries admitted before shedding (0 disables admission control)")
	maxQueue := flag.Int("max-queue", 64, "queries waiting for admission before shedding")
	maxSessions := flag.Int("max-sessions", 256, "concurrent wire-protocol sessions (0 = unlimited)")
	clientQPS := flag.Float64("client-qps", 25, "per-client request rate before shedding (0 disables rate limiting)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for in-flight work")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: always (no acknowledged write lost on crash), interval (group-commit every -wal-sync-every records), off (OS decides; Close/Checkpoint still sync)")
	walSyncEvery := flag.Int("wal-sync-every", store.DefaultSyncEvery, "records between group-commit fsyncs for -wal-sync=interval")
	flag.Parse()

	syncPolicy, err := store.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng, cleanup, err := buildEngine(*dir, *generate, *seed, *families, *perFamily, *ligands, *maxConc, *maxQueue, *shards, *replicas, *maxLag, *allowPartial, syncPolicy, *walSyncEvery)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	// Replication pump: SyncReplicas is a pure tick (ship tails, promote
	// over dead leaders) with no goroutines of its own, so the daemon
	// drives it on a wall-clock ticker. Joined before cleanup so a
	// mid-tick ship never races the engine teardown.
	shipDone := make(chan struct{})
	if coord := eng.Coordinator(); *replicas > 0 && coord != nil {
		log.Printf("replication: %d replicas/shard, shipping every %v", *replicas, *shipInterval)
		go func() {
			defer close(shipDone)
			tick := time.NewTicker(*shipInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := coord.SyncReplicas(ctx); err != nil && ctx.Err() == nil {
						log.Printf("replication tick: %v", err)
					}
				}
			}
		}()
		defer func() { <-shipDone }()
	} else {
		close(shipDone)
	}

	server := mobile.NewServer(eng)
	server.Async = true
	server.MaxSessions = *maxSessions
	server.DrainTimeout = *drainTimeout
	var rate *admission.RateLimiter
	if *clientQPS > 0 {
		rate = admission.NewRateLimiter(admission.RateConfig{QPS: *clientQPS})
		server.Rate = rate
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wire protocol on %s", l.Addr())
	wireDone := make(chan struct{})
	go func() {
		defer close(wireDone)
		if err := server.Serve(ctx, l); err != nil && ctx.Err() == nil {
			log.Printf("wire server stopped: %v", err)
		}
	}()

	httpSrv := &http.Server{Addr: *httpAddr, Handler: newAPI(eng, rate)}
	log.Printf("HTTP API on %s", *httpAddr)
	httpDone := make(chan error, 1)
	go func() {
		httpDone <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-httpDone:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let in-flight work finish
	// (bounded by -drain-timeout), then drain the engine's limiter.
	log.Printf("shutting down: draining in-flight work (bound %v)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	<-wireDone // Serve drains the wire sessions itself
	if err := eng.Drain(shutdownCtx); err != nil {
		log.Printf("engine drain: %v", err)
	}
	log.Printf("shutdown complete")
}

func buildEngine(dir string, generate bool, seed int64, families, perFamily, ligands, maxConc, maxQueue, shards, replicas int, maxLag int64, allowPartial bool, walSync store.SyncPolicy, walSyncEvery int) (*core.Engine, func(), error) {
	cfg := core.DefaultConfig()
	// The WAL fsync policy is set on the source store at open time;
	// shard partitions and replica followers inherit it (DESIGN §10).
	cfg.WALSync = walSync
	cfg.WALSyncEvery = walSyncEvery
	var db *store.DB
	var importer *integrate.Importer
	var err error
	switch {
	case generate:
		db, err = store.OpenWith("", cfg.StoreOptions())
		if err != nil {
			return nil, nil, err
		}
		gen := datagen.DefaultConfig()
		gen.Seed = seed
		gen.NumFamilies = families
		gen.ProteinsPerFamily = perFamily
		gen.NumLigands = ligands
		ds, err := datagen.Generate(gen)
		if err != nil {
			return nil, nil, err
		}
		bundle := source.NewBundle(ds, netsim.Profile4G, seed, true)
		importer = integrate.NewImporter(db, bundle)
		importer.EnableResilience(integrate.DefaultResilience())
		if _, err := importer.Sync(context.Background()); err != nil {
			return nil, nil, err
		}
	case dir != "":
		db, err = store.OpenWith(dir, cfg.StoreOptions())
		if err != nil {
			return nil, nil, err
		}
	default:
		fmt.Fprintln(os.Stderr, "drugtreed: need -dir or -generate")
		os.Exit(2)
	}
	// The server is long-lived and read-mostly: repeated dashboard
	// statements benefit from the statement cache (experiment T6).
	cfg.QueryCacheEntries = 256
	if maxConc > 0 {
		// Gate queries behind a bounded limiter so overload sheds with
		// retry hints instead of collapsing latency (experiment T9).
		cfg.Admission = &admission.Config{MaxConcurrency: maxConc, MaxQueue: maxQueue}
	}
	// Scatter-gather partitioning (experiment T11): the store is split
	// across in-process shards at build time and queries fan out.
	cfg.Shards = shards
	// WAL-shipped read replicas (experiment T12): each shard becomes a
	// replica set; reads route across followers within the lag bound
	// and a dead leader is promoted over on the next replication tick.
	cfg.Replicas = replicas
	cfg.MaxLagSeqs = maxLag
	cfg.AllowPartial = allowPartial
	eng, err := core.New(db, cfg)
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	if importer != nil {
		eng.AttachHealth(importer.Health)
	}
	return eng, func() { eng.Close(); db.Close() }, nil
}
