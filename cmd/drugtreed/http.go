package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"unicode/utf8"

	"drugtree/internal/admission"
	"drugtree/internal/core"
	"drugtree/internal/mobile"
	"drugtree/internal/store"
)

// queryPayload is the JSON shape of /query responses.
type queryPayload struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Plan    string     `json:"plan,omitempty"`
}

// Request-parameter bounds, enforced before any engine work so a
// hostile or broken client cannot burn parse/plan cycles.
const (
	maxQueryBytes = 8 << 10 // DTQL text
	maxNodeBytes  = 256     // node names
	maxBudget     = 100000  // viewport budget
)

// checkParam rejects oversized or non-UTF-8 parameter values. It
// reports whether the request may proceed, having written the 4xx
// response otherwise.
func checkParam(w http.ResponseWriter, name, val string, maxBytes int) bool {
	if len(val) > maxBytes {
		http.Error(w, fmt.Sprintf("%s parameter exceeds %d bytes", name, maxBytes),
			http.StatusRequestEntityTooLarge)
		return false
	}
	if !utf8.ValidString(val) {
		http.Error(w, fmt.Sprintf("%s parameter is not valid UTF-8", name), http.StatusBadRequest)
		return false
	}
	return true
}

// retryAfterSeconds renders a duration as a Retry-After header value
// (whole seconds, minimum 1 so clients never busy-loop).
func retryAfterSeconds(hint float64) string {
	s := int(math.Ceil(hint))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// writeShed maps an admission rejection to 429 + Retry-After.
func writeShed(w http.ResponseWriter, err error) {
	hint := admission.RetryAfterHint(err, 0)
	w.Header().Set("Retry-After", retryAfterSeconds(hint.Seconds()))
	http.Error(w, "server overloaded, retry later", http.StatusTooManyRequests)
}

// withRateLimit wraps next with a per-client (remote host) token
// bucket. Liveness and metrics endpoints stay exempt so monitoring
// keeps working while the API sheds.
func withRateLimit(eng *core.Engine, rate *admission.RateLimiter, next http.Handler) http.Handler {
	if rate == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			return
		}
		client := r.RemoteAddr
		if host, _, err := net.SplitHostPort(client); err == nil {
			client = host
		}
		if err := rate.Allow(client); err != nil {
			eng.Metrics.Counter("http.rate_limited").Inc()
			writeShed(w, err)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// newAPI assembles the full HTTP handler: routes plus overload
// middleware.
func newAPI(eng *core.Engine, rate *admission.RateLimiter) http.Handler {
	return withRateLimit(eng, rate, newMux(eng))
}

// newMux builds the HTTP API over an engine. Split from main so the
// handlers are testable with httptest.
func newMux(eng *core.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, eng.Metrics.Dump())
	})
	mux.HandleFunc("GET /health/sources", func(w http.ResponseWriter, r *http.Request) {
		type sourceHealthPayload struct {
			Source       string `json:"source"`
			Status       string `json:"status"`
			Stale        bool   `json:"stale"`
			Rows         int    `json:"rows"`
			AgeMs        int64  `json:"age_ms"`
			LastError    string `json:"last_error,omitempty"`
			BreakerState string `json:"breaker_state,omitempty"`
			BreakerTrips int64  `json:"breaker_trips,omitempty"`
			WALSeq       int64  `json:"wal_seq,omitempty"`
			Role         string `json:"role,omitempty"`
			AppliedSeq   int64  `json:"applied_seq,omitempty"`
			Lag          int64  `json:"lag,omitempty"`
			Reseeds      int64  `json:"reseeds,omitempty"`
		}
		out := []sourceHealthPayload{}
		degraded := false
		for _, h := range eng.SourceHealth() {
			out = append(out, sourceHealthPayload{
				Source:       h.Source,
				Status:       h.Status.String(),
				Stale:        h.Stale,
				Rows:         h.Rows,
				AgeMs:        h.Age.Milliseconds(),
				LastError:    h.LastError,
				BreakerState: h.BreakerState,
				BreakerTrips: h.BreakerTrips,
			})
			if h.Stale {
				degraded = true
			}
		}
		// Partitioned topologies surface shard liveness (plus per-replica
		// WAL positions when replication is on) alongside source health,
		// so one scrape answers "is the data whole and how far behind is
		// each replica". A failed shard means missing rows (stale); a
		// dead replica only means degraded redundancy.
		for _, h := range eng.ShardHealth() {
			out = append(out, sourceHealthPayload{
				Source: fmt.Sprintf("shard-%d", h.Shard),
				Status: h.Status,
				Stale:  h.Status == "failed",
				Rows:   int(h.Rows),
				WALSeq: h.WALSeq,
			})
			if h.Status == "failed" {
				degraded = true
			}
			for _, rh := range h.Replicas {
				out = append(out, sourceHealthPayload{
					Source:     fmt.Sprintf("shard-%d-replica-%d", h.Shard, rh.Replica),
					Status:     rh.Status,
					Stale:      rh.Status != "ok",
					Role:       rh.Role,
					AppliedSeq: rh.AppliedSeq,
					Lag:        rh.Lag,
					Reseeds:    rh.Reseeds,
				})
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if degraded {
			// 200 would hide staleness from load balancers; 207-style
			// signalling keeps the endpoint scrapeable but visible.
			w.WriteHeader(http.StatusMultiStatus)
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /tree", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if !checkParam(w, "node", node, maxNodeBytes) {
			return
		}
		if node == "" {
			node = eng.Root().Name
		}
		budget := 100
		if b := r.URL.Query().Get("budget"); b != "" {
			n, err := strconv.Atoi(b)
			if err != nil || n <= 0 || n > maxBudget {
				http.Error(w, fmt.Sprintf("budget must be an integer in [1, %d]", maxBudget),
					http.StatusBadRequest)
				return
			}
			budget = n
		}
		id, err := eng.NodeByName(node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		nodes := mobile.BuildViewport(eng, id, budget)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(nodes)
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		if !checkParam(w, "q", q, maxQueryBytes) {
			return
		}
		res, err := eng.Query(r.Context(), q)
		if err != nil {
			if admission.IsShed(err) {
				writeShed(w, err)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p := queryPayload{Columns: res.Columns, Plan: res.Plan}
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v.K == store.KindString {
					cells[i] = v.S
				} else {
					cells[i] = v.String()
				}
			}
			p.Rows = append(p.Rows, cells)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
	})
	mux.HandleFunc("GET /breadcrumbs", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "missing node parameter", http.StatusBadRequest)
			return
		}
		if !checkParam(w, "node", node, maxNodeBytes) {
			return
		}
		crumbs, err := eng.Breadcrumbs(r.Context(), node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(crumbs)
	})
	mux.HandleFunc("GET /subtree", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "missing node parameter", http.StatusBadRequest)
			return
		}
		if !checkParam(w, "node", node, maxNodeBytes) {
			return
		}
		sum, err := eng.SubtreeActivity(r.Context(), node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sum)
	})
	return mux
}
