package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"drugtree/internal/core"
	"drugtree/internal/mobile"
	"drugtree/internal/store"
)

// queryPayload is the JSON shape of /query responses.
type queryPayload struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Plan    string     `json:"plan,omitempty"`
}

// newMux builds the HTTP API over an engine. Split from main so the
// handlers are testable with httptest.
func newMux(eng *core.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, eng.Metrics.Dump())
	})
	mux.HandleFunc("GET /health/sources", func(w http.ResponseWriter, r *http.Request) {
		type sourceHealthPayload struct {
			Source       string `json:"source"`
			Status       string `json:"status"`
			Stale        bool   `json:"stale"`
			Rows         int    `json:"rows"`
			AgeMs        int64  `json:"age_ms"`
			LastError    string `json:"last_error,omitempty"`
			BreakerState string `json:"breaker_state,omitempty"`
			BreakerTrips int64  `json:"breaker_trips,omitempty"`
		}
		out := []sourceHealthPayload{}
		degraded := false
		for _, h := range eng.SourceHealth() {
			out = append(out, sourceHealthPayload{
				Source:       h.Source,
				Status:       h.Status.String(),
				Stale:        h.Stale,
				Rows:         h.Rows,
				AgeMs:        h.Age.Milliseconds(),
				LastError:    h.LastError,
				BreakerState: h.BreakerState,
				BreakerTrips: h.BreakerTrips,
			})
			if h.Stale {
				degraded = true
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if degraded {
			// 200 would hide staleness from load balancers; 207-style
			// signalling keeps the endpoint scrapeable but visible.
			w.WriteHeader(http.StatusMultiStatus)
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /tree", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if node == "" {
			node = eng.Root().Name
		}
		budget := 100
		if b := r.URL.Query().Get("budget"); b != "" {
			if n, err := strconv.Atoi(b); err == nil && n > 0 {
				budget = n
			}
		}
		id, err := eng.NodeByName(node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		nodes := mobile.BuildViewport(eng, id, budget)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(nodes)
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		res, err := eng.Query(r.Context(), q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p := queryPayload{Columns: res.Columns, Plan: res.Plan}
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v.K == store.KindString {
					cells[i] = v.S
				} else {
					cells[i] = v.String()
				}
			}
			p.Rows = append(p.Rows, cells)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p)
	})
	mux.HandleFunc("GET /breadcrumbs", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "missing node parameter", http.StatusBadRequest)
			return
		}
		crumbs, err := eng.Breadcrumbs(r.Context(), node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(crumbs)
	})
	mux.HandleFunc("GET /subtree", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "missing node parameter", http.StatusBadRequest)
			return
		}
		sum, err := eng.SubtreeActivity(r.Context(), node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sum)
	})
	return mux
}
