// drugtree-lint runs the drugtree static-analysis suite: five
// syntactic analyzers that machine-check the tree's concurrency,
// clock, and context invariants (see internal/lint and DESIGN.md
// "Static-analysis gates").
//
// Standalone (the `make lint` path):
//
//	drugtree-lint ./...          # lint packages by go-list pattern
//	drugtree-lint -list          # describe the analyzers
//
// It also speaks enough of the `go vet -vettool` unit-checker
// protocol to run under the vet driver:
//
//	go vet -vettool=$(which drugtree-lint) ./...
//
// Findings are suppressible per line with
//
//	//lint:ignore drugtree/<analyzer> <reason>
//
// on or directly above the flagged line. Suppressions are budgeted
// per analyzer (internal/lint/lint.go); exceeding the budget, or
// suppressing without a reason, fails the run just like a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"drugtree/internal/lint"
	"drugtree/internal/lint/loader"
)

func main() {
	// `go vet -vettool` probes the tool's version first, then invokes
	// it once per package with a single *.cfg argument.
	if len(os.Args) == 2 {
		if strings.HasPrefix(os.Args[1], "-V") {
			fmt.Println("drugtree-lint version devel buildID=drugtree-lint")
			return
		}
		if os.Args[1] == "-flags" {
			// The vet driver asks which analyzer flags the tool
			// defines; the suite has none.
			fmt.Println("[]")
			return
		}
		if strings.HasSuffix(os.Args[1], ".cfg") {
			os.Exit(vetMode(os.Args[1]))
		}
	}
	os.Exit(standalone())
}

func standalone() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("drugtree/%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res := lint.Check(pkgs)
	for _, f := range res.Findings {
		fmt.Fprintln(os.Stderr, f)
	}
	for _, e := range res.BudgetErrors {
		fmt.Fprintln(os.Stderr, e)
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "drugtree-lint: %d findings, %d budget/suppression errors\n",
			len(res.Findings), len(res.BudgetErrors))
		return 1
	}
	used := 0
	var parts []string
	for _, a := range lint.All() {
		if n := res.Suppressed[a.Name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d/%d", a.Name, n, lint.Budget[a.Name]))
			used += n
		}
	}
	sort.Strings(parts)
	detail := ""
	if used > 0 {
		detail = fmt.Sprintf(" (suppressions: %s)", strings.Join(parts, ", "))
	}
	fmt.Printf("drugtree-lint: ok — %d analyzers over %d packages, 0 findings%s\n",
		len(lint.All()), len(pkgs), detail)
	return 0
}

// vetCfg is the subset of the cmd/go unit-checker config we consume.
type vetCfg struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
	// VetxOnly marks a dependency package the driver only wants facts
	// for (it is not among the packages named on the vet command
	// line); diagnostics must not be reported for it.
	VetxOnly bool
}

// vetMode lints one package as directed by a vet config file. The
// suppression budget is global-by-design and vet invokes the tool
// per package, so vet mode filters suppressions but leaves budget
// enforcement to the standalone run in `make lint`.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "drugtree-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Facts-only invocations (dependencies of the named packages —
	// including the standard library) get an empty facts file and no
	// analysis: the suite's invariants are drugtree policy, not a
	// judgement on other people's code.
	if cfg.VetxOnly {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
				return 2
			}
		}
		return 0
	}
	fset := token.NewFileSet()
	pkg := &loader.Package{Path: cfg.ImportPath, Fset: fset}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, filepath.ToSlash(name))
	}
	// The vet driver requires its facts file to exist even though we
	// export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
			return 2
		}
	}
	// With an unlimited budget, any BudgetErrors left are malformed
	// suppression comments — still a failure.
	res := lint.CheckBudget([]*loader.Package{pkg}, unlimitedBudget())
	for _, f := range res.Findings {
		fmt.Fprintln(os.Stderr, f)
	}
	for _, e := range res.BudgetErrors {
		fmt.Fprintln(os.Stderr, e)
	}
	if len(res.Findings) > 0 || len(res.BudgetErrors) > 0 {
		return 2
	}
	return 0
}

func unlimitedBudget() map[string]int {
	b := make(map[string]int)
	for _, a := range lint.All() {
		b[a.Name] = 1 << 30
	}
	return b
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("drugtree-lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
