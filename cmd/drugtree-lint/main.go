// drugtree-lint runs the drugtree static-analysis suite: nine
// syntactic analyzers that machine-check the tree's concurrency,
// clock, error-contract, and context invariants (see internal/lint
// and DESIGN.md "Static-analysis gates"). Four of them are
// fact-propagating — a collection phase exports per-function facts
// (locks acquired, blocking behaviour, %w wrapping, atomic fields)
// from every package so the analysis phase can reason across package
// boundaries; under the vet driver those facts ship between per-package
// invocations through the standard .vetx side files.
//
// Standalone (the `make lint` path):
//
//	drugtree-lint ./...          # lint packages by go-list pattern
//	drugtree-lint -list          # describe the analyzers
//
// It also speaks enough of the `go vet -vettool` unit-checker
// protocol to run under the vet driver:
//
//	go vet -vettool=$(which drugtree-lint) ./...
//
// Findings are suppressible per line with
//
//	//lint:ignore drugtree/<analyzer> <reason>
//
// on or directly above the flagged line. Suppressions are budgeted
// per analyzer (internal/lint/lint.go); exceeding the budget, or
// suppressing without a reason, fails the run just like a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"drugtree/internal/lint"
	"drugtree/internal/lint/analysis"
	"drugtree/internal/lint/loader"
)

func main() {
	// `go vet -vettool` probes the tool's version first, then invokes
	// it once per package with a single *.cfg argument.
	if len(os.Args) == 2 {
		if strings.HasPrefix(os.Args[1], "-V") {
			fmt.Println("drugtree-lint version devel buildID=drugtree-lint")
			return
		}
		if os.Args[1] == "-flags" {
			// The vet driver asks which analyzer flags the tool
			// defines; the suite has none.
			fmt.Println("[]")
			return
		}
		if strings.HasSuffix(os.Args[1], ".cfg") {
			os.Exit(vetMode(os.Args[1]))
		}
	}
	os.Exit(standalone())
}

func standalone() int {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("drugtree/%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res := lint.Check(pkgs)
	for _, f := range res.Findings {
		fmt.Fprintln(os.Stderr, f)
	}
	for _, e := range res.BudgetErrors {
		fmt.Fprintln(os.Stderr, e)
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "drugtree-lint: %d findings, %d budget/suppression errors\n",
			len(res.Findings), len(res.BudgetErrors))
		return 1
	}
	used := 0
	var parts []string
	for _, a := range lint.All() {
		if n := res.Suppressed[a.Name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d/%d", a.Name, n, lint.Budget[a.Name]))
			used += n
		}
	}
	sort.Strings(parts)
	detail := ""
	if used > 0 {
		detail = fmt.Sprintf(" (suppressions: %s)", strings.Join(parts, ", "))
	}
	fmt.Printf("drugtree-lint: ok — %d analyzers over %d packages, 0 findings%s\n",
		len(lint.All()), len(pkgs), detail)
	return 0
}

// vetCfg is the subset of the cmd/go unit-checker config we consume.
type vetCfg struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
	// PackageVetx maps each dependency's import path to the facts file
	// a previous invocation wrote for it; vet schedules dependencies
	// first, so by the time a package is analyzed every fact its
	// analyzers can follow is on disk.
	PackageVetx map[string]string
	// VetxOnly marks a dependency package the driver only wants facts
	// for (it is not among the packages named on the vet command
	// line); diagnostics must not be reported for it.
	VetxOnly bool
}

// vetMode lints one package as directed by a vet config file. Facts
// flow the same way vet's own analyzers ship theirs: dependency .vetx
// files (each one an analysis.FactSet encoding) are merged with this
// package's Collect output, the merged table is written to VetxOutput
// for packages downstream, and the analysis phase runs against it —
// so lockorder sees internal/store's lock graph while it checks
// internal/shard even though vet hands the tool one package at a time.
//
// The suppression budget is global-by-design and vet invokes the tool
// per package, so vet mode filters suppressions but leaves budget
// enforcement to the standalone run in `make lint`.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "drugtree-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Non-drugtree packages (the standard library, should anything else
	// ever appear) get an empty facts file and no collection: the
	// suite's invariants are drugtree policy, not a judgement on other
	// people's code.
	if !strings.HasPrefix(cfg.ImportPath, "drugtree") {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
				return 2
			}
		}
		return 0
	}
	fset := token.NewFileSet()
	pkg := &loader.Package{Path: cfg.ImportPath, Fset: fset}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
			return 2
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, filepath.ToSlash(name))
	}
	// Assemble the fact table: every dependency's shipped facts, then
	// this package's own collection on top.
	facts := make(analysis.FactSet)
	for dep, path := range cfg.PackageVetx {
		depData, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: reading facts for %s: %v\n", dep, err)
			return 2
		}
		depFacts, err := analysis.DecodeFacts(depData)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: facts for %s: %v\n", dep, err)
			return 2
		}
		facts.Merge(depFacts)
	}
	own, collectErrs := lint.CollectFacts([]*loader.Package{pkg})
	facts.Merge(own)
	if cfg.VetxOutput != "" {
		enc, err := facts.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: encoding facts: %v\n", err)
			return 2
		}
		if err := os.WriteFile(cfg.VetxOutput, enc, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "drugtree-lint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Facts-only invocation: the package is a dependency of the
		// named ones, so its facts matter but its diagnostics are not
		// this run's business.
		for _, e := range collectErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		if len(collectErrs) > 0 {
			return 2
		}
		return 0
	}
	// With an unlimited budget, any BudgetErrors left are malformed
	// suppression comments — still a failure.
	res := lint.CheckWithFacts([]*loader.Package{pkg}, unlimitedBudget(), facts)
	for _, e := range collectErrs {
		fmt.Fprintln(os.Stderr, e)
	}
	for _, f := range res.Findings {
		fmt.Fprintln(os.Stderr, f)
	}
	for _, e := range res.BudgetErrors {
		fmt.Fprintln(os.Stderr, e)
	}
	if len(collectErrs) > 0 || len(res.Findings) > 0 || len(res.BudgetErrors) > 0 {
		return 2
	}
	return 0
}

func unlimitedBudget() map[string]int {
	b := make(map[string]int)
	for _, a := range lint.All() {
		b[a.Name] = 1 << 30
	}
	return b
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("drugtree-lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
