package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drugtree/internal/lint/analysis"
)

// TestVetModeFactFlow drives vetMode the way the go vet driver does —
// one invocation per package, dependencies first — and proves that
// facts actually cross the process boundary: the dependency's %w wrap
// is collected into its .vetx file, and the downstream package's raw
// sentinel comparison is flagged only because that file is listed in
// its PackageVetx. Without the shipped fact the identical syntax is
// legal, so a pass here is evidence of the plumbing, not the analyzer.
func TestVetModeFactFlow(t *testing.T) {
	dir := t.TempDir()

	depSrc := filepath.Join(dir, "dep.go")
	writeFile(t, depSrc, `package wrapsrc

import (
	"errors"
	"fmt"
)

var ErrStale = errors.New("stale")

func Wrap(err error) error { return fmt.Errorf("load: %w", err) }
`)
	mainSrc := filepath.Join(dir, "cmp.go")
	writeFile(t, mainSrc, `package cmpsrc

import "errors"

var ErrStale = errors.New("stale")

func Check(err error) bool { return err == ErrStale }
`)

	depVetx := filepath.Join(dir, "dep.vetx")
	depCfg := writeCfg(t, dir, "dep.cfg", vetCfg{
		ImportPath: "drugtree/internal/wrapsrc",
		GoFiles:    []string{depSrc},
		VetxOutput: depVetx,
		VetxOnly:   true,
	})
	if code := vetMode(depCfg); code != 0 {
		t.Fatalf("facts-only invocation on the wrapping dep: exit %d, want 0", code)
	}
	raw, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatalf("dep .vetx not written: %v", err)
	}
	facts, err := analysis.DecodeFacts(raw)
	if err != nil {
		t.Fatalf("dep .vetx does not decode as a FactSet: %v", err)
	}
	foundWrap := false
	for key := range facts["errcmp"] {
		if strings.HasPrefix(key, "wraps:") {
			foundWrap = true
		}
	}
	if !foundWrap {
		t.Fatalf("dep .vetx carries no wraps: fact for errcmp; got %v", facts)
	}

	// Without the dependency's facts the comparison is legal.
	mainVetx := filepath.Join(dir, "main.vetx")
	aloneCfg := writeCfg(t, dir, "alone.cfg", vetCfg{
		ImportPath: "drugtree/internal/cmpsrc",
		GoFiles:    []string{mainSrc},
		VetxOutput: mainVetx,
	})
	if code, msgs := runVet(t, aloneCfg); code != 0 {
		t.Fatalf("comparison package with no dep facts: exit %d (%s), want clean", code, msgs)
	}

	// With them, the same file is a finding.
	withCfg := writeCfg(t, dir, "with.cfg", vetCfg{
		ImportPath:  "drugtree/internal/cmpsrc",
		GoFiles:     []string{mainSrc},
		VetxOutput:  mainVetx,
		PackageVetx: map[string]string{"drugtree/internal/wrapsrc": depVetx},
	})
	code, msgs := runVet(t, withCfg)
	if code == 0 {
		t.Fatalf("comparison package with dep facts merged: exit 0, want a finding")
	}
	if !strings.Contains(msgs, "errors.Is") || !strings.Contains(msgs, "drugtree/errcmp") {
		t.Fatalf("diagnostic does not name errors.Is/errcmp: %q", msgs)
	}

	// The downstream .vetx re-exports the merged table, so facts keep
	// flowing transitively without every package re-reading every dep.
	raw, err = os.ReadFile(mainVetx)
	if err != nil {
		t.Fatalf("downstream .vetx not written: %v", err)
	}
	merged, err := analysis.DecodeFacts(raw)
	if err != nil {
		t.Fatalf("downstream .vetx does not decode: %v", err)
	}
	foundWrap = false
	for key := range merged["errcmp"] {
		if strings.HasPrefix(key, "wraps:") {
			foundWrap = true
		}
	}
	if !foundWrap {
		t.Fatalf("downstream .vetx dropped the dep's wraps: fact; got %v", merged)
	}
}

// TestVetModeForeignPackage checks the policy boundary: a non-drugtree
// package gets an empty facts file and no diagnostics, whatever it
// contains.
func TestVetModeForeignPackage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "other.go")
	writeFile(t, src, `package other

import "fmt"

var ErrX = fmt.Errorf("x: %w", nil)

func Bad(err error) bool { return err == ErrX }
`)
	vetx := filepath.Join(dir, "other.vetx")
	cfg := writeCfg(t, dir, "other.cfg", vetCfg{
		ImportPath: "example.com/other",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	})
	if code, msgs := runVet(t, cfg); code != 0 {
		t.Fatalf("foreign package: exit %d (%s), want 0", code, msgs)
	}
	raw, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("foreign .vetx not written: %v", err)
	}
	if len(raw) != 0 {
		t.Fatalf("foreign .vetx should be empty, got %q", raw)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

func writeCfg(t *testing.T, dir, name string, cfg vetCfg) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	writeFile(t, path, string(data))
	return path
}

// runVet calls vetMode with stderr captured, returning the exit code
// and everything the run printed.
func runVet(t *testing.T, cfgPath string) (int, string) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "stderr")
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = tmp
	code := vetMode(cfgPath)
	os.Stderr = old
	if _, err := tmp.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	return code, string(out)
}
