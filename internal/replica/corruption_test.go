package replica

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// This file reuses the wal_tail_test.go harness idea — per-record WAL
// offsets captured via os.Stat so corruption lands inside a chosen
// record — but points it at the follower applier: a damaged record in
// the *shipped* stream must trigger a snapshot re-seed, never a
// silently diverged follower.

// corruptionFixture builds a replica set whose leader has n inserts in
// its WAL and returns the WAL size after each insert (the record
// boundaries).
func corruptionFixture(t *testing.T, n int) (*Set, []int64, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := store.MustSchema(
		store.Column{Name: "id", Kind: store.KindInt},
		store.Column{Name: "v", Kind: store.KindString},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	s, err := NewSet(db, Config{
		Followers:  1,
		MaxLagSeqs: 0,
		Clock:      netsim.NewVirtualClock(),
		OpenEngine: openEng,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	walPath := filepath.Join(dir, "wal.dtl")
	sizes := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if _, err := s.Insert("t", testRow(i)); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	return s, sizes, walPath
}

// followerIDs returns the follower's sorted id column.
func followerIDs(t *testing.T, s *Set) []int64 {
	t.Helper()
	tab, err := s.nodes[1].state.Load().db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	tab.Scan(func(_ int64, r store.Row) bool {
		ids = append(ids, r[0].I)
		return true
	})
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestCorruptShippedRecordTriggersReseed flips one bit inside an
// interior record of the stream the follower is about to tail. The
// ship must detect the damage (CRC), re-seed the follower from a
// fresh leader snapshot, and converge — not apply a prefix and
// silently diverge.
func TestCorruptShippedRecordTriggersReseed(t *testing.T) {
	const n, flipAfter = 10, 5
	s, sizes, walPath := corruptionFixture(t, n)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[sizes[flipAfter-1]+3] ^= 0x01
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	before := s.nodes[1].reseeds.Load()
	if err := s.Ship(context.Background()); err != nil {
		t.Fatalf("ship over corrupt stream must re-seed, not fail: %v", err)
	}
	if got := s.nodes[1].reseeds.Load(); got != before+1 {
		t.Fatalf("follower re-seeded %d times, want exactly 1 more", got-before)
	}
	ids := followerIDs(t, s)
	if len(ids) != n {
		t.Fatalf("follower has %d rows after re-seed, want %d (leader's live image)", len(ids), n)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("follower ids %v diverge from leader", ids)
		}
	}
	if got, want := s.nodes[1].seq(), s.Leader().WALSeq(); got != want {
		t.Fatalf("follower seq %d != leader seq %d after re-seed", got, want)
	}
}

// TestCorruptTailRecordTriggersReseed is the tail variant: the damaged
// record is the newest one. The follower still re-seeds to the
// leader's live image rather than trusting a stream whose end cannot
// be verified.
func TestCorruptTailRecordTriggersReseed(t *testing.T) {
	const n = 10
	s, sizes, walPath := corruptionFixture(t, n)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[sizes[n-2]+3] ^= 0x40
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	before := s.nodes[1].reseeds.Load()
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.nodes[1].reseeds.Load(); got != before+1 {
		t.Fatalf("follower re-seeded %d times, want exactly 1 more", got-before)
	}
	if got := len(followerIDs(t, s)); got != n {
		t.Fatalf("follower has %d rows after re-seed, want %d", got, n)
	}
}

// TestTornShippedTailIsNotDivergence truncates the stream mid-record —
// a crash artifact, not corruption. The ship applies the intact
// prefix and stops cleanly: no error, no re-seed, and the follower
// holds exactly the contiguous prefix (it catches the rest up after
// the leader recovers and rewrites the tail).
func TestTornShippedTailIsNotDivergence(t *testing.T) {
	const n = 10
	s, sizes, walPath := corruptionFixture(t, n)
	torn := sizes[n-2] + (sizes[n-1]-sizes[n-2])/2
	if err := os.Truncate(walPath, torn); err != nil {
		t.Fatal(err)
	}

	before := s.nodes[1].reseeds.Load()
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.nodes[1].reseeds.Load(); got != before {
		t.Fatalf("torn tail caused a re-seed; it is a crash artifact, not corruption")
	}
	ids := followerIDs(t, s)
	if len(ids) != n-1 {
		t.Fatalf("follower has %d rows after torn-tail ship, want %d", len(ids), n-1)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("follower ids %v: not the contiguous prefix", ids)
		}
	}
}
