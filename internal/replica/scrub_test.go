package replica

import (
	"context"
	"errors"
	"testing"

	"drugtree/internal/netsim"
	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// This file exercises the scrub-and-reseed self-healing path on a
// deterministic FaultFS: at-rest media rot on a follower (a flipped
// byte in its seed snapshot or shipped WAL) must be detected by
// Scrub/Restart, quarantined for forensics, and healed by a fresh
// leader re-seed — never served as a checksum-bad row.

// newFaultSet builds a replica set whose every persistence path runs
// through one FaultFS: durable leader at "lead" with n seeded rows,
// followers in "lead-replica-<j>" siblings.
func newFaultSet(t *testing.T, followers, n int) (*Set, *vfs.FaultFS) {
	t.Helper()
	fsys := vfs.NewFault(1)
	db, err := store.OpenWith("lead", store.Options{FS: fsys, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	schema := store.MustSchema(
		store.Column{Name: "id", Kind: store.KindInt},
		store.Column{Name: "v", Kind: store.KindString},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Insert("t", testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSet(db, Config{
		Followers:  followers,
		MaxLagSeqs: 0,
		Clock:      netsim.NewVirtualClock(),
		OpenEngine: openEng,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, fsys
}

// TestScrubHealsRottedSnapshot flips one bit inside a follower's seed
// snapshot at rest. Scrub must detect it (CRC trailer), quarantine the
// damaged directory, re-seed from the leader, and leave the follower
// byte-verifiable and row-identical to the leader.
func TestScrubHealsRottedSnapshot(t *testing.T) {
	s, fsys := newFaultSet(t, 2, 8)
	if err := fsys.Corrupt("lead-replica-1/snapshot.dts", 24, 0x10); err != nil {
		t.Fatal(err)
	}
	healed, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 1 {
		t.Fatalf("Scrub healed %d followers, want 1", healed)
	}
	if got := s.nodes[1].scrubs.Load(); got != 1 {
		t.Fatalf("follower scrub counter = %d, want 1", got)
	}
	if err := store.VerifyDir(fsys, "lead-replica-1"); err != nil {
		t.Fatalf("follower still fails verification after scrub: %v", err)
	}
	if _, err := fsys.Stat("lead-replica-1.quarantine"); err != nil {
		t.Fatalf("damaged directory was not quarantined: %v", err)
	}
	if got, want := nodeRows(t, s, 1), nodeRows(t, s, 0); got != want {
		t.Fatalf("healed follower has %d rows, leader has %d", got, want)
	}
	// The untouched follower was not disturbed.
	if got := s.nodes[2].scrubs.Load(); got != 0 {
		t.Fatalf("clean follower scrubbed %d times, want 0", got)
	}
	h := s.Health()
	if h[1].Scrubs != 1 || h[2].Scrubs != 0 {
		t.Fatalf("Health scrub counters = %d,%d, want 1,0", h[1].Scrubs, h[2].Scrubs)
	}
}

// TestScrubHealsRottedWAL is the shipped-log variant: the rot lands in
// a WAL record the follower already applied. Verification must catch
// the bad CRC at rest and the scrub must heal it.
func TestScrubHealsRottedWAL(t *testing.T) {
	s, fsys := newFaultSet(t, 1, 4)
	// Ship a few records into the follower's own WAL first.
	for i := 4; i < 8; i++ {
		if _, err := s.Insert("t", testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Corrupt("lead-replica-1/wal.dtl", 9, 0x04); err != nil {
		t.Fatal(err)
	}
	healed, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 1 {
		t.Fatalf("Scrub healed %d followers, want 1", healed)
	}
	if got, want := nodeRows(t, s, 1), nodeRows(t, s, 0); got != want {
		t.Fatalf("healed follower has %d rows, leader has %d", got, want)
	}
}

// TestScrubCleanSetIsNoOp proves the scrubber has no false positives:
// on an intact set it heals nothing and triggers no re-seed.
func TestScrubCleanSetIsNoOp(t *testing.T) {
	s, _ := newFaultSet(t, 2, 8)
	before := s.nodes[1].reseeds.Load() + s.nodes[2].reseeds.Load()
	healed, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 0 {
		t.Fatalf("Scrub healed %d followers on a clean set", healed)
	}
	if after := s.nodes[1].reseeds.Load() + s.nodes[2].reseeds.Load(); after != before {
		t.Fatalf("clean scrub re-seeded (%d -> %d)", before, after)
	}
}

// TestScrubLeaderDown: with no leader there is nothing trustworthy to
// re-seed from, so Scrub refuses rather than heal from a dead image.
func TestScrubLeaderDown(t *testing.T) {
	s, _ := newFaultSet(t, 1, 4)
	s.Kill(0)
	if _, err := s.Scrub(); !errors.Is(err, ErrLeaderDown) {
		t.Fatalf("Scrub with dead leader = %v, want ErrLeaderDown", err)
	}
}

// TestRestartSelfHealsCorruptFollower kills a follower, rots its
// durable snapshot, and restarts it. The reopen fails its checksum, so
// Restart must quarantine + re-seed instead of refusing to rejoin —
// and the rejoined follower serves the leader's rows, never the
// checksum-bad image.
func TestRestartSelfHealsCorruptFollower(t *testing.T) {
	s, fsys := newFaultSet(t, 1, 8)
	s.Kill(1)
	if err := fsys.Corrupt("lead-replica-1/snapshot.dts", 30, 0x80); err != nil {
		t.Fatal(err)
	}
	before := s.nodes[1].reseeds.Load()
	if err := s.Restart(context.Background(), 1); err != nil {
		t.Fatalf("Restart over corrupt durable state must self-heal, got %v", err)
	}
	if got := s.nodes[1].reseeds.Load(); got != before+1 {
		t.Fatalf("follower re-seeded %d times across self-heal, want exactly 1 more", got-before)
	}
	if s.nodes[1].down.Load() {
		t.Fatal("follower still down after self-healing restart")
	}
	if got, want := nodeRows(t, s, 1), nodeRows(t, s, 0); got != want {
		t.Fatalf("rejoined follower has %d rows, leader has %d", got, want)
	}
	if _, err := fsys.Stat("lead-replica-1.quarantine"); err != nil {
		t.Fatalf("corrupt state was not quarantined: %v", err)
	}
}

// TestRestartCorruptLeaderIsAnError: the leader cannot re-seed from
// itself, so a corrupt leader restart surfaces the reopen error
// (recovering the shard is a promotion case, not a self-heal case).
// A corrupt WAL alone would open fine — replay treats a bad CRC as
// crash residue and keeps the prefix — so the rot goes into the
// checkpointed snapshot, whose envelope checksum is load-bearing.
func TestRestartCorruptLeaderIsAnError(t *testing.T) {
	s, fsys := newFaultSet(t, 1, 4)
	if err := s.Leader().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Kill(0)
	if err := fsys.Corrupt("lead/snapshot.dts", 20, 0x01); err != nil {
		t.Fatal(err)
	}
	if err := s.Restart(context.Background(), 0); err == nil {
		t.Fatal("restarting a corrupt leader with no live peer to seed from must fail")
	}
}
