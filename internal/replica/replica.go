// Package replica turns one shard store into a replica set: a single
// leader owns the writable store and its WAL, and N followers — each
// an independent store.DB seeded from a leader snapshot — stay current
// by tailing the leader's WAL through the store's sequence-numbered
// segment-read API (snapshot-then-tail). Reads route across the set
// under a configurable staleness bound; writes always hit the leader.
// On leader death the most-caught-up live follower is promoted after
// replaying the dead leader's durable tail, and the set keeps serving.
//
// Replication is tick-driven: Ship applies the pending tail once and
// returns. The library spawns no goroutines and reads time only
// through an injectable netsim.Clock, so chaos experiments drive
// kill/promote/catch-up timelines deterministically on a virtual
// clock; the daemon pumps Ship from a wall-clock loop in cmd/.
package replica

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// Errors surfaced by the replica set.
var (
	// ErrLeaderDown means the write path is unavailable until a
	// promotion succeeds.
	ErrLeaderDown = errors.New("replica: leader is down")
	// ErrNoLiveReplica means promotion found no live node to take over.
	ErrNoLiveReplica = errors.New("replica: no live replica to promote")
)

// ReadPolicy selects which nodes of a set may answer a read.
type ReadPolicy int

const (
	// ReadAny round-robins over every serviceable node, leader
	// included. The default.
	ReadAny ReadPolicy = iota
	// ReadLeader pins reads to the leader (resync and the
	// differential baseline use it).
	ReadLeader
	// ReadFollowers prefers followers and falls back to the leader
	// only when no follower is serviceable.
	ReadFollowers
)

// Config parameterizes a Set.
type Config struct {
	// Followers is the number of read replicas beside the leader.
	Followers int
	// MaxLagSeqs bounds read staleness: a follower lagging more than
	// this many WAL records behind the set frontier is skipped by the
	// router. 0 demands fully-caught-up followers; negative disables
	// the bound.
	MaxLagSeqs int64
	// Clock is the injectable time source (promotion latency is
	// measured through it). Defaults to the wall clock.
	Clock netsim.Clock
	// OpenEngine builds a query engine over one node's store. The
	// shard layer closes it over the shared tree and query options.
	OpenEngine func(db *store.DB) *query.Engine
}

// nodeState is the swappable (db, engine) pair of one node: a re-seed
// replaces both atomically so in-flight reads finish on the old image.
type nodeState struct {
	db     *store.DB
	engine *query.Engine
}

// node is one member of the set. down and state are lock-free for the
// read router; term is guarded by Set.mu.
type node struct {
	id    int
	dir   string
	state atomic.Pointer[nodeState]
	down  atomic.Bool
	// term is the promotion epoch this node last synced under. A node
	// that was down across a promotion cannot prove its log is a
	// prefix of the new leader's stream, so it re-seeds on rejoin.
	term    int64
	reseeds atomic.Int64
	scrubs  atomic.Int64
}

func (n *node) seq() int64 { return n.state.Load().db.WALSeq() }

// Set is one shard's replica set.
type Set struct {
	// mu serializes mutations of the set: leader writes, shipping,
	// seeding, promotion, kill/restart. The read router never takes it.
	mu         sync.Mutex
	cfg        Config
	nodes      []*node
	leaderIdx  atomic.Int64
	term       int64
	rr         atomic.Int64
	promotions atomic.Int64
	// maxServedLag records the largest follower lag the router ever
	// served a read at — the observable staleness bound for T12.
	maxServedLag    atomic.Int64
	promoteLatency  atomic.Int64 // nanoseconds, last successful promotion
	promoteReplayed atomic.Int64 // tail records replayed at last promotion
	onTopology      func()
	// sopts/fsys are the leader store's durability options, inherited
	// by every follower store and by the scrubber, so the whole set
	// shares one filesystem seam and fsync policy.
	sopts store.Options
	fsys  vfs.FS
}

// NewSet wraps leader (a durable store) in a replica set with
// cfg.Followers freshly-seeded followers in <leaderdir>-replica-<j>
// sibling directories. Siblings, not children: a re-seed wipes the
// node's directory wholesale, and after a promotion the demoted
// ex-leader (whose directory is the original leader dir) is itself a
// re-seed target — nesting the followers under it would let that
// wipe destroy every live replica's files. onTopology, when non-nil,
// runs after every topology transition (kill, restart, promotion) so
// the owner can invalidate topology-keyed caches.
func NewSet(leader *store.DB, cfg Config, onTopology func()) (*Set, error) {
	if leader.Dir() == "" {
		return nil, errors.New("replica: leader must be a durable store (WAL shipping needs a log)")
	}
	if cfg.OpenEngine == nil {
		return nil, errors.New("replica: Config.OpenEngine is required")
	}
	if cfg.Followers < 0 {
		return nil, fmt.Errorf("replica: negative follower count %d", cfg.Followers)
	}
	if cfg.Clock == nil {
		cfg.Clock = netsim.NewWallClock()
	}
	s := &Set{cfg: cfg, onTopology: onTopology, sopts: leader.Opts(), fsys: leader.FS()}
	lead := &node{id: 0, dir: leader.Dir()}
	lead.state.Store(&nodeState{db: leader, engine: cfg.OpenEngine(leader)})
	s.nodes = append(s.nodes, lead)
	for j := 1; j <= cfg.Followers; j++ {
		n := &node{id: j, dir: fmt.Sprintf("%s-replica-%d", filepath.Clean(leader.Dir()), j)}
		s.nodes = append(s.nodes, n)
		if err := s.reseedLocked(n); err != nil {
			s.Close()
			return nil, fmt.Errorf("replica: seeding follower %d: %w", j, err)
		}
	}
	return s, nil
}

// Nodes returns the set size (leader + followers).
func (s *Set) Nodes() int { return len(s.nodes) }

// Live returns how many nodes are currently up.
func (s *Set) Live() int {
	live := 0
	for _, n := range s.nodes {
		if !n.down.Load() {
			live++
		}
	}
	return live
}

// LeaderIndex returns the current leader's node index.
func (s *Set) LeaderIndex() int { return int(s.leaderIdx.Load()) }

// Leader returns the current leader's store.
func (s *Set) Leader() *store.DB {
	return s.nodes[s.leaderIdx.Load()].state.Load().db
}

// Promotions returns how many promotions the set has performed.
func (s *Set) Promotions() int64 { return s.promotions.Load() }

// MaxServedLag returns the largest follower lag (in WAL records) any
// served read observed — the empirical staleness bound.
func (s *Set) MaxServedLag() int64 { return s.maxServedLag.Load() }

// LastPromotion returns the latency of and tail records replayed by
// the most recent promotion.
func (s *Set) LastPromotion() (time.Duration, int64) {
	return time.Duration(s.promoteLatency.Load()), s.promoteReplayed.Load()
}

// Close closes every node's store.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, n := range s.nodes {
		if n.down.Load() {
			continue // its store was closed at kill time
		}
		st := n.state.Load()
		if st == nil {
			continue // seeding failed before the node ever had a store
		}
		if err := st.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Insert writes one row through the leader (the only writable node).
func (s *Set) Insert(table string, r store.Row) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lead := s.nodes[s.leaderIdx.Load()]
	if lead.down.Load() {
		return 0, ErrLeaderDown
	}
	return lead.state.Load().db.Insert(table, r)
}

// Delete removes one row through the leader.
func (s *Set) Delete(table string, id int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lead := s.nodes[s.leaderIdx.Load()]
	if lead.down.Load() {
		return false, ErrLeaderDown
	}
	return lead.state.Load().db.Delete(table, id)
}

// Ship applies the leader's pending WAL tail to every live follower
// (one replication tick). A follower whose position has been
// checkpointed away or whose stream is corrupt re-seeds from a fresh
// leader snapshot instead of diverging silently.
func (s *Set) Ship(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lead := s.nodes[s.leaderIdx.Load()]
	if lead.down.Load() {
		return ErrLeaderDown
	}
	for _, n := range s.nodes {
		if n == lead || n.down.Load() {
			continue
		}
		if err := s.catchUpLocked(ctx, n, lead); err != nil {
			return fmt.Errorf("replica: shipping to follower %d: %w", n.id, err)
		}
	}
	return nil
}

// catchUpLocked tails leader WAL records into n, re-seeding when the
// stream cannot be trusted or n's log is not provably a prefix of the
// leader's (it was down across a promotion, or is ahead of the
// leader). Callers hold s.mu.
func (s *Set) catchUpLocked(ctx context.Context, n *node, lead *node) error {
	ldb := lead.state.Load().db
	fdb := n.state.Load().db
	if n.term != s.term || fdb.WALSeq() > ldb.WALSeq() {
		return s.reseedLocked(n)
	}
	err := ldb.ScanWAL(fdb.WALSeq(), func(seq int64, body []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fdb.ApplyReplicated(seq, body)
	})
	if errors.Is(err, store.ErrWALGap) || errors.Is(err, store.ErrWALCorrupt) {
		// Truncated or damaged stream: the follower cannot tail its
		// way to the frontier. Re-seed from the leader's live image.
		return s.reseedLocked(n)
	}
	return err
}

// reseedLocked wipes n's directory and rebuilds it from a fresh
// leader snapshot (the snapshot-then-tail bootstrap). Callers hold
// s.mu, which quiesces leader writes so the image/seq pair is
// consistent.
func (s *Set) reseedLocked(n *node) error {
	if old := n.state.Load(); old != nil {
		old.db.Close()
	}
	if err := s.fsys.RemoveAll(n.dir); err != nil {
		return err
	}
	if err := s.fsys.MkdirAll(n.dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(n.dir, "snapshot.dts")
	f, err := s.fsys.Create(path)
	if err != nil {
		return err
	}
	lead := s.nodes[s.leaderIdx.Load()]
	if _, err := lead.state.Load().db.WriteSnapshotTo(f); err != nil {
		f.Close()
		return err
	}
	// The seed must be durable before the follower serves from it: a
	// crash that loses a half-written seed snapshot would otherwise
	// resurrect the corrupt state this re-seed is erasing.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fsys.SyncDir(n.dir); err != nil {
		return err
	}
	db, err := store.OpenWith(n.dir, s.sopts)
	if err != nil {
		return err
	}
	n.state.Store(&nodeState{db: db, engine: s.cfg.OpenEngine(db)})
	n.term = s.term
	n.reseeds.Add(1)
	return nil
}

// quarantineLocked moves n's directory aside to <dir>.quarantine
// (replacing any previous quarantine) so the damaged bytes survive
// for forensics while the node re-seeds into a clean directory.
// Callers hold s.mu.
func (s *Set) quarantineLocked(n *node) error {
	q := n.dir + ".quarantine"
	if err := s.fsys.RemoveAll(q); err != nil {
		return err
	}
	if err := s.fsys.Rename(n.dir, q); err != nil {
		return err
	}
	return s.fsys.SyncDir(filepath.Dir(filepath.Clean(n.dir)))
}

// Scrub verifies every live follower's at-rest state (snapshot
// checksum, WAL record CRCs) and self-heals any follower whose bytes
// have rotted: the damaged directory is quarantined and the follower
// re-seeds from a fresh leader snapshot, so a checksum-bad row can
// never be served after the node's next reopen. It returns how many
// followers were healed. The leader is not scrubbed here — its
// corruption surfaces at reopen/checkpoint and is a promotion case,
// not a re-seed case.
func (s *Set) Scrub() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lead := s.nodes[s.leaderIdx.Load()]
	if lead.down.Load() {
		return 0, ErrLeaderDown
	}
	healed := 0
	for _, n := range s.nodes {
		if n == lead || n.down.Load() {
			continue
		}
		if err := store.VerifyDir(s.fsys, n.dir); err == nil {
			continue
		}
		if err := s.quarantineLocked(n); err != nil {
			return healed, fmt.Errorf("replica: quarantining follower %d: %w", n.id, err)
		}
		if err := s.reseedLocked(n); err != nil {
			return healed, fmt.Errorf("replica: re-seeding scrubbed follower %d: %w", n.id, err)
		}
		n.scrubs.Add(1)
		healed++
	}
	return healed, nil
}

// Kill simulates a crash of node i: it is removed from routing and
// its store is closed. Killing the leader leaves the set read-only
// (followers keep serving) until Promote installs a new leader.
func (s *Set) Kill(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[i]
	if n.down.Load() {
		return
	}
	n.down.Store(true)
	n.state.Load().db.Close()
	if s.onTopology != nil {
		s.onTopology()
	}
}

// Restart brings a killed node back: its store reopens from its own
// durable directory (snapshot + WAL replay), then catches up to the
// current leader — tailing when its log is provably a prefix of the
// leader's stream, re-seeding otherwise.
func (s *Set) Restart(ctx context.Context, i int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nodes[i]
	if !n.down.Load() {
		return nil
	}
	db, err := store.OpenWith(n.dir, s.sopts)
	if err != nil {
		// The node's durable state is unreadable (checksum-bad snapshot,
		// unparseable WAL): self-heal by quarantining the damage and
		// re-seeding from the live leader instead of refusing to rejoin.
		lead := s.nodes[s.leaderIdx.Load()]
		if n == lead || lead.down.Load() {
			return fmt.Errorf("replica: reopening node %d: %w", i, err)
		}
		if qerr := s.quarantineLocked(n); qerr != nil {
			return fmt.Errorf("replica: quarantining node %d (%v): %w", i, err, qerr)
		}
		if rerr := s.reseedLocked(n); rerr != nil {
			return fmt.Errorf("replica: re-seeding node %d (%v): %w", i, err, rerr)
		}
		n.down.Store(false)
		if s.onTopology != nil {
			s.onTopology()
		}
		return nil
	}
	n.state.Store(&nodeState{db: db, engine: s.cfg.OpenEngine(db)})
	lead := s.nodes[s.leaderIdx.Load()]
	if n != lead && !lead.down.Load() {
		if err := s.catchUpLocked(ctx, n, lead); err != nil {
			n.state.Load().db.Close()
			return fmt.Errorf("replica: node %d rejoin catch-up: %w", i, err)
		}
	}
	n.down.Store(false)
	if s.onTopology != nil {
		s.onTopology()
	}
	return nil
}

// Promote installs the most-caught-up live node as leader after the
// current leader died. The dead leader's durable WAL tail — records
// it committed but never shipped — is replayed onto the candidate
// first; a corrupt tail record is a crash artifact and ends the
// replay, while a sequence gap (the tail was checkpointed away past
// the candidate) aborts the promotion. Live followers keep tailing
// across the promotion (their logs are prefixes of the same stream);
// nodes down across it re-seed on rejoin.
func (s *Set) Promote(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	oldIdx := int(s.leaderIdx.Load())
	old := s.nodes[oldIdx]
	if !old.down.Load() {
		return oldIdx, nil // leader is alive; nothing to promote
	}
	start := s.cfg.Clock.Now()
	best := -1
	var bestSeq int64 = -1
	for _, n := range s.nodes {
		if n == old || n.down.Load() {
			continue
		}
		if seq := n.seq(); seq > bestSeq {
			best, bestSeq = n.id, seq
		}
	}
	if best < 0 {
		return -1, ErrNoLiveReplica
	}
	cand := s.nodes[best]
	cdb := cand.state.Load().db
	var replayed int64
	err := old.state.Load().db.ScanWAL(cdb.WALSeq(), func(seq int64, body []byte) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cdb.ApplyReplicated(seq, body); err != nil {
			return err
		}
		replayed++
		return nil
	})
	if err != nil && !errors.Is(err, store.ErrWALCorrupt) {
		return -1, fmt.Errorf("replica: replaying dead leader tail: %w", err)
	}
	s.leaderIdx.Store(int64(best))
	s.term++
	for _, n := range s.nodes {
		if !n.down.Load() {
			n.term = s.term
		}
	}
	s.promotions.Add(1)
	s.promoteReplayed.Store(replayed)
	s.promoteLatency.Store(int64(s.cfg.Clock.Now() - start))
	if s.onTopology != nil {
		s.onTopology()
	}
	return best, nil
}

// Route picks a node to answer a read under policy, skipping dead
// nodes and followers lagging beyond MaxLagSeqs, round-robin over the
// remainder. ok is false when no node may serve (every replica of the
// shard is down).
func (s *Set) Route(policy ReadPolicy) (eng *query.Engine, nodeID int, ok bool) {
	lead := int(s.leaderIdx.Load())
	if policy == ReadLeader {
		n := s.nodes[lead]
		if n.down.Load() {
			return nil, -1, false
		}
		return n.state.Load().engine, lead, true
	}
	frontier := s.Frontier()
	type cand struct {
		n   *node
		lag int64
	}
	var cands []cand
	for _, n := range s.nodes {
		if n.down.Load() {
			continue
		}
		if n.id == lead {
			if policy == ReadFollowers {
				continue
			}
			cands = append(cands, cand{n, 0})
			continue
		}
		lag := frontier - n.seq()
		if s.cfg.MaxLagSeqs >= 0 && lag > s.cfg.MaxLagSeqs {
			continue // too stale to serve
		}
		cands = append(cands, cand{n, lag})
	}
	if len(cands) == 0 {
		if policy == ReadFollowers {
			// No serviceable follower: degrade to the leader rather
			// than fail the read.
			n := s.nodes[lead]
			if !n.down.Load() {
				return n.state.Load().engine, lead, true
			}
		}
		return nil, -1, false
	}
	c := cands[int(s.rr.Add(1)-1)%len(cands)]
	for {
		cur := s.maxServedLag.Load()
		if c.lag <= cur || s.maxServedLag.CompareAndSwap(cur, c.lag) {
			break
		}
	}
	return c.n.state.Load().engine, c.n.id, true
}

// Frontier returns the highest WAL sequence any live node has — the
// freshness bar lag is measured against. With every node down it
// falls back to the dead nodes' last known positions.
func (s *Set) Frontier() int64 {
	var live, all int64
	anyLive := false
	for _, n := range s.nodes {
		seq := n.seq()
		if seq > all {
			all = seq
		}
		if !n.down.Load() {
			anyLive = true
			if seq > live {
				live = seq
			}
		}
	}
	if anyLive {
		return live
	}
	return all
}

// Health is one node's replication status.
type Health struct {
	Replica    int
	Role       string // "leader" or "follower"
	Status     string // "ok" or "down"
	AppliedSeq int64  // last WAL record applied locally
	Lag        int64  // records behind the set frontier
	Reseeds    int64  // snapshot re-seeds this node has undergone
	Scrubs     int64  // scrub-detected corruptions healed on this node
}

// Health reports every node's role, liveness, applied sequence, and
// lag against the set frontier.
func (s *Set) Health() []Health {
	lead := int(s.leaderIdx.Load())
	frontier := s.Frontier()
	out := make([]Health, len(s.nodes))
	for i, n := range s.nodes {
		h := Health{
			Replica:    i,
			Role:       "follower",
			Status:     "ok",
			AppliedSeq: n.seq(),
			Reseeds:    n.reseeds.Load(),
			Scrubs:     n.scrubs.Load(),
		}
		if i == lead {
			h.Role = "leader"
		}
		if n.down.Load() {
			h.Status = "down"
		}
		if lag := frontier - h.AppliedSeq; lag > 0 {
			h.Lag = lag
		}
		out[i] = h
	}
	return out
}
