package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"drugtree/internal/lint/leaktest"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

func TestMain(m *testing.M) {
	leaktest.VerifyTestMain(m)
}

func openEng(db *store.DB) *query.Engine {
	return query.NewEngine(query.NewDBCatalog(db, nil), query.Options{})
}

// newTestSet builds a durable leader with a seeded table and wraps it
// in a replica set on a virtual clock.
func newTestSet(t *testing.T, followers int, maxLag int64) *Set {
	t.Helper()
	db, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	schema := store.MustSchema(
		store.Column{Name: "id", Kind: store.KindInt},
		store.Column{Name: "v", Kind: store.KindString},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.Insert("t", testRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSet(db, Config{
		Followers:  followers,
		MaxLagSeqs: maxLag,
		Clock:      netsim.NewVirtualClock(),
		OpenEngine: openEng,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testRow(i int) store.Row {
	return store.Row{store.IntValue(int64(i)), store.StringValue(fmt.Sprintf("v-%d", i))}
}

// nodeRows returns node i's row count in table t.
func nodeRows(t *testing.T, s *Set, i int) int {
	t.Helper()
	tab, err := s.nodes[i].state.Load().db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	return tab.Len()
}

// setInsert writes n rows through the set's leader.
func setInsert(t *testing.T, s *Set, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.Insert("t", testRow(from+i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeedAndTail pins the snapshot-then-tail bootstrap: followers are
// born fully caught up, new leader writes lag until a Ship tick
// applies them, and Health reports the exact lag both before and
// after.
func TestSeedAndTail(t *testing.T) {
	s := newTestSet(t, 2, 0)
	for i := 1; i <= 2; i++ {
		if got := nodeRows(t, s, i); got != 8 {
			t.Fatalf("follower %d seeded with %d rows, want 8", i, got)
		}
	}
	setInsert(t, s, 100, 5)
	for _, h := range s.Health()[1:] {
		if h.Lag != 5 {
			t.Fatalf("follower %d lag = %d before ship, want 5", h.Replica, h.Lag)
		}
	}
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if got := nodeRows(t, s, i); got != 13 {
			t.Fatalf("follower %d has %d rows after ship, want 13", i, got)
		}
	}
	for _, h := range s.Health() {
		if h.Lag != 0 || h.Status != "ok" {
			t.Fatalf("node %d health after ship = %+v, want lag 0 ok", h.Replica, h)
		}
		if h.AppliedSeq != s.Leader().WALSeq() {
			t.Fatalf("node %d applied seq %d != leader %d", h.Replica, h.AppliedSeq, s.Leader().WALSeq())
		}
	}
}

// TestRouteLagBound pins lag-bounded routing: with MaxLagSeqs 0 a
// lagging follower is skipped (every read lands on the leader), after
// a ship the router round-robins over all three nodes, and a generous
// bound serves lagging followers while recording the observed
// staleness.
func TestRouteLagBound(t *testing.T) {
	s := newTestSet(t, 2, 0)
	setInsert(t, s, 100, 4) // followers now lag by 4
	for i := 0; i < 6; i++ {
		_, id, ok := s.Route(ReadAny)
		if !ok || id != 0 {
			t.Fatalf("read %d routed to node %d (ok=%v), want leader 0 while followers lag", i, id, ok)
		}
	}
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 9; i++ {
		_, id, ok := s.Route(ReadAny)
		if !ok {
			t.Fatal("route failed with all nodes caught up")
		}
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin visited %v, want all 3 nodes", seen)
	}
	if s.MaxServedLag() != 0 {
		t.Fatalf("MaxServedLag = %d with a zero bound", s.MaxServedLag())
	}

	// A generous bound serves stale followers and records how stale.
	s.cfg.MaxLagSeqs = 10
	setInsert(t, s, 200, 3)
	seen = map[int]bool{}
	for i := 0; i < 9; i++ {
		_, id, _ := s.Route(ReadAny)
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("bounded-lag round-robin visited %v, want all 3 nodes", seen)
	}
	if got := s.MaxServedLag(); got != 3 {
		t.Fatalf("MaxServedLag = %d, want 3", got)
	}

	// ReadFollowers never lands on the leader while a follower serves.
	for i := 0; i < 6; i++ {
		_, id, ok := s.Route(ReadFollowers)
		if !ok || id == 0 {
			t.Fatalf("ReadFollowers routed to node %d (ok=%v)", id, ok)
		}
	}
}

// TestPromoteReplaysDeadLeaderTail kills a leader holding committed
// records the followers never saw: promotion must pick the
// most-caught-up follower, replay the dead leader's durable tail onto
// it, and restore the write path — zero committed records lost.
func TestPromoteReplaysDeadLeaderTail(t *testing.T) {
	s := newTestSet(t, 2, 0)
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Make follower 1 more caught up than follower 2.
	setInsert(t, s, 100, 3)
	lead := s.nodes[0].state.Load().db
	f1 := s.nodes[1].state.Load().db
	if err := lead.ScanWAL(f1.WALSeq(), func(seq int64, body []byte) error {
		return f1.ApplyReplicated(seq, body)
	}); err != nil {
		t.Fatal(err)
	}
	// Three more records nobody saw: the dead leader's tail.
	setInsert(t, s, 200, 3)

	s.Kill(0)
	if _, err := s.Insert("t", testRow(999)); !errors.Is(err, ErrLeaderDown) {
		t.Fatalf("insert with dead leader: err = %v, want ErrLeaderDown", err)
	}
	newLeader, err := s.Promote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if newLeader != 1 {
		t.Fatalf("promoted node %d, want most-caught-up follower 1", newLeader)
	}
	if s.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", s.Promotions())
	}
	if _, replayed := s.LastPromotion(); replayed != 3 {
		// Exactly the 3-record dead tail follower 1 never saw.
		t.Fatalf("promotion replayed %d records, want 3", replayed)
	}
	if got := nodeRows(t, s, 1); got != 14 {
		t.Fatalf("new leader has %d rows, want 14 (no committed record lost)", got)
	}
	// Writes flow again; Ship catches the surviving follower up.
	setInsert(t, s, 300, 2)
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := nodeRows(t, s, 2); got != 16 {
		t.Fatalf("follower 2 has %d rows after post-promotion ship, want 16", got)
	}
	if h := s.Health(); h[1].Role != "leader" || h[0].Role != "follower" || h[0].Status != "down" {
		t.Fatalf("post-promotion health = %+v", h)
	}
}

// TestPromoteNoLiveReplica pins the terminal failure: with every node
// dead there is nothing to promote.
func TestPromoteNoLiveReplica(t *testing.T) {
	s := newTestSet(t, 1, 0)
	s.Kill(0)
	s.Kill(1)
	if _, err := s.Promote(context.Background()); !errors.Is(err, ErrNoLiveReplica) {
		t.Fatalf("promote with all nodes dead: err = %v, want ErrNoLiveReplica", err)
	}
	if _, _, ok := s.Route(ReadAny); ok {
		t.Fatal("route succeeded with every node dead")
	}
}

// TestRestartFollowerTails pins the cheap rejoin: a follower that was
// down while the same leader kept writing reopens from its own
// durable state and tails the gap — no snapshot re-seed.
func TestRestartFollowerTails(t *testing.T) {
	s := newTestSet(t, 2, 0)
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	seedReseeds := s.nodes[1].reseeds.Load()
	s.Kill(1)
	setInsert(t, s, 100, 4)
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err) // ships to the live follower only
	}
	if err := s.Restart(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := nodeRows(t, s, 1); got != 12 {
		t.Fatalf("restarted follower has %d rows, want 12", got)
	}
	if got := s.nodes[1].reseeds.Load(); got != seedReseeds {
		t.Fatalf("restart re-seeded (%d -> %d); a same-term rejoin must tail", seedReseeds, got)
	}
}

// TestRestartAcrossPromotionReseeds pins the safety rule: a node that
// was down across a promotion cannot prove its log is a prefix of the
// new leader's stream, so rejoin re-seeds it from a snapshot.
func TestRestartAcrossPromotionReseeds(t *testing.T) {
	s := newTestSet(t, 2, 0)
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Kill(2)
	setInsert(t, s, 100, 2)
	s.Kill(0)
	if _, err := s.Promote(context.Background()); err != nil {
		t.Fatal(err)
	}
	setInsert(t, s, 200, 3)
	before := s.nodes[2].reseeds.Load()
	if err := s.Restart(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if got := s.nodes[2].reseeds.Load(); got != before+1 {
		t.Fatalf("rejoin across promotion re-seeded %d times, want exactly 1 more", got-before)
	}
	if got, want := nodeRows(t, s, 2), nodeRows(t, s, 1); got != want {
		t.Fatalf("re-seeded node has %d rows, leader has %d", got, want)
	}
	// The old leader rejoins as a follower the same way.
	before = s.nodes[0].reseeds.Load()
	if err := s.Restart(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := s.nodes[0].reseeds.Load(); got != before+1 {
		t.Fatalf("old leader rejoined without re-seed")
	}
	if h := s.Health(); h[0].Role != "follower" || h[0].Status != "ok" {
		t.Fatalf("old leader health after rejoin = %+v", h[0])
	}
}

// TestShipCancellation pins that a mid-ship cancellation unwinds with
// the context error instead of wedging the set.
func TestShipCancellation(t *testing.T) {
	s := newTestSet(t, 1, 0)
	setInsert(t, s, 100, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Ship(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ship under cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The set stays usable: a live ship completes the catch-up.
	if err := s.Ship(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := nodeRows(t, s, 1); got != 13 {
		t.Fatalf("follower has %d rows after recovery ship, want 13", got)
	}
}

// TestRejoinReseedLeavesSiblingsIntact pins the replica directory
// layout: follower directories are siblings of the leader's, so the
// demoted ex-leader's rejoin re-seed (which wipes its own directory
// wholesale) cannot destroy the live replicas' files. The regression
// it guards: with followers nested under the leader directory, the
// round-12-style rejoin wiped the promoted leader's WAL path and
// every subsequent ship collapsed into a fresh snapshot re-seed.
func TestRejoinReseedLeavesSiblingsIntact(t *testing.T) {
	s := newTestSet(t, 2, 0)
	ctx := context.Background()
	if err := s.Ship(ctx); err != nil {
		t.Fatal(err)
	}
	s.Kill(0)
	if _, err := s.Promote(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert("t", testRow(100)); err != nil {
		t.Fatal(err)
	}
	// The ex-leader rejoins on a term it has never seen: exactly one
	// re-seed, from the promoted leader's snapshot.
	if err := s.Restart(ctx, 0); err != nil {
		t.Fatal(err)
	}
	baseline := map[int]int64{}
	for _, h := range s.Health() {
		baseline[h.Replica] = h.Reseeds
	}
	if baseline[0] == 0 {
		t.Fatal("rejoined ex-leader did not re-seed onto the bumped term")
	}
	// Steady-state shipping after the rejoin must tail, not re-seed:
	// a growing count here means the rejoin wipe took the promoted
	// leader's files with it.
	for i := 0; i < 4; i++ {
		if _, err := s.Insert("t", testRow(200+i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Ship(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range s.Health() {
		if h.Reseeds != baseline[h.Replica] {
			t.Fatalf("replica %d re-seeded during steady-state shipping after rejoin (%d -> %d)",
				h.Replica, baseline[h.Replica], h.Reseeds)
		}
		if h.Lag != 0 {
			t.Fatalf("replica %d lag %d after quiesced ship", h.Replica, h.Lag)
		}
	}
}
