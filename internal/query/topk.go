package query

import (
	"container/heap"

	"drugtree/internal/store"
)

// topKIter implements ORDER BY ... LIMIT k with a bounded heap
// instead of a full sort: O(n log k) time and O(k) memory. The
// physical planner substitutes it whenever a LimitNode sits directly
// on a SortNode.
type topKIter struct {
	in     iterator
	keys   []*boundExpr
	descs  []bool
	k      int
	cancel canceller
	op     *OpStats

	out []store.Row
	pos int
	run bool
}

// keyedRow carries a row with its precomputed sort keys.
type keyedRow struct {
	row  store.Row
	keys []store.Value
}

// rowHeap keeps the *worst* row (per the requested order) at the top
// so it can be displaced by better rows.
type rowHeap struct {
	rows  []keyedRow
	descs []bool
}

func (h *rowHeap) Len() int { return len(h.rows) }

// less orders a before b per the requested ORDER BY.
func (h *rowHeap) ordered(a, b keyedRow) bool {
	for i := range a.keys {
		c := store.Compare(a.keys[i], b.keys[i])
		if c == 0 {
			continue
		}
		if h.descs[i] {
			return c > 0
		}
		return c < 0
	}
	return false
}

// Less puts the worst element at the heap top (max-heap by order).
func (h *rowHeap) Less(i, j int) bool { return h.ordered(h.rows[j], h.rows[i]) }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(keyedRow)) }
func (h *rowHeap) Pop() any {
	old := h.rows
	n := len(old)
	it := old[n-1]
	h.rows = old[:n-1]
	return it
}

func (t *topKIter) Next() (store.Row, bool, error) {
	if !t.run {
		if err := t.drain(); err != nil {
			return nil, false, err
		}
		t.run = true
	}
	if t.pos >= len(t.out) {
		return nil, false, nil
	}
	r := t.out[t.pos]
	t.pos++
	t.op.addOut(1)
	return r, true, nil
}

func (t *topKIter) drain() error {
	h := &rowHeap{descs: t.descs}
	heap.Init(h)
	for {
		if err := t.cancel.check(); err != nil {
			return err
		}
		r, ok, err := t.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		t.op.addIn(1)
		ks := make([]store.Value, len(t.keys))
		for i, k := range t.keys {
			v, err := k.eval(r)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		kr := keyedRow{row: r, keys: ks}
		if h.Len() < t.k {
			heap.Push(h, kr)
			continue
		}
		// Displace the current worst when the new row orders before
		// it.
		if h.ordered(kr, h.rows[0]) {
			h.rows[0] = kr
			heap.Fix(h, 0)
		}
	}
	// Pop yields worst-first; fill back-to-front.
	t.out = make([]store.Row, h.Len())
	for i := len(t.out) - 1; i >= 0; i-- {
		t.out[i] = heap.Pop(h).(keyedRow).row
	}
	return nil
}
