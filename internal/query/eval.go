package query

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"drugtree/internal/chem"
	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// planCol is one column of an intermediate relation.
type planCol struct {
	Qualifier string
	Name      string
	Kind      store.Kind
}

// planSchema describes the rows flowing between plan operators.
type planSchema struct {
	cols []planCol
}

func (s *planSchema) Len() int { return len(s.cols) }

// resolve maps a column reference to its position, diagnosing unknown
// and ambiguous names.
func (s *planSchema) resolve(ref *ColumnRef) (int, error) {
	found := -1
	for i, c := range s.cols {
		if c.Name != ref.Name {
			continue
		}
		if ref.Qualifier != "" && c.Qualifier != ref.Qualifier {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("query: ambiguous column %s", ref)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("query: unknown column %s", ref)
	}
	return found, nil
}

func (s *planSchema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		if c.Qualifier != "" {
			parts[i] = c.Qualifier + "." + c.Name
		} else {
			parts[i] = c.Name
		}
	}
	return strings.Join(parts, ", ")
}

// concat joins two schemas (for joins).
func (s *planSchema) concat(o *planSchema) *planSchema {
	out := &planSchema{cols: make([]planCol, 0, len(s.cols)+len(o.cols))}
	out.cols = append(out.cols, s.cols...)
	out.cols = append(out.cols, o.cols...)
	return out
}

// boundExpr is a compiled expression: an evaluator over rows of a
// fixed schema plus the statically inferred result kind (KindNull when
// the kind depends on runtime input).
type boundExpr struct {
	eval func(store.Row) (store.Value, error)
	kind store.Kind
	src  Expr
}

// bindEnv supplies binding context: the input schema, the tree for
// WITHIN_SUBTREE resolution, and the catalog + optimizer options for
// executing uncorrelated subqueries. validateOnly marks planning-time
// binds that must not execute subqueries (they run again at physical
// binding).
type bindEnv struct {
	ctx          context.Context
	schema       *planSchema
	tree         *phylo.Tree
	cat          Catalog
	snap         *store.SnapshotHandle // statement snapshot subqueries reuse
	opts         Options
	validateOnly bool
}

// bind compiles e against env.
func bind(e Expr, env bindEnv) (*boundExpr, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return &boundExpr{
			eval: func(store.Row) (store.Value, error) { return v, nil },
			kind: v.K,
			src:  e,
		}, nil
	case *ColumnRef:
		idx, err := env.schema.resolve(x)
		if err != nil {
			return nil, err
		}
		kind := env.schema.cols[idx].Kind
		return &boundExpr{
			eval: func(r store.Row) (store.Value, error) { return r[idx], nil },
			kind: kind,
			src:  e,
		}, nil
	case *NegExpr:
		inner, err := bind(x.E, env)
		if err != nil {
			return nil, err
		}
		return &boundExpr{
			eval: func(r store.Row) (store.Value, error) {
				v, err := inner.eval(r)
				if err != nil || v.IsNull() {
					return store.NullValue(), err
				}
				switch v.K {
				case store.KindInt:
					return store.IntValue(-v.I), nil
				case store.KindFloat:
					return store.FloatValue(-v.F), nil
				}
				return store.NullValue(), fmt.Errorf("query: cannot negate %v", v.K)
			},
			kind: inner.kind,
			src:  e,
		}, nil
	case *NotExpr:
		inner, err := bind(x.E, env)
		if err != nil {
			return nil, err
		}
		return &boundExpr{
			eval: func(r store.Row) (store.Value, error) {
				v, err := inner.eval(r)
				if err != nil {
					return store.NullValue(), err
				}
				if v.IsNull() {
					return store.BoolValue(false), nil
				}
				if v.K != store.KindBool {
					return store.NullValue(), fmt.Errorf("query: NOT expects BOOL, got %v", v.K)
				}
				return store.BoolValue(!v.Bool()), nil
			},
			kind: store.KindBool,
			src:  e,
		}, nil
	case *BinaryExpr:
		return bindBinary(x, env)
	case *SubtreeExpr:
		return bindSubtree(x, env)
	case *AncestorExpr:
		return bindAncestor(x, env)
	case *TanimotoExpr:
		return bindTanimoto(x, env)
	case *SubqueryExpr:
		return bindScalarSubquery(x, env)
	case *InSubqueryExpr:
		return bindInSubquery(x, env)
	case *AggExpr:
		return nil, fmt.Errorf("query: aggregate %s not allowed here", x)
	}
	return nil, fmt.Errorf("query: cannot bind %T", e)
}

// runSubquery plans (and, unless validating, executes) an
// uncorrelated subquery. It returns nil rows in validate-only mode.
func runSubquery(stmt *SelectStmt, env bindEnv) (*Result, *planSchema, error) {
	if env.cat == nil {
		return nil, nil, fmt.Errorf("query: subqueries require a catalog")
	}
	logical, err := BuildLogical(stmt, env.cat)
	if err != nil {
		return nil, nil, fmt.Errorf("query: subquery: %w", err)
	}
	if logical.Schema().Len() != 1 {
		return nil, nil, fmt.Errorf("query: subquery must produce exactly one column, got %d", logical.Schema().Len())
	}
	if env.validateOnly {
		return nil, logical.Schema(), nil
	}
	// The subquery runs against the outer statement's pinned snapshot
	// (RunAt leaves ownership with the outer statement), so a statement
	// and its subqueries always read one consistent image.
	res, err := NewEngine(env.cat, env.opts).RunAt(env.ctx, stmt, env.snap)
	if err != nil {
		return nil, nil, fmt.Errorf("query: subquery: %w", err)
	}
	return res, logical.Schema(), nil
}

// bindScalarSubquery executes the subquery once: one column, at most
// one row (zero rows → NULL).
func bindScalarSubquery(x *SubqueryExpr, env bindEnv) (*boundExpr, error) {
	res, schema, err := runSubquery(x.Stmt, env)
	if err != nil {
		return nil, err
	}
	kind := schema.cols[0].Kind
	if env.validateOnly {
		return &boundExpr{
			eval: func(store.Row) (store.Value, error) { return store.NullValue(), nil },
			kind: kind,
			src:  x,
		}, nil
	}
	if len(res.Rows) > 1 {
		return nil, fmt.Errorf("query: scalar subquery returned %d rows", len(res.Rows))
	}
	v := store.NullValue()
	if len(res.Rows) == 1 {
		v = res.Rows[0][0]
	}
	return &boundExpr{
		eval: func(store.Row) (store.Value, error) { return v, nil },
		kind: kind,
		src:  x,
	}, nil
}

// bindInSubquery materializes the subquery's single column into a set
// and compiles the membership test.
func bindInSubquery(x *InSubqueryExpr, env bindEnv) (*boundExpr, error) {
	needle, err := bind(x.Needle, env)
	if err != nil {
		return nil, err
	}
	res, _, err := runSubquery(x.Stmt, env)
	if err != nil {
		return nil, err
	}
	if env.validateOnly {
		return &boundExpr{
			eval: func(store.Row) (store.Value, error) { return store.BoolValue(false), nil },
			kind: store.KindBool,
			src:  x,
		}, nil
	}
	set := make(map[uint64][]store.Value, len(res.Rows))
	for _, r := range res.Rows {
		v := r[0]
		if v.IsNull() {
			continue
		}
		h := v.Hash()
		dup := false
		for _, existing := range set[h] {
			if store.Equal(existing, v) {
				dup = true
				break
			}
		}
		if !dup {
			set[h] = append(set[h], v)
		}
	}
	return &boundExpr{
		eval: func(r store.Row) (store.Value, error) {
			v, err := needle.eval(r)
			if err != nil {
				return store.NullValue(), err
			}
			if v.IsNull() {
				return store.BoolValue(false), nil
			}
			for _, candidate := range set[v.Hash()] {
				if store.Equal(candidate, v) {
					return store.BoolValue(true), nil
				}
			}
			return store.BoolValue(false), nil
		},
		kind: store.KindBool,
		src:  x,
	}, nil
}

// bindTanimoto parses and fingerprints the reference SMILES at bind
// time, then scores each row's SMILES against it. Row fingerprints
// are memoized by SMILES string (ligand relations repeat molecules
// across rows far more than they vary).
func bindTanimoto(x *TanimotoExpr, env bindEnv) (*boundExpr, error) {
	ref, err := chem.ParseSMILES(x.SMILES)
	if err != nil {
		return nil, fmt.Errorf("query: TANIMOTO reference: %w", err)
	}
	refFP := ref.ComputeFingerprint()
	idx, err := env.schema.resolve(x.Column)
	if err != nil {
		return nil, err
	}
	const memoCap = 1 << 16
	// The memo is shared by every worker evaluating this bound
	// expression under parallel execution, so guard it with a mutex
	// (fingerprinting dwarfs the lock cost).
	var memoMu sync.Mutex
	memo := make(map[string]*chem.Fingerprint)
	return &boundExpr{
		eval: func(r store.Row) (store.Value, error) {
			v := r[idx]
			if v.K != store.KindString {
				return store.NullValue(), nil
			}
			memoMu.Lock()
			fp, ok := memo[v.S]
			memoMu.Unlock()
			if !ok {
				m, err := chem.ParseSMILES(v.S)
				if err != nil {
					fp = nil // unparseable: score NULL, remember that
				} else {
					fp = m.ComputeFingerprint()
				}
				memoMu.Lock()
				if len(memo) < memoCap {
					memo[v.S] = fp
				}
				memoMu.Unlock()
			}
			if fp == nil {
				return store.NullValue(), nil
			}
			return store.FloatValue(refFP.Tanimoto(fp)), nil
		},
		kind: store.KindFloat,
		src:  x,
	}, nil
}

func bindBinary(x *BinaryExpr, env bindEnv) (*boundExpr, error) {
	l, err := bind(x.L, env)
	if err != nil {
		return nil, err
	}
	r, err := bind(x.R, env)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch {
	case op == OpAnd || op == OpOr:
		isAnd := op == OpAnd
		return &boundExpr{
			eval: func(row store.Row) (store.Value, error) {
				lv, err := l.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				lb := lv.K == store.KindBool && lv.Bool()
				// Short circuit.
				if isAnd && !lb && lv.K == store.KindBool {
					return store.BoolValue(false), nil
				}
				if !isAnd && lb {
					return store.BoolValue(true), nil
				}
				rv, err := r.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				rb := rv.K == store.KindBool && rv.Bool()
				if isAnd {
					return store.BoolValue(lb && rb), nil
				}
				return store.BoolValue(lb || rb), nil
			},
			kind: store.KindBool,
			src:  x,
		}, nil
	case op == OpLike:
		return &boundExpr{
			eval: func(row store.Row) (store.Value, error) {
				lv, err := l.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				rv, err := r.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				if lv.K != store.KindString || rv.K != store.KindString {
					return store.BoolValue(false), nil
				}
				return store.BoolValue(likeMatch(lv.S, rv.S)), nil
			},
			kind: store.KindBool,
			src:  x,
		}, nil
	case op.Comparison():
		return &boundExpr{
			eval: func(row store.Row) (store.Value, error) {
				lv, err := l.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				rv, err := r.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				// SQL-ish: comparisons with NULL are false (two-valued
				// logic documented in the package comment).
				if lv.IsNull() || rv.IsNull() {
					return store.BoolValue(false), nil
				}
				cmp := store.Compare(lv, rv)
				var b bool
				switch op {
				case OpEq:
					b = cmp == 0
				case OpNe:
					b = cmp != 0
				case OpLt:
					b = cmp < 0
				case OpLe:
					b = cmp <= 0
				case OpGt:
					b = cmp > 0
				case OpGe:
					b = cmp >= 0
				}
				return store.BoolValue(b), nil
			},
			kind: store.KindBool,
			src:  x,
		}, nil
	default: // arithmetic
		outKind := store.KindFloat
		if l.kind == store.KindInt && r.kind == store.KindInt {
			outKind = store.KindInt
		}
		return &boundExpr{
			eval: func(row store.Row) (store.Value, error) {
				lv, err := l.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				rv, err := r.eval(row)
				if err != nil {
					return store.NullValue(), err
				}
				if lv.IsNull() || rv.IsNull() {
					return store.NullValue(), nil
				}
				if !lv.Numeric() || !rv.Numeric() {
					return store.NullValue(), fmt.Errorf("query: %v on non-numeric operands", op)
				}
				if lv.K == store.KindInt && rv.K == store.KindInt {
					switch op {
					case OpAdd:
						return store.IntValue(lv.I + rv.I), nil
					case OpSub:
						return store.IntValue(lv.I - rv.I), nil
					case OpMul:
						return store.IntValue(lv.I * rv.I), nil
					case OpDiv:
						if rv.I == 0 {
							return store.NullValue(), nil
						}
						return store.IntValue(lv.I / rv.I), nil
					}
				}
				lf, rf := lv.AsFloat(), rv.AsFloat()
				switch op {
				case OpAdd:
					return store.FloatValue(lf + rf), nil
				case OpSub:
					return store.FloatValue(lf - rf), nil
				case OpMul:
					return store.FloatValue(lf * rf), nil
				case OpDiv:
					if rf == 0 {
						return store.NullValue(), nil
					}
					return store.FloatValue(lf / rf), nil
				}
				return store.NullValue(), fmt.Errorf("query: unsupported operator %v", op)
			},
			kind: outKind,
			src:  x,
		}, nil
	}
}

// bindSubtree resolves the subtree root at bind time and compiles the
// membership test: a preorder-interval check for INT columns (preorder
// numbers), a node-name set membership for STRING columns (accessions
// naming tree nodes directly).
func bindSubtree(x *SubtreeExpr, env bindEnv) (*boundExpr, error) {
	if env.tree == nil {
		return nil, fmt.Errorf("query: WITHIN_SUBTREE requires a tree-backed catalog")
	}
	node, err := findTreeNode(env.tree, x.Node)
	if err != nil {
		return nil, err
	}
	lo, hi := env.tree.SubtreeInterval(node)
	idx, err := env.schema.resolve(x.Column)
	if err != nil {
		return nil, err
	}
	if env.schema.cols[idx].Kind == store.KindString {
		member := subtreeNameSet(env.tree, lo, hi)
		return &boundExpr{
			eval: func(r store.Row) (store.Value, error) {
				v := r[idx]
				return store.BoolValue(v.K == store.KindString && member[v.S]), nil
			},
			kind: store.KindBool,
			src:  x,
		}, nil
	}
	return &boundExpr{
		eval: func(r store.Row) (store.Value, error) {
			v := r[idx]
			if v.K != store.KindInt {
				return store.BoolValue(false), nil
			}
			return store.BoolValue(v.I >= int64(lo) && v.I <= int64(hi)), nil
		},
		kind: store.KindBool,
		src:  x,
	}, nil
}

// subtreeNameSet collects the names of every tree node whose preorder
// number falls in [lo, hi] — the string-column form of a subtree
// membership test.
func subtreeNameSet(tree *phylo.Tree, lo, hi int) map[string]bool {
	member := make(map[string]bool, hi-lo+1)
	for p := lo; p <= hi; p++ {
		if name := tree.Node(tree.NodeAtPre(p)).Name; name != "" {
			member[name] = true
		}
	}
	return member
}

// bindAncestor resolves the target node's root path at bind time and
// compiles the predicate to a preorder-set membership test.
func bindAncestor(x *AncestorExpr, env bindEnv) (*boundExpr, error) {
	if env.tree == nil {
		return nil, fmt.Errorf("query: ANCESTOR_OF requires a tree-backed catalog")
	}
	node, err := findTreeNode(env.tree, x.Node)
	if err != nil {
		return nil, err
	}
	path := make(map[int64]bool)
	for _, anc := range env.tree.Ancestors(node) {
		path[int64(env.tree.Pre(anc))] = true
	}
	idx, err := env.schema.resolve(x.Column)
	if err != nil {
		return nil, err
	}
	return &boundExpr{
		eval: func(r store.Row) (store.Value, error) {
			v := r[idx]
			return store.BoolValue(v.K == store.KindInt && path[v.I]), nil
		},
		kind: store.KindBool,
		src:  x,
	}, nil
}

// findTreeNode locates a node by name (leaf or internal).
func findTreeNode(t *phylo.Tree, name string) (phylo.NodeID, error) {
	for i := 0; i < t.Len(); i++ {
		if t.Node(phylo.NodeID(i)).Name == name {
			return phylo.NodeID(i), nil
		}
	}
	return phylo.None, fmt.Errorf("query: tree has no node named %q", name)
}

// likeMatch implements SQL LIKE with % (any run) and _ (single char),
// case-sensitive, via iterative wildcard matching.
func likeMatch(s, pattern string) bool {
	// Two-pointer algorithm with backtracking on the last %.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			sBack++
			si = sBack
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// evalBool runs a compiled predicate, treating errors as fatal and
// non-bool results as false.
func (b *boundExpr) evalBool(r store.Row) (bool, error) {
	v, err := b.eval(r)
	if err != nil {
		return false, err
	}
	return v.K == store.KindBool && v.Bool(), nil
}
