package query

import (
	"context"
	"strings"
	"testing"
)

func TestParseSubqueries(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM proteins WHERE accession IN (SELECT protein_id FROM activities)")
	in, ok := stmt.Where.(*InSubqueryExpr)
	if !ok {
		t.Fatalf("where = %T", stmt.Where)
	}
	if in.Stmt.From.Name != "activities" {
		t.Fatalf("subquery from = %q", in.Stmt.From.Name)
	}
	stmt2 := mustParseQ(t, "SELECT * FROM proteins WHERE length > (SELECT AVG(length) FROM proteins)")
	cmp := stmt2.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Fatalf("scalar subquery = %T", cmp.R)
	}
	// NOT IN subquery.
	stmt3 := mustParseQ(t, "SELECT * FROM p WHERE x NOT IN (SELECT y FROM q)")
	if _, ok := stmt3.Where.(*NotExpr); !ok {
		t.Fatalf("not-in = %T", stmt3.Where)
	}
}

func TestInSubqueryExecution(t *testing.T) {
	cat := testCatalog(t)
	// Proteins with at least one strong activity.
	q := `SELECT accession FROM proteins
		WHERE accession IN (SELECT protein_id FROM activities WHERE affinity >= 10)`
	res := runQ(t, cat, DefaultOptions(), q)
	// Cross-check against the join formulation (deduplicated by the
	// grouped variant).
	check := runQ(t, cat, DefaultOptions(), `SELECT p.accession, COUNT(*) FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		WHERE a.affinity >= 10 GROUP BY p.accession`)
	if len(res.Rows) != len(check.Rows) {
		t.Fatalf("IN subquery = %d rows, join check = %d", len(res.Rows), len(check.Rows))
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows matched")
	}
}

func TestNotInSubqueryExecution(t *testing.T) {
	cat := testCatalog(t)
	inQ := `SELECT accession FROM proteins
		WHERE accession IN (SELECT protein_id FROM activities WHERE affinity >= 9)`
	notInQ := `SELECT accession FROM proteins
		WHERE accession NOT IN (SELECT protein_id FROM activities WHERE affinity >= 9)`
	inRes := runQ(t, cat, DefaultOptions(), inQ)
	notInRes := runQ(t, cat, DefaultOptions(), notInQ)
	if len(inRes.Rows)+len(notInRes.Rows) != 60 {
		t.Fatalf("IN (%d) + NOT IN (%d) != 60 proteins", len(inRes.Rows), len(notInRes.Rows))
	}
}

func TestScalarSubqueryExecution(t *testing.T) {
	cat := testCatalog(t)
	// Proteins longer than average: lengths 100..159, avg 129.5 → 30.
	res := runQ(t, cat, DefaultOptions(),
		"SELECT accession FROM proteins WHERE length > (SELECT AVG(length) FROM proteins)")
	if len(res.Rows) != 30 {
		t.Fatalf("above-average rows = %d, want 30", len(res.Rows))
	}
	// Scalar subquery in the select list.
	res2 := runQ(t, cat, DefaultOptions(),
		"SELECT accession, (SELECT MAX(length) FROM proteins) AS maxlen FROM proteins LIMIT 2")
	if res2.Rows[0][1].I != 159 {
		t.Fatalf("scalar in select list = %v", res2.Rows[0])
	}
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	cat := testCatalog(t)
	// Empty subquery → NULL → comparison false → no rows.
	res := runQ(t, cat, DefaultOptions(),
		"SELECT accession FROM proteins WHERE length > (SELECT MIN(length) FROM proteins WHERE family = 'NOPE')")
	// MIN over empty group is NULL; NULL comparison is false.
	if len(res.Rows) != 0 {
		t.Fatalf("NULL-scalar comparison matched %d rows", len(res.Rows))
	}
}

func TestScalarSubqueryMultiRowRejected(t *testing.T) {
	cat := testCatalog(t)
	_, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT accession FROM proteins WHERE length > (SELECT length FROM proteins)")
	if err == nil || !strings.Contains(err.Error(), "scalar subquery") {
		t.Fatalf("multi-row scalar accepted: %v", err)
	}
}

func TestSubqueryMultiColumnRejected(t *testing.T) {
	cat := testCatalog(t)
	_, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT accession FROM proteins WHERE accession IN (SELECT protein_id, ligand_id FROM activities)")
	if err == nil || !strings.Contains(err.Error(), "one column") {
		t.Fatalf("multi-column subquery accepted: %v", err)
	}
}

func TestSubqueryNaiveOptimizedAgree(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		`SELECT accession FROM proteins WHERE accession IN
		 (SELECT protein_id FROM activities WHERE affinity >= 8)`,
		`SELECT accession, length FROM proteins WHERE length >
		 (SELECT AVG(length) FROM proteins WHERE family = 'FAM1')`,
		`SELECT p.family, COUNT(*) FROM proteins p
		 WHERE p.accession NOT IN (SELECT protein_id FROM activities WHERE affinity < 5)
		 GROUP BY p.family`,
	}
	for _, q := range queries {
		naive := runQ(t, cat, NaiveOptions(), q)
		opt := runQ(t, cat, DefaultOptions(), q)
		if !sameRowMultiset(naive.Rows, opt.Rows) {
			t.Fatalf("%q: engines disagree (%d vs %d rows)", q, len(naive.Rows), len(opt.Rows))
		}
	}
}

func TestNestedSubquery(t *testing.T) {
	cat := testCatalog(t)
	q := `SELECT accession FROM proteins WHERE accession IN
		(SELECT protein_id FROM activities WHERE ligand_id IN
			(SELECT ligand_id FROM ligands WHERE weight >= 180))`
	res := runQ(t, cat, DefaultOptions(), q)
	naive := runQ(t, cat, NaiveOptions(), q)
	if !sameRowMultiset(res.Rows, naive.Rows) {
		t.Fatal("nested subquery engines disagree")
	}
	if len(res.Rows) == 0 {
		t.Fatal("nested subquery matched nothing")
	}
}
