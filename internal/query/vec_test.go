package query

import (
	"context"
	"strings"
	"testing"

	"drugtree/internal/store"
)

// Tests specific to the vectorized executor and the interfaces the
// refactor touched: EXPLAIN ANALYZE annotations, result-row aliasing,
// and Result.Clone. Engine-equivalence itself lives in the
// differential harness (differential_test.go).

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN ANALYZE SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Explain || !stmt.Analyze {
		t.Fatalf("Explain=%v Analyze=%v, want both true", stmt.Explain, stmt.Analyze)
	}
	if got := stmt.String(); !strings.HasPrefix(got, "EXPLAIN ANALYZE SELECT") {
		t.Fatalf("String() = %q", got)
	}
	plain, err := Parse("EXPLAIN SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Analyze {
		t.Fatal("plain EXPLAIN parsed as ANALYZE")
	}
}

func TestExplainAnalyzeAnnotations(t *testing.T) {
	cat := testCatalog(t)
	const q = "SELECT accession FROM proteins WHERE length > 130"
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"vec", DefaultOptions()},
		{"row", rowOptions(DefaultOptions())},
	} {
		res := runQ(t, cat, tc.opts, "EXPLAIN ANALYZE "+q)
		if len(res.Rows) != 0 {
			t.Fatalf("%s: EXPLAIN ANALYZE returned rows", tc.name)
		}
		if !strings.Contains(res.Plan, "[rows=") || !strings.Contains(res.Plan, "batches=") {
			t.Fatalf("%s: plan lacks runtime annotations:\n%s", tc.name, res.Plan)
		}
		if !strings.Contains(res.Plan, "sel=") {
			t.Fatalf("%s: filtering plan lacks selectivity:\n%s", tc.name, res.Plan)
		}
		if res.Stats.RowsReturned == 0 {
			t.Fatalf("%s: query did not execute under ANALYZE", tc.name)
		}
		if len(res.Stats.Ops) != len(strings.Split(res.Plan, "\n")) {
			t.Fatalf("%s: Ops (%d) not 1:1 with plan lines:\n%s",
				tc.name, len(res.Stats.Ops), res.Plan)
		}
		// Plain EXPLAIN and plain execution keep the unannotated plan.
		if p := runQ(t, cat, tc.opts, "EXPLAIN "+q); strings.Contains(p.Plan, "[rows=") {
			t.Fatalf("%s: plain EXPLAIN got annotations:\n%s", tc.name, p.Plan)
		}
		if p := runQ(t, cat, tc.opts, q); strings.Contains(p.Plan, "[rows=") {
			t.Fatalf("%s: plain query got annotations:\n%s", tc.name, p.Plan)
		}
	}
	// The vectorized engine must actually report batch flow.
	res := runQ(t, cat, DefaultOptions(), "EXPLAIN ANALYZE SELECT * FROM proteins")
	if strings.Contains(res.Plan, "batches=0") {
		t.Fatalf("vec scan reported zero batches:\n%s", res.Plan)
	}
}

// scribble overwrites every cell of every returned row in place.
func scribble(res *Result) {
	for _, r := range res.Rows {
		for i := range r {
			r[i] = store.StringValue("CORRUPTED")
		}
	}
}

// TestResultRowMutationIsolation is the aliasing regression test: a
// caller mutating the rows a query returned must not be able to
// corrupt table storage or a later identical query's result, under
// either engine, serial or parallel, across every scan and join
// shape that materializes output rows.
func TestResultRowMutationIsolation(t *testing.T) {
	queries := []string{
		"SELECT * FROM proteins",                                  // seqscan, no projection
		"SELECT * FROM proteins WHERE family = 'FAM1'",            // index scan
		"SELECT * FROM proteins WHERE length BETWEEN 110 AND 150", // index range scan
		`SELECT p.accession, a.ligand_id FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id`, // hash join probe output
		"SELECT accession FROM proteins ORDER BY length DESC LIMIT 5", // topk
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"vec-serial", serialOptions()},
		{"vec-parallel", parallelOptions(diffParallelism)},
		{"row-serial", rowOptions(serialOptions())},
		{"row-parallel", rowOptions(parallelOptions(diffParallelism))},
	} {
		cat := testCatalog(t)
		eng := NewEngine(cat, tc.opts)
		for _, q := range queries {
			before, err := eng.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("%s %q: %v", tc.name, q, err)
			}
			scribble(before)
			after, err := eng.Query(context.Background(), q)
			if err != nil {
				t.Fatalf("%s %q: %v", tc.name, q, err)
			}
			for _, r := range after.Rows {
				for _, v := range r {
					if v.K == store.KindString && v.S == "CORRUPTED" {
						t.Fatalf("%s %q: mutation of a returned row reached storage", tc.name, q)
					}
				}
			}
			if len(after.Rows) != len(before.Rows) {
				t.Fatalf("%s %q: row count changed after mutation: %d vs %d",
					tc.name, q, len(before.Rows), len(after.Rows))
			}
		}
	}
}

func TestResultClone(t *testing.T) {
	cat := testCatalog(t)
	orig := runQ(t, cat, DefaultOptions(), "EXPLAIN ANALYZE SELECT * FROM proteins WHERE length > 100")
	orig.Rows = []store.Row{{store.IntValue(1), store.IntValue(2)}}
	c := orig.Clone()
	c.Rows[0][0] = store.StringValue("CORRUPTED")
	c.Columns[0] = "CORRUPTED"
	if orig.Rows[0][0].K == store.KindString {
		t.Fatal("Clone shares row storage")
	}
	if orig.Columns[0] == "CORRUPTED" {
		t.Fatal("Clone shares column names")
	}
	if len(c.Stats.Ops) != len(orig.Stats.Ops) {
		t.Fatalf("Clone dropped ops: %d vs %d", len(c.Stats.Ops), len(orig.Stats.Ops))
	}
	if len(orig.Stats.Ops) > 0 && orig.Stats.Ops[0] != nil {
		c.Stats.Ops[0].RowsOut = -99
		if orig.Stats.Ops[0].RowsOut == -99 {
			t.Fatal("Clone shares OpStats")
		}
	}
	var nilRes *Result
	if nilRes.Clone() != nil {
		t.Fatal("nil Clone should be nil")
	}
}
