package query

import (
	"context"

	"drugtree/internal/store"
)

// Vectorized batch execution. Operators built by buildVec exchange
// batches — fixed-capacity column vectors plus a selection vector —
// instead of one row at a time, so predicate and projection work runs
// as tight loops over typed slices (see vec_eval.go) and the per-row
// virtual-dispatch + store.Value boxing costs of the Volcano path
// disappear on scan/filter/join-heavy queries.
//
// Cancellation: every nextBatch implementation polls its context at
// batch granularity (one poll per ~vecBatchSize rows) via
// canceller.now, the batch-level analogue of the row engine's
// cancelCheckRows polling. The ctxcheck lint rule "batchpoll"
// enforces this.

// vecBatchSize is the target number of rows per batch: large enough
// to amortize per-batch overhead, small enough to stay cache-resident
// and to bound cancellation latency.
const vecBatchSize = 1024

// batch is the unit of vectorized data flow: column vectors plus a
// selection vector. sel == nil means every row in [0, n) is live;
// otherwise sel lists the live row indices in ascending order.
// Filters narrow sel without moving any column data.
type batch struct {
	cols []*store.Col
	sel  []int
	n    int
}

// live returns the number of selected rows.
func (b *batch) live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// rowIdx maps a dense position k in [0, live()) to the underlying
// row index.
func (b *batch) rowIdx(k int) int {
	if b.sel != nil {
		return b.sel[k]
	}
	return k
}

// selection returns the live row indices, materializing the identity
// selection when sel is nil. The returned slice must be treated
// read-only.
func (b *batch) selection() []int {
	if b.sel != nil {
		return b.sel
	}
	sel := make([]int, b.n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

// rowAt materializes row index i as a store.Row. dst is reused when
// non-nil and wide enough; pass nil to get a fresh row the caller may
// retain.
func (b *batch) rowAt(i int, dst store.Row) store.Row {
	if dst == nil || len(dst) != len(b.cols) {
		dst = make(store.Row, len(b.cols))
	}
	for c, col := range b.cols {
		dst[c] = col.Value(i)
	}
	return dst
}

// batchIterator is the vectorized operator interface: nextBatch
// returns the next batch, or nil at end of stream.
type batchIterator interface {
	nextBatch() (*batch, error)
}

// batchesOf slices a materialized ColBatch into vecBatchSize views
// (zero-copy: the views alias the ColBatch's column storage).
func batchesOf(cb *store.ColBatch) []*batch {
	if cb.Rows == 0 {
		return nil
	}
	out := make([]*batch, 0, (cb.Rows+vecBatchSize-1)/vecBatchSize)
	for lo := 0; lo < cb.Rows; lo += vecBatchSize {
		hi := lo + vecBatchSize
		if hi > cb.Rows {
			hi = cb.Rows
		}
		b := &batch{cols: make([]*store.Col, len(cb.Cols)), n: hi - lo}
		for c := range cb.Cols {
			v := cb.Cols[c].Slice(lo, hi)
			b.cols[c] = &v
		}
		out = append(out, b)
	}
	return out
}

// wholeBatch wraps a ColBatch as a single batch (no slicing), used
// for index scans whose result sets are usually far below a batch.
func wholeBatch(cb *store.ColBatch) *batch {
	b := &batch{cols: make([]*store.Col, len(cb.Cols)), n: cb.Rows}
	for c := range cb.Cols {
		b.cols[c] = &cb.Cols[c]
	}
	return b
}

// drainBatches materializes a batch stream, polling ctx per batch.
func drainBatches(ctx context.Context, in batchIterator) ([]*batch, error) {
	c := canceller{ctx: ctx}
	var out []*batch
	for {
		if err := c.now(); err != nil {
			return nil, err
		}
		b, err := in.nextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b)
	}
}

// rowsFromBatches adapts a batch stream to the row iterator
// interface, materializing each live row as a fresh store.Row (the
// result-set boundary: returned rows never alias batch or table
// storage, so callers may mutate them freely).
type rowsFromBatches struct {
	in     batchIterator
	cur    *batch
	pos    int
	cancel canceller
}

func (r *rowsFromBatches) Next() (store.Row, bool, error) {
	for {
		if r.cur == nil {
			if err := r.cancel.now(); err != nil {
				return nil, false, err
			}
			b, err := r.in.nextBatch()
			if err != nil {
				return nil, false, err
			}
			if b == nil {
				return nil, false, nil
			}
			r.cur, r.pos = b, 0
		}
		if r.pos < r.cur.live() {
			i := r.cur.rowIdx(r.pos)
			r.pos++
			return r.cur.rowAt(i, nil), true, nil
		}
		r.cur = nil
	}
}

// batchesFromRows adapts a row iterator (a fallback subtree: merge
// join, nested-loop join, or a row-mode sort) to the batch interface.
// Cells land in generic columns, so downstream vectorized operators
// fall through to their Value-based paths — correct, just not fast.
type batchesFromRows struct {
	in     iterator
	width  int
	cancel canceller
	done   bool
	// buf stages up to one batch of rows so the generic columns can
	// be sized to the actual row count — a bridged point lookup must
	// not pay for vecBatchSize-capacity columns.
	buf []store.Row
}

func (b *batchesFromRows) nextBatch() (*batch, error) {
	if b.done {
		return nil, nil
	}
	if err := b.cancel.now(); err != nil {
		return nil, err
	}
	buf := b.buf[:0]
	for len(buf) < vecBatchSize {
		r, ok, err := b.in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			b.done = true
			break
		}
		buf = append(buf, r)
	}
	b.buf = buf
	if len(buf) == 0 {
		return nil, nil
	}
	cols := make([]*store.Col, b.width)
	for c := range cols {
		col := store.NewCol(store.KindNull, len(buf))
		for _, r := range buf {
			col.Append(r[c])
		}
		cols[c] = col
	}
	return &batch{cols: cols, n: len(buf)}, nil
}
