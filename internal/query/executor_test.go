package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// testCatalog builds an in-memory catalog:
//
//	proteins(accession, family, length) — 60 rows, 4 families
//	activities(protein_id, ligand_id, affinity) — multiple per protein
//	ligands(ligand_id, weight)
//	tree_nodes(pre, name, is_leaf) — a small tree with families as
//	internal nodes
func testCatalog(t *testing.T) *DBCatalog {
	t.Helper()
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	prot, err := db.CreateTable("proteins", store.MustSchema(
		store.Column{Name: "accession", Kind: store.KindString},
		store.Column{Name: "family", Kind: store.KindString},
		store.Column{Name: "length", Kind: store.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	act, err := db.CreateTable("activities", store.MustSchema(
		store.Column{Name: "protein_id", Kind: store.KindString},
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "affinity", Kind: store.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	lig, err := db.CreateTable("ligands", store.MustSchema(
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "weight", Kind: store.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		acc := fmt.Sprintf("P%03d", i)
		fam := fmt.Sprintf("FAM%d", i%4)
		prot.Insert(store.Row{store.StringValue(acc), store.StringValue(fam), store.IntValue(int64(100 + i))})
		for j := 0; j < 3; j++ {
			lid := fmt.Sprintf("L%02d", (i+j)%10)
			act.Insert(store.Row{store.StringValue(acc), store.StringValue(lid), store.FloatValue(float64(4 + (i+j)%7))})
		}
	}
	for j := 0; j < 10; j++ {
		lig.Insert(store.Row{store.StringValue(fmt.Sprintf("L%02d", j)), store.FloatValue(float64(100 + 10*j))})
	}
	prot.CreateIndex("accession", store.IndexHash)
	prot.CreateIndex("family", store.IndexHash)
	prot.CreateIndex("length", store.IndexBTree)
	act.CreateIndex("protein_id", store.IndexHash)
	act.CreateIndex("affinity", store.IndexBTree)
	lig.CreateIndex("ligand_id", store.IndexHash)

	// Small tree: root(fam0(P000..), fam1(...)).
	tree := phylo.NewTree()
	root, _ := tree.AddNode("root", phylo.None, 0)
	f0, _ := tree.AddNode("FAM0", root, 1)
	f1, _ := tree.AddNode("FAM1", root, 1)
	tree.AddNode("P000", f0, 1)
	tree.AddNode("P004", f0, 1)
	tree.AddNode("P001", f1, 1)
	tree.AddNode("P005", f1, 1)
	if err := tree.Index(); err != nil {
		t.Fatal(err)
	}
	nodes, err := db.CreateTable("tree_nodes", store.MustSchema(
		store.Column{Name: "pre", Kind: store.KindInt},
		store.Column{Name: "name", Kind: store.KindString},
		store.Column{Name: "is_leaf", Kind: store.KindBool},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		nodes.Insert(store.Row{
			store.IntValue(int64(tree.Pre(id))),
			store.StringValue(tree.Node(id).Name),
			store.BoolValue(tree.Node(id).IsLeaf()),
		})
	}
	nodes.CreateIndex("pre", store.IndexBTree)
	return NewDBCatalog(db, tree)
}

func runQ(t *testing.T, cat Catalog, opts Options, src string) *Result {
	t.Helper()
	res, err := NewEngine(cat, opts).Query(context.Background(), src)
	if err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
	return res
}

func TestSimpleSelect(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "SELECT accession, family FROM proteins WHERE family = 'FAM2'")
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(res.Rows))
	}
	if res.Columns[0] != "accession" || res.Columns[1] != "family" {
		t.Fatalf("columns = %v", res.Columns)
	}
	for _, r := range res.Rows {
		if r[1].S != "FAM2" {
			t.Fatalf("wrong family %q", r[1].S)
		}
	}
}

func TestSelectStar(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "SELECT * FROM ligands")
	if len(res.Rows) != 10 || len(res.Columns) != 2 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
}

func TestIndexScanChosen(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "EXPLAIN SELECT * FROM proteins WHERE accession = 'P010'")
	if !strings.Contains(res.Plan, "IndexScan") {
		t.Fatalf("expected IndexScan in plan:\n%s", res.Plan)
	}
	naive := runQ(t, cat, NaiveOptions(), "EXPLAIN SELECT * FROM proteins WHERE accession = 'P010'")
	if strings.Contains(naive.Plan, "IndexScan") {
		t.Fatalf("naive engine used an index:\n%s", naive.Plan)
	}
}

func TestIndexRangeScanChosen(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "EXPLAIN SELECT * FROM proteins WHERE length BETWEEN 110 AND 120")
	if !strings.Contains(res.Plan, "IndexRangeScan") {
		t.Fatalf("expected IndexRangeScan:\n%s", res.Plan)
	}
	// Results correct.
	r2 := runQ(t, cat, DefaultOptions(), "SELECT * FROM proteins WHERE length BETWEEN 110 AND 120")
	if len(r2.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(r2.Rows))
	}
}

func TestJoinQuery(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), `SELECT p.accession, a.affinity
		FROM proteins p JOIN activities a ON p.accession = a.protein_id
		WHERE p.family = 'FAM0' AND a.affinity >= 9`)
	for _, r := range res.Rows {
		if r[1].F < 9 {
			t.Fatalf("affinity filter leak: %v", r[1])
		}
	}
	// Cross-check with manual count.
	manual := runQ(t, cat, NaiveOptions(), `SELECT p.accession, a.affinity
		FROM proteins p JOIN activities a ON p.accession = a.protein_id
		WHERE p.family = 'FAM0' AND a.affinity >= 9`)
	if len(res.Rows) != len(manual.Rows) {
		t.Fatalf("optimized %d rows != naive %d rows", len(res.Rows), len(manual.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	cat := testCatalog(t)
	q := `SELECT p.accession, l.weight FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		JOIN ligands l ON a.ligand_id = l.ligand_id
		WHERE l.weight > 150 AND p.family = 'FAM1'`
	opt := runQ(t, cat, DefaultOptions(), q)
	naive := runQ(t, cat, NaiveOptions(), q)
	if len(opt.Rows) == 0 {
		t.Fatal("no rows returned")
	}
	if !sameRowMultiset(opt.Rows, naive.Rows) {
		t.Fatal("optimized and naive results differ")
	}
}

func TestAggregation(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT family, COUNT(*) AS n, AVG(length) AS avglen FROM proteins GROUP BY family ORDER BY family")
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	if res.Rows[0][0].S != "FAM0" || res.Rows[0][1].I != 15 {
		t.Fatalf("first group = %v", res.Rows[0])
	}
	// AVG(length) for FAM0: lengths 100,104,...,156 → avg 128.
	if res.Rows[0][2].F != 128 {
		t.Fatalf("avg = %v, want 128", res.Rows[0][2])
	}
}

func TestGlobalAggregate(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "SELECT COUNT(*), MIN(length), MAX(length) FROM proteins")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].I != 60 || r[1].I != 100 || r[2].I != 159 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "SELECT COUNT(*) FROM proteins WHERE family = 'NOPE'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("COUNT over empty = %v", res.Rows)
	}
}

func TestAggregateSelectOrderPreserved(t *testing.T) {
	cat := testCatalog(t)
	// Aggregate listed before the group key.
	res := runQ(t, cat, DefaultOptions(),
		"SELECT COUNT(*) AS n, family FROM proteins GROUP BY family ORDER BY family LIMIT 1")
	if res.Columns[0] != "n" || res.Columns[1] != "family" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].K != store.KindInt || res.Rows[0][1].S != "FAM0" {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestOrderByAndLimit(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].I != 159 || res.Rows[2][1].I != 157 {
		t.Fatalf("order wrong: %v", res.Rows)
	}
}

func TestWithinSubtreeQuery(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'FAM0') AND is_leaf = TRUE"
	res := runQ(t, cat, DefaultOptions(), q)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].S)
	}
	sort.Strings(names)
	if strings.Join(names, ",") != "P000,P004" {
		t.Fatalf("subtree leaves = %v", names)
	}
	// Naive produces the same rows.
	naive := runQ(t, cat, NaiveOptions(), q)
	if len(naive.Rows) != len(res.Rows) {
		t.Fatalf("naive %d != optimized %d", len(naive.Rows), len(res.Rows))
	}
	// Rewrite enables the pre-index.
	plan := runQ(t, cat, DefaultOptions(), "EXPLAIN "+q)
	if !strings.Contains(plan.Plan, "IndexRangeScan") {
		t.Fatalf("subtree rewrite did not reach the index:\n%s", plan.Plan)
	}
}

func TestExplainDoesNotExecute(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "EXPLAIN SELECT * FROM proteins")
	if len(res.Rows) != 0 {
		t.Fatalf("EXPLAIN returned rows")
	}
	if res.Plan == "" {
		t.Fatal("EXPLAIN produced no plan")
	}
}

func TestProjectionExpressions(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT accession, length * 2 AS dbl, length + 0.5 FROM proteins WHERE accession = 'P001'")
	r := res.Rows[0]
	if r[1].I != 202 {
		t.Fatalf("length*2 = %v", r[1])
	}
	if r[2].F != 101.5 {
		t.Fatalf("length+0.5 = %v", r[2])
	}
}

func TestLikeQuery(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "SELECT accession FROM proteins WHERE accession LIKE 'P00_'")
	if len(res.Rows) != 10 {
		t.Fatalf("LIKE matched %d rows, want 10", len(res.Rows))
	}
}

func TestQueryErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT nope FROM proteins",
		"SELECT p.nope FROM proteins p",
		"SELECT accession FROM proteins p JOIN proteins p ON p.accession = p.accession",
		"SELECT COUNT(*) FROM proteins WHERE COUNT(*) > 1",
		"SELECT accession FROM proteins GROUP BY family",
		"SELECT * FROM proteins GROUP BY family",
		"SELECT family, COUNT(*) FROM proteins GROUP BY COUNT(*)",
		"SELECT * FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'NOSUCHNODE')",
	}
	for _, src := range bad {
		if _, err := NewEngine(cat, DefaultOptions()).Query(context.Background(), src); err == nil {
			t.Errorf("Query(%q) accepted", src)
		}
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	cat := testCatalog(t)
	_, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT ligand_id FROM activities a JOIN ligands l ON a.ligand_id = l.ligand_id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous column: %v", err)
	}
}

// sameRowMultiset compares two row slices ignoring order.
func sameRowMultiset(a, b []store.Row) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r store.Row) string {
		return string(store.AppendRow(nil, r))
	}
	counts := map[string]int{}
	for _, r := range a {
		counts[key(r)]++
	}
	for _, r := range b {
		counts[key(r)]--
		if counts[key(r)] < 0 {
			return false
		}
	}
	return true
}

// TestNaiveOptimizedEquivalence is the core correctness property: for
// a corpus of queries spanning every feature, the naive and fully
// optimized engines return identical multisets.
func TestNaiveOptimizedEquivalence(t *testing.T) {
	cat := testCatalog(t)
	queries := []string{
		"SELECT * FROM proteins",
		"SELECT accession FROM proteins WHERE family = 'FAM1'",
		"SELECT accession FROM proteins WHERE length > 130 AND family != 'FAM0'",
		"SELECT accession FROM proteins WHERE length BETWEEN 105 AND 140 AND family = 'FAM3'",
		"SELECT accession FROM proteins WHERE family = 'FAM1' OR family = 'FAM2'",
		"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id",
		`SELECT p.accession, l.weight FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id
		 JOIN ligands l ON a.ligand_id = l.ligand_id WHERE a.affinity > 7`,
		`SELECT p.family, COUNT(*) AS n, AVG(a.affinity) FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id
		 GROUP BY p.family`,
		"SELECT family, MAX(length) FROM proteins WHERE length < 150 GROUP BY family",
		"SELECT accession FROM proteins ORDER BY length DESC LIMIT 7",
		"SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'FAM1')",
		"SELECT name FROM tree_nodes WHERE NOT WITHIN_SUBTREE(pre, 'FAM0') AND is_leaf = TRUE",
		"SELECT accession FROM proteins WHERE accession LIKE 'P01%'",
		"SELECT COUNT(*) FROM activities WHERE affinity >= 5 AND affinity <= 8",
	}
	for _, q := range queries {
		naive := runQ(t, cat, NaiveOptions(), q)
		opt := runQ(t, cat, DefaultOptions(), q)
		// ORDER BY queries must match exactly; others as multisets.
		if strings.Contains(q, "ORDER BY") {
			if len(naive.Rows) != len(opt.Rows) {
				t.Fatalf("%q: naive %d rows, optimized %d", q, len(naive.Rows), len(opt.Rows))
			}
			for i := range naive.Rows {
				if !sameRowMultiset([]store.Row{naive.Rows[i]}, []store.Row{opt.Rows[i]}) {
					t.Fatalf("%q: row %d differs", q, i)
				}
			}
			continue
		}
		if !sameRowMultiset(naive.Rows, opt.Rows) {
			t.Fatalf("%q: results differ (naive %d rows, optimized %d)", q, len(naive.Rows), len(opt.Rows))
		}
	}
}

func TestOptimizedScansFewerRows(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT * FROM proteins WHERE accession = 'P042'"
	naive := runQ(t, cat, NaiveOptions(), q)
	opt := runQ(t, cat, DefaultOptions(), q)
	if naive.Stats.RowsScanned == 0 {
		t.Fatal("naive did not scan")
	}
	if opt.Stats.RowsScanned != 0 || opt.Stats.RowsIndexed != 1 {
		t.Fatalf("optimized stats: %+v", opt.Stats)
	}
}

func TestJoinReorderStartsSmall(t *testing.T) {
	cat := testCatalog(t)
	// ligands (10 rows) is much smaller than activities (180); with a
	// selective predicate on proteins, the reordered plan should not
	// start from activities.
	q := `EXPLAIN SELECT p.accession FROM activities a
		JOIN proteins p ON p.accession = a.protein_id
		JOIN ligands l ON l.ligand_id = a.ligand_id
		WHERE p.accession = 'P001'`
	res := runQ(t, cat, DefaultOptions(), q)
	// The first scanned relation in the plan (deepest left) should be
	// proteins (1 row after the pushed filter).
	lines := strings.Split(res.Plan, "\n")
	var deepest string
	maxIndent := -1
	for _, l := range lines {
		indent := len(l) - len(strings.TrimLeft(l, " "))
		if strings.Contains(l, "Scan") && indent > maxIndent {
			maxIndent = indent
			deepest = l
		}
	}
	if !strings.Contains(deepest, "proteins") {
		t.Fatalf("join order did not start from filtered proteins:\n%s", res.Plan)
	}
}

func TestFormatResult(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "SELECT accession FROM proteins LIMIT 2")
	out := FormatResult(res)
	if !strings.Contains(out, "accession") || !strings.Contains(out, "(2 row(s))") {
		t.Fatalf("formatted:\n%s", out)
	}
}
