package query

import (
	"drugtree/internal/store"
)

// foldConstants simplifies expressions bottom-up: operators over
// literals evaluate at plan time, and boolean identities collapse
// (TRUE AND x → x, FALSE AND x → FALSE, ...). Subtree and ancestor
// rewrites produce literal-heavy predicates, so folding runs after
// them.
func foldConstants(e Expr) Expr {
	switch x := e.(type) {
	case *BinaryExpr:
		l := foldConstants(x.L)
		r := foldConstants(x.R)
		ll, lOK := l.(*Literal)
		rl, rOK := r.(*Literal)
		// Boolean identities first (need only one literal side).
		switch x.Op {
		case OpAnd:
			if lOK && ll.Val.K == store.KindBool {
				if ll.Val.Bool() {
					return r
				}
				return &Literal{Val: store.BoolValue(false)}
			}
			if rOK && rl.Val.K == store.KindBool {
				if rl.Val.Bool() {
					return l
				}
				return &Literal{Val: store.BoolValue(false)}
			}
		case OpOr:
			if lOK && ll.Val.K == store.KindBool {
				if !ll.Val.Bool() {
					return r
				}
				return &Literal{Val: store.BoolValue(true)}
			}
			if rOK && rl.Val.K == store.KindBool {
				if !rl.Val.Bool() {
					return l
				}
				return &Literal{Val: store.BoolValue(true)}
			}
		}
		if lOK && rOK {
			if folded, ok := evalConstBinary(x.Op, ll.Val, rl.Val); ok {
				return &Literal{Val: folded}
			}
		}
		return &BinaryExpr{Op: x.Op, L: l, R: r}
	case *NotExpr:
		in := foldConstants(x.E)
		if lit, ok := in.(*Literal); ok && lit.Val.K == store.KindBool {
			return &Literal{Val: store.BoolValue(!lit.Val.Bool())}
		}
		return &NotExpr{E: in}
	case *NegExpr:
		in := foldConstants(x.E)
		if lit, ok := in.(*Literal); ok {
			switch lit.Val.K {
			case store.KindInt:
				return &Literal{Val: store.IntValue(-lit.Val.I)}
			case store.KindFloat:
				return &Literal{Val: store.FloatValue(-lit.Val.F)}
			}
		}
		return &NegExpr{E: in}
	}
	return e
}

// evalConstBinary evaluates op over two literals, reusing the runtime
// evaluator through a throwaway binding (no columns involved).
func evalConstBinary(op BinOp, l, r store.Value) (store.Value, bool) {
	be, err := bindBinary(&BinaryExpr{
		Op: op,
		L:  &Literal{Val: l},
		R:  &Literal{Val: r},
	}, bindEnv{schema: &planSchema{}})
	if err != nil {
		return store.Value{}, false
	}
	v, err := be.eval(nil)
	if err != nil {
		return store.Value{}, false
	}
	return v, true
}

// foldPlan applies constant folding to every expression in a plan.
func foldPlan(plan LogicalPlan) LogicalPlan {
	switch n := plan.(type) {
	case *FilterNode:
		in := foldPlan(n.Input)
		pred := foldConstants(n.Pred)
		// A filter that folded to TRUE disappears; FALSE keeps the
		// filter (it correctly yields zero rows at execution).
		if lit, ok := pred.(*Literal); ok && lit.Val.K == store.KindBool && lit.Val.Bool() {
			return in
		}
		return &FilterNode{Input: in, Pred: pred}
	case *JoinNode:
		out := *n
		out.Left = foldPlan(n.Left)
		out.Right = foldPlan(n.Right)
		out.Cond = foldConstants(n.Cond)
		return &out
	case *ScanNode:
		out := *n
		out.Conjuncts = nil
		for _, c := range n.Conjuncts {
			fc := foldConstants(c)
			if lit, ok := fc.(*Literal); ok && lit.Val.K == store.KindBool && lit.Val.Bool() {
				continue
			}
			out.Conjuncts = append(out.Conjuncts, fc)
		}
		return &out
	case *ProjectNode:
		out := *n
		out.Input = foldPlan(n.Input)
		out.Exprs = make([]Expr, len(n.Exprs))
		for i, e := range n.Exprs {
			out.Exprs[i] = foldConstants(e)
		}
		return &out
	case *AggNode:
		out := *n
		out.Input = foldPlan(n.Input)
		return &out
	case *SortNode:
		return &SortNode{Input: foldPlan(n.Input), Keys: n.Keys}
	case *LimitNode:
		return &LimitNode{Input: foldPlan(n.Input), N: n.N}
	}
	return plan
}
