package query

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestExecStatsSnapshotConcurrent pins the atomiccheck fix in the
// executor: every read of a live ExecStats goes through Snapshot's
// atomic loads. The test shares one ExecStats between adder goroutines
// (the parallel-worker shape) and a reader calling Snapshot in a loop;
// under -race a regression to a plain struct copy (*stats) is reported
// immediately, and without -race the final totals still verify that no
// increment was lost.
func TestExecStatsSnapshotConcurrent(t *testing.T) {
	var stats ExecStats
	const workers = 4
	const addsPerWorker = 10_000

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < addsPerWorker; i++ {
				atomic.AddInt64(&stats.RowsScanned, 1)
				atomic.AddInt64(&stats.RowsJoined, 2)
				atomic.AddInt64(&stats.RowsReturned, 1)
			}
		}()
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		<-start
		prev := int64(-1)
		for i := 0; i < 2_000; i++ {
			snap := stats.Snapshot()
			// Each counter is monotonically nondecreasing; a torn or
			// non-atomic read can run backwards.
			if snap.RowsScanned < prev {
				t.Errorf("RowsScanned went backwards: %d after %d", snap.RowsScanned, prev)
				return
			}
			prev = snap.RowsScanned
		}
	}()
	close(start)
	wg.Wait()
	<-readerDone

	final := stats.Snapshot()
	if want := int64(workers * addsPerWorker); final.RowsScanned != want {
		t.Fatalf("RowsScanned = %d, want %d", final.RowsScanned, want)
	}
	if want := int64(workers * addsPerWorker * 2); final.RowsJoined != want {
		t.Fatalf("RowsJoined = %d, want %d", final.RowsJoined, want)
	}
	if want := int64(workers * addsPerWorker); final.RowsReturned != want {
		t.Fatalf("RowsReturned = %d, want %d", final.RowsReturned, want)
	}
}
