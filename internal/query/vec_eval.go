package query

import (
	"fmt"

	"drugtree/internal/store"
)

// errSubtreeNoTree and errAncestorNoTree mirror bindSubtree's and
// bindAncestor's missing-tree diagnostics byte for byte.
func errSubtreeNoTree() error {
	return fmt.Errorf("query: WITHIN_SUBTREE requires a tree-backed catalog")
}

func errAncestorNoTree() error {
	return fmt.Errorf("query: ANCESTOR_OF requires a tree-backed catalog")
}

// Vectorized expression compilation. bindVec compiles an expression to
// a per-batch evaluator that loops over typed column slices; bindVecPred
// compiles predicates to selection-vector filters. Expressions that can
// fail at evaluation time (negation / NOT / arithmetic over columns
// whose kind is not statically numeric or boolean) are NOT vectorized:
// the row engine surfaces such errors in strict row-major order, and a
// batch-at-a-time evaluator would reorder them. vecSafe rejects those
// shapes up front and the caller falls back to evaluating the
// row-compiled form row by row (or to the row operator entirely), so
// the two engines stay observably identical.

// vecExpr is a compiled vectorized expression: eval returns a column
// with b.n cells whose values are defined at the positions listed in
// sel (other cells are unspecified). Implementations must be stateless
// so one compiled expression can be shared by parallel workers.
type vecExpr struct {
	kind store.Kind
	eval func(b *batch, sel []int) (*store.Col, error)
}

// vecPred is a compiled vectorized predicate: filter narrows sel to
// the rows where the predicate is a non-NULL true (the row engine's
// evalBool semantics).
type vecPred struct {
	filter func(b *batch, sel []int) ([]int, error)
}

// vecSafe reports whether e can be evaluated batch-at-a-time without
// changing observable behavior, and the static result kind (mirroring
// bind's kind inference). Expressions whose evaluation can error are
// unsafe: vectorized evaluation would surface errors in a different
// row order than the row engine.
func vecSafe(e Expr, schema *planSchema) (store.Kind, bool) {
	switch x := e.(type) {
	case *Literal:
		return x.Val.K, true
	case *ColumnRef:
		idx, err := schema.resolve(x)
		if err != nil {
			return store.KindNull, false
		}
		return schema.cols[idx].Kind, true
	case *NegExpr:
		k, ok := vecSafe(x.E, schema)
		if !ok || (k != store.KindInt && k != store.KindFloat) {
			return store.KindNull, false
		}
		return k, true
	case *NotExpr:
		k, ok := vecSafe(x.E, schema)
		if !ok || k != store.KindBool {
			return store.KindNull, false
		}
		return store.KindBool, true
	case *BinaryExpr:
		lk, lok := vecSafe(x.L, schema)
		rk, rok := vecSafe(x.R, schema)
		if !lok || !rok {
			return store.KindNull, false
		}
		switch {
		case x.Op == OpAnd || x.Op == OpOr || x.Op == OpLike || x.Op.Comparison():
			return store.KindBool, true
		default: // arithmetic: both operands must be statically numeric
			lnum := lk == store.KindInt || lk == store.KindFloat
			rnum := rk == store.KindInt || rk == store.KindFloat
			if !lnum || !rnum {
				return store.KindNull, false
			}
			if lk == store.KindInt && rk == store.KindInt {
				return store.KindInt, true
			}
			return store.KindFloat, true
		}
	case *SubtreeExpr, *AncestorExpr, *InSubqueryExpr:
		if in, ok := x.(*InSubqueryExpr); ok {
			if _, nok := vecSafe(in.Needle, schema); !nok {
				return store.KindNull, false
			}
		}
		return store.KindBool, true
	case *TanimotoExpr:
		return store.KindFloat, true
	case *SubqueryExpr:
		// Scalar subqueries evaluate to a constant; the kind is only
		// known after planning the subquery, which is fine: parents
		// that need a numeric kind fall back.
		return store.KindNull, true
	}
	return store.KindNull, false
}

// bindVec compiles e (which must be vecSafe) to a vectorized
// evaluator. Leaves the batch loops cannot express natively —
// TANIMOTO, subqueries — are wrapped as per-row evaluations of the
// row-compiled form; they never error, so row order is immaterial.
func bindVec(e Expr, env bindEnv) (*vecExpr, error) {
	switch x := e.(type) {
	case *Literal:
		v := x.Val
		return &vecExpr{kind: v.K, eval: func(b *batch, sel []int) (*store.Col, error) {
			out := store.NewDenseCol(v.K, b.n)
			if !v.IsNull() {
				for _, i := range sel {
					out.SetValue(i, v)
				}
			}
			return out, nil
		}}, nil
	case *ColumnRef:
		idx, err := env.schema.resolve(x)
		if err != nil {
			return nil, err
		}
		kind := env.schema.cols[idx].Kind
		return &vecExpr{kind: kind, eval: func(b *batch, sel []int) (*store.Col, error) {
			return b.cols[idx], nil
		}}, nil
	case *NegExpr:
		inner, err := bindVec(x.E, env)
		if err != nil {
			return nil, err
		}
		return &vecExpr{kind: inner.kind, eval: func(b *batch, sel []int) (*store.Col, error) {
			c, err := inner.eval(b, sel)
			if err != nil {
				return nil, err
			}
			switch c.Kind {
			case store.KindInt:
				out := store.NewDenseCol(store.KindInt, b.n)
				for _, i := range sel {
					if !c.Null[i] {
						out.SetInt(i, -c.Int[i])
					}
				}
				return out, nil
			case store.KindFloat:
				out := store.NewDenseCol(store.KindFloat, b.n)
				for _, i := range sel {
					if !c.Null[i] {
						out.SetFloat(i, -c.Float[i])
					}
				}
				return out, nil
			}
			// Generic input (vecSafe guarantees the static kind is
			// numeric, so cells are numeric or NULL).
			out := store.NewDenseCol(store.KindNull, b.n)
			for _, i := range sel {
				v := c.Value(i)
				switch v.K {
				case store.KindInt:
					out.SetValue(i, store.IntValue(-v.I))
				case store.KindFloat:
					out.SetValue(i, store.FloatValue(-v.F))
				}
			}
			return out, nil
		}}, nil
	case *NotExpr:
		inner, err := bindVec(x.E, env)
		if err != nil {
			return nil, err
		}
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			c, err := inner.eval(b, sel)
			if err != nil {
				return nil, err
			}
			out := store.NewDenseCol(store.KindBool, b.n)
			for _, i := range sel {
				// NULL → false, bool → negation (vecSafe guarantees
				// the static kind is BOOL).
				out.SetBool(i, !c.Null[i] && !colTrue(c, i))
			}
			return out, nil
		}}, nil
	case *BinaryExpr:
		return bindVecBinary(x, env)
	case *SubtreeExpr:
		return bindVecSubtree(x, env)
	case *AncestorExpr:
		return bindVecAncestor(x, env)
	case *TanimotoExpr, *SubqueryExpr, *InSubqueryExpr:
		be, err := bind(e, env)
		if err != nil {
			return nil, err
		}
		return rowEvalVec(be), nil
	}
	// Unreachable when callers respect vecSafe; bind row-form so the
	// error matches the row engine's.
	be, err := bind(e, env)
	if err != nil {
		return nil, err
	}
	return rowEvalVec(be), nil
}

// rowEvalVec wraps a row-compiled expression as a vectorized leaf,
// evaluating it row by row into a generic column. Used for leaves that
// cannot error (their row order is unobservable) but have no batch
// loop form.
func rowEvalVec(be *boundExpr) *vecExpr {
	return &vecExpr{kind: be.kind, eval: func(b *batch, sel []int) (*store.Col, error) {
		out := store.NewDenseCol(store.KindNull, b.n)
		var scratch store.Row
		for _, i := range sel {
			scratch = b.rowAt(i, scratch)
			v, err := be.eval(scratch)
			if err != nil {
				return nil, err
			}
			out.SetValue(i, v)
		}
		return out, nil
	}}
}

// colTrue reports whether cell i is a non-NULL boolean true — the
// cell-level form of boundExpr.evalBool.
func colTrue(c *store.Col, i int) bool {
	if c.Null[i] {
		return false
	}
	switch c.Kind {
	case store.KindBool:
		return c.Int[i] != 0
	case store.KindNull:
		v := c.Vals[i]
		return v.K == store.KindBool && v.Bool()
	}
	return false
}

// colBool reports (value, isBool) for cell i: isBool is true only for
// a non-NULL boolean cell. Mirrors the row engine's AND/OR operand
// handling (lb := lv.K == KindBool && lv.Bool()).
func colBool(c *store.Col, i int) (bool, bool) {
	if c.Null[i] {
		return false, false
	}
	switch c.Kind {
	case store.KindBool:
		return c.Int[i] != 0, true
	case store.KindNull:
		v := c.Vals[i]
		return v.K == store.KindBool && v.Bool(), v.K == store.KindBool
	}
	return false, false
}

func bindVecBinary(x *BinaryExpr, env bindEnv) (*vecExpr, error) {
	l, err := bindVec(x.L, env)
	if err != nil {
		return nil, err
	}
	r, err := bindVec(x.R, env)
	if err != nil {
		return nil, err
	}
	op := x.Op
	// Constant-broadcast fast paths: a literal operand (constant
	// folding has already collapsed every constant subexpression to a
	// single Literal) is kept as a scalar instead of being
	// materialized into a batch-wide column on every eval — the
	// dominant cost of predicates like `affinity * 2.0 > 12.0`.
	llit, lIsLit := x.L.(*Literal)
	rlit, rIsLit := x.R.(*Literal)
	switch {
	case op == OpLike && rIsLit:
		pat := rlit.Val
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			out := store.NewDenseCol(store.KindBool, b.n)
			if pat.K != store.KindString {
				for _, i := range sel {
					out.SetBool(i, false)
				}
				return out, nil
			}
			if lc.Kind == store.KindString {
				for _, i := range sel {
					out.SetBool(i, !lc.Null[i] && likeMatch(lc.Str[i], pat.S))
				}
				return out, nil
			}
			for _, i := range sel {
				lv := lc.Value(i)
				out.SetBool(i, lv.K == store.KindString && likeMatch(lv.S, pat.S))
			}
			return out, nil
		}}, nil
	case op == OpLike:
		// Comparison() includes LIKE, so this guard keeps a
		// non-literal pattern out of the comparison fast paths; the
		// generic LIKE loop below handles it.
	case op.Comparison() && rIsLit:
		v := rlit.Val
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			return compareColScalar(op, lc, v, b.n, sel, true), nil
		}}, nil
	case op.Comparison() && lIsLit:
		v := llit.Val
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			rc, err := r.eval(b, sel)
			if err != nil {
				return nil, err
			}
			return compareColScalar(op, rc, v, b.n, sel, false), nil
		}}, nil
	case op != OpAnd && op != OpOr && op != OpLike && !op.Comparison() && rIsLit:
		v := rlit.Val
		return &vecExpr{kind: arithKind(l.kind, r.kind), eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			return arithColScalar(op, lc, v, b.n, sel, true), nil
		}}, nil
	case op != OpAnd && op != OpOr && op != OpLike && !op.Comparison() && lIsLit:
		v := llit.Val
		return &vecExpr{kind: arithKind(l.kind, r.kind), eval: func(b *batch, sel []int) (*store.Col, error) {
			rc, err := r.eval(b, sel)
			if err != nil {
				return nil, err
			}
			return arithColScalar(op, rc, v, b.n, sel, false), nil
		}}, nil
	}
	switch {
	case op == OpAnd || op == OpOr:
		isAnd := op == OpAnd
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			out := store.NewDenseCol(store.KindBool, b.n)
			// Short circuit at batch granularity: rows whose outcome
			// the left side decides are settled here; the right side
			// is evaluated only for the remainder.
			need := make([]int, 0, len(sel))
			for _, i := range sel {
				lb, lIsBool := colBool(lc, i)
				switch {
				case isAnd && lIsBool && !lb:
					out.SetBool(i, false)
				case !isAnd && lb:
					out.SetBool(i, true)
				default:
					need = append(need, i)
				}
			}
			if len(need) == 0 {
				return out, nil
			}
			rc, err := r.eval(b, need)
			if err != nil {
				return nil, err
			}
			for _, i := range need {
				lb := colTrue(lc, i)
				rb := colTrue(rc, i)
				if isAnd {
					out.SetBool(i, lb && rb)
				} else {
					out.SetBool(i, lb || rb)
				}
			}
			return out, nil
		}}, nil
	case op == OpLike:
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			rc, err := r.eval(b, sel)
			if err != nil {
				return nil, err
			}
			out := store.NewDenseCol(store.KindBool, b.n)
			if lc.Kind == store.KindString && rc.Kind == store.KindString {
				for _, i := range sel {
					out.SetBool(i, !lc.Null[i] && !rc.Null[i] && likeMatch(lc.Str[i], rc.Str[i]))
				}
				return out, nil
			}
			for _, i := range sel {
				lv, rv := lc.Value(i), rc.Value(i)
				out.SetBool(i, lv.K == store.KindString && rv.K == store.KindString && likeMatch(lv.S, rv.S))
			}
			return out, nil
		}}, nil
	case op.Comparison():
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			rc, err := r.eval(b, sel)
			if err != nil {
				return nil, err
			}
			return compareCols(op, lc, rc, b.n, sel), nil
		}}, nil
	default: // arithmetic; vecSafe guarantees both sides statically numeric
		outKind := store.KindFloat
		if l.kind == store.KindInt && r.kind == store.KindInt {
			outKind = store.KindInt
		}
		return &vecExpr{kind: outKind, eval: func(b *batch, sel []int) (*store.Col, error) {
			lc, err := l.eval(b, sel)
			if err != nil {
				return nil, err
			}
			rc, err := r.eval(b, sel)
			if err != nil {
				return nil, err
			}
			return arithCols(op, lc, rc, b.n, sel), nil
		}}, nil
	}
}

// cmpHolds applies a comparison operator to a store.Compare result.
func cmpHolds(op BinOp, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// compareCols evaluates a comparison over two aligned columns.
// Comparisons with NULL are false (the row engine's two-valued logic);
// non-NULL cells compare exactly as store.Compare does: int/int
// exactly, mixed numerics as float64, strings bytewise.
func compareCols(op BinOp, lc, rc *store.Col, n int, sel []int) *store.Col {
	out := store.NewDenseCol(store.KindBool, n)
	switch {
	case lc.Kind == store.KindInt && rc.Kind == store.KindInt:
		for _, i := range sel {
			if lc.Null[i] || rc.Null[i] {
				out.SetBool(i, false)
				continue
			}
			a, b := lc.Int[i], rc.Int[i]
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.SetBool(i, cmpHolds(op, cmp))
		}
	case numericColKind(lc.Kind) && numericColKind(rc.Kind):
		for _, i := range sel {
			if lc.Null[i] || rc.Null[i] {
				out.SetBool(i, false)
				continue
			}
			a, b := colFloat(lc, i), colFloat(rc, i)
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.SetBool(i, cmpHolds(op, cmp))
		}
	case lc.Kind == store.KindString && rc.Kind == store.KindString:
		for _, i := range sel {
			if lc.Null[i] || rc.Null[i] {
				out.SetBool(i, false)
				continue
			}
			a, b := lc.Str[i], rc.Str[i]
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.SetBool(i, cmpHolds(op, cmp))
		}
	default:
		// Generic or cross-kind cells: defer to store.Compare for
		// exact row-engine semantics (kind-tag ordering included).
		for _, i := range sel {
			lv, rv := lc.Value(i), rc.Value(i)
			if lv.IsNull() || rv.IsNull() {
				out.SetBool(i, false)
				continue
			}
			out.SetBool(i, cmpHolds(op, store.Compare(lv, rv)))
		}
	}
	return out
}

func numericColKind(k store.Kind) bool {
	return k == store.KindInt || k == store.KindFloat
}

// colFloat reads a non-null numeric cell as float64.
func colFloat(c *store.Col, i int) float64 {
	if c.Kind == store.KindInt {
		return float64(c.Int[i])
	}
	return c.Float[i]
}

// arithCols evaluates +,-,*,/ over two aligned numeric columns:
// int/int stays exact integer arithmetic, any float operand promotes
// to float64, NULL operands and division by zero yield NULL.
func arithCols(op BinOp, lc, rc *store.Col, n int, sel []int) *store.Col {
	switch {
	case lc.Kind == store.KindInt && rc.Kind == store.KindInt:
		out := store.NewDenseCol(store.KindInt, n)
		for _, i := range sel {
			if lc.Null[i] || rc.Null[i] {
				continue
			}
			a, b := lc.Int[i], rc.Int[i]
			switch op {
			case OpAdd:
				out.SetInt(i, a+b)
			case OpSub:
				out.SetInt(i, a-b)
			case OpMul:
				out.SetInt(i, a*b)
			case OpDiv:
				if b != 0 {
					out.SetInt(i, a/b)
				}
			}
		}
		return out
	case numericColKind(lc.Kind) && numericColKind(rc.Kind):
		out := store.NewDenseCol(store.KindFloat, n)
		for _, i := range sel {
			if lc.Null[i] || rc.Null[i] {
				continue
			}
			a, b := colFloat(lc, i), colFloat(rc, i)
			switch op {
			case OpAdd:
				out.SetFloat(i, a+b)
			case OpSub:
				out.SetFloat(i, a-b)
			case OpMul:
				out.SetFloat(i, a*b)
			case OpDiv:
				if b != 0 {
					out.SetFloat(i, a/b)
				}
			}
		}
		return out
	}
	// Generic cells: mirror the row engine's scalar arithmetic
	// (vecSafe guarantees the static kinds are numeric, so non-NULL
	// cells are numeric).
	out := store.NewDenseCol(store.KindNull, n)
	for _, i := range sel {
		lv, rv := lc.Value(i), rc.Value(i)
		if lv.IsNull() || rv.IsNull() {
			continue
		}
		if lv.K == store.KindInt && rv.K == store.KindInt {
			switch op {
			case OpAdd:
				out.SetValue(i, store.IntValue(lv.I+rv.I))
			case OpSub:
				out.SetValue(i, store.IntValue(lv.I-rv.I))
			case OpMul:
				out.SetValue(i, store.IntValue(lv.I*rv.I))
			case OpDiv:
				if rv.I != 0 {
					out.SetValue(i, store.IntValue(lv.I/rv.I))
				}
			}
			continue
		}
		lf, rf := lv.AsFloat(), rv.AsFloat()
		switch op {
		case OpAdd:
			out.SetValue(i, store.FloatValue(lf+rf))
		case OpSub:
			out.SetValue(i, store.FloatValue(lf-rf))
		case OpMul:
			out.SetValue(i, store.FloatValue(lf*rf))
		case OpDiv:
			if rf != 0 {
				out.SetValue(i, store.FloatValue(lf/rf))
			}
		}
	}
	return out
}

// arithKind is bind's static result-kind rule for arithmetic: int/int
// stays int, any float operand promotes.
func arithKind(lk, rk store.Kind) store.Kind {
	if lk == store.KindInt && rk == store.KindInt {
		return store.KindInt
	}
	return store.KindFloat
}

// compareColScalar evaluates a comparison between a column and a
// constant without materializing the constant into a column.
// colIsLeft orients the comparison (col op v vs v op col). Semantics
// match compareCols cell for cell: NULL on either side is false.
func compareColScalar(op BinOp, c *store.Col, v store.Value, n int, sel []int, colIsLeft bool) *store.Col {
	out := store.NewDenseCol(store.KindBool, n)
	if v.IsNull() {
		for _, i := range sel {
			out.SetBool(i, false)
		}
		return out
	}
	hold := func(cmp int) bool {
		if !colIsLeft {
			cmp = -cmp
		}
		return cmpHolds(op, cmp)
	}
	switch {
	case c.Kind == store.KindInt && v.K == store.KindInt:
		b := v.I
		for _, i := range sel {
			if c.Null[i] {
				out.SetBool(i, false)
				continue
			}
			a := c.Int[i]
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.SetBool(i, hold(cmp))
		}
	case numericColKind(c.Kind) && (v.K == store.KindInt || v.K == store.KindFloat):
		b := v.AsFloat()
		for _, i := range sel {
			if c.Null[i] {
				out.SetBool(i, false)
				continue
			}
			a := colFloat(c, i)
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.SetBool(i, hold(cmp))
		}
	case c.Kind == store.KindString && v.K == store.KindString:
		b := v.S
		for _, i := range sel {
			if c.Null[i] {
				out.SetBool(i, false)
				continue
			}
			a := c.Str[i]
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			out.SetBool(i, hold(cmp))
		}
	default:
		// Generic cells or cross-kind constants: defer to
		// store.Compare for exact row-engine semantics.
		for _, i := range sel {
			cv := c.Value(i)
			if cv.IsNull() {
				out.SetBool(i, false)
				continue
			}
			out.SetBool(i, hold(store.Compare(cv, v)))
		}
	}
	return out
}

// arithColScalar evaluates +,-,*,/ between a column and a constant
// without materializing the constant. colIsLeft orients the operands.
// Semantics match arithCols cell for cell: int/int exact, any float
// promotes, NULL operands and division by zero yield NULL.
func arithColScalar(op BinOp, c *store.Col, v store.Value, n int, sel []int, colIsLeft bool) *store.Col {
	if v.IsNull() {
		return store.NewDenseCol(store.KindNull, n)
	}
	apply := func(cell, scalar store.Value) store.Value {
		l, r := cell, scalar
		if !colIsLeft {
			l, r = scalar, cell
		}
		if l.K == store.KindInt && r.K == store.KindInt {
			switch op {
			case OpAdd:
				return store.IntValue(l.I + r.I)
			case OpSub:
				return store.IntValue(l.I - r.I)
			case OpMul:
				return store.IntValue(l.I * r.I)
			case OpDiv:
				if r.I != 0 {
					return store.IntValue(l.I / r.I)
				}
			}
			return store.NullValue()
		}
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case OpAdd:
			return store.FloatValue(lf + rf)
		case OpSub:
			return store.FloatValue(lf - rf)
		case OpMul:
			return store.FloatValue(lf * rf)
		case OpDiv:
			if rf != 0 {
				return store.FloatValue(lf / rf)
			}
		}
		return store.NullValue()
	}
	switch {
	case c.Kind == store.KindInt && v.K == store.KindInt:
		out := store.NewDenseCol(store.KindInt, n)
		s := v.I
		for _, i := range sel {
			if c.Null[i] {
				continue
			}
			a, b := c.Int[i], s
			if !colIsLeft {
				a, b = s, c.Int[i]
			}
			switch op {
			case OpAdd:
				out.SetInt(i, a+b)
			case OpSub:
				out.SetInt(i, a-b)
			case OpMul:
				out.SetInt(i, a*b)
			case OpDiv:
				if b != 0 {
					out.SetInt(i, a/b)
				}
			}
		}
		return out
	case numericColKind(c.Kind) && (v.K == store.KindInt || v.K == store.KindFloat):
		out := store.NewDenseCol(store.KindFloat, n)
		s := v.AsFloat()
		for _, i := range sel {
			if c.Null[i] {
				continue
			}
			a, b := colFloat(c, i), s
			if !colIsLeft {
				a, b = s, colFloat(c, i)
			}
			switch op {
			case OpAdd:
				out.SetFloat(i, a+b)
			case OpSub:
				out.SetFloat(i, a-b)
			case OpMul:
				out.SetFloat(i, a*b)
			case OpDiv:
				if b != 0 {
					out.SetFloat(i, a/b)
				}
			}
		}
		return out
	}
	// Generic cells: mirror arithCols' scalar fallback.
	out := store.NewDenseCol(store.KindNull, n)
	for _, i := range sel {
		cv := c.Value(i)
		if cv.IsNull() {
			continue
		}
		if r := apply(cv, v); !r.IsNull() {
			out.SetValue(i, r)
		}
	}
	return out
}

// bindVecSubtree compiles WITHIN_SUBTREE to a preorder-interval loop,
// resolving the tree node and column exactly as bindSubtree does.
func bindVecSubtree(x *SubtreeExpr, env bindEnv) (*vecExpr, error) {
	if env.tree == nil {
		return nil, errSubtreeNoTree()
	}
	node, err := findTreeNode(env.tree, x.Node)
	if err != nil {
		return nil, err
	}
	lo, hi := env.tree.SubtreeInterval(node)
	idx, err := env.schema.resolve(x.Column)
	if err != nil {
		return nil, err
	}
	if env.schema.cols[idx].Kind == store.KindString {
		member := subtreeNameSet(env.tree, lo, hi)
		return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
			c := b.cols[idx]
			out := store.NewDenseCol(store.KindBool, b.n)
			if c.Kind == store.KindString {
				for _, i := range sel {
					out.SetBool(i, !c.Null[i] && member[c.Str[i]])
				}
				return out, nil
			}
			for _, i := range sel {
				v := c.Value(i)
				out.SetBool(i, v.K == store.KindString && member[v.S])
			}
			return out, nil
		}}, nil
	}
	return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
		c := b.cols[idx]
		out := store.NewDenseCol(store.KindBool, b.n)
		if c.Kind == store.KindInt {
			for _, i := range sel {
				out.SetBool(i, !c.Null[i] && c.Int[i] >= int64(lo) && c.Int[i] <= int64(hi))
			}
			return out, nil
		}
		for _, i := range sel {
			v := c.Value(i)
			out.SetBool(i, v.K == store.KindInt && v.I >= int64(lo) && v.I <= int64(hi))
		}
		return out, nil
	}}, nil
}

// bindVecAncestor compiles ANCESTOR_OF to a preorder-set loop,
// resolving the path exactly as bindAncestor does.
func bindVecAncestor(x *AncestorExpr, env bindEnv) (*vecExpr, error) {
	if env.tree == nil {
		return nil, errAncestorNoTree()
	}
	node, err := findTreeNode(env.tree, x.Node)
	if err != nil {
		return nil, err
	}
	path := make(map[int64]bool)
	for _, anc := range env.tree.Ancestors(node) {
		path[int64(env.tree.Pre(anc))] = true
	}
	idx, err := env.schema.resolve(x.Column)
	if err != nil {
		return nil, err
	}
	return &vecExpr{kind: store.KindBool, eval: func(b *batch, sel []int) (*store.Col, error) {
		c := b.cols[idx]
		out := store.NewDenseCol(store.KindBool, b.n)
		if c.Kind == store.KindInt {
			for _, i := range sel {
				out.SetBool(i, !c.Null[i] && path[c.Int[i]])
			}
			return out, nil
		}
		for _, i := range sel {
			v := c.Value(i)
			out.SetBool(i, v.K == store.KindInt && path[v.I])
		}
		return out, nil
	}}, nil
}

// bindVecPred compiles a predicate to a batch filter. Vectorizable
// predicates narrow the selection with batch loops; everything else
// evaluates the row-compiled predicate row by row, preserving the row
// engine's error order exactly.
func bindVecPred(e Expr, env bindEnv) (*vecPred, error) {
	if _, ok := vecSafe(e, env.schema); ok {
		ve, err := bindVec(e, env)
		if err != nil {
			return nil, err
		}
		return &vecPred{filter: func(b *batch, sel []int) ([]int, error) {
			c, err := ve.eval(b, sel)
			if err != nil {
				return nil, err
			}
			out := sel[:0:0] // fresh backing: sel may be shared
			for _, i := range sel {
				if colTrue(c, i) {
					out = append(out, i)
				}
			}
			return out, nil
		}}, nil
	}
	be, err := bind(e, env)
	if err != nil {
		return nil, err
	}
	return &vecPred{filter: func(b *batch, sel []int) ([]int, error) {
		var out []int
		var scratch store.Row
		for _, i := range sel {
			scratch = b.rowAt(i, scratch)
			ok, err := be.evalBool(scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, i)
			}
		}
		return out, nil
	}}, nil
}

// bindVecExpr compiles an output expression: vectorizable shapes get
// batch loops, the rest evaluate the row-compiled form per row
// (allocating per call, so compiled expressions stay shareable across
// parallel workers).
func bindVecExpr(e Expr, env bindEnv) (*vecExpr, error) {
	if _, ok := vecSafe(e, env.schema); ok {
		return bindVec(e, env)
	}
	be, err := bind(e, env)
	if err != nil {
		return nil, err
	}
	return rowEvalVec(be), nil
}
