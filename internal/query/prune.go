package query

// Projection pruning: narrow the rows flowing out of scans to the
// columns the rest of the plan actually touches. Joins copy and hash
// rows, so dropping dead columns early shrinks every intermediate.

// colKey identifies a column requirement by qualifier and name.
type colKey struct {
	qualifier string
	name      string
}

// requiredFrom accumulates the columns an expression needs.
func requiredFrom(e Expr, into map[colKey]bool) {
	for _, c := range exprColumns(e) {
		into[colKey{c.Qualifier, c.Name}] = true
	}
	// Tree/similarity predicates reference sibling columns the
	// rewrites may introduce later; keep end_pre when its relation is
	// touched by an AncestorExpr.
	walkExpr(e, func(x Expr) {
		if a, ok := x.(*AncestorExpr); ok {
			into[colKey{a.Column.Qualifier, "end_pre"}] = true
		}
	})
}

// pruneColumns rewrites the plan so scans feeding joins project away
// unused columns. The pass only fires below joins — the single-table
// pipeline already streams full rows cheaply, and pruning the final
// output would change the query result.
func pruneColumns(plan LogicalPlan) LogicalPlan {
	switch n := plan.(type) {
	case *ProjectNode:
		need := map[colKey]bool{}
		for _, e := range n.Exprs {
			requiredFrom(e, need)
		}
		out := *n
		out.Input = pruneInput(n.Input, need)
		return &out
	case *AggNode:
		need := map[colKey]bool{}
		for _, g := range n.GroupBy {
			requiredFrom(g, need)
		}
		for _, a := range n.Aggs {
			if !a.Star {
				requiredFrom(a.Arg, need)
			}
		}
		out := *n
		out.Input = pruneInput(n.Input, need)
		return &out
	case *FilterNode:
		// Cannot know the ancestor requirements without context; the
		// interesting shapes (Project/Agg on top) are handled above.
		out := *n
		out.Input = pruneColumns(n.Input)
		return &out
	case *SortNode:
		out := *n
		out.Input = pruneColumns(n.Input)
		return &out
	case *LimitNode:
		return &LimitNode{Input: pruneColumns(n.Input), N: n.N}
	case *JoinNode:
		out := *n
		out.Left = pruneColumns(n.Left)
		out.Right = pruneColumns(n.Right)
		out.schema = out.Left.Schema().concat(out.Right.Schema())
		return &out
	}
	return plan
}

// pruneInput pushes a requirement set down through filters, sorts and
// joins to the scans.
func pruneInput(plan LogicalPlan, need map[colKey]bool) LogicalPlan {
	switch n := plan.(type) {
	case *FilterNode:
		sub := copyNeed(need)
		requiredFrom(n.Pred, sub)
		return &FilterNode{Input: pruneInput(n.Input, sub), Pred: n.Pred}
	case *SortNode:
		sub := copyNeed(need)
		for _, k := range n.Keys {
			requiredFrom(k.Expr, sub)
		}
		return &SortNode{Input: pruneInput(n.Input, sub), Keys: n.Keys}
	case *LimitNode:
		return &LimitNode{Input: pruneInput(n.Input, need), N: n.N}
	case *JoinNode:
		sub := copyNeed(need)
		requiredFrom(n.Cond, sub)
		left := pruneInput(n.Left, sub)
		right := pruneInput(n.Right, sub)
		out := &JoinNode{Left: left, Right: right, Cond: n.Cond}
		out.schema = left.Schema().concat(right.Schema())
		return out
	case *ScanNode:
		return pruneScan(n, need)
	}
	return plan
}

func copyNeed(need map[colKey]bool) map[colKey]bool {
	out := make(map[colKey]bool, len(need))
	for k := range need {
		out[k] = true
	}
	return out
}

// pruneScan wraps a scan in a projection keeping only the required
// columns (plus the scan's own conjunct columns, which evaluate below
// the projection). A column is required when an unqualified or
// alias-qualified requirement resolves to it.
func pruneScan(n *ScanNode, need map[colKey]bool) LogicalPlan {
	var keep []planCol
	for _, c := range n.schema.cols {
		if need[colKey{"", c.Name}] || need[colKey{c.Qualifier, c.Name}] {
			keep = append(keep, c)
		}
	}
	if len(keep) == len(n.schema.cols) || len(keep) == 0 {
		return n // nothing to prune, or a degenerate requirement set
	}
	proj := &ProjectNode{Input: n, schema: &planSchema{}}
	for _, c := range keep {
		proj.Exprs = append(proj.Exprs, &ColumnRef{Qualifier: c.Qualifier, Name: c.Name})
		proj.Names = append(proj.Names, c.Name)
		proj.schema.cols = append(proj.schema.cols, c)
	}
	return proj
}
