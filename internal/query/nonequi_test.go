package query

import (
	"context"
	"strings"
	"testing"

	"drugtree/internal/store"
)

func TestNonEquiJoinUsesNestedLoop(t *testing.T) {
	cat := testCatalog(t)
	q := `SELECT p.accession, l.ligand_id FROM proteins p
		JOIN ligands l ON p.length < l.weight
		WHERE p.accession = 'P001'`
	plan := runQ(t, cat, DefaultOptions(), "EXPLAIN "+q)
	if !strings.Contains(plan.Plan, "NestedLoopJoin") {
		t.Fatalf("expected NestedLoopJoin:\n%s", plan.Plan)
	}
	res := runQ(t, cat, DefaultOptions(), q)
	// P001 has length 101; ligand weights are 100,110,...,190 → 9
	// weights strictly above 101.
	if len(res.Rows) != 9 {
		t.Fatalf("non-equi join rows = %d, want 9", len(res.Rows))
	}
	naive := runQ(t, cat, NaiveOptions(), q)
	if !sameRowMultiset(res.Rows, naive.Rows) {
		t.Fatal("non-equi join engines disagree")
	}
}

func TestMixedEquiAndResidualJoin(t *testing.T) {
	cat := testCatalog(t)
	// Equality extracted as the hash key, inequality kept as residual.
	q := `SELECT p.accession, a.affinity FROM proteins p
		JOIN activities a ON p.accession = a.protein_id AND a.affinity > 6
		WHERE p.family = 'FAM0'`
	plan := runQ(t, cat, DefaultOptions(), "EXPLAIN "+q)
	if !strings.Contains(plan.Plan, "HashJoin") {
		t.Fatalf("expected HashJoin with residual:\n%s", plan.Plan)
	}
	res := runQ(t, cat, DefaultOptions(), q)
	for _, r := range res.Rows {
		if r[1].F <= 6 {
			t.Fatalf("residual leak: %v", r)
		}
	}
	naive := runQ(t, cat, NaiveOptions(), q)
	if !sameRowMultiset(res.Rows, naive.Rows) {
		t.Fatal("residual join engines disagree")
	}
}

func TestUnaryMinus(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT accession, -length, -(length * 2) FROM proteins WHERE accession = 'P002'")
	r := res.Rows[0]
	if r[1].I != -102 || r[2].I != -204 {
		t.Fatalf("negation = %v", r)
	}
	// Negation of floats.
	res2 := runQ(t, cat, DefaultOptions(),
		"SELECT -weight FROM ligands WHERE ligand_id = 'L03'")
	if res2.Rows[0][0].F != -130 {
		t.Fatalf("float negation = %v", res2.Rows[0])
	}
	// Negating a string errors at evaluation.
	if _, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT -accession FROM proteins LIMIT 1"); err == nil {
		t.Fatal("string negation accepted")
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT length / 0, length / 0.0 FROM proteins LIMIT 1")
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Fatalf("division by zero = %v", res.Rows[0])
	}
}

func TestArithmeticOnStringsRejectedAtRuntime(t *testing.T) {
	cat := testCatalog(t)
	if _, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT accession + 1 FROM proteins LIMIT 1"); err == nil {
		t.Fatal("string arithmetic accepted")
	}
}

func TestCrossJoinViaTrueCondition(t *testing.T) {
	// A join whose condition folds to TRUE degenerates to a cross
	// product through the nested-loop operator.
	db, _ := store.Open("")
	t.Cleanup(func() { db.Close() })
	a, _ := db.CreateTable("a", store.MustSchema(store.Column{Name: "x", Kind: store.KindInt}))
	bt, _ := db.CreateTable("b", store.MustSchema(store.Column{Name: "y", Kind: store.KindInt}))
	for i := 0; i < 3; i++ {
		a.Insert(store.Row{store.IntValue(int64(i))})
		bt.Insert(store.Row{store.IntValue(int64(10 + i))})
	}
	cat := NewDBCatalog(db, nil)
	res := runQ(t, cat, DefaultOptions(), "SELECT p.x, q.y FROM a p JOIN b q ON 1 = 1")
	if len(res.Rows) != 9 {
		t.Fatalf("cross product = %d rows, want 9", len(res.Rows))
	}
}
