package query

import (
	"fmt"
	"sync/atomic"

	"drugtree/internal/store"
)

// Vectorized physical plan construction. buildVec mirrors
// buildIterator node for node and emits byte-identical plan notes, so
// EXPLAIN output — and the differential harness's plan-equality
// assertion — cannot tell the engines apart. Operators whose
// expressions vectorize run as batch loops; subtrees the batch model
// cannot reproduce exactly (merge join, nested-loop join, sorts, and
// any operator with an error-capable expression) reuse the row
// operators verbatim, bridged with rowsFromBatches/batchesFromRows, so
// their semantics cannot drift from the row engine's.

// built is the result of lowering one plan node: exactly one of b
// (vectorized) or r (row fallback) is set.
type built struct {
	b batchIterator
	r iterator
}

// batches adapts the subtree to the batch interface, bridging row
// fallbacks through generic columns.
func (bu built) batches(width int, ec *execCtx) batchIterator {
	if bu.b != nil {
		return bu.b
	}
	return &batchesFromRows{in: bu.r, width: width, cancel: canceller{ctx: ec.ctx}}
}

// rows adapts the subtree to the row interface; batch output is
// materialized row by row as fresh store.Rows.
func (bu built) rows(ec *execCtx) iterator {
	if bu.r != nil {
		return bu.r
	}
	return &rowsFromBatches{in: bu.b, cancel: canceller{ctx: ec.ctx}}
}

// buildVec lowers a logical plan node to a vectorized operator tree.
func buildVec(p LogicalPlan, ec *execCtx, depth int) (built, error) {
	switch n := p.(type) {
	case *ScanNode:
		return buildScanVec(n, ec, depth)
	case *FilterNode:
		pred, err := bindVecPred(n.Pred, ec.env(n.Input.Schema()))
		if err != nil {
			return built{}, err
		}
		op := ec.note(depth, "Filter %s", n.Pred)
		in, err := buildVec(n.Input, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		return built{b: &vecFilter{
			in:     in.batches(n.Input.Schema().Len(), ec),
			pred:   pred,
			cancel: canceller{ctx: ec.ctx},
			op:     op,
		}}, nil
	case *ProjectNode:
		op := ec.note(depth, "%s", n.describe())
		// Build the child first so the expression form can follow it:
		// a row-form child (sort fallback, small index scan) keeps the
		// row projection operator instead of paying a batch bridge for
		// a handful of rows. Exactly one expression form is bound
		// either way, so bind-time subqueries still execute once.
		in, err := buildVec(n.Input, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		if in.r != nil {
			exprs := make([]*boundExpr, len(n.Exprs))
			for i, e := range n.Exprs {
				be, err := bind(e, ec.env(n.Input.Schema()))
				if err != nil {
					return built{}, err
				}
				exprs[i] = be
			}
			return built{r: &projectIter{in: in.r, exprs: exprs, op: op}}, nil
		}
		exprs := make([]*vecExpr, len(n.Exprs))
		for i, e := range n.Exprs {
			ve, err := bindVecExpr(e, ec.env(n.Input.Schema()))
			if err != nil {
				return built{}, err
			}
			exprs[i] = ve
		}
		return built{b: &vecProject{
			in:     in.batches(n.Input.Schema().Len(), ec),
			exprs:  exprs,
			cancel: canceller{ctx: ec.ctx},
			op:     op,
		}}, nil
	case *JoinNode:
		return buildJoinVec(n, ec, depth)
	case *AggNode:
		return buildAggVec(n, ec, depth)
	case *SortNode:
		// Sorting drains its input anyway; the row sort operator is
		// reused over the (vectorized) subtree so ordering — ties
		// included — matches the row engine exactly.
		keys := make([]*boundExpr, len(n.Keys))
		descs := make([]bool, len(n.Keys))
		for i, k := range n.Keys {
			be, err := bind(k.Expr, ec.env(n.Input.Schema()))
			if err != nil {
				return built{}, err
			}
			keys[i] = be
			descs[i] = k.Desc
		}
		op := ec.note(depth, "%s", n.describe())
		in, err := buildVec(n.Input, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		return built{r: &sortIter{in: in.rows(ec), keys: keys, descs: descs, cancel: canceller{ctx: ec.ctx}, op: op}}, nil
	case *LimitNode:
		// Mirror the row builder's TopK fusion rewrites exactly (same
		// notes, same shapes); see buildIterator.
		if proj, ok := n.Input.(*ProjectNode); ok && ec.opts.UseIndexes && n.N > 0 {
			if sortNode, ok := proj.Input.(*SortNode); ok {
				inner := &LimitNode{Input: sortNode, N: n.N}
				outer := *proj
				outer.Input = inner
				return buildVec(&outer, ec, depth)
			}
		}
		if sortNode, ok := n.Input.(*SortNode); ok && ec.opts.UseIndexes && n.N > 0 {
			keys := make([]*boundExpr, len(sortNode.Keys))
			descs := make([]bool, len(sortNode.Keys))
			for i, k := range sortNode.Keys {
				be, err := bind(k.Expr, ec.env(sortNode.Input.Schema()))
				if err != nil {
					return built{}, err
				}
				keys[i] = be
				descs[i] = k.Desc
			}
			op := ec.note(depth, "TopK %d (%s)", n.N, sortNode.describe())
			in, err := buildVec(sortNode.Input, ec, depth+1)
			if err != nil {
				return built{}, err
			}
			return built{r: &topKIter{in: in.rows(ec), keys: keys, descs: descs, k: n.N, cancel: canceller{ctx: ec.ctx}, op: op}}, nil
		}
		op := ec.note(depth, "Limit %d", n.N)
		in, err := buildVec(n.Input, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		return built{b: &vecLimit{
			in:     in.batches(n.Input.Schema().Len(), ec),
			n:      n.N,
			cancel: canceller{ctx: ec.ctx},
			op:     op,
		}}, nil
	}
	return built{}, fmt.Errorf("query: cannot execute %T", p)
}

// --- Scans ---

// vecSmallGather is the index-result size below which the vectorized
// engine serves cloned rows directly instead of gathering columns: a
// point lookup touches a handful of rows, and building per-column
// typed vectors for them costs more than it saves.
const vecSmallGather = 256

// smallIndexScan is the row-form leaf for tiny residual-free index
// results. Plan text and row contents are identical to the columnar
// path; under EXPLAIN ANALYZE the operator reports zero batches,
// which is accurate — no batch was built.
func smallIndexScan(tv *store.TableView, ids []int64, ec *execCtx, op *OpStats) built {
	rows := tv.Rows(ids)
	atomic.AddInt64(&ec.stats.RowsIndexed, int64(len(rows)))
	op.addIn(int64(len(rows)))
	return built{r: &sliceIter{rows: rows, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}}
}

func buildScanVec(n *ScanNode, ec *execCtx, depth int) (built, error) {
	tv, err := ec.view(n.Table)
	if err != nil {
		return built{}, err
	}
	path := chooseAccessPath(n, tv.Table(), ec.opts.UseIndexes)
	var residual *vecPred
	if len(path.residual) > 0 {
		vp, err := bindVecPred(joinConjuncts(path.residual), ec.env(n.schema))
		if err != nil {
			return built{}, err
		}
		residual = vp
	}
	switch path.kind {
	case "indexeq":
		op := ec.note(depth, "IndexScan %s (%s = %v)%s", n.Table, path.column, path.eq, residualNote(path))
		ids, err := tv.LookupEqual(path.column, path.eq)
		if err != nil {
			return built{}, err
		}
		if residual == nil && len(ids) <= vecSmallGather {
			return smallIndexScan(tv, ids, ec, op), nil
		}
		cb := tv.GatherCols(ids)
		atomic.AddInt64(&ec.stats.RowsIndexed, int64(cb.Rows))
		op.addIn(int64(cb.Rows))
		return built{b: &vecScan{batches: batchesOf(cb), residual: residual, cancel: canceller{ctx: ec.ctx}, op: op}}, nil
	case "indexrange":
		op := ec.note(depth, "IndexRangeScan %s (%s in [%s, %s])%s", n.Table, path.column,
			boundStr(path.lo), boundStr(path.hi), residualNote(path))
		ids, err := tv.LookupRange(path.column, path.lo, path.hi)
		if err != nil {
			return built{}, err
		}
		if residual == nil && len(ids) <= vecSmallGather {
			return smallIndexScan(tv, ids, ec, op), nil
		}
		cb := tv.GatherCols(ids)
		atomic.AddInt64(&ec.stats.RowsIndexed, int64(cb.Rows))
		op.addIn(int64(cb.Rows))
		return built{b: &vecScan{batches: batchesOf(cb), residual: residual, cancel: canceller{ctx: ec.ctx}, op: op}}, nil
	default:
		op := ec.note(depth, "SeqScan %s%s", n.Table, residualNote(path))
		var batches []*batch
		total := 0
		cancel := canceller{ctx: ec.ctx}
		var scanErr error
		tv.ScanBatch(vecBatchSize, func(cb *store.ColBatch) bool {
			if scanErr = cancel.now(); scanErr != nil {
				return false
			}
			batches = append(batches, wholeBatch(cb))
			total += cb.Rows
			return true
		})
		if scanErr != nil {
			return built{}, scanErr
		}
		atomic.AddInt64(&ec.stats.RowsScanned, int64(total))
		op.addIn(int64(total))
		if ec.para > 1 && residual != nil && len(batches) > 1 {
			// Morsel-style parallelism at batch granularity: workers
			// narrow each batch's selection vector in place; batch
			// order is preserved, so output order matches serial.
			err := runChunks(ec.ctx, splitChunks(len(batches), ec.para), func(_ int, r morselRange) error {
				c := canceller{ctx: ec.ctx}
				for _, b := range batches[r.lo:r.hi] {
					if err := c.now(); err != nil {
						return err
					}
					sel, err := residual.filter(b, b.selection())
					if err != nil {
						return err
					}
					b.sel = sel
				}
				return nil
			})
			if err != nil {
				return built{}, err
			}
			return built{b: &vecScan{batches: batches, cancel: canceller{ctx: ec.ctx}, op: op}}, nil
		}
		return built{b: &vecScan{batches: batches, residual: residual, cancel: canceller{ctx: ec.ctx}, op: op}}, nil
	}
}

// vecScan streams materialized batches, applying an optional residual
// predicate by narrowing each batch's selection vector.
type vecScan struct {
	batches  []*batch
	pos      int
	residual *vecPred
	cancel   canceller
	op       *OpStats
}

func (s *vecScan) nextBatch() (*batch, error) {
	for {
		if err := s.cancel.now(); err != nil {
			return nil, err
		}
		if s.pos >= len(s.batches) {
			return nil, nil
		}
		b := s.batches[s.pos]
		s.pos++
		if b == nil {
			continue
		}
		if s.residual != nil {
			sel, err := s.residual.filter(b, b.selection())
			if err != nil {
				return nil, err
			}
			b = &batch{cols: b.cols, sel: sel, n: b.n}
		}
		if b.live() == 0 {
			continue
		}
		s.op.emit(b)
		return b, nil
	}
}

// --- Filter / Project / Limit ---

type vecFilter struct {
	in     batchIterator
	pred   *vecPred
	cancel canceller
	op     *OpStats
}

func (f *vecFilter) nextBatch() (*batch, error) {
	for {
		if err := f.cancel.now(); err != nil {
			return nil, err
		}
		b, err := f.in.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		f.op.addIn(int64(b.live()))
		sel, err := f.pred.filter(b, b.selection())
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			continue
		}
		out := &batch{cols: b.cols, sel: sel, n: b.n}
		f.op.emit(out)
		return out, nil
	}
}

type vecProject struct {
	in     batchIterator
	exprs  []*vecExpr
	cancel canceller
	op     *OpStats
}

func (p *vecProject) nextBatch() (*batch, error) {
	if err := p.cancel.now(); err != nil {
		return nil, err
	}
	b, err := p.in.nextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	sel := b.selection()
	cols := make([]*store.Col, len(p.exprs))
	for i, e := range p.exprs {
		c, err := e.eval(b, sel)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	out := &batch{cols: cols, sel: b.sel, n: b.n}
	p.op.emit(out)
	return out, nil
}

type vecLimit struct {
	in     batchIterator
	n      int
	seen   int
	done   bool
	cancel canceller
	op     *OpStats
}

func (l *vecLimit) nextBatch() (*batch, error) {
	for {
		if l.done || l.seen >= l.n {
			return nil, nil
		}
		if err := l.cancel.now(); err != nil {
			return nil, err
		}
		b, err := l.in.nextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			l.done = true
			return nil, nil
		}
		live := b.live()
		if live == 0 {
			continue
		}
		if l.seen+live > l.n {
			b = &batch{cols: b.cols, sel: b.selection()[:l.n-l.seen], n: b.n}
			live = l.n - l.seen
		}
		l.seen += live
		l.op.emit(b)
		return b, nil
	}
}

// --- Joins ---

// buildJoinVec mirrors buildJoin's access-path analysis. Equi-joins
// run as a vectorized hash join (HashAt-based build and probe over
// column vectors); merge-joinable shapes and non-equi joins reuse the
// row operators, which already match the row engine by construction.
func buildJoinVec(n *JoinNode, ec *execCtx, depth int) (built, error) {
	leftSchema, rightSchema := n.Left.Schema(), n.Right.Schema()
	conjs := splitConjuncts(n.Cond)
	var leftKeys, rightKeys []*boundExpr
	var leftIdx, rightIdx []int
	var residual []Expr
	for _, c := range conjs {
		if b, ok := c.(*BinaryExpr); ok && b.Op == OpEq {
			lcol, lOK := b.L.(*ColumnRef)
			rcol, rOK := b.R.(*ColumnRef)
			if lOK && rOK {
				if li, err := leftSchema.resolve(lcol); err == nil {
					if ri, err := rightSchema.resolve(rcol); err == nil {
						lk, _ := bind(lcol, ec.env(leftSchema))
						rk, _ := bind(rcol, ec.env(rightSchema))
						leftKeys = append(leftKeys, lk)
						rightKeys = append(rightKeys, rk)
						leftIdx = append(leftIdx, li)
						rightIdx = append(rightIdx, ri)
						continue
					}
				}
				if li, err := leftSchema.resolve(rcol); err == nil {
					if ri, err := rightSchema.resolve(lcol); err == nil {
						lk, _ := bind(rcol, ec.env(leftSchema))
						rk, _ := bind(lcol, ec.env(rightSchema))
						leftKeys = append(leftKeys, lk)
						rightKeys = append(rightKeys, rk)
						leftIdx = append(leftIdx, li)
						rightIdx = append(rightIdx, ri)
						continue
					}
				}
			}
		}
		if lit, ok := c.(*Literal); ok && lit.Val.K == store.KindBool && lit.Val.Bool() {
			continue // constant TRUE from pushdown
		}
		residual = append(residual, c)
	}
	// Index merge join: reuse the row implementation wholesale (it is
	// driven by ordered index scans, not batch flow).
	if ls, rs, lcol, rcol, ok := mergeJoinable(n, leftKeys, rightKeys, ec); ok {
		lt, _ := ec.cat.Table(ls.Table)
		rt, _ := ec.cat.Table(rs.Table)
		if chooseAccessPath(ls, lt, true).kind == "seqscan" &&
			chooseAccessPath(rs, rt, true).kind == "seqscan" {
			residualBound, err := bindJoinResidual(residual, n, ec)
			if err != nil {
				return built{}, err
			}
			op := ec.note(depth, "MergeJoin (%s = %s)%s", lcol, rcol, joinResidualNote(residual))
			li, lkIdx, err := buildOrderedScan(ls, lcol, ec, depth+1)
			if err != nil {
				return built{}, err
			}
			ri, rkIdx, err := buildOrderedScan(rs, rcol, ec, depth+1)
			if err != nil {
				return built{}, err
			}
			mj, err := newMergeJoin(li, ri, lkIdx, rkIdx, residualBound, ec, op)
			if err != nil {
				return built{}, err
			}
			return built{r: mj}, nil
		}
	}
	if len(leftKeys) > 0 {
		var residualVec *vecPred
		if len(residual) > 0 {
			vp, err := bindVecPred(joinConjuncts(residual), ec.env(n.schema))
			if err != nil {
				return built{}, err
			}
			residualVec = vp
		}
		op := ec.note(depth, "HashJoin (%d key(s))%s", len(leftKeys), joinResidualNote(residual))
		left, err := buildVec(n.Left, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		right, err := buildVec(n.Right, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		bi, err := newVecHashJoin(ec,
			left.batches(leftSchema.Len(), ec),
			right.batches(rightSchema.Len(), ec),
			leftIdx, rightIdx, residualVec, op)
		if err != nil {
			return built{}, err
		}
		return built{b: bi}, nil
	}
	residualBound, err := bindJoinResidual(residual, n, ec)
	if err != nil {
		return built{}, err
	}
	op := ec.note(depth, "NestedLoopJoin%s", joinResidualNote(residual))
	left, err := buildVec(n.Left, ec, depth+1)
	if err != nil {
		return built{}, err
	}
	right, err := buildVec(n.Right, ec, depth+1)
	if err != nil {
		return built{}, err
	}
	nl, err := newNestedLoopJoin(left.rows(ec), right.rows(ec), residualBound, ec, op)
	if err != nil {
		return built{}, err
	}
	return built{r: nl}, nil
}

// bindJoinResidual binds the row form of a join's residual conjuncts.
func bindJoinResidual(residual []Expr, n *JoinNode, ec *execCtx) (*boundExpr, error) {
	if len(residual) == 0 {
		return nil, nil
	}
	return bind(joinConjuncts(residual), ec.env(n.schema))
}

// rowRef addresses one build-side row inside its batch.
type rowRef struct {
	b *batch
	i int
}

// vecHashJoin builds a hash table over the right input's batches and
// probes with the left, emitting one output batch per probe batch.
// Hash values come from Col.HashAt, which reproduces Value.Hash bit
// for bit, so build/probe matching is identical to the row engine's
// (including its treatment of NULL keys: they never join).
type vecHashJoin struct {
	left     batchIterator
	leftIdx  []int
	table    map[uint64][]rowRef
	residual *vecPred
	stats    *ExecStats
	cancel   canceller
	op       *OpStats
}

func newVecHashJoin(ec *execCtx, left, right batchIterator, leftIdx, rightIdx []int, residual *vecPred, op *OpStats) (batchIterator, error) {
	rbs, err := drainBatches(ec.ctx, right)
	if err != nil {
		return nil, err
	}
	table := make(map[uint64][]rowRef)
	cancel := canceller{ctx: ec.ctx}
	for _, rb := range rbs {
		if err := cancel.now(); err != nil {
			return nil, err
		}
		for _, i := range rb.selection() {
			if h, ok := hashBatchKeys(rb, rightIdx, i); ok {
				table[h] = append(table[h], rowRef{rb, i})
			}
		}
	}
	j := &vecHashJoin{
		left:     left,
		leftIdx:  leftIdx,
		table:    table,
		residual: residual,
		stats:    ec.stats,
		cancel:   canceller{ctx: ec.ctx},
		op:       op,
	}
	if ec.para > 1 {
		// Parallel probe: drain the probe side and process contiguous
		// chunks of batches on the pool. Per-batch outputs keep their
		// slots, so concatenation preserves the serial output order.
		lbs, err := drainBatches(ec.ctx, left)
		if err != nil {
			return nil, err
		}
		outs := make([]*batch, len(lbs))
		err = runChunks(ec.ctx, splitChunks(len(lbs), ec.para), func(_ int, r morselRange) error {
			c := canceller{ctx: ec.ctx}
			for k := r.lo; k < r.hi; k++ {
				if err := c.now(); err != nil {
					return err
				}
				out, err := j.probe(lbs[k])
				if err != nil {
					return err
				}
				outs[k] = out
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		joined := int64(0)
		for _, o := range outs {
			if o != nil {
				joined += int64(o.live())
			}
		}
		atomic.AddInt64(&ec.stats.RowsJoined, joined)
		return &vecScan{batches: outs, cancel: canceller{ctx: ec.ctx}, op: op}, nil
	}
	return j, nil
}

// hashBatchKeys combines the key columns' hashes for row i exactly as
// hashKeys does for a row; ok is false when any key cell is NULL.
func hashBatchKeys(b *batch, idx []int, i int) (uint64, bool) {
	var h uint64 = 14695981039346656037
	for _, c := range idx {
		col := b.cols[c]
		if col.IsNull(i) {
			return 0, false
		}
		h = h*1099511628211 ^ col.HashAt(i)
	}
	return h, true
}

func (j *vecHashJoin) nextBatch() (*batch, error) {
	for {
		if err := j.cancel.now(); err != nil {
			return nil, err
		}
		lb, err := j.left.nextBatch()
		if err != nil || lb == nil {
			return nil, err
		}
		out, err := j.probe(lb)
		if err != nil {
			return nil, err
		}
		if out == nil || out.live() == 0 {
			continue
		}
		atomic.AddInt64(&j.stats.RowsJoined, int64(out.live()))
		j.op.emit(out)
		return out, nil
	}
}

// probe joins one probe batch against the build table, producing a
// fresh output batch (left columns then right columns). Stateless, so
// parallel workers can share the join. Output column kinds follow the
// input columns' runtime kinds, which are stable across batches of
// one operator, so typed appends never mismatch.
func (j *vecHashJoin) probe(lb *batch) (*batch, error) {
	lw := len(lb.cols)
	var cols []*store.Col
	n := 0
	for _, li := range lb.selection() {
		h, ok := hashBatchKeys(lb, j.leftIdx, li)
		if !ok {
			continue
		}
		for _, rr := range j.table[h] {
			if cols == nil {
				cols = make([]*store.Col, lw+len(rr.b.cols))
				for c, lc := range lb.cols {
					cols[c] = store.NewCol(lc.Kind, vecBatchSize)
				}
				for c, rc := range rr.b.cols {
					cols[lw+c] = store.NewCol(rc.Kind, vecBatchSize)
				}
			}
			for c := range lb.cols {
				cols[c].AppendFrom(lb.cols[c], li)
			}
			for c := range rr.b.cols {
				cols[lw+c].AppendFrom(rr.b.cols[c], rr.i)
			}
			n++
		}
	}
	if n == 0 {
		return nil, nil
	}
	out := &batch{cols: cols, n: n}
	if j.residual != nil {
		sel, err := j.residual.filter(out, out.selection())
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			return nil, nil
		}
		out.sel = sel
	}
	return out, nil
}

// --- Aggregation ---

// buildAggVec aggregates over batches when every group and argument
// expression vectorizes; otherwise it reuses the row aggregation
// operator over the bridged input.
func buildAggVec(n *AggNode, ec *execCtx, depth int) (built, error) {
	if it, ok := tryOverlayRead(n, ec, depth); ok {
		return built{r: it}, nil
	}
	env := ec.env(n.Input.Schema())
	allSafe := true
	for _, g := range n.GroupBy {
		if _, ok := vecSafe(g, env.schema); !ok {
			allSafe = false
			break
		}
	}
	if allSafe {
		for _, a := range n.Aggs {
			if a.Star {
				continue
			}
			if _, ok := vecSafe(a.Arg, env.schema); !ok {
				allSafe = false
				break
			}
		}
	}
	if !allSafe {
		groups := make([]*boundExpr, len(n.GroupBy))
		for i, g := range n.GroupBy {
			be, err := bind(g, env)
			if err != nil {
				return built{}, err
			}
			groups[i] = be
		}
		args := make([]*boundExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			if a.Star {
				continue
			}
			be, err := bind(a.Arg, env)
			if err != nil {
				return built{}, err
			}
			args[i] = be
		}
		op := ec.note(depth, "%s", n.describe())
		in, err := buildVec(n.Input, ec, depth+1)
		if err != nil {
			return built{}, err
		}
		return built{r: &aggIter{in: in.rows(ec), groups: groups, aggs: n.Aggs, args: args, ec: ec, op: op}}, nil
	}
	groups := make([]*vecExpr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		ve, err := bindVec(g, env)
		if err != nil {
			return built{}, err
		}
		groups[i] = ve
	}
	args := make([]*vecExpr, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		ve, err := bindVec(a.Arg, env)
		if err != nil {
			return built{}, err
		}
		args[i] = ve
	}
	op := ec.note(depth, "%s", n.describe())
	in, err := buildVec(n.Input, ec, depth+1)
	if err != nil {
		return built{}, err
	}
	return built{r: &vecAggIter{
		in:     in.batches(n.Input.Schema().Len(), ec),
		groups: groups,
		aggs:   n.Aggs,
		args:   args,
		ec:     ec,
		op:     op,
	}}, nil
}

// vecAggIter is hash aggregation with vectorized key/argument
// evaluation: expressions run per batch, accumulation reuses aggTable
// (so grouping, DISTINCT, and merge semantics are shared with the row
// engine). Output is row-at-a-time — aggregates emit one row per
// group, far below batch granularity.
type vecAggIter struct {
	in     batchIterator
	groups []*vecExpr
	aggs   []*AggExpr
	args   []*vecExpr // nil entries for star aggregates
	ec     *execCtx
	op     *OpStats

	out []store.Row
	pos int
	run bool
}

func (a *vecAggIter) Next() (store.Row, bool, error) {
	if !a.run {
		if err := a.drain(); err != nil {
			return nil, false, err
		}
		a.run = true
	}
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	a.op.addOut(1)
	return r, true, nil
}

// accumBatch evaluates group and argument expressions over one batch
// and folds every live row into the table.
func (a *vecAggIter) accumBatch(t *aggTable, b *batch) error {
	sel := b.selection()
	gcols := make([]*store.Col, len(a.groups))
	for i, g := range a.groups {
		c, err := g.eval(b, sel)
		if err != nil {
			return err
		}
		gcols[i] = c
	}
	acols := make([]*store.Col, len(a.args))
	for i, ae := range a.args {
		if ae == nil {
			continue
		}
		c, err := ae.eval(b, sel)
		if err != nil {
			return err
		}
		acols[i] = c
	}
	argv := make([]store.Value, len(a.aggs))
	for _, i := range sel {
		keys := make([]store.Value, len(gcols))
		for g, c := range gcols {
			keys[g] = c.Value(i)
		}
		for k, c := range acols {
			if c != nil {
				argv[k] = c.Value(i)
			}
		}
		t.addValues(keys, argv)
	}
	return nil
}

func (a *vecAggIter) drain() error {
	var final *aggTable
	if a.ec.para > 1 {
		t, err := a.drainParallel()
		if err != nil {
			return err
		}
		final = t
	} else {
		final = newAggTable(nil, a.aggs, nil)
		cancel := canceller{ctx: a.ec.ctx}
		for {
			if err := cancel.now(); err != nil {
				return err
			}
			b, err := a.in.nextBatch()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			a.op.addIn(int64(b.live()))
			if err := a.accumBatch(final, b); err != nil {
				return err
			}
		}
	}
	// A global aggregate over an empty input still yields one row.
	if len(a.groups) == 0 && len(final.order) == 0 {
		final.table[""] = &groupEntry{states: make([]aggState, len(a.aggs))}
		final.order = append(final.order, "")
	}
	a.out = final.rows()
	return nil
}

// drainParallel materializes the input batches and aggregates
// contiguous chunks into per-worker partial tables, merged in chunk
// order — the same order-reproducing scheme the row engine uses.
func (a *vecAggIter) drainParallel() (*aggTable, error) {
	bs, err := drainBatches(a.ec.ctx, a.in)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, b := range bs {
		total += b.live()
	}
	a.op.addIn(int64(total))
	if total < 2*morselSize {
		// Partial tables would cost more than they save.
		t := newAggTable(nil, a.aggs, nil)
		for _, b := range bs {
			if err := a.accumBatch(t, b); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	chunks := splitChunks(len(bs), a.ec.para)
	partials := make([]*aggTable, len(chunks))
	err = runChunks(a.ec.ctx, chunks, func(w int, r morselRange) error {
		c := canceller{ctx: a.ec.ctx}
		part := newAggTable(nil, a.aggs, nil)
		for _, b := range bs[r.lo:r.hi] {
			if err := c.now(); err != nil {
				return err
			}
			if err := a.accumBatch(part, b); err != nil {
				return err
			}
		}
		partials[w] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	final := partials[0]
	for _, p := range partials[1:] {
		final.merge(p)
	}
	return final, nil
}
