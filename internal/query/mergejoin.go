package query

import (
	"sync/atomic"

	"drugtree/internal/store"
)

// Merge join: when both join inputs are base-table scans whose single
// equi-join columns carry B+-tree indexes, the executor reads both
// sides in key order straight off the indexes and merges — no hash
// table, no sort. The physical planner (buildJoin) selects it; the
// operator itself works over any two key-ordered row streams.

// mergeJoinable reports whether the join can run as an index merge
// join and returns the scan nodes and key column names.
func mergeJoinable(n *JoinNode, leftKeys, rightKeys []*boundExpr, ec *execCtx) (l, r *ScanNode, lcol, rcol string, ok bool) {
	if len(leftKeys) != 1 || !ec.opts.UseIndexes {
		return nil, nil, "", "", false
	}
	ls, lok := n.Left.(*ScanNode)
	rs, rok := n.Right.(*ScanNode)
	if !lok || !rok {
		return nil, nil, "", "", false
	}
	lref, lok := leftKeys[0].src.(*ColumnRef)
	rref, rok := rightKeys[0].src.(*ColumnRef)
	if !lok || !rok {
		return nil, nil, "", "", false
	}
	lt, err := ec.cat.Table(ls.Table)
	if err != nil {
		return nil, nil, "", "", false
	}
	rt, err := ec.cat.Table(rs.Table)
	if err != nil {
		return nil, nil, "", "", false
	}
	if typ, has := lt.HasIndex(lref.Name); !has || typ != store.IndexBTree {
		return nil, nil, "", "", false
	}
	if typ, has := rt.HasIndex(rref.Name); !has || typ != store.IndexBTree {
		return nil, nil, "", "", false
	}
	return ls, rs, lref.Name, rref.Name, true
}

// buildOrderedScan materializes a scan's rows in key order via the
// B+-tree index, applying every pushed conjunct as a residual filter
// (filtering preserves order).
func buildOrderedScan(n *ScanNode, col string, ec *execCtx, depth int) (iterator, int, error) {
	tv, err := ec.view(n.Table)
	if err != nil {
		return nil, 0, err
	}
	ids, err := tv.LookupRange(col, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	rows := tv.Rows(ids)
	atomic.AddInt64(&ec.stats.RowsIndexed, int64(len(rows)))
	op := ec.note(depth, "OrderedIndexScan %s (by %s)%s", n.Table, col,
		residualNote(accessPath{residual: n.Conjuncts}))
	op.addIn(int64(len(rows)))
	var residual *boundExpr
	if len(n.Conjuncts) > 0 {
		be, err := bind(joinConjuncts(n.Conjuncts), ec.env(n.schema))
		if err != nil {
			return nil, 0, err
		}
		residual = be
	}
	keyIdx := tv.Table().Schema().ColumnIndex(col)
	return &sliceIter{rows: rows, residual: residual, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, keyIdx, nil
}

// mergeJoinIter merges two key-ordered inputs on one key column each,
// emitting the cross product of equal-key blocks.
type mergeJoinIter struct {
	left, right  iterator
	lkIdx, rkIdx int
	residual     *boundExpr
	stats        *ExecStats
	cancel       canceller
	op           *OpStats

	lRow    store.Row
	lValid  bool
	started bool

	// Right-side block buffering: rows sharing the current key.
	rBlock   []store.Row
	rBlockAt int
	rNext    store.Row // lookahead past the block
	rEOF     bool

	emitPos int
}

func newMergeJoin(left, right iterator, lkIdx, rkIdx int, residual *boundExpr, ec *execCtx, op *OpStats) (*mergeJoinIter, error) {
	return &mergeJoinIter{
		left: left, right: right,
		lkIdx: lkIdx, rkIdx: rkIdx,
		residual: residual, stats: ec.stats,
		cancel: canceller{ctx: ec.ctx}, op: op,
	}, nil
}

func (m *mergeJoinIter) advanceLeft() error {
	r, ok, err := m.left.Next()
	if err != nil {
		return err
	}
	if ok {
		m.op.addIn(1)
	}
	m.lRow, m.lValid = r, ok
	return nil
}

// readRight returns the next right row, honoring lookahead.
func (m *mergeJoinIter) readRight() (store.Row, bool, error) {
	if m.rNext != nil {
		r := m.rNext
		m.rNext = nil
		return r, true, nil
	}
	if m.rEOF {
		return nil, false, nil
	}
	r, ok, err := m.right.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		m.rEOF = true
	}
	return r, ok, nil
}

// loadBlockFor fills rBlock with right rows equal to key, consuming
// rows below key. Returns false when no right rows match.
func (m *mergeJoinIter) loadBlockFor(key store.Value) (bool, error) {
	// Reuse the current block when the key matches (classic merge
	// join duplicate-left handling).
	if len(m.rBlock) > 0 && store.Equal(m.rBlock[0][m.rkIdx], key) {
		return true, nil
	}
	m.rBlock = m.rBlock[:0]
	for {
		r, ok, err := m.readRight()
		if err != nil {
			return false, err
		}
		if !ok {
			return len(m.rBlock) > 0, nil
		}
		c := store.Compare(r[m.rkIdx], key)
		switch {
		case c < 0:
			continue // skip below-key rows
		case c == 0:
			m.rBlock = append(m.rBlock, r)
		default:
			if len(m.rBlock) == 0 {
				// Right ran ahead: stash and report no match.
				m.rNext = r
				return false, nil
			}
			m.rNext = r
			return true, nil
		}
	}
}

func (m *mergeJoinIter) Next() (store.Row, bool, error) {
	for {
		if err := m.cancel.check(); err != nil {
			return nil, false, err
		}
		if !m.started {
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			m.started = true
		}
		if !m.lValid {
			return nil, false, nil
		}
		key := m.lRow[m.lkIdx]
		if key.IsNull() {
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		matched, err := m.loadBlockFor(key)
		if err != nil {
			return nil, false, err
		}
		if !matched {
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		if m.emitPos < len(m.rBlock) {
			right := m.rBlock[m.emitPos]
			m.emitPos++
			out := make(store.Row, 0, len(m.lRow)+len(right))
			out = append(out, m.lRow...)
			out = append(out, right...)
			if m.residual != nil {
				ok, err := m.residual.evalBool(out)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			atomic.AddInt64(&m.stats.RowsJoined, 1)
			m.op.addOut(1)
			return out, true, nil
		}
		m.emitPos = 0
		if err := m.advanceLeft(); err != nil {
			return nil, false, err
		}
	}
}
