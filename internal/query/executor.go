package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// Result is the materialized output of one query.
type Result struct {
	// Columns are the output column names in SELECT order.
	Columns []string
	// Rows are the result rows.
	Rows []store.Row
	// Plan is the physical plan rendered as indented text.
	Plan string
	// Stats counts the work the execution performed.
	Stats ExecStats
	// SkippedShards lists shards whose rows this answer may be missing
	// because every replica was down. Only the shard coordinator sets
	// it, and only when its AllowPartial policy admitted the query.
	SkippedShards []int
}

// Engine executes DTQL against a catalog.
type Engine struct {
	cat  Catalog
	opts Options
}

// NewEngine creates an engine. Use DefaultOptions for the optimized
// engine, NaiveOptions for the experimental baseline.
func NewEngine(cat Catalog, opts Options) *Engine {
	return &Engine{cat: cat, opts: opts}
}

// Options returns the engine's optimizer options.
func (e *Engine) Options() Options { return e.opts }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() Catalog { return e.cat }

// Query parses, plans, optimizes, and executes a DTQL string. For
// EXPLAIN statements the plan is produced but not executed. The
// context cancels mid-flight execution: scans, joins, aggregation,
// and sorts all poll it and unwind with ctx.Err() — the abandonment
// path a mobile client takes when it navigates away from a viewport
// whose query is still running.
func (e *Engine) Query(ctx context.Context, src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, stmt)
}

// SnapshotCatalog is implemented by catalogs that can pin an MVCC
// snapshot of their backing store. Engines over such a catalog pin one
// snapshot per statement, so every scan — across tables, across the
// row and vectorized paths, and inside subqueries — reads the same
// consistent image even while writers commit concurrently.
type SnapshotCatalog interface {
	Catalog
	PinSnapshot() *store.SnapshotHandle
}

// Run executes a parsed statement under the given context. When the
// catalog supports snapshots, the whole statement runs against one
// pinned snapshot, released when execution finishes.
func (e *Engine) Run(ctx context.Context, stmt *SelectStmt) (*Result, error) {
	if sc, ok := e.cat.(SnapshotCatalog); ok {
		snap := sc.PinSnapshot()
		defer snap.Release()
		return e.RunAt(ctx, stmt, snap)
	}
	return e.RunAt(ctx, stmt, nil)
}

// RunAt executes a parsed statement against an already-pinned
// snapshot (nil runs unpinned, reading latest versions). Ownership of
// snap stays with the caller — RunAt never releases it — so a caller
// can run several statements, or statement-cache key computation plus
// the statement itself, against one frozen image.
func (e *Engine) RunAt(ctx context.Context, stmt *SelectStmt, snap *store.SnapshotHandle) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	logical, err := BuildLogical(stmt, e.cat)
	if err != nil {
		return nil, err
	}
	optimized, err := Optimize(logical, e.cat, e.opts)
	if err != nil {
		return nil, err
	}
	cols := outputColumns(optimized)
	ec := &execCtx{ctx: ctx, cat: e.cat, snap: snap, opts: e.opts, stats: &ExecStats{}, para: e.opts.EffectiveParallelism()}
	var iter iterator
	if e.opts.Vectorized {
		bu, err := buildVec(optimized, ec, 0)
		if err != nil {
			return nil, err
		}
		iter = bu.rows(ec)
	} else {
		iter, err = buildIterator(optimized, ec, 0)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{
		Columns: cols,
		Plan:    strings.Join(ec.plan, "\n"),
		Stats:   ec.stats.Snapshot(),
	}
	if stmt.Explain && !stmt.Analyze {
		return res, nil
	}
	cancel := canceller{ctx: ctx}
	for {
		if err := cancel.check(); err != nil {
			return nil, err
		}
		r, ok, err := iter.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.Rows = append(res.Rows, r)
	}
	atomic.StoreInt64(&ec.stats.RowsReturned, int64(len(res.Rows)))
	if stmt.Analyze {
		// EXPLAIN ANALYZE: the query ran to completion; render the
		// plan with per-operator execution counters and drop the rows
		// (the plan is the payload, as in EXPLAIN).
		res.Plan = annotatePlan(ec.plan, ec.stats.Ops)
		res.Rows = nil
	}
	res.Stats = ec.stats.Snapshot()
	return res, nil
}

// annotatePlan appends each operator's runtime counters to its plan
// line: rows emitted, batches emitted (0 under the row engine), and
// selectivity (rows out / rows in) where the operator saw input.
func annotatePlan(plan []string, ops []*OpStats) string {
	var b strings.Builder
	for i, line := range plan {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(line)
		if i < len(ops) && ops[i] != nil {
			op := ops[i]
			fmt.Fprintf(&b, " [rows=%d batches=%d", op.RowsOut, op.Batches)
			if s := op.selectivity(); s >= 0 {
				fmt.Fprintf(&b, " sel=%.1f%%", s*100)
			}
			b.WriteByte(']')
		}
	}
	return b.String()
}

// Clone returns a deep copy of the result: rows, columns, and
// per-operator stats share no storage with the receiver. Callers that
// hand one Result to multiple consumers (the statement cache does)
// clone so a consumer mutating its rows cannot corrupt the others'.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := *r
	out.Columns = append([]string(nil), r.Columns...)
	out.SkippedShards = append([]int(nil), r.SkippedShards...)
	if r.Rows != nil {
		out.Rows = make([]store.Row, len(r.Rows))
		for i, row := range r.Rows {
			out.Rows[i] = append(store.Row(nil), row...)
		}
	}
	if r.Stats.Ops != nil {
		out.Stats.Ops = make([]*OpStats, len(r.Stats.Ops))
		for i, op := range r.Stats.Ops {
			if op != nil {
				c := *op
				out.Stats.Ops[i] = &c
			}
		}
	}
	return &out
}

// OutputColumns returns the output column names stmt would produce,
// without executing it. The shard coordinator uses it to label merged
// scatter-gather results with exactly the names the single-node
// engine would emit (including the uniqueName _2-style dedup suffixes
// buildAggregate applies).
func OutputColumns(stmt *SelectStmt, cat Catalog) ([]string, error) {
	p, err := BuildLogical(stmt, cat)
	if err != nil {
		return nil, err
	}
	return outputColumns(p), nil
}

// outputColumns extracts the final column names of a plan.
func outputColumns(p LogicalPlan) []string {
	switch n := p.(type) {
	case *ProjectNode:
		return n.Names
	case *AggNode:
		return n.Names
	case *SortNode:
		return outputColumns(n.Input)
	case *LimitNode:
		return outputColumns(n.Input)
	case *FilterNode:
		return outputColumns(n.Input)
	}
	cols := p.Schema().cols
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return names
}

// FormatResult renders a result as an aligned text table (used by the
// CLI and examples).
func FormatResult(r *Result) string {
	if len(r.Columns) == 0 {
		return "(no columns)\n"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			if v.K == store.KindString {
				s = v.S // unquoted for display
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d row(s))\n", len(r.Rows))
	return b.String()
}

// DBCatalog is a Catalog over a store.DB with version-checked cached
// statistics and an optional phylogenetic tree.
type DBCatalog struct {
	DB        *store.DB
	PhyloTree *phylo.Tree
	// OverlayAggs, when set, serves precomputed subtree aggregates to
	// the OverlayRead rewrite (see overlay.go).
	OverlayAggs SubtreeOverlay

	mu         sync.Mutex
	statsCache map[string]cachedStats
}

type cachedStats struct {
	stats   *store.TableStats
	version int64
}

// NewDBCatalog wires a catalog; tree may be nil for tables-only use.
func NewDBCatalog(db *store.DB, tree *phylo.Tree) *DBCatalog {
	return &DBCatalog{DB: db, PhyloTree: tree, statsCache: make(map[string]cachedStats)}
}

// Table implements Catalog.
func (c *DBCatalog) Table(name string) (*store.Table, error) { return c.DB.Table(name) }

// Stats implements Catalog, recomputing only when the table version
// changed since the cached snapshot.
func (c *DBCatalog) Stats(name string) (*store.TableStats, error) {
	t, err := c.DB.Table(name)
	if err != nil {
		return nil, err
	}
	v := t.Version()
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.statsCache[name]; ok && cached.version == v {
		return cached.stats, nil
	}
	st := t.Stats()
	c.statsCache[name] = cachedStats{stats: st, version: v}
	return st, nil
}

// Tree implements Catalog.
func (c *DBCatalog) Tree() *phylo.Tree { return c.PhyloTree }

// PinSnapshot implements SnapshotCatalog.
func (c *DBCatalog) PinSnapshot() *store.SnapshotHandle { return c.DB.PinSnapshot() }

// Overlay implements OverlayCatalog.
func (c *DBCatalog) Overlay() SubtreeOverlay { return c.OverlayAggs }

// TablesReferenced returns the distinct base-table names a statement
// reads, subqueries included, sorted. Statement caches use it to build
// per-table version keys: a cached result is reusable exactly when
// none of the tables it read have committed since.
func TablesReferenced(stmt *SelectStmt) []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkStmt func(s *SelectStmt)
	walkStmt = func(s *SelectStmt) {
		if s == nil {
			return
		}
		add(s.From.Name)
		for _, j := range s.Joins {
			add(j.Table.Name)
		}
		exprs := []Expr{s.Where, s.Having}
		for _, it := range s.Items {
			if !it.Star {
				exprs = append(exprs, it.Expr)
			}
		}
		exprs = append(exprs, s.GroupBy...)
		for _, k := range s.Order {
			exprs = append(exprs, k.Expr)
		}
		for _, e := range exprs {
			if e == nil {
				continue
			}
			walkExpr(e, func(x Expr) {
				switch q := x.(type) {
				case *SubqueryExpr:
					walkStmt(q.Stmt)
				case *InSubqueryExpr:
					walkStmt(q.Stmt)
				}
			})
		}
	}
	walkStmt(stmt)
	sort.Strings(out)
	return out
}
