package query

import (
	"context"
	"testing"

	"drugtree/internal/store"
)

// tanimotoCatalog holds a small ligand table with known structures.
func tanimotoCatalog(t *testing.T) *DBCatalog {
	t.Helper()
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	lig, err := db.CreateTable("ligands", store.MustSchema(
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "smiles", Kind: store.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	rows := [][2]string{
		{"ETH", "CCO"},            // ethanol
		{"PRO", "CCCO"},           // propanol
		{"BUT", "CCCCO"},          // butanol
		{"BNZ", "c1ccccc1"},       // benzene
		{"NAP", "c1ccc2ccccc2c1"}, // naphthalene
	}
	for _, r := range rows {
		lig.Insert(store.Row{store.StringValue(r[0]), store.StringValue(r[1])})
	}
	return NewDBCatalog(db, nil)
}

func TestParseTanimoto(t *testing.T) {
	stmt := mustParseQ(t, "SELECT TANIMOTO(smiles, 'CCO') FROM ligands")
	te, ok := stmt.Items[0].Expr.(*TanimotoExpr)
	if !ok || te.SMILES != "CCO" || te.Column.Name != "smiles" {
		t.Fatalf("tanimoto expr = %v", stmt.Items[0].Expr)
	}
	bad := []string{
		"SELECT TANIMOTO(1, 'CCO') FROM t",
		"SELECT TANIMOTO(smiles, x) FROM t",
		"SELECT TANIMOTO(smiles) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestTanimotoRanking(t *testing.T) {
	cat := tanimotoCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT ligand_id, TANIMOTO(smiles, 'CCO') AS sim FROM ligands ORDER BY sim DESC")
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "ETH" || res.Rows[0][1].F != 1 {
		t.Fatalf("self-similarity not first: %v", res.Rows[0])
	}
	// Alcohols outrank aromatics against an alcohol query.
	rank := map[string]int{}
	for i, r := range res.Rows {
		rank[r[0].S] = i
	}
	if rank["PRO"] > rank["BNZ"] || rank["BUT"] > rank["NAP"] {
		t.Fatalf("chemical ranking implausible: %v", rank)
	}
}

func TestTanimotoThresholdFilter(t *testing.T) {
	cat := tanimotoCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT ligand_id FROM ligands WHERE TANIMOTO(smiles, 'c1ccccc1') >= 0.99")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "BNZ" {
		t.Fatalf("threshold filter = %v", res.Rows)
	}
}

func TestTanimotoInvalidReferenceRejected(t *testing.T) {
	cat := tanimotoCatalog(t)
	if _, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT TANIMOTO(smiles, 'not smiles !!!') FROM ligands"); err == nil {
		t.Fatal("invalid reference SMILES accepted")
	}
}

func TestTanimotoUnparseableRowScoresNull(t *testing.T) {
	cat := tanimotoCatalog(t)
	db := cat.DB
	lig, _ := db.Table("ligands")
	lig.Insert(store.Row{store.StringValue("BAD"), store.StringValue("garbage(((")})
	// NULL similarity rows are excluded by the threshold comparison.
	res := runQ(t, cat, DefaultOptions(),
		"SELECT ligand_id FROM ligands WHERE TANIMOTO(smiles, 'CCO') >= 0")
	for _, r := range res.Rows {
		if r[0].S == "BAD" {
			t.Fatal("unparseable SMILES passed the threshold")
		}
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
}

func TestTanimotoNaiveOptimizedAgree(t *testing.T) {
	cat := tanimotoCatalog(t)
	q := "SELECT ligand_id FROM ligands WHERE TANIMOTO(smiles, 'CCCO') > 0.3"
	naive := runQ(t, cat, NaiveOptions(), q)
	opt := runQ(t, cat, DefaultOptions(), q)
	if !sameRowMultiset(naive.Rows, opt.Rows) {
		t.Fatalf("engines disagree: %d vs %d rows", len(naive.Rows), len(opt.Rows))
	}
}
