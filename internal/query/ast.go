package query

import (
	"fmt"
	"strings"

	"drugtree/internal/store"
)

// Expr is a DTQL expression tree node.
type Expr interface {
	String() string
}

// ColumnRef names a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string // "" when unqualified
	Name      string
}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct {
	Val store.Value
}

func (l *Literal) String() string { return l.Val.String() }

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpLike
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLike: "LIKE",
}

func (op BinOp) String() string { return binOpNames[op] }

// Comparison reports whether the operator is a comparison producing a
// boolean from two scalars.
func (op BinOp) Comparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return true
	}
	return false
}

// BinaryExpr applies op to two operands.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr is logical negation.
type NotExpr struct {
	E Expr
}

func (n *NotExpr) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// NegExpr is arithmetic negation.
type NegExpr struct {
	E Expr
}

func (n *NegExpr) String() string { return fmt.Sprintf("(-%s)", n.E) }

// SubtreeExpr is the tree-aware predicate
// WITHIN_SUBTREE(column, 'nodeName'): true when the tree node whose
// preorder number is in the given column lies inside the subtree
// rooted at the named node. The optimizer rewrites it to a preorder
// range; unrewritten evaluation resolves it against the catalog tree.
type SubtreeExpr struct {
	Column *ColumnRef // column holding a preorder number
	Node   string     // name of the subtree root (leaf or internal)
}

func (s *SubtreeExpr) String() string {
	return fmt.Sprintf("WITHIN_SUBTREE(%s, '%s')", s.Column, s.Node)
}

// AncestorExpr is the ancestor-axis predicate
// ANCESTOR_OF(column, 'nodeName'): true when the tree node whose
// preorder number is in the given column lies on the path from the
// root to the named node (inclusive). It serves breadcrumb and
// path-context queries; the optimizer rewrites it to the explicit
// preorder list of the (short) root path.
type AncestorExpr struct {
	Column *ColumnRef
	Node   string
}

func (a *AncestorExpr) String() string {
	return fmt.Sprintf("ANCESTOR_OF(%s, '%s')", a.Column, a.Node)
}

// TanimotoExpr is the chemical-similarity scalar
// TANIMOTO(column, 'SMILES'): the Tanimoto coefficient (FLOAT in
// [0,1]) between the fingerprint of the SMILES string in the column
// and the fingerprint of the literal. Rows whose column does not
// parse as SMILES score NULL.
type TanimotoExpr struct {
	Column *ColumnRef
	SMILES string
}

func (t *TanimotoExpr) String() string {
	return fmt.Sprintf("TANIMOTO(%s, '%s')", t.Column, t.SMILES)
}

// SubqueryExpr is an uncorrelated scalar subquery: it must produce
// one column, and at most one row (zero rows yield NULL). It executes
// once, when the enclosing expression is bound.
type SubqueryExpr struct {
	Stmt *SelectStmt
}

func (s *SubqueryExpr) String() string { return "(" + s.Stmt.String() + ")" }

// InSubqueryExpr is `needle IN (SELECT single-column ...)` with
// uncorrelated subquery semantics: the subquery materializes to a set
// once at bind time.
type InSubqueryExpr struct {
	Needle Expr
	Stmt   *SelectStmt
}

func (s *InSubqueryExpr) String() string {
	return fmt.Sprintf("(%s IN (%s))", s.Needle, s.Stmt)
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggFunc]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

func (f AggFunc) String() string { return aggNames[f] }

// AggExpr is an aggregate call. Star is COUNT(*); Distinct is
// COUNT(DISTINCT expr).
type AggExpr struct {
	Func     AggFunc
	Arg      Expr // nil when Star
	Star     bool
	Distinct bool
}

func (a *AggExpr) String() string {
	if a.Star {
		return "COUNT(*)"
	}
	if a.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", a.Func, a.Arg)
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// SelectItem is one output column: an expression with an optional
// alias. A bare `*` select is represented by Star.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// TableRef names a FROM/JOIN table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveAlias returns the alias, defaulting to the table name.
func (t TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON ... element.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY element.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed DTQL query.
type SelectStmt struct {
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: execute the query and render the
	// plan with per-operator runtime counters. Only meaningful when
	// Explain is set.
	Analyze bool
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Expr // nil when absent
	GroupBy []Expr
	Having  Expr // nil when absent
	Order   []OrderKey
	Limit   int // -1 when absent
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	if s.Explain {
		b.WriteString("EXPLAIN ")
		if s.Analyze {
			b.WriteString("ANALYZE ")
		}
	}
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	fmt.Fprintf(&b, " FROM %s", s.From.Name)
	if s.From.Alias != "" {
		fmt.Fprintf(&b, " %s", s.From.Alias)
	}
	for _, j := range s.Joins {
		fmt.Fprintf(&b, " JOIN %s", j.Table.Name)
		if j.Table.Alias != "" {
			fmt.Fprintf(&b, " %s", j.Table.Alias)
		}
		fmt.Fprintf(&b, " ON %s", j.On)
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		fmt.Fprintf(&b, " HAVING %s", s.Having)
	}
	if len(s.Order) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.Order {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// walkExpr visits e and all sub-expressions depth-first.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *NotExpr:
		walkExpr(x.E, fn)
	case *NegExpr:
		walkExpr(x.E, fn)
	case *AggExpr:
		walkExpr(x.Arg, fn)
	case *SubtreeExpr:
		walkExpr(x.Column, fn)
	case *AncestorExpr:
		walkExpr(x.Column, fn)
	case *TanimotoExpr:
		walkExpr(x.Column, fn)
	case *InSubqueryExpr:
		// Only the needle references the outer scope; the subquery is
		// a closed scope of its own.
		walkExpr(x.Needle, fn)
	}
}

// containsAgg reports whether e contains an aggregate call.
func containsAgg(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*AggExpr); ok {
			found = true
		}
	})
	return found
}
