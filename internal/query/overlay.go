package query

import "drugtree/internal/store"

// Subtree-overlay aggregate reads. A SubtreeOverlay maintains, for one
// table, precomputed per-tree-node aggregates of a metric column over
// every row whose key column names a node inside that subtree (the hot
// "ligand activity per clade" shape). The maintainer updates the
// overlay incrementally from the store's commit-event stream — O(chan-
// ged rows × tree depth) per commit — and versions it with the table's
// commit version, so the optimizer can substitute an O(1) overlay read
// for a scan-and-aggregate exactly when the overlay matches the
// statement's pinned snapshot.

// OverlayAgg is one node's precomputed aggregate state.
type OverlayAgg struct {
	// Rows counts rows in the subtree (COUNT(*)).
	Rows int64
	// Count counts rows whose metric is non-NULL (COUNT(metric)).
	Count int64
	// Sum is the exact sum of the metric over those rows (SUM(metric));
	// AVG(metric) is Sum/Count.
	Sum float64
}

// SubtreeOverlay serves precomputed subtree aggregates. Read must be
// safe for concurrent use.
type SubtreeOverlay interface {
	// Table names the base table the overlay covers.
	Table() string
	// KeyColumn names the string column holding tree-node names.
	KeyColumn() string
	// MetricColumn names the numeric column the overlay sums.
	MetricColumn() string
	// Read returns the aggregate for the named node as of exactly the
	// given table commit version. ok is false when the node is unknown
	// or the overlay's version differs from the requested one (the
	// caller then falls back to scanning its snapshot).
	Read(node string, version int64) (OverlayAgg, bool)
}

// OverlayCatalog is implemented by catalogs that can serve a subtree
// overlay (DBCatalog does, when one is wired).
type OverlayCatalog interface {
	Overlay() SubtreeOverlay
}

// tryOverlayRead recognizes the overlay-answerable aggregate shape —
// a global (no GROUP BY) aggregate over a scan of the overlay's table
// whose only predicate is one WITHIN_SUBTREE conjunct on the key
// column, with every aggregate function derivable from (Rows, Count,
// Sum) — and answers it from the overlay without touching a row. The
// rewrite fires only when the statement holds a pinned snapshot and
// the overlay is synchronized at exactly the pinned version, so an
// overlay read can never mix versions with the statement's other
// scans. EXPLAIN renders the leaf as "OverlayRead table@node
// [version=V rows=N]".
// isIdentityProject reports whether every projected expression is a
// bare column reference carrying its own name — a row-preserving,
// rename-free pruning projection.
func isIdentityProject(p *ProjectNode) bool {
	for i, e := range p.Exprs {
		col, ok := e.(*ColumnRef)
		if !ok || col.Name != p.Names[i] {
			return false
		}
	}
	return true
}

func tryOverlayRead(n *AggNode, ec *execCtx, depth int) (iterator, bool) {
	if !ec.opts.UseIndexes || ec.snap == nil || len(n.GroupBy) != 0 || len(n.Aggs) == 0 {
		return nil, false
	}
	oc, ok := ec.cat.(OverlayCatalog)
	if !ok {
		return nil, false
	}
	ov := oc.Overlay()
	if ov == nil {
		return nil, false
	}
	in := n.Input
	// Column pruning inserts a pure pass-through projection between the
	// aggregate and the scan; it neither filters nor renames (each
	// output is a bare column keeping its own name), so the rewrite
	// looks through it.
	if pj, ok := in.(*ProjectNode); ok && isIdentityProject(pj) {
		in = pj.Input
	}
	scan, ok := in.(*ScanNode)
	if !ok || scan.Table != ov.Table() || len(scan.Conjuncts) != 1 {
		return nil, false
	}
	sub, ok := scan.Conjuncts[0].(*SubtreeExpr)
	if !ok || sub.Column.Name != ov.KeyColumn() {
		return nil, false
	}
	if sub.Column.Qualifier != "" && sub.Column.Qualifier != scan.Alias {
		return nil, false
	}
	metric := ov.MetricColumn()
	for _, a := range n.Aggs {
		if a.Distinct {
			return nil, false
		}
		if a.Star {
			if a.Func != AggCount {
				return nil, false
			}
			continue
		}
		switch a.Func {
		case AggCount, AggSum, AggAvg:
		default:
			return nil, false // MIN/MAX are not derivable from sums
		}
		col, ok := a.Arg.(*ColumnRef)
		if !ok || col.Name != metric {
			return nil, false
		}
		if col.Qualifier != "" && col.Qualifier != scan.Alias {
			return nil, false
		}
	}
	ver, ok := ec.snap.Version(scan.Table)
	if !ok {
		return nil, false
	}
	agg, ok := ov.Read(sub.Node, ver)
	if !ok {
		return nil, false // overlay out of sync with the snapshot
	}
	op := ec.note(depth, "OverlayRead %s@%s [version=%d rows=%d]", scan.Table, sub.Node, ver, agg.Rows)
	row := make(store.Row, len(n.Aggs))
	for i, a := range n.Aggs {
		switch {
		case a.Star:
			row[i] = store.IntValue(agg.Rows)
		case a.Func == AggCount:
			row[i] = store.IntValue(agg.Count)
		case agg.Count == 0:
			// SUM and AVG over zero non-NULL inputs are NULL — the same
			// aggState semantics the scan path produces.
			row[i] = store.NullValue()
		case a.Func == AggSum:
			row[i] = store.FloatValue(agg.Sum)
		default: // AggAvg
			row[i] = store.FloatValue(agg.Sum / float64(agg.Count))
		}
	}
	return &sliceIter{rows: []store.Row{row}, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, true
}
