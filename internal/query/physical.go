package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"drugtree/internal/store"
)

// iterator is the Volcano operator interface. Next returns the next
// row, a validity flag (false at end of stream), and any error.
type iterator interface {
	Next() (store.Row, bool, error)
}

// ExecStats counts work done by one execution, used by experiments to
// show *why* the optimized engine is faster. Counters are updated with
// atomic adds so parallel workers can share one ExecStats; read them
// only after the query returns (all workers are joined by then).
type ExecStats struct {
	RowsScanned  int64 // rows read from base tables
	RowsIndexed  int64 // rows fetched through an index
	RowsJoined   int64 // rows emitted by join operators
	RowsReturned int64
	// Ops holds per-operator counters, one entry per Result.Plan line
	// in the same order. They are filled while rows stream out and
	// rendered by EXPLAIN ANALYZE (Result.AnnotatedPlan).
	Ops []*OpStats
}

// Snapshot returns a consistent copy of the counters using atomic
// loads. A plain struct copy (*s) would race with parallel workers
// still doing atomic adds; every read of a live ExecStats goes
// through here.
func (s *ExecStats) Snapshot() ExecStats {
	return ExecStats{
		RowsScanned:  atomic.LoadInt64(&s.RowsScanned),
		RowsIndexed:  atomic.LoadInt64(&s.RowsIndexed),
		RowsJoined:   atomic.LoadInt64(&s.RowsJoined),
		RowsReturned: atomic.LoadInt64(&s.RowsReturned),
		Ops:          s.Ops,
	}
}

// OpStats counts one physical operator's work: rows in (where the
// operator tracks it), rows out, and — for vectorized operators —
// batches out. Counters are written only from the single-threaded
// streaming driver (parallel workers hand their output to a streaming
// operator first), so plain increments suffice.
type OpStats struct {
	Name    string // operator description (the plan line, unindented)
	RowsIn  int64  // rows entering the operator; 0 when untracked
	RowsOut int64  // rows emitted
	Batches int64  // batches emitted (vectorized execution only)
}

// addIn records rows entering the operator.
func (o *OpStats) addIn(n int64) {
	if o != nil {
		o.RowsIn += n
	}
}

// addOut records emitted rows.
func (o *OpStats) addOut(n int64) {
	if o != nil {
		o.RowsOut += n
	}
}

// emit records one emitted batch and its live rows.
func (o *OpStats) emit(b *batch) {
	if o != nil {
		o.Batches++
		o.RowsOut += int64(b.live())
	}
}

// selectivity returns RowsOut/RowsIn, or -1 when input is untracked.
func (o *OpStats) selectivity() float64 {
	if o == nil || o.RowsIn == 0 {
		return -1
	}
	return float64(o.RowsOut) / float64(o.RowsIn)
}

// execCtx threads shared execution state through operator builders.
type execCtx struct {
	ctx   context.Context
	cat   Catalog
	snap  *store.SnapshotHandle // pinned statement snapshot; nil reads latest
	opts  Options
	stats *ExecStats
	plan  []string // physical plan description lines (depth-first)
	para  int      // effective worker count (≥1); 1 is the serial path
}

// env builds a binding environment carrying the execution context (so
// uncorrelated subqueries run under the same cancellation scope and
// read the same pinned snapshot).
func (c *execCtx) env(schema *planSchema) bindEnv {
	return bindEnv{ctx: c.ctx, schema: schema, cat: c.cat, snap: c.snap, tree: c.cat.Tree(), opts: c.opts}
}

// view returns the statement's read view of a table: the pinned
// snapshot's frozen version when one is held, the live latest-version
// table otherwise. Tables created after the pin also fall back to the
// live table (the snapshot cannot cover them).
func (c *execCtx) view(name string) (*store.TableView, error) {
	if c.snap != nil {
		if tv, err := c.snap.View(name); err == nil {
			return tv, nil
		}
	}
	t, err := c.cat.Table(name)
	if err != nil {
		return nil, err
	}
	return t.LatestView(), nil
}

// note appends a plan line and allocates its per-operator counter
// slot (plan lines and ExecStats.Ops stay 1:1 so EXPLAIN ANALYZE can
// zip them back together).
func (c *execCtx) note(depth int, format string, args ...any) *OpStats {
	line := fmt.Sprintf(format, args...)
	c.plan = append(c.plan, strings.Repeat("  ", depth)+line)
	op := &OpStats{Name: line}
	c.stats.Ops = append(c.stats.Ops, op)
	return op
}

// buildIterator lowers a logical plan node to a physical operator.
func buildIterator(p LogicalPlan, ec *execCtx, depth int) (iterator, error) {
	switch n := p.(type) {
	case *ScanNode:
		return buildScan(n, ec, depth)
	case *FilterNode:
		pred, err := bind(n.Pred, ec.env(n.Input.Schema()))
		if err != nil {
			return nil, err
		}
		op := ec.note(depth, "Filter %s", n.Pred)
		in, err := buildIterator(n.Input, ec, depth+1)
		if err != nil {
			return nil, err
		}
		return &filterIter{in: in, pred: pred, cancel: canceller{ctx: ec.ctx}, op: op}, nil
	case *ProjectNode:
		op := ec.note(depth, "%s", n.describe())
		exprs := make([]*boundExpr, len(n.Exprs))
		for i, e := range n.Exprs {
			be, err := bind(e, ec.env(n.Input.Schema()))
			if err != nil {
				return nil, err
			}
			exprs[i] = be
		}
		in, err := buildIterator(n.Input, ec, depth+1)
		if err != nil {
			return nil, err
		}
		return &projectIter{in: in, exprs: exprs, op: op}, nil
	case *JoinNode:
		return buildJoin(n, ec, depth)
	case *AggNode:
		return buildAgg(n, ec, depth)
	case *SortNode:
		keys := make([]*boundExpr, len(n.Keys))
		descs := make([]bool, len(n.Keys))
		for i, k := range n.Keys {
			be, err := bind(k.Expr, ec.env(n.Input.Schema()))
			if err != nil {
				return nil, err
			}
			keys[i] = be
			descs[i] = k.Desc
		}
		op := ec.note(depth, "%s", n.describe())
		in, err := buildIterator(n.Input, ec, depth+1)
		if err != nil {
			return nil, err
		}
		return &sortIter{in: in, keys: keys, descs: descs, cancel: canceller{ctx: ec.ctx}, op: op}, nil
	case *LimitNode:
		// ORDER BY + LIMIT fuses into a bounded-heap top-k when the
		// optimizer is allowed to choose physical operators. The sort
		// may sit directly below the limit, or below a projection
		// (the hidden-sort-column shape): Limit(Project(Sort)) runs
		// as Project(TopK) — projection preserves order and count.
		if proj, ok := n.Input.(*ProjectNode); ok && ec.opts.UseIndexes && n.N > 0 {
			if sortNode, ok := proj.Input.(*SortNode); ok {
				inner := &LimitNode{Input: sortNode, N: n.N}
				outer := *proj
				outer.Input = inner
				return buildIterator(&outer, ec, depth)
			}
		}
		if sortNode, ok := n.Input.(*SortNode); ok && ec.opts.UseIndexes && n.N > 0 {
			keys := make([]*boundExpr, len(sortNode.Keys))
			descs := make([]bool, len(sortNode.Keys))
			for i, k := range sortNode.Keys {
				be, err := bind(k.Expr, ec.env(sortNode.Input.Schema()))
				if err != nil {
					return nil, err
				}
				keys[i] = be
				descs[i] = k.Desc
			}
			op := ec.note(depth, "TopK %d (%s)", n.N, sortNode.describe())
			in, err := buildIterator(sortNode.Input, ec, depth+1)
			if err != nil {
				return nil, err
			}
			return &topKIter{in: in, keys: keys, descs: descs, k: n.N, cancel: canceller{ctx: ec.ctx}, op: op}, nil
		}
		op := ec.note(depth, "Limit %d", n.N)
		in, err := buildIterator(n.Input, ec, depth+1)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, n: n.N, op: op}, nil
	}
	return nil, fmt.Errorf("query: cannot execute %T", p)
}

// --- Scans ---

// accessPath describes the chosen way into a table.
type accessPath struct {
	kind   string // "seqscan", "indexeq", "indexrange"
	column string
	eq     store.Value
	lo, hi *store.Value
	loOpen bool // lo bound is exclusive (>)
	hiOpen bool // hi bound is exclusive (<)
	// residual predicates evaluated per row.
	residual []Expr
}

// chooseAccessPath inspects pushed conjuncts and the table's indexes.
func chooseAccessPath(n *ScanNode, t *store.Table, useIndexes bool) accessPath {
	path := accessPath{kind: "seqscan", residual: n.Conjuncts}
	if !useIndexes {
		return path
	}
	// Equality on an indexed column wins.
	for i, c := range n.Conjuncts {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != OpEq {
			continue
		}
		col, lit := extractColLit(b)
		if col == nil || lit == nil {
			continue
		}
		if _, indexed := t.HasIndex(col.Name); !indexed {
			continue
		}
		res := make([]Expr, 0, len(n.Conjuncts)-1)
		res = append(res, n.Conjuncts[:i]...)
		res = append(res, n.Conjuncts[i+1:]...)
		return accessPath{kind: "indexeq", column: col.Name, eq: lit.Val, residual: res}
	}
	// Range bounds on one B+-tree-indexed column.
	type bound struct {
		v    store.Value
		open bool
	}
	los := map[string]bound{}
	his := map[string]bound{}
	usable := map[string][]int{}
	for i, c := range n.Conjuncts {
		b, ok := c.(*BinaryExpr)
		if !ok {
			continue
		}
		col, lit := extractColLit(b)
		if col == nil || lit == nil {
			continue
		}
		if typ, indexed := t.HasIndex(col.Name); !indexed || typ != store.IndexBTree {
			continue
		}
		// Normalize to col OP lit orientation.
		op := b.Op
		if _, isCol := b.R.(*ColumnRef); isCol {
			// lit OP col → flip.
			switch op {
			case OpLt:
				op = OpGt
			case OpLe:
				op = OpGe
			case OpGt:
				op = OpLt
			case OpGe:
				op = OpLe
			}
		}
		switch op {
		case OpGe:
			if cur, ok := los[col.Name]; !ok || store.Compare(lit.Val, cur.v) > 0 {
				los[col.Name] = bound{lit.Val, false}
			}
			usable[col.Name] = append(usable[col.Name], i)
		case OpGt:
			if cur, ok := los[col.Name]; !ok || store.Compare(lit.Val, cur.v) >= 0 {
				los[col.Name] = bound{lit.Val, true}
			}
			usable[col.Name] = append(usable[col.Name], i)
		case OpLe:
			if cur, ok := his[col.Name]; !ok || store.Compare(lit.Val, cur.v) < 0 {
				his[col.Name] = bound{lit.Val, false}
			}
			usable[col.Name] = append(usable[col.Name], i)
		case OpLt:
			if cur, ok := his[col.Name]; !ok || store.Compare(lit.Val, cur.v) <= 0 {
				his[col.Name] = bound{lit.Val, true}
			}
			usable[col.Name] = append(usable[col.Name], i)
		}
	}
	// Pick the column with both bounds if any, else any bounded one.
	bestCol := ""
	for col := range usable {
		_, hasLo := los[col]
		_, hasHi := his[col]
		if hasLo && hasHi {
			bestCol = col
			break
		}
		if bestCol == "" {
			bestCol = col
		}
	}
	if bestCol == "" {
		return path
	}
	out := accessPath{kind: "indexrange", column: bestCol}
	if b, ok := los[bestCol]; ok {
		v := b.v
		out.lo = &v
		out.loOpen = b.open
	}
	if b, ok := his[bestCol]; ok {
		v := b.v
		out.hi = &v
		out.hiOpen = b.open
	}
	used := map[int]bool{}
	for _, i := range usable[bestCol] {
		used[i] = true
	}
	for i, c := range n.Conjuncts {
		if !used[i] {
			out.residual = append(out.residual, c)
		}
	}
	// Exclusive bounds are re-checked as residuals (the index range
	// is inclusive).
	if out.loOpen || out.hiOpen {
		for _, i := range usable[bestCol] {
			out.residual = append(out.residual, n.Conjuncts[i])
		}
	}
	return out
}

func buildScan(n *ScanNode, ec *execCtx, depth int) (iterator, error) {
	tv, err := ec.view(n.Table)
	if err != nil {
		return nil, err
	}
	path := chooseAccessPath(n, tv.Table(), ec.opts.UseIndexes)
	var residual *boundExpr
	if len(path.residual) > 0 {
		be, err := bind(joinConjuncts(path.residual), ec.env(n.schema))
		if err != nil {
			return nil, err
		}
		residual = be
	}
	switch path.kind {
	case "indexeq":
		op := ec.note(depth, "IndexScan %s (%s = %v)%s", n.Table, path.column, path.eq, residualNote(path))
		ids, err := tv.LookupEqual(path.column, path.eq)
		if err != nil {
			return nil, err
		}
		rows := tv.Rows(ids)
		atomic.AddInt64(&ec.stats.RowsIndexed, int64(len(rows)))
		op.addIn(int64(len(rows)))
		return &sliceIter{rows: rows, residual: residual, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, nil
	case "indexrange":
		op := ec.note(depth, "IndexRangeScan %s (%s in [%s, %s])%s", n.Table, path.column,
			boundStr(path.lo), boundStr(path.hi), residualNote(path))
		ids, err := tv.LookupRange(path.column, path.lo, path.hi)
		if err != nil {
			return nil, err
		}
		rows := tv.Rows(ids)
		atomic.AddInt64(&ec.stats.RowsIndexed, int64(len(rows)))
		op.addIn(int64(len(rows)))
		return &sliceIter{rows: rows, residual: residual, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, nil
	default:
		op := ec.note(depth, "SeqScan %s%s", n.Table, residualNote(path))
		if ec.para > 1 {
			// Morsel-driven scan: snapshot row references (the store
			// never mutates a stored row in place, so shared reads are
			// safe), then clone+filter the morsels on the worker pool.
			refs := tv.Snapshot()
			atomic.AddInt64(&ec.stats.RowsScanned, int64(len(refs)))
			op.addIn(int64(len(refs)))
			rows, err := parallelFilter(ec.ctx, refs, residual, ec.para)
			if err != nil {
				return nil, err
			}
			return &sliceIter{rows: rows, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, nil
		}
		var rows []store.Row
		cancel := canceller{ctx: ec.ctx}
		var scanErr error
		tv.Scan(func(_ int64, r store.Row) bool {
			if scanErr = cancel.check(); scanErr != nil {
				return false
			}
			rows = append(rows, r.Clone())
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
		atomic.AddInt64(&ec.stats.RowsScanned, int64(len(rows)))
		op.addIn(int64(len(rows)))
		return &sliceIter{rows: rows, residual: residual, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, nil
	}
}

func residualNote(p accessPath) string {
	if len(p.residual) == 0 {
		return ""
	}
	parts := make([]string, len(p.residual))
	for i, c := range p.residual {
		parts[i] = c.String()
	}
	return " filter: " + strings.Join(parts, " AND ")
}

func boundStr(v *store.Value) string {
	if v == nil {
		return "∞"
	}
	return v.String()
}

// sliceIter iterates a materialized row slice with an optional
// residual predicate.
type sliceIter struct {
	rows     []store.Row
	pos      int
	residual *boundExpr
	stats    *ExecStats
	cancel   canceller
	op       *OpStats
}

func (s *sliceIter) Next() (store.Row, bool, error) {
	for s.pos < len(s.rows) {
		if err := s.cancel.check(); err != nil {
			return nil, false, err
		}
		r := s.rows[s.pos]
		s.pos++
		if s.residual != nil {
			ok, err := s.residual.evalBool(r)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		s.op.addOut(1)
		return r, true, nil
	}
	return nil, false, nil
}

// --- Filter / Project ---

type filterIter struct {
	in     iterator
	pred   *boundExpr
	cancel canceller
	op     *OpStats
}

func (f *filterIter) Next() (store.Row, bool, error) {
	for {
		if err := f.cancel.check(); err != nil {
			return nil, false, err
		}
		r, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.op.addIn(1)
		match, err := f.pred.evalBool(r)
		if err != nil {
			return nil, false, err
		}
		if match {
			f.op.addOut(1)
			return r, true, nil
		}
	}
}

type projectIter struct {
	in    iterator
	exprs []*boundExpr
	op    *OpStats
}

func (p *projectIter) Next() (store.Row, bool, error) {
	r, ok, err := p.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(store.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.eval(r)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	p.op.addOut(1)
	return out, true, nil
}

// --- Joins ---

// buildJoin picks hash join for equi-conditions, nested loop
// otherwise.
func buildJoin(n *JoinNode, ec *execCtx, depth int) (iterator, error) {
	leftSchema, rightSchema := n.Left.Schema(), n.Right.Schema()
	conjs := splitConjuncts(n.Cond)
	var leftKeys, rightKeys []*boundExpr
	var residual []Expr
	for _, c := range conjs {
		if b, ok := c.(*BinaryExpr); ok && b.Op == OpEq {
			lcol, lOK := b.L.(*ColumnRef)
			rcol, rOK := b.R.(*ColumnRef)
			if lOK && rOK {
				// Which side does each belong to?
				if _, err := leftSchema.resolve(lcol); err == nil {
					if _, err := rightSchema.resolve(rcol); err == nil {
						lk, _ := bind(lcol, ec.env(leftSchema))
						rk, _ := bind(rcol, ec.env(rightSchema))
						leftKeys = append(leftKeys, lk)
						rightKeys = append(rightKeys, rk)
						continue
					}
				}
				if _, err := leftSchema.resolve(rcol); err == nil {
					if _, err := rightSchema.resolve(lcol); err == nil {
						lk, _ := bind(rcol, ec.env(leftSchema))
						rk, _ := bind(lcol, ec.env(rightSchema))
						leftKeys = append(leftKeys, lk)
						rightKeys = append(rightKeys, rk)
						continue
					}
				}
			}
		}
		if lit, ok := c.(*Literal); ok && lit.Val.K == store.KindBool && lit.Val.Bool() {
			continue // constant TRUE from pushdown
		}
		residual = append(residual, c)
	}
	var residualBound *boundExpr
	if len(residual) > 0 {
		be, err := bind(joinConjuncts(residual), ec.env(n.schema))
		if err != nil {
			return nil, err
		}
		residualBound = be
	}
	// Index merge join: both sides are scans whose join columns carry
	// B+-tree indexes and neither side has a better access path.
	if ls, rs, lcol, rcol, ok := mergeJoinable(n, leftKeys, rightKeys, ec); ok {
		lt, _ := ec.cat.Table(ls.Table)
		rt, _ := ec.cat.Table(rs.Table)
		if chooseAccessPath(ls, lt, true).kind == "seqscan" &&
			chooseAccessPath(rs, rt, true).kind == "seqscan" {
			op := ec.note(depth, "MergeJoin (%s = %s)%s", lcol, rcol, joinResidualNote(residual))
			li, lkIdx, err := buildOrderedScan(ls, lcol, ec, depth+1)
			if err != nil {
				return nil, err
			}
			ri, rkIdx, err := buildOrderedScan(rs, rcol, ec, depth+1)
			if err != nil {
				return nil, err
			}
			return newMergeJoin(li, ri, lkIdx, rkIdx, residualBound, ec, op)
		}
	}
	var op *OpStats
	if len(leftKeys) > 0 {
		op = ec.note(depth, "HashJoin (%d key(s))%s", len(leftKeys), joinResidualNote(residual))
	} else {
		op = ec.note(depth, "NestedLoopJoin%s", joinResidualNote(residual))
	}
	left, err := buildIterator(n.Left, ec, depth+1)
	if err != nil {
		return nil, err
	}
	right, err := buildIterator(n.Right, ec, depth+1)
	if err != nil {
		return nil, err
	}
	if len(leftKeys) > 0 {
		if ec.para > 1 {
			return newParallelHashJoin(ec, left, right, leftKeys, rightKeys, residualBound, op)
		}
		return newHashJoin(left, right, leftKeys, rightKeys, residualBound, ec, op)
	}
	return newNestedLoopJoin(left, right, residualBound, ec, op)
}

func joinResidualNote(res []Expr) string {
	if len(res) == 0 {
		return ""
	}
	parts := make([]string, len(res))
	for i, c := range res {
		parts[i] = c.String()
	}
	return " residual: " + strings.Join(parts, " AND ")
}

// hashJoin builds a hash table on the right input and probes with the
// left, emitting left⧺right rows.
type hashJoin struct {
	left      iterator
	leftKeys  []*boundExpr
	table     map[uint64][]store.Row
	rightRows [][]store.Row // current match list
	cur       store.Row     // current left row
	matchPos  int
	matches   []store.Row
	residual  *boundExpr
	stats     *ExecStats
	cancel    canceller
	op        *OpStats
}

func hashKeys(keys []*boundExpr, r store.Row) (uint64, bool, error) {
	var h uint64 = 14695981039346656037
	for _, k := range keys {
		v, err := k.eval(r)
		if err != nil {
			return 0, false, err
		}
		if v.IsNull() {
			return 0, false, nil // NULL keys never join
		}
		h = h*1099511628211 ^ v.Hash()
	}
	return h, true, nil
}

func newHashJoin(left, right iterator, leftKeys, rightKeys []*boundExpr, residual *boundExpr, ec *execCtx, op *OpStats) (iterator, error) {
	table := make(map[uint64][]store.Row)
	cancel := canceller{ctx: ec.ctx}
	for {
		if err := cancel.check(); err != nil {
			return nil, err
		}
		r, ok, err := right.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		h, valid, err := hashKeys(rightKeys, r)
		if err != nil {
			return nil, err
		}
		if valid {
			table[h] = append(table[h], r)
		}
	}
	return &hashJoin{left: left, leftKeys: leftKeys, table: table, residual: residual, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, nil
}

func (j *hashJoin) Next() (store.Row, bool, error) {
	for {
		if err := j.cancel.check(); err != nil {
			return nil, false, err
		}
		for j.matchPos < len(j.matches) {
			right := j.matches[j.matchPos]
			j.matchPos++
			out := make(store.Row, 0, len(j.cur)+len(right))
			out = append(out, j.cur...)
			out = append(out, right...)
			if j.residual != nil {
				ok, err := j.residual.evalBool(out)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			atomic.AddInt64(&j.stats.RowsJoined, 1)
			j.op.addOut(1)
			return out, true, nil
		}
		l, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.op.addIn(1)
		h, valid, err := hashKeys(j.leftKeys, l)
		if err != nil {
			return nil, false, err
		}
		if !valid {
			continue
		}
		j.cur = l
		j.matches = j.table[h]
		j.matchPos = 0
	}
}

// nestedLoopJoin materializes the right side and loops.
type nestedLoopJoin struct {
	left     iterator
	rights   []store.Row
	cur      store.Row
	pos      int
	started  bool
	residual *boundExpr
	stats    *ExecStats
	cancel   canceller
	op       *OpStats
}

func newNestedLoopJoin(left, right iterator, residual *boundExpr, ec *execCtx, op *OpStats) (iterator, error) {
	rights, err := drainAll(ec.ctx, right)
	if err != nil {
		return nil, err
	}
	return &nestedLoopJoin{left: left, rights: rights, residual: residual, stats: ec.stats, cancel: canceller{ctx: ec.ctx}, op: op}, nil
}

func (j *nestedLoopJoin) Next() (store.Row, bool, error) {
	for {
		if err := j.cancel.check(); err != nil {
			return nil, false, err
		}
		if !j.started || j.pos >= len(j.rights) {
			l, ok, err := j.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.op.addIn(1)
			j.cur = l
			j.pos = 0
			j.started = true
		}
		for j.pos < len(j.rights) {
			right := j.rights[j.pos]
			j.pos++
			out := make(store.Row, 0, len(j.cur)+len(right))
			out = append(out, j.cur...)
			out = append(out, right...)
			if j.residual != nil {
				ok, err := j.residual.evalBool(out)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			atomic.AddInt64(&j.stats.RowsJoined, 1)
			j.op.addOut(1)
			return out, true, nil
		}
	}
}

// --- Sort / Limit ---

type sortIter struct {
	in     iterator
	keys   []*boundExpr
	descs  []bool
	cancel canceller
	rows   []store.Row
	sorted bool
	pos    int
	op     *OpStats
}

func (s *sortIter) Next() (store.Row, bool, error) {
	if !s.sorted {
		type keyed struct {
			row  store.Row
			keys []store.Value
		}
		var all []keyed
		for {
			if err := s.cancel.check(); err != nil {
				return nil, false, err
			}
			r, ok, err := s.in.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			ks := make([]store.Value, len(s.keys))
			for i, k := range s.keys {
				v, err := k.eval(r)
				if err != nil {
					return nil, false, err
				}
				ks[i] = v
			}
			all = append(all, keyed{r, ks})
		}
		sort.SliceStable(all, func(i, j int) bool {
			for k := range s.keys {
				c := store.Compare(all[i].keys[k], all[j].keys[k])
				if c == 0 {
					continue
				}
				if s.descs[k] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		s.rows = make([]store.Row, len(all))
		for i, kr := range all {
			s.rows[i] = kr.row
		}
		s.sorted = true
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	s.op.addOut(1)
	return r, true, nil
}

type limitIter struct {
	in   iterator
	n    int
	seen int
	op   *OpStats
}

func (l *limitIter) Next() (store.Row, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	r, ok, err := l.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	l.op.addOut(1)
	return r, true, nil
}
