package query

import (
	"context"
	"testing"
)

// Row-vs-vectorized engine benchmarks at the query layer. Each shape
// runs both engines over the same catalog so the ratio isolates the
// iteration model; the scan/filter shapes are the ones the vectorized
// engine is expected to win (see experiments T10), the point lookup is
// the parity check.

func benchEngines() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"row", rowOptions(serialOptions())},
		{"vec", serialOptions()},
	}
}

func benchBothEngines(b *testing.B, q string) {
	cat := datagenCatalog(b, 5)
	for _, tc := range benchEngines() {
		b.Run(tc.name, func(b *testing.B) {
			eng := NewEngine(cat, tc.opts)
			if _, err := eng.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVecPointLookup(b *testing.B) {
	benchBothEngines(b, "SELECT * FROM proteins WHERE accession = 'DT00007'")
}

func BenchmarkVecScanFilter(b *testing.B) {
	// Arithmetic left-hand side keeps the conjunct out of the index
	// access path: both engines run the full sequential scan.
	benchBothEngines(b, "SELECT protein_id, affinity FROM activities WHERE affinity * 2.0 > 18.0")
}

func BenchmarkVecLikeFilter(b *testing.B) {
	benchBothEngines(b, "SELECT protein_id, ligand_id FROM activities WHERE ligand_id LIKE 'LIG001%'")
}

func BenchmarkVecHashJoin(b *testing.B) {
	benchBothEngines(b, `SELECT p.accession, a.affinity FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		WHERE a.affinity * 2.0 > 18.0`)
}

func BenchmarkVecAggregate(b *testing.B) {
	benchBothEngines(b, "SELECT protein_id, COUNT(*), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities GROUP BY protein_id")
}
