package query

import (
	"context"
	"sync"
	"sync/atomic"

	"drugtree/internal/store"
)

// Morsel-driven parallelism: operators that have to materialize their
// input anyway (seq scans with residuals, hash-join build/probe,
// aggregation) split the materialized rows into fixed-size morsels and
// hand them to a bounded worker pool. Workers write into per-morsel
// output slots, so concatenating the slots in morsel order reproduces
// the serial operator's row sequence exactly — parallel execution is
// observationally identical to Parallelism: 1, which is what the
// differential harness asserts.
//
// Cancellation: every worker and every serial drain loop polls its
// context through a canceller at morsel (or every cancelCheckRows
// rows) granularity, so a context cancelled mid-scan or mid-join
// unwinds promptly with ctx.Err() and no goroutine outlives its
// operator — workers are always joined before the operator returns.

// morselSize is the number of rows one worker claims at a time. Large
// enough to amortize scheduling, small enough to balance skew and
// bound cancellation latency.
const morselSize = 1024

// cancelCheckRows is how often tight per-row loops poll the context.
const cancelCheckRows = 256

// canceller polls a context every cancelCheckRows iterations (a
// channel select per row would dominate cheap operators).
type canceller struct {
	ctx  context.Context
	tick uint32
}

// check returns ctx.Err() once the context is done, polling every
// cancelCheckRows calls.
func (c *canceller) check() error {
	c.tick++
	if c.tick%cancelCheckRows != 0 {
		return nil
	}
	return c.now()
}

// now polls the context immediately.
func (c *canceller) now() error {
	select {
	case <-c.ctx.Done():
		return c.ctx.Err()
	default:
		return nil
	}
}

// morselRange is one contiguous chunk of a materialized input.
type morselRange struct{ lo, hi int }

// splitMorsels cuts [0, n) into morselSize-sized ranges.
func splitMorsels(n int) []morselRange {
	if n == 0 {
		return nil
	}
	out := make([]morselRange, 0, (n+morselSize-1)/morselSize)
	for lo := 0; lo < n; lo += morselSize {
		hi := lo + morselSize
		if hi > n {
			hi = n
		}
		out = append(out, morselRange{lo, hi})
	}
	return out
}

// splitChunks cuts [0, n) into at most k contiguous, near-equal
// ranges — one per worker. Used where per-worker private state (hash
// maps, partial aggregation tables) makes coarse chunks cheaper than
// fine morsels.
func splitChunks(n, k int) []morselRange {
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	per := (n + k - 1) / k
	out := make([]morselRange, 0, k)
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, morselRange{lo, hi})
	}
	return out
}

// runChunks runs fn once per chunk, one goroutine per chunk, joining
// all workers before returning. The first error wins; a context error
// inside fn should surface through fn's own canceller.
func runChunks(ctx context.Context, chunks []morselRange, fn func(w int, r morselRange) error) error {
	if len(chunks) == 0 {
		return nil
	}
	if len(chunks) == 1 {
		return fn(0, chunks[0])
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := range chunks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := fn(w, chunks[w]); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runMorsels dispatches the morsels of an n-row input to at most
// `workers` goroutines. fn processes one morsel; the first error (or
// context cancellation) stops the remaining morsels. All workers are
// joined before runMorsels returns, so no goroutine leaks even on
// cancellation.
func runMorsels(ctx context.Context, n, workers int, fn func(m int, r morselRange) error) error {
	morsels := splitMorsels(n)
	if len(morsels) == 0 {
		return nil
	}
	if workers > len(morsels) {
		workers = len(morsels)
	}
	if workers <= 1 {
		c := canceller{ctx: ctx}
		for m, r := range morsels {
			if err := c.now(); err != nil {
				return err
			}
			if err := fn(m, r); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     int64 = -1
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   int32
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := canceller{ctx: ctx}
			for {
				if atomic.LoadInt32(&failed) != 0 {
					return
				}
				if err := c.now(); err != nil {
					errOnce.Do(func() { firstErr = err })
					atomic.StoreInt32(&failed, 1)
					return
				}
				m := int(atomic.AddInt64(&next, 1))
				if m >= len(morsels) {
					return
				}
				if err := fn(m, morsels[m]); err != nil {
					errOnce.Do(func() { firstErr = err })
					atomic.StoreInt32(&failed, 1)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// parallelFilter applies an optional residual predicate to rows on the
// worker pool, cloning survivors. Output preserves input order
// (per-morsel slots concatenated in morsel order), matching the serial
// scan exactly. Rows must be safe for shared concurrent reads (table
// snapshots are: the store never mutates a stored row in place).
func parallelFilter(ctx context.Context, rows []store.Row, residual *boundExpr, workers int) ([]store.Row, error) {
	slots := make([][]store.Row, len(splitMorsels(len(rows))))
	err := runMorsels(ctx, len(rows), workers, func(m int, r morselRange) error {
		c := canceller{ctx: ctx}
		out := make([]store.Row, 0, r.hi-r.lo)
		for _, row := range rows[r.lo:r.hi] {
			if err := c.check(); err != nil {
				return err
			}
			if residual != nil {
				ok, err := residual.evalBool(row)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			out = append(out, row.Clone())
		}
		slots[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range slots {
		total += len(s)
	}
	out := make([]store.Row, 0, total)
	for _, s := range slots {
		out = append(out, s...)
	}
	return out, nil
}

// drainAll materializes an iterator, polling ctx between rows.
func drainAll(ctx context.Context, in iterator) ([]store.Row, error) {
	c := canceller{ctx: ctx}
	var rows []store.Row
	for {
		if err := c.check(); err != nil {
			return nil, err
		}
		r, ok, err := in.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// --- Parallel hash join ---

// buildHashTableParallel builds the join hash table over the build
// side on the worker pool: each worker hashes one contiguous chunk
// into a private map, then the chunk maps are merged in chunk order,
// so per-key row lists keep build-input order (identical to the
// serial build).
func buildHashTableParallel(ctx context.Context, rows []store.Row, keys []*boundExpr, workers int) (map[uint64][]store.Row, error) {
	if workers > len(rows) {
		workers = len(rows)
	}
	if workers < 1 {
		workers = 1
	}
	chunks := make([]map[uint64][]store.Row, workers)
	orders := make([][]uint64, workers) // first-seen hash order per chunk
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	per := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			chunks[w] = map[uint64][]store.Row{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := canceller{ctx: ctx}
			part := make(map[uint64][]store.Row)
			var order []uint64
			for _, r := range rows[lo:hi] {
				if err := c.check(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				h, valid, err := hashKeys(keys, r)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				if !valid {
					continue
				}
				if _, seen := part[h]; !seen {
					order = append(order, h)
				}
				part[h] = append(part[h], r)
			}
			chunks[w] = part
			orders[w] = order
		}(w, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	table := make(map[uint64][]store.Row)
	for w, part := range chunks {
		for _, h := range orders[w] {
			table[h] = append(table[h], part[h]...)
		}
	}
	return table, nil
}

// parallelHashJoinProbe probes the hash table with the morsels of the
// probe side, emitting joined rows in the serial order (probe order,
// then build-insertion order per key).
func parallelHashJoinProbe(ctx context.Context, probe []store.Row, table map[uint64][]store.Row, probeKeys []*boundExpr, residual *boundExpr, stats *ExecStats, workers int) ([]store.Row, error) {
	slots := make([][]store.Row, len(splitMorsels(len(probe))))
	err := runMorsels(ctx, len(probe), workers, func(m int, mr morselRange) error {
		c := canceller{ctx: ctx}
		var out []store.Row
		var joined int64
		for _, l := range probe[mr.lo:mr.hi] {
			if err := c.check(); err != nil {
				return err
			}
			h, valid, err := hashKeys(probeKeys, l)
			if err != nil {
				return err
			}
			if !valid {
				continue
			}
			for _, r := range table[h] {
				row := make(store.Row, 0, len(l)+len(r))
				row = append(row, l...)
				row = append(row, r...)
				if residual != nil {
					ok, err := residual.evalBool(row)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				joined++
				out = append(out, row)
			}
		}
		atomic.AddInt64(&stats.RowsJoined, joined)
		slots[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range slots {
		total += len(s)
	}
	out := make([]store.Row, 0, total)
	for _, s := range slots {
		out = append(out, s...)
	}
	return out, nil
}

// newParallelHashJoin materializes both sides, builds the partitioned
// table, and probes on the pool. The result streams from a sliceIter,
// so downstream operators are unchanged.
func newParallelHashJoin(ec *execCtx, left, right iterator, leftKeys, rightKeys []*boundExpr, residual *boundExpr, op *OpStats) (iterator, error) {
	build, err := drainAll(ec.ctx, right)
	if err != nil {
		return nil, err
	}
	table, err := buildHashTableParallel(ec.ctx, build, rightKeys, ec.para)
	if err != nil {
		return nil, err
	}
	probe, err := drainAll(ec.ctx, left)
	if err != nil {
		return nil, err
	}
	out, err := parallelHashJoinProbe(ec.ctx, probe, table, leftKeys, residual, ec.stats, ec.para)
	if err != nil {
		return nil, err
	}
	op.addIn(int64(len(probe)))
	op.addOut(int64(len(out)))
	return &sliceIter{rows: out, cancel: canceller{ctx: ec.ctx}}, nil
}
