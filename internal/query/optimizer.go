package query

import (
	"fmt"
	"math"
	"runtime"

	"drugtree/internal/store"
)

// Options selects which optimizations run. The zero value is the
// naive engine used as the experimental baseline; DefaultOptions turns
// everything on.
type Options struct {
	// SubtreeRewrite turns WITHIN_SUBTREE(col, node) into a preorder
	// range predicate that downstream passes can push into an index.
	SubtreeRewrite bool
	// Pushdown splits WHERE conjuncts and pushes each to the deepest
	// operator covering its columns.
	Pushdown bool
	// JoinReorder applies cost-based join ordering.
	JoinReorder bool
	// UseIndexes lets scans pick index access paths from pushed
	// predicates.
	UseIndexes bool
	// ConstantFold evaluates literal subexpressions at plan time and
	// collapses boolean identities.
	ConstantFold bool
	// PruneColumns projects dead columns away above scans that feed
	// joins, narrowing every intermediate row.
	PruneColumns bool
	// Parallelism is the number of workers the executor may use for
	// morsel-driven scans, hash-join build/probe, and partial
	// aggregation. 0 selects runtime.GOMAXPROCS(0); 1 forces the
	// serial path (the ablation baseline for experiments T1–T4).
	// Parallel and serial execution produce the same result multiset
	// and identical plan text.
	Parallelism int
	// Vectorized executes the physical plan over columnar batches
	// (batch.go / physical_vec.go) instead of row-at-a-time Volcano
	// iteration. Both engines produce identical results and plan
	// text; this knob exists as the ablation baseline for T10.
	Vectorized bool
}

// EffectiveParallelism resolves the Parallelism knob: 0 means "as many
// workers as schedulable CPUs".
func (o Options) EffectiveParallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultOptions enables every optimization.
func DefaultOptions() Options {
	return Options{
		SubtreeRewrite: true, Pushdown: true, JoinReorder: true,
		UseIndexes: true, ConstantFold: true, PruneColumns: true,
		Vectorized: true,
	}
}

// NaiveOptions disables every optimization (the baseline engine).
func NaiveOptions() Options { return Options{} }

// Optimize rewrites a logical plan under the given options.
func Optimize(plan LogicalPlan, cat Catalog, opts Options) (LogicalPlan, error) {
	var err error
	if opts.SubtreeRewrite {
		plan, err = rewriteSubtrees(plan, cat)
		if err != nil {
			return nil, err
		}
	}
	if opts.Pushdown {
		plan = pushPredicates(plan)
	}
	if opts.JoinReorder {
		plan, err = reorderJoins(plan, cat)
		if err != nil {
			return nil, err
		}
	}
	if opts.ConstantFold {
		plan = foldPlan(plan)
	}
	if opts.PruneColumns {
		plan = pruneColumns(plan)
	}
	return plan, nil
}

// --- Subtree rewrite ---

// rewriteSubtrees replaces every SubtreeExpr in filters and scan
// conjuncts with (col >= lo AND col <= hi) over the node's preorder
// interval.
func rewriteSubtrees(plan LogicalPlan, cat Catalog) (LogicalPlan, error) {
	switch n := plan.(type) {
	case *FilterNode:
		in, err := rewriteSubtrees(n.Input, cat)
		if err != nil {
			return nil, err
		}
		p, err := rewriteSubtreeExpr(n.Pred, cat, n.Input.Schema())
		if err != nil {
			return nil, err
		}
		return &FilterNode{Input: in, Pred: p}, nil
	case *JoinNode:
		l, err := rewriteSubtrees(n.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := rewriteSubtrees(n.Right, cat)
		if err != nil {
			return nil, err
		}
		c, err := rewriteSubtreeExpr(n.Cond, cat, n.schema)
		if err != nil {
			return nil, err
		}
		return &JoinNode{Left: l, Right: r, Cond: c, schema: n.schema}, nil
	case *ScanNode:
		out := *n
		out.Conjuncts = nil
		for _, c := range n.Conjuncts {
			rc, err := rewriteSubtreeExpr(c, cat, n.schema)
			if err != nil {
				return nil, err
			}
			out.Conjuncts = append(out.Conjuncts, rc)
		}
		return &out, nil
	case *ProjectNode:
		in, err := rewriteSubtrees(n.Input, cat)
		if err != nil {
			return nil, err
		}
		out := *n
		out.Input = in
		return &out, nil
	case *AggNode:
		in, err := rewriteSubtrees(n.Input, cat)
		if err != nil {
			return nil, err
		}
		out := *n
		out.Input = in
		return &out, nil
	case *SortNode:
		in, err := rewriteSubtrees(n.Input, cat)
		if err != nil {
			return nil, err
		}
		return &SortNode{Input: in, Keys: n.Keys}, nil
	case *LimitNode:
		in, err := rewriteSubtrees(n.Input, cat)
		if err != nil {
			return nil, err
		}
		return &LimitNode{Input: in, N: n.N}, nil
	}
	return plan, nil
}

// rewriteSubtreeExpr rewrites tree predicates inside an expression
// tree: SubtreeExpr becomes a preorder-interval range, AncestorExpr
// becomes the interval-containment form pre ≤ P ≤ end_pre when the
// relation carries an end_pre column (left for set-membership
// evaluation otherwise).
func rewriteSubtreeExpr(e Expr, cat Catalog, schema *planSchema) (Expr, error) {
	switch x := e.(type) {
	case *SubtreeExpr:
		tree := cat.Tree()
		if tree == nil {
			return nil, fmt.Errorf("query: WITHIN_SUBTREE requires a tree-backed catalog")
		}
		node, err := findTreeNode(tree, x.Node)
		if err != nil {
			return nil, err
		}
		// A string column carries node names, not preorder numbers:
		// there is no interval to range over, so the membership form
		// stays (pushdown still lands it in scan conjuncts, where the
		// OverlayRead rewrite can recognize it).
		if idx, rerr := schema.resolve(x.Column); rerr == nil && schema.cols[idx].Kind == store.KindString {
			return e, nil
		}
		lo, hi := tree.SubtreeInterval(node)
		return &BinaryExpr{
			Op: OpAnd,
			L:  &BinaryExpr{Op: OpGe, L: x.Column, R: &Literal{Val: store.IntValue(int64(lo))}},
			R:  &BinaryExpr{Op: OpLe, L: x.Column, R: &Literal{Val: store.IntValue(int64(hi))}},
		}, nil
	case *AncestorExpr:
		tree := cat.Tree()
		if tree == nil {
			return nil, fmt.Errorf("query: ANCESTOR_OF requires a tree-backed catalog")
		}
		node, err := findTreeNode(tree, x.Node)
		if err != nil {
			return nil, err
		}
		endRef := &ColumnRef{Qualifier: x.Column.Qualifier, Name: "end_pre"}
		if _, err := schema.resolve(endRef); err != nil {
			return e, nil // relation lacks end_pre: keep membership eval
		}
		p := int64(tree.Pre(node))
		return &BinaryExpr{
			Op: OpAnd,
			L:  &BinaryExpr{Op: OpLe, L: x.Column, R: &Literal{Val: store.IntValue(p)}},
			R:  &BinaryExpr{Op: OpGe, L: endRef, R: &Literal{Val: store.IntValue(p)}},
		}, nil
	case *BinaryExpr:
		l, err := rewriteSubtreeExpr(x.L, cat, schema)
		if err != nil {
			return nil, err
		}
		r, err := rewriteSubtreeExpr(x.R, cat, schema)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *NotExpr:
		in, err := rewriteSubtreeExpr(x.E, cat, schema)
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: in}, nil
	}
	return e, nil
}

// --- Predicate pushdown ---

// splitConjuncts flattens a tree of ANDs into a conjunct list.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// joinConjuncts rebuilds an AND tree (nil for an empty list).
func joinConjuncts(cs []Expr) Expr {
	if len(cs) == 0 {
		return nil
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = &BinaryExpr{Op: OpAnd, L: out, R: c}
	}
	return out
}

// exprQualifiers collects the table qualifiers an expression touches.
// Unqualified references resolve against the schema they are pushed
// through, so pushing decisions use resolved columns: the caller
// passes the full schema to qualify them first.
func exprColumns(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	walkExpr(e, func(x Expr) {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
	})
	return refs
}

// coveredBy reports whether every column in e resolves in s.
func coveredBy(e Expr, s *planSchema) bool {
	for _, c := range exprColumns(e) {
		if _, err := s.resolve(c); err != nil {
			return false
		}
	}
	return true
}

// pushPredicates moves filter conjuncts to the deepest covering node.
func pushPredicates(plan LogicalPlan) LogicalPlan {
	switch n := plan.(type) {
	case *FilterNode:
		input := pushPredicates(n.Input)
		remaining := pushInto(&input, splitConjuncts(n.Pred))
		if len(remaining) == 0 {
			return input
		}
		return &FilterNode{Input: input, Pred: joinConjuncts(remaining)}
	case *JoinNode:
		l := pushPredicates(n.Left)
		r := pushPredicates(n.Right)
		// Join conditions that only touch one side migrate there.
		conjs := splitConjuncts(n.Cond)
		var keep []Expr
		for _, c := range conjs {
			switch {
			case coveredBy(c, l.Schema()):
				rem := pushInto(&l, []Expr{c})
				keep = append(keep, rem...)
			case coveredBy(c, r.Schema()):
				rem := pushInto(&r, []Expr{c})
				keep = append(keep, rem...)
			default:
				keep = append(keep, c)
			}
		}
		cond := joinConjuncts(keep)
		if cond == nil {
			cond = &Literal{Val: store.BoolValue(true)}
		}
		return &JoinNode{Left: l, Right: r, Cond: cond, schema: n.schema}
	case *ProjectNode:
		out := *n
		out.Input = pushPredicates(n.Input)
		return &out
	case *AggNode:
		out := *n
		out.Input = pushPredicates(n.Input)
		return &out
	case *SortNode:
		return &SortNode{Input: pushPredicates(n.Input), Keys: n.Keys}
	case *LimitNode:
		return &LimitNode{Input: pushPredicates(n.Input), N: n.N}
	}
	return plan
}

// pushInto pushes conjuncts into *plan as deep as possible, returning
// the conjuncts that could not be absorbed. *plan is replaced by the
// rewritten subtree.
func pushInto(plan *LogicalPlan, conjs []Expr) []Expr {
	switch n := (*plan).(type) {
	case *ScanNode:
		out := *n
		var remaining []Expr
		for _, c := range conjs {
			if coveredBy(c, n.schema) {
				out.Conjuncts = append(out.Conjuncts, c)
			} else {
				remaining = append(remaining, c)
			}
		}
		*plan = &out
		return remaining
	case *FilterNode:
		// Merge into the existing filter's input.
		input := n.Input
		remaining := pushInto(&input, conjs)
		nf := &FilterNode{Input: input, Pred: n.Pred}
		*plan = nf
		if len(remaining) == 0 {
			return nil
		}
		// Absorb the remainder into this filter.
		nf.Pred = joinConjuncts(append(splitConjuncts(n.Pred), remaining...))
		return nil
	case *JoinNode:
		l, r := n.Left, n.Right
		var remaining []Expr
		for _, c := range conjs {
			switch {
			case coveredBy(c, l.Schema()):
				remaining = append(remaining, pushInto(&l, []Expr{c})...)
			case coveredBy(c, r.Schema()):
				remaining = append(remaining, pushInto(&r, []Expr{c})...)
			default:
				remaining = append(remaining, c)
			}
		}
		*plan = &JoinNode{Left: l, Right: r, Cond: n.Cond, schema: n.schema}
		return remaining
	case *ProjectNode:
		// Predicates referencing projected names cannot cross; only
		// push what the input covers under the same names. For the
		// common case (projection of plain columns) this succeeds.
		input := n.Input
		var remaining []Expr
		var pushable []Expr
		for _, c := range conjs {
			if coveredBy(c, input.Schema()) {
				pushable = append(pushable, c)
			} else {
				remaining = append(remaining, c)
			}
		}
		if len(pushable) > 0 {
			rem := pushInto(&input, pushable)
			remaining = append(remaining, rem...)
		}
		out := *n
		out.Input = input
		*plan = &out
		return remaining
	}
	return conjs
}

// --- Join reordering ---

// reorderJoins rebuilds chains of inner joins in cost order. It
// detects a maximal join tree (joins whose children are joins or
// scans), collects the base relations and all equi-conditions, and
// greedily builds a left-deep plan starting from the smallest
// filtered relation, always joining the relation that yields the
// smallest estimated intermediate result (for ≤8 relations this
// greedy is exhaustive-checked against connected pairs; beyond that
// greedy only).
func reorderJoins(plan LogicalPlan, cat Catalog) (LogicalPlan, error) {
	switch n := plan.(type) {
	case *JoinNode:
		rels, conds, ok := collectJoinTree(n)
		if !ok || len(rels) < 3 {
			// Reordering a 2-way join is a no-op; recurse children.
			l, err := reorderJoins(n.Left, cat)
			if err != nil {
				return nil, err
			}
			r, err := reorderJoins(n.Right, cat)
			if err != nil {
				return nil, err
			}
			return &JoinNode{Left: l, Right: r, Cond: n.Cond, schema: n.schema}, nil
		}
		return buildJoinOrder(rels, conds, cat, n.schema)
	case *FilterNode:
		in, err := reorderJoins(n.Input, cat)
		if err != nil {
			return nil, err
		}
		return &FilterNode{Input: in, Pred: n.Pred}, nil
	case *ProjectNode:
		in, err := reorderJoins(n.Input, cat)
		if err != nil {
			return nil, err
		}
		out := *n
		out.Input = in
		return &out, nil
	case *AggNode:
		in, err := reorderJoins(n.Input, cat)
		if err != nil {
			return nil, err
		}
		out := *n
		out.Input = in
		return &out, nil
	case *SortNode:
		in, err := reorderJoins(n.Input, cat)
		if err != nil {
			return nil, err
		}
		return &SortNode{Input: in, Keys: n.Keys}, nil
	case *LimitNode:
		in, err := reorderJoins(n.Input, cat)
		if err != nil {
			return nil, err
		}
		return &LimitNode{Input: in, N: n.N}, nil
	}
	return plan, nil
}

// collectJoinTree flattens a tree of inner joins over scans into base
// relations and the conjunct list of all join conditions. ok is false
// when any leaf is not a ScanNode (e.g. already-filtered subtrees),
// in which case reordering is skipped conservatively.
func collectJoinTree(j *JoinNode) (rels []*ScanNode, conds []Expr, ok bool) {
	var walk func(p LogicalPlan) bool
	walk = func(p LogicalPlan) bool {
		switch n := p.(type) {
		case *JoinNode:
			conds = append(conds, splitConjuncts(n.Cond)...)
			return walk(n.Left) && walk(n.Right)
		case *ScanNode:
			rels = append(rels, n)
			return true
		}
		return false
	}
	ok = walk(j)
	return rels, conds, ok
}

// estimateScanRows estimates a scan's output cardinality from table
// stats and pushed conjuncts.
func estimateScanRows(s *ScanNode, cat Catalog) float64 {
	st, err := cat.Stats(s.Table)
	if err != nil {
		return 1000
	}
	rows := float64(st.Rows)
	for _, c := range s.Conjuncts {
		rows *= conjunctSelectivity(c, st)
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// conjunctSelectivity estimates one predicate's selectivity.
func conjunctSelectivity(e Expr, st *store.TableStats) float64 {
	b, ok := e.(*BinaryExpr)
	if !ok {
		return 0.25
	}
	col, lit := extractColLit(b)
	if col == nil {
		return 0.25
	}
	switch b.Op {
	case OpEq:
		return st.SelectivityEqual(col.Name)
	case OpNe:
		return 1 - st.SelectivityEqual(col.Name)
	case OpLt, OpLe:
		if lit != nil {
			v := lit.Val
			return st.SelectivityRange(col.Name, nil, &v)
		}
		return 0.3
	case OpGt, OpGe:
		if lit != nil {
			v := lit.Val
			return st.SelectivityRange(col.Name, &v, nil)
		}
		return 0.3
	case OpAnd:
		return conjunctSelectivity(b.L, st) * conjunctSelectivity(b.R, st)
	case OpOr:
		sl, sr := conjunctSelectivity(b.L, st), conjunctSelectivity(b.R, st)
		return math.Min(1, sl+sr)
	}
	return 0.25
}

// extractColLit pulls (column, literal) out of a binary comparison in
// either operand order; literal is nil when both sides are columns.
func extractColLit(b *BinaryExpr) (*ColumnRef, *Literal) {
	if c, ok := b.L.(*ColumnRef); ok {
		l, _ := b.R.(*Literal)
		return c, l
	}
	if c, ok := b.R.(*ColumnRef); ok {
		l, _ := b.L.(*Literal)
		return c, l
	}
	return nil, nil
}

// buildJoinOrder greedily assembles a left-deep join over rels.
func buildJoinOrder(rels []*ScanNode, conds []Expr, cat Catalog, finalSchema *planSchema) (LogicalPlan, error) {
	n := len(rels)
	card := make([]float64, n)
	for i, r := range rels {
		card[i] = estimateScanRows(r, cat)
	}
	// Which conjuncts connect which relation pairs? A conjunct is
	// assigned to the minimal set of relations covering its columns.
	type condInfo struct {
		expr Expr
		rels map[int]bool
	}
	infos := make([]condInfo, 0, len(conds))
	for _, c := range conds {
		ci := condInfo{expr: c, rels: map[int]bool{}}
		for _, col := range exprColumns(c) {
			for i, r := range rels {
				if _, err := r.schema.resolve(col); err == nil {
					ci.rels[i] = true
				}
			}
		}
		infos = append(infos, ci)
	}

	used := make([]bool, n)
	// Start from the smallest relation.
	start := 0
	for i := 1; i < n; i++ {
		if card[i] < card[start] {
			start = i
		}
	}
	used[start] = true
	var cur LogicalPlan = rels[start]
	curCard := card[start]
	inPlan := map[int]bool{start: true}
	condUsed := make([]bool, len(infos))

	ndvOf := func(rel *ScanNode, col string) float64 {
		st, err := cat.Stats(rel.Table)
		if err != nil {
			return 100
		}
		c := st.Column(col)
		if c == nil || c.NDV == 0 {
			return 100
		}
		return float64(c.NDV)
	}

	for step := 1; step < n; step++ {
		bestIdx := -1
		bestCost := math.Inf(1)
		var bestCard float64
		// Prefer relations connected by an unused condition.
		for cand := 0; cand < n; cand++ {
			if used[cand] {
				continue
			}
			// Estimate the join cardinality with all applicable
			// conditions between plan∪{cand}.
			sel := 1.0
			connected := false
			for k, ci := range infos {
				if condUsed[k] || !ci.rels[cand] {
					continue
				}
				allCovered := true
				for ri := range ci.rels {
					if ri != cand && !inPlan[ri] {
						allCovered = false
						break
					}
				}
				if !allCovered {
					continue
				}
				connected = true
				// Equality conditions reduce by 1/max NDV.
				if b, ok := ci.expr.(*BinaryExpr); ok && b.Op == OpEq {
					lc, _ := b.L.(*ColumnRef)
					rc, _ := b.R.(*ColumnRef)
					if lc != nil && rc != nil {
						var candCol *ColumnRef
						if _, err := rels[cand].schema.resolve(lc); err == nil {
							candCol = lc
						} else {
							candCol = rc
						}
						sel /= math.Max(1, ndvOf(rels[cand], candCol.Name))
						continue
					}
				}
				sel *= 0.3
			}
			outCard := curCard * card[cand] * sel
			// Cross joins are punished by their raw cardinality;
			// connected candidates come first naturally.
			cost := outCard
			if !connected {
				cost *= 10 // discourage Cartesian products
			}
			if cost < bestCost {
				bestCost, bestIdx, bestCard = cost, cand, outCard
			}
		}
		// Attach the chosen relation with every now-covered condition.
		cand := bestIdx
		var applied []Expr
		for k, ci := range infos {
			if condUsed[k] || !ci.rels[cand] {
				continue
			}
			allCovered := true
			for ri := range ci.rels {
				if ri != cand && !inPlan[ri] {
					allCovered = false
					break
				}
			}
			if allCovered {
				applied = append(applied, ci.expr)
				condUsed[k] = true
			}
		}
		cond := joinConjuncts(applied)
		if cond == nil {
			cond = &Literal{Val: store.BoolValue(true)}
		}
		jn := &JoinNode{Left: cur, Right: rels[cand], Cond: cond}
		jn.schema = cur.Schema().concat(rels[cand].Schema())
		cur = jn
		curCard = math.Max(1, bestCard)
		used[cand] = true
		inPlan[cand] = true
	}
	// Any condition never covered (shouldn't happen for valid plans)
	// becomes a final filter.
	var leftover []Expr
	for k, ci := range infos {
		if !condUsed[k] {
			leftover = append(leftover, ci.expr)
		}
	}
	if len(leftover) > 0 {
		cur = &FilterNode{Input: cur, Pred: joinConjuncts(leftover)}
	}
	// The reordered schema is a permutation of the original; keep the
	// new column order (projection above restores user order).
	return cur, nil
}
