// Package query implements DTQL, the DrugTree query language: a
// SQL-like language over the integrated store with tree-aware
// extensions (WITHIN_SUBTREE, tree virtual columns), a rule- and
// cost-based optimizer, and a Volcano-style executor.
//
// The optimizer is the paper's subject: it applies "standard"
// techniques (predicate pushdown, projection pruning, index selection,
// cost-based join ordering) plus the tree-specific rewrite that turns
// subtree-membership predicates into preorder-interval range scans.
package query

import (
	"fmt"
	"strings"
)

// tokenKind enumerates lexical token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokSymbol // ( ) , . *
	tokOp     // = != < <= > >= + - / %
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized by the parser (upper-cased).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "JOIN": true, "ON": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true, "AS": true,
	"TRUE": true, "FALSE": true, "NULL": true, "BETWEEN": true,
	"EXPLAIN": true, "ANALYZE": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "WITHIN_SUBTREE": true, "LIKE": true,
	"HAVING": true, "IN": true, "DISTINCT": true, "ANCESTOR_OF": true,
	"TANIMOTO": true,
}

// lex tokenizes a DTQL string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && isDigit(src[i+1])):
			start := i
			isFloat := false
			for i < len(src) && (isDigit(src[i]) || src[i] == '.') {
				if src[i] == '.' {
					if isFloat {
						return nil, fmt.Errorf("query: malformed number at offset %d", start)
					}
					isFloat = true
				}
				i++
			}
			// Exponent.
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				isFloat = true
				i++
				if i < len(src) && (src[i] == '+' || src[i] == '-') {
					i++
				}
				if i >= len(src) || !isDigit(src[i]) {
					return nil, fmt.Errorf("query: malformed exponent at offset %d", start)
				}
				for i < len(src) && isDigit(src[i]) {
					i++
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, src[start:i], start})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			text := src[start:i]
			if keywords[strings.ToUpper(text)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(text), start})
			} else {
				toks = append(toks, token{tokIdent, text, start})
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("query: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '!' at offset %d", i)
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '+' || c == '-' || c == '/' || c == '%':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
