package query

import (
	"fmt"
	"strconv"

	"drugtree/internal/store"
)

// Parse parses a DTQL statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("query: expected %s, got %s", kw, p.peek())
	}
	return nil
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("query: expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("EXPLAIN") {
		stmt.Explain = true
		if p.acceptKeyword("ANALYZE") {
			stmt.Analyze = true
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	// Joins.
	for p.acceptKeyword("JOIN") {
		tref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: tref, On: on})
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.Order = append(stmt.Order, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokInt {
			return nil, fmt.Errorf("query: LIMIT expects an integer, got %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: invalid LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("query: expected alias after AS, got %s", t)
		}
		item.Alias = t.text
	} else if p.peek().kind == tokIdent {
		// Bare alias: SELECT affinity a FROM ...
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("query: expected table name, got %s", t)
	}
	ref := TableRef{Name: t.text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("query: expected alias after AS, got %s", a)
		}
		ref.Alias = a.text
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((= != < <= > >= LIKE) addExpr
//	            | BETWEEN addExpr AND addExpr)?
//	addExpr  := mulExpr ((+ -) mulExpr)*
//	mulExpr  := unary ((* / %) unary)*
//	unary    := - unary | primary
//	primary  := literal | columnRef | aggCall | WITHIN_SUBTREE(...)
//	            | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("LIKE") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpLike, L: l, R: r}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		// x BETWEEN a AND b  ≡  x >= a AND x <= b.
		return &BinaryExpr{
			Op: OpAnd,
			L:  &BinaryExpr{Op: OpGe, L: l, R: lo},
			R:  &BinaryExpr{Op: OpLe, L: l, R: hi},
		}, nil
	}
	// x IN (a, b, c) ≡ x=a OR x=b OR x=c; NOT IN negates the whole.
	negated := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		p.pos += 2
		negated = true
	} else if p.acceptKeyword("IN") {
		// fallthrough to the list below
	} else {
		return l, nil
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	// IN (SELECT ...) is a subquery set; otherwise a literal list.
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		var out Expr = &InSubqueryExpr{Needle: l, Stmt: sub}
		if negated {
			out = &NotExpr{E: out}
		}
		return out, nil
	}
	var list Expr
	for {
		item, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		eq := Expr(&BinaryExpr{Op: OpEq, L: l, R: item})
		if list == nil {
			list = eq
		} else {
			list = &BinaryExpr{Op: OpOr, L: list, R: eq}
		}
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if negated {
		return &NotExpr{E: list}, nil
	}
	return list, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := OpAdd
		if p.next().text == "-" {
			op = OpSub
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.peek().kind == tokSymbol && p.peek().text == "*" {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpMul, L: l, R: r}
			continue
		}
		if p.peek().kind == tokOp && p.peek().text == "/" {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpDiv, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokOp && p.peek().text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{E: e}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad integer %q", t.text)
		}
		return &Literal{Val: store.IntValue(n)}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad float %q", t.text)
		}
		return &Literal{Val: store.FloatValue(f)}, nil
	case tokString:
		p.next()
		return &Literal{Val: store.StringValue(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.next()
			return &Literal{Val: store.BoolValue(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: store.BoolValue(false)}, nil
		case "NULL":
			p.next()
			return &Literal{Val: store.NullValue()}, nil
		case "WITHIN_SUBTREE":
			return p.parseTreeFunc(false)
		case "ANCESTOR_OF":
			return p.parseTreeFunc(true)
		case "TANIMOTO":
			return p.parseTanimoto()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseAgg()
		}
		return nil, fmt.Errorf("query: unexpected keyword %s in expression", t)
	case tokIdent:
		p.next()
		ref := &ColumnRef{Name: t.text}
		if p.acceptSymbol(".") {
			col := p.next()
			if col.kind != tokIdent {
				return nil, fmt.Errorf("query: expected column after %q., got %s", t.text, col)
			}
			ref.Qualifier = t.text
			ref.Name = col.text
		}
		return ref, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			// A parenthesized SELECT is a scalar subquery.
			if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Stmt: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("query: unexpected %s in expression", t)
}

func (p *parser) parseAgg() (Expr, error) {
	fn := aggFuncs[p.next().text]
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if fn == AggCount && p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &AggExpr{Func: AggCount, Star: true}, nil
	}
	distinct := false
	if p.acceptKeyword("DISTINCT") {
		if fn != AggCount {
			return nil, fmt.Errorf("query: DISTINCT is only supported in COUNT")
		}
		distinct = true
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &AggExpr{Func: fn, Arg: arg, Distinct: distinct}, nil
}

// parseTanimoto parses TANIMOTO(col, 'SMILES').
func (p *parser) parseTanimoto() (Expr, error) {
	p.next() // TANIMOTO
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	colExpr, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	col, ok := colExpr.(*ColumnRef)
	if !ok {
		return nil, fmt.Errorf("query: TANIMOTO first argument must be a column, got %s", colExpr)
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	smilesTok := p.next()
	if smilesTok.kind != tokString {
		return nil, fmt.Errorf("query: TANIMOTO second argument must be a string literal, got %s", smilesTok)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &TanimotoExpr{Column: col, SMILES: smilesTok.text}, nil
}

// parseTreeFunc parses WITHIN_SUBTREE(col, 'name') or, when ancestor
// is true, ANCESTOR_OF(col, 'name').
func (p *parser) parseTreeFunc(ancestor bool) (Expr, error) {
	fname := p.next().text
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	colExpr, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	col, ok := colExpr.(*ColumnRef)
	if !ok {
		return nil, fmt.Errorf("query: %s first argument must be a column, got %s", fname, colExpr)
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokString {
		return nil, fmt.Errorf("query: %s second argument must be a string literal, got %s", fname, nameTok)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if ancestor {
		return &AncestorExpr{Column: col, Node: nameTok.text}, nil
	}
	return &SubtreeExpr{Column: col, Node: nameTok.text}, nil
}
