package query

import (
	"strings"
	"testing"
)

func mustParseQ(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseBasicSelect(t *testing.T) {
	stmt := mustParseQ(t, "SELECT accession, family FROM proteins")
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.From.Name != "proteins" || stmt.Limit != -1 || stmt.Where != nil {
		t.Fatalf("stmt = %+v", stmt)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM proteins")
	if !stmt.Items[0].Star {
		t.Fatal("star not parsed")
	}
}

func TestParseWhere(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM p WHERE a = 1 AND b > 2.5 OR NOT c")
	// OR binds loosest: ((a=1 AND b>2.5) OR (NOT c)).
	top, ok := stmt.Where.(*BinaryExpr)
	if !ok || top.Op != OpOr {
		t.Fatalf("top = %v", stmt.Where)
	}
	l, ok := top.L.(*BinaryExpr)
	if !ok || l.Op != OpAnd {
		t.Fatalf("left = %v", top.L)
	}
	if _, ok := top.R.(*NotExpr); !ok {
		t.Fatalf("right = %v", top.R)
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParseQ(t, `SELECT p.accession FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		JOIN ligands l ON a.ligand_id = l.ligand_id`)
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	if stmt.From.Alias != "p" || stmt.Joins[0].Table.Alias != "a" {
		t.Fatalf("aliases = %q %q", stmt.From.Alias, stmt.Joins[0].Table.Alias)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	stmt := mustParseQ(t, `SELECT family, COUNT(*) AS n, AVG(length)
		FROM proteins GROUP BY family ORDER BY n DESC, family LIMIT 5`)
	if len(stmt.GroupBy) != 1 || len(stmt.Order) != 2 || stmt.Limit != 5 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if !stmt.Order[0].Desc || stmt.Order[1].Desc {
		t.Fatal("order directions wrong")
	}
	agg, ok := stmt.Items[1].Expr.(*AggExpr)
	if !ok || agg.Func != AggCount || !agg.Star {
		t.Fatalf("COUNT(*) = %v", stmt.Items[1].Expr)
	}
	if stmt.Items[1].Alias != "n" {
		t.Fatalf("alias = %q", stmt.Items[1].Alias)
	}
}

func TestParseBetween(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM t WHERE x BETWEEN 1 AND 10")
	b, ok := stmt.Where.(*BinaryExpr)
	if !ok || b.Op != OpAnd {
		t.Fatalf("BETWEEN desugar = %v", stmt.Where)
	}
	ge := b.L.(*BinaryExpr)
	le := b.R.(*BinaryExpr)
	if ge.Op != OpGe || le.Op != OpLe {
		t.Fatalf("BETWEEN bounds = %v / %v", ge.Op, le.Op)
	}
}

func TestParseWithinSubtree(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'FAM01')")
	se, ok := stmt.Where.(*SubtreeExpr)
	if !ok {
		t.Fatalf("where = %T", stmt.Where)
	}
	if se.Column.Name != "pre" || se.Node != "FAM01" {
		t.Fatalf("subtree expr = %+v", se)
	}
}

func TestParseExplain(t *testing.T) {
	stmt := mustParseQ(t, "EXPLAIN SELECT * FROM t")
	if !stmt.Explain {
		t.Fatal("EXPLAIN not parsed")
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM t WHERE name = 'it''s'")
	b := stmt.Where.(*BinaryExpr)
	lit := b.R.(*Literal)
	if lit.Val.S != "it's" {
		t.Fatalf("escaped string = %q", lit.Val.S)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParseQ(t, "SELECT a + b * 2 FROM t")
	add := stmt.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top op = %v", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("right op = %v", mul.Op)
	}
}

func TestParseLike(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM t WHERE name LIKE 'kin%'")
	b := stmt.Where.(*BinaryExpr)
	if b.Op != OpLike {
		t.Fatalf("op = %v", b.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t JOIN u",
		"SELECT * FROM t trailing garbage here",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT COUNT( FROM t",
		"SELECT * FROM t WHERE WITHIN_SUBTREE(1, 'x')",
		"SELECT * FROM t WHERE WITHIN_SUBTREE(col, name)",
		"SELECT * FROM t WHERE a ! b",
		"SELECT * FROM t WHERE a = 1.2.3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestStmtStringRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a, b FROM t WHERE a = 1",
		"SELECT p.a FROM t p JOIN u q ON p.a = q.b WHERE p.c > 2 LIMIT 3",
		"SELECT family, COUNT(*) FROM p GROUP BY family ORDER BY family DESC",
	}
	for _, src := range srcs {
		stmt := mustParseQ(t, src)
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", src, rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("unstable render: %q vs %q", rendered, stmt2.String())
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("1 2.5 1e3 1.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokInt, tokFloat, tokFloat, tokFloat, tokEOF}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want kind %d", i, toks[i], k)
		}
	}
	if _, err := lex("1e"); err == nil {
		t.Error("bad exponent accepted")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"kinase", "kin%", true},
		{"kinase", "%ase", true},
		{"kinase", "%nas%", true},
		{"kinase", "kinase", true},
		{"kinase", "k_nase", true},
		{"kinase", "k_ase", false},
		{"kinase", "ligase", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"ac", "a%c", true},
		{"abbbc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestExplainPlanRendering(t *testing.T) {
	// Smoke test that plan rendering indents children.
	s := &ScanNode{Table: "t", Alias: "t", schema: &planSchema{}}
	f := &FilterNode{Input: s, Pred: &Literal{}}
	out := ExplainPlan(f)
	if !strings.Contains(out, "Filter") || !strings.Contains(out, "  Scan t") {
		t.Fatalf("plan rendering:\n%s", out)
	}
}
