package query

import (
	"context"
	"strings"
	"testing"

	"drugtree/internal/store"
)

func TestParseHaving(t *testing.T) {
	stmt := mustParseQ(t, "SELECT family, COUNT(*) FROM p GROUP BY family HAVING COUNT(*) > 3")
	if stmt.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	b, ok := stmt.Having.(*BinaryExpr)
	if !ok || b.Op != OpGt {
		t.Fatalf("having = %v", stmt.Having)
	}
	if _, ok := b.L.(*AggExpr); !ok {
		t.Fatalf("having left = %T", b.L)
	}
}

func TestParseIn(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM t WHERE x IN (1, 2, 3)")
	// Desugars to (x=1 OR x=2) OR x=3.
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("IN desugar = %v", stmt.Where)
	}
	stmt2 := mustParseQ(t, "SELECT * FROM t WHERE x NOT IN (1, 2)")
	if _, ok := stmt2.Where.(*NotExpr); !ok {
		t.Fatalf("NOT IN desugar = %v", stmt2.Where)
	}
	if _, err := Parse("SELECT * FROM t WHERE x IN ()"); err == nil {
		t.Error("empty IN list accepted")
	}
	if _, err := Parse("SELECT * FROM t WHERE x IN (1,"); err == nil {
		t.Error("truncated IN list accepted")
	}
}

func TestParseCountDistinct(t *testing.T) {
	stmt := mustParseQ(t, "SELECT COUNT(DISTINCT family) FROM p")
	agg := stmt.Items[0].Expr.(*AggExpr)
	if !agg.Distinct || agg.Func != AggCount {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.String() != "COUNT(DISTINCT family)" {
		t.Fatalf("render = %q", agg.String())
	}
	if _, err := Parse("SELECT SUM(DISTINCT x) FROM t"); err == nil {
		t.Error("SUM(DISTINCT) accepted")
	}
}

func TestParseAncestorOf(t *testing.T) {
	stmt := mustParseQ(t, "SELECT * FROM tree_nodes WHERE ANCESTOR_OF(pre, 'P001')")
	ae, ok := stmt.Where.(*AncestorExpr)
	if !ok || ae.Node != "P001" || ae.Column.Name != "pre" {
		t.Fatalf("ancestor expr = %v", stmt.Where)
	}
}

func TestHavingExecution(t *testing.T) {
	cat := testCatalog(t)
	// Each family has 15 proteins; filter on an aggregate in the
	// select list.
	res := runQ(t, cat, DefaultOptions(),
		"SELECT family, COUNT(*) AS n FROM proteins WHERE length < 130 GROUP BY family HAVING COUNT(*) >= 8")
	for _, r := range res.Rows {
		if r[1].I < 8 {
			t.Fatalf("HAVING leak: %v", r)
		}
	}
	// HAVING on an aggregate NOT in the select list (hidden agg).
	res2 := runQ(t, cat, DefaultOptions(),
		"SELECT family FROM proteins GROUP BY family HAVING AVG(length) > 128 ORDER BY family")
	// Families 0..3 have average lengths 128,129,130,131 → FAM1..3.
	if len(res2.Rows) != 3 || res2.Rows[0][0].S != "FAM1" {
		t.Fatalf("hidden-agg HAVING rows = %v", res2.Rows)
	}
	if len(res2.Columns) != 1 || res2.Columns[0] != "family" {
		t.Fatalf("hidden agg leaked into output: %v", res2.Columns)
	}
	// HAVING without aggregation is rejected.
	if _, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT accession FROM proteins HAVING COUNT(*) > 1"); err == nil {
		t.Fatal("HAVING without GROUP BY accepted")
	}
}

func TestHavingNaiveOptimizedAgree(t *testing.T) {
	cat := testCatalog(t)
	q := `SELECT p.family, COUNT(*) AS n FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		GROUP BY p.family HAVING AVG(a.affinity) >= 6 ORDER BY p.family`
	naive := runQ(t, cat, NaiveOptions(), q)
	opt := runQ(t, cat, DefaultOptions(), q)
	if len(naive.Rows) != len(opt.Rows) {
		t.Fatalf("rows differ: %d vs %d", len(naive.Rows), len(opt.Rows))
	}
	for i := range naive.Rows {
		if naive.Rows[i][0].S != opt.Rows[i][0].S || naive.Rows[i][1].I != opt.Rows[i][1].I {
			t.Fatalf("row %d differs: %v vs %v", i, naive.Rows[i], opt.Rows[i])
		}
	}
}

func TestInExecution(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT accession FROM proteins WHERE family IN ('FAM0', 'FAM2')")
	if len(res.Rows) != 30 {
		t.Fatalf("IN rows = %d, want 30", len(res.Rows))
	}
	res2 := runQ(t, cat, DefaultOptions(),
		"SELECT accession FROM proteins WHERE family NOT IN ('FAM0', 'FAM2', 'FAM3')")
	if len(res2.Rows) != 15 {
		t.Fatalf("NOT IN rows = %d, want 15", len(res2.Rows))
	}
}

func TestCountDistinctExecution(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(),
		"SELECT COUNT(DISTINCT family), COUNT(*) FROM proteins")
	if res.Rows[0][0].I != 4 || res.Rows[0][1].I != 60 {
		t.Fatalf("distinct counts = %v", res.Rows[0])
	}
	// Per-group distinct.
	res2 := runQ(t, cat, DefaultOptions(),
		"SELECT family, COUNT(DISTINCT length) FROM proteins GROUP BY family ORDER BY family")
	for _, r := range res2.Rows {
		if r[1].I != 15 { // lengths unique per family in the fixture
			t.Fatalf("group distinct = %v", r)
		}
	}
}

func TestAncestorOfExecution(t *testing.T) {
	cat := testCatalog(t)
	// Ancestors of leaf P000: root → FAM0 → P000.
	q := "SELECT name FROM tree_nodes WHERE ANCESTOR_OF(pre, 'P000') ORDER BY pre"
	res := runQ(t, cat, DefaultOptions(), q)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[0].S)
	}
	if strings.Join(names, ",") != "root,FAM0,P000" {
		t.Fatalf("ancestors = %v", names)
	}
	// Naive engine agrees (membership evaluation path).
	naive := runQ(t, cat, NaiveOptions(), q)
	if len(naive.Rows) != len(res.Rows) {
		t.Fatalf("naive %d rows, optimized %d", len(naive.Rows), len(res.Rows))
	}
	// Unknown node errors.
	if _, err := NewEngine(cat, DefaultOptions()).Query(context.Background(),
		"SELECT * FROM tree_nodes WHERE ANCESTOR_OF(pre, 'missing')"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestTopKPlanAndResults(t *testing.T) {
	cat := testCatalog(t)
	q := "SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 4"
	res := runQ(t, cat, DefaultOptions(), "EXPLAIN "+q)
	if !strings.Contains(res.Plan, "TopK 4") {
		t.Fatalf("expected TopK in plan:\n%s", res.Plan)
	}
	// Results identical to the naive full-sort path.
	opt := runQ(t, cat, DefaultOptions(), q)
	naive := runQ(t, cat, NaiveOptions(), q)
	if len(opt.Rows) != 4 || len(naive.Rows) != 4 {
		t.Fatalf("row counts: %d/%d", len(opt.Rows), len(naive.Rows))
	}
	for i := range opt.Rows {
		if opt.Rows[i][1].I != naive.Rows[i][1].I {
			t.Fatalf("row %d: %v vs %v", i, opt.Rows[i], naive.Rows[i])
		}
	}
	// Ascending order too.
	asc := runQ(t, cat, DefaultOptions(), "SELECT length FROM proteins ORDER BY length LIMIT 3")
	if asc.Rows[0][0].I != 100 || asc.Rows[2][0].I != 102 {
		t.Fatalf("asc topk = %v", asc.Rows)
	}
	// LIMIT larger than input.
	big := runQ(t, cat, DefaultOptions(), "SELECT length FROM proteins ORDER BY length LIMIT 1000")
	if len(big.Rows) != 60 {
		t.Fatalf("oversized topk rows = %d", len(big.Rows))
	}
	// Hidden-sort-column shape: ORDER BY a column absent from the
	// SELECT list still runs as top-k (Project over TopK).
	hidden := runQ(t, cat, DefaultOptions(),
		"EXPLAIN SELECT accession FROM proteins ORDER BY length DESC LIMIT 3")
	if !strings.Contains(hidden.Plan, "TopK 3") {
		t.Fatalf("hidden-column sort did not fuse to TopK:\n%s", hidden.Plan)
	}
	hres := runQ(t, cat, DefaultOptions(),
		"SELECT accession FROM proteins ORDER BY length DESC LIMIT 3")
	if len(hres.Rows) != 3 || hres.Rows[0][0].S != "P059" {
		t.Fatalf("hidden-column topk rows = %v", hres.Rows)
	}
}

func TestMergeJoinPlanAndResults(t *testing.T) {
	// Build a catalog where both join columns have B+-tree indexes
	// and no other predicate exists, so the merge join fires.
	db, _ := store.Open("")
	t.Cleanup(func() { db.Close() })
	a, _ := db.CreateTable("a", store.MustSchema(
		store.Column{Name: "k", Kind: store.KindInt},
		store.Column{Name: "av", Kind: store.KindString},
	))
	bt, _ := db.CreateTable("b", store.MustSchema(
		store.Column{Name: "k", Kind: store.KindInt},
		store.Column{Name: "bv", Kind: store.KindString},
	))
	for i := 0; i < 50; i++ {
		a.Insert(store.Row{store.IntValue(int64(i % 10)), store.StringValue("a")})
		if i%2 == 0 {
			bt.Insert(store.Row{store.IntValue(int64(i % 14)), store.StringValue("b")})
		}
	}
	a.CreateIndex("k", store.IndexBTree)
	bt.CreateIndex("k", store.IndexBTree)
	cat := NewDBCatalog(db, nil)

	q := "SELECT x.av, y.bv FROM a x JOIN b y ON x.k = y.k"
	plan := runQ(t, cat, DefaultOptions(), "EXPLAIN "+q)
	if !strings.Contains(plan.Plan, "MergeJoin") {
		t.Fatalf("expected MergeJoin:\n%s", plan.Plan)
	}
	opt := runQ(t, cat, DefaultOptions(), q)
	naive := runQ(t, cat, NaiveOptions(), q)
	if !sameRowMultiset(opt.Rows, naive.Rows) {
		t.Fatalf("merge join results differ: %d vs %d rows", len(opt.Rows), len(naive.Rows))
	}
	if len(opt.Rows) == 0 {
		t.Fatal("merge join returned nothing")
	}
}

func TestMergeJoinNotChosenWithBetterPath(t *testing.T) {
	cat := testCatalog(t)
	// accession = 'X' gives proteins an indexeq path → hash join, not
	// merge join.
	q := `EXPLAIN SELECT p.accession FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		WHERE p.accession = 'P001'`
	res := runQ(t, cat, DefaultOptions(), q)
	if strings.Contains(res.Plan, "MergeJoin") {
		t.Fatalf("merge join chosen over index lookup:\n%s", res.Plan)
	}
}

func TestMergeJoinDuplicateKeysBothSides(t *testing.T) {
	db, _ := store.Open("")
	t.Cleanup(func() { db.Close() })
	a, _ := db.CreateTable("a", store.MustSchema(
		store.Column{Name: "k", Kind: store.KindInt},
		store.Column{Name: "i", Kind: store.KindInt},
	))
	bt, _ := db.CreateTable("b", store.MustSchema(
		store.Column{Name: "k", Kind: store.KindInt},
		store.Column{Name: "j", Kind: store.KindInt},
	))
	// Key 5 appears 3 times left, 4 times right → 12 output rows.
	for i := 0; i < 3; i++ {
		a.Insert(store.Row{store.IntValue(5), store.IntValue(int64(i))})
	}
	for j := 0; j < 4; j++ {
		bt.Insert(store.Row{store.IntValue(5), store.IntValue(int64(j))})
	}
	// Non-matching keys around it.
	a.Insert(store.Row{store.IntValue(1), store.IntValue(99)})
	bt.Insert(store.Row{store.IntValue(9), store.IntValue(99)})
	a.CreateIndex("k", store.IndexBTree)
	bt.CreateIndex("k", store.IndexBTree)
	cat := NewDBCatalog(db, nil)
	res := runQ(t, cat, DefaultOptions(), "SELECT x.i, y.j FROM a x JOIN b y ON x.k = y.k")
	if len(res.Rows) != 12 {
		t.Fatalf("duplicate-key block join = %d rows, want 12", len(res.Rows))
	}
}
