package query

import (
	"drugtree/internal/store"
)

// buildAgg lowers an AggNode to a hash-aggregation operator. With
// Parallelism > 1 the operator aggregates per-worker partials over
// contiguous input chunks and merges them in chunk order, which
// reproduces the serial first-seen group order exactly.
func buildAgg(n *AggNode, ec *execCtx, depth int) (iterator, error) {
	if it, ok := tryOverlayRead(n, ec, depth); ok {
		return it, nil
	}
	env := ec.env(n.Input.Schema())
	groups := make([]*boundExpr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		be, err := bind(g, env)
		if err != nil {
			return nil, err
		}
		groups[i] = be
	}
	args := make([]*boundExpr, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		be, err := bind(a.Arg, env)
		if err != nil {
			return nil, err
		}
		args[i] = be
	}
	op := ec.note(depth, "%s", n.describe())
	in, err := buildIterator(n.Input, ec, depth+1)
	if err != nil {
		return nil, err
	}
	return &aggIter{in: in, groups: groups, aggs: n.Aggs, args: args, ec: ec, op: op}, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sum   float64
	min   store.Value
	max   store.Value
	seen  bool
}

func (s *aggState) add(fn AggFunc, v store.Value) {
	if v.IsNull() {
		return
	}
	s.count++
	if v.Numeric() {
		s.sum += v.AsFloat()
	}
	if !s.seen {
		s.min, s.max = v, v
		s.seen = true
		return
	}
	if store.Compare(v, s.min) < 0 {
		s.min = v
	}
	if store.Compare(v, s.max) > 0 {
		s.max = v
	}
}

// merge folds another partial state into s (plain aggregates only;
// DISTINCT partials replay value-by-value through distinctSet).
func (s *aggState) merge(o *aggState) {
	s.count += o.count
	s.sum += o.sum
	if !o.seen {
		return
	}
	if !s.seen {
		s.min, s.max, s.seen = o.min, o.max, true
		return
	}
	if store.Compare(o.min, s.min) < 0 {
		s.min = o.min
	}
	if store.Compare(o.max, s.max) > 0 {
		s.max = o.max
	}
}

func (s *aggState) result(fn AggFunc) store.Value {
	switch fn {
	case AggCount:
		return store.IntValue(s.count)
	case AggSum:
		if s.count == 0 {
			return store.NullValue()
		}
		return store.FloatValue(s.sum)
	case AggAvg:
		if s.count == 0 {
			return store.NullValue()
		}
		return store.FloatValue(s.sum / float64(s.count))
	case AggMin:
		if !s.seen {
			return store.NullValue()
		}
		return s.min
	case AggMax:
		if !s.seen {
			return store.NullValue()
		}
		return s.max
	}
	return store.NullValue()
}

// distinctSet dedups a DISTINCT aggregate's inputs by value hash,
// remembering values in first-seen order so partial sets merge with
// the same semantics the serial accumulation has.
type distinctSet struct {
	seen map[uint64]struct{}
	vals []store.Value
}

func newDistinctSet() *distinctSet {
	return &distinctSet{seen: make(map[uint64]struct{})}
}

// insert reports whether v's hash was new.
func (d *distinctSet) insert(v store.Value) bool {
	h := v.Hash()
	if _, ok := d.seen[h]; ok {
		return false
	}
	d.seen[h] = struct{}{}
	d.vals = append(d.vals, v)
	return true
}

// groupEntry pairs the group's key values with per-aggregate states.
type groupEntry struct {
	keys   []store.Value
	states []aggState
	stars  int64
	// distinct[i] dedups inputs for DISTINCT aggregates; nil for
	// plain aggregates.
	distinct []*distinctSet
}

// aggTable is one (partial or final) aggregation hash table with
// deterministic first-seen group order.
type aggTable struct {
	groups []*boundExpr
	aggs   []*AggExpr
	args   []*boundExpr
	table  map[string]*groupEntry
	order  []string
}

func newAggTable(groups []*boundExpr, aggs []*AggExpr, args []*boundExpr) *aggTable {
	return &aggTable{groups: groups, aggs: aggs, args: args, table: make(map[string]*groupEntry)}
}

// add accumulates one input row.
func (t *aggTable) add(r store.Row) error {
	keys := make([]store.Value, len(t.groups))
	for i, g := range t.groups {
		v, err := g.eval(r)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	argv := make([]store.Value, len(t.aggs))
	for i, agg := range t.aggs {
		if agg.Star {
			continue
		}
		v, err := t.args[i].eval(r)
		if err != nil {
			return err
		}
		argv[i] = v
	}
	t.addValues(keys, argv)
	return nil
}

// addValues accumulates one input row whose group keys and aggregate
// arguments are already evaluated — the vectorized path batch-evaluates
// both and feeds them here, so grouping, DISTINCT, and merge semantics
// stay shared between engines. keys is retained by the table on first
// sight of a group; callers must pass a fresh slice per row. argv
// entries for star aggregates are ignored.
func (t *aggTable) addValues(keys []store.Value, argv []store.Value) {
	keyBuf := make([]byte, 0, 32)
	for _, v := range keys {
		keyBuf = store.AppendValue(keyBuf, v)
	}
	k := string(keyBuf)
	e, found := t.table[k]
	if !found {
		e = &groupEntry{
			keys:     keys,
			states:   make([]aggState, len(t.aggs)),
			distinct: make([]*distinctSet, len(t.aggs)),
		}
		for i, agg := range t.aggs {
			if agg.Distinct {
				e.distinct[i] = newDistinctSet()
			}
		}
		t.table[k] = e
		t.order = append(t.order, k)
	}
	for i, agg := range t.aggs {
		if agg.Star {
			e.stars++
			continue
		}
		v := argv[i]
		if agg.Distinct {
			if v.IsNull() || !e.distinct[i].insert(v) {
				continue
			}
		}
		e.states[i].add(agg.Func, v)
	}
}

// merge folds another partial table into t. Partials built over
// contiguous input chunks merged in chunk order reproduce the global
// first-seen group order: every row of chunk w precedes every row of
// chunk w+1 in the original input.
func (t *aggTable) merge(o *aggTable) {
	for _, k := range o.order {
		oe := o.table[k]
		e, found := t.table[k]
		if !found {
			t.table[k] = oe
			t.order = append(t.order, k)
			continue
		}
		e.stars += oe.stars
		for i, agg := range t.aggs {
			if agg.Star {
				continue
			}
			if agg.Distinct {
				// Replay the other partial's distinct values in
				// first-seen order; cross-chunk duplicates drop out.
				for _, v := range oe.distinct[i].vals {
					if e.distinct[i].insert(v) {
						e.states[i].add(agg.Func, v)
					}
				}
				continue
			}
			e.states[i].merge(&oe.states[i])
		}
	}
}

// rows renders the final one-row-per-group output.
func (t *aggTable) rows() []store.Row {
	out := make([]store.Row, 0, len(t.order))
	for _, k := range t.order {
		e := t.table[k]
		row := make(store.Row, 0, len(e.keys)+len(t.aggs))
		row = append(row, e.keys...)
		for i, agg := range t.aggs {
			if agg.Star {
				row = append(row, store.IntValue(e.stars))
				continue
			}
			row = append(row, e.states[i].result(agg.Func))
		}
		out = append(out, row)
	}
	return out
}

// aggIter performs hash aggregation: it drains its input on first
// Next, then streams one row per group (group keys, then aggregates).
type aggIter struct {
	in     iterator
	groups []*boundExpr
	aggs   []*AggExpr
	args   []*boundExpr
	ec     *execCtx

	out []store.Row
	pos int
	run bool
	op  *OpStats
}

func (a *aggIter) Next() (store.Row, bool, error) {
	if !a.run {
		if err := a.drain(); err != nil {
			return nil, false, err
		}
		a.run = true
	}
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	a.op.addOut(1)
	return r, true, nil
}

func (a *aggIter) drain() error {
	var final *aggTable
	if a.ec.para > 1 {
		t, err := a.drainParallel()
		if err != nil {
			return err
		}
		final = t
	} else {
		final = newAggTable(a.groups, a.aggs, a.args)
		cancel := canceller{ctx: a.ec.ctx}
		for {
			if err := cancel.check(); err != nil {
				return err
			}
			r, ok, err := a.in.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			a.op.addIn(1)
			if err := final.add(r); err != nil {
				return err
			}
		}
	}
	// A global aggregate over an empty input still yields one row.
	if len(a.groups) == 0 && len(final.order) == 0 {
		final.table[""] = &groupEntry{states: make([]aggState, len(a.aggs))}
		final.order = append(final.order, "")
	}
	a.out = final.rows()
	return nil
}

// drainParallel materializes the input and aggregates contiguous
// chunks into per-worker partial tables, merged in chunk order.
func (a *aggIter) drainParallel() (*aggTable, error) {
	rows, err := drainAll(a.ec.ctx, a.in)
	if err != nil {
		return nil, err
	}
	a.op.addIn(int64(len(rows)))
	if len(rows) < 2*morselSize {
		// Partial tables would cost more than they save.
		t := newAggTable(a.groups, a.aggs, a.args)
		cancel := canceller{ctx: a.ec.ctx}
		for _, r := range rows {
			if err := cancel.check(); err != nil {
				return nil, err
			}
			if err := t.add(r); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	chunks := splitChunks(len(rows), a.ec.para)
	partials := make([]*aggTable, len(chunks))
	err = runChunks(a.ec.ctx, chunks, func(w int, r morselRange) error {
		cancel := canceller{ctx: a.ec.ctx}
		part := newAggTable(a.groups, a.aggs, a.args)
		for _, row := range rows[r.lo:r.hi] {
			if err := cancel.check(); err != nil {
				return err
			}
			if err := part.add(row); err != nil {
				return err
			}
		}
		partials[w] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	final := partials[0]
	for _, p := range partials[1:] {
		final.merge(p)
	}
	return final, nil
}
