package query

import (
	"drugtree/internal/store"
)

// buildAgg lowers an AggNode to a hash-aggregation operator.
func buildAgg(n *AggNode, ctx *execCtx, depth int) (iterator, error) {
	env := bindEnv{schema: n.Input.Schema(), cat: ctx.cat, tree: ctx.cat.Tree(), opts: ctx.opts}
	groups := make([]*boundExpr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		be, err := bind(g, env)
		if err != nil {
			return nil, err
		}
		groups[i] = be
	}
	args := make([]*boundExpr, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Star {
			continue
		}
		be, err := bind(a.Arg, env)
		if err != nil {
			return nil, err
		}
		args[i] = be
	}
	ctx.note(depth, "%s", n.describe())
	in, err := buildIterator(n.Input, ctx, depth+1)
	if err != nil {
		return nil, err
	}
	return &aggIter{in: in, groups: groups, aggs: n.Aggs, args: args}, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sum   float64
	min   store.Value
	max   store.Value
	seen  bool
}

func (s *aggState) add(fn AggFunc, v store.Value) {
	if v.IsNull() {
		return
	}
	s.count++
	if v.Numeric() {
		s.sum += v.AsFloat()
	}
	if !s.seen {
		s.min, s.max = v, v
		s.seen = true
		return
	}
	if store.Compare(v, s.min) < 0 {
		s.min = v
	}
	if store.Compare(v, s.max) > 0 {
		s.max = v
	}
}

func (s *aggState) result(fn AggFunc) store.Value {
	switch fn {
	case AggCount:
		return store.IntValue(s.count)
	case AggSum:
		if s.count == 0 {
			return store.NullValue()
		}
		return store.FloatValue(s.sum)
	case AggAvg:
		if s.count == 0 {
			return store.NullValue()
		}
		return store.FloatValue(s.sum / float64(s.count))
	case AggMin:
		if !s.seen {
			return store.NullValue()
		}
		return s.min
	case AggMax:
		if !s.seen {
			return store.NullValue()
		}
		return s.max
	}
	return store.NullValue()
}

// aggIter performs hash aggregation: it drains its input on first
// Next, then streams one row per group (group keys, then aggregates).
type aggIter struct {
	in     iterator
	groups []*boundExpr
	aggs   []*AggExpr
	args   []*boundExpr

	out []store.Row
	pos int
	run bool
}

// groupEntry pairs the group's key values with per-aggregate states.
type groupEntry struct {
	keys   []store.Value
	states []aggState
	stars  int64
	// distinct[i] tracks seen value hashes for COUNT(DISTINCT ...)
	// aggregates; nil for plain aggregates.
	distinct []map[uint64]struct{}
}

func (a *aggIter) Next() (store.Row, bool, error) {
	if !a.run {
		if err := a.drain(); err != nil {
			return nil, false, err
		}
		a.run = true
	}
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	r := a.out[a.pos]
	a.pos++
	return r, true, nil
}

func (a *aggIter) drain() error {
	table := make(map[string]*groupEntry)
	var order []string // deterministic output: first-seen order
	for {
		r, ok, err := a.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		keys := make([]store.Value, len(a.groups))
		keyBuf := make([]byte, 0, 32)
		for i, g := range a.groups {
			v, err := g.eval(r)
			if err != nil {
				return err
			}
			keys[i] = v
			keyBuf = store.AppendValue(keyBuf, v)
		}
		k := string(keyBuf)
		e, found := table[k]
		if !found {
			e = &groupEntry{
				keys:     keys,
				states:   make([]aggState, len(a.aggs)),
				distinct: make([]map[uint64]struct{}, len(a.aggs)),
			}
			for i, agg := range a.aggs {
				if agg.Distinct {
					e.distinct[i] = make(map[uint64]struct{})
				}
			}
			table[k] = e
			order = append(order, k)
		}
		for i, agg := range a.aggs {
			if agg.Star {
				e.stars++
				continue
			}
			v, err := a.args[i].eval(r)
			if err != nil {
				return err
			}
			if agg.Distinct {
				if v.IsNull() {
					continue
				}
				h := v.Hash()
				if _, seen := e.distinct[i][h]; seen {
					continue
				}
				e.distinct[i][h] = struct{}{}
			}
			e.states[i].add(agg.Func, v)
		}
	}
	// A global aggregate over an empty input still yields one row.
	if len(a.groups) == 0 && len(order) == 0 {
		e := &groupEntry{states: make([]aggState, len(a.aggs))}
		table[""] = e
		order = append(order, "")
	}
	for _, k := range order {
		e := table[k]
		row := make(store.Row, 0, len(e.keys)+len(a.aggs))
		row = append(row, e.keys...)
		for i, agg := range a.aggs {
			if agg.Star {
				row = append(row, store.IntValue(e.stars))
				continue
			}
			row = append(row, e.states[i].result(agg.Func))
		}
		a.out = append(a.out, row)
	}
	return nil
}
