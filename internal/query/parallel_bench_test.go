package query

import (
	"context"
	"fmt"
	"runtime"
	"testing"
)

// Parallel executor benchmarks. Worker counts 1 and 2 are fixed so
// the serial-vs-parallel ratio is comparable across machines; the
// GOMAXPROCS variant shows what the default Options deliver on the
// machine at hand. On a single-core runner all variants degenerate to
// the serial path (runMorsels caps workers at 1 morsel consumer per
// CPU only logically — the goroutines still exist but contend), so
// the speedup acceptance belongs on a multi-core box.

func benchParallelisms() []int {
	out := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		out = append(out, p)
	}
	return out
}

func BenchmarkParallelScan(b *testing.B) {
	cat := datagenCatalog(b, 5)
	// Residual-heavy scan over the multi-morsel activities table.
	const q = "SELECT protein_id, affinity FROM activities WHERE affinity > 5.5 AND ligand_id != 'LIG0000'"
	for _, p := range benchParallelisms() {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			opts := DefaultOptions()
			opts.UseIndexes = false // force the morsel seq-scan path
			opts.Parallelism = p
			eng := NewEngine(cat, opts)
			if _, err := eng.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelJoin(b *testing.B) {
	cat := datagenCatalog(b, 5)
	// Self-join on protein_id: thousands of build rows, fat probe.
	const q = `SELECT a.ligand_id, b.ligand_id FROM activities a
		JOIN activities b ON a.protein_id = b.protein_id
		WHERE a.affinity > b.affinity`
	for _, p := range benchParallelisms() {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Parallelism = p
			eng := NewEngine(cat, opts)
			if _, err := eng.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelAggregate(b *testing.B) {
	cat := datagenCatalog(b, 5)
	const q = "SELECT protein_id, COUNT(*), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities GROUP BY protein_id"
	for _, p := range benchParallelisms() {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			opts := DefaultOptions()
			opts.UseIndexes = false
			opts.Parallelism = p
			eng := NewEngine(cat, opts)
			if _, err := eng.Query(context.Background(), q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
