package query

import (
	"context"
	"strings"
	"testing"

	"drugtree/internal/store"
)

func TestFoldConstantsExpressions(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{
			&BinaryExpr{Op: OpAdd, L: &Literal{Val: store.IntValue(2)}, R: &Literal{Val: store.IntValue(3)}},
			"5",
		},
		{
			&BinaryExpr{Op: OpLt, L: &Literal{Val: store.IntValue(1)}, R: &Literal{Val: store.IntValue(2)}},
			"true",
		},
		{
			&BinaryExpr{Op: OpAnd, L: &Literal{Val: store.BoolValue(true)}, R: &ColumnRef{Name: "x"}},
			"x",
		},
		{
			&BinaryExpr{Op: OpAnd, L: &ColumnRef{Name: "x"}, R: &Literal{Val: store.BoolValue(false)}},
			"false",
		},
		{
			&BinaryExpr{Op: OpOr, L: &Literal{Val: store.BoolValue(false)}, R: &ColumnRef{Name: "x"}},
			"x",
		},
		{
			&BinaryExpr{Op: OpOr, L: &ColumnRef{Name: "x"}, R: &Literal{Val: store.BoolValue(true)}},
			"true",
		},
		{
			&NotExpr{E: &Literal{Val: store.BoolValue(false)}},
			"true",
		},
		{
			&NegExpr{E: &Literal{Val: store.IntValue(7)}},
			"-7",
		},
		{
			// Nested: (1+1) = 2 folds all the way to true.
			&BinaryExpr{
				Op: OpEq,
				L:  &BinaryExpr{Op: OpAdd, L: &Literal{Val: store.IntValue(1)}, R: &Literal{Val: store.IntValue(1)}},
				R:  &Literal{Val: store.IntValue(2)},
			},
			"true",
		},
		{
			// Column comparisons stay put.
			&BinaryExpr{Op: OpEq, L: &ColumnRef{Name: "a"}, R: &ColumnRef{Name: "b"}},
			"(a = b)",
		},
	}
	for _, c := range cases {
		if got := foldConstants(c.in).String(); got != c.want {
			t.Errorf("fold(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestFoldDropsTrueFilter(t *testing.T) {
	cat := testCatalog(t)
	res := runQ(t, cat, DefaultOptions(), "EXPLAIN SELECT accession FROM proteins WHERE 1 = 1")
	if strings.Contains(res.Plan, "Filter") || strings.Contains(res.Plan, "filter") {
		t.Fatalf("tautology survived folding:\n%s", res.Plan)
	}
	// And execution agrees with the unfiltered table.
	all := runQ(t, cat, DefaultOptions(), "SELECT accession FROM proteins WHERE 1 = 1")
	if len(all.Rows) != 60 {
		t.Fatalf("rows = %d", len(all.Rows))
	}
	// A contradiction yields zero rows (kept as a filter).
	none := runQ(t, cat, DefaultOptions(), "SELECT accession FROM proteins WHERE 1 = 2")
	if len(none.Rows) != 0 {
		t.Fatalf("contradiction returned %d rows", len(none.Rows))
	}
}

func TestPruneColumnsNarrowsJoins(t *testing.T) {
	cat := testCatalog(t)
	q := `EXPLAIN SELECT p.accession FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		WHERE a.affinity > 20`
	res := runQ(t, cat, DefaultOptions(), q)
	// The proteins side must be projected down before the join:
	// family/length are dead.
	if !strings.Contains(res.Plan, "Project p.accession") {
		t.Fatalf("no pruning projection in plan:\n%s", res.Plan)
	}
	// Correctness under pruning.
	q2 := `SELECT p.accession FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		WHERE a.affinity >= 4`
	pruned := runQ(t, cat, DefaultOptions(), q2)
	noPrune := DefaultOptions()
	noPrune.PruneColumns = false
	plain := runQ(t, cat, noPrune, q2)
	if !sameRowMultiset(pruned.Rows, plain.Rows) {
		t.Fatalf("pruning changed results: %d vs %d rows", len(pruned.Rows), len(plain.Rows))
	}
}

func TestPruneKeepsJoinKeys(t *testing.T) {
	cat := testCatalog(t)
	// Select nothing from activities: its scan still needs the join
	// key and the filter column.
	q := `SELECT p.family FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		WHERE a.affinity >= 4 AND p.family = 'FAM1'`
	res := runQ(t, cat, DefaultOptions(), q)
	if len(res.Rows) == 0 {
		t.Fatal("no rows; join keys were pruned away")
	}
	for _, r := range res.Rows {
		if r[0].S != "FAM1" {
			t.Fatalf("filter leak: %v", r)
		}
	}
}

func TestPruneWithAggregation(t *testing.T) {
	cat := testCatalog(t)
	q := `SELECT p.family, COUNT(*) AS n, AVG(a.affinity) FROM proteins p
		JOIN activities a ON p.accession = a.protein_id
		GROUP BY p.family ORDER BY p.family`
	pruned := runQ(t, cat, DefaultOptions(), q)
	noPrune := DefaultOptions()
	noPrune.PruneColumns = false
	plain := runQ(t, cat, noPrune, q)
	if len(pruned.Rows) != len(plain.Rows) {
		t.Fatalf("group counts differ: %d vs %d", len(pruned.Rows), len(plain.Rows))
	}
	for i := range pruned.Rows {
		if !sameRowMultiset([]store.Row{pruned.Rows[i]}, []store.Row{plain.Rows[i]}) {
			t.Fatalf("row %d differs: %v vs %v", i, pruned.Rows[i], plain.Rows[i])
		}
	}
}

func TestFuzzWithAllPassesIndividuallyToggled(t *testing.T) {
	// Every single-pass-off configuration must agree with the naive
	// engine over a query corpus — catches pass-interaction bugs.
	cat := testCatalog(t)
	naive := NewEngine(cat, NaiveOptions())
	configs := []Options{}
	base := DefaultOptions()
	for i := 0; i < 6; i++ {
		o := base
		switch i {
		case 0:
			o.SubtreeRewrite = false
		case 1:
			o.Pushdown = false
		case 2:
			o.JoinReorder = false
		case 3:
			o.UseIndexes = false
		case 4:
			o.ConstantFold = false
		case 5:
			o.PruneColumns = false
		}
		configs = append(configs, o)
	}
	queries := []string{
		"SELECT accession FROM proteins WHERE family = 'FAM1' AND length > 120",
		`SELECT p.accession, l.weight FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id
		 JOIN ligands l ON a.ligand_id = l.ligand_id
		 WHERE a.affinity > 6 AND p.family != 'FAM0'`,
		"SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'FAM1') AND is_leaf = TRUE",
		"SELECT family, COUNT(*) FROM proteins GROUP BY family HAVING COUNT(*) > 1",
	}
	for _, q := range queries {
		want, err := naive.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		for ci, o := range configs {
			got, err := NewEngine(cat, o).Query(context.Background(), q)
			if err != nil {
				t.Fatalf("config %d %q: %v", ci, q, err)
			}
			if !sameRowMultiset(want.Rows, got.Rows) {
				t.Fatalf("config %d disagrees on %q: %d vs %d rows", ci, q, len(want.Rows), len(got.Rows))
			}
		}
	}
}
