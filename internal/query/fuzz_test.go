package query

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// queryGen generates random well-formed DTQL over the test catalog
// schema. It is the workhorse of TestFuzzNaiveOptimizedEquivalence:
// any query it emits must produce identical result multisets under
// the naive and fully optimized engines.
type queryGen struct {
	rng *rand.Rand
	// strLits overrides the string literal pool (the differential
	// harness points it at the datagen catalog's ID universe).
	strLits []string
}

// column universe of the test catalog, per table.
var fuzzTables = map[string][]struct {
	name string
	kind string // "int", "float", "string", "bool"
}{
	"proteins": {
		{"accession", "string"}, {"family", "string"}, {"length", "int"},
	},
	"activities": {
		{"protein_id", "string"}, {"ligand_id", "string"}, {"affinity", "float"},
	},
	"ligands": {
		{"ligand_id", "string"}, {"weight", "float"},
	},
	"tree_nodes": {
		{"pre", "int"}, {"name", "string"}, {"is_leaf", "bool"},
	},
}

func (g *queryGen) literal(kind string) string {
	switch kind {
	case "int":
		return fmt.Sprint(g.rng.Intn(200))
	case "float":
		return fmt.Sprintf("%.1f", g.rng.Float64()*10)
	case "string":
		opts := []string{"'FAM0'", "'FAM1'", "'FAM2'", "'P001'", "'P010'", "'L03'", "'zzz'"}
		if g.strLits != nil {
			opts = g.strLits
		}
		return opts[g.rng.Intn(len(opts))]
	case "bool":
		if g.rng.Intn(2) == 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "0"
}

func (g *queryGen) predicate(alias, table string, depth int) string {
	cols := fuzzTables[table]
	c := cols[g.rng.Intn(len(cols))]
	ref := alias + "." + c.name
	if depth > 0 && g.rng.Float64() < 0.4 {
		op := "AND"
		if g.rng.Intn(2) == 0 {
			op = "OR"
		}
		l := g.predicate(alias, table, depth-1)
		r := g.predicate(alias, table, depth-1)
		s := fmt.Sprintf("(%s %s %s)", l, op, r)
		if g.rng.Float64() < 0.2 {
			s = "NOT " + s
		}
		return s
	}
	switch c.kind {
	case "bool":
		return fmt.Sprintf("%s = %s", ref, g.literal("bool"))
	case "string":
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%s = %s", ref, g.literal("string"))
		case 1:
			return fmt.Sprintf("%s != %s", ref, g.literal("string"))
		case 2:
			return fmt.Sprintf("%s LIKE 'P0%%'", ref)
		case 3:
			// Uncorrelated IN-subquery over a compatible ID domain.
			subs := []string{
				"SELECT protein_id FROM activities WHERE affinity > 5",
				"SELECT accession FROM proteins WHERE length < 140",
				"SELECT ligand_id FROM ligands WHERE weight > 120",
			}
			return fmt.Sprintf("%s IN (%s)", ref, subs[g.rng.Intn(len(subs))])
		default:
			return fmt.Sprintf("%s IN (%s, %s)", ref, g.literal("string"), g.literal("string"))
		}
	default:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		op := ops[g.rng.Intn(len(ops))]
		if g.rng.Float64() < 0.25 {
			lo := g.literal(c.kind)
			hi := g.literal(c.kind)
			return fmt.Sprintf("%s BETWEEN %s AND %s", ref, lo, hi)
		}
		return fmt.Sprintf("%s %s %s", ref, op, g.literal(c.kind))
	}
}

// generate emits one random query (and whether it is order-sensitive).
func (g *queryGen) generate() (string, bool) {
	type rel struct{ table, alias string }
	shapes := [][]rel{
		{{"proteins", "p"}},
		{{"activities", "a"}},
		{{"tree_nodes", "t"}},
		{{"proteins", "p"}, {"activities", "a"}},
		{{"proteins", "p"}, {"activities", "a"}, {"ligands", "l"}},
		{{"tree_nodes", "t"}, {"activities", "a"}},
	}
	joinConds := map[string]string{
		"p/a": "p.accession = a.protein_id",
		"a/l": "a.ligand_id = l.ligand_id",
		"t/a": "t.name = a.protein_id",
	}
	shape := shapes[g.rng.Intn(len(shapes))]

	var b strings.Builder
	b.WriteString("SELECT ")
	// Select one or two concrete columns from the participating
	// relations (no * to keep column sets stable across join orders).
	var selCols []string
	for _, r := range shape {
		cols := fuzzTables[r.table]
		c := cols[g.rng.Intn(len(cols))]
		selCols = append(selCols, r.alias+"."+c.name)
	}
	b.WriteString(strings.Join(selCols, ", "))
	b.WriteString(" FROM " + shape[0].table + " " + shape[0].alias)
	for i := 1; i < len(shape); i++ {
		key := shape[i-1].alias + "/" + shape[i].alias
		cond, ok := joinConds[key]
		if !ok {
			cond = joinConds[shape[i].alias+"/"+shape[i-1].alias]
		}
		fmt.Fprintf(&b, " JOIN %s %s ON %s", shape[i].table, shape[i].alias, cond)
	}
	if g.rng.Float64() < 0.8 {
		var preds []string
		for _, r := range shape {
			if g.rng.Float64() < 0.7 {
				preds = append(preds, g.predicate(r.alias, r.table, 1))
			}
		}
		if len(preds) > 0 {
			b.WriteString(" WHERE " + strings.Join(preds, " AND "))
		}
	}
	ordered := false
	if g.rng.Float64() < 0.3 {
		// Order by the first selected column with LIMIT; ties make
		// exact row-order comparison unsound, so the caller treats
		// ordered queries as multisets too and only checks the sort
		// key column sequence.
		fmt.Fprintf(&b, " ORDER BY %s", selCols[0])
		if g.rng.Intn(2) == 0 {
			b.WriteString(" DESC")
		}
		fmt.Fprintf(&b, " LIMIT %d", 1+g.rng.Intn(20))
		ordered = true
	}
	return b.String(), ordered
}

func TestFuzzNaiveOptimizedEquivalence(t *testing.T) {
	cat := testCatalog(t)
	naive := NewEngine(cat, NaiveOptions())
	opt := NewEngine(cat, DefaultOptions())
	g := &queryGen{rng: rand.New(rand.NewSource(2024))}
	const trials = 300
	for i := 0; i < trials; i++ {
		q, ordered := g.generate()
		rn, err := naive.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d (%s): naive: %v", i, q, err)
		}
		ro, err := opt.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d (%s): optimized: %v", i, q, err)
		}
		if ordered {
			// Compare result sizes and the sorted key column values
			// (ties may legitimately reorder whole rows).
			if len(rn.Rows) != len(ro.Rows) {
				t.Fatalf("query %d (%s): %d vs %d rows", i, q, len(rn.Rows), len(ro.Rows))
			}
			for j := range rn.Rows {
				a, b := rn.Rows[j][0], ro.Rows[j][0]
				if a.K != b.K || a.String() != b.String() {
					t.Fatalf("query %d (%s): sort key %d differs: %v vs %v", i, q, j, a, b)
				}
			}
			continue
		}
		if !sameRowMultiset(rn.Rows, ro.Rows) {
			t.Fatalf("query %d (%s): result multisets differ (naive %d rows, optimized %d)",
				i, q, len(rn.Rows), len(ro.Rows))
		}
	}
}

func TestFuzzGeneratedQueriesParse(t *testing.T) {
	g := &queryGen{rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 200; i++ {
		q, _ := g.generate()
		if _, err := Parse(q); err != nil {
			t.Fatalf("generated query does not parse: %s: %v", q, err)
		}
	}
}
