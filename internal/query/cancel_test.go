package query

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The cancellation contract: a context cancelled before or during
// execution surfaces context.Canceled promptly, and no executor
// goroutine outlives the Query call (workers are joined before any
// operator returns).

// waitGoroutines polls until the goroutine count drops back to at
// most baseline+slack, failing after the deadline. Polling is needed
// because runtime bookkeeping goroutines exit asynchronously.
func waitGoroutines(t *testing.T, baseline int, deadline time.Duration) {
	t.Helper()
	const slack = 2
	start := time.Now()
	for {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		if time.Since(start) > deadline {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelBeforeRun(t *testing.T) {
	cat := testCatalog(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, para := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Parallelism = para
		_, err := NewEngine(cat, opts).Query(ctx, "SELECT * FROM proteins")
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", para, err)
		}
	}
}

// slowQueries are heavy enough (seconds uncancelled) that a cancel
// landing mid-flight is overwhelmingly likely; the budget asserts the
// abort actually cut execution short.
var slowCancelQueries = []struct {
	name string
	q    string
}{
	// Mid-scan: a fat cross-ish nested-loop join driven by scans.
	{"mid-join-nested", `SELECT COUNT(*) FROM activities a JOIN activities b ON a.affinity < b.affinity`},
	// Mid-hash-join + aggregation over the joined stream.
	{"mid-join-hash", `SELECT a.ligand_id, COUNT(*) FROM activities a
		JOIN activities b ON a.protein_id = b.protein_id
		JOIN activities c ON b.protein_id = c.protein_id
		GROUP BY a.ligand_id`},
}

func TestCancelMidQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cancellation corpus")
	}
	cat := datagenCatalog(t, 3)
	for _, para := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Parallelism = para
		eng := NewEngine(cat, opts)
		for _, tc := range slowCancelQueries {
			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(20*time.Millisecond, cancel)
			start := time.Now()
			_, err := eng.Query(ctx, tc.q)
			elapsed := time.Since(start)
			timer.Stop()
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s (parallelism %d): err = %v, want context.Canceled", tc.name, para, err)
			}
			// Uncancelled these queries take seconds; a prompt abort
			// lands well under this generous CI-safe budget.
			if elapsed > 3*time.Second {
				t.Fatalf("%s (parallelism %d): cancellation took %v", tc.name, para, elapsed)
			}
			waitGoroutines(t, baseline, 2*time.Second)
		}
	}
}

// countdownCtx cancels itself after its Done channel has been polled
// n times — a deterministic fuse that lands cancellation at an exact
// poll site, unlike timer-based cancel which lands wherever the
// scheduler happens to be.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	n    int
	ch   chan struct{}
	done bool
}

func newCountdownCtx(n int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), n: n, ch: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		c.n--
		if c.n <= 0 {
			close(c.ch)
			c.done = true
		}
	}
	return c.ch
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return context.Canceled
	}
	return nil
}

// TestCancelMidBatch sweeps a countdown fuse across every context
// poll site of the vectorized engine (batch operators poll once per
// batch), asserting each landing unwinds cleanly: context.Canceled,
// no partial result, no leaked goroutines. Fuses that outlast the
// query must instead produce the complete result.
func TestCancelMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cancellation sweep")
	}
	cat := datagenCatalog(t, 5)
	const q = `SELECT p.accession, a.ligand_id FROM proteins p
		JOIN activities a ON p.accession = a.protein_id WHERE a.affinity > 1`
	for _, para := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Parallelism = para
		eng := NewEngine(cat, opts)
		full, err := eng.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		cancelled := 0
		for n := 1; n <= 64; n++ {
			baseline := runtime.NumGoroutine()
			res, err := eng.Query(newCountdownCtx(n), q)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("parallelism %d, fuse %d: err = %v, want context.Canceled", para, n, err)
				}
				if res != nil {
					t.Fatalf("parallelism %d, fuse %d: partial result returned alongside error", para, n)
				}
				cancelled++
				waitGoroutines(t, baseline, 2*time.Second)
				continue
			}
			if len(res.Rows) != len(full.Rows) {
				t.Fatalf("parallelism %d, fuse %d: completed with %d rows, want %d",
					para, n, len(res.Rows), len(full.Rows))
			}
		}
		if cancelled == 0 {
			t.Fatalf("parallelism %d: no fuse landed mid-query", para)
		}
	}
}

// TestCancelDeadline covers the other common cancellation shape: a
// deadline expiring mid-flight surfaces context.DeadlineExceeded.
func TestCancelDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cancellation corpus")
	}
	cat := datagenCatalog(t, 3)
	opts := DefaultOptions()
	opts.Parallelism = 4
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := NewEngine(cat, opts).Query(ctx, slowCancelQueries[0].q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestNilContextRuns pins the compatibility contract: Run(nil, ...)
// behaves like context.Background().
func TestNilContextRuns(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := Parse("SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(cat, DefaultOptions()).Run(nil, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 60 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
