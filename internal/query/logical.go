package query

import (
	"fmt"
	"strings"

	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// Catalog supplies the planner with tables, statistics, and the
// phylogenetic tree backing WITHIN_SUBTREE.
type Catalog interface {
	// Table returns the named base table.
	Table(name string) (*store.Table, error)
	// Stats returns (possibly cached) statistics for the table.
	Stats(name string) (*store.TableStats, error)
	// Tree returns the current phylogenetic tree, or nil when the
	// catalog has none.
	Tree() *phylo.Tree
}

// LogicalPlan is a relational operator tree produced by the planner
// and transformed by the optimizer.
type LogicalPlan interface {
	Schema() *planSchema
	Children() []LogicalPlan
	// describe renders one line for EXPLAIN.
	describe() string
}

// ScanNode reads a base table. Conjuncts are predicates pushed into
// the scan; the physical planner chooses an access path from them.
type ScanNode struct {
	Table     string
	Alias     string
	schema    *planSchema
	Conjuncts []Expr
}

func (s *ScanNode) Schema() *planSchema     { return s.schema }
func (s *ScanNode) Children() []LogicalPlan { return nil }
func (s *ScanNode) describe() string {
	d := fmt.Sprintf("Scan %s", s.Table)
	if s.Alias != s.Table {
		d += " AS " + s.Alias
	}
	if len(s.Conjuncts) > 0 {
		parts := make([]string, len(s.Conjuncts))
		for i, c := range s.Conjuncts {
			parts[i] = c.String()
		}
		d += " [pushed: " + strings.Join(parts, " AND ") + "]"
	}
	return d
}

// FilterNode applies a predicate.
type FilterNode struct {
	Input LogicalPlan
	Pred  Expr
}

func (f *FilterNode) Schema() *planSchema     { return f.Input.Schema() }
func (f *FilterNode) Children() []LogicalPlan { return []LogicalPlan{f.Input} }
func (f *FilterNode) describe() string        { return fmt.Sprintf("Filter %s", f.Pred) }

// JoinNode is an inner join with an arbitrary ON condition; the
// physical planner extracts equi-pairs for hash/merge joins.
type JoinNode struct {
	Left, Right LogicalPlan
	Cond        Expr
	schema      *planSchema
}

func (j *JoinNode) Schema() *planSchema     { return j.schema }
func (j *JoinNode) Children() []LogicalPlan { return []LogicalPlan{j.Left, j.Right} }
func (j *JoinNode) describe() string        { return fmt.Sprintf("Join ON %s", j.Cond) }

// ProjectNode computes output expressions.
type ProjectNode struct {
	Input  LogicalPlan
	Exprs  []Expr
	Names  []string
	schema *planSchema
}

func (p *ProjectNode) Schema() *planSchema     { return p.schema }
func (p *ProjectNode) Children() []LogicalPlan { return []LogicalPlan{p.Input} }
func (p *ProjectNode) describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// AggNode groups and aggregates.
type AggNode struct {
	Input   LogicalPlan
	GroupBy []Expr
	Aggs    []*AggExpr
	Names   []string // output column names: groups then aggregates
	schema  *planSchema
}

func (a *AggNode) Schema() *planSchema     { return a.schema }
func (a *AggNode) Children() []LogicalPlan { return []LogicalPlan{a.Input} }
func (a *AggNode) describe() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, ag := range a.Aggs {
		parts = append(parts, ag.String())
	}
	return "Aggregate " + strings.Join(parts, ", ")
}

// SortNode orders rows.
type SortNode struct {
	Input LogicalPlan
	Keys  []OrderKey
}

func (s *SortNode) Schema() *planSchema     { return s.Input.Schema() }
func (s *SortNode) Children() []LogicalPlan { return []LogicalPlan{s.Input} }
func (s *SortNode) describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// LimitNode caps the row count.
type LimitNode struct {
	Input LogicalPlan
	N     int
}

func (l *LimitNode) Schema() *planSchema     { return l.Input.Schema() }
func (l *LimitNode) Children() []LogicalPlan { return []LogicalPlan{l.Input} }
func (l *LimitNode) describe() string        { return fmt.Sprintf("Limit %d", l.N) }

// ExplainPlan renders a logical plan as an indented tree.
func ExplainPlan(p LogicalPlan) string {
	var b strings.Builder
	var walk func(n LogicalPlan, depth int)
	walk = func(n LogicalPlan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}

// scanSchema builds the plan schema of a base table under an alias.
func scanSchema(t *store.Table, alias string) *planSchema {
	s := &planSchema{}
	for _, c := range t.Schema().Columns {
		s.cols = append(s.cols, planCol{Qualifier: alias, Name: c.Name, Kind: c.Kind})
	}
	return s
}

// BuildLogical translates a parsed statement into the initial
// (unoptimized) logical plan: scans joined in syntactic order, WHERE
// as one filter, then aggregation, projection, sort, limit.
func BuildLogical(stmt *SelectStmt, cat Catalog) (LogicalPlan, error) {
	// Base relation.
	seen := map[string]bool{}
	mkScan := func(ref TableRef) (*ScanNode, error) {
		t, err := cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		alias := ref.EffectiveAlias()
		if seen[alias] {
			return nil, fmt.Errorf("query: duplicate table alias %q", alias)
		}
		seen[alias] = true
		return &ScanNode{Table: ref.Name, Alias: alias, schema: scanSchema(t, alias)}, nil
	}
	plan, err := mkScan(stmt.From)
	if err != nil {
		return nil, err
	}
	var cur LogicalPlan = plan
	for _, j := range stmt.Joins {
		right, err := mkScan(j.Table)
		if err != nil {
			return nil, err
		}
		jn := &JoinNode{Left: cur, Right: right, Cond: j.On}
		jn.schema = cur.Schema().concat(right.Schema())
		// Validate the ON condition binds.
		if _, err := bind(j.On, bindEnv{schema: jn.schema, cat: cat, tree: cat.Tree(), validateOnly: true}); err != nil {
			return nil, fmt.Errorf("query: JOIN ON: %w", err)
		}
		cur = jn
	}
	if stmt.Where != nil {
		if containsAgg(stmt.Where) {
			return nil, fmt.Errorf("query: aggregates not allowed in WHERE")
		}
		if _, err := bind(stmt.Where, bindEnv{schema: cur.Schema(), cat: cat, tree: cat.Tree(), validateOnly: true}); err != nil {
			return nil, err
		}
		cur = &FilterNode{Input: cur, Pred: stmt.Where}
	}

	// Aggregation: triggered by GROUP BY or aggregate select items.
	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if stmt.Having != nil && !hasAgg {
		return nil, fmt.Errorf("query: HAVING requires GROUP BY or aggregates")
	}
	if hasAgg {
		cur, err = buildAggregate(stmt, cur, cat)
		if err != nil {
			return nil, err
		}
	} else {
		cur, err = buildProjection(stmt, cur, cat)
		if err != nil {
			return nil, err
		}
	}

	if len(stmt.Order) > 0 {
		cur, err = buildSort(stmt, cur, cat)
		if err != nil {
			return nil, err
		}
	}
	if stmt.Limit >= 0 {
		cur = &LimitNode{Input: cur, N: stmt.Limit}
	}
	return cur, nil
}

// buildSort places the SortNode. Keys that bind against the current
// output schema sort directly; keys referencing pruned base columns
// (ORDER BY length with SELECT accession) are carried through the
// projection as hidden columns, sorted on, and dropped by a final
// projection — the standard hidden-sort-column technique.
func buildSort(stmt *SelectStmt, cur LogicalPlan, cat Catalog) (LogicalPlan, error) {
	outEnv := bindEnv{schema: cur.Schema(), cat: cat, tree: cat.Tree(), validateOnly: true}
	// An order key that textually matches an output column (the
	// "ORDER BY COUNT(*)" case, where the aggregate became an output
	// column) is rewritten to a reference to that column.
	order := make([]OrderKey, len(stmt.Order))
	copy(order, stmt.Order)
	for i, k := range order {
		if _, err := bind(k.Expr, outEnv); err == nil {
			continue // resolves directly; leave it alone
		}
		rendered := k.Expr.String()
		for _, c := range cur.Schema().cols {
			if c.Name == rendered && c.Qualifier == "" {
				order[i].Expr = &ColumnRef{Name: rendered}
				break
			}
		}
	}
	stmt = &SelectStmt{
		Items: stmt.Items, From: stmt.From, Joins: stmt.Joins,
		Where: stmt.Where, GroupBy: stmt.GroupBy, Order: order,
		Limit: stmt.Limit, Explain: stmt.Explain, Analyze: stmt.Analyze,
	}
	allBind := true
	for _, k := range stmt.Order {
		if _, err := bind(k.Expr, outEnv); err != nil {
			allBind = false
			break
		}
	}
	if allBind {
		return &SortNode{Input: cur, Keys: stmt.Order}, nil
	}
	proj, ok := cur.(*ProjectNode)
	if !ok {
		// Aggregate output: keys must reference group keys or
		// aggregate aliases; re-run the binding to surface the error.
		for _, k := range stmt.Order {
			if _, err := bind(k.Expr, outEnv); err != nil {
				return nil, fmt.Errorf("query: ORDER BY: %w", err)
			}
		}
		return &SortNode{Input: cur, Keys: stmt.Order}, nil
	}
	inEnv := bindEnv{schema: proj.Input.Schema(), cat: cat, tree: cat.Tree(), validateOnly: true}
	extended := &ProjectNode{
		Input:  proj.Input,
		Exprs:  append([]Expr(nil), proj.Exprs...),
		Names:  append([]string(nil), proj.Names...),
		schema: &planSchema{cols: append([]planCol(nil), proj.schema.cols...)},
	}
	keys := make([]OrderKey, len(stmt.Order))
	hidden := 0
	for i, k := range stmt.Order {
		if _, err := bind(k.Expr, outEnv); err == nil {
			keys[i] = k
			continue
		}
		be, err := bind(k.Expr, inEnv)
		if err != nil {
			return nil, fmt.Errorf("query: ORDER BY: %w", err)
		}
		name := fmt.Sprintf("__sort_%d", i)
		extended.Exprs = append(extended.Exprs, k.Expr)
		extended.Names = append(extended.Names, name)
		extended.schema.cols = append(extended.schema.cols, planCol{Name: name, Kind: be.kind})
		keys[i] = OrderKey{Expr: &ColumnRef{Name: name}, Desc: k.Desc}
		hidden++
	}
	sorted := &SortNode{Input: extended, Keys: keys}
	// Drop the hidden columns.
	drop := &ProjectNode{
		Input:  sorted,
		schema: &planSchema{cols: append([]planCol(nil), proj.schema.cols...)},
	}
	for _, name := range proj.Names {
		drop.Exprs = append(drop.Exprs, &ColumnRef{Name: name})
		drop.Names = append(drop.Names, name)
	}
	return drop, nil
}

// buildProjection constructs the ProjectNode for a non-aggregate
// query, expanding `*`.
func buildProjection(stmt *SelectStmt, input LogicalPlan, cat Catalog) (LogicalPlan, error) {
	var exprs []Expr
	var names []string
	schema := &planSchema{}
	for _, it := range stmt.Items {
		if it.Star {
			for _, c := range input.Schema().cols {
				exprs = append(exprs, &ColumnRef{Qualifier: c.Qualifier, Name: c.Name})
				names = append(names, c.Name)
				schema.cols = append(schema.cols, planCol{Name: c.Name, Kind: c.Kind})
			}
			continue
		}
		be, err := bind(it.Expr, bindEnv{schema: input.Schema(), cat: cat, tree: cat.Tree(), validateOnly: true})
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		exprs = append(exprs, it.Expr)
		names = append(names, name)
		schema.cols = append(schema.cols, planCol{Name: name, Kind: be.kind})
	}
	return &ProjectNode{Input: input, Exprs: exprs, Names: names, schema: schema}, nil
}

// buildAggregate constructs the AggNode (and a trailing projection
// when select items mix group keys and aggregates in expressions).
func buildAggregate(stmt *SelectStmt, input LogicalPlan, cat Catalog) (LogicalPlan, error) {
	env := bindEnv{schema: input.Schema(), cat: cat, tree: cat.Tree(), validateOnly: true}
	// Validate group-by expressions.
	for _, g := range stmt.GroupBy {
		if containsAgg(g) {
			return nil, fmt.Errorf("query: aggregates not allowed in GROUP BY")
		}
		if _, err := bind(g, env); err != nil {
			return nil, err
		}
	}
	node := &AggNode{Input: input, GroupBy: stmt.GroupBy}
	schema := &planSchema{}
	uniqueName := func(base string) string {
		name := base
		n := 2
		for {
			dup := false
			for _, existing := range node.Names {
				if existing == name {
					dup = true
					break
				}
			}
			if !dup {
				return name
			}
			name = fmt.Sprintf("%s_%d", base, n)
			n++
		}
	}
	for _, g := range stmt.GroupBy {
		be, _ := bind(g, env)
		name := uniqueName(g.String())
		node.Names = append(node.Names, name)
		schema.cols = append(schema.cols, planCol{Name: name, Kind: be.kind})
	}
	// Each select item must be a group-by expression or a single
	// aggregate call (the common SQL subset). itemNames records which
	// aggregate-output column each select item maps to, in item
	// order, so a final projection can restore SELECT order.
	itemNames := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("query: SELECT * not allowed with GROUP BY/aggregates")
		}
		if agg, ok := it.Expr.(*AggExpr); ok {
			if !agg.Star {
				if containsAgg(agg.Arg) {
					return nil, fmt.Errorf("query: nested aggregates not allowed")
				}
				if _, err := bind(agg.Arg, env); err != nil {
					return nil, err
				}
			}
			base := it.Alias
			if base == "" {
				base = agg.String()
			}
			name := uniqueName(base)
			node.Aggs = append(node.Aggs, agg)
			node.Names = append(node.Names, name)
			kind := store.KindFloat
			if agg.Func == AggCount {
				kind = store.KindInt
			} else if !agg.Star {
				be, _ := bind(agg.Arg, env)
				if agg.Func == AggMin || agg.Func == AggMax {
					kind = be.kind
				}
			}
			schema.cols = append(schema.cols, planCol{Name: name, Kind: kind})
			itemNames[i] = name
			continue
		}
		// Must match a group-by expression textually.
		gi := -1
		for k, g := range stmt.GroupBy {
			if g.String() == it.Expr.String() {
				gi = k
				break
			}
		}
		if gi < 0 {
			return nil, fmt.Errorf("query: %s is neither aggregated nor in GROUP BY", it.Expr)
		}
		if it.Alias != "" {
			node.Names[gi] = it.Alias
			schema.cols[gi].Name = it.Alias
		}
		itemNames[i] = node.Names[gi]
	}
	node.schema = schema

	var out LogicalPlan = node
	if stmt.Having != nil {
		pred, err := rewriteHaving(stmt.Having, node, schema, uniqueName, env)
		if err != nil {
			return nil, err
		}
		// Validate the rewritten predicate binds against the
		// (possibly extended) aggregate output.
		if _, err := bind(pred, bindEnv{schema: schema, cat: cat, tree: cat.Tree(), validateOnly: true}); err != nil {
			return nil, fmt.Errorf("query: HAVING: %w", err)
		}
		out = &FilterNode{Input: node, Pred: pred}
	}

	// Restore SELECT order with a projection when it differs from the
	// aggregate's groups-then-aggregates layout (always the case when
	// HAVING added hidden aggregates).
	inOrder := len(itemNames) == len(node.Names)
	if inOrder {
		for i := range itemNames {
			if itemNames[i] != node.Names[i] {
				inOrder = false
				break
			}
		}
	}
	if inOrder {
		return out, nil
	}
	proj := &ProjectNode{Input: out, schema: &planSchema{}}
	for _, name := range itemNames {
		proj.Exprs = append(proj.Exprs, &ColumnRef{Name: name})
		proj.Names = append(proj.Names, name)
		for _, c := range schema.cols {
			if c.Name == name {
				proj.schema.cols = append(proj.schema.cols, c)
				break
			}
		}
	}
	return proj, nil
}

// rewriteHaving turns a HAVING predicate into one evaluable over the
// aggregate's output: aggregate calls become references to aggregate
// output columns (appending hidden aggregates when the call is not in
// the SELECT list), and qualified group references are renamed to
// their output column names.
func rewriteHaving(e Expr, node *AggNode, schema *planSchema, uniqueName func(string) string, inputEnv bindEnv) (Expr, error) {
	switch x := e.(type) {
	case *AggExpr:
		if !x.Star {
			if containsAgg(x.Arg) {
				return nil, fmt.Errorf("query: nested aggregates not allowed in HAVING")
			}
			if _, err := bind(x.Arg, inputEnv); err != nil {
				return nil, fmt.Errorf("query: HAVING: %w", err)
			}
		}
		// Reuse an existing aggregate output when the call matches.
		rendered := x.String()
		for i, agg := range node.Aggs {
			if agg.String() == rendered {
				return &ColumnRef{Name: node.Names[len(node.GroupBy)+i]}, nil
			}
		}
		name := uniqueName(rendered)
		node.Aggs = append(node.Aggs, x)
		node.Names = append(node.Names, name)
		kind := store.KindFloat
		if x.Func == AggCount {
			kind = store.KindInt
		} else if !x.Star {
			if be, err := bind(x.Arg, inputEnv); err == nil && (x.Func == AggMin || x.Func == AggMax) {
				kind = be.kind
			}
		}
		schema.cols = append(schema.cols, planCol{Name: name, Kind: kind})
		return &ColumnRef{Name: name}, nil
	case *ColumnRef:
		// A group key may be rendered with a qualifier ("p.family")
		// while the output column carries the rendered name.
		rendered := x.String()
		for _, c := range schema.cols {
			if c.Name == rendered && c.Qualifier == "" {
				return &ColumnRef{Name: rendered}, nil
			}
		}
		return x, nil
	case *BinaryExpr:
		l, err := rewriteHaving(x.L, node, schema, uniqueName, inputEnv)
		if err != nil {
			return nil, err
		}
		r, err := rewriteHaving(x.R, node, schema, uniqueName, inputEnv)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *NotExpr:
		in, err := rewriteHaving(x.E, node, schema, uniqueName, inputEnv)
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: in}, nil
	case *NegExpr:
		in, err := rewriteHaving(x.E, node, schema, uniqueName, inputEnv)
		if err != nil {
			return nil, err
		}
		return &NegExpr{E: in}, nil
	}
	return e, nil
}
