package query

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"drugtree/internal/datagen"
	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// Differential harness: every query must behave identically across
// the engine matrix — the serial row-at-a-time executor is the
// baseline, and the row-parallel, vectorized-serial, and
// vectorized-parallel configurations must all match it. Plans must
// match exactly (neither parallel dispatch nor batch execution is
// visible to the optimizer), row counts must match, and result
// multisets must match; for ORDER BY queries the sort key sequence
// must match (ties may legitimately permute whole rows, as in the
// naive/optimized fuzz test).

// diffParallelism is the worker count the parallel sides run with.
// Forced above 1 explicitly so the harness exercises the parallel
// operators even on single-core runners where GOMAXPROCS(0) == 1.
const diffParallelism = 4

func parallelOptions(n int) Options {
	o := DefaultOptions()
	o.Parallelism = n
	return o
}

func serialOptions() Options {
	o := DefaultOptions()
	o.Parallelism = 1
	return o
}

func rowOptions(o Options) Options {
	o.Vectorized = false
	return o
}

// diffMatrix lists the engine configurations checked against the
// row-serial baseline on every differential query.
func diffMatrix() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"row-parallel", rowOptions(parallelOptions(diffParallelism))},
		{"vec-serial", serialOptions()},
		{"vec-parallel", parallelOptions(diffParallelism)},
	}
}

// canonKey encodes a row for multiset comparison with floats rounded
// to 10 significant digits. SUM/AVG associate additions differently
// across chunk boundaries (and across serial runs, whose scan order
// is map-iteration order), so bit-exact float comparison is unsound;
// everything else compares exactly.
func canonKey(r store.Row) string {
	var b []byte
	for _, v := range r {
		if v.K == store.KindFloat {
			b = append(b, fmt.Sprintf("|%.9e", v.F)...)
			continue
		}
		b = append(b, '|')
		b = store.AppendValue(b, v)
	}
	return string(b)
}

// sameRowMultisetCanon compares two row slices ignoring order, with
// canonKey equality.
func sameRowMultisetCanon(a, b []store.Row) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[string]int{}
	for _, r := range a {
		counts[canonKey(r)]++
	}
	for _, r := range b {
		k := canonKey(r)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// assertSameResult applies the harness comparison rules.
func assertSameResult(t *testing.T, q string, ordered bool, serial, parallel *Result) {
	t.Helper()
	if serial.Plan != parallel.Plan {
		t.Fatalf("query %q: plans diverge\nserial:\n%s\nparallel:\n%s", q, serial.Plan, parallel.Plan)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("query %q: row counts diverge: serial %d, parallel %d",
			q, len(serial.Rows), len(parallel.Rows))
	}
	if ordered {
		for j := range serial.Rows {
			a, b := serial.Rows[j][0], parallel.Rows[j][0]
			if a.K != b.K || a.String() != b.String() {
				t.Fatalf("query %q: sort key %d differs: %v vs %v", q, j, a, b)
			}
		}
		return
	}
	if !sameRowMultisetCanon(serial.Rows, parallel.Rows) {
		t.Fatalf("query %q: result multisets differ (%d rows each)", q, len(serial.Rows))
	}
}

func runDifferential(t *testing.T, cat Catalog, q string, ordered bool) {
	t.Helper()
	base, err := NewEngine(cat, rowOptions(serialOptions())).Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query %q: row-serial baseline: %v", q, err)
	}
	for _, c := range diffMatrix() {
		got, err := NewEngine(cat, c.opts).Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %q: %s: %v", q, c.name, err)
		}
		assertSameResult(t, q+" ["+c.name+"]", ordered, base, got)
	}
}

// TestDifferentialCorpus runs a fixed corpus covering every operator
// the parallel executor touches: morsel scans, hash joins, merge
// joins, nested-loop joins, aggregation (plain, grouped, DISTINCT),
// subqueries, tree operators, sorts, and top-k.
func TestDifferentialCorpus(t *testing.T) {
	cat := testCatalog(t)
	corpus := []struct {
		q       string
		ordered bool
	}{
		{"SELECT * FROM proteins", false},
		{"SELECT accession FROM proteins WHERE family = 'FAM1'", false},
		{"SELECT accession FROM proteins WHERE length > 130 AND family != 'FAM0'", false},
		{"SELECT accession FROM proteins WHERE family = 'FAM1' OR length BETWEEN 110 AND 120", false},
		{"SELECT p.accession, a.ligand_id FROM proteins p JOIN activities a ON p.accession = a.protein_id", false},
		{`SELECT p.accession, l.weight FROM proteins p
		  JOIN activities a ON p.accession = a.protein_id
		  JOIN ligands l ON a.ligand_id = l.ligand_id WHERE a.affinity > 7`, false},
		{"SELECT COUNT(*) FROM activities", false},
		{"SELECT COUNT(*), SUM(affinity), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities", false},
		{"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family", false},
		{"SELECT protein_id, COUNT(DISTINCT ligand_id) FROM activities GROUP BY protein_id", false},
		{"SELECT COUNT(DISTINCT family) FROM proteins", false},
		{`SELECT p.family, COUNT(*) AS n, AVG(a.affinity) FROM proteins p
		  JOIN activities a ON p.accession = a.protein_id GROUP BY p.family`, false},
		{"SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 7", true},
		{"SELECT accession FROM proteins ORDER BY accession", true},
		{"SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, 'FAM0') AND is_leaf = TRUE", false},
		{"SELECT name FROM tree_nodes WHERE ANCESTOR_OF(pre, 'P004')", false},
		{"SELECT accession FROM proteins WHERE accession IN (SELECT protein_id FROM activities WHERE affinity > 8)", false},
		{"SELECT accession FROM proteins WHERE length > (SELECT AVG(length) FROM proteins)", false},
		{`SELECT a.protein_id, l.ligand_id FROM activities a
		  JOIN ligands l ON a.affinity < l.weight WHERE l.weight < 110`, false},
		{"SELECT COUNT(*) FROM proteins WHERE family = 'NOSUCH'", false},
	}
	for _, c := range corpus {
		runDifferential(t, cat, c.q, c.ordered)
	}
}

// TestDifferentialFuzz pushes the generated corpus through both
// executors across several seeds.
func TestDifferentialFuzz(t *testing.T) {
	cat := testCatalog(t)
	for _, seed := range []int64{1, 42, 2026} {
		g := &queryGen{rng: rand.New(rand.NewSource(seed))}
		trials := 120
		if testing.Short() {
			trials = 30
		}
		for i := 0; i < trials; i++ {
			q, ordered := g.generate()
			runDifferential(t, cat, q, ordered)
		}
	}
}

// datagenCatalog builds a catalog from a generated dataset large
// enough (> 2 morsels of activities) that the parallel operators
// split real work instead of falling back to small-input paths.
func datagenCatalog(t testing.TB, seed int64) *DBCatalog {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.Seed = seed
	cfg.NumFamilies = 6
	cfg.ProteinsPerFamily = 30
	cfg.SeqLen = 40 // sequences only feed the length column here
	cfg.NumLigands = 50
	cfg.ActivityDensity = 0.5
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	prot, err := db.CreateTable("proteins", store.MustSchema(
		store.Column{Name: "accession", Kind: store.KindString},
		store.Column{Name: "family", Kind: store.KindString},
		store.Column{Name: "length", Kind: store.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	act, err := db.CreateTable("activities", store.MustSchema(
		store.Column{Name: "protein_id", Kind: store.KindString},
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "affinity", Kind: store.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	lig, err := db.CreateTable("ligands", store.MustSchema(
		store.Column{Name: "ligand_id", Kind: store.KindString},
		store.Column{Name: "weight", Kind: store.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Proteins {
		prot.Insert(store.Row{
			store.StringValue(p.ID),
			store.StringValue(p.Family),
			store.IntValue(int64(100 + len(p.Residues))),
		})
	}
	for _, a := range ds.Activities {
		act.Insert(store.Row{
			store.StringValue(a.ProteinID),
			store.StringValue(a.LigandID),
			store.FloatValue(a.Affinity),
		})
	}
	for _, l := range ds.Ligands {
		lig.Insert(store.Row{store.StringValue(l.ID), store.FloatValue(l.Weight)})
	}
	prot.CreateIndex("accession", store.IndexHash)
	prot.CreateIndex("family", store.IndexHash)
	prot.CreateIndex("length", store.IndexBTree)
	act.CreateIndex("protein_id", store.IndexHash)
	act.CreateIndex("affinity", store.IndexBTree)
	lig.CreateIndex("ligand_id", store.IndexHash)

	tree := ds.TrueTree
	if err := tree.Index(); err != nil {
		t.Fatal(err)
	}
	nodes, err := db.CreateTable("tree_nodes", store.MustSchema(
		store.Column{Name: "pre", Kind: store.KindInt},
		store.Column{Name: "name", Kind: store.KindString},
		store.Column{Name: "is_leaf", Kind: store.KindBool},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.Len(); i++ {
		id := phylo.NodeID(i)
		nodes.Insert(store.Row{
			store.IntValue(int64(tree.Pre(id))),
			store.StringValue(tree.Node(id).Name),
			store.BoolValue(tree.Node(id).IsLeaf()),
		})
	}
	nodes.CreateIndex("pre", store.IndexBTree)
	return NewDBCatalog(db, tree)
}

// datagenLiterals is the string literal pool matched to the datagen
// catalog's ID universe so generated predicates are selective rather
// than uniformly empty.
func datagenLiterals() []string {
	lits := []string{"'zzz'"}
	for f := 0; f < 3; f++ {
		lits = append(lits, fmt.Sprintf("'FAM%02d'", f))
	}
	for p := 0; p < 4; p++ {
		lits = append(lits, fmt.Sprintf("'DT%05d'", p*17))
	}
	for l := 0; l < 3; l++ {
		lits = append(lits, fmt.Sprintf("'LIG%04d'", l*7))
	}
	return lits
}

// TestDifferentialDatagen runs generated queries over the
// datagen-backed catalog, where table sizes force multi-morsel scans,
// chunked hash-join builds, and partial aggregation merges.
func TestDifferentialDatagen(t *testing.T) {
	if testing.Short() {
		t.Skip("datagen differential corpus is slow")
	}
	cat := datagenCatalog(t, 7)
	// Sanity: the activities table must span multiple morsels or this
	// test silently stops covering the chunked paths.
	tab, err := cat.Table("activities")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() < 2*morselSize {
		t.Fatalf("activities has %d rows; need >= %d for multi-morsel coverage", tab.Len(), 2*morselSize)
	}
	g := &queryGen{rng: rand.New(rand.NewSource(11)), strLits: datagenLiterals()}
	for i := 0; i < 60; i++ {
		q, ordered := g.generate()
		runDifferential(t, cat, q, ordered)
	}
	// Aggregation over the big table exercises the partial-merge path.
	aggCorpus := []string{
		"SELECT protein_id, COUNT(*), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities GROUP BY protein_id",
		"SELECT ligand_id, COUNT(DISTINCT protein_id) FROM activities GROUP BY ligand_id",
		"SELECT COUNT(*), COUNT(DISTINCT ligand_id) FROM activities",
		`SELECT p.family, COUNT(*), AVG(a.affinity) FROM proteins p
		 JOIN activities a ON p.accession = a.protein_id GROUP BY p.family`,
	}
	for _, q := range aggCorpus {
		runDifferential(t, cat, q, false)
	}
}

// TestParallelismDefaults pins the Options knob semantics the
// experiments rely on: 0 means GOMAXPROCS, explicit values win.
func TestParallelismDefaults(t *testing.T) {
	var o Options
	if got := o.EffectiveParallelism(); got < 1 {
		t.Fatalf("EffectiveParallelism() = %d, want >= 1", got)
	}
	o.Parallelism = 3
	if got := o.EffectiveParallelism(); got != 3 {
		t.Fatalf("EffectiveParallelism() = %d, want 3", got)
	}
}
