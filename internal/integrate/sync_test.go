package integrate

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"drugtree/internal/datagen"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// syncFixture builds an importer over a fresh in-memory DB with a
// shared virtual clock on every source.
func syncFixture(t *testing.T, resilient bool) (*Importer, *source.Bundle, *netsim.VirtualClock) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.NumFamilies = 2
	cfg.ProteinsPerFamily = 8
	cfg.NumLigands = 10
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 3, true)
	clock := netsim.NewVirtualClock()
	for _, s := range bundle.All() {
		s.SetClock(clock)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	im := NewImporter(db, bundle)
	if resilient {
		r := DefaultResilience()
		r.Retry = source.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, JitterSeed: 1}
		r.BreakerCooldown = 5 * time.Second
		r.Clock = clock
		im.EnableResilience(r)
	}
	return im, bundle, clock
}

func outagePlan(from, to time.Duration) *source.FaultPlan {
	return &source.FaultPlan{Windows: []source.FaultWindow{
		{Mode: source.FaultOutage, Start: from, End: to},
	}}
}

func TestSyncReplaceSemantics(t *testing.T) {
	im, _, _ := syncFixture(t, true)
	ctx := context.Background()
	rep1, err := im.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Fresh != 4 || rep1.Degraded != 0 || rep1.Failed != 0 {
		t.Fatalf("first sync: %+v", rep1)
	}
	tb, _ := im.DB.Table(TableProteins)
	n1 := tb.Len()
	// A second sync must not append duplicates (unlike ImportAll).
	if _, err := im.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != n1 {
		t.Fatalf("resync grew proteins %d → %d: replace semantics broken", n1, tb.Len())
	}
}

func TestSyncDegradedServesLastGoodRows(t *testing.T) {
	im, bundle, clock := syncFixture(t, true)
	ctx := context.Background()
	if _, err := im.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	actTable, _ := im.DB.Table(TableActivities)
	goodRows := actTable.Len()
	if goodRows == 0 {
		t.Fatal("no activities imported")
	}

	// ActivityBank goes dark; everything else stays up.
	bundle.Activities.SetFaultPlan(outagePlan(0, time.Hour))
	clock.AdvanceTo(10 * time.Second)
	rep, err := im.Sync(ctx)
	if err != nil {
		t.Fatalf("resilient sync failed whole: %v", err)
	}
	if rep.Fresh != 3 || rep.Degraded != 1 {
		t.Fatalf("report: fresh=%d degraded=%d failed=%d", rep.Fresh, rep.Degraded, rep.Failed)
	}
	if actTable.Len() != goodRows {
		t.Fatalf("degraded source lost rows: %d → %d", goodRows, actTable.Len())
	}

	// Health reflects the degradation with an error and staleness.
	var act *SourceHealth
	for i := range im.Health() {
		h := im.Health()[i]
		if h.Source == bundle.Activities.Name() {
			act = &h
		}
	}
	if act == nil {
		t.Fatal("no health entry for ActivityBank")
	}
	if act.Status != StatusDegraded || !act.Stale || act.LastError == "" {
		t.Fatalf("activity health: %+v", act)
	}
	if act.Rows != goodRows {
		t.Fatalf("health rows = %d, want %d", act.Rows, goodRows)
	}
	if act.Age <= 0 {
		t.Fatalf("stale source has age %v", act.Age)
	}

	// Source recovers: next sync is fresh again and age resets.
	bundle.Activities.SetFaultPlan(nil)
	clock.AdvanceTo(40 * time.Second) // past the breaker cooldown
	rep, err = im.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fresh != 4 {
		t.Fatalf("after recovery: fresh=%d degraded=%d", rep.Fresh, rep.Degraded)
	}
}

func TestSyncFailedWhenNoLastGood(t *testing.T) {
	im, bundle, _ := syncFixture(t, true)
	// Annotations dark from the very first sync: nothing to fall back
	// on, so the status is Failed, but the sync still succeeds and the
	// other three sources import.
	bundle.Annotations.SetFaultPlan(outagePlan(0, time.Hour))
	rep, err := im.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fresh != 3 || rep.Failed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	for _, h := range im.Health() {
		if h.Source == bundle.Annotations.Name() && h.Status != StatusFailed {
			t.Fatalf("annotation status = %v, want failed", h.Status)
		}
	}
}

func TestSyncNaiveFailsWhole(t *testing.T) {
	im, bundle, _ := syncFixture(t, false)
	ctx := context.Background()
	if _, err := im.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	bundle.Activities.SetFaultPlan(outagePlan(0, time.Hour))
	_, err := im.Sync(ctx)
	if err == nil {
		t.Fatal("naive sync succeeded through an outage")
	}
	if !strings.Contains(err.Error(), "ActivityBank") {
		t.Fatalf("error does not name the source: %v", err)
	}
}

func TestSyncDegradedResolversUseServedRows(t *testing.T) {
	// Proteins degraded: activities must still resolve against the
	// last-good protein rows instead of rejecting everything.
	im, bundle, clock := syncFixture(t, true)
	ctx := context.Background()
	if _, err := im.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	bundle.Proteins.SetFaultPlan(outagePlan(0, time.Hour))
	clock.AdvanceTo(10 * time.Second)
	rep, err := im.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != 1 {
		t.Fatalf("degraded=%d", rep.Degraded)
	}
	if rep.RowsRejected != 0 {
		t.Fatalf("%d activity/annotation rows rejected against last-good proteins", rep.RowsRejected)
	}
	actTable, _ := im.DB.Table(TableActivities)
	if actTable.Len() == 0 {
		t.Fatal("activities emptied while proteins degraded")
	}
}

func TestSyncHealthConcurrentReaders(t *testing.T) {
	// Health() is read by HTTP/mobile handlers while Sync runs; `go
	// test -race` guards the shared health map.
	im, bundle, clock := syncFixture(t, true)
	ctx := context.Background()
	bundle.Activities.SetFaultPlan(&source.FaultPlan{Seed: 5, Windows: []source.FaultWindow{
		{Mode: source.FaultErrorBurst, Start: 0, End: time.Hour, ErrorPct: 0.5},
	}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				im.Health()
			}
		}
	}()
	for i := 0; i < 5; i++ {
		clock.AdvanceTo(time.Duration(i) * time.Second)
		if _, err := im.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// stallSource wraps a source so its first Fetch parks until released —
// a remote bank that has stopped answering mid-transfer.
type stallSource struct {
	source.Source
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *stallSource) Fetch(ctx context.Context, req source.Request) (*source.Result, error) {
	s.once.Do(func() { close(s.entered) })
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Source.Fetch(ctx, req)
}

// TestHealthNotBlockedBySlowSync pins the critical-section contract:
// Sync's network-speed work (fetching, diffing) runs outside the
// importer lock, which is held only for the O(changed rows) publish
// and health update. A Health() probe — the mobile client's freshness
// endpoint — must answer promptly even while Sync is parked inside a
// stalled source fetch. Before the fix, Sync held the lock around the
// fetches and this watchdog fired.
func TestHealthNotBlockedBySlowSync(t *testing.T) {
	im, bundle, _ := syncFixture(t, true)
	ctx := context.Background()
	// Seed last-good state so the stalled round has health to report.
	if _, err := im.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	stall := &stallSource{
		Source:  bundle.Proteins,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	bundle.Proteins = stall
	syncDone := make(chan error, 1)
	go func() {
		_, err := im.Sync(ctx)
		syncDone <- err
	}()
	select {
	case <-stall.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("sync never reached the stalled source")
	}

	// Sync is now parked mid-fetch. Health must not be.
	healthDone := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			if got := len(im.Health()); got == 0 {
				t.Error("health empty during sync")
				break
			}
		}
		close(healthDone)
	}()
	select {
	case <-healthDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Health() blocked behind a stalled Sync fetch")
	}

	close(stall.release)
	if err := <-syncDone; err != nil {
		t.Fatal(err)
	}
}

// TestSyncUnchangedSourceKeepsVersion asserts resync is a no-op at the
// version level when nothing changed: the diff produces an empty delta,
// no table gains a commit version, and statement-cache entries keyed on
// per-table versions stay valid.
func TestSyncUnchangedSourceKeepsVersion(t *testing.T) {
	im, _, _ := syncFixture(t, true)
	ctx := context.Background()
	if _, err := im.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	before := make(map[string]int64)
	snap := im.DB.PinSnapshot()
	for name, v := range snap.Versions() {
		before[name] = v
	}
	snap.Release()

	rep, err := im.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsInserted != 0 || rep.RowsDeleted != 0 {
		t.Fatalf("unchanged resync produced a delta: +%d -%d", rep.RowsInserted, rep.RowsDeleted)
	}
	snap = im.DB.PinSnapshot()
	defer snap.Release()
	for name, v := range snap.Versions() {
		if before[name] != v {
			t.Fatalf("table %s version moved %d → %d on an unchanged resync", name, before[name], v)
		}
	}
}
