package integrate

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// TableNames of the integrated relations in the local store.
const (
	TableProteins    = "proteins"
	TableLigands     = "ligands"
	TableActivities  = "activities"
	TableAnnotations = "annotations"
)

// ImportStats reports what one sync moved and fixed.
type ImportStats struct {
	RowsImported  int64
	RowsRejected  int64 // unresolvable entity references
	ResolvedExact int64
	ResolvedNorm  int64
	ResolvedFuzzy int64
	Elapsed       time.Duration // modelled network time
}

// Importer synchronizes the remote bundle into a local store DB.
// ImportAll is the original append-only one-shot load; Sync is the
// repeatable resilient path with replace semantics, degraded-mode
// serving and per-source freshness tracking (see sync.go).
type Importer struct {
	DB     *store.DB
	Bundle *source.Bundle

	res      *Resilience
	breakers map[string]*source.Breaker
	clock    netsim.Clock

	mu     sync.Mutex
	health map[string]*SourceHealth
}

// NewImporter wires an importer. The DB may be empty or already hold
// the integrated tables from a previous run.
func NewImporter(db *store.DB, bundle *source.Bundle) *Importer {
	return &Importer{
		DB:     db,
		Bundle: bundle,
		clock:  netsim.NewWallClock(),
		health: make(map[string]*SourceHealth),
	}
}

// ensureTable creates the table with indexes if missing.
func (im *Importer) ensureTable(name string, schema *store.Schema, indexes map[string]store.IndexType) (*store.Table, error) {
	t, err := im.DB.Table(name)
	if err != nil {
		t, err = im.DB.CreateTable(name, schema)
		if err != nil {
			return nil, err
		}
	}
	for col, typ := range indexes {
		if err := t.CreateIndex(col, typ); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ImportAll pulls every source into the local store, resolving
// activity and annotation references against the imported protein and
// ligand IDs. Rows whose references cannot be resolved are counted
// and dropped, not guessed.
func (im *Importer) ImportAll(ctx context.Context) (*ImportStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := &ImportStats{}

	if _, err := im.ensureTable(TableProteins, source.ProteinSchema, map[string]store.IndexType{
		"accession": store.IndexHash,
		"family":    store.IndexHash,
		"length":    store.IndexBTree,
	}); err != nil {
		return nil, err
	}
	protRows, err := source.FetchAll(ctx, im.Bundle.Proteins, nil)
	if err != nil {
		return nil, fmt.Errorf("integrate: fetching proteins: %w", err)
	}
	accIdx := source.ProteinSchema.ColumnIndex("accession")
	var protIDs []string
	for _, r := range protRows {
		if _, err := im.DB.Insert(TableProteins, r); err != nil {
			return nil, err
		}
		protIDs = append(protIDs, r[accIdx].S)
		st.RowsImported++
	}

	if _, err := im.ensureTable(TableLigands, source.LigandSchema, map[string]store.IndexType{
		"ligand_id": store.IndexHash,
		"weight":    store.IndexBTree,
	}); err != nil {
		return nil, err
	}
	ligRows, err := source.FetchAll(ctx, im.Bundle.Ligands, nil)
	if err != nil {
		return nil, fmt.Errorf("integrate: fetching ligands: %w", err)
	}
	ligIDIdx := source.LigandSchema.ColumnIndex("ligand_id")
	var ligIDs []string
	for _, r := range ligRows {
		if _, err := im.DB.Insert(TableLigands, r); err != nil {
			return nil, err
		}
		ligIDs = append(ligIDs, r[ligIDIdx].S)
		st.RowsImported++
	}

	protResolver := NewResolver(protIDs)
	ligResolver := NewResolver(ligIDs)

	if _, err := im.ensureTable(TableActivities, source.ActivitySchema, map[string]store.IndexType{
		"protein_id": store.IndexHash,
		"ligand_id":  store.IndexHash,
		"affinity":   store.IndexBTree,
	}); err != nil {
		return nil, err
	}
	actRows, err := source.FetchAll(ctx, im.Bundle.Activities, nil)
	if err != nil {
		return nil, fmt.Errorf("integrate: fetching activities: %w", err)
	}
	pIdx := source.ActivitySchema.ColumnIndex("protein_id")
	lIdx := source.ActivitySchema.ColumnIndex("ligand_id")
	for _, r := range actRows {
		pid, pTier, pOK := protResolver.Resolve(r[pIdx].S)
		lid, lTier, lOK := ligResolver.Resolve(r[lIdx].S)
		if !pOK || !lOK {
			st.RowsRejected++
			continue
		}
		st.countTier(pTier)
		st.countTier(lTier)
		r[pIdx] = store.StringValue(pid)
		r[lIdx] = store.StringValue(lid)
		if _, err := im.DB.Insert(TableActivities, r); err != nil {
			return nil, err
		}
		st.RowsImported++
	}

	if _, err := im.ensureTable(TableAnnotations, source.AnnotationSchema, map[string]store.IndexType{
		"protein_id": store.IndexHash,
		"organism":   store.IndexHash,
	}); err != nil {
		return nil, err
	}
	annRows, err := source.FetchAll(ctx, im.Bundle.Annotations, nil)
	if err != nil {
		return nil, fmt.Errorf("integrate: fetching annotations: %w", err)
	}
	apIdx := source.AnnotationSchema.ColumnIndex("protein_id")
	for _, r := range annRows {
		pid, tier, ok := protResolver.Resolve(r[apIdx].S)
		if !ok {
			st.RowsRejected++
			continue
		}
		st.countTier(tier)
		r[apIdx] = store.StringValue(pid)
		if _, err := im.DB.Insert(TableAnnotations, r); err != nil {
			return nil, err
		}
		st.RowsImported++
	}

	st.Elapsed = im.Bundle.TotalStats().Elapsed
	return st, nil
}

func (s *ImportStats) countTier(t Tier) {
	switch t {
	case TierExact:
		s.ResolvedExact++
	case TierNormalized:
		s.ResolvedNorm++
	case TierFuzzy:
		s.ResolvedFuzzy++
	}
}
