package integrate

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchResolver(b *testing.B, n int) (*Resolver, []string) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	ids := make([]string, n)
	for i := range ids {
		buf := make([]byte, 8)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		ids[i] = "DT" + string(buf)
	}
	return NewResolver(ids), ids
}

func BenchmarkResolverTiers(b *testing.B) {
	r, ids := benchResolver(b, 10000)
	rng := rand.New(rand.NewSource(2))
	exact := make([]string, 256)
	norm := make([]string, 256)
	fuzzy := make([]string, 256)
	for i := range exact {
		id := ids[rng.Intn(len(ids))]
		exact[i] = id
		norm[i] = " " + id[:4] + "-" + id[4:] + " "
		fuzzy[i] = CorruptID(rng, id, 1)
	}
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Resolve(exact[i%len(exact)])
		}
	})
	b.Run("Normalized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Resolve(norm[i%len(norm)])
		}
	})
	b.Run("Fuzzy1Edit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Resolve(fuzzy[i%len(fuzzy)])
		}
	})
}

func BenchmarkResolverBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("ids-%d", n), func(b *testing.B) {
			_, ids := benchResolver(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewResolver(ids)
			}
		})
	}
}
