// Package integrate is DrugTree's mediator layer: it pulls rows from
// the heterogeneous remote sources, reconciles entity references
// (accessions arrive dirty — case changes, stray punctuation, typos),
// and materializes the integrated relations into the embedded store
// the query engine runs on.
package integrate

import (
	"sort"
	"strings"
)

// Resolver matches dirty entity references against a canonical ID set
// using a three-tier strategy:
//
//  1. exact match,
//  2. normalized match (case-folded, punctuation/whitespace stripped),
//  3. fuzzy match: trigram-indexed candidate retrieval verified by
//     banded edit distance ≤ MaxEdits.
//
// Tiers are tried in order; the first hit wins. Fuzzy matches require
// a unique best candidate — ties are rejected rather than guessed.
type Resolver struct {
	// MaxEdits bounds the edit distance accepted by the fuzzy tier
	// (default 2 via NewResolver).
	MaxEdits int

	exact      map[string]string   // raw canonical → canonical
	normalized map[string][]string // normalized → canonicals
	trigrams   map[string][]int    // trigram → indices into canon
	canon      []string
	canonNorm  []string
}

// NewResolver creates a resolver over the canonical ID set.
func NewResolver(canonical []string) *Resolver {
	r := &Resolver{
		MaxEdits:   2,
		exact:      make(map[string]string, len(canonical)),
		normalized: make(map[string][]string),
		trigrams:   make(map[string][]int),
	}
	for _, id := range canonical {
		if _, dup := r.exact[id]; dup {
			continue
		}
		r.exact[id] = id
		n := Normalize(id)
		r.normalized[n] = append(r.normalized[n], id)
		idx := len(r.canon)
		r.canon = append(r.canon, id)
		r.canonNorm = append(r.canonNorm, n)
		for _, g := range trigramSet(n) {
			r.trigrams[g] = append(r.trigrams[g], idx)
		}
	}
	return r
}

// Tier labels which strategy produced a match.
type Tier uint8

const (
	TierNone Tier = iota
	TierExact
	TierNormalized
	TierFuzzy
)

func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierNormalized:
		return "normalized"
	case TierFuzzy:
		return "fuzzy"
	}
	return "none"
}

// Resolve maps a dirty reference to a canonical ID. ok is false when
// no tier produces a confident match.
func (r *Resolver) Resolve(ref string) (canonical string, tier Tier, ok bool) {
	if id, hit := r.exact[ref]; hit {
		return id, TierExact, true
	}
	n := Normalize(ref)
	if ids := r.normalized[n]; len(ids) == 1 {
		return ids[0], TierNormalized, true
	} else if len(ids) > 1 {
		return "", TierNone, false // ambiguous
	}
	return r.fuzzy(n)
}

// fuzzy retrieves candidates sharing trigrams with the query and
// verifies them with banded edit distance.
func (r *Resolver) fuzzy(n string) (string, Tier, bool) {
	if len(n) < 3 {
		return "", TierNone, false
	}
	counts := make(map[int]int)
	for _, g := range trigramSet(n) {
		for _, idx := range r.trigrams[g] {
			counts[idx]++
		}
	}
	if len(counts) == 0 {
		return "", TierNone, false
	}
	// Rank candidates by shared trigram count, verify best-first.
	type cand struct{ idx, shared int }
	cands := make([]cand, 0, len(counts))
	for idx, c := range counts {
		// A string within k edits shares at least
		// max(len) - 3k trigram positions with the query; prune far
		// candidates cheaply.
		need := len(n) - 2 - 3*r.MaxEdits
		if c >= need || need <= 0 {
			cands = append(cands, cand{idx, c})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].shared != cands[j].shared {
			return cands[i].shared > cands[j].shared
		}
		return cands[i].idx < cands[j].idx
	})
	bestDist := r.MaxEdits + 1
	bestIdx := -1
	tie := false
	for _, c := range cands {
		d, within := boundedEditDistance(n, r.canonNorm[c.idx], r.MaxEdits)
		if !within {
			continue
		}
		switch {
		case d < bestDist:
			bestDist, bestIdx, tie = d, c.idx, false
		case d == bestDist && bestIdx >= 0 && r.canonNorm[c.idx] != r.canonNorm[bestIdx]:
			tie = true
		}
	}
	if bestIdx < 0 || tie {
		return "", TierNone, false
	}
	return r.canon[bestIdx], TierFuzzy, true
}

// Normalize case-folds and strips punctuation, whitespace, and
// separator characters from an identifier.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
			b.WriteByte(c - 'a' + 'A')
		case c >= 'A' && c <= 'Z' || c >= '0' && c <= '9':
			b.WriteByte(c)
		}
	}
	return b.String()
}

// trigramSet returns the distinct trigrams of s.
func trigramSet(s string) []string {
	if len(s) < 3 {
		return nil
	}
	seen := make(map[string]struct{}, len(s))
	out := make([]string, 0, len(s))
	for i := 0; i+3 <= len(s); i++ {
		g := s[i : i+3]
		if _, dup := seen[g]; dup {
			continue
		}
		seen[g] = struct{}{}
		out = append(out, g)
	}
	return out
}

// boundedEditDistance computes Levenshtein distance if it is ≤ k,
// using a banded DP in O(len·k).
func boundedEditDistance(a, b string, k int) (int, bool) {
	la, lb := len(a), len(b)
	if la > lb {
		a, b, la, lb = b, a, lb, la
	}
	if lb-la > k {
		return 0, false
	}
	// prev[j] = distance for b[:j]; band around the diagonal.
	const inf = 1 << 20
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > lb {
			hi = lb
		}
		cur[lo-1] = inf
		if lo == 1 {
			if i <= k {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		prev, cur = cur, prev
	}
	if prev[lb] > k {
		return 0, false
	}
	return prev[lb], true
}
