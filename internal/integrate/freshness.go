package integrate

import (
	"fmt"
	"time"
)

// SyncStatus classifies one source's contribution to the last sync.
type SyncStatus uint8

const (
	// StatusFresh means the last sync replaced the table with live
	// rows from the source.
	StatusFresh SyncStatus = iota
	// StatusDegraded means the source was unreachable (circuit open or
	// retries exhausted) and the mediator is serving the last
	// successfully imported rows, now stale.
	StatusDegraded
	// StatusFailed means the source was unreachable and no last-good
	// rows exist to serve.
	StatusFailed
)

func (s SyncStatus) String() string {
	switch s {
	case StatusFresh:
		return "fresh"
	case StatusDegraded:
		return "degraded"
	case StatusFailed:
		return "failed"
	}
	return fmt.Sprintf("SyncStatus(%d)", uint8(s))
}

// SourceHealth is the per-source freshness record the mediator exposes
// to clients (HTTP /health/sources, mobile MsgStatus). Mobile users
// triaging compounds in a meeting would rather see slightly stale
// binding data flagged as such than an error page, so staleness is a
// first-class, reportable state instead of a silent failure.
type SourceHealth struct {
	// Source is the source name.
	Source string
	// Status is the outcome of the most recent sync for this source.
	Status SyncStatus
	// Stale is true when the served rows predate the last sync.
	Stale bool
	// Rows is the number of rows currently served for this source.
	Rows int
	// LastError is the most recent fetch error ("" when fresh).
	LastError string
	// LastGood is the timeline timestamp of the last successful sync
	// (zero if the source has never synced).
	LastGood time.Duration
	// Age is now − LastGood at snapshot time: how stale the served
	// rows are.
	Age time.Duration
	// BreakerState and BreakerTrips mirror the source's circuit
	// breaker ("" / 0 when resilience is off).
	BreakerState string
	BreakerTrips int64
}
