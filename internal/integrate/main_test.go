package integrate

import (
	"testing"

	"drugtree/internal/lint/leaktest"
)

// TestMain gates the package on goroutine hygiene: a test that exits
// while a goroutine it spawned is still running fails the binary (see
// internal/lint/leaktest — the runtime complement to spawncheck).
func TestMain(m *testing.M) { leaktest.VerifyTestMain(m) }
