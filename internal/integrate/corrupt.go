package integrate

import (
	"math/rand"
	"strings"
)

// CorruptID produces a dirty variant of an identifier with the given
// number of random character edits (substitute/insert/delete) plus
// random case flips and decorative punctuation — the reference noise
// the resolver exists to absorb. Used by the T4 experiment and tests.
func CorruptID(rng *rand.Rand, id string, edits int) string {
	b := []byte(id)
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	for e := 0; e < edits && len(b) > 1; e++ {
		pos := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0: // substitute
			b[pos] = alphabet[rng.Intn(len(alphabet))]
		case 1: // insert
			b = append(b[:pos], append([]byte{alphabet[rng.Intn(len(alphabet))]}, b[pos:]...)...)
		case 2: // delete
			b = append(b[:pos], b[pos+1:]...)
		}
	}
	s := string(b)
	// Cosmetic noise: case flips and separators (normalization-tier
	// fodder — these do not count as edits).
	if rng.Float64() < 0.5 {
		s = strings.ToLower(s)
	}
	if rng.Float64() < 0.3 && len(s) > 3 {
		cut := 1 + rng.Intn(len(s)-2)
		s = s[:cut] + "-" + s[cut:]
	}
	if rng.Float64() < 0.2 {
		s = " " + s + " "
	}
	return s
}
