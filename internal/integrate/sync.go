// Resilient synchronization: the repeatable counterpart to ImportAll.
// Sync diffs each answering source against the table's current version
// and publishes every table's insert/delete delta as one atomic MVCC
// commit; a source that does not answer falls back to the last
// successfully imported rows — marked stale. A sync therefore degrades
// per source instead of failing whole: a dark ActivityBank leaves
// protein browsing fully live and activity queries answerable from
// stale rows.
package integrate

import (
	"context"
	"fmt"
	"sort"
	"time"

	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// Resilience configures the fault-tolerant fetch path: retry/backoff
// policy, per-request timeout, and per-source circuit breakers. A nil
// Resilience on the importer means naive mode — one attempt per page,
// any source failure fails the whole sync (the ablation baseline).
type Resilience struct {
	Retry   source.RetryPolicy
	Timeout time.Duration
	// BreakerThreshold consecutive failures open a source's breaker;
	// BreakerCooldown later a probe is admitted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Clock drives backoff sleeps, breaker cooldowns and freshness
	// ages; nil uses the wall clock.
	Clock netsim.Clock
	// Metrics receives breaker and retry counters when set.
	Metrics *metrics.Registry
}

// DefaultResilience is a sane production-shaped policy.
func DefaultResilience() Resilience {
	return Resilience{
		Retry:            source.DefaultRetry(),
		Timeout:          5 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Second,
	}
}

// EnableResilience switches the importer's Sync path to resilient
// mode, building one circuit breaker per source.
func (im *Importer) EnableResilience(r Resilience) {
	im.res = &r
	if r.Clock != nil {
		im.clock = r.Clock
	}
	im.breakers = make(map[string]*source.Breaker)
	for _, s := range im.Bundle.All() {
		im.breakers[s.Name()] = source.NewBreaker(
			s.Name(), r.BreakerThreshold, r.BreakerCooldown, im.clock, r.Metrics)
	}
}

// Breaker returns the named source's circuit breaker (nil when
// resilience is off).
func (im *Importer) Breaker(name string) *source.Breaker { return im.breakers[name] }

// SyncReport summarizes one Sync call.
type SyncReport struct {
	// Sources holds per-source outcomes in bundle order.
	Sources []SourceHealth
	// Fresh, Degraded and Failed count sources by outcome.
	Fresh, Degraded, Failed int
	RowsImported            int64
	RowsRejected            int64
	// RowsInserted and RowsDeleted count the physical delta the atomic
	// publish applied; rows unchanged since the last sync stay in place
	// and cost nothing.
	RowsInserted int64
	RowsDeleted  int64
}

// Degraded reports whether any source fell back to stale rows.
func (r *SyncReport) AnyDegraded() bool { return r.Degraded > 0 || r.Failed > 0 }

// fetchSource pulls one source through the configured resilience
// stack. In naive mode a page gets the legacy 5-attempt hot retry —
// no backoff, no timeout, no breaker.
func (im *Importer) fetchSource(ctx context.Context, s source.Source) ([]store.Row, error) {
	if im.res == nil {
		return source.FetchAllWith(ctx, s, nil, &source.FetchOptions{
			Retry: source.RetryPolicy{MaxAttempts: 5},
		})
	}
	return source.FetchAllWith(ctx, s, nil, &source.FetchOptions{
		Retry:   im.res.Retry,
		Timeout: im.res.Timeout,
		Breaker: im.breakers[s.Name()],
		Clock:   im.res.Clock,
		Metrics: im.res.Metrics,
	})
}

// encodeRowKey renders a whole row as canonical bytes for value-based
// diffing.
func encodeRowKey(r store.Row) string {
	buf := make([]byte, 0, 48)
	for _, v := range r {
		buf = store.AppendValue(buf, v)
	}
	return string(buf)
}

// diffTable stages the delta that turns the named table's current
// contents into rows. Matching is by whole-row value (a multiset, so
// duplicate rows pair off): a desired row identical to a current one
// keeps that row — and its row ID — in place, so an unchanged source
// costs an empty delta and no new table version. transform may mutate
// or reject a desired row; returning false drops it. Nothing is
// applied here: the caller publishes every table's delta in one atomic
// CommitDeltas.
func (im *Importer) diffTable(name string, schema *store.Schema, indexes map[string]store.IndexType, rows []store.Row, transform func(store.Row) bool) (delta store.TableDelta, served, rejected int64, err error) {
	t, err := im.ensureTable(name, schema, indexes)
	if err != nil {
		return store.TableDelta{}, 0, 0, err
	}
	cur := make(map[string][]int64)
	t.Scan(func(id int64, r store.Row) bool {
		k := encodeRowKey(r)
		cur[k] = append(cur[k], id)
		return true
	})
	delta.Table = name
	for _, r := range rows {
		if transform != nil && !transform(r) {
			rejected++
			continue
		}
		served++
		k := encodeRowKey(r)
		if ids := cur[k]; len(ids) > 0 {
			cur[k] = ids[1:] // unchanged: the existing row keeps serving
			continue
		}
		delta.Inserts = append(delta.Inserts, r)
	}
	for _, ids := range cur {
		delta.DeleteIDs = append(delta.DeleteIDs, ids...)
	}
	sort.Slice(delta.DeleteIDs, func(i, j int) bool { return delta.DeleteIDs[i] < delta.DeleteIDs[j] })
	return delta, served, rejected, nil
}

// tableIDs reads the entity IDs currently served for a table — the
// degraded-mode resolver input when a source cannot be refreshed.
func (im *Importer) tableIDs(table, column string, schema *store.Schema) []string {
	t, err := im.DB.Table(table)
	if err != nil {
		return nil
	}
	ci := schema.ColumnIndex(column)
	var ids []string
	t.Scan(func(_ int64, r store.Row) bool {
		ids = append(ids, r[ci].S)
		return true
	})
	return ids
}

// markHealth records a source outcome and returns the health row.
func (im *Importer) markHealth(name string, status SyncStatus, rows int, ferr error) SourceHealth {
	now := im.clock.Now()
	im.mu.Lock()
	h := im.health[name]
	if h == nil {
		h = &SourceHealth{Source: name}
		im.health[name] = h
	}
	h.Status = status
	h.Stale = status != StatusFresh
	h.Rows = rows
	if ferr != nil {
		h.LastError = ferr.Error()
	} else {
		h.LastError = ""
	}
	if status == StatusFresh {
		h.LastGood = now
	}
	if b := im.breakers[name]; b != nil {
		h.BreakerState = b.State().String()
		h.BreakerTrips = b.Trips()
	}
	out := *h
	im.mu.Unlock()
	out.Age = now - out.LastGood
	return out
}

// tableLen returns the number of rows currently served for table.
func (im *Importer) tableLen(table string) int {
	t, err := im.DB.Table(table)
	if err != nil {
		return 0
	}
	return t.Len()
}

// syncOutcome accumulates one source's result between fetch and the
// atomic publish.
type syncOutcome struct {
	name, table      string
	ferr             error
	delta            store.TableDelta
	served, rejected int64
}

// Sync refreshes all integrated tables from the bundle as one MVCC
// commit. Each answering source's rows are diffed against the table's
// current version into an insert/delete delta; every fresh table's
// delta is then published in a single store.CommitDeltas, so readers —
// including snapshots pinned mid-sync — see either the complete old
// state or the complete new state, never a half-sync. All
// network-speed work (fetch, retry backoff, diffing) runs without any
// importer or store lock held; the only critical sections are the O(
// changed rows) publish and the brief health-map updates afterwards,
// so Health() readers are never blocked behind a slow source.
//
// With resilience enabled, a source that is open-circuit or exhausts
// its retries keeps its last-good rows and is reported Degraded
// (Failed if it never synced); the sync itself still succeeds. Without
// resilience any source failure aborts the sync with an error before
// anything is published — the naive baseline T8 measures against.
func (im *Importer) Sync(ctx context.Context) (*SyncReport, error) {
	var outs []*syncOutcome
	fetch := func(s source.Source, table string) (*syncOutcome, []store.Row, error) {
		rows, ferr := im.fetchSource(ctx, s)
		if ferr != nil && im.res == nil {
			return nil, nil, fmt.Errorf("integrate: sync %s: %w", s.Name(), ferr)
		}
		o := &syncOutcome{name: s.Name(), table: table, ferr: ferr}
		outs = append(outs, o)
		return o, rows, nil
	}

	// Proteins.
	protOut, protRows, err := fetch(im.Bundle.Proteins, TableProteins)
	if err != nil {
		return nil, err
	}
	var protIDs []string
	if protOut.ferr == nil {
		accIdx := source.ProteinSchema.ColumnIndex("accession")
		for _, r := range protRows {
			protIDs = append(protIDs, r[accIdx].S)
		}
		protOut.delta, protOut.served, protOut.rejected, err = im.diffTable(TableProteins, source.ProteinSchema, map[string]store.IndexType{
			"accession": store.IndexHash,
			"family":    store.IndexHash,
			"length":    store.IndexBTree,
		}, protRows, nil)
		if err != nil {
			return nil, err
		}
	} else {
		protIDs = im.tableIDs(TableProteins, "accession", source.ProteinSchema)
	}

	// Ligands.
	ligOut, ligRows, err := fetch(im.Bundle.Ligands, TableLigands)
	if err != nil {
		return nil, err
	}
	var ligIDs []string
	if ligOut.ferr == nil {
		idIdx := source.LigandSchema.ColumnIndex("ligand_id")
		for _, r := range ligRows {
			ligIDs = append(ligIDs, r[idIdx].S)
		}
		ligOut.delta, ligOut.served, ligOut.rejected, err = im.diffTable(TableLigands, source.LigandSchema, map[string]store.IndexType{
			"ligand_id": store.IndexHash,
			"weight":    store.IndexBTree,
		}, ligRows, nil)
		if err != nil {
			return nil, err
		}
	} else {
		ligIDs = im.tableIDs(TableLigands, "ligand_id", source.LigandSchema)
	}

	protResolver := NewResolver(protIDs)
	ligResolver := NewResolver(ligIDs)

	// Activities.
	actOut, actRows, err := fetch(im.Bundle.Activities, TableActivities)
	if err != nil {
		return nil, err
	}
	if actOut.ferr == nil {
		pIdx := source.ActivitySchema.ColumnIndex("protein_id")
		lIdx := source.ActivitySchema.ColumnIndex("ligand_id")
		actOut.delta, actOut.served, actOut.rejected, err = im.diffTable(TableActivities, source.ActivitySchema, map[string]store.IndexType{
			"protein_id": store.IndexHash,
			"ligand_id":  store.IndexHash,
			"affinity":   store.IndexBTree,
		}, actRows, func(r store.Row) bool {
			pid, _, pOK := protResolver.Resolve(r[pIdx].S)
			lid, _, lOK := ligResolver.Resolve(r[lIdx].S)
			if !pOK || !lOK {
				return false
			}
			r[pIdx] = store.StringValue(pid)
			r[lIdx] = store.StringValue(lid)
			return true
		})
		if err != nil {
			return nil, err
		}
	}

	// Annotations.
	annOut, annRows, err := fetch(im.Bundle.Annotations, TableAnnotations)
	if err != nil {
		return nil, err
	}
	if annOut.ferr == nil {
		apIdx := source.AnnotationSchema.ColumnIndex("protein_id")
		annOut.delta, annOut.served, annOut.rejected, err = im.diffTable(TableAnnotations, source.AnnotationSchema, map[string]store.IndexType{
			"protein_id": store.IndexHash,
			"organism":   store.IndexHash,
		}, annRows, func(r store.Row) bool {
			pid, _, ok := protResolver.Resolve(r[apIdx].S)
			if !ok {
				return false
			}
			r[apIdx] = store.StringValue(pid)
			return true
		})
		if err != nil {
			return nil, err
		}
	}

	// Publish: one atomic multi-table commit for every fresh source.
	var deltas []store.TableDelta
	for _, o := range outs {
		if o.ferr == nil {
			deltas = append(deltas, o.delta)
		}
	}
	if err := im.DB.CommitDeltas(deltas); err != nil {
		return nil, err
	}

	// Health is recorded only after the publish lands, so the map never
	// advertises rows a reader cannot see yet.
	rep := &SyncReport{}
	for _, o := range outs {
		if o.ferr == nil {
			h := im.markHealth(o.name, StatusFresh, int(o.served), nil)
			rep.Sources = append(rep.Sources, h)
			rep.Fresh++
			rep.RowsImported += o.served
			rep.RowsRejected += o.rejected
			rep.RowsInserted += int64(len(o.delta.Inserts))
			rep.RowsDeleted += int64(len(o.delta.DeleteIDs))
			continue
		}
		status := StatusDegraded
		if im.tableLen(o.table) == 0 {
			status = StatusFailed
		}
		h := im.markHealth(o.name, status, im.tableLen(o.table), o.ferr)
		rep.Sources = append(rep.Sources, h)
		if status == StatusFailed {
			rep.Failed++
		} else {
			rep.Degraded++
		}
	}
	return rep, nil
}

// Health snapshots per-source freshness in bundle order, with ages
// computed against the importer's clock. Sources that have never
// synced are omitted.
func (im *Importer) Health() []SourceHealth {
	now := im.clock.Now()
	im.mu.Lock()
	defer im.mu.Unlock()
	var out []SourceHealth
	for _, s := range im.Bundle.All() {
		h := im.health[s.Name()]
		if h == nil {
			continue
		}
		cp := *h
		cp.Age = now - cp.LastGood
		if b := im.breakers[s.Name()]; b != nil {
			cp.BreakerState = b.State().String()
			cp.BreakerTrips = b.Trips()
		}
		out = append(out, cp)
	}
	return out
}
