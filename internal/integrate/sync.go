// Resilient synchronization: the repeatable counterpart to ImportAll.
// Sync replaces each integrated table from its source when the source
// answers, and falls back to the last successfully imported rows —
// marked stale — when it does not. A sync therefore degrades per
// source instead of failing whole: a dark ActivityBank leaves protein
// browsing fully live and activity queries answerable from stale rows.
package integrate

import (
	"context"
	"fmt"
	"time"

	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// Resilience configures the fault-tolerant fetch path: retry/backoff
// policy, per-request timeout, and per-source circuit breakers. A nil
// Resilience on the importer means naive mode — one attempt per page,
// any source failure fails the whole sync (the ablation baseline).
type Resilience struct {
	Retry   source.RetryPolicy
	Timeout time.Duration
	// BreakerThreshold consecutive failures open a source's breaker;
	// BreakerCooldown later a probe is admitted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Clock drives backoff sleeps, breaker cooldowns and freshness
	// ages; nil uses the wall clock.
	Clock netsim.Clock
	// Metrics receives breaker and retry counters when set.
	Metrics *metrics.Registry
}

// DefaultResilience is a sane production-shaped policy.
func DefaultResilience() Resilience {
	return Resilience{
		Retry:            source.DefaultRetry(),
		Timeout:          5 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Second,
	}
}

// EnableResilience switches the importer's Sync path to resilient
// mode, building one circuit breaker per source.
func (im *Importer) EnableResilience(r Resilience) {
	im.res = &r
	if r.Clock != nil {
		im.clock = r.Clock
	}
	im.breakers = make(map[string]*source.Breaker)
	for _, s := range im.Bundle.All() {
		im.breakers[s.Name()] = source.NewBreaker(
			s.Name(), r.BreakerThreshold, r.BreakerCooldown, im.clock, r.Metrics)
	}
}

// Breaker returns the named source's circuit breaker (nil when
// resilience is off).
func (im *Importer) Breaker(name string) *source.Breaker { return im.breakers[name] }

// SyncReport summarizes one Sync call.
type SyncReport struct {
	// Sources holds per-source outcomes in bundle order.
	Sources []SourceHealth
	// Fresh, Degraded and Failed count sources by outcome.
	Fresh, Degraded, Failed int
	RowsImported            int64
	RowsRejected            int64
}

// Degraded reports whether any source fell back to stale rows.
func (r *SyncReport) AnyDegraded() bool { return r.Degraded > 0 || r.Failed > 0 }

// fetchSource pulls one source through the configured resilience
// stack. In naive mode a page gets the legacy 5-attempt hot retry —
// no backoff, no timeout, no breaker.
func (im *Importer) fetchSource(ctx context.Context, s source.Source) ([]store.Row, error) {
	if im.res == nil {
		return source.FetchAllWith(ctx, s, nil, &source.FetchOptions{
			Retry: source.RetryPolicy{MaxAttempts: 5},
		})
	}
	return source.FetchAllWith(ctx, s, nil, &source.FetchOptions{
		Retry:   im.res.Retry,
		Timeout: im.res.Timeout,
		Breaker: im.breakers[s.Name()],
		Clock:   im.res.Clock,
		Metrics: im.res.Metrics,
	})
}

// replaceTable swaps the table's contents for rows (both the deletes
// and inserts go through the WAL). transform may mutate or reject a
// row; returning false drops it.
func (im *Importer) replaceTable(name string, schema *store.Schema, indexes map[string]store.IndexType, rows []store.Row, transform func(store.Row) bool) (imported, rejected int64, err error) {
	t, err := im.ensureTable(name, schema, indexes)
	if err != nil {
		return 0, 0, err
	}
	var stale []int64
	t.Scan(func(id int64, _ store.Row) bool {
		stale = append(stale, id)
		return true
	})
	for _, id := range stale {
		if _, err := im.DB.Delete(name, id); err != nil {
			return 0, 0, err
		}
	}
	for _, r := range rows {
		if transform != nil && !transform(r) {
			rejected++
			continue
		}
		if _, err := im.DB.Insert(name, r); err != nil {
			return imported, rejected, err
		}
		imported++
	}
	return imported, rejected, nil
}

// tableIDs reads the entity IDs currently served for a table — the
// degraded-mode resolver input when a source cannot be refreshed.
func (im *Importer) tableIDs(table, column string, schema *store.Schema) []string {
	t, err := im.DB.Table(table)
	if err != nil {
		return nil
	}
	ci := schema.ColumnIndex(column)
	var ids []string
	t.Scan(func(_ int64, r store.Row) bool {
		ids = append(ids, r[ci].S)
		return true
	})
	return ids
}

// markHealth records a source outcome and returns the health row.
func (im *Importer) markHealth(name string, status SyncStatus, rows int, ferr error) SourceHealth {
	now := im.clock.Now()
	im.mu.Lock()
	h := im.health[name]
	if h == nil {
		h = &SourceHealth{Source: name}
		im.health[name] = h
	}
	h.Status = status
	h.Stale = status != StatusFresh
	h.Rows = rows
	if ferr != nil {
		h.LastError = ferr.Error()
	} else {
		h.LastError = ""
	}
	if status == StatusFresh {
		h.LastGood = now
	}
	if b := im.breakers[name]; b != nil {
		h.BreakerState = b.State().String()
		h.BreakerTrips = b.Trips()
	}
	out := *h
	im.mu.Unlock()
	out.Age = now - out.LastGood
	return out
}

// tableLen returns the number of rows currently served for table.
func (im *Importer) tableLen(table string) int {
	t, err := im.DB.Table(table)
	if err != nil {
		return 0
	}
	return t.Len()
}

// Sync refreshes all integrated tables from the bundle. With
// resilience enabled, a source that is open-circuit or exhausts its
// retries keeps its last-good rows and is reported Degraded (Failed if
// it never synced); the sync itself still succeeds. Without resilience
// any source failure aborts the sync with an error — the naive
// baseline T8 measures against.
func (im *Importer) Sync(ctx context.Context) (*SyncReport, error) {
	rep := &SyncReport{}

	record := func(name, table string, rows []store.Row, ferr error) error {
		if ferr == nil {
			return nil
		}
		if im.res == nil {
			return fmt.Errorf("integrate: sync %s: %w", name, ferr)
		}
		status := StatusDegraded
		if im.tableLen(table) == 0 {
			status = StatusFailed
		}
		h := im.markHealth(name, status, im.tableLen(table), ferr)
		rep.Sources = append(rep.Sources, h)
		if status == StatusFailed {
			rep.Failed++
		} else {
			rep.Degraded++
		}
		return nil
	}
	fresh := func(name string, imported, rejected int64) {
		h := im.markHealth(name, StatusFresh, int(imported), nil)
		rep.Sources = append(rep.Sources, h)
		rep.Fresh++
		rep.RowsImported += imported
		rep.RowsRejected += rejected
	}

	// Proteins.
	protRows, perr := im.fetchSource(ctx, im.Bundle.Proteins)
	if err := record(im.Bundle.Proteins.Name(), TableProteins, protRows, perr); err != nil {
		return nil, err
	}
	var protIDs []string
	if perr == nil {
		accIdx := source.ProteinSchema.ColumnIndex("accession")
		for _, r := range protRows {
			protIDs = append(protIDs, r[accIdx].S)
		}
		n, rej, err := im.replaceTable(TableProteins, source.ProteinSchema, map[string]store.IndexType{
			"accession": store.IndexHash,
			"family":    store.IndexHash,
			"length":    store.IndexBTree,
		}, protRows, nil)
		if err != nil {
			return nil, err
		}
		fresh(im.Bundle.Proteins.Name(), n, rej)
	} else {
		protIDs = im.tableIDs(TableProteins, "accession", source.ProteinSchema)
	}

	// Ligands.
	ligRows, lerr := im.fetchSource(ctx, im.Bundle.Ligands)
	if err := record(im.Bundle.Ligands.Name(), TableLigands, ligRows, lerr); err != nil {
		return nil, err
	}
	var ligIDs []string
	if lerr == nil {
		idIdx := source.LigandSchema.ColumnIndex("ligand_id")
		for _, r := range ligRows {
			ligIDs = append(ligIDs, r[idIdx].S)
		}
		n, rej, err := im.replaceTable(TableLigands, source.LigandSchema, map[string]store.IndexType{
			"ligand_id": store.IndexHash,
			"weight":    store.IndexBTree,
		}, ligRows, nil)
		if err != nil {
			return nil, err
		}
		fresh(im.Bundle.Ligands.Name(), n, rej)
	} else {
		ligIDs = im.tableIDs(TableLigands, "ligand_id", source.LigandSchema)
	}

	protResolver := NewResolver(protIDs)
	ligResolver := NewResolver(ligIDs)

	// Activities.
	actRows, aerr := im.fetchSource(ctx, im.Bundle.Activities)
	if err := record(im.Bundle.Activities.Name(), TableActivities, actRows, aerr); err != nil {
		return nil, err
	}
	if aerr == nil {
		pIdx := source.ActivitySchema.ColumnIndex("protein_id")
		lIdx := source.ActivitySchema.ColumnIndex("ligand_id")
		n, rej, err := im.replaceTable(TableActivities, source.ActivitySchema, map[string]store.IndexType{
			"protein_id": store.IndexHash,
			"ligand_id":  store.IndexHash,
			"affinity":   store.IndexBTree,
		}, actRows, func(r store.Row) bool {
			pid, _, pOK := protResolver.Resolve(r[pIdx].S)
			lid, _, lOK := ligResolver.Resolve(r[lIdx].S)
			if !pOK || !lOK {
				return false
			}
			r[pIdx] = store.StringValue(pid)
			r[lIdx] = store.StringValue(lid)
			return true
		})
		if err != nil {
			return nil, err
		}
		fresh(im.Bundle.Activities.Name(), n, rej)
	}

	// Annotations.
	annRows, nerr := im.fetchSource(ctx, im.Bundle.Annotations)
	if err := record(im.Bundle.Annotations.Name(), TableAnnotations, annRows, nerr); err != nil {
		return nil, err
	}
	if nerr == nil {
		apIdx := source.AnnotationSchema.ColumnIndex("protein_id")
		n, rej, err := im.replaceTable(TableAnnotations, source.AnnotationSchema, map[string]store.IndexType{
			"protein_id": store.IndexHash,
			"organism":   store.IndexHash,
		}, annRows, func(r store.Row) bool {
			pid, _, ok := protResolver.Resolve(r[apIdx].S)
			if !ok {
				return false
			}
			r[apIdx] = store.StringValue(pid)
			return true
		})
		if err != nil {
			return nil, err
		}
		fresh(im.Bundle.Annotations.Name(), n, rej)
	}

	return rep, nil
}

// Health snapshots per-source freshness in bundle order, with ages
// computed against the importer's clock. Sources that have never
// synced are omitted.
func (im *Importer) Health() []SourceHealth {
	now := im.clock.Now()
	im.mu.Lock()
	defer im.mu.Unlock()
	var out []SourceHealth
	for _, s := range im.Bundle.All() {
		h := im.health[s.Name()]
		if h == nil {
			continue
		}
		cp := *h
		cp.Age = now - cp.LastGood
		if b := im.breakers[s.Name()]; b != nil {
			cp.BreakerState = b.State().String()
			cp.BreakerTrips = b.Trips()
		}
		out = append(out, cp)
	}
	return out
}
