package integrate

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"DT00042", "DT00042"},
		{"dt00042", "DT00042"},
		{" DT-000.42 ", "DT00042"},
		{"a_b c", "ABC"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBoundedEditDistance(t *testing.T) {
	cases := []struct {
		a, b   string
		k      int
		want   int
		within bool
	}{
		{"ABC", "ABC", 2, 0, true},
		{"ABC", "ABD", 2, 1, true},
		{"ABC", "AC", 2, 1, true},
		{"ABC", "ABCD", 2, 1, true},
		{"KITTEN", "SITTING", 3, 3, true},
		{"ABC", "XYZ", 2, 0, false},
		{"ABCDEFG", "ABC", 2, 0, false}, // length gap 4 > k
		{"", "", 2, 0, true},
		{"", "AB", 2, 2, true},
	}
	for _, c := range cases {
		got, within := boundedEditDistance(c.a, c.b, c.k)
		if within != c.within || (within && got != c.want) {
			t.Errorf("boundedEditDistance(%q,%q,%d) = %d,%v want %d,%v",
				c.a, c.b, c.k, got, within, c.want, c.within)
		}
	}
}

func TestBoundedEditDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const letters = "ABCD"
	randStr := func() string {
		n := rng.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randStr(), randStr()
		d1, w1 := boundedEditDistance(a, b, 3)
		d2, w2 := boundedEditDistance(b, a, 3)
		if w1 != w2 || (w1 && d1 != d2) {
			t.Fatalf("asymmetric: (%q,%q) = %d,%v vs %d,%v", a, b, d1, w1, d2, w2)
		}
	}
}

func TestResolveExact(t *testing.T) {
	r := NewResolver([]string{"DT00001", "DT00002"})
	id, tier, ok := r.Resolve("DT00001")
	if !ok || tier != TierExact || id != "DT00001" {
		t.Fatalf("exact resolve = %q %v %v", id, tier, ok)
	}
}

func TestResolveNormalized(t *testing.T) {
	r := NewResolver([]string{"DT00001", "DT00002"})
	id, tier, ok := r.Resolve("dt-00001")
	if !ok || tier != TierNormalized || id != "DT00001" {
		t.Fatalf("normalized resolve = %q %v %v", id, tier, ok)
	}
}

func TestResolveFuzzy(t *testing.T) {
	r := NewResolver([]string{"DT00001", "DT99999"})
	// One substitution away from DT00001 after normalization.
	id, tier, ok := r.Resolve("DT0001")
	if !ok || tier != TierFuzzy || id != "DT00001" {
		t.Fatalf("fuzzy resolve = %q %v %v", id, tier, ok)
	}
}

func TestResolveAmbiguousNormalizedRejected(t *testing.T) {
	// Two canonicals normalize identically.
	r := NewResolver([]string{"AB-01", "ab01"})
	if _, _, ok := r.Resolve("AB.01"); ok {
		t.Fatal("ambiguous normalized match accepted")
	}
}

func TestResolveFuzzyTieRejected(t *testing.T) {
	// "DT0AA01" is equidistant from two canonicals → reject.
	r := NewResolver([]string{"DTXAA01", "DTYAA01"})
	if id, _, ok := r.Resolve("DTZAA01"); ok {
		t.Fatalf("fuzzy tie accepted: %q", id)
	}
}

func TestResolveMissRejected(t *testing.T) {
	r := NewResolver([]string{"DT00001"})
	if _, _, ok := r.Resolve("COMPLETELYDIFFERENT"); ok {
		t.Fatal("garbage resolved")
	}
	if _, _, ok := r.Resolve(""); ok {
		t.Fatal("empty string resolved")
	}
}

func TestResolveAccuracyUnderCorruption(t *testing.T) {
	// The T4 property: ≥95% of references corrupted with ≤1 edit must
	// resolve correctly and none may resolve to the wrong ID.
	// High-entropy accessions (like real UniProt IDs): single edits
	// rarely land equidistant from two canonicals, so the tie-reject
	// rule doesn't dominate as it would for dense numeric IDs.
	rng := rand.New(rand.NewSource(11))
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := 2000
	ids := make([]string, n)
	seen := map[string]bool{}
	for i := range ids {
		for {
			b := make([]byte, 10)
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			id := fmt.Sprintf("DT%s", b)
			if !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	r := NewResolver(ids)
	correct, wrong, missed := 0, 0, 0
	for trial := 0; trial < 1000; trial++ {
		want := ids[rng.Intn(n)]
		dirty := CorruptID(rng, want, 1)
		got, _, ok := r.Resolve(dirty)
		switch {
		case !ok:
			missed++
		case got == want:
			correct++
		default:
			wrong++
		}
	}
	if wrong > 10 {
		t.Fatalf("wrong resolutions: %d (correct=%d missed=%d)", wrong, correct, missed)
	}
	if correct < 900 {
		t.Fatalf("only %d/1000 resolved correctly (missed=%d wrong=%d)", correct, missed, wrong)
	}
}

func TestResolverDuplicateCanonicals(t *testing.T) {
	r := NewResolver([]string{"A1X", "A1X", "B2Y"})
	if len(r.canon) != 2 {
		t.Fatalf("duplicates not deduped: %d", len(r.canon))
	}
	if id, _, ok := r.Resolve("A1X"); !ok || id != "A1X" {
		t.Fatal("dedup broke exact resolve")
	}
}

func TestTierString(t *testing.T) {
	if TierExact.String() != "exact" || TierNone.String() != "none" ||
		TierNormalized.String() != "normalized" || TierFuzzy.String() != "fuzzy" {
		t.Fatal("tier strings wrong")
	}
}
