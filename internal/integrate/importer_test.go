package integrate

import (
	"context"
	"testing"

	"drugtree/internal/datagen"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

func importedDB(t *testing.T) (*store.DB, *ImportStats) {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.NumFamilies = 2
	cfg.ProteinsPerFamily = 8
	cfg.NumLigands = 10
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 3, true)
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewImporter(db, bundle).ImportAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return db, st
}

func TestImportAllMaterializesTables(t *testing.T) {
	db, st := importedDB(t)
	defer db.Close()
	for _, name := range []string{TableProteins, TableLigands, TableActivities, TableAnnotations} {
		tb, err := db.Table(name)
		if err != nil {
			t.Fatalf("missing table %s: %v", name, err)
		}
		if tb.Len() == 0 {
			t.Fatalf("table %s is empty", name)
		}
	}
	if st.RowsImported == 0 || st.RowsRejected != 0 {
		t.Fatalf("unexpected import stats: %+v", st)
	}
	// All clean references resolve at the exact tier.
	if st.ResolvedNorm != 0 || st.ResolvedFuzzy != 0 {
		t.Fatalf("clean data used non-exact tiers: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("no network time charged: %+v", st)
	}
}

func TestImportCreatesIndexes(t *testing.T) {
	db, _ := importedDB(t)
	defer db.Close()
	tb, _ := db.Table(TableProteins)
	if _, ok := tb.HasIndex("accession"); !ok {
		t.Fatal("accession index missing")
	}
	if typ, ok := tb.HasIndex("length"); !ok || typ != store.IndexBTree {
		t.Fatal("length btree index missing")
	}
	act, _ := db.Table(TableActivities)
	if _, ok := act.HasIndex("affinity"); !ok {
		t.Fatal("affinity index missing")
	}
}

func TestImportResolvesForeignKeys(t *testing.T) {
	db, _ := importedDB(t)
	defer db.Close()
	prot, _ := db.Table(TableProteins)
	accIdx := source.ProteinSchema.ColumnIndex("accession")
	valid := map[string]bool{}
	prot.Scan(func(_ int64, r store.Row) bool {
		valid[r[accIdx].S] = true
		return true
	})
	act, _ := db.Table(TableActivities)
	pIdx := source.ActivitySchema.ColumnIndex("protein_id")
	act.Scan(func(_ int64, r store.Row) bool {
		if !valid[r[pIdx].S] {
			t.Errorf("activity references unknown protein %q", r[pIdx].S)
			return false
		}
		return true
	})
}

func TestImportIdempotentTables(t *testing.T) {
	// A second ImportAll on the same DB must not fail on existing
	// tables (it appends; dedup is the caller's policy).
	cfg := datagen.DefaultConfig()
	cfg.NumFamilies = 1
	cfg.ProteinsPerFamily = 4
	cfg.NumLigands = 5
	ds, _ := datagen.Generate(cfg)
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 3, true)
	db, _ := store.Open("")
	defer db.Close()
	im := NewImporter(db, bundle)
	if _, err := im.ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := im.ImportAll(context.Background()); err != nil {
		t.Fatalf("second import failed: %v", err)
	}
	tb, _ := db.Table(TableProteins)
	if tb.Len() != 8 {
		t.Fatalf("rows after double import = %d, want 8", tb.Len())
	}
}
