package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"drugtree/internal/vfs"
)

// Replication stream errors. ErrWALGap means the requested range has
// been truncated (checkpointed away) or an applied record is not the
// immediate successor of the local sequence — the subscriber must
// re-seed from a snapshot. ErrWALCorrupt means a fully-present record
// failed its checksum: the stream cannot be trusted past that point.
var (
	ErrWALGap     = errors.New("store: WAL sequence gap")
	ErrWALCorrupt = errors.New("store: WAL record corrupt")
)

// ErrPoisoned marks a database whose write path hit an I/O failure
// (WAL append or fsync). Once a WAL write fails the log's tail is in
// an unknown state — a partially-written record may sit where the
// next append would land — so continuing to append could corrupt the
// middle of the log. The DB therefore refuses further mutations
// (reads keep working) until it is closed and reopened; reopen
// recovers to the last durable prefix.
var ErrPoisoned = errors.New("store: write path poisoned by I/O failure")

// SyncPolicy selects when the WAL fsyncs (the durability contract —
// see DESIGN §10).
type SyncPolicy int

const (
	// SyncInterval group-commits: the WAL fsyncs once every
	// Options.SyncEvery records. A crash loses at most the last
	// SyncEvery acknowledged writes.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs on every record before acknowledging it. A
	// crash at any point loses no acknowledged write.
	SyncAlways
	// SyncOff never fsyncs the WAL on the append path (the OS decides
	// when bytes reach disk). Crash loss is unbounded; Close and
	// Checkpoint still sync.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off", "never":
		return SyncOff, nil
	}
	return SyncInterval, fmt.Errorf("store: unknown WAL sync policy %q (want always, interval, or off)", s)
}

// DefaultSyncEvery is the group-commit interval used when
// Options.SyncEvery is zero.
const DefaultSyncEvery = 64

// Options configures a database's durability behaviour. The zero
// value means: real filesystem, interval fsync every DefaultSyncEvery
// records.
type Options struct {
	// FS is the filesystem seam. nil means the real filesystem
	// (vfs.OS()); tests substitute a vfs.FaultFS.
	FS vfs.FS
	// Sync is the WAL fsync policy.
	Sync SyncPolicy
	// SyncEvery is the group-commit interval for SyncInterval
	// (records between fsyncs). Zero means DefaultSyncEvery.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.OS()
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	return o
}

// DB is a named collection of tables with optional durability: when
// opened with a directory, every mutation is appended to a write-ahead
// log and Checkpoint() writes a snapshot and truncates the log. Opened
// with an empty dir, the DB is purely in-memory.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	dir    string
	opts   Options
	fsys   vfs.FS
	wal    *walWriter
	// failed holds the poisoning error once a WAL write/fsync fails;
	// all access is atomic (checked lock-free on every mutation).
	failed atomic.Pointer[error]
	// snapCount tracks outstanding pinned snapshots (leak accounting).
	snapCount atomic.Int64
	// hooks receive a CommitEvent per committed mutation batch on any
	// table; hookMu guards registration against concurrent dispatch.
	hookMu sync.RWMutex
	hooks  []func(CommitEvent)
}

// OnCommit registers fn to receive one CommitEvent per committed
// mutation batch on any table, including tables created later. fn runs
// synchronously inside the table's commit critical section — in strict
// per-table version order — so it must be fast and must not call back
// into the store.
func (db *DB) OnCommit(fn func(CommitEvent)) {
	db.hookMu.Lock()
	db.hooks = append(db.hooks, fn)
	db.hookMu.Unlock()
}

// dispatchCommit fans one table's commit event out to the registered
// hooks. Installed as every table's onCommit at registration time.
func (db *DB) dispatchCommit(ev CommitEvent) {
	db.hookMu.RLock()
	hooks := db.hooks
	db.hookMu.RUnlock()
	for _, fn := range hooks {
		fn(ev)
	}
}

// registerTable wires a freshly created table into the commit-event
// stream before it is published.
func (db *DB) registerTable(t *Table) *Table {
	t.setOnCommit(db.dispatchCommit)
	return t
}

// Open creates or reopens a database with default options (real
// filesystem, interval WAL fsync). dir == "" gives an in-memory
// database; otherwise dir is created if needed, the latest snapshot is
// loaded, and the WAL is replayed.
func Open(dir string) (*DB, error) { return OpenWith(dir, Options{}) }

// OpenWith is Open with explicit durability options. Layers that
// derive child stores from a parent (shard partitions, replica
// followers) pass the parent's Opts() so the whole tree shares one
// filesystem seam and fsync policy.
func OpenWith(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{tables: make(map[string]*Table), dir: dir, opts: opts, fsys: opts.FS}
	if dir == "" {
		return db, nil
	}
	if err := db.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	// Sweep orphaned atomic-rename temporaries: a crash between
	// creating snapshot.dts.tmp and renaming it leaves the tmp behind
	// forever, and a later checkpoint would silently reuse the name.
	if err := db.removeOrphanedTemps(); err != nil {
		return nil, err
	}
	snapSeq, err := db.loadSnapshot()
	if err != nil {
		return nil, err
	}
	walSeq, err := db.replayWAL(snapSeq)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(db.fsys, db.walPath(), opts)
	if err != nil {
		return nil, err
	}
	// Creating the WAL file is a namespace mutation: without a parent
	// directory fsync the file's entry — and with it every record ever
	// appended — can vanish at power loss even though the content was
	// fsynced. One SyncDir here also commits the tmp-sweep removals.
	if err := db.fsys.SyncDir(dir); err != nil {
		w.CloseSync(false)
		return nil, fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	// The sequence counter survives reopen: the snapshot trailer holds
	// the seq at checkpoint time and each surviving WAL record carries
	// its own, so the next mutation continues the monotonic stream.
	w.seq = snapSeq
	if walSeq > w.seq {
		w.seq = walSeq
	}
	db.wal = w
	return db, nil
}

// removeOrphanedTemps deletes *.tmp files left by a crash between
// tmp-create and rename. The removals become durable with the SyncDir
// Open issues after the WAL is created.
func (db *DB) removeOrphanedTemps() error {
	ents, err := db.fsys.ReadDir(db.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: listing %s: %w", db.dir, err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		if err := db.fsys.Remove(filepath.Join(db.dir, e.Name())); err != nil {
			return fmt.Errorf("store: removing orphaned %s: %w", e.Name(), err)
		}
	}
	return nil
}

// Dir returns the durability directory, or "" for an in-memory
// database. Layers that derive per-partition stores from a parent
// (the shard coordinator) use it to place their own directories.
func (db *DB) Dir() string { return db.dir }

// Opts returns the durability options the database was opened with
// (FS seam, sync policy), with defaults filled in. Derived stores
// (shard partitions, replica followers) are opened with these.
func (db *DB) Opts() Options { return db.opts }

// FS returns the filesystem seam the database does its I/O through.
func (db *DB) FS() vfs.FS { return db.fsys }

// Failed reports the poisoning error if the write path has been
// disabled by an earlier I/O failure, else nil. errors.Is(err,
// ErrPoisoned) identifies it.
func (db *DB) Failed() error {
	if p := db.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// poison records err as the reason the write path is now disabled and
// returns the sticky poisoning error. The first failure wins.
func (db *DB) poison(err error) error {
	wrapped := fmt.Errorf("%w: %w", ErrPoisoned, err)
	db.failed.CompareAndSwap(nil, &wrapped)
	return db.Failed()
}

// walFail routes a WAL append error: logical stream errors (sequence
// gaps) pass through untouched, I/O errors poison the write path so
// no further append can land after a possibly-torn tail.
func (db *DB) walFail(err error) error {
	if errors.Is(err, ErrWALGap) {
		return err
	}
	return db.poison(err)
}

// Close flushes and closes the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		// A poisoned WAL must not fsync on close: flushing a torn tail
		// would make the damage durable. Recovery truncates at the torn
		// record either way; skipping the sync keeps the damage small.
		return db.wal.CloseSync(db.Failed() == nil)
	}
	return nil
}

func (db *DB) snapshotPath() string { return filepath.Join(db.dir, "snapshot.dts") }
func (db *DB) walPath() string      { return filepath.Join(db.dir, "wal.dtl") }

// CreateTable creates a table. The schema is logged so reopening
// recreates it.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	if err := db.Failed(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	t := db.registerTable(NewTable(name, schema))
	db.tables[name] = t
	if db.wal != nil {
		if err := db.wal.logCreateTable(name, schema); err != nil {
			return nil, db.walFail(err)
		}
	}
	return t, nil
}

// Table returns the named table, or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// table resolves a table name; callers hold db.mu.
func (db *DB) tableLocked(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

// Insert inserts a row through the DB so it is WAL-logged. Single-row
// mutations hold the database read lock for their whole span: they run
// concurrently with each other and with snapshot pins, but never
// interleave with a CommitDeltas publish (which holds the write lock).
func (db *DB) Insert(table string, r Row) (int64, error) {
	if err := db.Failed(); err != nil {
		return 0, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return 0, err
	}
	id, err := t.Insert(r)
	if err != nil {
		return 0, err
	}
	if db.wal != nil {
		if err := db.wal.logInsert(table, r); err != nil {
			return 0, db.walFail(err)
		}
	}
	return id, nil
}

// Delete removes a row through the DB so it is WAL-logged. Row IDs
// are not stable across recovery, so the log records the row's value;
// replay removes one matching row.
func (db *DB) Delete(table string, id int64) (bool, error) {
	if err := db.Failed(); err != nil {
		return false, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return false, err
	}
	row, ok := t.Get(id)
	if !ok {
		return false, nil
	}
	if !t.Delete(id) {
		return false, nil
	}
	if db.wal != nil {
		if err := db.wal.logDelete(table, row); err != nil {
			return true, db.walFail(err)
		}
	}
	return true, nil
}

// Update replaces a row through the DB so it is WAL-logged (as a
// delete of the old value plus an insert of the new one).
func (db *DB) Update(table string, id int64, r Row) error {
	if err := db.Failed(); err != nil {
		return err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	old, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("store: table %s has no row %d", table, id)
	}
	if err := t.Update(id, r); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.logDelete(table, old); err != nil {
			return db.walFail(err)
		}
		if err := db.wal.logInsert(table, r); err != nil {
			return db.walFail(err)
		}
	}
	return nil
}

// Checkpoint writes a full snapshot and truncates the WAL. The
// protocol is crash-safe at every step: tmp write → tmp fsync → rename
// → directory fsync → WAL truncate (fsynced). A crash before the
// directory fsync recovers from the old snapshot + full WAL; after it,
// from the new snapshot (replay skips records the snapshot already
// holds). A failure while producing the tmp file does not poison the
// database — the WAL is untouched and the tmp is removed — but a
// failure truncating the WAL after the rename does.
func (db *DB) Checkpoint() error {
	if db.dir == "" {
		return nil
	}
	if err := db.Failed(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tmp := db.snapshotPath() + ".tmp"
	f, err := db.fsys.Create(tmp)
	if err != nil {
		return err
	}
	var seq int64
	if db.wal != nil {
		seq = db.wal.Seq()
	}
	w := bufio.NewWriter(f)
	if err := db.writeSnapshot(w, seq); err != nil {
		f.Close()
		db.fsys.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		db.fsys.Remove(tmp)
		return err
	}
	//lint:ignore drugtree/lockcheck checkpoint fsync must run under db.mu so the snapshot is a frozen point-in-time image
	if err := f.Sync(); err != nil {
		f.Close()
		db.fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		db.fsys.Remove(tmp)
		return err
	}
	if err := db.fsys.Rename(tmp, db.snapshotPath()); err != nil {
		return err
	}
	// Rename durability: the new snapshot's directory entry is not on
	// disk until the parent directory is fsynced. Truncating the WAL
	// before this point could lose everything — old snapshot entry
	// replaced in memory, new entry not durable, WAL gone.
	if err := db.fsys.SyncDir(db.dir); err != nil {
		return fmt.Errorf("store: syncing %s after snapshot rename: %w", db.dir, err)
	}
	// Truncate the WAL: everything it held is in the snapshot.
	if db.wal != nil {
		if err := db.wal.Reset(); err != nil {
			// The WAL tail is now unknown (truncation may be partially
			// durable); no further append may land on it.
			return db.poison(err)
		}
	}
	return nil
}

// Snapshot magics. V2 appends a CRC32 of the entire preceding file to
// the end, so at-rest corruption is detected at load instead of being
// served. V1 (no checksum) is still read for compatibility.
var (
	snapshotMagic   = []byte("DTSNAP1\n")
	snapshotMagicV2 = []byte("DTSNAP2\n")
)

// crcWriter tees writes into a running CRC32 so the snapshot checksum
// covers exactly the bytes that reached the writer.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

func (db *DB) writeSnapshot(w *bufio.Writer, seq int64) error {
	cw := &crcWriter{w: w}
	if _, err := cw.Write(snapshotMagicV2); err != nil {
		return err
	}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	if _, err := cw.Write(buf); err != nil {
		return err
	}
	for _, name := range names {
		t := db.tables[name]
		t.mu.RLock()
		err := writeTableSnapshot(cw, t)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	// Trailer: the WAL sequence this snapshot is current through, then
	// the CRC of everything before it (magic through seq).
	buf = binary.AppendUvarint(buf[:0], uint64(seq))
	if _, err := cw.Write(buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], cw.sum)
	_, err := w.Write(crc[:])
	return err
}

// WriteSnapshotTo streams a snapshot of the current contents to w and
// returns the WAL sequence the image is current through. The caller
// must quiesce writers for the image/seq pair to be consistent — the
// replica layer serializes seeding against leader writes.
func (db *DB) WriteSnapshotTo(w io.Writer) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var seq int64
	if db.wal != nil {
		seq = db.wal.Seq()
	}
	bw := bufio.NewWriter(w)
	if err := db.writeSnapshot(bw, seq); err != nil {
		return 0, err
	}
	return seq, bw.Flush()
}

func writeTableSnapshot(w io.Writer, t *Table) error {
	var buf []byte
	buf = appendString(buf, t.name)
	// Schema.
	buf = binary.AppendUvarint(buf, uint64(t.schema.Len()))
	for _, c := range t.schema.Columns {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	// Indexes.
	type ixent struct {
		col string
		typ IndexType
	}
	var ixs []ixent
	for col, ix := range t.indexes {
		ixs = append(ixs, ixent{col, ix.typ})
	}
	sort.Slice(ixs, func(i, j int) bool { return ixs[i].col < ixs[j].col })
	buf = binary.AppendUvarint(buf, uint64(len(ixs)))
	for _, ix := range ixs {
		buf = appendString(buf, ix.col)
		buf = append(buf, byte(ix.typ))
	}
	// Rows: the versions visible at the current commit — a snapshot is
	// a point-in-time image, so superseded and pending-GC versions are
	// not persisted.
	buf = binary.AppendUvarint(buf, uint64(t.live))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	var rowBuf []byte
	for _, chain := range t.rows {
		i := visibleIdx(chain, t.commit)
		if i < 0 {
			continue
		}
		rowBuf = AppendRow(rowBuf[:0], chain[i].row)
		if _, err := w.Write(rowBuf); err != nil {
			return err
		}
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("store: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// checkSnapshotEnvelope validates magic and (for v2) the whole-file
// CRC, returning the body (after the magic, before any checksum
// trailer) ready for structural parsing.
func checkSnapshotEnvelope(path string, data []byte) ([]byte, error) {
	if len(data) < len(snapshotMagic) {
		return nil, fmt.Errorf("store: %s: truncated snapshot header", path)
	}
	magic := data[:len(snapshotMagic)]
	switch {
	case bytes.Equal(magic, snapshotMagicV2):
		if len(data) < len(snapshotMagicV2)+4 {
			return nil, fmt.Errorf("store: %s: truncated snapshot checksum", path)
		}
		body, tail := data[:len(data)-4], data[len(data)-4:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
			return nil, fmt.Errorf("store: %s: snapshot checksum mismatch", path)
		}
		return body[len(snapshotMagicV2):], nil
	case bytes.Equal(magic, snapshotMagic):
		return data[len(snapshotMagic):], nil
	}
	return nil, fmt.Errorf("store: %s is not a DrugTree snapshot", path)
}

func (db *DB) loadSnapshot() (int64, error) {
	data, err := db.fsys.ReadFile(db.snapshotPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	body, err := checkSnapshotEnvelope(db.snapshotPath(), data)
	if err != nil {
		return 0, err
	}
	r := bufio.NewReader(bytes.NewReader(body))
	nTables, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	for ti := uint64(0); ti < nTables; ti++ {
		if err := db.loadTableSnapshot(r); err != nil {
			return 0, fmt.Errorf("store: loading table %d: %w", ti, err)
		}
	}
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil // legacy snapshot without a seq trailer
	}
	return int64(seq), nil
}

func (db *DB) loadTableSnapshot(r *bufio.Reader) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nCols, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if nCols > maxRowCells {
		return fmt.Errorf("store: column count %d exceeds limit", nCols)
	}
	cols := make([]Column, nCols)
	for i := range cols {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return err
		}
		cols[i] = Column{Name: cname, Kind: Kind(kb)}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return err
	}
	t := NewTable(name, schema)
	nIx, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	type ixent struct {
		col string
		typ IndexType
	}
	ixs := make([]ixent, nIx)
	for i := range ixs {
		col, err := readString(r)
		if err != nil {
			return err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return err
		}
		ixs[i] = ixent{col, IndexType(tb)}
	}
	nRows, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRows; i++ {
		row, err := ReadRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if _, err := t.Insert(row); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	// Build indexes after bulk load (cheaper than per-row upkeep).
	for _, ix := range ixs {
		if err := t.CreateIndex(ix.col, ix.typ); err != nil {
			return err
		}
	}
	db.tables[name] = db.registerTable(t)
	return nil
}

// VerifyDir checks the on-disk integrity of a store directory without
// opening it: the snapshot must parse (and, for v2, match its whole-
// file checksum) and every fully-present WAL record must pass its CRC.
// A torn WAL tail is fine — that is normal crash residue recovery
// truncates — but a checksum-bad snapshot or mid-log record returns an
// error (ErrWALCorrupt for the latter). The replica scrubber runs this
// before routing reads to a follower.
func VerifyDir(fsys vfs.FS, dir string) error {
	if fsys == nil {
		fsys = vfs.OS()
	}
	snapPath := filepath.Join(dir, "snapshot.dts")
	if data, err := fsys.ReadFile(snapPath); err == nil {
		body, err := checkSnapshotEnvelope(snapPath, data)
		if err != nil {
			return err
		}
		// Structural parse into a scratch DB so row payloads decode.
		scratch := &DB{tables: make(map[string]*Table)}
		r := bufio.NewReader(bytes.NewReader(body))
		nTables, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("store: %s: %w", snapPath, err)
		}
		for ti := uint64(0); ti < nTables; ti++ {
			if err := scratch.loadTableSnapshot(r); err != nil {
				return fmt.Errorf("store: %s: table %d: %w", snapPath, ti, err)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	walPath := filepath.Join(dir, "wal.dtl")
	data, err := fsys.ReadFile(walPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	r := bufio.NewReader(bytes.NewReader(data))
	var prev int64
	for {
		n, err := binary.ReadUvarint(r)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil || n > 64<<20 {
			return nil // torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn payload
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil // torn checksum
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			// Distinguish "last record torn" (clean) from "mid-log rot"
			// (corrupt): if more bytes follow this record it cannot be
			// crash residue.
			if _, err := r.Peek(1); err != nil {
				return nil
			}
			return fmt.Errorf("store: %s: record after seq %d: %w", walPath, prev, ErrWALCorrupt)
		}
		seq, m := binary.Uvarint(payload)
		if m <= 0 {
			return fmt.Errorf("store: %s: record after seq %d: %w", walPath, prev, ErrWALCorrupt)
		}
		prev = int64(seq)
	}
}

// --- WAL ---

// WAL record types.
const (
	walCreateTable = 1
	walInsert      = 2
	walDelete      = 3
	// walBatch is an atomic multi-table delta: per table, the deleted
	// rows' values followed by the inserted rows. The whole batch rides
	// in ONE length-prefixed CRC-protected record, so recovery replays
	// it entirely or not at all — a power cut mid-publish lands on
	// exactly the old or the new version, never between.
	walBatch = 4
)

// walWriter appends length-prefixed CRC-protected records, each
// carrying a monotonic sequence number so replicas can tail the log.
// Fsync is group-committed: appends run under mu, fsyncs under the
// separate syncMu, and a waiter whose record was already covered by a
// concurrent fsync returns without issuing its own.
type walWriter struct {
	mu     sync.Mutex
	f      vfs.File
	fsys   vfs.FS
	buf    []byte
	seq    int64
	policy SyncPolicy
	every  int64
	// written counts records appended (under mu); synced is the
	// written-count covered by the last successful fsync.
	written int64
	synced  atomic.Int64
	syncMu  sync.Mutex
}

func openWAL(fsys vfs.FS, path string, opts Options) (*walWriter, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, fsys: fsys, policy: opts.Sync, every: int64(opts.SyncEvery)}, nil
}

// CloseSync closes the WAL, first fsyncing buffered records (unless
// the caller is poisoned and passes sync=false).
func (w *walWriter) CloseSync(sync bool) error {
	if sync {
		w.mu.Lock()
		ticket := w.written
		w.mu.Unlock()
		if err := w.syncTo(ticket); err != nil {
			w.f.Close()
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Reset truncates the log (called after a checkpoint) and fsyncs the
// truncation so a post-checkpoint crash cannot resurrect pre-checkpoint
// records — replaying those on top of the new snapshot would duplicate
// rows. The sequence counter is NOT reset: seq is monotonic for the
// lifetime of the database so replicas can detect a truncation as a gap.
func (w *walWriter) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	//lint:ignore drugtree/lockcheck truncation fsync must complete before any post-checkpoint append is allowed to land
	if err := w.f.Sync(); err != nil {
		return err
	}
	// The (empty) log is fully durable.
	w.synced.Store(w.written)
	return nil
}

// Seq returns the sequence number of the last record written.
func (w *walWriter) Seq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// syncTo guarantees the first `ticket` appended records are durable
// when it returns nil. Group commit: if a concurrent fsync already
// covered the ticket this returns immediately; otherwise one fsync is
// issued that covers every record appended before it started.
func (w *walWriter) syncTo(ticket int64) error {
	if w.synced.Load() >= ticket {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= ticket {
		return nil // a group commit raced ahead of us
	}
	w.mu.Lock()
	covered := w.written
	w.mu.Unlock()
	//lint:ignore drugtree/lockcheck group commit holds syncMu across the fsync by design: it is the ticket that lets concurrent committers piggyback on one disk flush
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced.Store(covered)
	return nil
}

// writeRecord assigns the next sequence number, appends body, and
// applies the fsync policy before acknowledging.
func (w *walWriter) writeRecord(body []byte) error {
	w.mu.Lock()
	err := w.writeRecordLocked(w.seq+1, body)
	ticket := w.written
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.maybeSync(ticket)
}

// writeRecordAt appends body under an externally-assigned sequence
// number (a replicated record): it must be the immediate successor of
// the local stream or the caller has lost records.
func (w *walWriter) writeRecordAt(seq int64, body []byte) error {
	w.mu.Lock()
	if seq != w.seq+1 {
		w.mu.Unlock()
		return fmt.Errorf("store: WAL append seq %d after %d: %w", seq, w.seq, ErrWALGap)
	}
	err := w.writeRecordLocked(seq, body)
	ticket := w.written
	w.mu.Unlock()
	if err != nil {
		return err
	}
	return w.maybeSync(ticket)
}

// maybeSync applies the fsync policy after a successful append of the
// ticket'th record.
func (w *walWriter) maybeSync(ticket int64) error {
	switch w.policy {
	case SyncAlways:
		return w.syncTo(ticket)
	case SyncInterval:
		if ticket-w.synced.Load() >= w.every {
			return w.syncTo(ticket)
		}
	}
	return nil
}

// writeRecordLocked frames `uvarint(seq) ++ body` as: uvarint length,
// payload, crc32. Callers hold w.mu.
func (w *walWriter) writeRecordLocked(seq int64, body []byte) error {
	payload := binary.AppendUvarint(nil, uint64(seq))
	payload = append(payload, body...)
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, crc[:]...)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.seq = seq
	w.written++
	return nil
}

func (w *walWriter) logCreateTable(name string, schema *Schema) error {
	var p []byte
	p = append(p, walCreateTable)
	p = appendString(p, name)
	p = binary.AppendUvarint(p, uint64(schema.Len()))
	for _, c := range schema.Columns {
		p = appendString(p, c.Name)
		p = append(p, byte(c.Kind))
	}
	return w.writeRecord(p)
}

func (w *walWriter) logInsert(table string, r Row) error {
	var p []byte
	p = append(p, walInsert)
	p = appendString(p, table)
	p = AppendRow(p, r)
	return w.writeRecord(p)
}

func (w *walWriter) logDelete(table string, r Row) error {
	var p []byte
	p = append(p, walDelete)
	p = appendString(p, table)
	p = AppendRow(p, r)
	return w.writeRecord(p)
}

// walTableDelta is one table's slice of a batch record.
type walTableDelta struct {
	table   string
	deletes []Row
	inserts []Row
}

func (w *walWriter) logBatch(deltas []walTableDelta) error {
	var p []byte
	p = append(p, walBatch)
	p = binary.AppendUvarint(p, uint64(len(deltas)))
	for _, d := range deltas {
		p = appendString(p, d.table)
		p = binary.AppendUvarint(p, uint64(len(d.deletes)))
		for _, r := range d.deletes {
			p = AppendRow(p, r)
		}
		p = binary.AppendUvarint(p, uint64(len(d.inserts)))
		for _, r := range d.inserts {
			p = AppendRow(p, r)
		}
	}
	return w.writeRecord(p)
}

// replayWAL applies logged mutations after the snapshot and returns
// the sequence number of the last record applied. A torn or corrupt
// tail record ends replay cleanly (standard WAL semantics). snapSeq is
// the sequence the snapshot is current through: records at or below it
// are already folded into the snapshot and are skipped — replaying
// them would double-apply (a crash between the snapshot rename and the
// WAL truncation leaves exactly that overlap on disk).
func (db *DB) replayWAL(snapSeq int64) (int64, error) {
	f, err := db.fsys.Open(db.walPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return db.replayWALFrom(bufio.NewReader(f), snapSeq)
}

// replayWALFrom is the reader-driven core of replayWAL, split out so
// tests can feed it transports that decorate errors: end-of-stream is
// detected with errors.Is(err, io.EOF), not identity, so a source that
// returns a wrapped EOF still ends replay cleanly instead of being
// mistaken for a torn record.
func (db *DB) replayWALFrom(r *bufio.Reader, snapSeq int64) (int64, error) {
	var last int64
	for {
		n, err := binary.ReadUvarint(r)
		if errors.Is(err, io.EOF) {
			return last, nil
		}
		if err != nil {
			return last, nil // torn length: stop replay
		}
		if n > 64<<20 {
			return last, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return last, nil // torn payload
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return last, nil
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			return last, nil // corrupt record: stop
		}
		seq, m := binary.Uvarint(payload)
		if m <= 0 {
			return last, nil // unparseable seq prefix: stop
		}
		if int64(seq) <= snapSeq {
			last = int64(seq)
			continue // already folded into the snapshot
		}
		if err := db.applyWALRecord(payload[m:]); err != nil {
			return last, fmt.Errorf("store: replaying WAL: %w", err)
		}
		last = int64(seq)
	}
}

// WALSeq returns the sequence number of the last WAL record written.
// An in-memory database (no WAL) always reports 0.
func (db *DB) WALSeq() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Seq()
}

// ScanWAL streams the bodies of WAL records with sequence numbers
// strictly greater than fromSeq, in order. It is the replication
// segment-read API: a follower at fromSeq calls it on the leader's
// store and applies each record via ApplyReplicated.
//
// Error contract:
//   - A torn tail (bytes run out mid-record) ends the scan cleanly —
//     the record was never durably committed.
//   - A fully-present record failing its CRC yields ErrWALCorrupt.
//   - Records missing below fromSeq+1 (checkpoint truncated them
//     away) yield ErrWALGap: the caller must re-seed from a snapshot.
func (db *DB) ScanWAL(fromSeq int64, fn func(seq int64, body []byte) error) error {
	if db.dir == "" {
		return errors.New("store: ScanWAL requires a durable database")
	}
	frontier := db.WALSeq()
	f, err := db.fsys.Open(db.walPath())
	if os.IsNotExist(err) {
		if frontier > fromSeq {
			return fmt.Errorf("store: records after seq %d truncated: %w", fromSeq, ErrWALGap)
		}
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	next := fromSeq + 1
	var prev int64
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			// EOF or torn length: end of committed log. An empty log
			// while the database is ahead of the caller means a
			// checkpoint truncated the records away.
			if prev == 0 && next <= frontier {
				return fmt.Errorf("store: records after seq %d truncated: %w", fromSeq, ErrWALGap)
			}
			return nil
		}
		if n > 64<<20 {
			return nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn payload
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil // torn checksum
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			return fmt.Errorf("store: WAL record after seq %d: %w", prev, ErrWALCorrupt)
		}
		seq, m := binary.Uvarint(payload)
		if m <= 0 {
			return fmt.Errorf("store: WAL record after seq %d: %w", prev, ErrWALCorrupt)
		}
		prev = int64(seq)
		if int64(seq) < next {
			continue // already applied by the caller
		}
		if int64(seq) > next {
			return fmt.Errorf("store: want seq %d, log resumes at %d: %w", next, seq, ErrWALGap)
		}
		if err := fn(int64(seq), payload[m:]); err != nil {
			return err
		}
		next++
	}
}

// ApplyReplicated applies a WAL record body shipped from a leader and
// appends it to the local WAL under the same sequence number, so a
// follower's log stays byte-compatible with the stream it consumed.
// seq must be the immediate successor of WALSeq(): anything else is a
// gap (ErrWALGap) and the follower must re-seed.
func (db *DB) ApplyReplicated(seq int64, body []byte) error {
	if err := db.Failed(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return errors.New("store: ApplyReplicated requires a durable database")
	}
	if cur := db.wal.Seq(); seq != cur+1 {
		return fmt.Errorf("store: apply seq %d after %d: %w", seq, cur, ErrWALGap)
	}
	if err := db.applyWALRecord(body); err != nil {
		return fmt.Errorf("store: applying replicated record %d: %w", seq, err)
	}
	if err := db.wal.writeRecordAt(seq, body); err != nil {
		return db.walFail(err)
	}
	return nil
}

func (db *DB) applyWALRecord(p []byte) error {
	r := bufio.NewReader(bytes.NewReader(p))
	typ, err := r.ReadByte()
	if err != nil {
		return err
	}
	switch typ {
	case walCreateTable:
		name, err := readString(r)
		if err != nil {
			return err
		}
		nCols, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		cols := make([]Column, nCols)
		for i := range cols {
			cname, err := readString(r)
			if err != nil {
				return err
			}
			kb, err := r.ReadByte()
			if err != nil {
				return err
			}
			cols[i] = Column{Name: cname, Kind: Kind(kb)}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return err
		}
		if _, exists := db.tables[name]; exists {
			return nil // snapshot already has it
		}
		db.tables[name] = db.registerTable(NewTable(name, schema))
		return nil
	case walInsert:
		name, err := readString(r)
		if err != nil {
			return err
		}
		row, err := ReadRow(r)
		if err != nil {
			return err
		}
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("insert into unknown table %q", name)
		}
		_, err = t.Insert(row)
		return err
	case walDelete:
		name, err := readString(r)
		if err != nil {
			return err
		}
		row, err := ReadRow(r)
		if err != nil {
			return err
		}
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("delete from unknown table %q", name)
		}
		t.deleteByValue(row)
		return nil
	case walBatch:
		nTables, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		for ti := uint64(0); ti < nTables; ti++ {
			name, err := readString(r)
			if err != nil {
				return err
			}
			readRows := func() ([]Row, error) {
				n, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, err
				}
				rows := make([]Row, 0, n)
				for i := uint64(0); i < n; i++ {
					row, err := ReadRow(r)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
				return rows, nil
			}
			deletes, err := readRows()
			if err != nil {
				return err
			}
			inserts, err := readRows()
			if err != nil {
				return err
			}
			t, ok := db.tables[name]
			if !ok {
				return fmt.Errorf("batch delta for unknown table %q", name)
			}
			if err := t.applyDeltaByValue(deletes, inserts); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown WAL record type %d", p[0])
}
