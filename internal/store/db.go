package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DB is a named collection of tables with optional durability: when
// opened with a directory, every mutation is appended to a write-ahead
// log and Checkpoint() writes a snapshot and truncates the log. Opened
// with an empty dir, the DB is purely in-memory.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	dir    string
	wal    *walWriter
}

// Open creates or reopens a database. dir == "" gives an in-memory
// database; otherwise dir is created if needed, the latest snapshot is
// loaded, and the WAL is replayed.
func Open(dir string) (*DB, error) {
	db := &DB{tables: make(map[string]*Table), dir: dir}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := db.replayWAL(); err != nil {
		return nil, err
	}
	w, err := openWAL(db.walPath())
	if err != nil {
		return nil, err
	}
	db.wal = w
	return db, nil
}

// Dir returns the durability directory, or "" for an in-memory
// database. Layers that derive per-partition stores from a parent
// (the shard coordinator) use it to place their own directories.
func (db *DB) Dir() string { return db.dir }

// Close flushes and closes the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

func (db *DB) snapshotPath() string { return filepath.Join(db.dir, "snapshot.dts") }
func (db *DB) walPath() string      { return filepath.Join(db.dir, "wal.dtl") }

// CreateTable creates a table. The schema is logged so reopening
// recreates it.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[name] = t
	if db.wal != nil {
		if err := db.wal.logCreateTable(name, schema); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table returns the named table, or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Insert inserts a row through the DB so it is WAL-logged.
func (db *DB) Insert(table string, r Row) (int64, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	id, err := t.Insert(r)
	if err != nil {
		return 0, err
	}
	if db.wal != nil {
		if err := db.wal.logInsert(table, r); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Delete removes a row through the DB so it is WAL-logged. Row IDs
// are not stable across recovery, so the log records the row's value;
// replay removes one matching row.
func (db *DB) Delete(table string, id int64) (bool, error) {
	t, err := db.Table(table)
	if err != nil {
		return false, err
	}
	row, ok := t.Get(id)
	if !ok {
		return false, nil
	}
	if !t.Delete(id) {
		return false, nil
	}
	if db.wal != nil {
		if err := db.wal.logDelete(table, row); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Update replaces a row through the DB so it is WAL-logged (as a
// delete of the old value plus an insert of the new one).
func (db *DB) Update(table string, id int64, r Row) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	old, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("store: table %s has no row %d", table, id)
	}
	if err := t.Update(id, r); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.logDelete(table, old); err != nil {
			return err
		}
		if err := db.wal.logInsert(table, r); err != nil {
			return err
		}
	}
	return nil
}

// deleteByValue removes one row equal to r (used by WAL replay).
func (t *Table) deleteByValue(r Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, existing := range t.rows {
		if len(existing) != len(r) {
			continue
		}
		match := true
		for i := range r {
			if existing[i].K != r[i].K || !Equal(existing[i], r[i]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for _, idx := range t.indexes {
			idx.remove(existing[idx.column], id)
		}
		delete(t.rows, id)
		t.version++
		return true
	}
	return false
}

// Checkpoint writes a full snapshot and truncates the WAL.
func (db *DB) Checkpoint() error {
	if db.dir == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tmp := db.snapshotPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := db.writeSnapshot(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	//lint:ignore drugtree/lockcheck checkpoint fsync must run under db.mu so the snapshot is a frozen point-in-time image
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, db.snapshotPath()); err != nil {
		return err
	}
	// Truncate the WAL: everything it held is in the snapshot.
	if db.wal != nil {
		if err := db.wal.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// snapshotMagic identifies DrugTree snapshot files.
var snapshotMagic = []byte("DTSNAP1\n")

func (db *DB) writeSnapshot(w *bufio.Writer) error {
	if _, err := w.Write(snapshotMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, name := range names {
		t := db.tables[name]
		t.mu.RLock()
		err := writeTableSnapshot(w, t)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func writeTableSnapshot(w *bufio.Writer, t *Table) error {
	var buf []byte
	buf = appendString(buf, t.name)
	// Schema.
	buf = binary.AppendUvarint(buf, uint64(t.schema.Len()))
	for _, c := range t.schema.Columns {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	// Indexes.
	type ixent struct {
		col string
		typ IndexType
	}
	var ixs []ixent
	for col, ix := range t.indexes {
		ixs = append(ixs, ixent{col, ix.typ})
	}
	sort.Slice(ixs, func(i, j int) bool { return ixs[i].col < ixs[j].col })
	buf = binary.AppendUvarint(buf, uint64(len(ixs)))
	for _, ix := range ixs {
		buf = appendString(buf, ix.col)
		buf = append(buf, byte(ix.typ))
	}
	// Rows.
	buf = binary.AppendUvarint(buf, uint64(len(t.rows)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	var rowBuf []byte
	for _, r := range t.rows {
		rowBuf = AppendRow(rowBuf[:0], r)
		if _, err := w.Write(rowBuf); err != nil {
			return err
		}
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("store: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (db *DB) loadSnapshot() error {
	f, err := os.Open(db.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return fmt.Errorf("store: %s is not a DrugTree snapshot", db.snapshotPath())
	}
	nTables, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for ti := uint64(0); ti < nTables; ti++ {
		if err := db.loadTableSnapshot(r); err != nil {
			return fmt.Errorf("store: loading table %d: %w", ti, err)
		}
	}
	return nil
}

func (db *DB) loadTableSnapshot(r *bufio.Reader) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nCols, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if nCols > maxRowCells {
		return fmt.Errorf("store: column count %d exceeds limit", nCols)
	}
	cols := make([]Column, nCols)
	for i := range cols {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return err
		}
		cols[i] = Column{Name: cname, Kind: Kind(kb)}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return err
	}
	t := NewTable(name, schema)
	nIx, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	type ixent struct {
		col string
		typ IndexType
	}
	ixs := make([]ixent, nIx)
	for i := range ixs {
		col, err := readString(r)
		if err != nil {
			return err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return err
		}
		ixs[i] = ixent{col, IndexType(tb)}
	}
	nRows, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRows; i++ {
		row, err := ReadRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if _, err := t.Insert(row); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	// Build indexes after bulk load (cheaper than per-row upkeep).
	for _, ix := range ixs {
		if err := t.CreateIndex(ix.col, ix.typ); err != nil {
			return err
		}
	}
	db.tables[name] = t
	return nil
}

// --- WAL ---

// WAL record types.
const (
	walCreateTable = 1
	walInsert      = 2
	walDelete      = 3
)

// walWriter appends length-prefixed CRC-protected records.
type walWriter struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
}

func openWAL(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f}, nil
}

func (w *walWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Reset truncates the log (called after a checkpoint).
func (w *walWriter) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	_, err := w.f.Seek(0, io.SeekStart)
	return err
}

// writeRecord frames payload as: uvarint length, payload, crc32.
func (w *walWriter) writeRecord(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, crc[:]...)
	_, err := w.f.Write(w.buf)
	return err
}

func (w *walWriter) logCreateTable(name string, schema *Schema) error {
	var p []byte
	p = append(p, walCreateTable)
	p = appendString(p, name)
	p = binary.AppendUvarint(p, uint64(schema.Len()))
	for _, c := range schema.Columns {
		p = appendString(p, c.Name)
		p = append(p, byte(c.Kind))
	}
	return w.writeRecord(p)
}

func (w *walWriter) logInsert(table string, r Row) error {
	var p []byte
	p = append(p, walInsert)
	p = appendString(p, table)
	p = AppendRow(p, r)
	return w.writeRecord(p)
}

func (w *walWriter) logDelete(table string, r Row) error {
	var p []byte
	p = append(p, walDelete)
	p = appendString(p, table)
	p = AppendRow(p, r)
	return w.writeRecord(p)
}

// replayWAL applies logged mutations after the snapshot. A torn or
// corrupt tail record ends replay cleanly (standard WAL semantics).
func (db *DB) replayWAL() error {
	f, err := os.Open(db.walPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		n, err := binary.ReadUvarint(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return nil // torn length: stop replay
		}
		if n > 64<<20 {
			return nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn payload
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			return nil // corrupt record: stop
		}
		if err := db.applyWALRecord(payload); err != nil {
			return fmt.Errorf("store: replaying WAL: %w", err)
		}
	}
}

func (db *DB) applyWALRecord(p []byte) error {
	r := bufio.NewReader(bytes.NewReader(p))
	typ, err := r.ReadByte()
	if err != nil {
		return err
	}
	switch typ {
	case walCreateTable:
		name, err := readString(r)
		if err != nil {
			return err
		}
		nCols, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		cols := make([]Column, nCols)
		for i := range cols {
			cname, err := readString(r)
			if err != nil {
				return err
			}
			kb, err := r.ReadByte()
			if err != nil {
				return err
			}
			cols[i] = Column{Name: cname, Kind: Kind(kb)}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return err
		}
		if _, exists := db.tables[name]; exists {
			return nil // snapshot already has it
		}
		db.tables[name] = NewTable(name, schema)
		return nil
	case walInsert:
		name, err := readString(r)
		if err != nil {
			return err
		}
		row, err := ReadRow(r)
		if err != nil {
			return err
		}
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("insert into unknown table %q", name)
		}
		_, err = t.Insert(row)
		return err
	case walDelete:
		name, err := readString(r)
		if err != nil {
			return err
		}
		row, err := ReadRow(r)
		if err != nil {
			return err
		}
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("delete from unknown table %q", name)
		}
		t.deleteByValue(row)
		return nil
	}
	return fmt.Errorf("unknown WAL record type %d", p[0])
}
