package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Replication stream errors. ErrWALGap means the requested range has
// been truncated (checkpointed away) or an applied record is not the
// immediate successor of the local sequence — the subscriber must
// re-seed from a snapshot. ErrWALCorrupt means a fully-present record
// failed its checksum: the stream cannot be trusted past that point.
var (
	ErrWALGap     = errors.New("store: WAL sequence gap")
	ErrWALCorrupt = errors.New("store: WAL record corrupt")
)

// DB is a named collection of tables with optional durability: when
// opened with a directory, every mutation is appended to a write-ahead
// log and Checkpoint() writes a snapshot and truncates the log. Opened
// with an empty dir, the DB is purely in-memory.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	dir    string
	wal    *walWriter
}

// Open creates or reopens a database. dir == "" gives an in-memory
// database; otherwise dir is created if needed, the latest snapshot is
// loaded, and the WAL is replayed.
func Open(dir string) (*DB, error) {
	db := &DB{tables: make(map[string]*Table), dir: dir}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	snapSeq, err := db.loadSnapshot()
	if err != nil {
		return nil, err
	}
	walSeq, err := db.replayWAL()
	if err != nil {
		return nil, err
	}
	w, err := openWAL(db.walPath())
	if err != nil {
		return nil, err
	}
	// The sequence counter survives reopen: the snapshot trailer holds
	// the seq at checkpoint time and each surviving WAL record carries
	// its own, so the next mutation continues the monotonic stream.
	w.seq = snapSeq
	if walSeq > w.seq {
		w.seq = walSeq
	}
	db.wal = w
	return db, nil
}

// Dir returns the durability directory, or "" for an in-memory
// database. Layers that derive per-partition stores from a parent
// (the shard coordinator) use it to place their own directories.
func (db *DB) Dir() string { return db.dir }

// Close flushes and closes the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		return db.wal.Close()
	}
	return nil
}

func (db *DB) snapshotPath() string { return filepath.Join(db.dir, "snapshot.dts") }
func (db *DB) walPath() string      { return filepath.Join(db.dir, "wal.dtl") }

// CreateTable creates a table. The schema is logged so reopening
// recreates it.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("store: table %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[name] = t
	if db.wal != nil {
		if err := db.wal.logCreateTable(name, schema); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table returns the named table, or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

// TableNames returns the sorted table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Insert inserts a row through the DB so it is WAL-logged.
func (db *DB) Insert(table string, r Row) (int64, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	id, err := t.Insert(r)
	if err != nil {
		return 0, err
	}
	if db.wal != nil {
		if err := db.wal.logInsert(table, r); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// Delete removes a row through the DB so it is WAL-logged. Row IDs
// are not stable across recovery, so the log records the row's value;
// replay removes one matching row.
func (db *DB) Delete(table string, id int64) (bool, error) {
	t, err := db.Table(table)
	if err != nil {
		return false, err
	}
	row, ok := t.Get(id)
	if !ok {
		return false, nil
	}
	if !t.Delete(id) {
		return false, nil
	}
	if db.wal != nil {
		if err := db.wal.logDelete(table, row); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Update replaces a row through the DB so it is WAL-logged (as a
// delete of the old value plus an insert of the new one).
func (db *DB) Update(table string, id int64, r Row) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	old, ok := t.Get(id)
	if !ok {
		return fmt.Errorf("store: table %s has no row %d", table, id)
	}
	if err := t.Update(id, r); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.logDelete(table, old); err != nil {
			return err
		}
		if err := db.wal.logInsert(table, r); err != nil {
			return err
		}
	}
	return nil
}

// deleteByValue removes one row equal to r (used by WAL replay).
func (t *Table) deleteByValue(r Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, existing := range t.rows {
		if len(existing) != len(r) {
			continue
		}
		match := true
		for i := range r {
			if existing[i].K != r[i].K || !Equal(existing[i], r[i]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for _, idx := range t.indexes {
			idx.remove(existing[idx.column], id)
		}
		delete(t.rows, id)
		t.version++
		return true
	}
	return false
}

// Checkpoint writes a full snapshot and truncates the WAL.
func (db *DB) Checkpoint() error {
	if db.dir == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tmp := db.snapshotPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	var seq int64
	if db.wal != nil {
		seq = db.wal.Seq()
	}
	if err := db.writeSnapshot(w, seq); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	//lint:ignore drugtree/lockcheck checkpoint fsync must run under db.mu so the snapshot is a frozen point-in-time image
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, db.snapshotPath()); err != nil {
		return err
	}
	// Truncate the WAL: everything it held is in the snapshot.
	if db.wal != nil {
		if err := db.wal.Reset(); err != nil {
			return err
		}
	}
	return nil
}

// snapshotMagic identifies DrugTree snapshot files.
var snapshotMagic = []byte("DTSNAP1\n")

func (db *DB) writeSnapshot(w *bufio.Writer, seq int64) error {
	if _, err := w.Write(snapshotMagic); err != nil {
		return err
	}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, name := range names {
		t := db.tables[name]
		t.mu.RLock()
		err := writeTableSnapshot(w, t)
		t.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	// Trailer: the WAL sequence this snapshot is current through.
	// Readers that predate the trailer stop at the last table; readers
	// that expect it treat EOF as seq 0 (legacy snapshot).
	buf = binary.AppendUvarint(buf[:0], uint64(seq))
	_, err := w.Write(buf)
	return err
}

// WriteSnapshotTo streams a snapshot of the current contents to w and
// returns the WAL sequence the image is current through. The caller
// must quiesce writers for the image/seq pair to be consistent — the
// replica layer serializes seeding against leader writes.
func (db *DB) WriteSnapshotTo(w io.Writer) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var seq int64
	if db.wal != nil {
		seq = db.wal.Seq()
	}
	bw := bufio.NewWriter(w)
	if err := db.writeSnapshot(bw, seq); err != nil {
		return 0, err
	}
	return seq, bw.Flush()
}

func writeTableSnapshot(w *bufio.Writer, t *Table) error {
	var buf []byte
	buf = appendString(buf, t.name)
	// Schema.
	buf = binary.AppendUvarint(buf, uint64(t.schema.Len()))
	for _, c := range t.schema.Columns {
		buf = appendString(buf, c.Name)
		buf = append(buf, byte(c.Kind))
	}
	// Indexes.
	type ixent struct {
		col string
		typ IndexType
	}
	var ixs []ixent
	for col, ix := range t.indexes {
		ixs = append(ixs, ixent{col, ix.typ})
	}
	sort.Slice(ixs, func(i, j int) bool { return ixs[i].col < ixs[j].col })
	buf = binary.AppendUvarint(buf, uint64(len(ixs)))
	for _, ix := range ixs {
		buf = appendString(buf, ix.col)
		buf = append(buf, byte(ix.typ))
	}
	// Rows.
	buf = binary.AppendUvarint(buf, uint64(len(t.rows)))
	if _, err := w.Write(buf); err != nil {
		return err
	}
	var rowBuf []byte
	for _, r := range t.rows {
		rowBuf = AppendRow(rowBuf[:0], r)
		if _, err := w.Write(rowBuf); err != nil {
			return err
		}
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("store: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (db *DB) loadSnapshot() (int64, error) {
	f, err := os.Open(db.snapshotPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return 0, fmt.Errorf("store: %s is not a DrugTree snapshot", db.snapshotPath())
	}
	nTables, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	for ti := uint64(0); ti < nTables; ti++ {
		if err := db.loadTableSnapshot(r); err != nil {
			return 0, fmt.Errorf("store: loading table %d: %w", ti, err)
		}
	}
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil // legacy snapshot without a seq trailer
	}
	return int64(seq), nil
}

func (db *DB) loadTableSnapshot(r *bufio.Reader) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nCols, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if nCols > maxRowCells {
		return fmt.Errorf("store: column count %d exceeds limit", nCols)
	}
	cols := make([]Column, nCols)
	for i := range cols {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return err
		}
		cols[i] = Column{Name: cname, Kind: Kind(kb)}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return err
	}
	t := NewTable(name, schema)
	nIx, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	type ixent struct {
		col string
		typ IndexType
	}
	ixs := make([]ixent, nIx)
	for i := range ixs {
		col, err := readString(r)
		if err != nil {
			return err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return err
		}
		ixs[i] = ixent{col, IndexType(tb)}
	}
	nRows, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRows; i++ {
		row, err := ReadRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if _, err := t.Insert(row); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	// Build indexes after bulk load (cheaper than per-row upkeep).
	for _, ix := range ixs {
		if err := t.CreateIndex(ix.col, ix.typ); err != nil {
			return err
		}
	}
	db.tables[name] = t
	return nil
}

// --- WAL ---

// WAL record types.
const (
	walCreateTable = 1
	walInsert      = 2
	walDelete      = 3
)

// walWriter appends length-prefixed CRC-protected records, each
// carrying a monotonic sequence number so replicas can tail the log.
type walWriter struct {
	mu  sync.Mutex
	f   *os.File
	buf []byte
	seq int64
}

func openWAL(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f}, nil
}

func (w *walWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Reset truncates the log (called after a checkpoint). The sequence
// counter is NOT reset: seq is monotonic for the lifetime of the
// database so replicas can detect a truncation as a gap.
func (w *walWriter) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	_, err := w.f.Seek(0, io.SeekStart)
	return err
}

// Seq returns the sequence number of the last record written.
func (w *walWriter) Seq() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// writeRecord assigns the next sequence number and appends body.
func (w *walWriter) writeRecord(body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeRecordLocked(w.seq+1, body)
}

// writeRecordAt appends body under an externally-assigned sequence
// number (a replicated record): it must be the immediate successor of
// the local stream or the caller has lost records.
func (w *walWriter) writeRecordAt(seq int64, body []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq != w.seq+1 {
		return fmt.Errorf("store: WAL append seq %d after %d: %w", seq, w.seq, ErrWALGap)
	}
	return w.writeRecordLocked(seq, body)
}

// writeRecordLocked frames `uvarint(seq) ++ body` as: uvarint length,
// payload, crc32. Callers hold w.mu.
func (w *walWriter) writeRecordLocked(seq int64, body []byte) error {
	payload := binary.AppendUvarint(nil, uint64(seq))
	payload = append(payload, body...)
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, crc[:]...)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.seq = seq
	return nil
}

func (w *walWriter) logCreateTable(name string, schema *Schema) error {
	var p []byte
	p = append(p, walCreateTable)
	p = appendString(p, name)
	p = binary.AppendUvarint(p, uint64(schema.Len()))
	for _, c := range schema.Columns {
		p = appendString(p, c.Name)
		p = append(p, byte(c.Kind))
	}
	return w.writeRecord(p)
}

func (w *walWriter) logInsert(table string, r Row) error {
	var p []byte
	p = append(p, walInsert)
	p = appendString(p, table)
	p = AppendRow(p, r)
	return w.writeRecord(p)
}

func (w *walWriter) logDelete(table string, r Row) error {
	var p []byte
	p = append(p, walDelete)
	p = appendString(p, table)
	p = AppendRow(p, r)
	return w.writeRecord(p)
}

// replayWAL applies logged mutations after the snapshot and returns
// the sequence number of the last record applied. A torn or corrupt
// tail record ends replay cleanly (standard WAL semantics).
func (db *DB) replayWAL() (int64, error) {
	f, err := os.Open(db.walPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return db.replayWALFrom(bufio.NewReader(f))
}

// replayWALFrom is the reader-driven core of replayWAL, split out so
// tests can feed it transports that decorate errors: end-of-stream is
// detected with errors.Is(err, io.EOF), not identity, so a source that
// returns a wrapped EOF still ends replay cleanly instead of being
// mistaken for a torn record.
func (db *DB) replayWALFrom(r *bufio.Reader) (int64, error) {
	var last int64
	for {
		n, err := binary.ReadUvarint(r)
		if errors.Is(err, io.EOF) {
			return last, nil
		}
		if err != nil {
			return last, nil // torn length: stop replay
		}
		if n > 64<<20 {
			return last, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return last, nil // torn payload
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return last, nil
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			return last, nil // corrupt record: stop
		}
		seq, m := binary.Uvarint(payload)
		if m <= 0 {
			return last, nil // unparseable seq prefix: stop
		}
		if err := db.applyWALRecord(payload[m:]); err != nil {
			return last, fmt.Errorf("store: replaying WAL: %w", err)
		}
		last = int64(seq)
	}
}

// WALSeq returns the sequence number of the last WAL record written.
// An in-memory database (no WAL) always reports 0.
func (db *DB) WALSeq() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Seq()
}

// ScanWAL streams the bodies of WAL records with sequence numbers
// strictly greater than fromSeq, in order. It is the replication
// segment-read API: a follower at fromSeq calls it on the leader's
// store and applies each record via ApplyReplicated.
//
// Error contract:
//   - A torn tail (bytes run out mid-record) ends the scan cleanly —
//     the record was never durably committed.
//   - A fully-present record failing its CRC yields ErrWALCorrupt.
//   - Records missing below fromSeq+1 (checkpoint truncated them
//     away) yield ErrWALGap: the caller must re-seed from a snapshot.
func (db *DB) ScanWAL(fromSeq int64, fn func(seq int64, body []byte) error) error {
	if db.dir == "" {
		return errors.New("store: ScanWAL requires a durable database")
	}
	frontier := db.WALSeq()
	f, err := os.Open(db.walPath())
	if os.IsNotExist(err) {
		if frontier > fromSeq {
			return fmt.Errorf("store: records after seq %d truncated: %w", fromSeq, ErrWALGap)
		}
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	next := fromSeq + 1
	var prev int64
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			// EOF or torn length: end of committed log. An empty log
			// while the database is ahead of the caller means a
			// checkpoint truncated the records away.
			if prev == 0 && next <= frontier {
				return fmt.Errorf("store: records after seq %d truncated: %w", fromSeq, ErrWALGap)
			}
			return nil
		}
		if n > 64<<20 {
			return nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn payload
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return nil // torn checksum
		}
		if binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(payload) {
			return fmt.Errorf("store: WAL record after seq %d: %w", prev, ErrWALCorrupt)
		}
		seq, m := binary.Uvarint(payload)
		if m <= 0 {
			return fmt.Errorf("store: WAL record after seq %d: %w", prev, ErrWALCorrupt)
		}
		prev = int64(seq)
		if int64(seq) < next {
			continue // already applied by the caller
		}
		if int64(seq) > next {
			return fmt.Errorf("store: want seq %d, log resumes at %d: %w", next, seq, ErrWALGap)
		}
		if err := fn(int64(seq), payload[m:]); err != nil {
			return err
		}
		next++
	}
}

// ApplyReplicated applies a WAL record body shipped from a leader and
// appends it to the local WAL under the same sequence number, so a
// follower's log stays byte-compatible with the stream it consumed.
// seq must be the immediate successor of WALSeq(): anything else is a
// gap (ErrWALGap) and the follower must re-seed.
func (db *DB) ApplyReplicated(seq int64, body []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return errors.New("store: ApplyReplicated requires a durable database")
	}
	if cur := db.wal.Seq(); seq != cur+1 {
		return fmt.Errorf("store: apply seq %d after %d: %w", seq, cur, ErrWALGap)
	}
	if err := db.applyWALRecord(body); err != nil {
		return fmt.Errorf("store: applying replicated record %d: %w", seq, err)
	}
	return db.wal.writeRecordAt(seq, body)
}

func (db *DB) applyWALRecord(p []byte) error {
	r := bufio.NewReader(bytes.NewReader(p))
	typ, err := r.ReadByte()
	if err != nil {
		return err
	}
	switch typ {
	case walCreateTable:
		name, err := readString(r)
		if err != nil {
			return err
		}
		nCols, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		cols := make([]Column, nCols)
		for i := range cols {
			cname, err := readString(r)
			if err != nil {
				return err
			}
			kb, err := r.ReadByte()
			if err != nil {
				return err
			}
			cols[i] = Column{Name: cname, Kind: Kind(kb)}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return err
		}
		if _, exists := db.tables[name]; exists {
			return nil // snapshot already has it
		}
		db.tables[name] = NewTable(name, schema)
		return nil
	case walInsert:
		name, err := readString(r)
		if err != nil {
			return err
		}
		row, err := ReadRow(r)
		if err != nil {
			return err
		}
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("insert into unknown table %q", name)
		}
		_, err = t.Insert(row)
		return err
	case walDelete:
		name, err := readString(r)
		if err != nil {
			return err
		}
		row, err := ReadRow(r)
		if err != nil {
			return err
		}
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("delete from unknown table %q", name)
		}
		t.deleteByValue(row)
		return nil
	}
	return fmt.Errorf("unknown WAL record type %d", p[0])
}
