package store

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTable(b *testing.B, rows int, indexed bool) *Table {
	b.Helper()
	t := NewTable("bench", MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat},
	))
	if indexed {
		t.CreateIndex("id", IndexBTree)
		t.CreateIndex("name", IndexHash)
	}
	for i := 0; i < rows; i++ {
		t.Insert(Row{
			IntValue(int64(i)),
			StringValue(fmt.Sprintf("row-%06d", i)),
			FloatValue(float64(i) * 0.5)})
	}
	return t
}

// BenchmarkLookup is the index-vs-scan asymmetry the cost model
// depends on.
func BenchmarkLookup(b *testing.B) {
	const rows = 100000
	indexed := benchTable(b, rows, true)
	plain := benchTable(b, rows, false)
	b.Run("HashIndexEqual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			indexed.LookupEqual("name", StringValue("row-042000"))
		}
	})
	b.Run("BTreeIndexEqual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			indexed.LookupEqual("id", IntValue(42000))
		}
	})
	b.Run("ScanEqual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.LookupEqual("id", IntValue(42000))
		}
	})
	lo, hi := IntValue(40000), IntValue(41000)
	b.Run("BTreeRange1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			indexed.LookupRange("id", &lo, &hi)
		}
	})
	b.Run("ScanRange1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.LookupRange("id", &lo, &hi)
		}
	})
}

func BenchmarkInsert(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		name := "NoIndex"
		if indexed {
			name = "TwoIndexes"
		}
		b.Run(name, func(b *testing.B) {
			t := benchTable(b, 0, indexed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Insert(Row{
					IntValue(int64(i)),
					StringValue(fmt.Sprintf("row-%06d", i)),
					FloatValue(float64(i)),
				})
			}
		})
	}
}

func BenchmarkRowEncoding(b *testing.B) {
	row := Row{IntValue(123456), StringValue("DT0004213 synthetic protein"), FloatValue(6.125), BoolValue(true)}
	b.Run("Append", func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = AppendRow(buf[:0], row)
		}
	})
}

func BenchmarkWALInsert(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("t", MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("t", Row{IntValue(int64(i)), StringValue("payload-payload")}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStats(b *testing.B) {
	t := benchTable(b, 50000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Stats()
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, 1<<16)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 20)
	}
	b.ResetTimer()
	bt := newBTree()
	for i := 0; i < b.N; i++ {
		bt.Insert(IntValue(keys[i%len(keys)]), int64(i))
	}
}
