package store

import (
	"fmt"
	"sort"
	"sync"
)

// IndexType selects a secondary index implementation.
type IndexType uint8

const (
	// IndexHash supports equality probes only.
	IndexHash IndexType = iota
	// IndexBTree supports equality, range scans, and ordered
	// iteration.
	IndexBTree
)

func (t IndexType) String() string {
	if t == IndexHash {
		return "hash"
	}
	return "btree"
}

// index is a secondary index over one column.
type index struct {
	column int
	typ    IndexType
	hash   map[uint64][]int64 // IndexHash: value hash → row IDs
	tree   *btree             // IndexBTree
}

// Table is a heap of rows with optional secondary indexes. Row IDs are
// stable int64 handles that survive unrelated deletes. Tables are safe
// for concurrent use: reads take a shared lock, mutations exclusive.
type Table struct {
	name   string
	schema *Schema

	mu      sync.RWMutex
	rows    map[int64]Row
	nextID  int64
	indexes map[string]*index // keyed by column name
	version int64             // bumped on every mutation (cache invalidation)
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[int64]Row),
		indexes: make(map[string]*index),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Version returns a counter bumped on every mutation; the semantic
// cache uses it to detect staleness.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// CreateIndex builds a secondary index over the named column,
// backfilling existing rows. Creating an index that already exists
// with the same type is a no-op.
func (t *Table) CreateIndex(column string, typ IndexType) error {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("store: table %s has no column %q", t.name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.indexes[column]; ok {
		if existing.typ == typ {
			return nil
		}
		return fmt.Errorf("store: column %q already indexed as %v", column, existing.typ)
	}
	idx := &index{column: ci, typ: typ}
	if typ == IndexHash {
		idx.hash = make(map[uint64][]int64)
	} else {
		idx.tree = newBTree()
	}
	for id, row := range t.rows {
		idx.insert(row[ci], id)
	}
	t.indexes[column] = idx
	return nil
}

// IndexSpec describes one secondary index for introspection.
type IndexSpec struct {
	Column string
	Type   IndexType
}

// Indexes lists the table's secondary indexes sorted by column name,
// so callers cloning a table's physical layout (the shard partitioner
// does) can recreate them on the copy.
func (t *Table) Indexes() []IndexSpec {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexSpec, 0, len(t.indexes))
	for col, ix := range t.indexes {
		out = append(out, IndexSpec{Column: col, Type: ix.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// HasIndex reports whether column has an index and of which type.
func (t *Table) HasIndex(column string) (IndexType, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[column]
	if !ok {
		return 0, false
	}
	return idx.typ, true
}

func (ix *index) insert(v Value, id int64) {
	if ix.typ == IndexHash {
		h := v.Hash()
		ix.hash[h] = append(ix.hash[h], id)
	} else {
		ix.tree.Insert(v, id)
	}
}

func (ix *index) remove(v Value, id int64) {
	if ix.typ == IndexHash {
		h := v.Hash()
		post := ix.hash[h]
		for i, pid := range post {
			if pid == id {
				post[i] = post[len(post)-1]
				ix.hash[h] = post[:len(post)-1]
				if len(ix.hash[h]) == 0 {
					delete(ix.hash, h)
				}
				return
			}
		}
	} else {
		ix.tree.Delete(v, id)
	}
}

// Insert validates and appends a row, returning its row ID.
func (t *Table) Insert(r Row) (int64, error) {
	if err := t.schema.CheckRow(r); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.rows[id] = r.Clone()
	for _, idx := range t.indexes {
		idx.insert(r[idx.column], id)
	}
	t.version++
	return id, nil
}

// Get returns the row with the given ID.
func (t *Table) Get(id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// Delete removes the row with the given ID.
func (t *Table) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rows[id]
	if !ok {
		return false
	}
	for _, idx := range t.indexes {
		idx.remove(r[idx.column], id)
	}
	delete(t.rows, id)
	t.version++
	return true
}

// Update replaces the row with the given ID.
func (t *Table) Update(id int64, r Row) error {
	if err := t.schema.CheckRow(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("store: table %s has no row %d", t.name, id)
	}
	for _, idx := range t.indexes {
		if !Equal(old[idx.column], r[idx.column]) {
			idx.remove(old[idx.column], id)
			idx.insert(r[idx.column], id)
		}
	}
	t.rows[id] = r.Clone()
	t.version++
	return nil
}

// Scan calls fn for every row in unspecified order until fn returns
// false. The row passed to fn must not be retained or mutated.
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, r := range t.rows {
		if !fn(id, r) {
			return
		}
	}
}

// Snapshot returns references to every stored row in unspecified
// order. The references are safe for shared concurrent reads even
// while writers run: Insert and Update clone incoming rows into the
// map and never mutate a stored row in place, so a row reachable from
// a snapshot is immutable. Callers must not mutate the returned rows;
// clone before modifying (the parallel executor clones on output).
func (t *Table) Snapshot() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r)
	}
	return out
}

// LookupEqual returns the IDs of rows whose column equals v, using an
// index when one exists and falling back to a scan.
func (t *Table) LookupEqual(column string, v Value) ([]int64, error) {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %q", t.name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[column]; ok {
		var ids []int64
		if idx.typ == IndexHash {
			// Hash collisions require verification against the rows.
			for _, id := range idx.hash[v.Hash()] {
				if Equal(t.rows[id][ci], v) {
					ids = append(ids, id)
				}
			}
		} else {
			ids = append(ids, idx.tree.Get(v)...)
		}
		return ids, nil
	}
	var ids []int64
	for id, r := range t.rows {
		if Equal(r[ci], v) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// LookupRange returns the IDs of rows with lo ≤ column ≤ hi (nil
// bounds are open). A B+-tree index is used when available; otherwise
// the table is scanned.
func (t *Table) LookupRange(column string, lo, hi *Value) ([]int64, error) {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %q", t.name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[column]; ok && idx.typ == IndexBTree {
		var ids []int64
		idx.tree.Range(lo, hi, func(_ Value, postings []int64) bool {
			ids = append(ids, postings...)
			return true
		})
		return ids, nil
	}
	var ids []int64
	for id, r := range t.rows {
		v := r[ci]
		if v.IsNull() {
			continue
		}
		if lo != nil && Compare(v, *lo) < 0 {
			continue
		}
		if hi != nil && Compare(v, *hi) > 0 {
			continue
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Rows returns copies of the rows with the given IDs, skipping IDs
// that no longer exist.
func (t *Table) Rows(ids []int64) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		if r, ok := t.rows[id]; ok {
			out = append(out, r.Clone())
		}
	}
	return out
}
