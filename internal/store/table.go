package store

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// IndexType selects a secondary index implementation.
type IndexType uint8

const (
	// IndexHash supports equality probes only.
	IndexHash IndexType = iota
	// IndexBTree supports equality, range scans, and ordered
	// iteration.
	IndexBTree
)

func (t IndexType) String() string {
	if t == IndexHash {
		return "hash"
	}
	return "btree"
}

// index is a secondary index over one column. Under MVCC the postings
// cover every value carried by any retained row version, so a pinned
// snapshot can probe the index too; lookups verify candidates against
// the row version visible at the read's commit version.
type index struct {
	column int
	typ    IndexType
	hash   map[uint64][]int64 // IndexHash: value hash → row IDs
	tree   *btree             // IndexBTree
}

// verMax is the end stamp of a live (undeleted) row version.
const verMax = math.MaxInt64

// rowVer is one committed version of a row: visible to reads at commit
// version v when begin ≤ v < end. Live versions have end == verMax;
// deleting stamps end with the deleting commit's version. The Row
// itself is immutable once committed — snapshots share references.
type rowVer struct {
	begin, end int64
	row        Row
}

// visibleIdx returns the index of the version in chain visible at
// commit version v, or -1. Chains are ordered oldest→newest and short
// (bounded by the pinned-snapshot window), so a linear scan from the
// newest end wins.
func visibleIdx(chain []rowVer, v int64) int {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].begin <= v && v < chain[i].end {
			return i
		}
	}
	return -1
}

// CommitEvent describes one committed mutation batch on one table —
// the delta stream incremental overlay maintenance consumes. Version
// is the table's commit version after the batch; Inserted and Deleted
// hold the affected rows (shared immutable references — consumers must
// not mutate them). Hooks run synchronously inside the commit critical
// section, so events arrive in strict per-table version order.
type CommitEvent struct {
	Table    string
	Version  int64
	Inserted []Row
	Deleted  []Row
}

// Table is a multi-version heap of rows with optional secondary
// indexes. Row IDs are stable int64 handles that survive unrelated
// deletes. Every mutation publishes a new commit version; readers
// either follow the latest version or pin one via DB.PinSnapshot and
// read a frozen, consistent image while writers keep committing.
// Superseded versions are garbage-collected once no pin can see them.
type Table struct {
	name   string
	schema *Schema

	mu      sync.RWMutex
	rows    map[int64][]rowVer
	nextID  int64
	indexes map[string]*index  // keyed by column name
	commit  int64              // last published commit version
	live    int                // rows visible at commit
	dead    int                // superseded versions awaiting GC
	retired map[int64]struct{} // chains holding dead versions
	pins    map[int64]int      // pinned commit version → refcount
	gcFloor int64              // min pin the last GC sweep ran against
	// onCommit, when set, receives one CommitEvent per committed
	// mutation batch, invoked under mu (see CommitEvent).
	onCommit func(CommitEvent)
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		rows:    make(map[int64][]rowVer),
		indexes: make(map[string]*index),
		retired: make(map[int64]struct{}),
		pins:    make(map[int64]int),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows visible at the latest version.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Version returns the table's commit version: bumped once per
// committed mutation batch. Statement caches key on it and snapshots
// pin it.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.commit
}

// setOnCommit installs the commit-event hook (DB wires this).
func (t *Table) setOnCommit(fn func(CommitEvent)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onCommit = fn
}

// emitLocked publishes a commit event; callers hold mu.
func (t *Table) emitLocked(version int64, inserted, deleted []Row) {
	if t.onCommit != nil && (len(inserted) > 0 || len(deleted) > 0) {
		t.onCommit(CommitEvent{Table: t.name, Version: version, Inserted: inserted, Deleted: deleted})
	}
}

// CreateIndex builds a secondary index over the named column,
// backfilling every retained row version. Creating an index that
// already exists with the same type is a no-op.
func (t *Table) CreateIndex(column string, typ IndexType) error {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("store: table %s has no column %q", t.name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.indexes[column]; ok {
		if existing.typ == typ {
			return nil
		}
		return fmt.Errorf("store: column %q already indexed as %v", column, existing.typ)
	}
	idx := &index{column: ci, typ: typ}
	if typ == IndexHash {
		idx.hash = make(map[uint64][]int64)
	} else {
		idx.tree = newBTree()
	}
	for id, chain := range t.rows {
		for vi := range chain {
			if !chainValueBefore(chain, vi, ci, chain[vi].row[ci]) {
				idx.insert(chain[vi].row[ci], id)
			}
		}
	}
	t.indexes[column] = idx
	return nil
}

// chainValueBefore reports whether any version of chain earlier than
// vi carries value v in column ci — the dedup test that keeps index
// postings set-valued per (value, id) pair.
func chainValueBefore(chain []rowVer, vi int, ci int, v Value) bool {
	for i := 0; i < vi; i++ {
		if Equal(chain[i].row[ci], v) {
			return true
		}
	}
	return false
}

// chainHasValue reports whether any version of chain carries value v
// in column ci.
func chainHasValue(chain []rowVer, ci int, v Value) bool {
	return chainValueBefore(chain, len(chain), ci, v)
}

// IndexSpec describes one secondary index for introspection.
type IndexSpec struct {
	Column string
	Type   IndexType
}

// Indexes lists the table's secondary indexes sorted by column name,
// so callers cloning a table's physical layout (the shard partitioner
// does) can recreate them on the copy.
func (t *Table) Indexes() []IndexSpec {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexSpec, 0, len(t.indexes))
	for col, ix := range t.indexes {
		out = append(out, IndexSpec{Column: col, Type: ix.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}

// HasIndex reports whether column has an index and of which type.
func (t *Table) HasIndex(column string) (IndexType, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[column]
	if !ok {
		return 0, false
	}
	return idx.typ, true
}

func (ix *index) insert(v Value, id int64) {
	if ix.typ == IndexHash {
		h := v.Hash()
		ix.hash[h] = append(ix.hash[h], id)
	} else {
		ix.tree.Insert(v, id)
	}
}

func (ix *index) remove(v Value, id int64) {
	if ix.typ == IndexHash {
		h := v.Hash()
		post := ix.hash[h]
		for i, pid := range post {
			if pid == id {
				post[i] = post[len(post)-1]
				ix.hash[h] = post[:len(post)-1]
				if len(ix.hash[h]) == 0 {
					delete(ix.hash, h)
				}
				return
			}
		}
	} else {
		ix.tree.Delete(v, id)
	}
}

// addPostingsLocked indexes a newly appended version: one posting per
// index unless an earlier version of the chain already carries the
// same value (the posting then already covers the new version).
func (t *Table) addPostingsLocked(id int64, chain []rowVer, vi int) {
	for _, idx := range t.indexes {
		v := chain[vi].row[idx.column]
		if !chainValueBefore(chain, vi, idx.column, v) {
			idx.insert(v, id)
		}
	}
}

// Insert validates and appends a row, returning its row ID. The write
// commits immediately as its own version.
func (t *Table) Insert(r Row) (int64, error) {
	if err := t.schema.CheckRow(r); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.commit + 1
	id := t.nextID
	t.nextID++
	row := r.Clone()
	chain := []rowVer{{begin: v, end: verMax, row: row}}
	t.rows[id] = chain
	t.addPostingsLocked(id, chain, 0)
	t.commit = v
	t.live++
	t.emitLocked(v, []Row{row}, nil)
	t.maybeGCLocked()
	return id, nil
}

// Get returns the row with the given ID at the latest version.
func (t *Table) Get(id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(t.commit, id)
}

// GetAt is Get at a pinned commit version.
func (t *Table) GetAt(v int64, id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(v, id)
}

func (t *Table) getLocked(v int64, id int64) (Row, bool) {
	i := visibleIdx(t.rows[id], v)
	if i < 0 {
		return nil, false
	}
	return t.rows[id][i].row.Clone(), true
}

// Delete removes the row with the given ID: its current version is
// end-stamped with the new commit version and retained until no pinned
// snapshot can see it.
func (t *Table) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.commit + 1
	chain := t.rows[id]
	i := visibleIdx(chain, t.commit)
	if i < 0 {
		return false
	}
	chain[i].end = v
	t.commit = v
	t.live--
	t.dead++
	t.retired[id] = struct{}{}
	t.emitLocked(v, nil, []Row{chain[i].row})
	t.maybeGCLocked()
	return true
}

// Update replaces the row with the given ID: the old version is
// end-stamped and a new version begins at the new commit version.
func (t *Table) Update(id int64, r Row) error {
	if err := t.schema.CheckRow(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.commit + 1
	chain := t.rows[id]
	i := visibleIdx(chain, t.commit)
	if i < 0 {
		return fmt.Errorf("store: table %s has no row %d", t.name, id)
	}
	old := chain[i].row
	chain[i].end = v
	chain = append(chain, rowVer{begin: v, end: verMax, row: r.Clone()})
	t.rows[id] = chain
	t.addPostingsLocked(id, chain, len(chain)-1)
	t.dead++
	t.retired[id] = struct{}{}
	t.emitLocked(v, []Row{chain[len(chain)-1].row}, []Row{old})
	t.commit = v
	t.maybeGCLocked()
	return nil
}

// Scan calls fn for every latest-version row in unspecified order
// until fn returns false. The row passed to fn must not be retained or
// mutated.
func (t *Table) Scan(fn func(id int64, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scanLocked(t.commit, fn)
}

// ScanAt is Scan at a pinned commit version.
func (t *Table) ScanAt(v int64, fn func(id int64, r Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scanLocked(v, fn)
}

func (t *Table) scanLocked(v int64, fn func(id int64, r Row) bool) {
	for id, chain := range t.rows {
		i := visibleIdx(chain, v)
		if i < 0 {
			continue
		}
		if !fn(id, chain[i].row) {
			return
		}
	}
}

// Snapshot returns references to every row visible at the latest
// version, in unspecified order. The references are safe for shared
// concurrent reads even while writers run: committed row versions are
// immutable (mutations append new versions, GC only drops references),
// so a row reachable from a snapshot never changes. Callers must not
// mutate the returned rows; clone before modifying (the parallel
// executor clones on output).
func (t *Table) Snapshot() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.snapshotLocked(t.commit)
}

// SnapshotAt is Snapshot at a pinned commit version.
func (t *Table) SnapshotAt(v int64) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.snapshotLocked(v)
}

func (t *Table) snapshotLocked(v int64) []Row {
	out := make([]Row, 0, t.live)
	for _, chain := range t.rows {
		if i := visibleIdx(chain, v); i >= 0 {
			out = append(out, chain[i].row)
		}
	}
	return out
}

// LookupEqual returns the IDs of rows whose column equals v at the
// latest version, using an index when one exists and falling back to a
// scan.
func (t *Table) LookupEqual(column string, v Value) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookupEqualLocked(t.commit, column, v)
}

// LookupEqualAt is LookupEqual at a pinned commit version.
func (t *Table) LookupEqualAt(ver int64, column string, v Value) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookupEqualLocked(ver, column, v)
}

// equalCandidates returns the raw index postings for v — unverified
// candidate IDs the caller filters by version visibility.
func equalCandidates(ix *index, v Value) []int64 {
	if ix.typ == IndexHash {
		return ix.hash[v.Hash()]
	}
	return ix.tree.Get(v)
}

func (t *Table) lookupEqualLocked(ver int64, column string, v Value) ([]int64, error) {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %q", t.name, column)
	}
	if idx, ok := t.indexes[column]; ok {
		// Postings cover every retained version's value, so candidates
		// must be verified against the version visible at ver (the row
		// may have been updated or deleted since the posting landed).
		cand := equalCandidates(idx, v)
		var ids []int64
		for _, id := range cand {
			if i := visibleIdx(t.rows[id], ver); i >= 0 && Equal(t.rows[id][i].row[ci], v) {
				ids = append(ids, id)
			}
		}
		return ids, nil
	}
	var ids []int64
	for id, chain := range t.rows {
		if i := visibleIdx(chain, ver); i >= 0 && Equal(chain[i].row[ci], v) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// LookupRange returns the IDs of rows with lo ≤ column ≤ hi (nil
// bounds are open) at the latest version. A B+-tree index is used when
// available; otherwise the table is scanned.
func (t *Table) LookupRange(column string, lo, hi *Value) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookupRangeLocked(t.commit, column, lo, hi)
}

// LookupRangeAt is LookupRange at a pinned commit version.
func (t *Table) LookupRangeAt(ver int64, column string, lo, hi *Value) ([]int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookupRangeLocked(ver, column, lo, hi)
}

func inRange(v Value, lo, hi *Value) bool {
	if v.IsNull() {
		return false
	}
	if lo != nil && Compare(v, *lo) < 0 {
		return false
	}
	if hi != nil && Compare(v, *hi) > 0 {
		return false
	}
	return true
}

func (t *Table) lookupRangeLocked(ver int64, column string, lo, hi *Value) ([]int64, error) {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("store: table %s has no column %q", t.name, column)
	}
	if idx, ok := t.indexes[column]; ok && idx.typ == IndexBTree {
		// A row updated within the range can surface under two keys;
		// verify against the visible version and dedup.
		var ids []int64
		seen := make(map[int64]struct{})
		idx.tree.Range(lo, hi, func(_ Value, postings []int64) bool {
			for _, id := range postings {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				if i := visibleIdx(t.rows[id], ver); i >= 0 && inRange(t.rows[id][i].row[ci], lo, hi) {
					ids = append(ids, id)
				}
			}
			return true
		})
		return ids, nil
	}
	var ids []int64
	for id, chain := range t.rows {
		if i := visibleIdx(chain, ver); i >= 0 && inRange(chain[i].row[ci], lo, hi) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Rows returns copies of the rows with the given IDs at the latest
// version, skipping IDs that no longer exist.
func (t *Table) Rows(ids []int64) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsLocked(t.commit, ids)
}

// RowsAt is Rows at a pinned commit version.
func (t *Table) RowsAt(v int64, ids []int64) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowsLocked(v, ids)
}

func (t *Table) rowsLocked(v int64, ids []int64) []Row {
	out := make([]Row, 0, len(ids))
	for _, id := range ids {
		if i := visibleIdx(t.rows[id], v); i >= 0 {
			out = append(out, t.rows[id][i].row.Clone())
		}
	}
	return out
}

// --- delta commits ---

// validateDeltaLocked checks a delta against the current version:
// every delete ID must be visible exactly once and every insert must
// match the schema. Callers hold at least a read lock.
func (t *Table) validateDeltaLocked(deleteIDs []int64, inserts []Row) error {
	seen := make(map[int64]struct{}, len(deleteIDs))
	for _, id := range deleteIDs {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("store: table %s delta deletes row %d twice", t.name, id)
		}
		seen[id] = struct{}{}
		if visibleIdx(t.rows[id], t.commit) < 0 {
			return fmt.Errorf("store: table %s delta deletes missing row %d", t.name, id)
		}
	}
	for i, r := range inserts {
		if err := t.schema.CheckRow(r); err != nil {
			return fmt.Errorf("store: table %s delta insert %d: %w", t.name, i, err)
		}
	}
	return nil
}

// applyDeltaLocked applies deletes+inserts as ONE commit version and
// returns the deleted rows' values (for WAL logging). The caller has
// validated the delta and holds t.mu exclusively; with no interleaved
// writer the apply cannot fail.
func (t *Table) applyDeltaLocked(deleteIDs []int64, inserts []Row) (deleted []Row) {
	v := t.commit + 1
	deleted = make([]Row, 0, len(deleteIDs))
	for _, id := range deleteIDs {
		chain := t.rows[id]
		i := visibleIdx(chain, t.commit)
		chain[i].end = v
		deleted = append(deleted, chain[i].row)
		t.live--
		t.dead++
		t.retired[id] = struct{}{}
	}
	inserted := make([]Row, 0, len(inserts))
	for _, r := range inserts {
		id := t.nextID
		t.nextID++
		row := r.Clone()
		chain := []rowVer{{begin: v, end: verMax, row: row}}
		t.rows[id] = chain
		t.addPostingsLocked(id, chain, 0)
		t.live++
		inserted = append(inserted, row)
	}
	t.commit = v
	t.emitLocked(v, inserted, deleted)
	t.maybeGCLocked()
	return deleted
}

// applyDeltaByValue applies a replayed/replicated batch delta: deletes
// are matched by row value (row IDs are not stable across recovery),
// and the whole delta commits as one version. Missing delete matches
// are skipped, mirroring single-record delete replay.
func (t *Table) applyDeltaByValue(deletes []Row, inserts []Row) error {
	for i, r := range inserts {
		if err := t.schema.CheckRow(r); err != nil {
			return fmt.Errorf("store: table %s batch insert %d: %w", t.name, i, err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.commit + 1
	var deleted []Row
	for _, r := range deletes {
		id, i, ok := t.findByValueLocked(r)
		if !ok {
			continue
		}
		chain := t.rows[id]
		chain[i].end = v
		deleted = append(deleted, chain[i].row)
		t.live--
		t.dead++
		t.retired[id] = struct{}{}
	}
	var inserted []Row
	for _, r := range inserts {
		id := t.nextID
		t.nextID++
		row := r.Clone()
		chain := []rowVer{{begin: v, end: verMax, row: row}}
		t.rows[id] = chain
		t.addPostingsLocked(id, chain, 0)
		t.live++
		inserted = append(inserted, row)
	}
	t.commit = v
	t.emitLocked(v, inserted, deleted)
	t.maybeGCLocked()
	return nil
}

// findByValueLocked locates a row whose visible version equals r.
func (t *Table) findByValueLocked(r Row) (id int64, vi int, ok bool) {
	for id, chain := range t.rows {
		i := visibleIdx(chain, t.commit)
		if i < 0 {
			continue
		}
		if rowsEqual(chain[i].row, r) {
			return id, i, true
		}
	}
	return 0, 0, false
}

func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].K != b[i].K || !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// deleteByValue removes one row equal to r (WAL replay of single
// delete records).
func (t *Table) deleteByValue(r Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, i, ok := t.findByValueLocked(r)
	if !ok {
		return false
	}
	v := t.commit + 1
	chain := t.rows[id]
	chain[i].end = v
	t.commit = v
	t.live--
	t.dead++
	t.retired[id] = struct{}{}
	t.emitLocked(v, nil, []Row{chain[i].row})
	t.maybeGCLocked()
	return true
}

// --- snapshot pins and version GC ---

// pin registers a reference on the current commit version and returns
// it. Versions at or above the minimum pinned version are retained
// until unpinned.
func (t *Table) pin() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pins[t.commit]++
	return t.commit
}

// unpin drops one reference on v, garbage-collecting versions that are
// no longer reachable from any pin.
func (t *Table) unpin(v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.pins[v]
	if !ok {
		return
	}
	if n <= 1 {
		delete(t.pins, v)
	} else {
		t.pins[v] = n - 1
	}
	t.maybeGCLocked()
}

// PinnedVersions reports how many distinct commit versions are pinned
// (leak accounting for the T14 refcount gate).
func (t *Table) PinnedVersions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.pins)
}

// DeadVersions reports how many superseded row versions await GC. With
// no snapshots pinned it settles to zero: every commit and unpin
// sweeps versions below the pin floor.
func (t *Table) DeadVersions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dead
}

// minPinLocked returns the lowest pinned commit version, or the
// current commit when nothing is pinned.
func (t *Table) minPinLocked() int64 {
	min := t.commit
	for v := range t.pins {
		if v < min {
			min = v
		}
	}
	return min
}

// maybeGCLocked sweeps retired chains when the pin floor has advanced
// since the last sweep. A dead version is removable once end ≤ floor:
// no pinned snapshot and no latest read can see it. Removing a version
// drops its index postings unless another retained version of the same
// chain carries the same value.
func (t *Table) maybeGCLocked() {
	if t.dead == 0 {
		return
	}
	floor := t.minPinLocked()
	if floor <= t.gcFloor && len(t.pins) > 0 {
		return
	}
	for id := range t.retired {
		chain := t.rows[id]
		kept := chain[:0]
		var dropped []rowVer
		for _, ver := range chain {
			if ver.end <= floor {
				dropped = append(dropped, ver)
			} else {
				kept = append(kept, ver)
			}
		}
		if len(dropped) == 0 {
			continue
		}
		t.dead -= len(dropped)
		for _, ver := range dropped {
			for _, idx := range t.indexes {
				v := ver.row[idx.column]
				if !chainHasValue(kept, idx.column, v) {
					idx.remove(v, id)
				}
			}
		}
		if len(kept) == 0 {
			delete(t.rows, id)
			delete(t.retired, id)
			continue
		}
		t.rows[id] = kept
		// Still-dead survivors keep the chain on the retired list.
		stillDead := false
		for _, ver := range kept {
			if ver.end != verMax {
				stillDead = true
				break
			}
		}
		if !stillDead {
			delete(t.retired, id)
		}
	}
	t.gcFloor = floor
}
