package store

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered set of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, validating that column names are unique
// and non-empty.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("store: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("store: duplicate column %q", c.Name)
		}
		if c.Kind == KindNull {
			return nil, fmt.Errorf("store: column %q has NULL type", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known-good schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// CheckRow validates a row against the schema: length and per-cell
// kind (NULL is allowed in any column).
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("store: row has %d cells, schema has %d columns", len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.K != KindNull && v.K != s.Columns[i].Kind {
			return fmt.Errorf("store: column %q expects %v, got %v",
				s.Columns[i].Name, s.Columns[i].Kind, v.K)
		}
	}
	return nil
}

// String renders the schema as "name TYPE, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = fmt.Sprintf("%s %v", c.Name, c.Kind)
	}
	return strings.Join(parts, ", ")
}
