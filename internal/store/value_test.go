package store

import (
	"bufio"
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{FloatValue(1.5), IntValue(2), -1},
		{IntValue(2), FloatValue(2.0), 0},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("b"), 0},
		{BoolValue(false), BoolValue(true), -1},
		{NullValue(), IntValue(0), -1},
		{IntValue(0), NullValue(), 1},
		{NullValue(), NullValue(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	// INT 1 and FLOAT 1.0 compare equal → must hash equal.
	if IntValue(1).Hash() != FloatValue(1).Hash() {
		t.Error("equal numeric values hash differently")
	}
	if IntValue(1).Hash() == IntValue(2).Hash() {
		t.Error("distinct ints hash equal (suspicious)")
	}
	if StringValue("x").Hash() == StringValue("y").Hash() {
		t.Error("distinct strings hash equal (suspicious)")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NullValue(), "NULL"},
		{IntValue(-7), "-7"},
		{FloatValue(2.5), "2.5"},
		{StringValue("hi"), `"hi"`},
		{BoolValue(true), "true"},
		{BoolValue(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueEncodingRoundTrip(t *testing.T) {
	vals := []Value{
		NullValue(),
		IntValue(0), IntValue(-1), IntValue(1 << 40), IntValue(math.MinInt64), IntValue(math.MaxInt64),
		FloatValue(0), FloatValue(-2.75), FloatValue(math.Inf(1)), FloatValue(math.SmallestNonzeroFloat64),
		StringValue(""), StringValue("hello"), StringValue(string([]byte{0, 1, 255})),
		BoolValue(true), BoolValue(false),
	}
	var buf []byte
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range vals {
		got, err := ReadValue(r)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.K != want.K || !Equal(got, want) {
			t.Fatalf("value %d: got %v, want %v", i, got, want)
		}
	}
}

func TestFloatNaNEncodingRoundTrip(t *testing.T) {
	buf := AppendValue(nil, FloatValue(math.NaN()))
	got, err := ReadValue(bufio.NewReader(bytes.NewReader(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.F) {
		t.Fatalf("NaN did not round-trip: %v", got)
	}
}

func TestRowEncodingRoundTrip(t *testing.T) {
	row := Row{IntValue(7), StringValue("kinase"), FloatValue(6.5), BoolValue(true), NullValue()}
	buf := AppendRow(nil, row)
	if got := EncodedRowSize(row); got != len(buf) {
		t.Fatalf("EncodedRowSize = %d, actual = %d", got, len(buf))
	}
	got, err := ReadRow(bufio.NewReader(bytes.NewReader(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("row length %d, want %d", len(got), len(row))
	}
	for i := range row {
		if !Equal(got[i], row[i]) || got[i].K != row[i].K {
			t.Fatalf("cell %d: got %v, want %v", i, got[i], row[i])
		}
	}
}

func TestRowEncodingPropertyRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		row := Row{IntValue(i), FloatValue(fl), StringValue(s), BoolValue(b)}
		buf := AppendRow(nil, row)
		got, err := ReadRow(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			return false
		}
		if len(buf) != EncodedRowSize(row) {
			return false
		}
		for k := range row {
			if got[k].K != row[k].K {
				return false
			}
			// NaN compares unequal through Compare; check bits.
			if row[k].K == KindFloat {
				if math.Float64bits(got[k].F) != math.Float64bits(row[k].F) {
					return false
				}
				continue
			}
			if !Equal(got[k], row[k]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadValueRejectsCorruptInput(t *testing.T) {
	// Unknown kind.
	if _, err := ReadValue(bufio.NewReader(bytes.NewReader([]byte{99}))); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncated float.
	buf := []byte{byte(KindFloat), 1, 2}
	if _, err := ReadValue(bufio.NewReader(bytes.NewReader(buf))); err == nil {
		t.Error("truncated float accepted")
	}
	// Oversized string length.
	huge := AppendValue(nil, StringValue("x"))
	huge[1] = 0xFF
	huge = append(huge[:2], 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := ReadValue(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Error("oversized string accepted")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{IntValue(1), StringValue("a")}
	c := r.Clone()
	c[0] = IntValue(99)
	if r[0].I != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestKindFromString(t *testing.T) {
	for _, s := range []string{"INT", "FLOAT", "STRING", "BOOL", "int", "text"} {
		if _, err := KindFromString(s); err != nil {
			t.Errorf("KindFromString(%q): %v", s, err)
		}
	}
	if _, err := KindFromString("BLOB"); err == nil {
		t.Error("unknown kind accepted")
	}
}
