package store

import (
	"fmt"
	"math"
	"strings"
)

// histogramBuckets is the number of equi-width buckets per numeric
// column histogram.
const histogramBuckets = 32

// ColumnStats summarizes one column for the cost-based optimizer.
type ColumnStats struct {
	Name string
	Kind Kind
	// NonNull is the number of non-NULL values observed.
	NonNull int64
	// NDV is the number of distinct values (exact: collected into a
	// bounded map; beyond statsNDVCap it reports the cap and
	// Overflowed is set — selectivity math treats it as "many").
	NDV        int64
	Overflowed bool
	// Min and Max bound the observed values (numeric and string).
	Min, Max Value
	// Hist is an equi-width histogram over [Min,Max] for numeric
	// columns; nil otherwise.
	Hist []int64
}

// statsNDVCap bounds the distinct-value tracking map.
const statsNDVCap = 4096

// TableStats summarizes a table at a point in time.
type TableStats struct {
	Table   string
	Rows    int64
	Version int64
	Columns []ColumnStats
}

// Column returns the stats for the named column, or nil.
func (s *TableStats) Column(name string) *ColumnStats {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return &s.Columns[i]
		}
	}
	return nil
}

// SelectivityEqual estimates the fraction of rows where col = v using
// NDV: 1/NDV with a floor when NDV overflowed.
func (s *TableStats) SelectivityEqual(col string) float64 {
	c := s.Column(col)
	if c == nil || c.NDV == 0 {
		return 0.1
	}
	return 1 / float64(c.NDV)
}

// SelectivityRange estimates the fraction of rows with lo ≤ col ≤ hi
// from the histogram, falling back to the uniform assumption over
// [Min,Max] and then to a default.
func (s *TableStats) SelectivityRange(col string, lo, hi *Value) float64 {
	c := s.Column(col)
	if c == nil || c.NonNull == 0 {
		return 0.3
	}
	if c.Min.Numeric() && c.Max.Numeric() {
		minF, maxF := c.Min.AsFloat(), c.Max.AsFloat()
		loF, hiF := minF, maxF
		if lo != nil && lo.Numeric() {
			loF = math.Max(minF, lo.AsFloat())
		}
		if hi != nil && hi.Numeric() {
			hiF = math.Min(maxF, hi.AsFloat())
		}
		if hiF < loF {
			return 0
		}
		if c.Hist != nil && maxF > minF {
			width := (maxF - minF) / float64(len(c.Hist))
			var covered float64
			for b, count := range c.Hist {
				bLo := minF + float64(b)*width
				bHi := bLo + width
				overlap := math.Min(bHi, hiF) - math.Max(bLo, loF)
				if overlap <= 0 {
					continue
				}
				covered += float64(count) * overlap / width
			}
			return clamp01(covered / float64(c.NonNull))
		}
		if maxF > minF {
			return clamp01((hiF - loF) / (maxF - minF))
		}
		return 1
	}
	// Non-numeric range: assume a third matches.
	return 0.3
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Stats computes fresh statistics over the whole table. For DrugTree
// dataset sizes a full pass is cheap; a production system would
// sample.
func (t *Table) Stats() *TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows := t.snapshotLocked(t.commit)
	ts := &TableStats{
		Table:   t.name,
		Rows:    int64(len(rows)),
		Version: t.commit,
	}
	n := t.schema.Len()
	type acc struct {
		distinct map[uint64]struct{}
		cs       ColumnStats
		sumMinOk bool
	}
	accs := make([]acc, n)
	for i := range accs {
		accs[i].distinct = make(map[uint64]struct{})
		accs[i].cs = ColumnStats{Name: t.schema.Columns[i].Name, Kind: t.schema.Columns[i].Kind}
	}
	for _, r := range rows {
		for i, v := range r {
			if v.IsNull() {
				continue
			}
			a := &accs[i]
			a.cs.NonNull++
			if len(a.distinct) < statsNDVCap {
				a.distinct[v.Hash()] = struct{}{}
			} else {
				a.cs.Overflowed = true
			}
			if !a.sumMinOk {
				a.cs.Min, a.cs.Max = v, v
				a.sumMinOk = true
			} else {
				if Compare(v, a.cs.Min) < 0 {
					a.cs.Min = v
				}
				if Compare(v, a.cs.Max) > 0 {
					a.cs.Max = v
				}
			}
		}
	}
	// Second pass for histograms on numeric columns.
	for i := range accs {
		a := &accs[i]
		a.cs.NDV = int64(len(a.distinct))
		if a.cs.NonNull > 0 && a.cs.Min.Numeric() && a.cs.Max.AsFloat() > a.cs.Min.AsFloat() {
			a.cs.Hist = make([]int64, histogramBuckets)
		}
	}
	for _, r := range rows {
		for i, v := range r {
			a := &accs[i]
			if a.cs.Hist == nil || v.IsNull() || !v.Numeric() {
				continue
			}
			minF, maxF := a.cs.Min.AsFloat(), a.cs.Max.AsFloat()
			b := int(float64(histogramBuckets) * (v.AsFloat() - minF) / (maxF - minF))
			if b >= histogramBuckets {
				b = histogramBuckets - 1
			}
			if b < 0 {
				b = 0
			}
			a.cs.Hist[b]++
		}
	}
	ts.Columns = make([]ColumnStats, n)
	for i := range accs {
		ts.Columns[i] = accs[i].cs
	}
	return ts
}

// String renders the stats for EXPLAIN ANALYZE style output.
func (s *TableStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %s: %d rows (v%d)\n", s.Table, s.Rows, s.Version)
	for _, c := range s.Columns {
		fmt.Fprintf(&b, "  %-20s %-7v nonNull=%-8d ndv=%-6d", c.Name, c.Kind, c.NonNull, c.NDV)
		if c.Overflowed {
			b.WriteString("+ ")
		}
		if c.NonNull > 0 {
			fmt.Fprintf(&b, " range=[%v, %v]", c.Min, c.Max)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
