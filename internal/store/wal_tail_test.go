package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// walFixture writes n rows into a durable DB and returns the WAL size
// after every insert, so tests can place corruption inside a specific
// record. The walWriter is unbuffered, so os.Stat after each insert
// observes the exact record boundary.
func walFixture(t *testing.T, dir string, n int) []int64 {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal.dtl")
	sizes := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		row := Row{IntValue(int64(i)), StringValue(fmt.Sprintf("value-%04d", i))}
		if _, err := db.Insert("t", row); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
	}
	// Crash: no checkpoint, the WAL is the only durable copy.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return sizes
}

// recoveredIDs reopens the DB and returns the sorted id column of
// table t (Scan order is unspecified).
func recoveredIDs(t *testing.T, dir string) []int64 {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer db.Close()
	tb, err := db.Table("t")
	if err != nil {
		t.Fatalf("table lost: %v", err)
	}
	var ids []int64
	tb.Scan(func(_ int64, r Row) bool {
		ids = append(ids, r[0].I)
		return true
	})
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// wantPrefix asserts ids == {0, 1, …, n-1}: exactly the rows logged
// before the damaged record, with no interior gaps.
func wantPrefix(t *testing.T, ids []int64, n int) {
	t.Helper()
	if len(ids) != n {
		t.Fatalf("recovered %d rows, want %d", len(ids), n)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("recovered ids %v: not the contiguous prefix 0..%d", ids, n-1)
		}
	}
}

func TestWALTornTailRecoversToLastCompleteRecord(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	sizes := walFixture(t, dir, n)

	// Tear the final record in half: a crash mid-write of record n.
	torn := sizes[n-2] + (sizes[n-1]-sizes[n-2])/2
	if err := os.Truncate(filepath.Join(dir, "wal.dtl"), torn); err != nil {
		t.Fatal(err)
	}

	wantPrefix(t, recoveredIDs(t, dir), n-1)
}

func TestWALBitFlipTailStopsReplayCleanly(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	sizes := walFixture(t, dir, n)
	walPath := filepath.Join(dir, "wal.dtl")

	// Flip one bit inside the last record's payload: the length still
	// reads, the CRC must catch it.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[sizes[n-2]+3] ^= 0x40
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	wantPrefix(t, recoveredIDs(t, dir), n-1)
}

func TestWALBitFlipInteriorStopsAtCorruption(t *testing.T) {
	const n, flipAfter = 10, 5
	dir := t.TempDir()
	sizes := walFixture(t, dir, n)
	walPath := filepath.Join(dir, "wal.dtl")

	// Corrupt record flipAfter+1 (the one starting at sizes[flipAfter-1]).
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[sizes[flipAfter-1]+3] ^= 0x01
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Replay must stop at the corrupt record — serving the prefix, not
	// skipping over damage to replay potentially inconsistent suffixes.
	wantPrefix(t, recoveredIDs(t, dir), flipAfter)
}
