package store

import "math"

// Columnar batch support for the vectorized query executor. A Col is
// one typed column vector; a ColBatch is a fixed-capacity set of
// column vectors holding up to ~1024 rows. Scans fill batches straight
// from table storage with one typed append per cell — no per-row Row
// allocation — and the query layer's operators loop over the typed
// slices directly.
//
// Storage modes: a Col whose Kind is a concrete type (INT, FLOAT,
// STRING, BOOL) keeps its cells in the matching typed slice plus a
// null mask; this is sound because Schema.CheckRow guarantees every
// stored cell is either the declared kind or NULL. A Col with
// Kind == KindNull is a generic column holding arbitrary Values (used
// by the query layer for expressions whose kind is only known at
// runtime).

// Col is one column vector: a null mask plus exactly one active typed
// slice selected by Kind. Callers must append values matching the
// column kind (or NULL); the typed accessors (Int, Float, Str) index
// positions where the null mask is false.
type Col struct {
	Kind  Kind
	Null  []bool    // Null[i] reports whether cell i is NULL
	Int   []int64   // KindInt and KindBool (0/1)
	Float []float64 // KindFloat
	Str   []string  // KindString
	Vals  []Value   // generic mode (Kind == KindNull): arbitrary cells
}

// NewCol returns an empty column of the given kind with room for
// capacity cells.
func NewCol(kind Kind, capacity int) *Col {
	c := &Col{Kind: kind, Null: make([]bool, 0, capacity)}
	switch kind {
	case KindInt, KindBool:
		c.Int = make([]int64, 0, capacity)
	case KindFloat:
		c.Float = make([]float64, 0, capacity)
	case KindString:
		c.Str = make([]string, 0, capacity)
	default:
		c.Vals = make([]Value, 0, capacity)
	}
	return c
}

// NewDenseCol returns a column of the given kind with n cells, all
// NULL, for aligned random-access writes via the Set* methods.
func NewDenseCol(kind Kind, n int) *Col {
	c := &Col{Kind: kind, Null: make([]bool, n)}
	for i := range c.Null {
		c.Null[i] = true
	}
	switch kind {
	case KindInt, KindBool:
		c.Int = make([]int64, n)
	case KindFloat:
		c.Float = make([]float64, n)
	case KindString:
		c.Str = make([]string, n)
	default:
		c.Vals = make([]Value, n)
	}
	return c
}

// Len returns the number of cells.
func (c *Col) Len() int { return len(c.Null) }

// Append adds one cell. The value's kind must match the column kind
// or be NULL (generic columns accept anything).
func (c *Col) Append(v Value) {
	null := v.K == KindNull
	c.Null = append(c.Null, null)
	switch c.Kind {
	case KindInt, KindBool:
		c.Int = append(c.Int, v.I)
	case KindFloat:
		c.Float = append(c.Float, v.F)
	case KindString:
		c.Str = append(c.Str, v.S)
	default:
		c.Vals = append(c.Vals, v)
		return
	}
	if !null && v.K != c.Kind {
		panic("store: Col.Append kind mismatch: " + v.K.String() + " into " + c.Kind.String())
	}
}

// AppendFrom appends cell i of src (same kind, or src generic) without
// constructing a Value for typed same-kind copies.
func (c *Col) AppendFrom(src *Col, i int) {
	if src.Kind != c.Kind {
		c.Append(src.Value(i))
		return
	}
	c.Null = append(c.Null, src.Null[i])
	switch c.Kind {
	case KindInt, KindBool:
		c.Int = append(c.Int, src.Int[i])
	case KindFloat:
		c.Float = append(c.Float, src.Float[i])
	case KindString:
		c.Str = append(c.Str, src.Str[i])
	default:
		c.Vals = append(c.Vals, src.Vals[i])
	}
}

// Value reconstructs cell i as a Value.
func (c *Col) Value(i int) Value {
	if c.Null[i] {
		return Value{}
	}
	switch c.Kind {
	case KindInt:
		return Value{K: KindInt, I: c.Int[i]}
	case KindBool:
		return Value{K: KindBool, I: c.Int[i]}
	case KindFloat:
		return Value{K: KindFloat, F: c.Float[i]}
	case KindString:
		return Value{K: KindString, S: c.Str[i]}
	}
	return c.Vals[i]
}

// IsNull reports whether cell i is NULL.
func (c *Col) IsNull(i int) bool { return c.Null[i] }

// SetValue writes cell i of a dense column.
func (c *Col) SetValue(i int, v Value) {
	c.Null[i] = v.K == KindNull
	switch c.Kind {
	case KindInt, KindBool:
		c.Int[i] = v.I
	case KindFloat:
		c.Float[i] = v.F
	case KindString:
		c.Str[i] = v.S
	default:
		c.Vals[i] = v
	}
}

// SetInt writes a non-null INT (or BOOL payload) cell.
func (c *Col) SetInt(i int, x int64) {
	c.Null[i] = false
	c.Int[i] = x
}

// SetFloat writes a non-null FLOAT cell.
func (c *Col) SetFloat(i int, f float64) {
	c.Null[i] = false
	c.Float[i] = f
}

// SetBool writes a non-null BOOL cell (Kind must be KindBool).
func (c *Col) SetBool(i int, b bool) {
	c.Null[i] = false
	if b {
		c.Int[i] = 1
	} else {
		c.Int[i] = 0
	}
}

// Slice returns a zero-copy view of cells [lo, hi). Views share
// storage with the parent and must be treated read-only.
func (c *Col) Slice(lo, hi int) Col {
	out := Col{Kind: c.Kind, Null: c.Null[lo:hi]}
	switch c.Kind {
	case KindInt, KindBool:
		out.Int = c.Int[lo:hi]
	case KindFloat:
		out.Float = c.Float[lo:hi]
	case KindString:
		out.Str = c.Str[lo:hi]
	default:
		out.Vals = c.Vals[lo:hi]
	}
	return out
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// HashAt returns Value(i).Hash() without constructing the Value or a
// hash.Hash: the same FNV-1a sequence Value.Hash feeds, computed
// inline so hash-join build/probe loops stay allocation-free.
func (c *Col) HashAt(i int) uint64 {
	h := fnvOffset
	if c.Null[i] {
		return (h ^ 0) * fnvPrime
	}
	switch c.Kind {
	case KindInt, KindFloat:
		var bits uint64
		if c.Kind == KindInt {
			bits = math.Float64bits(float64(c.Int[i]))
		} else {
			bits = math.Float64bits(c.Float[i])
		}
		h = (h ^ 1) * fnvPrime
		for s := 0; s < 64; s += 8 {
			h = (h ^ (bits >> s & 0xff)) * fnvPrime
		}
	case KindString:
		h = (h ^ 2) * fnvPrime
		s := c.Str[i]
		for j := 0; j < len(s); j++ {
			h = (h ^ uint64(s[j])) * fnvPrime
		}
	case KindBool:
		h = (h ^ 3) * fnvPrime
		h = (h ^ uint64(c.Int[i]&0xff)) * fnvPrime
	default:
		return c.Vals[i].Hash()
	}
	return h
}

// ColBatch is a set of column vectors holding the same rows; one
// batch is the unit of work in the vectorized executor.
type ColBatch struct {
	Cols []Col
	Rows int
}

// NewColBatch allocates an empty batch matching the schema with room
// for capacity rows per column.
func NewColBatch(s *Schema, capacity int) *ColBatch {
	cb := &ColBatch{Cols: make([]Col, len(s.Columns))}
	for i, col := range s.Columns {
		cb.Cols[i] = *NewCol(col.Kind, capacity)
	}
	return cb
}

// AppendRow appends one row's cells across the columns.
func (cb *ColBatch) AppendRow(r Row) {
	for i := range cb.Cols {
		cb.Cols[i].Append(r[i])
	}
	cb.Rows++
}

// ScanBatch streams the table's latest-version rows as columnar
// batches of up to batchRows rows each, in unspecified order, until fn
// returns false. Each batch is freshly allocated and owned by fn; its
// cells are copies, so batches stay valid (and immutable-safe) after
// the scan returns and concurrent writers run.
func (t *Table) ScanBatch(batchRows int, fn func(*ColBatch) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scanBatchLocked(t.commit, batchRows, fn)
}

// ScanBatchAt is ScanBatch at a pinned commit version.
func (t *Table) ScanBatchAt(v int64, batchRows int, fn func(*ColBatch) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scanBatchLocked(v, batchRows, fn)
}

func (t *Table) scanBatchLocked(v int64, batchRows int, fn func(*ColBatch) bool) {
	if batchRows < 1 {
		batchRows = 1
	}
	var cb *ColBatch
	for _, chain := range t.rows {
		i := visibleIdx(chain, v)
		if i < 0 {
			continue
		}
		if cb == nil {
			cb = NewColBatch(t.schema, batchRows)
		}
		cb.AppendRow(chain[i].row)
		if cb.Rows == batchRows {
			out := cb
			cb = nil
			if !fn(out) {
				return
			}
		}
	}
	if cb != nil && cb.Rows > 0 {
		fn(cb)
	}
}

// GatherCols materializes the rows with the given IDs into one
// columnar batch (in id-list order, skipping IDs that no longer
// exist) — the index-scan counterpart of ScanBatch.
func (t *Table) GatherCols(ids []int64) *ColBatch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gatherColsLocked(t.commit, ids)
}

// GatherColsAt is GatherCols at a pinned commit version.
func (t *Table) GatherColsAt(v int64, ids []int64) *ColBatch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gatherColsLocked(v, ids)
}

func (t *Table) gatherColsLocked(v int64, ids []int64) *ColBatch {
	cb := NewColBatch(t.schema, len(ids))
	for _, id := range ids {
		if i := visibleIdx(t.rows[id], v); i >= 0 {
			cb.AppendRow(t.rows[id][i].row)
		}
	}
	return cb
}
