package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestRandomizedCrashRecovery runs a random workload of table creates,
// inserts, and checkpoints against both the durable DB and an
// in-memory model, "crashes" at a random point (close without
// checkpoint, optionally truncating the WAL tail to simulate a torn
// write), reopens, and verifies the recovered contents equal the
// model at the last durable point.
func TestRandomizedCrashRecovery(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			dir := t.TempDir()
			db, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// model[table] = multiset of encoded rows. Because inserts
			// are the only mutation and WAL records are applied in
			// order, recovered contents must be a prefix-closed subset:
			// everything up to the last intact record.
			model := map[string][]string{}
			schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
			nTables := 1 + rng.Intn(3)
			for i := 0; i < nTables; i++ {
				name := fmt.Sprintf("t%d", i)
				if _, err := db.CreateTable(name, schema); err != nil {
					t.Fatal(err)
				}
				model[name] = nil
			}
			ops := 50 + rng.Intn(200)
			for i := 0; i < ops; i++ {
				table := fmt.Sprintf("t%d", rng.Intn(nTables))
				row := Row{IntValue(int64(i)), StringValue(fmt.Sprintf("v-%d-%d", trial, i))}
				if _, err := db.Insert(table, row); err != nil {
					t.Fatal(err)
				}
				model[table] = append(model[table], string(AppendRow(nil, row)))
				if rng.Float64() < 0.05 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Crash: close without a final checkpoint; sometimes chop
			// bytes off the WAL tail (losing a suffix of records is
			// legal crash behaviour; losing none is too).
			db.Close()
			lost := 0
			if rng.Float64() < 0.5 {
				walPath := filepath.Join(dir, "wal.dtl")
				fi, err := os.Stat(walPath)
				if err == nil && fi.Size() > 0 {
					chop := rng.Int63n(fi.Size() + 1)
					if err := os.Truncate(walPath, fi.Size()-chop); err != nil {
						t.Fatal(err)
					}
					if chop > 0 {
						lost = 1 // unknown count; recovered must be a prefix
					}
				}
			}

			db2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer db2.Close()
			for table, want := range model {
				tb, err := db2.Table(table)
				if err != nil {
					// A chopped WAL may even lose the table create; only
					// acceptable when we truncated.
					if lost == 0 {
						t.Fatalf("table %s lost without truncation", table)
					}
					continue
				}
				var got []string
				tb.Scan(func(_ int64, r Row) bool {
					got = append(got, string(AppendRow(nil, r)))
					return true
				})
				if lost == 0 {
					if len(got) != len(want) {
						t.Fatalf("table %s: %d rows, want %d", table, len(got), len(want))
					}
				} else if len(got) > len(want) {
					t.Fatalf("table %s: recovered MORE rows (%d) than written (%d)", table, len(got), len(want))
				}
				// Every recovered row must be one we wrote (no
				// corruption), and as a multiset a subset of the model.
				sort.Strings(got)
				wantSorted := append([]string(nil), want...)
				sort.Strings(wantSorted)
				wi := 0
				for _, g := range got {
					for wi < len(wantSorted) && wantSorted[wi] < g {
						wi++
					}
					if wi >= len(wantSorted) || wantSorted[wi] != g {
						t.Fatalf("table %s: recovered row not in model", table)
					}
					wi++
				}
			}
		})
	}
}
