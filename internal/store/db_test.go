package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestInMemoryDB(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := MustSchema(Column{"id", KindInt}, Column{"name", KindString})
	if _, err := db.CreateTable("t", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", s); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.Insert("t", Row{IntValue(1), StringValue("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("missing", Row{}); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	tb, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Fatalf("TableNames = %v", names)
	}
	// Checkpoint on an in-memory DB is a no-op.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSchema(Column{"id", KindInt}, Column{"name", KindString})
	if _, err := db.CreateTable("prot", s); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Insert("prot", Row{IntValue(int64(i)), StringValue(fmt.Sprintf("P%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": close without checkpoint.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb, err := db2.Table("prot")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 50 {
		t.Fatalf("replayed %d rows, want 50", tb.Len())
	}
	ids, _ := tb.LookupEqual("name", StringValue("P7"))
	if len(ids) != 1 {
		t.Fatalf("lookup after replay = %v", ids)
	}
}

func TestSnapshotAndWALTruncation(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSchema(Column{"id", KindInt}, Column{"v", KindFloat})
	db.CreateTable("m", s)
	for i := 0; i < 100; i++ {
		db.Insert("m", Row{IntValue(int64(i)), FloatValue(float64(i) / 2)})
	}
	tb, _ := db.Table("m")
	tb.CreateIndex("id", IndexBTree)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// WAL should be empty now.
	fi, err := os.Stat(filepath.Join(dir, "wal.dtl"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("WAL size after checkpoint = %d, want 0", fi.Size())
	}
	// More inserts after the checkpoint land in the WAL.
	for i := 100; i < 120; i++ {
		db.Insert("m", Row{IntValue(int64(i)), FloatValue(float64(i))})
	}
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb2, err := db2.Table("m")
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 120 {
		t.Fatalf("reloaded %d rows, want 120", tb2.Len())
	}
	// Index definition survived the snapshot.
	if typ, ok := tb2.HasIndex("id"); !ok || typ != IndexBTree {
		t.Fatalf("index lost across snapshot: %v %v", typ, ok)
	}
	ids, _ := tb2.LookupEqual("id", IntValue(110))
	if len(ids) != 1 {
		t.Fatalf("post-checkpoint row lost: %v", ids)
	}
}

func TestWALReplaysDeletesAndUpdates(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := MustSchema(Column{"id", KindInt}, Column{"v", KindString})
	db.CreateTable("t", s)
	var ids []int64
	for i := 0; i < 10; i++ {
		id, err := db.Insert("t", Row{IntValue(int64(i)), StringValue(fmt.Sprintf("v%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Delete two rows, update one; crash (no checkpoint).
	if ok, err := db.Delete("t", ids[3]); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if ok, err := db.Delete("t", ids[7]); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if err := db.Update("t", ids[5], Row{IntValue(5), StringValue("updated")}); err != nil {
		t.Fatal(err)
	}
	// Deleting a missing row is a clean no-op.
	if ok, err := db.Delete("t", 9999); ok || err != nil {
		t.Fatalf("missing delete: %v %v", ok, err)
	}
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb, _ := db2.Table("t")
	if tb.Len() != 8 {
		t.Fatalf("recovered %d rows, want 8", tb.Len())
	}
	seen := map[string]bool{}
	tb.Scan(func(_ int64, r Row) bool {
		seen[r[1].S] = true
		return true
	})
	if seen["v3"] || seen["v7"] {
		t.Fatal("deleted rows survived recovery")
	}
	if seen["v5"] || !seen["updated"] {
		t.Fatal("update did not survive recovery")
	}
}

func TestWALDeleteDuplicateRowsRemovesOne(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	s := MustSchema(Column{"v", KindString})
	db.CreateTable("t", s)
	var first int64
	for i := 0; i < 3; i++ {
		id, _ := db.Insert("t", Row{StringValue("dup")})
		if i == 0 {
			first = id
		}
	}
	db.Delete("t", first)
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb, _ := db2.Table("t")
	if tb.Len() != 2 {
		t.Fatalf("recovered %d duplicate rows, want 2", tb.Len())
	}
}

func TestWALToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	s := MustSchema(Column{"id", KindInt})
	db.CreateTable("t", s)
	for i := 0; i < 10; i++ {
		db.Insert("t", Row{IntValue(int64(i))})
	}
	db.Close()
	// Append garbage to simulate a torn write.
	f, err := os.OpenFile(filepath.Join(dir, "wal.dtl"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x55, 0x03, 0x01})
	f.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer db2.Close()
	tb, _ := db2.Table("t")
	if tb.Len() != 10 {
		t.Fatalf("replayed %d rows, want 10", tb.Len())
	}
}

func TestSnapshotRejectsWrongMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.dts"), []byte("NOTASNAPSHOT....."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("bogus snapshot accepted")
	}
}

func TestMultipleCheckpointCycles(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir)
	s := MustSchema(Column{"id", KindInt})
	db.CreateTable("t", s)
	total := 0
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 25; i++ {
			db.Insert("t", Row{IntValue(int64(total))})
			total++
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb, _ := db2.Table("t")
	if tb.Len() != total {
		t.Fatalf("rows = %d, want %d", tb.Len(), total)
	}
}
