package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary encoding for values and rows, shared by the WAL, snapshots,
// and the mobile wire protocol. The format is:
//
//	value := kind:uint8 payload
//	  NULL   -> (nothing)
//	  INT    -> zigzag varint
//	  FLOAT  -> 8-byte little-endian IEEE 754
//	  STRING -> uvarint length, bytes
//	  BOOL   -> 1 byte
//	row   := uvarint cell count, values
//
// All readers bound allocations by maxStringLen / maxRowCells so a
// corrupt or malicious stream cannot OOM the process.

const (
	maxStringLen = 16 << 20 // 16 MiB
	maxRowCells  = 1 << 16
)

// AppendValue appends the encoding of v to buf.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case KindNull:
	case KindInt:
		buf = binary.AppendVarint(buf, v.I)
	case KindFloat:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		buf = append(buf, tmp[:]...)
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case KindBool:
		buf = append(buf, byte(v.I))
	}
	return buf
}

// AppendRow appends the encoding of r to buf.
func AppendRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = AppendValue(buf, v)
	}
	return buf
}

// ReadValue decodes one value from r.
func ReadValue(r *bufio.Reader) (Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(kb) {
	case KindNull:
		return NullValue(), nil
	case KindInt:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return Value{}, fmt.Errorf("store: decoding int: %w", err)
		}
		return IntValue(i), nil
	case KindFloat:
		var tmp [8]byte
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return Value{}, fmt.Errorf("store: decoding float: %w", err)
		}
		return FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))), nil
	case KindString:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Value{}, fmt.Errorf("store: decoding string length: %w", err)
		}
		if n > maxStringLen {
			return Value{}, fmt.Errorf("store: string length %d exceeds limit", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return Value{}, fmt.Errorf("store: decoding string: %w", err)
		}
		return StringValue(string(b)), nil
	case KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return Value{}, fmt.Errorf("store: decoding bool: %w", err)
		}
		return BoolValue(b != 0), nil
	}
	return Value{}, fmt.Errorf("store: unknown value kind %d", kb)
}

// ReadRow decodes one row from r.
func ReadRow(r *bufio.Reader) (Row, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxRowCells {
		return nil, fmt.Errorf("store: row cell count %d exceeds limit", n)
	}
	row := make(Row, n)
	for i := range row {
		v, err := ReadValue(r)
		if err != nil {
			return nil, fmt.Errorf("store: cell %d: %w", i, err)
		}
		row[i] = v
	}
	return row, nil
}

// EncodedRowSize returns the byte length of a row's encoding without
// allocating it, used by the mobile layer's byte accounting.
func EncodedRowSize(r Row) int {
	n := uvarintLen(uint64(len(r)))
	for _, v := range r {
		n++ // kind byte
		switch v.K {
		case KindInt:
			n += varintLen(v.I)
		case KindFloat:
			n += 8
		case KindString:
			n += uvarintLen(uint64(len(v.S))) + len(v.S)
		case KindBool:
			n++
		}
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}
