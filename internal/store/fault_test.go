package store

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"drugtree/internal/vfs"
)

// faultOpts opens stores over fsys with the given sync policy.
func faultOpts(fsys vfs.FS, pol SyncPolicy) Options {
	return Options{FS: fsys, Sync: pol, SyncEvery: 4}
}

func mustOpenFault(t *testing.T, fsys vfs.FS, dir string, pol SyncPolicy) *DB {
	t.Helper()
	db, err := OpenWith(dir, faultOpts(fsys, pol))
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	return db
}

func seedRows(t *testing.T, db *DB, table string, n int) {
	t.Helper()
	schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	if _, err := db.CreateTable(table, schema); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Insert(table, Row{IntValue(int64(i)), StringValue(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
}

func rowMultiset(t *testing.T, db *DB, table string) []string {
	t.Helper()
	tab, err := db.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	tab.Scan(func(_ int64, r Row) bool {
		out = append(out, string(AppendRow(nil, r)))
		return true
	})
	sort.Strings(out)
	return out
}

// TestENOSPCMidCheckpoint: a full disk during the snapshot tmp write
// must fail the checkpoint, leave the store readable and NOT
// poisoned (the WAL is untouched), remove the tmp, and let both a
// retry and a reopen succeed.
func TestENOSPCMidCheckpoint(t *testing.T) {
	fsys := vfs.NewFault(11)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 20)
	want := rowMultiset(t, db, "tbl")

	armed := true
	fsys.SetInjector(func(op vfs.Op) vfs.Fault {
		if armed && op.Kind == vfs.OpWrite && op.Path == "db/snapshot.dts.tmp" {
			return vfs.FaultENOSPC
		}
		return vfs.FaultNone
	})
	if err := db.Checkpoint(); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("Checkpoint = %v, want ErrNoSpace", err)
	}
	armed = false
	if err := db.Failed(); err != nil {
		t.Fatalf("snapshot-tmp failure must not poison: %v", err)
	}
	if got := rowMultiset(t, db, "tbl"); len(got) != len(want) {
		t.Fatalf("store unreadable after failed checkpoint: %d rows, want %d", len(got), len(want))
	}
	if _, err := db.Insert("tbl", Row{IntValue(999), StringValue("after")}); err != nil {
		t.Fatalf("insert after failed checkpoint: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpenFault(t, fsys, "db", SyncAlways)
	if got := rowMultiset(t, db2, "tbl"); len(got) != len(want)+1 {
		t.Fatalf("reopen lost rows: %d, want %d", len(got), len(want)+1)
	}
}

// TestENOSPCMidWALAppend: a failed WAL append poisons the write path
// (the log tail is unknown), reads keep working, further writes get
// ErrPoisoned, and a reopen recovers every acknowledged write.
func TestENOSPCMidWALAppend(t *testing.T) {
	fsys := vfs.NewFault(12)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 10)
	acked := rowMultiset(t, db, "tbl")

	fsys.SetInjector(func(op vfs.Op) vfs.Fault {
		if op.Kind == vfs.OpWrite && op.Path == "db/wal.dtl" {
			return vfs.FaultENOSPC
		}
		return vfs.FaultNone
	})
	_, err := db.Insert("tbl", Row{IntValue(100), StringValue("lost")})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("insert on full disk = %v, want ErrPoisoned", err)
	}
	fsys.SetInjector(nil)
	// Sticky: the disk is fine again but the tail is still unknown.
	if _, err := db.Insert("tbl", Row{IntValue(101), StringValue("refused")}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("insert after poisoning = %v, want ErrPoisoned", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("checkpoint on poisoned db = %v, want ErrPoisoned", err)
	}
	if got := rowMultiset(t, db, "tbl"); len(got) == 0 {
		t.Fatalf("reads must keep working on a poisoned db")
	}
	db.Close()
	db2 := mustOpenFault(t, fsys, "db", SyncAlways)
	got := rowMultiset(t, db2, "tbl")
	for _, want := range acked {
		i := sort.SearchStrings(got, want)
		if i >= len(got) || got[i] != want {
			t.Fatalf("acknowledged row missing after recovery")
		}
	}
}

// TestFsyncgateNoSilentDrop: a failed WAL fsync under -wal-sync=always
// must surface an error on the write being acknowledged (not silently
// succeed) and poison the store; the write the application was told
// about failing is allowed to be absent after recovery, but nothing
// acknowledged before it may be lost.
func TestFsyncgateNoSilentDrop(t *testing.T) {
	fsys := vfs.NewFault(13)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 8)
	acked := rowMultiset(t, db, "tbl")

	fsys.SetInjector(func(op vfs.Op) vfs.Fault {
		if op.Kind == vfs.OpSync && op.Path == "db/wal.dtl" {
			return vfs.FaultSyncFail
		}
		return vfs.FaultNone
	})
	_, err := db.Insert("tbl", Row{IntValue(100), StringValue("gate")})
	if !errors.Is(err, ErrPoisoned) || !errors.Is(err, vfs.ErrSyncFailed) {
		t.Fatalf("insert with failing fsync = %v, want ErrPoisoned wrapping ErrSyncFailed", err)
	}
	fsys.SetInjector(nil)
	db.Close()
	// Simulate the power loss fsyncgate makes dangerous: only synced
	// bytes survive.
	fsys.Reboot()
	db2 := mustOpenFault(t, fsys, "db", SyncAlways)
	got := rowMultiset(t, db2, "tbl")
	for _, want := range acked {
		i := sort.SearchStrings(got, want)
		if i >= len(got) || got[i] != want {
			t.Fatalf("acknowledged row silently dropped after fsync failure")
		}
	}
}

// TestOpenRemovesOrphanedTmp: a crash between creating
// snapshot.dts.tmp and the rename leaves the tmp behind; Open must
// sweep it (and make the removal durable).
func TestOpenRemovesOrphanedTmp(t *testing.T) {
	fsys := vfs.NewFault(14)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 3)
	db.Close()

	h, err := fsys.Create("db/snapshot.dts.tmp")
	if err != nil {
		t.Fatal(err)
	}
	h.Write([]byte("partial snapshot from a crashed checkpoint"))
	h.Sync()
	h.Close()
	fsys.SyncDir("db")

	db2 := mustOpenFault(t, fsys, "db", SyncAlways)
	if _, err := fsys.ReadFile("db/snapshot.dts.tmp"); err == nil {
		t.Fatalf("orphaned tmp survived Open")
	}
	if got := rowMultiset(t, db2, "tbl"); len(got) != 3 {
		t.Fatalf("rows after tmp sweep = %d, want 3", len(got))
	}
	db2.Close()
	fsys.Reboot()
	if _, err := fsys.ReadFile("db/snapshot.dts.tmp"); err == nil {
		t.Fatalf("tmp removal was not made durable")
	}
}

// TestResetSyncsTruncation: after a checkpoint, a crash must not
// resurrect pre-checkpoint WAL records — the truncation itself is
// fsynced, and replay skips records the snapshot already holds. The
// combination means no duplicate rows after any crash/reopen.
func TestResetSyncsTruncation(t *testing.T) {
	fsys := vfs.NewFault(15)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 12)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("tbl", Row{IntValue(100), StringValue("post-ckpt")}); err != nil {
		t.Fatal(err)
	}
	// Power loss with no clean Close.
	fsys.Reboot()
	db2 := mustOpenFault(t, fsys, "db", SyncAlways)
	got := rowMultiset(t, db2, "tbl")
	if len(got) != 13 {
		t.Fatalf("recovered %d rows, want 13 (duplicates or loss)", len(got))
	}
	seen := map[string]int{}
	for _, r := range got {
		seen[r]++
		if seen[r] > 1 {
			t.Fatalf("duplicate row after crash: checkpoint records replayed twice")
		}
	}
}

// TestSnapshotChecksumDetected: at-rest corruption in a v2 snapshot is
// refused at Open and reported by VerifyDir instead of being served.
func TestSnapshotChecksumDetected(t *testing.T) {
	fsys := vfs.NewFault(16)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 10)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := VerifyDir(fsys, "db"); err != nil {
		t.Fatalf("VerifyDir on a healthy dir: %v", err)
	}
	if err := fsys.Corrupt("db/snapshot.dts", 40, 0x01); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(fsys, "db"); err == nil {
		t.Fatalf("VerifyDir missed snapshot corruption")
	}
	if _, err := OpenWith("db", faultOpts(fsys, SyncAlways)); err == nil {
		t.Fatalf("Open served a checksum-bad snapshot")
	}
}

// TestVerifyDirWALCorruption: a flipped bit mid-log is corruption
// (reported), but a torn tail is normal crash residue (clean).
func TestVerifyDirWALCorruption(t *testing.T) {
	fsys := vfs.NewFault(17)
	db := mustOpenFault(t, fsys, "db", SyncAlways)
	seedRows(t, db, "tbl", 10)
	db.Close()

	if err := VerifyDir(fsys, "db"); err != nil {
		t.Fatalf("VerifyDir on healthy WAL: %v", err)
	}
	// Mid-log corruption: flip a bit well before the end.
	if err := fsys.Corrupt("db/wal.dtl", 30, 0x10); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(fsys, "db"); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("VerifyDir = %v, want ErrWALCorrupt", err)
	}
}

// TestWALSyncIntervalBoundsLoss: under -wal-sync=interval every
// crash loses at most SyncEvery acknowledged writes, and under
// -wal-sync=always none, at every single crash offset in a small
// workload.
func TestWALSyncIntervalBoundsLoss(t *testing.T) {
	const rows = 20
	for _, tc := range []struct {
		pol     SyncPolicy
		maxLoss int
	}{
		{SyncAlways, 0},
		{SyncInterval, 4}, // SyncEvery=4 in faultOpts
	} {
		// Dry run to count mutating ops.
		fsys := vfs.NewFault(18)
		db := mustOpenFault(t, fsys, "db", tc.pol)
		seedRows(t, db, "tbl", rows)
		db.Close()
		points := fsys.MutOps()

		for k := 1; k <= points; k++ {
			fsys := vfs.NewFault(18)
			fsys.SetInjector(func(op vfs.Op) vfs.Fault {
				if op.N == k {
					return vfs.FaultCrash
				}
				return vfs.FaultNone
			})
			var acked int
			db, err := OpenWith("db", faultOpts(fsys, tc.pol))
			if err == nil {
				schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
				if _, err := db.CreateTable("tbl", schema); err == nil {
					for i := 0; i < rows; i++ {
						if _, err := db.Insert("tbl", Row{IntValue(int64(i)), StringValue(fmt.Sprintf("v%d", i))}); err != nil {
							break
						}
						acked++
					}
				}
				db.Close()
			}
			fsys.SetInjector(nil)
			fsys.Reboot()
			db2, err := OpenWith("db", faultOpts(fsys, tc.pol))
			if err != nil {
				t.Fatalf("pol=%v crash@%d: reopen: %v", tc.pol, k, err)
			}
			var recovered int
			if tab, err := db2.Table("tbl"); err == nil {
				recovered = tab.Len()
			}
			if loss := acked - recovered; loss > tc.maxLoss {
				t.Fatalf("pol=%v crash@%d: lost %d acked rows (acked=%d recovered=%d), bound %d",
					tc.pol, k, loss, acked, recovered, tc.maxLoss)
			}
			db2.Close()
		}
	}
}
