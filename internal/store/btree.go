package store

// btree is an in-memory B+ tree mapping Value keys to row-ID postings
// lists. It backs ordered secondary indexes: equality probes, range
// scans, and ordered iteration for merge joins.
//
// Keys are unique within the tree; duplicate inserts append to the
// key's postings list. Leaves are chained for range scans.

const (
	btreeOrder   = 64             // max children per interior node
	btreeMaxKeys = btreeOrder - 1 // max keys per node
	btreeMinKeys = btreeOrder / 2 // min keys per non-root after delete
)

type btreeNode struct {
	keys     []Value
	children []*btreeNode // nil for leaves
	postings [][]int64    // leaf only: row IDs per key
	next     *btreeNode   // leaf chain
}

func (n *btreeNode) isLeaf() bool { return n.children == nil }

type btree struct {
	root *btreeNode
	size int // number of distinct keys
}

func newBTree() *btree {
	return &btree{root: &btreeNode{postings: [][]int64{}}}
}

// findKey returns the position of the first key ≥ k in node n.
func findKey(n *btreeNode, k Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds rowID under key k.
func (t *btree) Insert(k Value, rowID int64) {
	root := t.root
	if len(root.keys) == btreeMaxKeys {
		newRoot := &btreeNode{children: []*btreeNode{root}}
		t.splitChild(newRoot, 0)
		t.root = newRoot
	}
	t.insertNonFull(t.root, k, rowID)
}

func (t *btree) insertNonFull(n *btreeNode, k Value, rowID int64) {
	for {
		i := findKey(n, k)
		if n.isLeaf() {
			if i < len(n.keys) && Equal(n.keys[i], k) {
				n.postings[i] = append(n.postings[i], rowID)
				return
			}
			n.keys = append(n.keys, Value{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = k
			n.postings = append(n.postings, nil)
			copy(n.postings[i+1:], n.postings[i:])
			n.postings[i] = []int64{rowID}
			t.size++
			return
		}
		if i < len(n.keys) && Compare(k, n.keys[i]) >= 0 {
			i++
		}
		if len(n.children[i].keys) == btreeMaxKeys {
			t.splitChild(n, i)
			if Compare(k, n.keys[i]) >= 0 {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the full child at index i of parent p.
func (t *btree) splitChild(p *btreeNode, i int) {
	child := p.children[i]
	mid := btreeMaxKeys / 2
	var sib *btreeNode
	var up Value
	if child.isLeaf() {
		// Leaf split: sibling keeps keys[mid:], separator is the
		// sibling's first key (B+ tree: keys stay in leaves).
		sib = &btreeNode{
			keys:     append([]Value(nil), child.keys[mid:]...),
			postings: append([][]int64(nil), child.postings[mid:]...),
			next:     child.next,
		}
		child.keys = child.keys[:mid:mid]
		child.postings = child.postings[:mid:mid]
		child.next = sib
		up = sib.keys[0]
	} else {
		// Interior split: middle key moves up.
		up = child.keys[mid]
		sib = &btreeNode{
			keys:     append([]Value(nil), child.keys[mid+1:]...),
			children: append([]*btreeNode(nil), child.children[mid+1:]...),
		}
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	p.keys = append(p.keys, Value{})
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = up
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = sib
}

// leafFor descends to the leaf that would contain k.
func (t *btree) leafFor(k Value) *btreeNode {
	n := t.root
	for !n.isLeaf() {
		i := findKey(n, k)
		if i < len(n.keys) && Compare(k, n.keys[i]) >= 0 {
			i++
		}
		n = n.children[i]
	}
	return n
}

// Get returns the postings list for k, or nil.
func (t *btree) Get(k Value) []int64 {
	n := t.leafFor(k)
	i := findKey(n, k)
	if i < len(n.keys) && Equal(n.keys[i], k) {
		return n.postings[i]
	}
	return nil
}

// Delete removes rowID from key k's postings, dropping the key when
// its postings list becomes empty. Structural underflow is tolerated
// (nodes may become sparse); the tree never loses keys and lookup
// correctness is unaffected, which is the right trade-off for an
// index whose tables are overwhelmingly append-mostly.
func (t *btree) Delete(k Value, rowID int64) bool {
	n := t.leafFor(k)
	i := findKey(n, k)
	if i >= len(n.keys) || !Equal(n.keys[i], k) {
		return false
	}
	post := n.postings[i]
	for j, id := range post {
		if id == rowID {
			post[j] = post[len(post)-1]
			post = post[:len(post)-1]
			n.postings[i] = post
			if len(post) == 0 {
				copy(n.keys[i:], n.keys[i+1:])
				n.keys = n.keys[:len(n.keys)-1]
				copy(n.postings[i:], n.postings[i+1:])
				n.postings = n.postings[:len(n.postings)-1]
				t.size--
			}
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys.
func (t *btree) Len() int { return t.size }

// Range calls fn for each (key, postings) pair with lo ≤ key ≤ hi in
// ascending order. A nil lo means unbounded below; nil hi unbounded
// above. Iteration stops early when fn returns false.
func (t *btree) Range(lo, hi *Value, fn func(k Value, postings []int64) bool) {
	var n *btreeNode
	if lo != nil {
		n = t.leafFor(*lo)
	} else {
		n = t.root
		for !n.isLeaf() {
			n = n.children[0]
		}
	}
	for n != nil {
		for i := 0; i < len(n.keys); i++ {
			if lo != nil && Compare(n.keys[i], *lo) < 0 {
				continue
			}
			if hi != nil && Compare(n.keys[i], *hi) > 0 {
				return
			}
			if !fn(n.keys[i], n.postings[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, or false when empty. Because deletes
// may leave empty leaves, the leftmost non-empty leaf is found by
// following the leaf chain.
func (t *btree) Min() (Value, bool) {
	n := t.root
	for !n.isLeaf() {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return Value{}, false
}

// Max returns the largest key, or false when empty. The rightmost
// leaf may be empty after deletes, in which case the leaf chain is
// scanned for the last non-empty leaf (O(#leaves); acceptable for the
// append-mostly workloads this index serves).
func (t *btree) Max() (Value, bool) {
	n := t.root
	for !n.isLeaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], true
	}
	if t.size == 0 {
		return Value{}, false
	}
	// Fallback: walk the leaf chain from the left.
	n = t.root
	for !n.isLeaf() {
		n = n.children[0]
	}
	var best Value
	found := false
	for ; n != nil; n = n.next {
		if len(n.keys) > 0 {
			best = n.keys[len(n.keys)-1]
			found = true
		}
	}
	return best, found
}
