package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// wrappedEOFReader serves a byte stream whose end-of-stream error is a
// *wrapped* io.EOF, the shape an instrumented or decorated transport
// produces. Only errors.Is can see through it; an identity comparison
// (err == io.EOF) reads it as a mid-stream failure.
type wrappedEOFReader struct {
	data []byte
	off  int
}

func (r *wrappedEOFReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("transport: %w", io.EOF)
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestReplayWALWrappedEOF pins the errcmp fix in replayWAL: replay
// must treat a wrapped io.EOF from the record source as the clean end
// of the log — every record before it applied, no error — exactly as
// it treats a bare io.EOF from the file. Before the fix the identity
// comparison fell through to the torn-length branch, which happened to
// return the same values; this test makes the clean-end behaviour a
// contract rather than a coincidence, so neither branch can regress
// into surfacing an error or dropping applied records.
func TestReplayWALWrappedEOF(t *testing.T) {
	src := t.TempDir()
	db, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	const rows = 10
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("t", Row{IntValue(int64(i)), StringValue(fmt.Sprintf("v-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Close without a checkpoint: the WAL keeps every record.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(src, "wal.dtl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(walBytes) == 0 {
		t.Fatal("WAL is empty; the fixture setup no longer logs records")
	}

	// Replay the same records into a fresh database through a source
	// that ends with a wrapped EOF.
	db2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	last, err := db2.replayWALFrom(bufio.NewReader(&wrappedEOFReader{data: walBytes}), 0)
	if err != nil {
		t.Fatalf("replay over wrapped-EOF source: %v", err)
	}
	if last == 0 {
		t.Fatal("replay applied no records")
	}
	tb, err := db2.Table("t")
	if err != nil {
		t.Fatalf("replay lost the table create: %v", err)
	}
	got := 0
	tb.Scan(func(_ int64, _ Row) bool {
		got++
		return true
	})
	if got != rows {
		t.Fatalf("replay applied %d rows, want %d — wrapped EOF must not truncate the log", got, rows)
	}
}
