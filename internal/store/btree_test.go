package store

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBTreeInsertGet(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 1000; i++ {
		bt.Insert(IntValue(i%100), i)
	}
	if bt.Len() != 100 {
		t.Fatalf("Len = %d, want 100", bt.Len())
	}
	post := bt.Get(IntValue(42))
	if len(post) != 10 {
		t.Fatalf("postings for 42 = %d entries, want 10", len(post))
	}
	for _, id := range post {
		if id%100 != 42 {
			t.Fatalf("posting %d not ≡42 mod 100", id)
		}
	}
	if bt.Get(IntValue(1000)) != nil {
		t.Fatal("missing key returned postings")
	}
}

func TestBTreeOrderedIteration(t *testing.T) {
	bt := newBTree()
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(5000)
	for _, k := range keys {
		bt.Insert(IntValue(int64(k)), int64(k))
	}
	var got []int64
	bt.Range(nil, nil, func(k Value, _ []int64) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("iterated %d keys, want 5000", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration not sorted")
	}
}

func TestBTreeRangeBounds(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(IntValue(i), i)
	}
	lo, hi := IntValue(10), IntValue(19)
	var got []int64
	bt.Range(&lo, &hi, func(k Value, _ []int64) bool {
		got = append(got, k.I)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,19] = %v", got)
	}
	// Open bounds.
	var below []int64
	bt.Range(nil, &lo, func(k Value, _ []int64) bool {
		below = append(below, k.I)
		return true
	})
	if len(below) != 11 {
		t.Fatalf("range (-inf,10] = %d keys, want 11", len(below))
	}
	var above []int64
	bt.Range(&hi, nil, func(k Value, _ []int64) bool {
		above = append(above, k.I)
		return true
	})
	if len(above) != 81 {
		t.Fatalf("range [19,inf) = %d keys, want 81", len(above))
	}
}

func TestBTreeRangeEarlyStop(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(IntValue(i), i)
	}
	count := 0
	bt.Range(nil, nil, func(Value, []int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop iterated %d, want 5", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newBTree()
	for i := int64(0); i < 500; i++ {
		bt.Insert(IntValue(i), i)
		bt.Insert(IntValue(i), i+1000)
	}
	// Remove one posting: key stays.
	if !bt.Delete(IntValue(7), 7) {
		t.Fatal("delete existing posting failed")
	}
	if post := bt.Get(IntValue(7)); len(post) != 1 || post[0] != 1007 {
		t.Fatalf("postings after partial delete = %v", post)
	}
	// Remove the other: key goes.
	if !bt.Delete(IntValue(7), 1007) {
		t.Fatal("delete second posting failed")
	}
	if bt.Get(IntValue(7)) != nil {
		t.Fatal("key survived full delete")
	}
	if bt.Len() != 499 {
		t.Fatalf("Len = %d, want 499", bt.Len())
	}
	// Deleting a missing posting fails cleanly.
	if bt.Delete(IntValue(8), 9999) {
		t.Fatal("delete of missing posting succeeded")
	}
	if bt.Delete(IntValue(99999), 0) {
		t.Fatal("delete of missing key succeeded")
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := newBTree()
	if _, ok := bt.Min(); ok {
		t.Fatal("empty tree has Min")
	}
	if _, ok := bt.Max(); ok {
		t.Fatal("empty tree has Max")
	}
	for _, k := range []int64{50, 10, 90, 30, 70} {
		bt.Insert(IntValue(k), k)
	}
	if mn, _ := bt.Min(); mn.I != 10 {
		t.Fatalf("Min = %v", mn)
	}
	if mx, _ := bt.Max(); mx.I != 90 {
		t.Fatalf("Max = %v", mx)
	}
	bt.Delete(IntValue(90), 90)
	if mx, ok := bt.Max(); !ok || mx.I != 70 {
		t.Fatalf("Max after delete = %v (%v)", mx, ok)
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := newBTree()
	words := []string{"kinase", "ligase", "hydrolase", "transferase", "oxidoreductase"}
	for i, w := range words {
		bt.Insert(StringValue(w), int64(i))
	}
	var got []string
	bt.Range(nil, nil, func(k Value, _ []int64) bool {
		got = append(got, k.S)
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatalf("string keys not sorted: %v", got)
	}
}

func TestBTreeMatchesReferenceModel(t *testing.T) {
	// Property test against a map+sort reference model under a random
	// insert/delete workload.
	bt := newBTree()
	ref := map[int64]map[int64]bool{}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(300))
		id := int64(rng.Intn(50))
		if rng.Float64() < 0.7 {
			// Avoid duplicate (k,id) postings in the model; the tree
			// allows them but the model would diverge.
			if ref[k] == nil {
				ref[k] = map[int64]bool{}
			}
			if !ref[k][id] {
				ref[k][id] = true
				bt.Insert(IntValue(k), id)
			}
		} else {
			want := ref[k] != nil && ref[k][id]
			got := bt.Delete(IntValue(k), id)
			if got != want {
				t.Fatalf("op %d: Delete(%d,%d) = %v, want %v", op, k, id, got, want)
			}
			if want {
				delete(ref[k], id)
				if len(ref[k]) == 0 {
					delete(ref, k)
				}
			}
		}
	}
	if bt.Len() != len(ref) {
		t.Fatalf("Len = %d, model = %d", bt.Len(), len(ref))
	}
	for k, ids := range ref {
		post := bt.Get(IntValue(k))
		if len(post) != len(ids) {
			t.Fatalf("key %d: %d postings, model %d", k, len(post), len(ids))
		}
		for _, id := range post {
			if !ids[id] {
				t.Fatalf("key %d: unexpected posting %d", k, id)
			}
		}
	}
	// Ordered iteration matches the sorted model keys.
	var modelKeys []int64
	for k := range ref {
		modelKeys = append(modelKeys, k)
	}
	sort.Slice(modelKeys, func(i, j int) bool { return modelKeys[i] < modelKeys[j] })
	var treeKeys []int64
	bt.Range(nil, nil, func(k Value, _ []int64) bool {
		treeKeys = append(treeKeys, k.I)
		return true
	})
	if len(treeKeys) != len(modelKeys) {
		t.Fatalf("iteration found %d keys, model %d", len(treeKeys), len(modelKeys))
	}
	for i := range treeKeys {
		if treeKeys[i] != modelKeys[i] {
			t.Fatalf("key %d: %d != %d", i, treeKeys[i], modelKeys[i])
		}
	}
}
