// Package store implements DrugTree's embedded row store: typed
// tables with hash and B+-tree secondary indexes, table statistics for
// the cost-based optimizer, and WAL + snapshot persistence.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind enumerates value types.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString parses a type name as written in schema DDL.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "INT", "int":
		return KindInt, nil
	case "FLOAT", "float":
		return KindFloat, nil
	case "STRING", "string", "TEXT", "text":
		return KindString, nil
	case "BOOL", "bool":
		return KindBool, nil
	}
	return KindNull, fmt.Errorf("store: unknown type %q", s)
}

// Value is a compact tagged union holding one cell. The zero Value is
// NULL.
type Value struct {
	K Kind
	I int64   // KindInt and KindBool (0/1)
	F float64 // KindFloat
	S string  // KindString
}

// Typed constructors.

// NullValue returns the NULL value.
func NullValue() Value { return Value{} }

// IntValue returns an INT value.
func IntValue(i int64) Value { return Value{K: KindInt, I: i} }

// FloatValue returns a FLOAT value.
func FloatValue(f float64) Value { return Value{K: KindFloat, F: f} }

// StringValue returns a STRING value.
func StringValue(s string) Value { return Value{K: KindString, S: s} }

// BoolValue returns a BOOL value.
func BoolValue(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean interpretation (only valid for KindBool).
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsFloat widens INT to FLOAT for mixed-type numeric comparison and
// arithmetic; other kinds return NaN.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return math.NaN()
}

// Numeric reports whether the value is INT or FLOAT.
func (v Value) Numeric() bool { return v.K == KindInt || v.K == KindFloat }

// Compare orders two values. NULL sorts before everything; numeric
// kinds compare by value across INT/FLOAT; distinct non-numeric kinds
// compare by kind tag (deterministic but meaningless, queries
// type-check before reaching here). Returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.Numeric() && b.Numeric() {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash returns a hash of the value consistent with Equal (numeric
// values hash by their float64 widening so 1 and 1.0 collide, matching
// Compare).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	switch v.K {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt, KindFloat:
		buf[0] = 1
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(v.AsFloat()))
		h.Write(buf[:9])
	case KindString:
		buf[0] = 2
		h.Write(buf[:1])
		h.Write([]byte(v.S))
	case KindBool:
		buf[0] = 3
		buf[1] = byte(v.I)
		h.Write(buf[:2])
	}
	return h.Sum64()
}

// String renders the value for display and EXPLAIN output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Row is one record: a dense slice of cells matching a table schema.
type Row []Value

// Clone returns a deep-enough copy of the row (Values are value types;
// strings share backing storage, which is safe because Values are
// immutable by convention).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
