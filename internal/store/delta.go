package store

import "fmt"

// TableDelta stages one table's slice of an atomic multi-table commit:
// the rows to retire (by current row ID) and the rows to insert. An
// update is expressed as a delete of the old row plus an insert of the
// new one — both land in the same commit version.
type TableDelta struct {
	Table     string
	DeleteIDs []int64
	Inserts   []Row
}

// Empty reports whether the delta changes nothing.
func (d TableDelta) Empty() bool { return len(d.DeleteIDs) == 0 && len(d.Inserts) == 0 }

// CommitDeltas atomically publishes multi-table deltas: each affected
// table gains exactly one new commit version, and the whole publish
// runs under the database write lock, so a snapshot pinned before the
// call sees none of it and one pinned after sees all of it — readers
// never observe a half-sync. Durability matches the atomicity: the
// batch is logged as ONE CRC-protected WAL record, replayed entirely
// or not at all after a crash.
//
// The critical section is O(changed rows): deltas are validated first
// (nothing applied on a validation error), then applied, then logged.
// Readers holding pinned snapshots are never blocked — they keep
// reading their frozen versions while the publish lands.
func (db *DB) CommitDeltas(deltas []TableDelta) error {
	if err := db.Failed(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	type stagedDelta struct {
		t *Table
		d TableDelta
	}
	var stage []stagedDelta
	seen := make(map[string]bool, len(deltas))
	for _, d := range deltas {
		if d.Empty() {
			continue
		}
		if seen[d.Table] {
			return fmt.Errorf("store: CommitDeltas names table %q twice", d.Table)
		}
		seen[d.Table] = true
		t, err := db.tableLocked(d.Table)
		if err != nil {
			return err
		}
		if err := t.validateDelta(d.DeleteIDs, d.Inserts); err != nil {
			return err
		}
		stage = append(stage, stagedDelta{t, d})
	}
	if len(stage) == 0 {
		return nil
	}
	// With db.mu held exclusively no writer can interleave between the
	// validation above and the applies below, so the applies cannot
	// fail and the multi-table publish is all-or-nothing.
	var walDeltas []walTableDelta
	for _, s := range stage {
		deleted := s.t.applyDelta(s.d.DeleteIDs, s.d.Inserts)
		if db.wal != nil {
			walDeltas = append(walDeltas, walTableDelta{
				table:   s.d.Table,
				deletes: deleted,
				inserts: s.d.Inserts,
			})
		}
	}
	if db.wal != nil {
		if err := db.wal.logBatch(walDeltas); err != nil {
			return db.walFail(err)
		}
	}
	return nil
}

// validateDelta checks a delta against the table's current version
// without applying it.
func (t *Table) validateDelta(deleteIDs []int64, inserts []Row) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.validateDeltaLocked(deleteIDs, inserts)
}

// applyDelta applies a validated delta as one commit version and
// returns the deleted rows' values for WAL logging.
func (t *Table) applyDelta(deleteIDs []int64, inserts []Row) []Row {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applyDeltaLocked(deleteIDs, inserts)
}
