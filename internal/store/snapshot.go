package store

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// SnapshotHandle pins a consistent point-in-time image of every table
// in the database. While held, readers going through the handle's
// TableViews see exactly the commit versions current at pin time —
// concurrent writers keep committing without blocking them, and
// CommitDeltas publishes multi-table batches all-or-nothing with
// respect to the pin. Release drops the pins; superseded row versions
// are garbage-collected once no handle can reach them. Release is
// idempotent and must be called on every acquired handle (the
// snapcheck lint rule enforces a defer or an explicit ownership
// transfer on all paths).
type SnapshotHandle struct {
	db       *DB
	views    map[string]*TableView
	released atomic.Bool
}

// PinSnapshot pins the current commit version of every table and
// returns the handle. The pin runs under the database read lock, so it
// is atomic with respect to CommitDeltas: a concurrent multi-table
// publish is either fully visible or fully invisible to the snapshot.
func (db *DB) PinSnapshot() *SnapshotHandle {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := &SnapshotHandle{db: db, views: make(map[string]*TableView, len(db.tables))}
	for name, t := range db.tables {
		s.views[name] = &TableView{t: t, v: t.pin()}
	}
	db.snapCount.Add(1)
	return s
}

// ActiveSnapshots reports how many pinned snapshots are outstanding —
// zero after every acquirer has released (the T14 leak gate).
func (db *DB) ActiveSnapshots() int64 {
	return db.snapCount.Load()
}

// DeadVersions sums superseded row versions awaiting GC across all
// tables. With no snapshots pinned it settles to zero.
func (db *DB) DeadVersions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += t.DeadVersions()
	}
	return n
}

// PinnedVersions sums distinct pinned commit versions across all
// tables.
func (db *DB) PinnedVersions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, t := range db.tables {
		n += t.PinnedVersions()
	}
	return n
}

// Release unpins every table version the handle holds. Idempotent.
func (s *SnapshotHandle) Release() {
	if s == nil || s.released.Swap(true) {
		return
	}
	for _, tv := range s.views {
		tv.t.unpin(tv.v)
	}
	s.db.snapCount.Add(-1)
}

// View returns the pinned view of the named table. Tables created
// after the pin are not part of the snapshot.
func (s *SnapshotHandle) View(name string) (*TableView, error) {
	tv, ok := s.views[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q in snapshot", name)
	}
	return tv, nil
}

// Version returns the pinned commit version of the named table.
func (s *SnapshotHandle) Version(name string) (int64, bool) {
	tv, ok := s.views[name]
	if !ok {
		return 0, false
	}
	return tv.v, true
}

// Versions returns the pinned per-table commit versions.
func (s *SnapshotHandle) Versions() map[string]int64 {
	out := make(map[string]int64, len(s.views))
	for name, tv := range s.views {
		out[name] = tv.v
	}
	return out
}

// VersionKey renders the snapshot's per-table versions as a canonical
// sorted string — the statement-cache key component that replaces the
// summed dbVersion, so a write to one table no longer invalidates
// cached plans that never read it.
func VersionKey(versions map[string]int64) string {
	names := make([]string, 0, len(versions))
	for n := range versions {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d;", n, versions[n])
	}
	return b.String()
}

// TableView reads one table at a fixed commit version. A view with a
// negative version is unpinned and follows the latest commit on every
// read (the path engines without a snapshot catalog use).
type TableView struct {
	t *Table
	v int64
}

// LatestView returns an unpinned view that follows the table's latest
// commit version on every read.
func (t *Table) LatestView() *TableView { return &TableView{t: t, v: -1} }

// Table exposes the underlying table for schema and index
// introspection (planning never reads rows through it).
func (tv *TableView) Table() *Table { return tv.t }

// Version returns the pinned commit version, or the current one for an
// unpinned view.
func (tv *TableView) Version() int64 {
	if tv.v < 0 {
		return tv.t.Version()
	}
	return tv.v
}

// Pinned reports whether the view is frozen at a pinned version.
func (tv *TableView) Pinned() bool { return tv.v >= 0 }

// Len returns the number of rows visible in the view.
func (tv *TableView) Len() int {
	if tv.v < 0 {
		return tv.t.Len()
	}
	n := 0
	tv.t.ScanAt(tv.v, func(int64, Row) bool { n++; return true })
	return n
}

// Scan calls fn for every visible row until fn returns false.
func (tv *TableView) Scan(fn func(id int64, r Row) bool) {
	if tv.v < 0 {
		tv.t.Scan(fn)
		return
	}
	tv.t.ScanAt(tv.v, fn)
}

// Snapshot returns shared immutable references to every visible row.
func (tv *TableView) Snapshot() []Row {
	if tv.v < 0 {
		return tv.t.Snapshot()
	}
	return tv.t.SnapshotAt(tv.v)
}

// Get returns the visible row with the given ID.
func (tv *TableView) Get(id int64) (Row, bool) {
	if tv.v < 0 {
		return tv.t.Get(id)
	}
	return tv.t.GetAt(tv.v, id)
}

// Rows returns copies of the visible rows with the given IDs.
func (tv *TableView) Rows(ids []int64) []Row {
	if tv.v < 0 {
		return tv.t.Rows(ids)
	}
	return tv.t.RowsAt(tv.v, ids)
}

// LookupEqual returns the IDs of visible rows whose column equals v.
func (tv *TableView) LookupEqual(column string, v Value) ([]int64, error) {
	if tv.v < 0 {
		return tv.t.LookupEqual(column, v)
	}
	return tv.t.LookupEqualAt(tv.v, column, v)
}

// LookupRange returns the IDs of visible rows with lo ≤ column ≤ hi.
func (tv *TableView) LookupRange(column string, lo, hi *Value) ([]int64, error) {
	if tv.v < 0 {
		return tv.t.LookupRange(column, lo, hi)
	}
	return tv.t.LookupRangeAt(tv.v, column, lo, hi)
}

// GatherCols materializes the visible rows with the given IDs into one
// columnar batch.
func (tv *TableView) GatherCols(ids []int64) *ColBatch {
	if tv.v < 0 {
		return tv.t.GatherCols(ids)
	}
	return tv.t.GatherColsAt(tv.v, ids)
}

// ScanBatch streams the visible rows as columnar batches.
func (tv *TableView) ScanBatch(batchRows int, fn func(*ColBatch) bool) {
	if tv.v < 0 {
		tv.t.ScanBatch(batchRows, fn)
		return
	}
	tv.t.ScanBatchAt(tv.v, batchRows, fn)
}
