package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func replTestDB(t *testing.T) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	return db, dir
}

func replInsert(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := db.Insert("t", Row{IntValue(int64(i)), StringValue("v")}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALSeqMonotonic pins the sequencing contract: every mutation
// advances WALSeq by one, a checkpoint preserves the counter (the WAL
// truncates but seq is for the database's lifetime), and a reopen
// restores it from the snapshot trailer plus surviving WAL records.
func TestWALSeqMonotonic(t *testing.T) {
	db, dir := replTestDB(t)
	if got := db.WALSeq(); got != 1 { // the create-table record
		t.Fatalf("WALSeq after create = %d, want 1", got)
	}
	replInsert(t, db, 5)
	if got := db.WALSeq(); got != 6 {
		t.Fatalf("WALSeq after 5 inserts = %d, want 6", got)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.WALSeq(); got != 6 {
		t.Fatalf("WALSeq after checkpoint = %d, want 6 (checkpoint must not reset seq)", got)
	}
	replInsert(t, db, 2)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.WALSeq(); got != 8 {
		t.Fatalf("WALSeq after reopen = %d, want 8", got)
	}
	replInsert(t, db2, 1)
	if got := db2.WALSeq(); got != 9 {
		t.Fatalf("WALSeq after post-reopen insert = %d, want 9", got)
	}
}

// TestScanWALStreamsAndFollowerApplies ships a leader's WAL to a
// follower seeded from an empty store: the follower applies every
// record via ApplyReplicated and must converge to identical contents
// with an identical WALSeq (its own log mirrors the stream).
func TestScanWALStreamsAndFollowerApplies(t *testing.T) {
	leader, _ := replTestDB(t)
	replInsert(t, leader, 10)

	follower, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	err = leader.ScanWAL(follower.WALSeq(), func(seq int64, body []byte) error {
		return follower.ApplyReplicated(seq, body)
	})
	if err != nil {
		t.Fatal(err)
	}
	if follower.WALSeq() != leader.WALSeq() {
		t.Fatalf("follower seq %d != leader seq %d", follower.WALSeq(), leader.WALSeq())
	}
	ft, err := follower.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 10 {
		t.Fatalf("follower has %d rows, want 10", ft.Len())
	}

	// Incremental tail: new leader writes ship from the follower's
	// current seq without re-sending the prefix.
	replInsert(t, leader, 3)
	var shipped int
	err = leader.ScanWAL(follower.WALSeq(), func(seq int64, body []byte) error {
		shipped++
		return follower.ApplyReplicated(seq, body)
	})
	if err != nil {
		t.Fatal(err)
	}
	if shipped != 3 {
		t.Fatalf("incremental scan shipped %d records, want 3", shipped)
	}
	if ft.Len() != 13 {
		t.Fatalf("follower has %d rows after tail, want 13", ft.Len())
	}
}

// TestScanWALGapAfterCheckpoint proves a checkpoint-truncated WAL is
// reported as ErrWALGap to a subscriber whose position predates the
// truncation — the signal to re-seed from a snapshot.
func TestScanWALGapAfterCheckpoint(t *testing.T) {
	db, _ := replTestDB(t)
	replInsert(t, db, 5)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Position 2 is inside the truncated range.
	err := db.ScanWAL(2, func(int64, []byte) error { return nil })
	if !errors.Is(err, ErrWALGap) {
		t.Fatalf("scan from truncated position: err = %v, want ErrWALGap", err)
	}
	// From the current frontier there is nothing to ship and no gap.
	if err := db.ScanWAL(db.WALSeq(), func(int64, []byte) error { return nil }); err != nil {
		t.Fatalf("scan from frontier after checkpoint: %v", err)
	}
	// Records written after the checkpoint stream normally.
	replInsert(t, db, 2)
	var got []int64
	if err := db.ScanWAL(6, func(seq int64, _ []byte) error {
		got = append(got, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("post-checkpoint scan returned seqs %v, want [7 8]", got)
	}
}

// TestScanWALCorruptInterior flips a bit in a fully-present interior
// record: ScanWAL must fail with ErrWALCorrupt (replication cannot
// trust the stream) even though crash replay would just stop there.
func TestScanWALCorruptInterior(t *testing.T) {
	db, dir := replTestDB(t)
	replInsert(t, db, 4)
	sizeBefore := walSize(t, dir)
	replInsert(t, db, 1) // the record to damage
	sizeAfter := walSize(t, dir)
	replInsert(t, db, 2) // records after the damage

	walPath := filepath.Join(dir, "wal.dtl")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[sizeBefore+3] ^= 0x40 // inside the damaged record's payload
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = sizeAfter

	var seqs []int64
	err = db.ScanWAL(0, func(seq int64, _ []byte) error {
		seqs = append(seqs, seq)
		return nil
	})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("scan over bit-flipped record: err = %v, want ErrWALCorrupt", err)
	}
	if len(seqs) != 5 { // create-table + 4 intact inserts
		t.Fatalf("delivered %d records before corruption, want 5", len(seqs))
	}
}

// TestApplyReplicatedRejectsGap pins that a follower refuses a record
// that is not the immediate successor of its applied stream.
func TestApplyReplicatedRejectsGap(t *testing.T) {
	leader, _ := replTestDB(t)
	replInsert(t, leader, 3)
	var records [][]byte
	var seqs []int64
	if err := leader.ScanWAL(0, func(seq int64, body []byte) error {
		records = append(records, append([]byte(nil), body...))
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	follower, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if err := follower.ApplyReplicated(seqs[0], records[0]); err != nil {
		t.Fatal(err)
	}
	// Skipping seq 2 must be refused.
	err = follower.ApplyReplicated(seqs[2], records[2])
	if !errors.Is(err, ErrWALGap) {
		t.Fatalf("out-of-order apply: err = %v, want ErrWALGap", err)
	}
	// Replays of already-applied seqs are refused too (idempotence is
	// the shipper's job; the store only accepts the successor).
	err = follower.ApplyReplicated(seqs[0], records[0])
	if !errors.Is(err, ErrWALGap) {
		t.Fatalf("duplicate apply: err = %v, want ErrWALGap", err)
	}
}

// TestWriteSnapshotToSeeds streams a leader snapshot into a fresh
// directory and opens it: the seeded store must hold the same rows and
// resume the sequence stream exactly where the snapshot left it.
func TestWriteSnapshotToSeeds(t *testing.T) {
	leader, _ := replTestDB(t)
	replInsert(t, leader, 7)

	seedDir := t.TempDir()
	f, err := os.Create(filepath.Join(seedDir, "snapshot.dts"))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := leader.WriteSnapshotTo(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if seq != leader.WALSeq() {
		t.Fatalf("snapshot seq %d != leader seq %d", seq, leader.WALSeq())
	}

	seeded, err := Open(seedDir)
	if err != nil {
		t.Fatal(err)
	}
	defer seeded.Close()
	if seeded.WALSeq() != seq {
		t.Fatalf("seeded store seq %d, want %d", seeded.WALSeq(), seq)
	}
	st, err := seeded.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 7 {
		t.Fatalf("seeded store has %d rows, want 7", st.Len())
	}
	// The seeded store can consume the tail directly.
	replInsert(t, leader, 2)
	if err := leader.ScanWAL(seeded.WALSeq(), func(s int64, b []byte) error {
		return seeded.ApplyReplicated(s, b)
	}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 9 || seeded.WALSeq() != leader.WALSeq() {
		t.Fatalf("seeded tail-catchup: rows=%d seq=%d, leader seq=%d", st.Len(), seeded.WALSeq(), leader.WALSeq())
	}
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, "wal.dtl"))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
