package store

import (
	"fmt"
	"sync"
	"testing"
)

func proteinSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"accession", KindString},
		Column{"family", KindString},
		Column{"length", KindInt},
		Column{"reviewed", KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{"a", KindInt}, Column{"a", KindString}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema(Column{"", KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{"a", KindNull}); err == nil {
		t.Error("NULL-typed column accepted")
	}
	s := MustSchema(Column{"a", KindInt}, Column{"b", KindString})
	if s.ColumnIndex("b") != 1 || s.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if s.String() != "a INT, b STRING" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaCheckRow(t *testing.T) {
	s := MustSchema(Column{"a", KindInt}, Column{"b", KindString})
	if err := s.CheckRow(Row{IntValue(1), StringValue("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.CheckRow(Row{IntValue(1), NullValue()}); err != nil {
		t.Errorf("NULL cell rejected: %v", err)
	}
	if err := s.CheckRow(Row{IntValue(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.CheckRow(Row{StringValue("x"), StringValue("y")}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestTableInsertGetDelete(t *testing.T) {
	tb := NewTable("proteins", proteinSchema(t))
	id, err := tb.Insert(Row{StringValue("P001"), StringValue("FAM1"), IntValue(300), BoolValue(true)})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := tb.Get(id)
	if !ok || r[0].S != "P001" {
		t.Fatalf("Get(%d) = %v, %v", id, r, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Delete(id) {
		t.Fatal("delete failed")
	}
	if tb.Delete(id) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := tb.Get(id); ok {
		t.Fatal("deleted row still visible")
	}
}

func TestTableGetReturnsCopy(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	id, _ := tb.Insert(Row{StringValue("P1"), StringValue("F"), IntValue(1), BoolValue(false)})
	r, _ := tb.Get(id)
	r[2] = IntValue(999)
	r2, _ := tb.Get(id)
	if r2[2].I != 1 {
		t.Fatal("Get leaked internal storage")
	}
}

func TestTableUpdate(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	tb.CreateIndex("family", IndexHash)
	id, _ := tb.Insert(Row{StringValue("P1"), StringValue("F1"), IntValue(1), BoolValue(false)})
	if err := tb.Update(id, Row{StringValue("P1"), StringValue("F2"), IntValue(2), BoolValue(true)}); err != nil {
		t.Fatal(err)
	}
	ids, _ := tb.LookupEqual("family", StringValue("F2"))
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("index not updated: %v", ids)
	}
	ids, _ = tb.LookupEqual("family", StringValue("F1"))
	if len(ids) != 0 {
		t.Fatalf("stale index entry: %v", ids)
	}
	if err := tb.Update(9999, Row{StringValue("x"), StringValue("y"), IntValue(0), BoolValue(false)}); err == nil {
		t.Fatal("update of missing row accepted")
	}
}

func TestTableIndexLookup(t *testing.T) {
	for _, typ := range []IndexType{IndexHash, IndexBTree} {
		t.Run(typ.String(), func(t *testing.T) {
			tb := NewTable("p", proteinSchema(t))
			if err := tb.CreateIndex("family", typ); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				fam := fmt.Sprintf("FAM%d", i%10)
				tb.Insert(Row{StringValue(fmt.Sprintf("P%03d", i)), StringValue(fam), IntValue(int64(i)), BoolValue(i%2 == 0)})
			}
			ids, err := tb.LookupEqual("family", StringValue("FAM3"))
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 10 {
				t.Fatalf("FAM3 lookup = %d rows, want 10", len(ids))
			}
			for _, r := range tb.Rows(ids) {
				if r[1].S != "FAM3" {
					t.Fatalf("lookup returned family %q", r[1].S)
				}
			}
			// Missing value.
			ids, _ = tb.LookupEqual("family", StringValue("NOPE"))
			if len(ids) != 0 {
				t.Fatalf("missing value returned %d rows", len(ids))
			}
		})
	}
}

func TestTableLookupWithoutIndexFallsBack(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	for i := 0; i < 20; i++ {
		tb.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue("F"), IntValue(int64(i)), BoolValue(false)})
	}
	ids, err := tb.LookupEqual("length", IntValue(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("scan lookup = %v", ids)
	}
	if _, err := tb.LookupEqual("nope", IntValue(0)); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestTableRangeLookup(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	tb.CreateIndex("length", IndexBTree)
	for i := 0; i < 100; i++ {
		tb.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue("F"), IntValue(int64(i)), BoolValue(false)})
	}
	lo, hi := IntValue(10), IntValue(20)
	ids, err := tb.LookupRange("length", &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 11 {
		t.Fatalf("range lookup = %d rows, want 11", len(ids))
	}
	// Unindexed range lookup gives the same answer.
	tb2 := NewTable("p2", proteinSchema(t))
	for i := 0; i < 100; i++ {
		tb2.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue("F"), IntValue(int64(i)), BoolValue(false)})
	}
	ids2, _ := tb2.LookupRange("length", &lo, &hi)
	if len(ids2) != 11 {
		t.Fatalf("scan range lookup = %d rows, want 11", len(ids2))
	}
}

func TestCreateIndexBackfillsAndValidates(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	for i := 0; i < 50; i++ {
		tb.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue("F"), IntValue(int64(i % 5)), BoolValue(false)})
	}
	if err := tb.CreateIndex("length", IndexBTree); err != nil {
		t.Fatal(err)
	}
	ids, _ := tb.LookupEqual("length", IntValue(3))
	if len(ids) != 10 {
		t.Fatalf("backfilled index lookup = %d rows, want 10", len(ids))
	}
	if err := tb.CreateIndex("length", IndexBTree); err != nil {
		t.Fatalf("idempotent re-create failed: %v", err)
	}
	if err := tb.CreateIndex("length", IndexHash); err == nil {
		t.Fatal("conflicting index type accepted")
	}
	if err := tb.CreateIndex("missing", IndexHash); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if typ, ok := tb.HasIndex("length"); !ok || typ != IndexBTree {
		t.Fatalf("HasIndex = %v, %v", typ, ok)
	}
}

func TestTableVersionBumps(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	v0 := tb.Version()
	id, _ := tb.Insert(Row{StringValue("P"), StringValue("F"), IntValue(1), BoolValue(false)})
	if tb.Version() == v0 {
		t.Fatal("insert did not bump version")
	}
	v1 := tb.Version()
	tb.Update(id, Row{StringValue("P"), StringValue("F"), IntValue(2), BoolValue(false)})
	if tb.Version() == v1 {
		t.Fatal("update did not bump version")
	}
	v2 := tb.Version()
	tb.Delete(id)
	if tb.Version() == v2 {
		t.Fatal("delete did not bump version")
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	tb.CreateIndex("family", IndexHash)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tb.Insert(Row{
					StringValue(fmt.Sprintf("P%d-%d", g, i)),
					StringValue(fmt.Sprintf("FAM%d", i%4)),
					IntValue(int64(i)), BoolValue(false),
				})
				if i%10 == 0 {
					tb.LookupEqual("family", StringValue("FAM1"))
					tb.Scan(func(int64, Row) bool { return false })
				}
			}
		}(g)
	}
	wg.Wait()
	if tb.Len() != 1600 {
		t.Fatalf("Len = %d, want 1600", tb.Len())
	}
}

func TestTableScanEarlyStop(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	for i := 0; i < 10; i++ {
		tb.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue("F"), IntValue(int64(i)), BoolValue(false)})
	}
	count := 0
	tb.Scan(func(int64, Row) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("scan visited %d rows after early stop", count)
	}
}

func TestStatsBasics(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	for i := 0; i < 100; i++ {
		fam := fmt.Sprintf("FAM%d", i%5)
		tb.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue(fam), IntValue(int64(i)), BoolValue(i%2 == 0)})
	}
	tb.Insert(Row{StringValue("PX"), NullValue(), NullValue(), NullValue()})
	st := tb.Stats()
	if st.Rows != 101 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	fam := st.Column("family")
	if fam.NDV != 5 || fam.NonNull != 100 {
		t.Fatalf("family stats: ndv=%d nonNull=%d", fam.NDV, fam.NonNull)
	}
	length := st.Column("length")
	if length.Min.I != 0 || length.Max.I != 99 {
		t.Fatalf("length range = [%v,%v]", length.Min, length.Max)
	}
	if length.Hist == nil {
		t.Fatal("numeric column has no histogram")
	}
	var total int64
	for _, c := range length.Hist {
		total += c
	}
	if total != 100 {
		t.Fatalf("histogram total = %d, want 100", total)
	}
	if st.Column("nope") != nil {
		t.Fatal("missing column returned stats")
	}
	if st.String() == "" {
		t.Fatal("empty stats dump")
	}
}

func TestStatsSelectivity(t *testing.T) {
	tb := NewTable("p", proteinSchema(t))
	for i := 0; i < 1000; i++ {
		tb.Insert(Row{StringValue(fmt.Sprintf("P%d", i)), StringValue(fmt.Sprintf("FAM%d", i%10)), IntValue(int64(i)), BoolValue(false)})
	}
	st := tb.Stats()
	if sel := st.SelectivityEqual("family"); sel < 0.05 || sel > 0.2 {
		t.Fatalf("equality selectivity = %g, want ≈0.1", sel)
	}
	lo, hi := IntValue(0), IntValue(99)
	if sel := st.SelectivityRange("length", &lo, &hi); sel < 0.05 || sel > 0.15 {
		t.Fatalf("range selectivity = %g, want ≈0.1", sel)
	}
	// Degenerate range.
	hi2 := IntValue(-5)
	if sel := st.SelectivityRange("length", &lo, &hi2); sel != 0 {
		t.Fatalf("empty range selectivity = %g", sel)
	}
	// Unknown column gets a default.
	if sel := st.SelectivityEqual("nope"); sel != 0.1 {
		t.Fatalf("default selectivity = %g", sel)
	}
}
