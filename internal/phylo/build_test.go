package phylo

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// additiveMatrix builds the distance matrix induced by a known tree's
// path metric, which NJ must reconstruct exactly (additivity).
func additiveMatrix(t *testing.T, tr *Tree) *DistanceMatrix {
	t.Helper()
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	names := make([]string, len(leaves))
	for i, id := range leaves {
		names[i] = tr.Node(id).Name
	}
	m := NewDistanceMatrix(names)
	for i := range leaves {
		for j := 0; j < i; j++ {
			m.Set(i, j, tr.PathDistance(leaves[i], leaves[j]))
		}
	}
	return m
}

func TestNeighborJoiningRecoversAdditiveTree(t *testing.T) {
	src, err := ParseNewick("((A:2,B:3):1,(C:4,(D:2,E:1):2):3,F:7);")
	if err != nil {
		t.Fatal(err)
	}
	m := additiveMatrix(t, src)
	got, err := NeighborJoining(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Index(); err != nil {
		t.Fatal(err)
	}
	// NJ on an additive matrix must reproduce all pairwise path
	// distances exactly (up to float error).
	for i := 0; i < m.Len(); i++ {
		for j := 0; j < i; j++ {
			a := got.FindLeaf(m.Names[i])
			b := got.FindLeaf(m.Names[j])
			if a == None || b == None {
				t.Fatalf("NJ tree missing leaf %s or %s", m.Names[i], m.Names[j])
			}
			want := m.At(i, j)
			if d := got.PathDistance(a, b); math.Abs(d-want) > 1e-6 {
				t.Errorf("NJ distance %s-%s = %g, want %g", m.Names[i], m.Names[j], d, want)
			}
		}
	}
}

func TestNeighborJoiningSmallCases(t *testing.T) {
	m1 := NewDistanceMatrix([]string{"A"})
	tr, err := NeighborJoining(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves()) != 1 {
		t.Fatalf("1-taxon tree has %d leaves", len(tr.Leaves()))
	}

	m2 := NewDistanceMatrix([]string{"A", "B"})
	m2.Set(0, 1, 4)
	tr2, err := NeighborJoining(m2)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Index()
	if d := tr2.PathDistance(tr2.FindLeaf("A"), tr2.FindLeaf("B")); !approxEqual(d, 4) {
		t.Fatalf("2-taxon distance = %g, want 4", d)
	}

	m3 := NewDistanceMatrix([]string{"A", "B", "C"})
	m3.Set(0, 1, 2)
	m3.Set(0, 2, 3)
	m3.Set(1, 2, 3)
	tr3, err := NeighborJoining(m3)
	if err != nil {
		t.Fatal(err)
	}
	tr3.Index()
	if d := tr3.PathDistance(tr3.FindLeaf("A"), tr3.FindLeaf("B")); !approxEqual(d, 2) {
		t.Fatalf("3-taxon A-B = %g, want 2", d)
	}

	if _, err := NeighborJoining(NewDistanceMatrix(nil)); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestNeighborJoiningValidTreeOnRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(30)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("T%02d", i)
		}
		m := NewDistanceMatrix(names)
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				m.Set(i, j, 0.1+rng.Float64()*2)
			}
		}
		tr, err := NeighborJoining(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("NJ produced invalid tree: %v", err)
		}
		if got := len(tr.Leaves()); got != n {
			t.Fatalf("NJ tree has %d leaves, want %d", got, n)
		}
		if err := tr.Index(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUPGMAUltrametric(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 20
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("T%02d", i)
	}
	m := NewDistanceMatrix(names)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			m.Set(i, j, 0.5+rng.Float64())
		}
	}
	tr, err := UPGMA(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	// All leaves equidistant from the root.
	leaves := tr.Leaves()
	d0 := tr.RootDistance(leaves[0])
	for _, l := range leaves[1:] {
		if math.Abs(tr.RootDistance(l)-d0) > 1e-9 {
			t.Fatalf("UPGMA not ultrametric: %g vs %g", tr.RootDistance(l), d0)
		}
	}
}

func TestUPGMARecoversUltrametricTree(t *testing.T) {
	// Build an ultrametric matrix: two clusters at height 1, merged at
	// height 3.
	names := []string{"A", "B", "C", "D"}
	m := NewDistanceMatrix(names)
	m.Set(0, 1, 2) // A,B cluster (height 1)
	m.Set(2, 3, 2) // C,D cluster
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		m.Set(p[0], p[1], 6) // merged at height 3
	}
	tr, err := UPGMA(m)
	if err != nil {
		t.Fatal(err)
	}
	tr.Index()
	ab := tr.LCA(tr.FindLeaf("A"), tr.FindLeaf("B"))
	if tr.LeafCount(ab) != 2 {
		t.Fatalf("A,B do not form a clade")
	}
	if d := tr.PathDistance(tr.FindLeaf("A"), tr.FindLeaf("C")); !approxEqual(d, 6) {
		t.Fatalf("A-C distance = %g, want 6", d)
	}
}

func TestUPGMASingleAndEmpty(t *testing.T) {
	if _, err := UPGMA(NewDistanceMatrix(nil)); err == nil {
		t.Fatal("empty matrix accepted")
	}
	tr, err := UPGMA(NewDistanceMatrix([]string{"A"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves()) != 1 {
		t.Fatalf("single-taxon UPGMA has %d leaves", len(tr.Leaves()))
	}
}

func TestDistanceMatrixBasics(t *testing.T) {
	m := NewDistanceMatrix([]string{"A", "B", "C"})
	m.Set(0, 1, 1.5)
	m.Set(2, 0, 2.5)
	if m.At(1, 0) != 1.5 || m.At(0, 1) != 1.5 {
		t.Fatalf("symmetry broken: %g/%g", m.At(1, 0), m.At(0, 1))
	}
	if m.At(0, 2) != 2.5 {
		t.Fatalf("At(0,2) = %g", m.At(0, 2))
	}
	if m.At(1, 1) != 0 {
		t.Fatalf("diagonal not 0")
	}
	m.Set(1, 1, 99) // must be ignored
	if m.At(1, 1) != 0 {
		t.Fatalf("diagonal settable")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.Set(0, 1, math.NaN())
	if err := m.Validate(); err == nil {
		t.Fatal("NaN distance accepted")
	}
}

func TestComputeDistancesParallel(t *testing.T) {
	names := make([]string, 50)
	for i := range names {
		names[i] = fmt.Sprintf("T%d", i)
	}
	m := ComputeDistances(names, func(i, j int) float64 {
		return float64(i + j)
	})
	for i := 1; i < len(names); i++ {
		for j := 0; j < i; j++ {
			if m.At(i, j) != float64(i+j) {
				t.Fatalf("At(%d,%d) = %g, want %d", i, j, m.At(i, j), i+j)
			}
		}
	}
}

func TestLayoutBasics(t *testing.T) {
	tr, err := ParseNewick("((A:1,B:1):1,C:2);")
	if err != nil {
		t.Fatal(err)
	}
	tr.Index()
	l := NewLayout(tr)
	if l.HeightRows != 3 {
		t.Fatalf("HeightRows = %d, want 3", l.HeightRows)
	}
	a, b, c := tr.FindLeaf("A"), tr.FindLeaf("B"), tr.FindLeaf("C")
	if !approxEqual(l.X[a], 2) || !approxEqual(l.X[c], 2) {
		t.Fatalf("leaf X wrong: A=%g C=%g", l.X[a], l.X[c])
	}
	if !approxEqual(l.Width, 2) {
		t.Fatalf("Width = %g, want 2", l.Width)
	}
	// Leaf rows are consecutive in preorder: A=0, B=1, C=2.
	if l.Y[a] != 0 || l.Y[b] != 1 || l.Y[c] != 2 {
		t.Fatalf("leaf rows = %g,%g,%g", l.Y[a], l.Y[b], l.Y[c])
	}
	// Parent of A,B centered between them.
	ab := tr.Node(a).Parent
	if !approxEqual(l.Y[ab], 0.5) {
		t.Fatalf("internal Y = %g, want 0.5", l.Y[ab])
	}
	// Root centered over its children (ab at 0.5, C at 2) = 1.25.
	if !approxEqual(l.Y[tr.Root()], 1.25) {
		t.Fatalf("root Y = %g, want 1.25", l.Y[tr.Root()])
	}
}

func TestLayoutInternalWithinChildSpan(t *testing.T) {
	tr := randomTree(t, 500, 77)
	l := NewLayout(tr)
	for i := 0; i < tr.Len(); i++ {
		n := tr.Node(NodeID(i))
		if n.IsLeaf() {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range n.Children {
			lo = math.Min(lo, l.Y[c])
			hi = math.Max(hi, l.Y[c])
		}
		if l.Y[NodeID(i)] < lo-1e-9 || l.Y[NodeID(i)] > hi+1e-9 {
			t.Fatalf("node %d Y=%g outside child span [%g,%g]", i, l.Y[NodeID(i)], lo, hi)
		}
	}
}
