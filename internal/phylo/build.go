package phylo

import (
	"fmt"
	"math"
)

// NeighborJoining builds an unrooted-then-rooted tree from a distance
// matrix using the Saitou–Nei neighbor-joining algorithm with the
// Studier–Keppler O(n³) formulation. The final three-way join is
// resolved by rooting at the last internal node, which is the usual
// convention for displaying NJ trees.
func NeighborJoining(m *DistanceMatrix) (*Tree, error) {
	n := m.Len()
	if n == 0 {
		return nil, fmt.Errorf("phylo: empty distance matrix")
	}
	t := NewTree()
	if n == 1 {
		// Single taxon: a root with one leaf child keeps leaf
		// semantics consistent for consumers.
		root, _ := t.AddNode("", None, 0)
		if _, err := t.AddNode(m.Names[0], root, 0); err != nil {
			return nil, err
		}
		return t, nil
	}
	if n == 2 {
		root, _ := t.AddNode("", None, 0)
		d := m.At(0, 1)
		t.AddNode(m.Names[0], root, d/2)
		t.AddNode(m.Names[1], root, d/2)
		return t, nil
	}

	// Working copy of distances between "active" cluster indices.
	// dist is a full square matrix for cache-friendly row scans.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = m.At(i, j)
		}
	}
	// The tree is assembled bottom-up, but Tree.AddNode requires the
	// parent to exist first, so joins are recorded in a small forest
	// representation and converted top-down at the end.
	type fnode struct {
		name     string
		children []int // indices into forest
		lengths  []float64
	}
	forest := make([]fnode, 0, 2*n)
	active := make([]int, n) // active[i] = forest index of cluster i
	for i := 0; i < n; i++ {
		forest = append(forest, fnode{name: m.Names[i]})
		active[i] = i
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	r := make([]float64, n) // row sums
	remaining := n
	for remaining > 3 {
		// Row sums over alive entries.
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			s := 0.0
			for j := 0; j < n; j++ {
				if alive[j] && j != i {
					s += dist[i][j]
				}
			}
			r[i] = s
		}
		// Find the pair minimizing Q(i,j) = (r-2)d(i,j) - r_i - r_j.
		bestQ := math.Inf(1)
		bi, bj := -1, -1
		rm2 := float64(remaining - 2)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				q := rm2*dist[i][j] - r[i] - r[j]
				if q < bestQ {
					bestQ, bi, bj = q, i, j
				}
			}
		}
		// Branch lengths from the new internal node u to i and j.
		dij := dist[bi][bj]
		li := dij/2 + (r[bi]-r[bj])/(2*rm2)
		lj := dij - li
		if li < 0 {
			li = 0
			lj = dij
		}
		if lj < 0 {
			lj = 0
			li = dij
		}
		u := len(forest)
		forest = append(forest, fnode{
			children: []int{active[bi], active[bj]},
			lengths:  []float64{li, lj},
		})
		// Update distances: cluster bi becomes u; bj dies.
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			duk := (dist[bi][k] + dist[bj][k] - dij) / 2
			if duk < 0 {
				duk = 0
			}
			dist[bi][k] = duk
			dist[k][bi] = duk
		}
		active[bi] = u
		alive[bj] = false
		remaining--
	}
	// Three clusters left: join them at a star root with standard
	// three-point branch lengths.
	var idx []int
	for i := 0; i < n; i++ {
		if alive[i] {
			idx = append(idx, i)
		}
	}
	a, b, c := idx[0], idx[1], idx[2]
	la := (dist[a][b] + dist[a][c] - dist[b][c]) / 2
	lb := (dist[a][b] + dist[b][c] - dist[a][c]) / 2
	lc := (dist[a][c] + dist[b][c] - dist[a][b]) / 2
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return x
	}
	root := len(forest)
	forest = append(forest, fnode{
		children: []int{active[a], active[b], active[c]},
		lengths:  []float64{clamp(la), clamp(lb), clamp(lc)},
	})

	// Convert the forest to a Tree.
	out := NewTree()
	var convert func(fi int, parent NodeID, length float64) error
	convert = func(fi int, parent NodeID, length float64) error {
		id, err := out.AddNode(forest[fi].name, parent, length)
		if err != nil {
			return err
		}
		for k, ci := range forest[fi].children {
			if err := convert(ci, id, forest[fi].lengths[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := convert(root, None, 0); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// UPGMA builds a rooted ultrametric tree by average-linkage
// agglomerative clustering. It is the simpler baseline construction
// and produces trees whose leaf depths are equal (an ultrametric).
func UPGMA(m *DistanceMatrix) (*Tree, error) {
	n := m.Len()
	if n == 0 {
		return nil, fmt.Errorf("phylo: empty distance matrix")
	}
	type cluster struct {
		forestIdx int
		size      int
		height    float64 // distance from cluster root to its leaves
	}
	type fnode struct {
		name     string
		children []int
		lengths  []float64
	}
	forest := make([]fnode, 0, 2*n)
	clusters := make([]cluster, 0, n)
	for i := 0; i < n; i++ {
		forest = append(forest, fnode{name: m.Names[i]})
		clusters = append(clusters, cluster{forestIdx: i, size: 1})
	}
	if n == 1 {
		out := NewTree()
		root, _ := out.AddNode("", None, 0)
		if _, err := out.AddNode(m.Names[0], root, 0); err != nil {
			return nil, err
		}
		return out, nil
	}
	// Square working distance matrix between active clusters.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = m.At(i, j)
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > 1 {
		best := math.Inf(1)
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if alive[j] && dist[i][j] < best {
					best, bi, bj = dist[i][j], i, j
				}
			}
		}
		h := best / 2
		u := len(forest)
		forest = append(forest, fnode{
			children: []int{clusters[bi].forestIdx, clusters[bj].forestIdx},
			lengths: []float64{
				math.Max(0, h-clusters[bi].height),
				math.Max(0, h-clusters[bj].height),
			},
		})
		si, sj := float64(clusters[bi].size), float64(clusters[bj].size)
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			d := (si*dist[bi][k] + sj*dist[bj][k]) / (si + sj)
			dist[bi][k] = d
			dist[k][bi] = d
		}
		clusters[bi] = cluster{forestIdx: u, size: clusters[bi].size + clusters[bj].size, height: h}
		alive[bj] = false
		remaining--
	}
	rootIdx := -1
	for i := 0; i < n; i++ {
		if alive[i] {
			rootIdx = clusters[i].forestIdx
			break
		}
	}
	out := NewTree()
	var convert func(fi int, parent NodeID, length float64) error
	convert = func(fi int, parent NodeID, length float64) error {
		id, err := out.AddNode(forest[fi].name, parent, length)
		if err != nil {
			return err
		}
		for k, ci := range forest[fi].children {
			if err := convert(ci, id, forest[fi].lengths[k]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := convert(rootIdx, None, 0); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
