package phylo

import (
	"strings"
	"testing"
)

func TestParseNewickSimple(t *testing.T) {
	tr, err := ParseNewick("((A:0.1,B:0.2):0.05,C:0.3);")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.LeafNames(); strings.Join(got, ",") != "A,B,C" {
		t.Fatalf("leaves = %v", got)
	}
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	a := tr.FindLeaf("A")
	if !approxEqual(tr.Node(a).Length, 0.1) {
		t.Fatalf("A length = %g", tr.Node(a).Length)
	}
	if !approxEqual(tr.RootDistance(a), 0.15) {
		t.Fatalf("A root distance = %g", tr.RootDistance(a))
	}
}

func TestParseNewickQuotedAndSpaces(t *testing.T) {
	tr, err := ParseNewick("('protein one':1, B :2);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.FindLeaf("protein one") == None {
		t.Fatal("quoted leaf not found")
	}
	if tr.FindLeaf("B") == None {
		t.Fatal("leaf B not found")
	}
}

func TestParseNewickInternalLabels(t *testing.T) {
	tr, err := ParseNewick("((A:1,B:1)ab:0.5,C:2)root;")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < tr.Len(); i++ {
		if tr.Node(NodeID(i)).Name == "ab" && !tr.Node(NodeID(i)).IsLeaf() {
			found = true
		}
	}
	if !found {
		t.Fatal("internal label lost")
	}
}

func TestParseNewickErrors(t *testing.T) {
	bad := []string{
		"((A:1,B:2);",     // unbalanced
		"(A:1,B:2);extra", // trailing garbage after terminator
		"(A:abc,B:2);",    // bad length
		"(A:1,A:2);",      // duplicate leaves (Validate)
		"('unterminated:1);",
		"",
	}
	for _, s := range bad {
		if _, err := ParseNewick(s); err == nil {
			t.Errorf("ParseNewick(%q) accepted", s)
		}
	}
}

func TestNewickRoundTrip(t *testing.T) {
	src := "((A:0.1,B:0.2):0.05,(C:0.3,D:0.4):0.25);"
	tr, err := ParseNewick(src)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Newick()
	tr2, err := ParseNewick(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if strings.Join(tr.LeafNames(), ",") != strings.Join(tr2.LeafNames(), ",") {
		t.Fatalf("leaf sets differ after round trip")
	}
	tr.Index()
	tr2.Index()
	for _, name := range tr.LeafNames() {
		d1 := tr.RootDistance(tr.FindLeaf(name))
		d2 := tr2.RootDistance(tr2.FindLeaf(name))
		if !approxEqual(d1, d2) {
			t.Fatalf("leaf %s root distance %g != %g", name, d1, d2)
		}
	}
}

func TestNewickQuotesSpecialNames(t *testing.T) {
	tr := NewTree()
	r, _ := tr.AddNode("", None, 0)
	tr.AddNode("with space", r, 1)
	tr.AddNode("with:colon", r, 2)
	out := tr.Newick()
	tr2, err := ParseNewick(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if tr2.FindLeaf("with space") == None || tr2.FindLeaf("with:colon") == None {
		t.Fatalf("special names lost: %q", out)
	}
}

func TestNewickSingleLeaf(t *testing.T) {
	tr, err := ParseNewick("A:1;")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves()) != 1 {
		t.Fatalf("leaves = %v", tr.Leaves())
	}
}
