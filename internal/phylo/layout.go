package phylo

// Layout assigns 2-D display coordinates to every node using the
// standard rectangular phylogram convention: X is the cumulative
// branch length from the root and Y places leaves at consecutive
// integer rows (preorder) with internal nodes centered over their
// children. The mobile layer uses these coordinates for viewport
// clipping.
type Layout struct {
	// X and Y are indexed by NodeID.
	X []float64
	Y []float64
	// Width is the maximum X (tree height in branch-length units).
	Width float64
	// HeightRows is the number of leaf rows.
	HeightRows int
}

// NewLayout computes the layout of an indexed tree.
func NewLayout(t *Tree) *Layout {
	t.mustIndexed()
	n := t.Len()
	l := &Layout{X: make([]float64, n), Y: make([]float64, n)}
	// First pass (preorder): X from root distance, leaf rows.
	row := 0
	for p := 0; p < n; p++ {
		id := t.byPre[p]
		l.X[id] = t.RootDistance(id)
		if l.X[id] > l.Width {
			l.Width = l.X[id]
		}
		if t.Node(id).IsLeaf() {
			l.Y[id] = float64(row)
			row++
		}
	}
	l.HeightRows = row
	// Second pass (reverse preorder = children before parents):
	// internal Y is the mean of child Y.
	for p := n - 1; p >= 0; p-- {
		id := t.byPre[p]
		node := t.Node(id)
		if node.IsLeaf() {
			continue
		}
		sum := 0.0
		for _, c := range node.Children {
			sum += l.Y[c]
		}
		l.Y[id] = sum / float64(len(node.Children))
	}
	return l
}
