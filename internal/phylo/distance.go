package phylo

import (
	"fmt"
	"runtime"
	"sync"
)

// DistanceMatrix is a symmetric matrix of pairwise distances between
// named taxa. Only the strict lower triangle is stored.
type DistanceMatrix struct {
	Names []string
	// tri holds row i's entries for columns 0..i-1 at
	// tri[i*(i-1)/2 : i*(i-1)/2+i].
	tri []float64
}

// NewDistanceMatrix allocates a zero matrix over the given taxa.
func NewDistanceMatrix(names []string) *DistanceMatrix {
	n := len(names)
	cp := make([]string, n)
	copy(cp, names)
	return &DistanceMatrix{Names: cp, tri: make([]float64, n*(n-1)/2)}
}

// Len returns the number of taxa.
func (m *DistanceMatrix) Len() int { return len(m.Names) }

func triIndex(i, j int) int {
	if i < j {
		i, j = j, i
	}
	return i*(i-1)/2 + j
}

// At returns the distance between taxa i and j.
func (m *DistanceMatrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.tri[triIndex(i, j)]
}

// Set stores the distance between taxa i and j (symmetric).
func (m *DistanceMatrix) Set(i, j int, d float64) {
	if i == j {
		return
	}
	m.tri[triIndex(i, j)] = d
}

// Validate checks non-negativity and that no entry is NaN/Inf.
func (m *DistanceMatrix) Validate() error {
	for idx, d := range m.tri {
		if d < 0 || d != d {
			return fmt.Errorf("phylo: invalid distance %g at tri index %d", d, idx)
		}
	}
	return nil
}

// PairwiseFunc computes the distance between taxa i and j. It must be
// safe for concurrent calls.
type PairwiseFunc func(i, j int) float64

// ComputeDistances fills a matrix over names by evaluating f on every
// pair in parallel.
func ComputeDistances(names []string, f PairwiseFunc) *DistanceMatrix {
	m := NewDistanceMatrix(names)
	n := len(names)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	rows := make(chan int, n)
	for i := 1; i < n; i++ {
		rows <- i
	}
	close(rows)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				base := i * (i - 1) / 2
				for j := 0; j < i; j++ {
					m.tri[base+j] = f(i, j)
				}
			}
		}()
	}
	wg.Wait()
	return m
}
