package phylo

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchTree builds an indexed random tree of n nodes.
func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr := NewTree()
	tr.AddNode("", None, 0)
	for i := 1; i < n; i++ {
		if _, err := tr.AddNode(fmt.Sprintf("n%d", i), NodeID(rng.Intn(i)), rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Index(); err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkSubtree is the micro-ablation behind experiment F1: naive
// traversal vs interval-index slice copy.
func BenchmarkSubtree(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		tr := benchTree(b, n)
		// A node with a mid-sized subtree.
		var target NodeID
		for i := 0; i < tr.Len(); i++ {
			if c := tr.LeafCount(NodeID(i)); c > n/20 && c < n/5 {
				target = NodeID(i)
				break
			}
		}
		b.Run(fmt.Sprintf("n-%d/Naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr.SubtreeNaive(target)
			}
		})
		b.Run(fmt.Sprintf("n-%d/Indexed", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr.SubtreeIndexed(target)
			}
		})
	}
}

func BenchmarkLCA(b *testing.B) {
	tr := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(2))
	pairs := make([][2]NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]NodeID{NodeID(rng.Intn(tr.Len())), NodeID(rng.Intn(tr.Len()))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		tr.LCA(p[0], p[1])
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			parents := make([]NodeID, n)
			for i := 1; i < n; i++ {
				parents[i] = NodeID(rng.Intn(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr := NewTree()
				tr.AddNode("", None, 0)
				for j := 1; j < n; j++ {
					tr.AddNode(fmt.Sprintf("n%d", j), parents[j], 1)
				}
				b.StartTimer()
				if err := tr.Index(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNeighborJoining(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("taxa-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("T%d", i)
			}
			m := NewDistanceMatrix(names)
			for i := 1; i < n; i++ {
				for j := 0; j < i; j++ {
					m.Set(i, j, 0.1+rng.Float64())
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NeighborJoining(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNewickRoundTrip(b *testing.B) {
	tr := benchTree(b, 2000)
	s := tr.Newick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNewick(s); err != nil {
			b.Fatal(err)
		}
	}
}
