package phylo

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseNewick parses a Newick-format tree string such as
// "((A:0.1,B:0.2):0.05,C:0.3);". Labels may be bare words or quoted
// with single quotes; branch lengths are optional.
func ParseNewick(s string) (*Tree, error) {
	p := &newickParser{src: s}
	t := NewTree()
	root, err := p.parseSubtree(t, None)
	if err != nil {
		return nil, err
	}
	_ = root
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("phylo: trailing input at offset %d: %q", p.pos, p.rest())
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type newickParser struct {
	src string
	pos int
}

func (p *newickParser) rest() string {
	r := p.src[p.pos:]
	if len(r) > 20 {
		r = r[:20] + "..."
	}
	return r
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *newickParser) parseSubtree(t *Tree, parent NodeID) (NodeID, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return None, fmt.Errorf("phylo: unexpected end of Newick input")
	}
	if p.src[p.pos] == '(' {
		p.pos++ // consume '('
		// Internal node: create it first so children can attach.
		id, err := t.AddNode("", parent, 0)
		if err != nil {
			return None, err
		}
		for {
			if _, err := p.parseSubtree(t, id); err != nil {
				return None, err
			}
			p.skipSpace()
			if p.pos >= len(p.src) {
				return None, fmt.Errorf("phylo: unclosed '(' in Newick input")
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return None, fmt.Errorf("phylo: expected ',' or ')' at offset %d: %q", p.pos, p.rest())
		}
		name, length, err := p.parseLabel()
		if err != nil {
			return None, err
		}
		t.nodes[id].Name = name
		t.nodes[id].Length = length
		return id, nil
	}
	// Leaf.
	name, length, err := p.parseLabel()
	if err != nil {
		return None, err
	}
	if name == "" {
		return None, fmt.Errorf("phylo: leaf with empty name at offset %d", p.pos)
	}
	return t.AddNode(name, parent, length)
}

// parseLabel reads an optional node label followed by an optional
// ":length" suffix.
func (p *newickParser) parseLabel() (string, float64, error) {
	p.skipSpace()
	var name string
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		end := strings.IndexByte(p.src[p.pos+1:], '\'')
		if end < 0 {
			return "", 0, fmt.Errorf("phylo: unterminated quoted label at offset %d", p.pos)
		}
		name = p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
	} else {
		start := p.pos
		for p.pos < len(p.src) && !strings.ContainsRune("():,;' \t\n\r", rune(p.src[p.pos])) {
			p.pos++
		}
		name = p.src[start:p.pos]
	}
	var length float64
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ':' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isNumByte(p.src[p.pos])) {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return "", 0, fmt.Errorf("phylo: bad branch length at offset %d: %w", start, err)
		}
		length = v
	}
	return name, length, nil
}

func isNumByte(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'
}

// Newick serializes the tree in Newick format with branch lengths.
// Names containing Newick metacharacters are single-quoted.
func (t *Tree) Newick() string {
	if t.root == None {
		return ";"
	}
	var b strings.Builder
	t.writeNewick(&b, t.root)
	b.WriteByte(';')
	return b.String()
}

func (t *Tree) writeNewick(b *strings.Builder, id NodeID) {
	n := &t.nodes[id]
	if !n.IsLeaf() {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			t.writeNewick(b, c)
		}
		b.WriteByte(')')
	}
	if n.Name != "" {
		if strings.ContainsAny(n.Name, "():,; '\t") {
			b.WriteByte('\'')
			b.WriteString(n.Name)
			b.WriteByte('\'')
		} else {
			b.WriteString(n.Name)
		}
	}
	if id != t.root {
		fmt.Fprintf(b, ":%g", n.Length)
	}
}
