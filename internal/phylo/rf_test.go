package phylo

import (
	"testing"
)

func mustNewick(t *testing.T, s string) *Tree {
	t.Helper()
	tr, err := ParseNewick(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRFIdenticalTrees(t *testing.T) {
	a := mustNewick(t, "((A:1,B:1):1,(C:1,(D:1,E:1):1):1);")
	b := mustNewick(t, "((A:2,B:3):1,(C:1,(D:9,E:1):1):4);")
	d, norm, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || norm != 0 {
		t.Fatalf("identical topologies: d=%d norm=%g", d, norm)
	}
}

func TestRFRootInvariant(t *testing.T) {
	// The same unrooted topology rooted differently must have RF 0.
	a := mustNewick(t, "((A:1,B:1):1,(C:1,D:1):1);")
	b := mustNewick(t, "(A:1,(B:1,((C:1,D:1):1):1):1);")
	d, _, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("rerooted topology: d=%d, want 0", d)
	}
}

func TestRFDifferentTopologies(t *testing.T) {
	// ((A,B),(C,D)) vs ((A,C),(B,D)): the single non-trivial split of
	// each is absent from the other → distance 2, normalized 1.
	a := mustNewick(t, "((A:1,B:1):1,(C:1,D:1):1);")
	b := mustNewick(t, "((A:1,C:1):1,(B:1,D:1):1);")
	d, norm, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 || norm != 1 {
		t.Fatalf("conflicting topologies: d=%d norm=%g", d, norm)
	}
}

func TestRFPartialOverlap(t *testing.T) {
	// 5 taxa: a shares the {D,E} split with b but not {A,B}.
	a := mustNewick(t, "(((A:1,B:1):1,C:1):1,(D:1,E:1):1);")
	b := mustNewick(t, "(((A:1,C:1):1,B:1):1,(D:1,E:1):1);")
	d, norm, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("d = %d, want 2", d)
	}
	if norm <= 0 || norm >= 1 {
		t.Fatalf("norm = %g, want in (0,1)", norm)
	}
}

func TestRFMismatchedLeaves(t *testing.T) {
	a := mustNewick(t, "((A:1,B:1):1,C:1);")
	b := mustNewick(t, "((A:1,B:1):1,D:1);")
	if _, _, err := RobinsonFoulds(a, b); err == nil {
		t.Fatal("mismatched leaf sets accepted")
	}
	c := mustNewick(t, "((A:1,B:1):1,(C:1,D:1):1);")
	if _, _, err := RobinsonFoulds(a, c); err == nil {
		t.Fatal("different leaf counts accepted")
	}
}

func TestRFTinyTrees(t *testing.T) {
	a := mustNewick(t, "(A:1,B:1);")
	b := mustNewick(t, "(A:1,B:1);")
	d, norm, err := RobinsonFoulds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || norm != 0 {
		t.Fatalf("2-leaf trees: d=%d norm=%g", d, norm)
	}
}

func TestRFNJRecoversTopology(t *testing.T) {
	// NJ on an additive matrix reproduces the unrooted topology.
	src := mustNewick(t, "((A:2,B:3):1,(C:4,(D:2,E:1):2):3,F:7);")
	m := additiveMatrix(t, src)
	got, err := NeighborJoining(m)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := RobinsonFoulds(src, got)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("NJ did not recover the topology: RF=%d", d)
	}
}
