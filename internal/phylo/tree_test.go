package phylo

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildSample builds the tree ((A:1,B:2)ab:0.5,(C:3,D:4)cd:0.25)root
// and indexes it, returning the tree and a name→ID map.
func buildSample(t *testing.T) (*Tree, map[string]NodeID) {
	t.Helper()
	tr := NewTree()
	root, err := tr.AddNode("root", None, 0)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := tr.AddNode("ab", root, 0.5)
	cd, _ := tr.AddNode("cd", root, 0.25)
	a, _ := tr.AddNode("A", ab, 1)
	b, _ := tr.AddNode("B", ab, 2)
	c, _ := tr.AddNode("C", cd, 3)
	d, _ := tr.AddNode("D", cd, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	return tr, map[string]NodeID{
		"root": root, "ab": ab, "cd": cd, "A": a, "B": b, "C": c, "D": d,
	}
}

func TestAddNodeErrors(t *testing.T) {
	tr := NewTree()
	if _, err := tr.AddNode("x", 5, 1); err == nil {
		t.Error("out-of-range parent accepted")
	}
	tr.AddNode("r", None, 0)
	if _, err := tr.AddNode("r2", None, 0); err == nil {
		t.Error("second root accepted")
	}
}

func TestIndexImmutability(t *testing.T) {
	tr, _ := buildSample(t)
	if _, err := tr.AddNode("E", tr.Root(), 1); err == nil {
		t.Error("mutation after Index accepted")
	}
}

func TestSubtreeIntervalCoversExactSubtree(t *testing.T) {
	tr, ids := buildSample(t)
	lo, hi := tr.SubtreeInterval(ids["ab"])
	got := map[NodeID]bool{}
	for p := lo; p <= hi; p++ {
		got[tr.NodeAtPre(p)] = true
	}
	want := map[NodeID]bool{ids["ab"]: true, ids["A"]: true, ids["B"]: true}
	if len(got) != len(want) {
		t.Fatalf("interval covers %d nodes, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("interval missing node %d", id)
		}
	}
}

func TestSubtreeNaiveMatchesIndexed(t *testing.T) {
	tr := randomTree(t, 200, 17)
	for trial := 0; trial < 20; trial++ {
		id := NodeID(trial * 7 % tr.Len())
		naive := tr.SubtreeNaive(id)
		indexed := tr.SubtreeIndexed(id)
		sortIDs(naive)
		sortIDs(indexed)
		if len(naive) != len(indexed) {
			t.Fatalf("node %d: naive %d nodes, indexed %d", id, len(naive), len(indexed))
		}
		for i := range naive {
			if naive[i] != indexed[i] {
				t.Fatalf("node %d: subtree mismatch at %d", id, i)
			}
		}
	}
}

func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func TestIsAncestor(t *testing.T) {
	tr, ids := buildSample(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"root", "A", true}, {"ab", "A", true}, {"ab", "B", true},
		{"ab", "C", false}, {"A", "ab", false}, {"A", "A", true},
		{"cd", "D", true}, {"ab", "cd", false},
	}
	for _, c := range cases {
		if got := tr.IsAncestor(ids[c.a], ids[c.b]); got != c.want {
			t.Errorf("IsAncestor(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLCA(t *testing.T) {
	tr, ids := buildSample(t)
	cases := []struct {
		a, b, want string
	}{
		{"A", "B", "ab"}, {"A", "C", "root"}, {"C", "D", "cd"},
		{"A", "A", "A"}, {"ab", "B", "ab"}, {"A", "cd", "root"},
	}
	for _, c := range cases {
		if got := tr.LCA(ids[c.a], ids[c.b]); got != ids[c.want] {
			t.Errorf("LCA(%s,%s) = %d, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestLCAMatchesNaiveOnRandomTrees(t *testing.T) {
	tr := randomTree(t, 300, 5)
	naiveLCA := func(a, b NodeID) NodeID {
		anc := map[NodeID]bool{}
		for v := a; v != None; v = tr.Node(v).Parent {
			anc[v] = true
		}
		for v := b; v != None; v = tr.Node(v).Parent {
			if anc[v] {
				return v
			}
		}
		return None
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		a := NodeID(rng.Intn(tr.Len()))
		b := NodeID(rng.Intn(tr.Len()))
		if got, want := tr.LCA(a, b), naiveLCA(a, b); got != want {
			t.Fatalf("LCA(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestPathDistance(t *testing.T) {
	tr, ids := buildSample(t)
	cases := []struct {
		a, b string
		want float64
	}{
		{"A", "B", 3},       // 1 + 2
		{"A", "C", 4.75},    // 1 + 0.5 + 0.25 + 3
		{"A", "A", 0},       //
		{"root", "D", 4.25}, // 0.25 + 4
	}
	for _, c := range cases {
		if got := tr.PathDistance(ids[c.a], ids[c.b]); !approxEqual(got, c.want) {
			t.Errorf("PathDistance(%s,%s) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestDepthAndRootDistance(t *testing.T) {
	tr, ids := buildSample(t)
	if tr.Depth(ids["root"]) != 0 || tr.Depth(ids["A"]) != 2 {
		t.Errorf("depths wrong: root=%d A=%d", tr.Depth(ids["root"]), tr.Depth(ids["A"]))
	}
	if !approxEqual(tr.RootDistance(ids["B"]), 2.5) {
		t.Errorf("RootDistance(B) = %g, want 2.5", tr.RootDistance(ids["B"]))
	}
	if !approxEqual(tr.Height(), 4.25) {
		t.Errorf("Height = %g, want 4.25", tr.Height())
	}
}

func TestLeafCount(t *testing.T) {
	tr, ids := buildSample(t)
	if tr.LeafCount(ids["root"]) != 4 {
		t.Errorf("LeafCount(root) = %d, want 4", tr.LeafCount(ids["root"]))
	}
	if tr.LeafCount(ids["ab"]) != 2 {
		t.Errorf("LeafCount(ab) = %d, want 2", tr.LeafCount(ids["ab"]))
	}
	if tr.LeafCount(ids["A"]) != 1 {
		t.Errorf("LeafCount(A) = %d, want 1", tr.LeafCount(ids["A"]))
	}
}

func TestAncestors(t *testing.T) {
	tr, ids := buildSample(t)
	anc := tr.Ancestors(ids["A"])
	want := []NodeID{ids["A"], ids["ab"], ids["root"]}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors(A) = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("Ancestors(A)[%d] = %d, want %d", i, anc[i], want[i])
		}
	}
}

func TestSubtreeLeaves(t *testing.T) {
	tr, ids := buildSample(t)
	leaves := tr.SubtreeLeaves(ids["cd"])
	if len(leaves) != 2 {
		t.Fatalf("SubtreeLeaves(cd) = %v", leaves)
	}
	names := []string{tr.Node(leaves[0]).Name, tr.Node(leaves[1]).Name}
	if names[0] != "C" || names[1] != "D" {
		t.Fatalf("leaf names = %v, want [C D]", names)
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	// Duplicate leaf names.
	tr := NewTree()
	r, _ := tr.AddNode("", None, 0)
	tr.AddNode("A", r, 1)
	tr.AddNode("A", r, 1)
	if err := tr.Validate(); err == nil {
		t.Error("duplicate leaf names accepted")
	}
	// Negative branch length.
	tr2 := NewTree()
	r2, _ := tr2.AddNode("", None, 0)
	tr2.AddNode("A", r2, -1)
	if err := tr2.Validate(); err == nil {
		t.Error("negative branch length accepted")
	}
	// Empty leaf name.
	tr3 := NewTree()
	r3, _ := tr3.AddNode("", None, 0)
	tr3.AddNode("", r3, 1)
	if err := tr3.Validate(); err == nil {
		t.Error("empty leaf name accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewTree()
	if err := tr.Validate(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
	if err := tr.Index(); err == nil {
		t.Error("indexing empty tree accepted")
	}
	if tr.Root() != None {
		t.Error("empty tree has a root")
	}
}

func TestFindLeaf(t *testing.T) {
	tr, ids := buildSample(t)
	if got := tr.FindLeaf("C"); got != ids["C"] {
		t.Errorf("FindLeaf(C) = %d, want %d", got, ids["C"])
	}
	if got := tr.FindLeaf("missing"); got != None {
		t.Errorf("FindLeaf(missing) = %d, want None", got)
	}
	// Internal node names must not match FindLeaf.
	if got := tr.FindLeaf("ab"); got != None {
		t.Errorf("FindLeaf(ab) = %d, want None (internal)", got)
	}
}

// randomTree builds and indexes a random tree with n nodes.
func randomTree(t *testing.T, n int, seed int64) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := NewTree()
	tr.AddNode("", None, 0)
	for i := 1; i < n; i++ {
		parent := NodeID(rng.Intn(i))
		name := ""
		// Give every node a unique leaf-ish name; internal nodes keep
		// their names too (Validate only dedups leaves, names unique
		// anyway).
		name = fmt.Sprintf("n%d", i)
		if _, err := tr.AddNode(name, parent, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDeepCaterpillarTree(t *testing.T) {
	// A 10 000-deep chain must index without stack issues.
	tr := NewTree()
	prev, _ := tr.AddNode("", None, 0)
	for i := 0; i < 10000; i++ {
		var err error
		prev, err = tr.AddNode(fmt.Sprintf("n%d", i), prev, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Index(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth(prev) != 10000 {
		t.Fatalf("depth = %d, want 10000", tr.Depth(prev))
	}
	leaf := prev
	if got := tr.LCA(leaf, tr.Root()); got != tr.Root() {
		t.Fatalf("LCA(leaf, root) = %d, want root", got)
	}
}

func TestIndexIdempotent(t *testing.T) {
	tr, _ := buildSample(t)
	if err := tr.Index(); err != nil {
		t.Fatalf("second Index: %v", err)
	}
}
