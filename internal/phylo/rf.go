package phylo

import (
	"fmt"
	"sort"
	"strings"
)

// Bipartitions returns the canonical encodings of the non-trivial
// bipartitions (splits) the tree's internal edges induce on its leaf
// set. Trees are compared as unrooted: each edge separating ≥2 leaves
// from ≥2 leaves yields one split, encoded as the sorted leaf-name
// list of the side NOT containing the lexicographically smallest leaf
// (so the encoding is root-invariant).
func Bipartitions(t *Tree) (map[string]bool, error) {
	if !t.Indexed() {
		if err := t.Index(); err != nil {
			return nil, err
		}
	}
	leaves := t.Leaves()
	total := len(leaves)
	if total < 4 {
		return map[string]bool{}, nil // no non-trivial splits possible
	}
	ref := t.Node(leaves[0]).Name
	for _, l := range leaves[1:] {
		if name := t.Node(l).Name; name < ref {
			ref = name
		}
	}
	splits := make(map[string]bool)
	for i := 0; i < t.Len(); i++ {
		id := NodeID(i)
		n := t.Node(id)
		if n.Parent == None || n.IsLeaf() {
			continue
		}
		inside := t.LeafCount(id)
		if inside < 2 || total-inside < 2 {
			continue
		}
		names := make([]string, 0, inside)
		hasRef := false
		for _, l := range t.SubtreeLeaves(id) {
			name := t.Node(l).Name
			if name == ref {
				hasRef = true
			}
			names = append(names, name)
		}
		if hasRef {
			// Take the complement side.
			in := make(map[string]bool, len(names))
			for _, n := range names {
				in[n] = true
			}
			names = names[:0]
			for _, l := range leaves {
				if name := t.Node(l).Name; !in[name] {
					names = append(names, name)
				}
			}
		}
		sort.Strings(names)
		splits[strings.Join(names, "\x00")] = true
	}
	return splits, nil
}

// RobinsonFoulds computes the (unrooted) Robinson–Foulds distance
// between two trees over the same leaf set: the number of
// bipartitions present in exactly one tree. normalized divides by the
// total number of splits in both trees, giving 0 for topologically
// identical trees and 1 for trees sharing no splits.
func RobinsonFoulds(a, b *Tree) (distance int, normalized float64, err error) {
	an := a.LeafNames()
	bn := b.LeafNames()
	if len(an) != len(bn) {
		return 0, 0, fmt.Errorf("phylo: trees have %d and %d leaves", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return 0, 0, fmt.Errorf("phylo: leaf sets differ (%q vs %q)", an[i], bn[i])
		}
	}
	sa, err := Bipartitions(a)
	if err != nil {
		return 0, 0, err
	}
	sb, err := Bipartitions(b)
	if err != nil {
		return 0, 0, err
	}
	for s := range sa {
		if !sb[s] {
			distance++
		}
	}
	for s := range sb {
		if !sa[s] {
			distance++
		}
	}
	denom := len(sa) + len(sb)
	if denom == 0 {
		return 0, 0, nil
	}
	return distance, float64(distance) / float64(denom), nil
}
