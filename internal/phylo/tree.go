// Package phylo provides phylogenetic tree construction
// (Neighbor-Joining and UPGMA over distance matrices), Newick
// serialization, and the query-side tree indexes DrugTree depends on:
// a preorder-interval subtree index and constant-time LCA.
package phylo

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node within one Tree. IDs are dense: valid IDs
// are 0..Len()-1. The root is not necessarily 0; use Root().
type NodeID int32

// None is the null node ID (parent of the root).
const None NodeID = -1

// Node is one vertex of a phylogenetic tree.
type Node struct {
	// Name is the taxon label for leaves (protein accession in
	// DrugTree) and an optional label for internal nodes.
	Name string
	// Parent is the parent node or None for the root.
	Parent NodeID
	// Children lists child nodes in stable order.
	Children []NodeID
	// Length is the branch length to the parent (0 for the root).
	Length float64
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is a rooted phylogenetic tree. Trees are built once and then
// read concurrently; mutation after Index() is not supported.
type Tree struct {
	nodes []Node
	root  NodeID

	// Index data, built lazily by Index().
	pre     []int32  // preorder number of each node
	end     []int32  // max preorder number within each node's subtree
	byPre   []NodeID // node at each preorder position
	depth   []int32  // edge depth of each node
	dist    []float64
	leafCnt []int32 // number of leaves under each node
	indexed bool

	// LCA structures (built by Index).
	euler    []NodeID
	eulerPos []int32
	sparse   [][]int32
}

// NewTree creates an empty tree.
func NewTree() *Tree {
	return &Tree{root: None}
}

// AddNode appends a node and returns its ID. parent must already exist
// (or be None for the root; only one root is allowed).
func (t *Tree) AddNode(name string, parent NodeID, length float64) (NodeID, error) {
	if t.indexed {
		return None, fmt.Errorf("phylo: tree is indexed and immutable")
	}
	if parent == None {
		if t.root != None {
			return None, fmt.Errorf("phylo: tree already has a root")
		}
	} else if int(parent) < 0 || int(parent) >= len(t.nodes) {
		return None, fmt.Errorf("phylo: parent %d out of range", parent)
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{Name: name, Parent: parent, Length: length})
	if parent == None {
		t.root = id
	} else {
		t.nodes[parent].Children = append(t.nodes[parent].Children, id)
	}
	return id, nil
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Root returns the root node ID, or None for an empty tree.
func (t *Tree) Root() NodeID { return t.root }

// Node returns the node with the given ID. The returned pointer is
// valid until the tree is mutated.
func (t *Tree) Node(id NodeID) *Node {
	return &t.nodes[id]
}

// Valid reports whether id names a node of this tree.
func (t *Tree) Valid(id NodeID) bool {
	return id >= 0 && int(id) < len(t.nodes)
}

// Leaves returns the IDs of all leaves in preorder (indexed trees) or
// insertion order (unindexed).
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	if t.indexed {
		for _, id := range t.byPre {
			if t.nodes[id].IsLeaf() {
				out = append(out, id)
			}
		}
		return out
	}
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// FindLeaf returns the leaf with the given name, or None.
// O(n); callers needing repeated lookup should build their own map or
// use an indexed tree via LeafByName.
func (t *Tree) FindLeaf(name string) NodeID {
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() && t.nodes[i].Name == name {
			return NodeID(i)
		}
	}
	return None
}

// Index freezes the tree and builds the preorder-interval subtree
// index, depth/branch-length arrays, and the Euler-tour LCA structure.
// Calling Index more than once is a no-op.
func (t *Tree) Index() error {
	if t.indexed {
		return nil
	}
	if t.root == None {
		return fmt.Errorf("phylo: cannot index empty tree")
	}
	n := len(t.nodes)
	t.pre = make([]int32, n)
	t.end = make([]int32, n)
	t.byPre = make([]NodeID, n)
	t.depth = make([]int32, n)
	t.dist = make([]float64, n)
	t.leafCnt = make([]int32, n)
	t.euler = make([]NodeID, 0, 2*n)
	t.eulerPos = make([]int32, n)
	for i := range t.eulerPos {
		t.eulerPos[i] = -1
	}

	// Iterative DFS to avoid recursion depth limits on degenerate
	// trees (caterpillar topologies from UPGMA chains).
	type frame struct {
		id    NodeID
		child int
	}
	stack := []frame{{t.root, 0}}
	var counter int32
	t.pre[t.root] = 0
	t.byPre[0] = t.root
	t.euler = append(t.euler, t.root)
	t.eulerPos[t.root] = 0
	counter = 1
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		node := &t.nodes[f.id]
		if f.child < len(node.Children) {
			c := node.Children[f.child]
			f.child++
			t.pre[c] = counter
			t.byPre[counter] = c
			counter++
			visited++
			t.depth[c] = t.depth[f.id] + 1
			t.dist[c] = t.dist[f.id] + t.nodes[c].Length
			t.eulerPos[c] = int32(len(t.euler))
			t.euler = append(t.euler, c)
			stack = append(stack, frame{c, 0})
			continue
		}
		// Leaving f.id: subtree interval closes here.
		t.end[f.id] = counter - 1
		if node.IsLeaf() {
			t.leafCnt[f.id] = 1
		} else {
			var sum int32
			for _, c := range node.Children {
				sum += t.leafCnt[c]
			}
			t.leafCnt[f.id] = sum
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			t.euler = append(t.euler, stack[len(stack)-1].id)
		}
	}
	if visited != n {
		return fmt.Errorf("phylo: tree has %d nodes but only %d reachable from root", n, visited)
	}
	t.buildSparse()
	t.indexed = true
	return nil
}

// buildSparse constructs a sparse table of minimum-depth positions
// over the Euler tour for O(1) LCA queries.
func (t *Tree) buildSparse() {
	m := len(t.euler)
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	t.sparse = make([][]int32, levels)
	base := make([]int32, m)
	for i := range base {
		base[i] = int32(i)
	}
	t.sparse[0] = base
	deeper := func(a, b int32) int32 {
		if t.depth[t.euler[a]] <= t.depth[t.euler[b]] {
			return a
		}
		return b
	}
	for l := 1; l < levels; l++ {
		span := 1 << l
		prev := t.sparse[l-1]
		row := make([]int32, m-span+1)
		for i := 0; i+span <= m; i++ {
			row[i] = deeper(prev[i], prev[i+span/2])
		}
		t.sparse[l] = row
	}
}

// Indexed reports whether Index has been called.
func (t *Tree) Indexed() bool { return t.indexed }

func (t *Tree) mustIndexed() {
	if !t.indexed {
		panic("phylo: operation requires an indexed tree; call Index() first")
	}
}

// Pre returns the preorder number of id (indexed trees only).
func (t *Tree) Pre(id NodeID) int { t.mustIndexed(); return int(t.pre[id]) }

// SubtreeInterval returns the half-open-free inclusive preorder range
// [lo, hi] covering exactly the subtree rooted at id.
func (t *Tree) SubtreeInterval(id NodeID) (lo, hi int) {
	t.mustIndexed()
	return int(t.pre[id]), int(t.end[id])
}

// NodeAtPre returns the node with preorder number p.
func (t *Tree) NodeAtPre(p int) NodeID { t.mustIndexed(); return t.byPre[p] }

// Depth returns the number of edges from the root to id.
func (t *Tree) Depth(id NodeID) int { t.mustIndexed(); return int(t.depth[id]) }

// RootDistance returns the sum of branch lengths from the root to id.
func (t *Tree) RootDistance(id NodeID) float64 { t.mustIndexed(); return t.dist[id] }

// LeafCount returns the number of leaves in the subtree rooted at id.
func (t *Tree) LeafCount(id NodeID) int { t.mustIndexed(); return int(t.leafCnt[id]) }

// IsAncestor reports whether a is an ancestor of (or equal to) b,
// answered in O(1) from the interval index.
func (t *Tree) IsAncestor(a, b NodeID) bool {
	t.mustIndexed()
	return t.pre[a] <= t.pre[b] && t.pre[b] <= t.end[a]
}

// LCA returns the lowest common ancestor of a and b in O(1).
func (t *Tree) LCA(a, b NodeID) NodeID {
	t.mustIndexed()
	pa, pb := t.eulerPos[a], t.eulerPos[b]
	if pa > pb {
		pa, pb = pb, pa
	}
	span := pb - pa + 1
	level := 0
	for 1<<(level+1) <= int(span) {
		level++
	}
	i1 := t.sparse[level][pa]
	i2 := t.sparse[level][pb-int32(1<<level)+1]
	if t.depth[t.euler[i1]] <= t.depth[t.euler[i2]] {
		return t.euler[i1]
	}
	return t.euler[i2]
}

// PathDistance returns the sum of branch lengths on the path a..b.
func (t *Tree) PathDistance(a, b NodeID) float64 {
	l := t.LCA(a, b)
	return t.dist[a] + t.dist[b] - 2*t.dist[l]
}

// SubtreeNaive collects the subtree of id by recursive traversal. It
// exists as the baseline for the interval index in experiment F1.
func (t *Tree) SubtreeNaive(id NodeID) []NodeID {
	var out []NodeID
	var stack []NodeID
	stack = append(stack, id)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		children := t.nodes[v].Children
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	return out
}

// SubtreeIndexed collects the subtree of id via the preorder interval:
// a single contiguous slice scan.
func (t *Tree) SubtreeIndexed(id NodeID) []NodeID {
	lo, hi := t.SubtreeInterval(id)
	out := make([]NodeID, hi-lo+1)
	copy(out, t.byPre[lo:hi+1])
	return out
}

// SubtreeLeaves returns the leaves under id in preorder.
func (t *Tree) SubtreeLeaves(id NodeID) []NodeID {
	lo, hi := t.SubtreeInterval(id)
	out := make([]NodeID, 0, t.leafCnt[id])
	for p := lo; p <= hi; p++ {
		if t.nodes[t.byPre[p]].IsLeaf() {
			out = append(out, t.byPre[p])
		}
	}
	return out
}

// Ancestors returns the path from id to the root, inclusive.
func (t *Tree) Ancestors(id NodeID) []NodeID {
	var out []NodeID
	for v := id; v != None; v = t.nodes[v].Parent {
		out = append(out, v)
	}
	return out
}

// Height returns the maximum root distance over all leaves.
func (t *Tree) Height() float64 {
	t.mustIndexed()
	h := 0.0
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() && t.dist[i] > h {
			h = t.dist[i]
		}
	}
	return h
}

// Validate checks structural invariants: a single root, parent/child
// agreement, non-negative finite branch lengths, and unique leaf
// names. It works on indexed and unindexed trees.
func (t *Tree) Validate() error {
	if t.root == None {
		if len(t.nodes) == 0 {
			return nil
		}
		return fmt.Errorf("phylo: %d nodes but no root", len(t.nodes))
	}
	if t.nodes[t.root].Parent != None {
		return fmt.Errorf("phylo: root has a parent")
	}
	seen := make(map[string]NodeID)
	roots := 0
	for i := range t.nodes {
		n := &t.nodes[i]
		if n.Parent == None {
			roots++
		} else {
			if !t.Valid(n.Parent) {
				return fmt.Errorf("phylo: node %d has invalid parent %d", i, n.Parent)
			}
			found := false
			for _, c := range t.nodes[n.Parent].Children {
				if c == NodeID(i) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("phylo: node %d missing from parent %d child list", i, n.Parent)
			}
		}
		if n.Length < 0 || math.IsNaN(n.Length) || math.IsInf(n.Length, 0) {
			return fmt.Errorf("phylo: node %d has invalid branch length %g", i, n.Length)
		}
		if n.IsLeaf() {
			if n.Name == "" {
				return fmt.Errorf("phylo: leaf %d has empty name", i)
			}
			if prev, dup := seen[n.Name]; dup {
				return fmt.Errorf("phylo: duplicate leaf name %q (nodes %d and %d)", n.Name, prev, i)
			}
			seen[n.Name] = NodeID(i)
		}
	}
	if roots != 1 {
		return fmt.Errorf("phylo: %d roots", roots)
	}
	return nil
}

// LeafNames returns the sorted names of all leaves.
func (t *Tree) LeafNames() []string {
	var names []string
	for i := range t.nodes {
		if t.nodes[i].IsLeaf() {
			names = append(names, t.nodes[i].Name)
		}
	}
	sort.Strings(names)
	return names
}
