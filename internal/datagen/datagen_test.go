package datagen

import (
	"testing"

	"drugtree/internal/bio/align"
	"drugtree/internal/chem"
	"drugtree/internal/phylo"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Proteins) != len(d2.Proteins) || len(d1.Activities) != len(d2.Activities) {
		t.Fatal("same seed produced different dataset sizes")
	}
	for i := range d1.Proteins {
		if d1.Proteins[i].Residues != d2.Proteins[i].Residues {
			t.Fatalf("protein %d differs across runs", i)
		}
	}
	for i := range d1.Ligands {
		if d1.Ligands[i].SMILES != d2.Ligands[i].SMILES {
			t.Fatalf("ligand %d differs across runs", i)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFamilies = 3
	cfg.ProteinsPerFamily = 5
	cfg.NumLigands = 7
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Proteins) != 15 {
		t.Fatalf("proteins = %d, want 15", len(ds.Proteins))
	}
	if len(ds.Ligands) != 7 {
		t.Fatalf("ligands = %d, want 7", len(ds.Ligands))
	}
	if len(ds.Annotations) != 15 {
		t.Fatalf("annotations = %d, want 15", len(ds.Annotations))
	}
	// Density 0.25 over 15×7=105 pairs: expect roughly 26 ± wide.
	if len(ds.Activities) < 5 || len(ds.Activities) > 80 {
		t.Fatalf("activities = %d, implausible for density 0.25", len(ds.Activities))
	}
	// Unique protein IDs.
	seen := map[string]bool{}
	for _, p := range ds.Proteins {
		if seen[p.ID] {
			t.Fatalf("duplicate protein ID %s", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NumFamilies = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero families accepted")
	}
	bad = DefaultConfig()
	bad.SeqLen = 5
	if _, err := Generate(bad); err == nil {
		t.Error("tiny SeqLen accepted")
	}
	bad = DefaultConfig()
	bad.ActivityDensity = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero density accepted")
	}
}

func TestGeneratedSMILESAllParse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	cfg.NumLigands = 200
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range ds.Ligands {
		m, err := chem.ParseSMILES(l.SMILES)
		if err != nil {
			t.Fatalf("ligand %s: %v", l.ID, err)
		}
		if m.Weight() <= 0 {
			t.Fatalf("ligand %s has weight %g", l.ID, m.Weight())
		}
		// And every generated molecule survives a write/parse round
		// trip losslessly (graph shape + formula + fingerprint).
		out, err := m.WriteSMILES()
		if err != nil {
			t.Fatalf("ligand %s write: %v", l.ID, err)
		}
		m2, err := chem.ParseSMILES(out)
		if err != nil {
			t.Fatalf("ligand %s re-parse %q: %v", l.ID, out, err)
		}
		if m.Formula() != m2.Formula() ||
			m.ComputeFingerprint().Tanimoto(m2.ComputeFingerprint()) != 1 {
			t.Fatalf("ligand %s round trip changed the molecule: %q → %q", l.ID, l.SMILES, out)
		}
	}
}

func TestFamilyStructureRecoverable(t *testing.T) {
	// Distances within a family must be smaller on average than
	// across families — the property that makes the phylogenetic
	// overlay meaningful.
	cfg := DefaultConfig()
	cfg.NumFamilies = 3
	cfg.ProteinsPerFamily = 6
	cfg.SeqLen = 120
	cfg.BranchMutations = 4
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scoring := align.BLOSUM62(8)
	var intra, inter float64
	var nIntra, nInter int
	for i := range ds.Proteins {
		for j := 0; j < i; j++ {
			d := align.Distance(ds.Proteins[i].Residues, ds.Proteins[j].Residues, scoring)
			if ds.Proteins[i].Family == ds.Proteins[j].Family {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Fatalf("intra-family distance %g not below inter-family %g", intra, inter)
	}
	// NJ over these distances must cluster families: check that for
	// one family, the LCA of its members contains no foreign leaves.
	names := make([]string, len(ds.Proteins))
	famOf := map[string]string{}
	for i, p := range ds.Proteins {
		names[i] = p.ID
		famOf[p.ID] = p.Family
	}
	m := phylo.ComputeDistances(names, func(i, j int) float64 {
		return align.Distance(ds.Proteins[i].Residues, ds.Proteins[j].Residues, scoring)
	})
	tree, err := phylo.NeighborJoining(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Index(); err != nil {
		t.Fatal(err)
	}
	// Root-independent recoverability check: every leaf's nearest
	// neighbor by tree path distance belongs to the same family.
	leaves := tree.Leaves()
	for _, a := range leaves {
		best := phylo.None
		bestD := 0.0
		for _, b := range leaves {
			if a == b {
				continue
			}
			d := tree.PathDistance(a, b)
			if best == phylo.None || d < bestD {
				best, bestD = b, d
			}
		}
		if famOf[tree.Node(a).Name] != famOf[tree.Node(best).Name] {
			t.Fatalf("leaf %s nearest neighbor %s is from a different family",
				tree.Node(a).Name, tree.Node(best).Name)
		}
	}
}

func TestActivityFamilyCorrelation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FamilyAffinity = 1.0
	cfg.ActivityDensity = 1.0
	cfg.NumLigands = 5
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	famOf := map[string]string{}
	for _, p := range ds.Proteins {
		famOf[p.ID] = p.Family
	}
	// With FamilyAffinity=1, within-(family,ligand) spread comes only
	// from the 0.3-σ noise: check std spread is small.
	groups := map[string][]float64{}
	for _, a := range ds.Activities {
		key := famOf[a.ProteinID] + "/" + a.LigandID
		groups[key] = append(groups[key], a.Affinity)
	}
	for key, vals := range groups {
		if len(vals) < 2 {
			continue
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 3 {
			t.Fatalf("group %s spread %g too wide for FamilyAffinity=1", key, hi-lo)
		}
	}
}

func TestTrueTreeRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumFamilies = 3
	cfg.ProteinsPerFamily = 7
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TrueTree == nil {
		t.Fatal("no true tree recorded")
	}
	leaves := ds.TrueTree.Leaves()
	if len(leaves) != len(ds.Proteins) {
		t.Fatalf("true tree has %d leaves, %d proteins", len(leaves), len(ds.Proteins))
	}
	byID := map[string]bool{}
	for _, p := range ds.Proteins {
		byID[p.ID] = true
	}
	for _, l := range leaves {
		if !byID[ds.TrueTree.Node(l).Name] {
			t.Fatalf("true tree leaf %q is not a protein", ds.TrueTree.Node(l).Name)
		}
	}
	// Each family must be a clade of the true tree (rooted at the
	// global root, families hang off it by construction).
	famLeaves := map[string][]phylo.NodeID{}
	famOf := map[string]string{}
	for _, p := range ds.Proteins {
		famOf[p.ID] = p.Family
	}
	for _, l := range leaves {
		f := famOf[ds.TrueTree.Node(l).Name]
		famLeaves[f] = append(famLeaves[f], l)
	}
	for f, ls := range famLeaves {
		lca := ls[0]
		for _, l := range ls[1:] {
			lca = ds.TrueTree.LCA(lca, l)
		}
		if got := ds.TrueTree.LeafCount(lca); got != len(ls) {
			t.Fatalf("family %s is not a clade: LCA spans %d leaves, family has %d", f, got, len(ls))
		}
	}
}

func TestReconstructionRecoversTrueTopology(t *testing.T) {
	// NJ over alignment distances must land close to the generating
	// topology (low normalized RF).
	cfg := DefaultConfig()
	cfg.NumFamilies = 3
	cfg.ProteinsPerFamily = 6
	cfg.SeqLen = 150
	cfg.BranchMutations = 5
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scoring := align.BLOSUM62(8)
	names := make([]string, len(ds.Proteins))
	for i, p := range ds.Proteins {
		names[i] = p.ID
	}
	m := phylo.ComputeDistances(names, func(i, j int) float64 {
		return align.Distance(ds.Proteins[i].Residues, ds.Proteins[j].Residues, scoring)
	})
	got, err := phylo.NeighborJoining(m)
	if err != nil {
		t.Fatal(err)
	}
	_, norm, err := phylo.RobinsonFoulds(ds.TrueTree, got)
	if err != nil {
		t.Fatal(err)
	}
	if norm > 0.35 {
		t.Fatalf("NJ reconstruction too far from truth: normalized RF = %.2f", norm)
	}
}

func TestRandomTopology(t *testing.T) {
	tr, err := RandomTopology(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Leaves()); got != 100 {
		t.Fatalf("leaves = %d, want 100", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic under the same seed.
	tr2, _ := RandomTopology(100, 7)
	if tr.Newick() != tr2.Newick() {
		t.Fatal("same seed produced different topology")
	}
	// Single leaf.
	tr3, err := RandomTopology(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr3.Leaves()) != 1 {
		t.Fatalf("1-leaf topology has %d leaves", len(tr3.Leaves()))
	}
	if _, err := RandomTopology(0, 1); err == nil {
		t.Fatal("zero leaves accepted")
	}
}

// TestActivitySkewZeroIsIdentity pins the rng-stream compatibility
// promise: ActivitySkew = 0 produces the same Activities, row for
// row, as a config without the knob — adding skew support must not
// perturb any existing seeded fixture.
func TestActivitySkewZeroIsIdentity(t *testing.T) {
	cfg := DefaultConfig()
	base, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ActivitySkew = 0
	same, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Activities) != len(same.Activities) {
		t.Fatalf("skew 0 changed activity count: %d vs %d", len(base.Activities), len(same.Activities))
	}
	for i := range base.Activities {
		if base.Activities[i] != same.Activities[i] {
			t.Fatalf("activity %d differs under skew 0: %+v vs %+v", i, base.Activities[i], same.Activities[i])
		}
	}
}

// TestActivitySkewConcentrates checks the zipf weighting does what the
// shard skew tests rely on: the first-quarter proteins hold a
// disproportionate share of activity rows, while the expected total
// stays in the same ballpark as the unskewed dataset.
func TestActivitySkewConcentrates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ActivityDensity = 0.4
	flat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ActivitySkew = 1.5
	skewed, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	index := map[string]int{}
	for i, p := range skewed.Proteins {
		index[p.ID] = i
	}
	quarter := len(skewed.Proteins) / 4
	var head int
	for _, a := range skewed.Activities {
		if index[a.ProteinID] < quarter {
			head++
		}
	}
	if frac := float64(head) / float64(len(skewed.Activities)); frac < 0.5 {
		t.Fatalf("skew 1.5: first-quarter proteins hold %.0f%% of activities, want >= 50%%", frac*100)
	}
	// Renormalization keeps the totals in the same ballpark (within
	// 3x — probability capping at 1.0 truncates some of the zipf
	// head's mass, so exact parity is not expected).
	lo, hi := len(skewed.Activities), len(flat.Activities)
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*3 < hi {
		t.Fatalf("skew changed activity volume too much: flat %d, skewed %d", len(flat.Activities), len(skewed.Activities))
	}
}
