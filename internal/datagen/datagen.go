// Package datagen generates the seeded synthetic datasets every
// DrugTree experiment runs on, substituting for the proprietary
// protein/ligand screening data the original system consumed.
//
// Protein families are produced by simulating evolution: each family
// has an ancestor sequence diversified along a random Yule-process
// tree with per-branch mutations, so a distance-based tree built from
// the generated sequences recovers the family structure — exactly the
// property the "protein-motivated phylogenetic tree" of the paper
// depends on. Ligands are assembled from a SMILES fragment grammar
// (guaranteed parseable by internal/chem), and binding affinities are
// family-correlated with noise, so subtree-level aggregation queries
// have signal to find.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"drugtree/internal/bio/seq"
	"drugtree/internal/chem"
	"drugtree/internal/phylo"
)

// Config controls dataset generation. The zero value is not valid;
// use DefaultConfig and override.
type Config struct {
	Seed              int64
	NumFamilies       int
	ProteinsPerFamily int
	SeqLen            int
	// BranchMutations is the expected number of substitutions applied
	// per tree edge while diversifying a family.
	BranchMutations int
	// FamilyDivergence is the number of substitutions separating each
	// family's ancestor from the shared root ancestor. All families
	// share ancestry (as the proteins in one real analysis do), so
	// inter-family distances stay informative rather than saturating.
	// 0 selects the default of SeqLen/5.
	FamilyDivergence int
	// NumLigands is the number of distinct ligands.
	NumLigands int
	// ActivityDensity is the fraction of (protein, ligand) pairs with
	// a measured activity, in (0, 1].
	ActivityDensity float64
	// FamilyAffinity controls how strongly affinity correlates with
	// family (0 = none, 1 = fully family-determined).
	FamilyAffinity float64
	// ActivitySkew concentrates activity rows on low-numbered
	// proteins with zipf-style weights (protein i draws density
	// proportional to 1/(i+1)^ActivitySkew, renormalized so the
	// expected total row count is unchanged). 0 keeps the uniform
	// density and produces bit-identical datasets to builds predating
	// the knob. Shard-skew tests use it to generate partitions whose
	// row counts differ by orders of magnitude.
	ActivitySkew float64
}

// DefaultConfig returns the configuration used by the quickstart
// example and small tests.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumFamilies:       4,
		ProteinsPerFamily: 12,
		SeqLen:            240,
		BranchMutations:   6,
		NumLigands:        40,
		ActivityDensity:   0.25,
		FamilyAffinity:    0.8,
	}
}

// Ligand is one synthetic compound.
type Ligand struct {
	ID      string
	Name    string
	SMILES  string
	Weight  float64
	Formula string
}

// Activity is one measured protein–ligand binding record. Affinity is
// a pKd-style value: higher is stronger binding.
type Activity struct {
	ProteinID string
	LigandID  string
	Affinity  float64
	Assay     string
}

// Annotation is auxiliary per-protein metadata served by the
// annotation source.
type Annotation struct {
	ProteinID string
	Organism  string
	EC        string
	Keywords  string
}

// Dataset is a complete generated dataset plus the generating truth:
// family labels live on the proteins, and TrueTree is the exact
// topology the sequences were evolved along (families hanging off a
// common root), against which reconstruction quality is scored
// (experiment T5).
type Dataset struct {
	Config      Config
	Proteins    []*seq.Protein
	Ligands     []Ligand
	Activities  []Activity
	Annotations []Annotation
	TrueTree    *phylo.Tree
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumFamilies < 1 || cfg.ProteinsPerFamily < 1 {
		return nil, fmt.Errorf("datagen: need at least one family and one protein per family")
	}
	if cfg.SeqLen < 20 {
		return nil, fmt.Errorf("datagen: SeqLen %d too short", cfg.SeqLen)
	}
	if cfg.ActivityDensity <= 0 || cfg.ActivityDensity > 1 {
		return nil, fmt.Errorf("datagen: ActivityDensity %g out of (0,1]", cfg.ActivityDensity)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Config: cfg}

	trueTree := phylo.NewTree()
	edgeLen := float64(cfg.BranchMutations) / float64(cfg.SeqLen)
	trueRoot, err := trueTree.AddNode("", phylo.None, 0)
	if err != nil {
		return nil, err
	}
	divergence := cfg.FamilyDivergence
	if divergence == 0 {
		divergence = cfg.SeqLen / 5
	}
	rootAncestor := randomSequence(rng, cfg.SeqLen)
	pid := 0
	for f := 0; f < cfg.NumFamilies; f++ {
		family := fmt.Sprintf("FAM%02d", f)
		ancestor := mutate(rng, rootAncestor, divergence)
		members, parents, leaves := evolveFamily(rng, ancestor, cfg.ProteinsPerFamily, cfg.BranchMutations)
		ids := make([]string, len(members))
		for i, m := range members {
			p := &seq.Protein{
				ID:       fmt.Sprintf("DT%05d", pid),
				Name:     fmt.Sprintf("synthetic protein %d", pid),
				Family:   family,
				Residues: m,
			}
			if err := p.Validate(); err != nil {
				return nil, err
			}
			ds.Proteins = append(ds.Proteins, p)
			ids[i] = p.ID
			pid++
		}
		if err := graftFamily(trueTree, trueRoot, family, parents, leaves, ids, edgeLen); err != nil {
			return nil, err
		}
	}
	if err := trueTree.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: true tree invalid: %w", err)
	}
	if err := trueTree.Index(); err != nil {
		return nil, err
	}
	ds.TrueTree = trueTree

	for l := 0; l < cfg.NumLigands; l++ {
		smiles := randomSMILES(rng)
		mol, err := chem.ParseSMILES(smiles)
		if err != nil {
			return nil, fmt.Errorf("datagen: generated invalid SMILES %q: %w", smiles, err)
		}
		ds.Ligands = append(ds.Ligands, Ligand{
			ID:      fmt.Sprintf("LIG%04d", l),
			Name:    fmt.Sprintf("compound-%04d", l),
			SMILES:  smiles,
			Weight:  mol.Weight(),
			Formula: mol.Formula(),
		})
	}

	// Family-correlated affinities: each (family, ligand) pair has a
	// latent base affinity; members deviate by noise.
	base := make(map[string]float64)
	assays := []string{"Kd", "Ki", "IC50"}
	// Per-protein density weights: uniform 1.0 by default, zipf-shaped
	// under ActivitySkew. The weight multiplies the inclusion
	// probability of the same rng draw, so the random stream (and
	// therefore every downstream value) is identical when the skew is
	// off.
	weights := make([]float64, len(ds.Proteins))
	for i := range weights {
		weights[i] = 1
	}
	if cfg.ActivitySkew > 0 {
		var sum float64
		for i := range weights {
			weights[i] = math.Pow(1/float64(i+1), cfg.ActivitySkew)
			sum += weights[i]
		}
		norm := float64(len(weights)) / sum
		for i := range weights {
			weights[i] *= norm
		}
	}
	for pi, p := range ds.Proteins {
		for _, l := range ds.Ligands {
			if rng.Float64() >= cfg.ActivityDensity*weights[pi] {
				continue
			}
			key := p.Family + "/" + l.ID
			b, ok := base[key]
			if !ok {
				b = 4 + rng.Float64()*6 // pKd in [4,10)
				base[key] = b
			}
			noiseScale := 1 - cfg.FamilyAffinity
			aff := b*cfg.FamilyAffinity + (4+rng.Float64()*6)*noiseScale + rng.NormFloat64()*0.3
			if aff < 0 {
				aff = 0
			}
			ds.Activities = append(ds.Activities, Activity{
				ProteinID: p.ID,
				LigandID:  l.ID,
				Affinity:  aff,
				Assay:     assays[rng.Intn(len(assays))],
			})
		}
	}

	organisms := []string{"H. sapiens", "M. musculus", "E. coli", "S. cerevisiae", "D. melanogaster"}
	keywords := []string{"kinase", "hydrolase", "transferase", "ligase", "oxidoreductase", "isomerase"}
	for _, p := range ds.Proteins {
		ds.Annotations = append(ds.Annotations, Annotation{
			ProteinID: p.ID,
			Organism:  organisms[rng.Intn(len(organisms))],
			EC:        fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(6), 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(200)),
			Keywords:  keywords[rng.Intn(len(keywords))],
		})
	}
	return ds, nil
}

// randomSequence draws a uniform random protein sequence.
func randomSequence(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = seq.AminoAcids[rng.Intn(20)]
	}
	return string(b)
}

// evolveFamily diversifies ancestor into n member sequences along a
// random Yule tree: the member set starts as {ancestor}; repeatedly a
// random member is duplicated and both copies accumulate independent
// branch mutations. The generating topology is recorded so
// reconstruction quality can be scored against it: parents[v] is the
// parent of forest node v (-1 for the family root), and leaves[i] is
// the forest node of final member i.
func evolveFamily(rng *rand.Rand, ancestor string, n, branchMutations int) (members []string, parents []int, leaves []int) {
	members = []string{mutate(rng, ancestor, branchMutations)}
	parents = []int{-1}
	memberNode := []int{0} // forest node of each live member
	for len(members) < n {
		i := rng.Intn(len(members))
		parent := memberNode[i]
		left := mutate(rng, members[i], branchMutations)
		right := mutate(rng, members[i], branchMutations)
		lNode := len(parents)
		parents = append(parents, parent)
		rNode := len(parents)
		parents = append(parents, parent)
		members[i] = left
		memberNode[i] = lNode
		members = append(members, right)
		memberNode = append(memberNode, rNode)
	}
	return members, parents, memberNode
}

// graftFamily converts one family's recorded forest into tree nodes
// hanging off the global root. Forest-internal nodes with exactly one
// child in the final topology cannot occur (every split makes two),
// so the conversion is a direct parent-pointer walk.
func graftFamily(t *phylo.Tree, globalRoot phylo.NodeID, family string, parents []int, leaves []int, ids []string, edgeLen float64) error {
	// children lists from parent pointers.
	children := make([][]int, len(parents))
	rootNode := -1
	for v, p := range parents {
		if p < 0 {
			rootNode = v
			continue
		}
		children[p] = append(children[p], v)
	}
	if rootNode < 0 {
		return fmt.Errorf("datagen: family %s forest has no root", family)
	}
	leafName := make(map[int]string, len(leaves))
	for i, v := range leaves {
		leafName[v] = ids[i]
	}
	var convert func(v int, parent phylo.NodeID) error
	convert = func(v int, parent phylo.NodeID) error {
		name := leafName[v]
		id, err := t.AddNode(name, parent, edgeLen)
		if err != nil {
			return err
		}
		for _, c := range children[v] {
			if err := convert(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	return convert(rootNode, globalRoot)
}

// mutate applies approximately k random substitutions.
func mutate(rng *rand.Rand, s string, k int) string {
	b := []byte(s)
	for i := 0; i < k; i++ {
		pos := rng.Intn(len(b))
		b[pos] = seq.AminoAcids[rng.Intn(20)]
	}
	return string(b)
}

// SMILES fragment grammar: chains of heavy atoms with branches,
// optional ring fragments. Everything emitted parses under
// chem.ParseSMILES.
var (
	chainAtoms = []string{"C", "C", "C", "N", "O", "S"}
	ringFrags  = []string{"c1ccccc1", "C1CCCCC1", "c1ccncc1", "C1CCNCC1", "c1ccsc1"}
	capAtoms   = []string{"C", "O", "N", "F", "Cl", "Br"}
)

// randomSMILES assembles a random drug-like molecule.
func randomSMILES(rng *rand.Rand) string {
	var b strings.Builder
	// Optional leading ring.
	if rng.Float64() < 0.6 {
		b.WriteString(ringFrags[rng.Intn(len(ringFrags))])
	} else {
		b.WriteString("C")
	}
	// Chain with branches.
	chainLen := 2 + rng.Intn(6)
	for i := 0; i < chainLen; i++ {
		b.WriteString(chainAtoms[rng.Intn(len(chainAtoms))])
		if rng.Float64() < 0.3 {
			b.WriteString("(")
			b.WriteString(capAtoms[rng.Intn(len(capAtoms))])
			b.WriteString(")")
		}
		if rng.Float64() < 0.15 {
			b.WriteString("(=O)")
		}
	}
	// Optional trailing ring.
	if rng.Float64() < 0.4 {
		b.WriteString(ringFrags[rng.Intn(len(ringFrags))])
	} else {
		b.WriteString(capAtoms[rng.Intn(len(capAtoms))])
	}
	return b.String()
}

// RandomTopology generates a random indexed tree with n leaves by the
// Yule process (random leaf splits), used by scaling experiments where
// building a tree from sequences would dominate runtime. Leaf names
// are L00000..; branch lengths are exponential-ish draws.
func RandomTopology(n int, seed int64) (*phylo.Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("datagen: need at least one leaf")
	}
	rng := rand.New(rand.NewSource(seed))
	t := phylo.NewTree()
	root, err := t.AddNode("", phylo.None, 0)
	if err != nil {
		return nil, err
	}
	leaves := []phylo.NodeID{root}
	for len(leaves) < n {
		i := rng.Intn(len(leaves))
		parent := leaves[i]
		l1, err := t.AddNode("", parent, 0.05+rng.ExpFloat64()*0.1)
		if err != nil {
			return nil, err
		}
		l2, err := t.AddNode("", parent, 0.05+rng.ExpFloat64()*0.1)
		if err != nil {
			return nil, err
		}
		leaves[i] = l1
		leaves = append(leaves, l2)
	}
	for i, id := range leaves {
		t.Node(id).Name = fmt.Sprintf("L%05d", i)
	}
	if err := t.Index(); err != nil {
		return nil, err
	}
	return t, nil
}
