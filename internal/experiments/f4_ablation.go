package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/metrics"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// F4Config is one rung of the end-to-end ablation ladder: the full
// stack with one mechanism removed.
type F4Config struct {
	Name     string
	Query    query.Options
	Cache    bool
	Prefetch bool
	Strategy mobile.Strategy
	Budget   int
}

// F4Configs returns the ladder, full stack first.
func F4Configs() []F4Config {
	full := F4Config{
		Name:  "full stack",
		Query: query.DefaultOptions(), Cache: true, Prefetch: true,
		Strategy: mobile.StrategyLODDelta, Budget: 100,
	}
	noCache := full
	noCache.Name = "- semantic cache"
	noCache.Cache = false
	noCache.Prefetch = false // prefetch is useless without the cache
	noPrefetch := full
	noPrefetch.Name = "- prefetch"
	noPrefetch.Prefetch = false
	noDelta := full
	noDelta.Name = "- delta encoding"
	noDelta.Strategy = mobile.StrategyLOD
	noLOD := full
	noLOD.Name = "- LOD streaming"
	noLOD.Strategy = mobile.StrategyFull
	noOpt := full
	noOpt.Name = "- query optimizer"
	noOpt.Query = query.NaiveOptions()
	naive := F4Config{
		Name:     "naive everything",
		Query:    query.NaiveOptions(),
		Strategy: mobile.StrategyFull, Budget: 100,
	}
	return []F4Config{full, noPrefetch, noDelta, noCache, noOpt, noLOD, naive}
}

// F4Steps is the session length of the ablation run.
const F4Steps = 120

// RunF4Session runs one config and returns the per-interaction
// total-latency histogram (server compute measured + 3G network
// modelled from actual bytes). The one-return-value wrapper keeps the
// benchmark harness simple; RunF4SessionSplit exposes the compute and
// network components separately.
func RunF4Session(ctx context.Context, leaves int, seed int64, fc F4Config) (*metrics.Histogram, error) {
	total, _, _, err := RunF4SessionSplit(ctx, leaves, seed, fc)
	return total, err
}

// RunF4SessionSplit runs one config and returns the total, compute,
// and network per-interaction histograms.
func RunF4SessionSplit(ctx context.Context, leaves int, seed int64, fc F4Config) (total, compute, network *metrics.Histogram, err error) {
	tree, err := datagen.RandomTopology(leaves, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.QueryOptions = fc.Query
	cfg.EnablePrefetch = fc.Prefetch
	if !fc.Cache {
		cfg.CacheBytes = 0
	} else {
		cfg.CacheBytes = 32 << 20
	}
	e, err := core.NewWithTree(db, tree, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	trace := GenerateTrace(e.Tree(), F4Steps, seed+3)

	server := mobile.NewServer(e)
	clientConn, serverConn := net.Pipe()
	defer clientConn.Close()
	defer serverConn.Close()
	errc := make(chan error, 1)
	go func() { errc <- server.ServeConn(ctx, serverConn) }()
	c, err := mobile.Dial(clientConn, fc.Strategy, fc.Budget)
	if err != nil {
		return nil, nil, nil, err
	}
	total = &metrics.Histogram{}
	compute = &metrics.Histogram{}
	network = &metrics.Histogram{}
	prevBytes := int64(0)
	g3 := netsim.Profile3G
	g3.Jitter = 0
	g3.LossPct = 0
	for _, node := range trace {
		start := clock.Now()
		if _, err := c.Open(node); err != nil {
			return nil, nil, nil, err
		}
		comp := clock.Now() - start
		moved := c.BytesDown - prevBytes
		prevBytes = c.BytesDown
		net := modelledLatency(g3, float64(moved))
		compute.Record(comp)
		network.Record(net)
		total.Record(comp + net)
	}
	c.Close()
	clientConn.Close()
	<-errc
	return total, compute, network, nil
}

// RunF4 runs the end-to-end ablation ladder on a 2000-leaf tree over
// a modelled 3G link and reports the interaction-latency distribution.
func RunF4(ctx context.Context, seed int64) (*Report, error) {
	const leaves = 2000
	rep := &Report{
		ID:     "F4",
		Title:  fmt.Sprintf("End-to-end interaction latency on 3G: ablation ladder (%d-leaf tree, %d interactions)", leaves, F4Steps),
		Header: []string{"config", "total p50", "total p99", "total mean", "compute mean", "network mean"},
	}
	var fullMean, naiveMean time.Duration
	for _, fc := range F4Configs() {
		total, compute, network, err := RunF4SessionSplit(ctx, leaves, seed, fc)
		if err != nil {
			return nil, fmt.Errorf("F4 %s: %w", fc.Name, err)
		}
		rep.Rows = append(rep.Rows, []string{
			fc.Name,
			fmt.Sprint(total.Percentile(0.50).Round(time.Millisecond)),
			fmt.Sprint(total.Percentile(0.99).Round(time.Millisecond)),
			fmt.Sprint(total.Mean().Round(time.Millisecond)),
			fmt.Sprint(compute.Mean().Round(10 * time.Microsecond)),
			fmt.Sprint(network.Mean().Round(time.Millisecond)),
		})
		switch fc.Name {
		case "full stack":
			fullMean = total.Mean()
		case "naive everything":
			naiveMean = total.Mean()
		}
	}
	rep.Notes = fmt.Sprintf(
		"expectation: on 3G the network term dominates, so LOD streaming is the top contributor and the compute-side mechanisms (cache, optimizer) show up in the compute column; full stack vs naive = %.1fx",
		float64(naiveMean)/float64(fullMean))
	return rep, nil
}
