package experiments

import (
	"context"
	"fmt"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// F1TreeSizes are the leaf counts swept by the scaling figure.
var F1TreeSizes = []int{100, 500, 1000, 5000, 10000, 50000}

// F1Engine builds a navigation-only engine over a synthetic topology
// of n leaves (no protein data needed).
func F1Engine(n int, seed int64, opts query.Options) (*core.Engine, error) {
	tree, err := datagen.RandomTopology(n, seed)
	if err != nil {
		return nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.QueryOptions = opts
	cfg.CacheBytes = 0 // caching is F2's subject
	cfg.EnablePrefetch = false
	return core.NewWithTree(db, tree, cfg)
}

// f1PickClades selects subtree roots of roughly fixed absolute size
// (≈25 and ≈50 leaves). Fixed-size targets model the interactive
// reality — a phone viewport shows a bounded clade regardless of how
// big the whole tree is — and make the naive/optimized asymptotics
// visible: the naive engine pays for the whole tree, the indexed
// engine only for the result.
func f1PickClades(t *phylo.Tree) []string {
	total := len(t.Leaves())
	var out []string
	for _, want := range []int{25, 50} {
		if want > total {
			want = total
		}
		best, bestDiff := t.Root(), total
		for i := 0; i < t.Len(); i++ {
			id := t.NodeAtPre(i)
			if t.Node(id).IsLeaf() {
				continue
			}
			diff := t.LeafCount(id) - want
			if diff < 0 {
				diff = -diff
			}
			if diff < bestDiff {
				best, bestDiff = id, diff
			}
		}
		out = append(out, t.Node(best).Name)
	}
	return out
}

// RunF1 sweeps tree size and measures the subtree-retrieval query
// under the naive engine (sequential scan + filter) and the optimized
// engine (interval rewrite + B+-tree range scan). This is the poster's
// central "lag" curve.
func RunF1(ctx context.Context, seed int64) (*Report, error) {
	rep := &Report{
		ID:     "F1",
		Title:  "Subtree-query latency vs tree size (series: naive, optimized)",
		Header: []string{"leaves", "nodes", "naive", "optimized", "speedup"},
	}
	for _, n := range F1TreeSizes {
		naive, err := F1Engine(n, seed, query.NaiveOptions())
		if err != nil {
			return nil, err
		}
		opt, err := F1Engine(n, seed, query.DefaultOptions())
		if err != nil {
			return nil, err
		}
		clades := f1PickClades(naive.Tree())
		reps := 5
		if n <= 1000 {
			reps = 20
		}
		var dn, do time.Duration
		for _, clade := range clades {
			q := fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s')", clade)
			d1, err := MeasureQuery(ctx, naive, q, reps)
			if err != nil {
				return nil, err
			}
			d2, err := MeasureQuery(ctx, opt, q, reps)
			if err != nil {
				return nil, err
			}
			dn += d1
			do += d2
		}
		dn /= time.Duration(len(clades))
		do /= time.Duration(len(clades))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(naive.Tree().Len()),
			fmtDur(float64(dn.Nanoseconds()) / 1e3),
			fmtDur(float64(do.Nanoseconds()) / 1e3),
			fmt.Sprintf("%.1fx", float64(dn)/float64(do)),
		})
	}
	rep.Notes = "expectation: for a fixed-size (viewport-scale) subtree, naive latency grows ~linearly with tree size while the indexed engine stays near-flat, so the speedup widens with scale"
	return rep, nil
}
