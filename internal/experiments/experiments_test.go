package experiments

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/query"
)

// The measurement clock is injectable (clockcheck forbids wall-clock
// reads in this package): under a netsim.VirtualClock every timing
// column must still be finite and well-formed.
func TestExperimentsRunUnderVirtualClock(t *testing.T) {
	restore := SetClock(netsim.NewVirtualClock())
	defer restore()
	rep, err := RunT4(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
				t.Fatalf("non-finite cell %q under virtual clock", cell)
			}
		}
	}
}

func TestSetClockRestores(t *testing.T) {
	v := netsim.NewVirtualClock()
	restore := SetClock(v)
	if clock != v {
		t.Fatal("SetClock did not install the new clock")
	}
	restore()
	if clock == v {
		t.Fatal("restore did not reinstate the previous clock")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID: "X", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  "note",
	}
	out := r.Render()
	if !strings.Contains(out, "=== X: demo ===") || !strings.Contains(out, "note") {
		t.Fatalf("render:\n%s", out)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestByID(t *testing.T) {
	for _, r := range All() {
		got, err := ByID(r.ID)
		if err != nil || got.ID != r.ID {
			t.Fatalf("ByID(%s): %v", r.ID, err)
		}
	}
	if _, err := ByID("T99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunT1(t *testing.T) {
	rep, err := RunT1(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("T1 rows = %d, want 5", len(rep.Rows))
	}
	// The headline expectation: every class speeds up.
	for _, row := range rep.Rows {
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[3])
		}
		if sp < 1 {
			t.Errorf("class %q slowed down: %s (timing noise is possible but all five below 1 would be a bug)", row[0], row[3])
		}
	}
}

func TestRunT2(t *testing.T) {
	rep, err := RunT2(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("T2 rows = %d, want 6", len(rep.Rows))
	}
	// Pushdown rows must move fewer bytes than their fetch-all twin.
	for i := 0; i < len(rep.Rows); i += 2 {
		all, _ := strconv.ParseInt(rep.Rows[i][4], 10, 64)
		push, _ := strconv.ParseInt(rep.Rows[i+1][4], 10, 64)
		if push >= all {
			t.Errorf("scenario %q: pushdown %d ≥ fetch-all %d bytes", rep.Rows[i][0], push, all)
		}
	}
}

func TestRunT3(t *testing.T) {
	rep, err := RunT3(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("T3 rows = %d", len(rep.Rows))
	}
	// Cost-based join work (rows joined) must not exceed syntactic.
	for _, row := range rep.Rows {
		parts := strings.Split(row[4], "/")
		syn, _ := strconv.ParseInt(parts[0], 10, 64)
		cb, _ := strconv.ParseInt(parts[1], 10, 64)
		if cb > syn {
			t.Errorf("%q: cost-based joined more rows (%d) than syntactic (%d)", row[0], cb, syn)
		}
	}
}

func TestRunT4(t *testing.T) {
	rep, err := RunT4(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("T4 rows = %d", len(rep.Rows))
	}
	// 0-edit accuracy must be ~100%; 1-edit ≥ 99%.
	acc0, _ := strconv.ParseFloat(strings.TrimSuffix(rep.Rows[0][4], "%"), 64)
	acc1, _ := strconv.ParseFloat(strings.TrimSuffix(rep.Rows[1][4], "%"), 64)
	if acc0 < 99.9 {
		t.Errorf("0-edit accuracy %.1f%%", acc0)
	}
	if acc1 < 99 {
		t.Errorf("1-edit accuracy %.1f%%", acc1)
	}
}

func TestRunT8(t *testing.T) {
	rep, err := RunT8(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("T8 rows = %d, want 2", len(rep.Rows))
	}
	avail := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatalf("bad availability cell %q", row[1])
		}
		return v
	}
	wasted := func(row []string) int64 {
		v, err := strconv.ParseInt(row[5], 10, 64)
		if err != nil {
			t.Fatalf("bad wasted cell %q", row[5])
		}
		return v
	}
	res, naive := rep.Rows[0], rep.Rows[1]
	// The headline claim: resilience keeps ≥99% of rounds answered
	// through a 30%-of-wall-clock outage; the naive stack does not.
	if avail(res) < 99 {
		t.Errorf("resilient availability %.1f%% < 99%%", avail(res))
	}
	if avail(naive) >= avail(res) {
		t.Errorf("naive availability %.1f%% not below resilient %.1f%%", avail(naive), avail(res))
	}
	// The cost: some rounds served stale (degraded > 0).
	deg, _ := strconv.ParseFloat(strings.TrimSuffix(res[3], "%"), 64)
	if deg <= 0 {
		t.Error("resilient mode reported no degraded rounds under a 36s outage")
	}
	// Breaker + backoff must cut wasted traffic.
	if wasted(res) >= wasted(naive) {
		t.Errorf("resilient wasted %d ≥ naive %d", wasted(res), wasted(naive))
	}
	trips, _ := strconv.ParseInt(res[6], 10, 64)
	if trips == 0 {
		t.Error("breakers never tripped")
	}
}

func TestRunT10(t *testing.T) {
	rep, err := RunT10(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 6 query classes + 2 subtree-filter sizes.
	if len(rep.Rows) != 8 {
		t.Fatalf("T10 rows = %d, want 8", len(rep.Rows))
	}
	speedup := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[4])
		}
		return v
	}
	// The committed expectation is ≥2x on every scan/filter-heavy
	// class (t10SpeedupFloor). Shared CI runners are noisy, so the
	// hard gate per class sits at 75% of the floor, with the floor
	// itself required of the majority — a real regression drags every
	// class down, noise drags one.
	scanRows := rep.Rows[1:4]
	scanRows = append(scanRows, rep.Rows[6], rep.Rows[7])
	atFloor := 0
	for _, row := range scanRows {
		sp := speedup(row)
		if sp < 0.75*t10SpeedupFloor {
			t.Errorf("scan-heavy class %q speedup %.1fx, committed floor %.0fx", row[0], sp, t10SpeedupFloor)
		}
		if sp >= t10SpeedupFloor {
			atFloor++
		}
	}
	if atFloor < (len(scanRows)+1)/2 {
		t.Errorf("only %d/%d scan-heavy classes reached the %.0fx floor", atFloor, len(scanRows), t10SpeedupFloor)
	}
	// Point lookups must stay at parity: both engines serve them off
	// the index in microseconds, so anything past 2x either way is an
	// engine regression, not noise.
	if sp := speedup(rep.Rows[0]); sp < 0.5 {
		t.Errorf("vectorized point lookup %.1fx slower than row engine", 1/sp)
	}
	if rep.Notes == "" {
		t.Error("T10 report has no notes")
	}
}

func TestF1SmallScale(t *testing.T) {
	// Full F1 sweeps to 50k leaves; the test checks the property at
	// two sizes: the naive/optimized gap grows with tree size.
	gap := func(n int) float64 {
		naive, err := F1Engine(n, 1, query.NaiveOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := F1Engine(n, 1, query.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		clade := f1PickClades(naive.Tree())[0]
		q := "SELECT pre FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '" + clade + "')"
		dn, err := MeasureQuery(context.Background(), naive, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		do, err := MeasureQuery(context.Background(), opt, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		return float64(dn) / float64(do)
	}
	small := gap(200)
	large := gap(5000)
	if large <= small {
		t.Logf("warning: speedup at 5000 leaves (%.1fx) not above 200 leaves (%.1fx) — timing noise", large, small)
	}
	if large < 2 {
		t.Errorf("optimized engine only %.1fx faster at 5000 leaves", large)
	}
}

func TestF2SmallScale(t *testing.T) {
	// 300-leaf, 60-step version of F2: semantic cache must hit more
	// than exact-only, which must hit ≥ no cache (0).
	hitRate := func(fc F2Config) float64 {
		e, err := F2Engine(300, 1, fc)
		if err != nil {
			t.Fatal(err)
		}
		trace := GenerateTrace(e.Tree(), 60, 2)
		_, hits, err := RunSession(context.Background(), e, trace, fc.Prefetch)
		if err != nil {
			t.Fatal(err)
		}
		return float64(hits) / 60
	}
	none := hitRate(F2Config{Name: "none"})
	exact := hitRate(F2Config{Name: "exact", Cache: true, ExactOnly: true})
	semantic := hitRate(F2Config{Name: "semantic", Cache: true})
	prefetch := hitRate(F2Config{Name: "prefetch", Cache: true, Prefetch: true})
	if none != 0 {
		t.Errorf("no-cache hit rate = %g", none)
	}
	if semantic <= exact {
		t.Errorf("semantic (%.2f) not above exact-only (%.2f)", semantic, exact)
	}
	if prefetch < semantic {
		t.Errorf("prefetch (%.2f) below semantic (%.2f)", prefetch, semantic)
	}
	if prefetch < 0.5 {
		t.Errorf("full stack hit rate only %.2f", prefetch)
	}
}

func TestF3SmallScale(t *testing.T) {
	e, err := F3Engine(1)
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(e.Tree(), 10, 3)
	full, n, err := f3RunStrategy(context.Background(), e, mobile.StrategyFull, 0, trace)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetSession()
	lod, _, err := f3RunStrategy(context.Background(), e, mobile.StrategyLOD, 100, trace)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetSession()
	delta, _, err := f3RunStrategy(context.Background(), e, mobile.StrategyLODDelta, 100, trace)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("interactions = %d", n)
	}
	if !(delta < lod && lod < full) {
		t.Fatalf("byte ordering wrong: delta=%d lod=%d full=%d", delta, lod, full)
	}
	if full < 10*lod {
		t.Errorf("LOD saved less than 10x on a 2000-leaf tree: full=%d lod=%d", full, lod)
	}
}

func TestF4SmallScale(t *testing.T) {
	// 500-leaf, short session: full stack must beat naive everything
	// on modelled 3G by a wide margin.
	fullCfg := F4Configs()[0]
	naiveCfg := F4Configs()[len(F4Configs())-1]
	fullHist, err := RunF4Session(context.Background(), 500, 1, fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	naiveHist, err := RunF4Session(context.Background(), 500, 1, naiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	if naiveHist.Mean() < 2*fullHist.Mean() {
		t.Errorf("naive mean %v not ≥2x full-stack mean %v", naiveHist.Mean(), fullHist.Mean())
	}
	if fullHist.Count() != int64(F4Steps) {
		t.Errorf("histogram count = %d", fullHist.Count())
	}
}

func TestGenerateTraceProperties(t *testing.T) {
	e, err := F2Engine(200, 5, F2Config{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	trace := GenerateTrace(e.Tree(), 100, 7)
	if len(trace) != 100 {
		t.Fatalf("trace length = %d", len(trace))
	}
	// Deterministic.
	trace2 := GenerateTrace(e.Tree(), 100, 7)
	for i := range trace {
		if trace[i] != trace2[i] {
			t.Fatal("trace not deterministic")
		}
	}
	// All names resolve.
	for _, name := range trace {
		if _, err := e.NodeByName(name); err != nil {
			t.Fatalf("trace step %q does not resolve", name)
		}
	}
}

func TestRunT9(t *testing.T) {
	rep, err := RunT9(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 modes × 4 loads.
	if len(rep.Rows) != 12 {
		t.Fatalf("T9 rows = %d, want 12", len(rep.Rows))
	}
	goodput := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad goodput cell %q", row[3])
		}
		return v
	}
	// Row layout: unprotected 0..3, shed-fifo 4..7, shed-lifo 8..11;
	// loads 0.5/1/2/3 within each. The headline claim: at 3x
	// saturation the shedding limiter retains most of its peak goodput
	// while the unprotected queue collapses.
	un3x, fifo3x := rep.Rows[3], rep.Rows[7]
	if goodput(fifo3x) < 4*goodput(un3x) {
		t.Errorf("shedding goodput %.0f not well above unprotected %.0f at 3x",
			goodput(fifo3x), goodput(un3x))
	}
	if rep.Notes == "" {
		t.Error("T9 report has no notes")
	}
}

func TestRunT11(t *testing.T) {
	rep, err := RunT11(context.Background(), 1)
	if err != nil {
		// RunT11 verifies sharded-vs-single row identity and shard
		// pruning inline: any divergence surfaces here as an error.
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("T11 rows = %d, want 4", len(rep.Rows))
	}
	speedup := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[3])
		}
		return v
	}
	// The ≥1.5x scatter expectation needs real parallel hardware:
	// four shard goroutines on one core do the same total work. Gate
	// only when the host can actually run the fan-out concurrently,
	// and at 75% of the floor to absorb shared-runner noise (the same
	// stance TestRunT10 takes).
	if runtime.NumCPU() >= 4 {
		for _, row := range rep.Rows {
			for _, cls := range t11Classes() {
				if cls.name == row[0] && cls.scatter {
					if sp := speedup(row); sp < 0.75*t11SpeedupFloor {
						t.Errorf("scatter class %q speedup %.1fx, committed floor %.1fx", row[0], sp, t11SpeedupFloor)
					}
				}
			}
		}
	}
	// Pruned point lookups must stay within a small constant of the
	// single-node engine on any hardware: the coordinator routes them
	// to one shard, so the gap is its fixed classify-and-clone cost
	// (~10µs) on a ~10µs query — anything past 4x is the pruning
	// logic regressing into a full fan-out, not noise.
	if sp := speedup(rep.Rows[0]); sp < 0.25 {
		t.Errorf("pruned point lookup %.1fx slower sharded than single-node", 1/sp)
	}
	if rep.Notes == "" {
		t.Error("T11 report has no notes")
	}
}

func TestRunT12(t *testing.T) {
	rep, err := RunT12(context.Background(), 1)
	if err != nil {
		// RunT12 enforces its claims inline — zero failed reads under
		// chaos, staleness within the bound, exactly one promotion, a
		// re-seed on the bumped-term rejoin, and post-quiesce row
		// identity — so any broken claim surfaces here.
		t.Fatal(err)
	}
	cells := map[string]string{}
	for _, row := range rep.Rows {
		cells[row[0]] = row[1]
	}
	if cells["failed reads"] != "0" {
		t.Errorf("failed reads = %s, want 0", cells["failed reads"])
	}
	if cells["max served staleness (WAL records)"] != "0" {
		t.Errorf("served staleness = %s, want 0", cells["max served staleness (WAL records)"])
	}
	if cells["promotions"] != "1" {
		t.Errorf("promotions = %s, want 1", cells["promotions"])
	}
	if cells["snapshot re-seeds (rejoin on bumped term)"] == "0" {
		t.Error("no snapshot re-seed recorded for the bumped-term rejoin")
	}
	if rep.Notes == "" {
		t.Error("T12 report has no notes")
	}
}
