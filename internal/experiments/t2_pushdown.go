package experiments

import (
	"context"
	"fmt"

	"drugtree/internal/datagen"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// RunT2 measures remote-source traffic with and without predicate
// pushdown at three selectivities. Without pushdown the mediator
// drains the source and filters locally; with pushdown the source
// evaluates the predicate and ships only matches.
func RunT2(ctx context.Context, seed int64) (*Report, error) {
	gen := datagen.DefaultConfig()
	gen.Seed = seed
	gen.NumFamilies = 40 // family filter selects 1/40 = 2.5%
	gen.ProteinsPerFamily = 25
	gen.NumLigands = 50
	gen.ActivityDensity = 0.2
	ds, err := datagen.Generate(gen)
	if err != nil {
		return nil, err
	}

	type scenario struct {
		name    string
		source  func(b *source.Bundle) source.Source
		filters []source.Filter
		// selects estimates the matching fraction for the notes.
		keep func(r store.Row, s *store.Schema) bool
	}
	scenarios := []scenario{
		{
			name:   "proteins: family = FAM00 (≈2.5%)",
			source: func(b *source.Bundle) source.Source { return b.Proteins },
			filters: []source.Filter{{
				Column: "family", Op: source.OpEQ, Value: store.StringValue("FAM00"),
			}},
			keep: func(r store.Row, s *store.Schema) bool {
				return r[s.ColumnIndex("family")].S == "FAM00"
			},
		},
		{
			name:   "activities: affinity ≥ 9 (≈15%)",
			source: func(b *source.Bundle) source.Source { return b.Activities },
			filters: []source.Filter{{
				Column: "affinity", Op: source.OpGE, Value: store.FloatValue(9),
			}},
			keep: func(r store.Row, s *store.Schema) bool {
				return r[s.ColumnIndex("affinity")].F >= 9
			},
		},
		{
			name:   "ligands: weight ≥ 220 (≈40%)",
			source: func(b *source.Bundle) source.Source { return b.Ligands },
			filters: []source.Filter{{
				Column: "weight", Op: source.OpGE, Value: store.FloatValue(220),
			}},
			keep: func(r store.Row, s *store.Schema) bool {
				return r[s.ColumnIndex("weight")].F >= 220
			},
		},
	}

	rep := &Report{
		ID:     "T2",
		Title:  "Remote-source traffic with vs without predicate pushdown (4G link model)",
		Header: []string{"query", "mode", "requests", "rows moved", "bytes down", "modelled time"},
	}
	var worstRatio float64 = 1
	for _, sc := range scenarios {
		// Without pushdown: drain everything, filter at the mediator.
		bundleA := source.NewBundle(ds, netsim.Profile4G, seed, true)
		srcA := sc.source(bundleA)
		rows, err := source.FetchAll(ctx, srcA, nil)
		if err != nil {
			return nil, err
		}
		kept := 0
		for _, r := range rows {
			if sc.keep(r, srcA.Schema()) {
				kept++
			}
		}
		stA := srcA.Stats()

		// With pushdown.
		bundleB := source.NewBundle(ds, netsim.Profile4G, seed, true)
		srcB := sc.source(bundleB)
		pushRows, err := source.FetchAll(ctx, srcB, sc.filters)
		if err != nil {
			return nil, err
		}
		stB := srcB.Stats()
		if len(pushRows) != kept {
			return nil, fmt.Errorf("T2 %s: pushdown returned %d rows, local filter %d", sc.name, len(pushRows), kept)
		}
		rep.Rows = append(rep.Rows,
			[]string{sc.name, "fetch-all", fmt.Sprint(stA.Requests), fmt.Sprint(stA.RowsMoved),
				fmt.Sprint(stA.BytesDown), fmtMs(float64(stA.Elapsed.Microseconds()) / 1e3)},
			[]string{"", "pushdown", fmt.Sprint(stB.Requests), fmt.Sprint(stB.RowsMoved),
				fmt.Sprint(stB.BytesDown), fmtMs(float64(stB.Elapsed.Microseconds()) / 1e3)},
		)
		if ratio := float64(stA.BytesDown) / float64(stB.BytesDown); ratio > worstRatio {
			worstRatio = ratio
		}
	}
	rep.Notes = fmt.Sprintf("expectation: bytes moved shrink ≈ 1/selectivity under pushdown; best reduction observed %.0fx", worstRatio)
	return rep, nil
}
