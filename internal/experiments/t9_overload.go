package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"drugtree/internal/admission"
	"drugtree/internal/netsim"
)

// T9 overload experiment: a discrete-event simulation of the query
// tier on a virtual clock — Poisson arrivals against a fixed worker
// pool with a 100ms interactive deadline — comparing an unprotected
// unbounded FIFO queue against the admission limiter's deadline-aware
// shedding (FIFO and LIFO wait queues).
//
// The claim under test is the load-shedding tradeoff: past
// saturation, an unprotected queue keeps accepting work it can no
// longer finish in time, so *goodput* (replies within deadline)
// collapses even though throughput stays at capacity. A limiter that
// refuses requests predicted to miss their deadline keeps goodput at
// ~capacity and the served tail bounded, at the price of explicit
// sheds the client can retry against.
const (
	// t9Workers × 1/t9Service = 400 qps saturation.
	t9Workers  = 4
	t9Service  = 10 * time.Millisecond
	t9Deadline = 100 * time.Millisecond
	t9Duration = 10 * time.Second
	// t9Queue is deep enough that deadline-based shedding binds long
	// before the queue-full bound (ETA exceeds the deadline at ~36
	// waiters).
	t9Queue = 64
)

// t9Capacity is the pool's saturation throughput in requests/second.
func t9Capacity() float64 {
	return float64(t9Workers) / t9Service.Seconds()
}

// t9Arrivals draws a seeded Poisson arrival process at load×capacity
// over the experiment window.
func t9Arrivals(seed int64, load float64) []time.Duration {
	rate := load * t9Capacity()
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	t := time.Duration(0)
	for {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= t9Duration {
			return out
		}
		out = append(out, t)
	}
}

// t9Cell is one (mode, load) measurement.
type t9Cell struct {
	offered   float64 // arrival rate, qps
	goodput   float64 // replies within deadline, qps
	completed int
	late      int // completed past deadline
	shed      int
	p50, p99  time.Duration // latency of completed requests
}

func t9Percentiles(lats []time.Duration, cell *t9Cell) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	cell.p50 = lats[len(lats)/2]
	cell.p99 = lats[len(lats)*99/100]
}

// t9RunUnprotected serves every arrival through an unbounded FIFO
// queue: nothing is refused, so queueing delay past saturation grows
// without bound and requests finish long after their deadlines.
func t9RunUnprotected(arrivals []time.Duration) *t9Cell {
	cell := &t9Cell{offered: float64(len(arrivals)) / t9Duration.Seconds()}
	free := make([]time.Duration, t9Workers)
	lats := make([]time.Duration, 0, len(arrivals))
	for _, arr := range arrivals {
		wi := 0
		for i := 1; i < t9Workers; i++ {
			if free[i] < free[wi] {
				wi = i
			}
		}
		start := arr
		if free[wi] > start {
			start = free[wi]
		}
		fin := start + t9Service
		free[wi] = fin
		lat := fin - arr
		lats = append(lats, lat)
		cell.completed++
		if lat > t9Deadline {
			cell.late++
		}
	}
	cell.goodput = float64(cell.completed-cell.late) / t9Duration.Seconds()
	t9Percentiles(lats, cell)
	return cell
}

// t9RunProtected drives the same arrivals through an admission
// limiter on a virtual clock, polling non-blocking tickets from a
// single-threaded event loop (completions are applied before
// arrivals at equal timestamps, and pending tickets resolve in
// arrival order, so the run is deterministic).
func t9RunProtected(ctx context.Context, arrivals []time.Duration, policy admission.Policy) (*t9Cell, error) {
	vc := netsim.NewVirtualClock()
	lim := admission.NewLimiter(admission.Config{
		Name:           "t9",
		MaxConcurrency: t9Workers,
		MaxQueue:       t9Queue,
		Policy:         policy,
		Clock:          vc,
	})

	type inflight struct {
		fin     time.Duration
		arr     time.Duration
		release func()
	}
	type waiting struct {
		tk  *admission.Ticket
		arr time.Duration
	}
	cell := &t9Cell{offered: float64(len(arrivals)) / t9Duration.Seconds()}
	var running []inflight
	var pending []waiting
	lats := make([]time.Duration, 0, len(arrivals))

	begin := func(arr time.Duration, release func()) {
		running = append(running, inflight{fin: vc.Now() + t9Service, arr: arr, release: release})
	}
	// poll resolves any tickets the limiter decided (admitted or shed)
	// since the last event.
	poll := func() {
		kept := pending[:0]
		for _, w := range pending {
			select {
			case fn := <-w.tk.C():
				if fn == nil {
					cell.shed++
				} else {
					begin(w.arr, fn)
				}
			default:
				kept = append(kept, w)
			}
		}
		pending = kept
	}

	next := 0
	for next < len(arrivals) || len(running) > 0 || len(pending) > 0 {
		nextFin := time.Duration(-1)
		fi := -1
		for i := range running {
			if fi < 0 || running[i].fin < nextFin {
				nextFin, fi = running[i].fin, i
			}
		}
		switch {
		case next < len(arrivals) && (fi < 0 || arrivals[next] < nextFin):
			arr := arrivals[next]
			next++
			vc.AdvanceTo(arr)
			reqCtx := admission.WithDeadlineAt(ctx, arr+t9Deadline)
			tk, err := lim.Begin(reqCtx, 1)
			if err != nil {
				cell.shed++
				continue
			}
			select {
			case fn := <-tk.C():
				if fn == nil {
					cell.shed++
				} else {
					begin(arr, fn)
				}
			default:
				pending = append(pending, waiting{tk, arr})
			}
		case fi >= 0:
			f := running[fi]
			running = append(running[:fi], running[fi+1:]...)
			vc.AdvanceTo(f.fin)
			f.release()
			lat := f.fin - f.arr
			lats = append(lats, lat)
			cell.completed++
			if lat > t9Deadline {
				cell.late++
			}
			poll()
		default:
			// Queued waiters with no work running and no arrivals left
			// cannot progress — the limiter would have admitted them on
			// the last release, so this indicates a bug.
			return nil, fmt.Errorf("T9: %d tickets stranded in queue", len(pending))
		}
	}
	cell.goodput = float64(cell.completed-cell.late) / t9Duration.Seconds()
	t9Percentiles(lats, cell)
	return cell, nil
}

// T9Mode runs one protection mode across the load sweep (exported for
// bench_test.go). Mode is "unprotected", "shed-fifo" or "shed-lifo".
func T9Mode(ctx context.Context, seed int64, mode string, loads []float64) ([]*t9Cell, error) {
	cells := make([]*t9Cell, 0, len(loads))
	for _, load := range loads {
		arrivals := t9Arrivals(seed, load)
		var cell *t9Cell
		var err error
		switch mode {
		case "unprotected":
			cell = t9RunUnprotected(arrivals)
		case "shed-fifo":
			cell, err = t9RunProtected(ctx, arrivals, admission.FIFO)
		case "shed-lifo":
			cell, err = t9RunProtected(ctx, arrivals, admission.LIFO)
		default:
			err = fmt.Errorf("T9: unknown mode %q", mode)
		}
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RunT9 measures goodput and tail latency across a load sweep with
// admission control off vs on.
func RunT9(ctx context.Context, seed int64) (*Report, error) {
	loads := []float64{0.5, 1, 2, 3}
	modes := []string{"unprotected", "shed-fifo", "shed-lifo"}

	rep := &Report{
		ID:     "T9",
		Title:  "Overload: goodput and tail latency, unprotected queue vs deadline-aware shedding",
		Header: []string{"mode", "load", "offered qps", "goodput qps", "shed", "late", "p50", "p99"},
	}
	results := map[string][]*t9Cell{}
	for _, mode := range modes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cells, err := T9Mode(ctx, seed, mode, loads)
		if err != nil {
			return nil, err
		}
		results[mode] = cells
		for i, c := range cells {
			rep.Rows = append(rep.Rows, []string{
				mode,
				fmt.Sprintf("%.1fx", loads[i]),
				fmt.Sprintf("%.0f", c.offered),
				fmt.Sprintf("%.0f", c.goodput),
				fmt.Sprint(c.shed),
				fmt.Sprint(c.late),
				fmtMs(float64(c.p50.Microseconds()) / 1e3),
				fmtMs(float64(c.p99.Microseconds()) / 1e3),
			})
		}
	}

	peak := func(cells []*t9Cell) float64 {
		best := 0.0
		for _, c := range cells {
			if c.goodput > best {
				best = c.goodput
			}
		}
		return best
	}
	// Acceptance: with shedding on, goodput at ≥2× saturation holds
	// ≥80% of its peak and the served tail stays bounded near the
	// deadline; the unprotected queue collapses; shedding is load-
	// proportional (none below saturation, plenty past it).
	unPeak := peak(results["unprotected"])
	for _, mode := range []string{"shed-fifo", "shed-lifo"} {
		cells := results[mode]
		p := peak(cells)
		for i, load := range loads {
			c := cells[i]
			if load >= 2 {
				if c.goodput < 0.8*p {
					return nil, fmt.Errorf("T9: %s goodput %.0f qps at %.1fx below 80%% of peak %.0f",
						mode, c.goodput, load, p)
				}
				if c.p99 > 3*t9Deadline/2 {
					return nil, fmt.Errorf("T9: %s p99 %v at %.1fx exceeds 1.5x deadline", mode, c.p99, load)
				}
				if c.shed == 0 {
					return nil, fmt.Errorf("T9: %s shed nothing at %.1fx saturation", mode, load)
				}
			}
			if load <= 0.5 && c.shed != 0 {
				return nil, fmt.Errorf("T9: %s shed %d requests at %.1fx (underload)", mode, c.shed, load)
			}
		}
	}
	unFinal := results["unprotected"][len(loads)-1]
	if unFinal.goodput > 0.5*unPeak {
		return nil, fmt.Errorf("T9: unprotected goodput %.0f qps at %.1fx did not collapse (peak %.0f)",
			unFinal.goodput, loads[len(loads)-1], unPeak)
	}

	fifo2x := results["shed-fifo"][2]
	rep.Notes = fmt.Sprintf(
		"Saturation %.0f qps. At 2x load shedding holds %.0f qps goodput (p99 %v) while the unprotected queue decays to %.0f qps (p99 %v).",
		t9Capacity(), fifo2x.goodput, fifo2x.p99,
		results["unprotected"][2].goodput, results["unprotected"][2].p99)
	return rep, nil
}
