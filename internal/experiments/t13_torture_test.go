package experiments

import (
	"context"
	"strconv"
	"testing"

	"drugtree/internal/vfs"
)

// TestRunT13 gates the torture matrix: at least 200 distinct crash
// points enumerated, and zero durability violations at any of them.
// RunT13 enforces both inline and errors with the failing seed +
// crash-point index, so any broken claim surfaces here replayably.
func TestRunT13(t *testing.T) {
	rep, err := RunT13(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range rep.Rows {
		if row[0] == "TOTAL" {
			continue
		}
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("unparseable crash-point count %q", row[2])
		}
		total += n
		if row[3] != "0" {
			t.Errorf("workload %s policy %s reports %s violations", row[0], row[1], row[3])
		}
	}
	if total < 200 {
		t.Fatalf("T13 enumerated %d crash points, want >= 200", total)
	}
	if rep.Notes == "" {
		t.Error("T13 report has no notes")
	}
}

// TestT13HarnessHasTeeth re-breaks a real durability bug — the
// directory fsync after atomic renames and WAL creation, removed via
// the vfs.NoDirSync decorator — and asserts the torture matrix
// catches it. Without the parent-dir sync, a renamed snapshot or a
// freshly created WAL file can vanish at power loss while the WAL
// truncation survives, losing acknowledged writes under
// -wal-sync=always. If this test ever finds zero violations, the
// harness has gone soft and T13's zero-violation gate proves nothing.
func TestT13HarnessHasTeeth(t *testing.T) {
	_, total, violations, err := t13Matrix(context.Background(), 1, vfs.NoDirSync)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no crash points enumerated")
	}
	if len(violations) == 0 {
		t.Fatal("reverting the dir-fsync produced zero violations: the crash model is not enforcing entry durability")
	}
	t.Logf("dir-fsync revert caught: %d violations over %d points; first: %s", len(violations), total, violations[0])
}
