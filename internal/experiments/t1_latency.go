package experiments

import (
	"context"
	"fmt"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/query"
)

// t1Classes are the five interactive query classes the poster's
// "lags" manifest in. Each template receives dataset-specific
// arguments at run time.
type t1Class struct {
	name string
	// mk builds the DTQL for the class given an engine.
	mk func(e *core.Engine) string
}

func t1QueryClasses() []t1Class {
	return []t1Class{
		{"point lookup", func(e *core.Engine) string {
			return "SELECT * FROM proteins WHERE accession = 'DT00007'"
		}},
		{"subtree retrieval", func(e *core.Engine) string {
			clade := t1MidClade(e)
			return fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s')", clade)
		}},
		{"overlay join", func(e *core.Engine) string {
			clade := t1MidClade(e)
			return fmt.Sprintf(`SELECT t.name, a.affinity FROM tree_nodes t
				JOIN activities a ON t.name = a.protein_id
				WHERE WITHIN_SUBTREE(t.pre, '%s') AND t.is_leaf = TRUE`, clade)
		}},
		{"top-k affinity", func(e *core.Engine) string {
			return `SELECT protein_id, ligand_id, affinity FROM activities
				WHERE affinity >= 8 ORDER BY affinity DESC LIMIT 10`
		}},
		{"3-source integration", func(e *core.Engine) string {
			return `SELECT p.accession, n.organism, l.weight, a.affinity
				FROM proteins p
				JOIN activities a ON p.accession = a.protein_id
				JOIN ligands l ON a.ligand_id = l.ligand_id
				JOIN annotations n ON p.accession = n.protein_id
				WHERE p.family = 'FAM01' AND a.affinity >= 7`
		}},
	}
}

// t1MidClade picks a mid-sized clade (≈ a family subtree) so the
// subtree queries are neither trivial nor the whole tree.
func t1MidClade(e *core.Engine) string {
	t := e.Tree()
	total := len(t.Leaves())
	best := t.Root()
	bestDiff := total
	for i := 0; i < t.Len(); i++ {
		id := t.NodeAtPre(i)
		if t.Node(id).IsLeaf() {
			continue
		}
		lc := t.LeafCount(id)
		diff := lc - total/4
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			best = id
		}
	}
	return t.Node(best).Name
}

// MeasureQuery runs a query repeatedly and returns the mean latency
// read from the experiment clock.
func MeasureQuery(ctx context.Context, e *core.Engine, dtql string, reps int) (time.Duration, error) {
	// Warm once (and validate).
	if _, err := e.Query(ctx, dtql); err != nil {
		return 0, err
	}
	start := clock.Now()
	for i := 0; i < reps; i++ {
		if _, err := e.Query(ctx, dtql); err != nil {
			return 0, err
		}
	}
	return (clock.Now() - start) / time.Duration(reps), nil
}

// T1Engines builds the naive/optimized engine pair over the same
// dataset (shared helper with bench_test.go).
func T1Engines(ctx context.Context, seed int64) (naive, opt *core.Engine, err error) {
	naiveCfg := core.Config{
		Method:       core.TreeNJKmer,
		QueryOptions: query.NaiveOptions(),
	}
	optCfg := core.DefaultConfig()
	optCfg.Method = core.TreeNJKmer
	optCfg.CacheBytes = 0 // isolate the optimizer; caching is F2's subject
	naive, _, err = buildStandardEngine(ctx, seed, 10, 20, 60, naiveCfg)
	if err != nil {
		return nil, nil, err
	}
	opt, _, err = buildStandardEngine(ctx, seed, 10, 20, 60, optCfg)
	if err != nil {
		return nil, nil, err
	}
	return naive, opt, nil
}

// RunT1 measures the five query classes on the naive and optimized
// engines over a 200-protein dataset.
func RunT1(ctx context.Context, seed int64) (*Report, error) {
	naive, opt, err := T1Engines(ctx, seed)
	if err != nil {
		return nil, err
	}
	const reps = 20
	rep := &Report{
		ID:     "T1",
		Title:  "Query latency by class (200 proteins, 10 families, mean of 20 runs)",
		Header: []string{"query class", "naive", "optimized", "speedup"},
	}
	worstClass, bestSpeedup := "", 0.0
	for _, cls := range t1QueryClasses() {
		qn := cls.mk(naive)
		qo := cls.mk(opt)
		dn, err := MeasureQuery(ctx, naive, qn, reps)
		if err != nil {
			return nil, fmt.Errorf("T1 %s naive: %w", cls.name, err)
		}
		do, err := MeasureQuery(ctx, opt, qo, reps)
		if err != nil {
			return nil, fmt.Errorf("T1 %s optimized: %w", cls.name, err)
		}
		speedup := float64(dn) / float64(do)
		if speedup > bestSpeedup {
			bestSpeedup, worstClass = speedup, cls.name
		}
		rep.Rows = append(rep.Rows, []string{
			cls.name,
			fmtDur(float64(dn.Nanoseconds()) / 1e3),
			fmtDur(float64(do.Nanoseconds()) / 1e3),
			fmt.Sprintf("%.1fx", speedup),
		})
	}
	rep.Notes = fmt.Sprintf("expectation: optimized wins every class; largest factor here: %s (%.1fx)",
		worstClass, bestSpeedup)
	return rep, nil
}
