package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/metrics"
	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// GenerateTrace produces a navigation trace over the tree: a random
// walk mixing zooms into children (the dominant move), sibling pans,
// pops back to the parent, and occasional jumps — the access pattern
// interactive phylogeny browsing produces.
func GenerateTrace(t *phylo.Tree, steps int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var internal []phylo.NodeID
	for i := 0; i < t.Len(); i++ {
		if !t.Node(phylo.NodeID(i)).IsLeaf() {
			internal = append(internal, phylo.NodeID(i))
		}
	}
	cur := t.Root()
	out := make([]string, 0, steps)
	for len(out) < steps {
		out = append(out, t.Node(cur).Name)
		node := t.Node(cur)
		r := rng.Float64()
		switch {
		case r < 0.60 && len(node.Children) > 0:
			// Zoom: weighted toward the largest child.
			best := node.Children[0]
			for _, c := range node.Children {
				if t.LeafCount(c) > t.LeafCount(best) && rng.Float64() < 0.7 {
					best = c
				}
			}
			if rng.Float64() < 0.3 {
				best = node.Children[rng.Intn(len(node.Children))]
			}
			cur = best
		case r < 0.85 && node.Parent != phylo.None:
			// Pan: a sibling.
			siblings := t.Node(node.Parent).Children
			cur = siblings[rng.Intn(len(siblings))]
		case r < 0.95 && node.Parent != phylo.None:
			cur = node.Parent
		default:
			cur = internal[rng.Intn(len(internal))]
		}
		// Leaves terminate a drill-down: pop back up.
		if t.Node(cur).IsLeaf() && t.Node(cur).Parent != phylo.None {
			cur = t.Node(cur).Parent
		}
	}
	return out
}

// F2Config is one cache configuration under test.
type F2Config struct {
	Name      string
	Cache     bool
	ExactOnly bool
	Prefetch  bool
}

// F2Configs lists the ablation ladder.
func F2Configs() []F2Config {
	return []F2Config{
		{Name: "no cache"},
		{Name: "exact-match cache", Cache: true, ExactOnly: true},
		{Name: "semantic cache", Cache: true},
		{Name: "semantic cache + prefetch", Cache: true, Prefetch: true},
	}
}

// F2Engine builds the session engine for one config.
func F2Engine(leaves int, seed int64, fc F2Config) (*core.Engine, error) {
	tree, err := datagen.RandomTopology(leaves, seed)
	if err != nil {
		return nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.EnablePrefetch = fc.Prefetch
	cfg.CacheExactOnly = fc.ExactOnly
	if !fc.Cache {
		cfg.CacheBytes = 0
	} else {
		// Deliberately smaller than the whole tree's row footprint at
		// the 1000-leaf experiment scale: a root visit must not
		// trivially subsume every later interaction, and eviction
		// pressure is part of what the experiment measures.
		cfg.CacheBytes = 64 << 10
	}
	return core.NewWithTree(db, tree, cfg)
}

// RunSession replays the trace, returning the latency histogram and
// the hit count.
func RunSession(ctx context.Context, e *core.Engine, trace []string, prefetchAfterEach bool) (*metrics.Histogram, int, error) {
	hist := &metrics.Histogram{}
	hits := 0
	for _, node := range trace {
		start := clock.Now()
		_, cached, err := e.OpenSubtree(ctx, node)
		if err != nil {
			return nil, 0, err
		}
		hist.Record(clock.Now() - start)
		if cached {
			hits++
		}
		if prefetchAfterEach {
			// Synchronous here so measurements are deterministic; the
			// production server overlaps it with client think time.
			e.RunPrefetch(ctx)
		}
	}
	return hist, hits, nil
}

// RunF2 replays a 200-step navigation trace on a 1000-leaf tree under
// the cache ablation ladder.
func RunF2(ctx context.Context, seed int64) (*Report, error) {
	const leaves = 1000
	const steps = 200
	rep := &Report{
		ID:     "F2",
		Title:  fmt.Sprintf("Interactive session: %d-step trace over a %d-leaf tree", steps, leaves),
		Header: []string{"config", "hit rate", "mean", "p50", "p95", "max"},
	}
	var baseMean, bestMean time.Duration
	for _, fc := range F2Configs() {
		e, err := F2Engine(leaves, seed, fc)
		if err != nil {
			return nil, err
		}
		trace := GenerateTrace(e.Tree(), steps, seed+1)
		hist, hits, err := RunSession(ctx, e, trace, fc.Prefetch)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fc.Name,
			fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(steps)),
			fmt.Sprint(hist.Mean().Round(time.Microsecond)),
			fmt.Sprint(hist.Percentile(0.50).Round(time.Microsecond)),
			fmt.Sprint(hist.Percentile(0.95).Round(time.Microsecond)),
			fmt.Sprint(hist.Max().Round(time.Microsecond)),
		})
		if fc.Name == "no cache" {
			baseMean = hist.Mean()
		}
		bestMean = hist.Mean()
	}
	note := "expectation: hit rate climbs down the ladder (subsumption beats exact-match on zoom-ins; prefetch converts first-visit misses)"
	if baseMean > 0 && bestMean > 0 {
		note += fmt.Sprintf("; full stack cut mean latency %.1fx vs no cache", float64(baseMean)/float64(bestMean))
	}
	rep.Notes = note
	return rep, nil
}
