package experiments

import (
	"context"
	"fmt"
	"sort"

	"drugtree/internal/netsim"
	"drugtree/internal/query"
	"drugtree/internal/replica"
	"drugtree/internal/store"
	"drugtree/internal/vfs"
)

// T13 — crash-point torture. Every persistence path in the system
// (store WAL + snapshot, replica seed + shipped apply) runs over a
// deterministic vfs.FaultFS, and the harness enumerates *every*
// mutating filesystem operation in a workload as a power-cut point:
// for each point it re-runs the workload from scratch, cuts power at
// exactly that operation (un-synced bytes vanish), reboots, reopens
// the surviving bytes, and asserts the durability contract of DESIGN
// §10:
//
//   - the recovered table state is a fold of a prefix of the
//     acknowledged operation sequence — no torn row visible, no
//     duplicate, no reordering, nothing applied that was never issued;
//   - with -wal-sync=always the prefix covers every acknowledged op
//     (zero acknowledged loss at any crash point);
//   - with -wal-sync=interval the loss is bounded by the group-commit
//     interval; with -wal-sync=off loss is unbounded but the
//     prefix-fold invariant still holds (crashes lose, never corrupt);
//   - the surviving directory passes store.VerifyDir (crash residue is
//     torn tails, never checksum-bad records);
//   - on the replicated workload the leader always reopens and a
//     follower can always be re-seeded from it afterwards.
//
// Beyond pure crashes, mixed runs land a torn write or a failed fsync
// first and cut power shortly after — the fsyncgate shape: the store
// must have refused to acknowledge what it could not make durable.

// t13SyncEvery is the group-commit interval (records between fsyncs)
// the interval-policy rows run with; it is also the committed loss
// bound for that policy.
const t13SyncEvery = 4

// t13Op is one acknowledged-or-attempted mutation of the torture
// table: an insert or a delete of one keyed row, or an atomic batch
// of those (one CommitDeltas publish). A batch folds all-or-nothing:
// prefix verification can land between batches but never inside one,
// which is exactly the sync-commit atomicity claim — a power cut
// mid-publish recovers to the old version or the new one, never a
// mix.
type t13Op struct {
	del   bool
	id    int64
	batch []t13Op
}

// t13Fold folds the first m ops into the expected id set.
func t13Fold(ops []t13Op, m int) map[int64]bool {
	s := make(map[int64]bool)
	var apply func(op t13Op)
	apply = func(op t13Op) {
		if len(op.batch) > 0 {
			for _, b := range op.batch {
				apply(b)
			}
			return
		}
		if op.del {
			delete(s, op.id)
		} else {
			s[op.id] = true
		}
	}
	for _, op := range ops[:m] {
		apply(op)
	}
	return s
}

// t13Schema is the torture table layout.
func t13Schema() *store.Schema {
	return store.MustSchema(
		store.Column{Name: "id", Kind: store.KindInt},
		store.Column{Name: "v", Kind: store.KindString},
	)
}

func t13Row(id int64) store.Row {
	return store.Row{store.IntValue(id), store.StringValue(fmt.Sprintf("torture-%d", id))}
}

// t13Workload drives one op sequence against stores opened over fsys.
// run returns the attempted op sequence and how many of them were
// acknowledged; it stops at the first error (the injected fault or
// the power cut) and never fails the harness itself.
type t13Workload struct {
	name string
	ship bool // replicated: verify the follower and the re-seed path
	run  func(ctx context.Context, fsys vfs.FS, opts store.Options) (attempted []t13Op, acked int)
}

// t13Insert appends one row through db, book-keeping the op.
func t13Insert(db *store.DB, id int64, rowIDs map[int64]int64, attempted *[]t13Op, acked *int) bool {
	*attempted = append(*attempted, t13Op{id: id})
	rid, err := db.Insert("t", t13Row(id))
	if err != nil {
		return false
	}
	rowIDs[id] = rid
	*acked++
	return true
}

func t13Workloads() []t13Workload {
	return []t13Workload{
		{name: "insert", run: func(ctx context.Context, fsys vfs.FS, opts store.Options) ([]t13Op, int) {
			var attempted []t13Op
			acked := 0
			db, err := store.OpenWith("db", opts)
			if err != nil {
				return attempted, acked
			}
			defer db.Close()
			if _, err := db.CreateTable("t", t13Schema()); err != nil {
				return attempted, acked
			}
			rowIDs := make(map[int64]int64)
			for i := 0; i < 16; i++ {
				if !t13Insert(db, int64(i), rowIDs, &attempted, &acked) {
					return attempted, acked
				}
			}
			return attempted, acked
		}},
		{name: "delete", run: func(ctx context.Context, fsys vfs.FS, opts store.Options) ([]t13Op, int) {
			var attempted []t13Op
			acked := 0
			db, err := store.OpenWith("db", opts)
			if err != nil {
				return attempted, acked
			}
			defer db.Close()
			if _, err := db.CreateTable("t", t13Schema()); err != nil {
				return attempted, acked
			}
			rowIDs := make(map[int64]int64)
			for i := 0; i < 10; i++ {
				if !t13Insert(db, int64(i), rowIDs, &attempted, &acked) {
					return attempted, acked
				}
			}
			for i := 0; i < 10; i += 2 {
				attempted = append(attempted, t13Op{del: true, id: int64(i)})
				if _, err := db.Delete("t", rowIDs[int64(i)]); err != nil {
					return attempted, acked
				}
				acked++
			}
			return attempted, acked
		}},
		{name: "checkpoint", run: func(ctx context.Context, fsys vfs.FS, opts store.Options) ([]t13Op, int) {
			var attempted []t13Op
			acked := 0
			db, err := store.OpenWith("db", opts)
			if err != nil {
				return attempted, acked
			}
			defer db.Close()
			if _, err := db.CreateTable("t", t13Schema()); err != nil {
				return attempted, acked
			}
			rowIDs := make(map[int64]int64)
			for i := 0; i < 6; i++ {
				if !t13Insert(db, int64(i), rowIDs, &attempted, &acked) {
					return attempted, acked
				}
			}
			if err := db.Checkpoint(); err != nil {
				return attempted, acked
			}
			for i := 6; i < 12; i++ {
				if !t13Insert(db, int64(i), rowIDs, &attempted, &acked) {
					return attempted, acked
				}
			}
			if err := db.Checkpoint(); err != nil {
				return attempted, acked
			}
			return attempted, acked
		}},
		{name: "sync-commit", run: func(ctx context.Context, fsys vfs.FS, opts store.Options) ([]t13Op, int) {
			// The integrate.Sync publish shape: each round atomically
			// replaces the previous generation of rows with the next via
			// one CommitDeltas (one WAL batch record). Each round is ONE
			// attempted/acked op whose batch folds all-or-nothing, so any
			// recovered state that mixes two generations fails the
			// prefix-fold check.
			var attempted []t13Op
			acked := 0
			db, err := store.OpenWith("db", opts)
			if err != nil {
				return attempted, acked
			}
			defer db.Close()
			if _, err := db.CreateTable("t", t13Schema()); err != nil {
				return attempted, acked
			}
			var prevRowIDs []int64
			var prevLogical []int64
			for r := 0; r < 5; r++ {
				var batch []t13Op
				delta := store.TableDelta{Table: "t", DeleteIDs: prevRowIDs}
				for _, lid := range prevLogical {
					batch = append(batch, t13Op{del: true, id: lid})
				}
				var logical []int64
				for i := 0; i < 4; i++ {
					lid := int64(100*r + i)
					batch = append(batch, t13Op{id: lid})
					delta.Inserts = append(delta.Inserts, t13Row(lid))
					logical = append(logical, lid)
				}
				attempted = append(attempted, t13Op{batch: batch})
				if err := db.CommitDeltas([]store.TableDelta{delta}); err != nil {
					return attempted, acked
				}
				acked++
				prevRowIDs = prevRowIDs[:0]
				if tab, terr := db.Table("t"); terr == nil {
					tab.Scan(func(rid int64, _ store.Row) bool {
						prevRowIDs = append(prevRowIDs, rid)
						return true
					})
				}
				prevLogical = logical
			}
			return attempted, acked
		}},
		{name: "ship", ship: true, run: func(ctx context.Context, fsys vfs.FS, opts store.Options) ([]t13Op, int) {
			var attempted []t13Op
			acked := 0
			db, err := store.OpenWith("lead", opts)
			if err != nil {
				return attempted, acked
			}
			if _, err := db.CreateTable("t", t13Schema()); err != nil {
				db.Close()
				return attempted, acked
			}
			rowIDs := make(map[int64]int64)
			for i := 0; i < 4; i++ {
				if !t13Insert(db, int64(i), rowIDs, &attempted, &acked) {
					db.Close()
					return attempted, acked
				}
			}
			set, err := replica.NewSet(db, replica.Config{
				Followers:  1,
				MaxLagSeqs: -1,
				Clock:      netsim.NewVirtualClock(),
				OpenEngine: t13Engine,
			}, nil)
			if err != nil {
				db.Close()
				return attempted, acked
			}
			defer set.Close()
			for i := 4; i < 10; i++ {
				attempted = append(attempted, t13Op{id: int64(i)})
				if _, err := set.Insert("t", t13Row(int64(i))); err != nil {
					return attempted, acked
				}
				acked++
			}
			if err := set.Ship(ctx); err != nil {
				return attempted, acked
			}
			for i := 10; i < 14; i++ {
				attempted = append(attempted, t13Op{id: int64(i)})
				if _, err := set.Insert("t", t13Row(int64(i))); err != nil {
					return attempted, acked
				}
				acked++
			}
			if err := set.Ship(ctx); err != nil {
				return attempted, acked
			}
			return attempted, acked
		}},
	}
}

func t13Engine(db *store.DB) *query.Engine {
	return query.NewEngine(query.NewDBCatalog(db, nil), query.Options{})
}

// t13Policy is one -wal-sync policy row of the matrix with its
// committed acknowledged-loss bound (<0 means unbounded).
type t13Policy struct {
	name    string
	pol     store.SyncPolicy
	maxLoss int
}

func t13Policies() []t13Policy {
	return []t13Policy{
		{"always", store.SyncAlways, 0},
		{"interval", store.SyncInterval, t13SyncEvery},
		{"off", store.SyncOff, -1},
	}
}

// t13Mix is one fault mix: how the injector behaves around crash
// point k. The pure crash cuts power at op k; the mixed runs land a
// media fault at op k first and cut power two mutations later, so the
// harness checks that a store which just survived a torn write or a
// failed fsync still refuses to lose what it acknowledged.
type t13Mix struct {
	name   string
	stride int // enumerate every stride-th crash point
	inject func(k int) vfs.Injector
}

func t13Mixes() []t13Mix {
	return []t13Mix{
		{"crash", 1, func(k int) vfs.Injector {
			return func(op vfs.Op) vfs.Fault {
				if op.N == k {
					return vfs.FaultCrash
				}
				return vfs.FaultNone
			}
		}},
		{"torn+crash", 3, func(k int) vfs.Injector {
			return func(op vfs.Op) vfs.Fault {
				if op.N == k && op.Kind == vfs.OpWrite {
					return vfs.FaultTorn
				}
				if op.N == k+2 {
					return vfs.FaultCrash
				}
				return vfs.FaultNone
			}
		}},
		{"syncfail+crash", 3, func(k int) vfs.Injector {
			return func(op vfs.Op) vfs.Fault {
				if op.N == k && op.Kind == vfs.OpSync {
					return vfs.FaultSyncFail
				}
				if op.N == k+2 {
					return vfs.FaultCrash
				}
				return vfs.FaultNone
			}
		}},
	}
}

// t13Violation is one broken durability claim, addressed precisely
// enough to replay: same seed, same workload, same policy, same mix,
// same crash-point index.
type t13Violation struct {
	workload, policy, mix string
	point                 int
	detail                string
}

func (v t13Violation) String() string {
	return fmt.Sprintf("workload=%s policy=%s mix=%s crash-point=%d: %s",
		v.workload, v.policy, v.mix, v.point, v.detail)
}

// t13Cell aggregates one (workload, policy) cell of the report.
type t13Cell struct {
	workload, policy string
	points           int
	violations       int
}

// t13Verify reopens the surviving bytes after a reboot and checks the
// durability contract. It returns "" when every invariant holds.
func t13Verify(fsys *vfs.FaultFS, opts store.Options, dir string, attempted []t13Op, acked, maxLoss int, ship bool) string {
	if _, err := fsys.Stat(dir); err != nil {
		// The crash predates the store directory: the empty state is
		// the fold of the empty prefix, valid only if nothing (beyond
		// the loss bound) was acknowledged.
		if maxLoss >= 0 && acked > maxLoss {
			return fmt.Sprintf("store directory lost with %d acked ops (bound %d)", acked, maxLoss)
		}
		return ""
	}
	if err := store.VerifyDir(fsys, dir); err != nil {
		return fmt.Sprintf("surviving bytes fail verification (crash residue must be torn, not corrupt): %v", err)
	}
	db, err := store.OpenWith(dir, opts)
	if err != nil {
		return fmt.Sprintf("store did not reopen from surviving bytes: %v", err)
	}
	defer db.Close()
	recovered := make(map[int64]bool)
	if tab, err := db.Table("t"); err == nil {
		tab.Scan(func(_ int64, r store.Row) bool {
			recovered[r[0].I] = true
			return true
		})
	}
	// The recovered state must be the fold of some attempted prefix;
	// take the longest matching prefix (minimal implied loss).
	match := -1
	for m := len(attempted); m >= 0; m-- {
		if t13SetEq(recovered, t13Fold(attempted, m)) {
			match = m
			break
		}
	}
	if match < 0 {
		return fmt.Sprintf("recovered state (%d rows) is no prefix fold of the %d attempted ops: torn or reordered apply",
			len(recovered), len(attempted))
	}
	if maxLoss >= 0 && acked-match > maxLoss {
		return fmt.Sprintf("lost %d acknowledged ops (acked=%d, recovered prefix=%d, bound %d)",
			acked-match, acked, match, maxLoss)
	}
	if ship {
		// The leader reopened; the follower must be re-seedable from it
		// regardless of what the crash left in its directory (the
		// scrub/Restart self-heal path quarantines and re-seeds).
		set, err := replica.NewSet(db, replica.Config{
			Followers:  1,
			MaxLagSeqs: -1,
			Clock:      netsim.NewVirtualClock(),
			OpenEngine: t13Engine,
		}, nil)
		if err != nil {
			return fmt.Sprintf("post-crash follower re-seed failed: %v", err)
		}
		h := set.Health()
		set.Close()
		if len(h) != 2 || h[1].AppliedSeq != h[0].AppliedSeq {
			return "re-seeded follower did not reach the leader frontier"
		}
	}
	return ""
}

// t13SetEq reports whether two id sets are identical.
func t13SetEq(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// t13Matrix enumerates the full crash-point matrix. wrap, when
// non-nil, decorates every FaultFS before the stores see it — the
// harness-has-teeth meta-test passes vfs.NoDirSync to re-break rename
// durability and asserts the matrix catches it. It returns the cells,
// the total number of crash points enumerated, and every violation.
func t13Matrix(ctx context.Context, seed int64, wrap func(vfs.FS) vfs.FS) ([]t13Cell, int, []t13Violation, error) {
	if wrap == nil {
		wrap = func(fs vfs.FS) vfs.FS { return fs }
	}
	var cells []t13Cell
	var violations []t13Violation
	total := 0
	for _, w := range t13Workloads() {
		dir := "db"
		if w.ship {
			dir = "lead"
		}
		for _, pol := range t13Policies() {
			opts := func(fsys vfs.FS) store.Options {
				return store.Options{FS: fsys, Sync: pol.pol, SyncEvery: t13SyncEvery}
			}
			// Dry run: count the workload's mutating filesystem ops;
			// each one is a crash point.
			dry := vfs.NewFault(seed)
			w.run(ctx, wrap(dry), opts(wrap(dry)))
			points := dry.MutOps()
			cell := t13Cell{workload: w.name, policy: pol.name}
			for _, mix := range t13Mixes() {
				for k := 1; k <= points; k += mix.stride {
					if err := ctx.Err(); err != nil {
						return cells, total, violations, err
					}
					fsys := vfs.NewFault(seed)
					fsys.SetInjector(mix.inject(k))
					wfs := wrap(fsys)
					attempted, acked := w.run(ctx, wfs, opts(wfs))
					fsys.SetInjector(nil)
					fsys.Reboot()
					if detail := t13Verify(fsys, opts(wfs), dir, attempted, acked, pol.maxLoss, w.ship); detail != "" {
						violations = append(violations, t13Violation{
							workload: w.name, policy: pol.name, mix: mix.name, point: k, detail: detail,
						})
					}
					cell.points++
					total++
				}
			}
			cells = append(cells, cell)
		}
	}
	// Fold violations back into their cells.
	for _, v := range violations {
		for i := range cells {
			if cells[i].workload == v.workload && cells[i].policy == v.policy {
				cells[i].violations++
			}
		}
	}
	return cells, total, violations, nil
}

// RunT13 runs the torture matrix and errors on any violated
// durability claim, printing the failing seed, workload, policy, mix,
// and crash-point index so the failure replays deterministically.
func RunT13(ctx context.Context, seed int64) (*Report, error) {
	cells, total, violations, err := t13Matrix(ctx, seed, nil)
	if err != nil {
		return nil, err
	}
	if len(violations) > 0 {
		sort.Slice(violations, func(i, j int) bool { return violations[i].point < violations[j].point })
		return nil, fmt.Errorf("T13: %d durability violations at seed %d; first: %s",
			len(violations), seed, violations[0])
	}
	const minPoints = 200
	if total < minPoints {
		return nil, fmt.Errorf("T13: enumerated only %d crash points, want >= %d", total, minPoints)
	}
	rep := &Report{
		ID:     "T13",
		Title:  fmt.Sprintf("Crash-point torture: %d power cuts across {insert,delete,checkpoint,sync-commit,ship} × {always,interval,off} × fault mixes", total),
		Header: []string{"workload", "wal-sync", "crash points", "violations"},
	}
	for _, c := range cells {
		rep.Rows = append(rep.Rows, []string{c.workload, c.policy, fmt.Sprintf("%d", c.points), fmt.Sprintf("%d", c.violations)})
	}
	rep.Rows = append(rep.Rows, []string{"TOTAL", "", fmt.Sprintf("%d", total), "0"})
	rep.Notes = fmt.Sprintf(
		"every mutating fs op is a power-cut point (seed %d): recovered state is always a prefix fold of the acked op sequence; always loses 0 acked writes, interval at most %d, off never corrupts; leader reopens and re-seeds a follower after every crash",
		seed, t13SyncEvery)
	return rep, nil
}
