package experiments

import (
	"context"
	"fmt"

	"drugtree/internal/core"
	"drugtree/internal/query"
)

// T10 — vectorized execution ablation. Same optimized planner, same
// dataset, three physical engines: row-at-a-time Volcano iteration
// (Vectorized=false), columnar batch execution (Vectorized=true), and
// batch execution with 4-way morsel parallelism. The committed
// expectation: vectorization wins the scan/filter-heavy classes by
// ≥2× because the row engine pays a per-row allocation (clone) plus
// boxed Value evaluation for every tuple, while the batch engine
// amortizes both over vecBatchSize-tuple typed-column loops; index
// point lookups touch a handful of rows, so both engines are parity
// there.

// t10Class is one measured query class. scanHeavy marks the classes
// the ≥2× expectation is committed on; the others are parity checks.
type t10Class struct {
	name      string
	scanHeavy bool
	dtql      string
}

// t10Classes mixes index point lookups (parity expected) with
// scan/filter-heavy shapes whose predicates are deliberately not
// usable by chooseAccessPath (arithmetic left-hand sides, LIKE), so
// both engines run the full sequential scan and the difference
// isolates the iteration model.
func t10Classes() []t10Class {
	return []t10Class{
		{"point lookup (index)", false,
			"SELECT * FROM proteins WHERE accession = 'DT00007'"},
		{"scan: arithmetic filter", true,
			"SELECT protein_id, affinity FROM activities WHERE affinity * 2.0 > 18.0"},
		{"scan: LIKE filter", true,
			"SELECT protein_id, ligand_id FROM activities WHERE ligand_id LIKE 'LIG019%'"},
		{"scan: projection arithmetic", true,
			"SELECT protein_id, affinity * 10.0 - 2.0 FROM activities WHERE affinity * 2.0 > 18.0"},
		{"hash join + arith filter", false,
			`SELECT p.accession, a.affinity FROM proteins p
			 JOIN activities a ON p.accession = a.protein_id
			 WHERE a.affinity * 2.0 > 18.0`},
		{"group aggregate", false,
			"SELECT protein_id, COUNT(*), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities GROUP BY protein_id"},
	}
}

// t10Options builds the per-engine query options: the full optimizer
// stack with only the physical-execution knobs varied.
func t10Options(vectorized bool, workers int) query.Options {
	o := query.DefaultOptions()
	o.Vectorized = vectorized
	o.Parallelism = workers
	return o
}

// t10Engine builds the standard benchmark dataset (200 proteins, 400
// ligands, ~24k activities — big enough that scans span many batches
// and per-query constant overheads vanish) under the given execution
// options. Caching is off so MeasureQuery times execution, not the
// semantic cache.
func t10Engine(ctx context.Context, seed int64, opts query.Options) (*core.Engine, error) {
	cfg := core.DefaultConfig()
	cfg.Method = core.TreeNJKmer
	cfg.CacheBytes = 0
	cfg.QueryOptions = opts
	e, _, err := buildStandardEngine(ctx, seed, 10, 20, 400, cfg)
	return e, err
}

// RunT10 measures the query classes on the three engines, then adds
// the F1-style subtree-filter rows at two tree sizes with indexes
// disabled, so the scan-dominated regime of the poster's lag curve is
// also covered by the ablation.
func RunT10(ctx context.Context, seed int64) (*Report, error) {
	row, err := t10Engine(ctx, seed, t10Options(false, 1))
	if err != nil {
		return nil, err
	}
	vec, err := t10Engine(ctx, seed, t10Options(true, 1))
	if err != nil {
		return nil, err
	}
	par, err := t10Engine(ctx, seed, t10Options(true, 4))
	if err != nil {
		return nil, err
	}
	const reps = 20
	rep := &Report{
		ID:     "T10",
		Title:  "Vectorized execution ablation: row vs batch vs batch+parallel (mean of 20 runs)",
		Header: []string{"query class", "row", "vectorized", "vec 4-way", "speedup (row/vec)"},
	}
	minScan, pointSpeedup := 0.0, 0.0
	measure := func(name string, scanHeavy bool, re, ve, pe *core.Engine, dtql string, n int) error {
		dr, err := MeasureQuery(ctx, re, dtql, n)
		if err != nil {
			return fmt.Errorf("T10 %s row: %w", name, err)
		}
		dv, err := MeasureQuery(ctx, ve, dtql, n)
		if err != nil {
			return fmt.Errorf("T10 %s vectorized: %w", name, err)
		}
		dp, err := MeasureQuery(ctx, pe, dtql, n)
		if err != nil {
			return fmt.Errorf("T10 %s vec-parallel: %w", name, err)
		}
		speedup := float64(dr) / float64(dv)
		if scanHeavy && (minScan == 0 || speedup < minScan) {
			minScan = speedup
		}
		if pointSpeedup == 0 { // first class is the point lookup
			pointSpeedup = speedup
		}
		rep.Rows = append(rep.Rows, []string{
			name,
			fmtDur(float64(dr.Nanoseconds()) / 1e3),
			fmtDur(float64(dv.Nanoseconds()) / 1e3),
			fmtDur(float64(dp.Nanoseconds()) / 1e3),
			fmt.Sprintf("%.1fx", speedup),
		})
		return nil
	}
	for _, cls := range t10Classes() {
		if err := measure(cls.name, cls.scanHeavy, row, vec, par, cls.dtql, reps); err != nil {
			return nil, err
		}
	}
	// The lag-curve regime: full-tree subtree filter with indexes off.
	for _, n := range []int{2000, 10000} {
		rowOpts := t10Options(false, 1)
		rowOpts.UseIndexes = false
		vecOpts := t10Options(true, 1)
		vecOpts.UseIndexes = false
		parOpts := t10Options(true, 4)
		parOpts.UseIndexes = false
		re, err := F1Engine(n, seed, rowOpts)
		if err != nil {
			return nil, err
		}
		ve, err := F1Engine(n, seed, vecOpts)
		if err != nil {
			return nil, err
		}
		pe, err := F1Engine(n, seed, parOpts)
		if err != nil {
			return nil, err
		}
		clade := f1PickClades(re.Tree())[1] // the ≈50-leaf clade
		q := fmt.Sprintf("SELECT pre, name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s')", clade)
		n2 := reps
		if n >= 10000 {
			n2 = 5
		}
		name := fmt.Sprintf("subtree filter, no index, n=%d", n)
		if err := measure(name, true, re, ve, pe, q, n2); err != nil {
			return nil, err
		}
	}
	rep.Notes = fmt.Sprintf(
		"expectation: vectorized wins scan/filter-heavy classes by ≥%.0fx, parity on point lookups; observed: min scan-class speedup %.1fx, point-lookup speedup %.1fx",
		t10SpeedupFloor, minScan, pointSpeedup)
	return rep, nil
}

// t10SpeedupFloor is the committed scan-class expectation (shared with
// the regression test so the gate and the note cannot drift apart).
const t10SpeedupFloor = 2.0
