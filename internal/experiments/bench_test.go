package experiments

import (
	"context"
	"testing"

	"drugtree/internal/core"
)

// BenchmarkT10Vectorized is the T10 ablation as a testing.B benchmark:
// each query class runs as a row-engine and a vectorized sub-benchmark
// over the shared standard dataset, so `go test -bench T10Vectorized`
// reports the same row-vs-batch ratios RunT10 tabulates. Engines are
// built once per benchmark invocation (dataset generation and tree
// reconstruction dominate a naive per-sub-benchmark setup).
func BenchmarkT10Vectorized(b *testing.B) {
	ctx := context.Background()
	engines := make(map[string]*core.Engine, 2)
	for name, vec := range map[string]bool{"row": false, "vec": true} {
		e, err := t10Engine(ctx, 1, t10Options(vec, 1))
		if err != nil {
			b.Fatal(err)
		}
		engines[name] = e
	}
	for _, cls := range t10Classes() {
		for _, name := range []string{"row", "vec"} {
			e := engines[name]
			b.Run(cls.name+"/"+name, func(b *testing.B) {
				if _, err := e.Query(ctx, cls.dtql); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(ctx, cls.dtql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkT11Sharded is the T11 topology comparison as a testing.B
// benchmark: each query class runs as a single-node and a 4-shard
// sub-benchmark over the same store and tree, so `go test -bench
// T11Sharded` reports the same scatter-vs-single ratios RunT11
// tabulates.
func BenchmarkT11Sharded(b *testing.B) {
	ctx := context.Background()
	single, sharded, err := t11Engines(ctx, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer sharded.Close()
	classes := t11Classes()
	for i := range classes {
		if classes[i].dtql == "" {
			// The subtree class needs a tree-dependent clade; the fixed
			// pre-range below exercises the same pruned-range path.
			classes[i].dtql = "SELECT pre, name FROM tree_nodes WHERE pre >= 3 AND pre <= 150"
		}
	}
	engines := map[string]*core.Engine{"single": single, "shard4": sharded}
	for _, cls := range classes {
		for _, name := range []string{"single", "shard4"} {
			e := engines[name]
			b.Run(cls.name+"/"+name, func(b *testing.B) {
				if _, err := e.Query(ctx, cls.dtql); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(ctx, cls.dtql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
