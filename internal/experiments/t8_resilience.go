package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// T8 chaos experiment: a 3-source integration workload driven through
// a scripted 120-second fault timeline on a shared virtual clock —
// ProteinBank flaps (90% error burst, t=10–20s), ActivityBank goes
// dark (hard outage, t=30–66s: 30% of the timeline), LigandBank
// browns out (40× response time, t=80–100s). Each virtual second the
// mediator resyncs and a mobile-style 3-way join must answer.
//
// Resilient mode = capped-backoff retries + per-request timeouts +
// circuit breakers + degraded serving of last-good rows. Naive mode
// reproduces the seed behavior: a 5-attempt hot retry per page and a
// sync that fails whole on any source failure.

// t8Query is the per-round interactive workload: one join touching
// all three integrated relations.
const t8Query = `SELECT p.accession, l.weight, a.affinity
	FROM activities a
	JOIN ligands l ON l.ligand_id = a.ligand_id
	JOIN proteins p ON p.accession = a.protein_id
	WHERE a.affinity >= 6`

const (
	t8Rounds = 120
	t8Step   = time.Second
)

// t8Outcome aggregates one mode's run.
type t8Outcome struct {
	answered, fresh, degraded, failed int
	wasted                            int64
	trips                             int64
	p50, p99                          time.Duration
}

func (o *t8Outcome) availability() float64 {
	return float64(o.answered) / float64(t8Rounds)
}

func t8FaultPlans(seed int64, bundle *source.Bundle) {
	bundle.Proteins.SetFaultPlan(&source.FaultPlan{Seed: seed, Windows: []source.FaultWindow{
		{Mode: source.FaultErrorBurst, Start: 10 * time.Second, End: 20 * time.Second, ErrorPct: 0.9},
	}})
	bundle.Activities.SetFaultPlan(&source.FaultPlan{Seed: seed, Windows: []source.FaultWindow{
		{Mode: source.FaultOutage, Start: 30 * time.Second, End: 66 * time.Second},
	}})
	bundle.Ligands.SetFaultPlan(&source.FaultPlan{Seed: seed, Windows: []source.FaultWindow{
		{Mode: source.FaultBrownout, Start: 80 * time.Second, End: 100 * time.Second, SlowFactor: 40},
	}})
}

func runT8Mode(ctx context.Context, seed int64, resilient bool) (*t8Outcome, error) {
	gen := datagen.DefaultConfig()
	gen.Seed = seed
	gen.NumFamilies = 8
	gen.ProteinsPerFamily = 15
	gen.NumLigands = 40
	gen.ActivityDensity = 0.3
	ds, err := datagen.Generate(gen)
	if err != nil {
		return nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	defer db.Close()

	bundle := source.NewBundle(ds, netsim.Profile4G, seed, true)
	vclock := netsim.NewVirtualClock()
	for _, s := range bundle.All() {
		s.SetClock(vclock)
	}

	im := integrate.NewImporter(db, bundle)
	reg := metrics.NewRegistry()
	if resilient {
		r := integrate.DefaultResilience()
		r.Retry = source.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    4 * time.Second,
			JitterSeed:  seed,
		}
		r.Timeout = time.Second
		r.BreakerThreshold = 5
		r.BreakerCooldown = 10 * time.Second
		r.Clock = vclock
		r.Metrics = reg
		im.EnableResilience(r)
	}

	// Healthy initial sync and engine build before the chaos starts.
	if _, err := im.Sync(ctx); err != nil {
		return nil, fmt.Errorf("T8: initial sync: %w", err)
	}
	eng, err := core.New(db, core.Config{Method: core.TreeNJKmer})
	if err != nil {
		return nil, err
	}
	eng.AttachHealth(im.Health)

	t8FaultPlans(seed, bundle)
	bundle.ResetStats()

	out := &t8Outcome{}
	lats := make([]time.Duration, 0, t8Rounds)
	for i := 1; i <= t8Rounds; i++ {
		vclock.AdvanceTo(time.Duration(i) * t8Step)
		e0 := bundle.TotalStats().Elapsed
		c0 := vclock.Now()
		srep, serr := im.Sync(ctx)
		// Modelled round latency: network time charged plus backoff
		// waiting carried on the virtual clock.
		lat := (bundle.TotalStats().Elapsed - e0) + (vclock.Now() - c0)
		lats = append(lats, lat)
		if serr != nil {
			// Naive mode: the refresh pipeline surfaces an error and
			// the round's interaction fails.
			out.failed++
			continue
		}
		if _, qerr := eng.Query(ctx, t8Query); qerr != nil {
			out.failed++
			continue
		}
		out.answered++
		if srep.AnyDegraded() {
			out.degraded++
		} else {
			out.fresh++
		}
	}

	// Wasted requests: network exchanges charged that yielded no usable
	// page. In resilient mode the fetch layer counts them (transient
	// failures + timeouts; breaker rejections never touch the wire); in
	// naive mode they are exactly the source-level failures.
	if resilient {
		for _, s := range bundle.All() {
			out.wasted += reg.Counter("source." + s.Name() + ".fetch.wasted").Value()
			if b := im.Breaker(s.Name()); b != nil {
				out.trips += b.Trips()
			}
		}
	} else {
		out.wasted = bundle.TotalStats().Failures
	}

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	out.p50 = lats[len(lats)/2]
	out.p99 = lats[len(lats)*99/100]
	return out, nil
}

// RunT8 measures availability under scripted faults with the
// resilience stack on vs off.
func RunT8(ctx context.Context, seed int64) (*Report, error) {
	res, err := runT8Mode(ctx, seed, true)
	if err != nil {
		return nil, err
	}
	naive, err := runT8Mode(ctx, seed, false)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:     "T8",
		Title:  "Availability under source outage/brownout/error-burst: resilience on vs off",
		Header: []string{"mode", "answered", "fresh", "degraded", "failed", "wasted req", "breaker trips", "p50", "p99"},
	}
	row := func(name string, o *t8Outcome) []string {
		return []string{
			name,
			fmt.Sprintf("%.1f%%", o.availability()*100),
			fmt.Sprintf("%.1f%%", float64(o.fresh)/t8Rounds*100),
			fmt.Sprintf("%.1f%%", float64(o.degraded)/t8Rounds*100),
			fmt.Sprintf("%.1f%%", float64(o.failed)/t8Rounds*100),
			fmt.Sprint(o.wasted),
			fmt.Sprint(o.trips),
			fmtMs(float64(o.p50.Microseconds()) / 1e3),
			fmtMs(float64(o.p99.Microseconds()) / 1e3),
		}
	}
	rep.Rows = append(rep.Rows,
		row("resilient", res),
		row("naive", naive),
	)

	if res.availability() < 0.99 {
		return nil, fmt.Errorf("T8: resilient availability %.3f below 0.99", res.availability())
	}
	if naive.availability() >= res.availability() {
		return nil, fmt.Errorf("T8: naive availability %.3f not below resilient %.3f",
			naive.availability(), res.availability())
	}
	if res.wasted >= naive.wasted {
		return nil, fmt.Errorf("T8: resilient wasted %d requests, naive %d — breaker saved nothing",
			res.wasted, naive.wasted)
	}
	if res.trips == 0 {
		return nil, fmt.Errorf("T8: breaker never tripped under a 36s outage")
	}
	rep.Notes = fmt.Sprintf(
		"36s outage = 30%% of timeline. Resilience answers %.1f%% of rounds (%.1f%% served stale) vs %.1f%% naive; breakers cut wasted requests %d → %d.",
		res.availability()*100, float64(res.degraded)/t8Rounds*100,
		naive.availability()*100, naive.wasted, res.wasted)
	return rep, nil
}
