package experiments

import (
	"context"
	"fmt"
	"net"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/mobile"
	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// F3Budgets are the viewport sizes swept by the mobile figure.
var F3Budgets = []int{25, 50, 100, 200, 400}

// f3RunStrategy drives a navigation session under one transfer
// strategy over an unshaped pipe (compute is not the subject here)
// and returns total bytes shipped down plus the interaction count.
func f3RunStrategy(ctx context.Context, e *core.Engine, strategy mobile.Strategy, budget int, opens []string) (int64, int, error) {
	return f3Run(ctx, e, strategy, budget, opens, false)
}

func f3Run(ctx context.Context, e *core.Engine, strategy mobile.Strategy, budget int, opens []string, compress bool) (int64, int, error) {
	server := mobile.NewServer(e)
	clientConn, serverConn := net.Pipe()
	defer clientConn.Close()
	defer serverConn.Close()
	errc := make(chan error, 1)
	go func() { errc <- server.ServeConn(ctx, serverConn) }()
	var c *mobile.Client
	var err error
	if compress {
		c, err = mobile.DialCompressed(clientConn, strategy, budget)
	} else {
		c, err = mobile.Dial(clientConn, strategy, budget)
	}
	if err != nil {
		return 0, 0, err
	}
	for _, node := range opens {
		if _, err := c.Open(node); err != nil {
			return 0, 0, err
		}
	}
	c.Close()
	clientConn.Close()
	<-errc
	return c.BytesDown, len(opens), nil
}

// modelledLatency computes the per-interaction network time of moving
// the mean payload over a profile (deterministic: no jitter/loss).
func modelledLatency(p netsim.Profile, bytesPerInteraction float64) time.Duration {
	d := p.RTT // request up + response down each pay RTT/2
	if p.DownBps > 0 {
		d += time.Duration(bytesPerInteraction / float64(p.DownBps) * float64(time.Second))
	}
	return d
}

// F3Engine builds the mobile experiment engine over a 2000-leaf tree.
func F3Engine(seed int64) (*core.Engine, error) {
	tree, err := datagen.RandomTopology(2000, seed)
	if err != nil {
		return nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.EnablePrefetch = false // isolate transfer strategies
	return core.NewWithTree(db, tree, cfg)
}

// RunF3 sweeps viewport budget × transfer strategy over a 30-step
// session on a 2000-leaf tree, then prices the mean payload on each
// network profile.
func RunF3(ctx context.Context, seed int64) (*Report, error) {
	e, err := F3Engine(seed)
	if err != nil {
		return nil, err
	}
	trace := GenerateTrace(e.Tree(), 30, seed+2)

	rep := &Report{
		ID:     "F3",
		Title:  "Mobile transfer strategies: bytes/interaction and modelled latency (2000-leaf tree, 30 interactions)",
		Header: []string{"strategy", "budget", "bytes/interaction", "WiFi", "4G", "3G", "2G"},
	}
	profiles := []netsim.Profile{netsim.ProfileWiFi, netsim.Profile4G, netsim.Profile3G, netsim.Profile2G}
	type variant struct {
		strat    mobile.Strategy
		compress bool
		label    string
		budgets  []int
	}
	variants := []variant{
		{mobile.StrategyFull, false, "full", []int{0}},
		{mobile.StrategyFull, true, "full+deflate", []int{0}},
		{mobile.StrategyLOD, false, "lod", F3Budgets},
		{mobile.StrategyLODDelta, false, "lod+delta", F3Budgets},
		{mobile.StrategyLODDelta, true, "lod+delta+deflate", []int{100}},
	}
	var fullBytes, bestBytes float64
	for _, v := range variants {
		for _, budget := range v.budgets {
			e.ResetSession()
			bytes, n, err := f3Run(ctx, e, v.strat, budget, trace, v.compress)
			if err != nil {
				return nil, fmt.Errorf("F3 %s budget %d: %w", v.label, budget, err)
			}
			per := float64(bytes) / float64(n)
			budgetCell := fmt.Sprint(budget)
			if budget == 0 {
				budgetCell = "-"
			}
			row := []string{v.label, budgetCell, fmt.Sprintf("%.0f", per)}
			for _, p := range profiles {
				row = append(row, fmtMs(float64(modelledLatency(p, per).Microseconds())/1e3))
			}
			if v.label == "full" {
				fullBytes = per
			}
			bestBytes = per
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Notes = fmt.Sprintf(
		"expectation: LOD wins by ≈ tree/viewport ratio and delta wins again on overlapping viewports; here full→best = %.0fx fewer bytes",
		fullBytes/bestBytes)
	return rep, nil
}
