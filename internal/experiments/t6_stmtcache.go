package experiments

import (
	"context"
	"fmt"
	"time"

	"drugtree/internal/core"
)

// RunT6 measures the statement-level result cache: the cost of the
// first execution of each T1 query class versus an exact repeat (the
// dashboard-refresh pattern a long-lived DrugTree server sees), plus
// the post-write invalidation cost.
func RunT6(ctx context.Context, seed int64) (*Report, error) {
	cfg := core.DefaultConfig()
	cfg.Method = core.TreeNJKmer
	cfg.CacheBytes = 0 // isolate the statement cache
	cfg.QueryCacheEntries = 64
	e, _, err := buildStandardEngine(ctx, seed, 10, 20, 60, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "T6",
		Title:  "Statement cache: first execution vs exact repeat (optimized engine)",
		Header: []string{"query class", "first run", "repeat (cached)", "speedup"},
	}
	const repeats = 50
	for _, cls := range t1QueryClasses() {
		q := cls.mk(e)
		start := clock.Now()
		if _, err := e.Query(ctx, q); err != nil {
			return nil, fmt.Errorf("T6 %s: %w", cls.name, err)
		}
		first := clock.Now() - start
		start = clock.Now()
		for i := 0; i < repeats; i++ {
			if _, err := e.Query(ctx, q); err != nil {
				return nil, err
			}
		}
		repeat := (clock.Now() - start) / repeats
		if repeat <= 0 {
			repeat = time.Nanosecond // virtual clocks may not advance here
		}
		if first <= 0 {
			first = time.Nanosecond
		}
		rep.Rows = append(rep.Rows, []string{
			cls.name,
			fmtDur(float64(first.Nanoseconds()) / 1e3),
			fmtDur(float64(repeat.Nanoseconds()) / 1e3),
			fmt.Sprintf("%.0fx", float64(first)/float64(repeat)),
		})
	}
	rep.Notes = "expectation: repeats collapse to cache-probe cost (µs) regardless of query class; any write anywhere invalidates conservatively (version-sum check)"
	return rep, nil
}
