package experiments

import (
	"context"
	"fmt"
	"time"

	"drugtree/internal/bio/align"
	"drugtree/internal/bio/seq"
	"drugtree/internal/datagen"
	"drugtree/internal/phylo"
)

// RunT5 scores the tree-construction methods core.TreeMethod exposes
// against the generating topology: normalized Robinson–Foulds
// distance (0 = exact recovery) and construction time. This is the
// quality side of the speed/accuracy trade-off the engine's method
// auto-selection makes.
func RunT5(ctx context.Context, seed int64) (*Report, error) {
	_ = ctx // tree building is in-memory; ctx kept for the Runner contract
	gen := datagen.DefaultConfig()
	gen.Seed = seed
	gen.NumFamilies = 8
	gen.ProteinsPerFamily = 15
	gen.SeqLen = 200
	gen.BranchMutations = 5
	ds, err := datagen.Generate(gen)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ds.Proteins))
	for i, p := range ds.Proteins {
		names[i] = p.ID
	}

	type method struct {
		name  string
		build func() (*phylo.Tree, error)
	}
	scoring := align.BLOSUM62(8)
	alignDist := func() *phylo.DistanceMatrix {
		return phylo.ComputeDistances(names, func(i, j int) float64 {
			return align.DistanceBanded(ds.Proteins[i].Residues, ds.Proteins[j].Residues, scoring, 32)
		})
	}
	kmerDist := func() *phylo.DistanceMatrix {
		profiles := make([]*seq.KmerProfile, len(ds.Proteins))
		for i, p := range ds.Proteins {
			profiles[i], _ = seq.NewKmerProfile(p.Residues, 4)
		}
		return phylo.ComputeDistances(names, func(i, j int) float64 {
			return profiles[i].Cosine(profiles[j])
		})
	}
	methods := []method{
		{"nj-align", func() (*phylo.Tree, error) { return phylo.NeighborJoining(alignDist()) }},
		{"nj-kmer", func() (*phylo.Tree, error) { return phylo.NeighborJoining(kmerDist()) }},
		{"upgma-kmer", func() (*phylo.Tree, error) { return phylo.UPGMA(kmerDist()) }},
	}

	rep := &Report{
		ID: "T5",
		Title: fmt.Sprintf("Tree reconstruction quality vs generating topology (%d proteins, %d families)",
			len(ds.Proteins), gen.NumFamilies),
		Header: []string{"method", "normalized RF", "exact splits", "build time"},
	}
	trueSplits, err := phylo.Bipartitions(ds.TrueTree)
	if err != nil {
		return nil, err
	}
	for _, m := range methods {
		start := clock.Now()
		tree, err := m.build()
		if err != nil {
			return nil, fmt.Errorf("T5 %s: %w", m.name, err)
		}
		elapsed := clock.Now() - start
		_, norm, err := phylo.RobinsonFoulds(ds.TrueTree, tree)
		if err != nil {
			return nil, err
		}
		got, err := phylo.Bipartitions(tree)
		if err != nil {
			return nil, err
		}
		shared := 0
		for s := range got {
			if trueSplits[s] {
				shared++
			}
		}
		rep.Rows = append(rep.Rows, []string{
			m.name,
			fmt.Sprintf("%.3f", norm),
			fmt.Sprintf("%d/%d", shared, len(trueSplits)),
			fmt.Sprint(elapsed.Round(time.Millisecond)),
		})
	}
	rep.Notes = "expectation: nj-align is most accurate; nj-kmer trades some splits for an order-of-magnitude faster build (the engine auto-selects it above 300 proteins); upgma is fastest and roughest"
	return rep, nil
}
