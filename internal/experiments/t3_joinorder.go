package experiments

import (
	"context"
	"fmt"

	"drugtree/internal/core"
	"drugtree/internal/query"
)

// t3Queries lists join queries written in a deliberately bad
// syntactic order (largest relation first, selective predicate last)
// so the syntactic baseline pays for it while the cost-based
// optimizer recovers.
func t3Queries() []struct {
	name string
	dtql string
} {
	return []struct {
		name string
		dtql string
	}{
		{"3-way, selective protein", `SELECT p.accession, l.weight
			FROM activities a
			JOIN ligands l ON l.ligand_id = a.ligand_id
			JOIN proteins p ON p.accession = a.protein_id
			WHERE p.accession = 'DT00005'`},
		{"4-way, family filter", `SELECT p.accession, n.organism, l.weight
			FROM activities a
			JOIN ligands l ON l.ligand_id = a.ligand_id
			JOIN annotations n ON n.protein_id = a.protein_id
			JOIN proteins p ON p.accession = a.protein_id
			WHERE p.family = 'FAM02'`},
		{"5-way, subtree + family", `SELECT p.accession, n.organism, l.weight, t.pre
			FROM activities a
			JOIN ligands l ON l.ligand_id = a.ligand_id
			JOIN annotations n ON n.protein_id = a.protein_id
			JOIN proteins p ON p.accession = a.protein_id
			JOIN tree_nodes t ON t.name = p.accession
			WHERE p.family = 'FAM03' AND a.affinity >= 6`},
	}
}

// RunT3 compares syntactic join order (pushdown and indexes still on,
// so only the ordering differs) against cost-based ordering.
func RunT3(ctx context.Context, seed int64) (*Report, error) {
	syntacticCfg := core.Config{Method: core.TreeNJKmer}
	syntacticCfg.QueryOptions = query.Options{
		SubtreeRewrite: true, Pushdown: true, UseIndexes: true, JoinReorder: false,
	}
	orderedCfg := core.DefaultConfig()
	orderedCfg.Method = core.TreeNJKmer
	orderedCfg.CacheBytes = 0

	syn, _, err := buildStandardEngine(ctx, seed, 10, 20, 60, syntacticCfg)
	if err != nil {
		return nil, err
	}
	ord, _, err := buildStandardEngine(ctx, seed, 10, 20, 60, orderedCfg)
	if err != nil {
		return nil, err
	}
	const reps = 10
	rep := &Report{
		ID:     "T3",
		Title:  "Join ordering: syntactic vs cost-based (pushdown+indexes on in both)",
		Header: []string{"query", "syntactic", "cost-based", "speedup", "joined rows (syn/cb)"},
	}
	for _, q := range t3Queries() {
		ds, err := MeasureQuery(ctx, syn, q.dtql, reps)
		if err != nil {
			return nil, fmt.Errorf("T3 %s syntactic: %w", q.name, err)
		}
		do, err := MeasureQuery(ctx, ord, q.dtql, reps)
		if err != nil {
			return nil, fmt.Errorf("T3 %s ordered: %w", q.name, err)
		}
		// Row-level work comparison.
		rs, err := syn.Query(ctx, q.dtql)
		if err != nil {
			return nil, err
		}
		ro, err := ord.Query(ctx, q.dtql)
		if err != nil {
			return nil, err
		}
		if len(rs.Rows) != len(ro.Rows) {
			return nil, fmt.Errorf("T3 %s: engines disagree (%d vs %d rows)", q.name, len(rs.Rows), len(ro.Rows))
		}
		rep.Rows = append(rep.Rows, []string{
			q.name,
			fmtDur(float64(ds.Nanoseconds()) / 1e3),
			fmtDur(float64(do.Nanoseconds()) / 1e3),
			fmt.Sprintf("%.1fx", float64(ds)/float64(do)),
			fmt.Sprintf("%d/%d", rs.Stats.RowsJoined, ro.Stats.RowsJoined),
		})
	}
	rep.Notes = "expectation: the cost-based order wins more as join width grows; joined-row counts explain the gap"
	return rep, nil
}
