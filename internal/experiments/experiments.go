// Package experiments implements the DrugTree evaluation suite: every
// table (T1–T4) and figure (F1–F4) in EXPERIMENTS.md is regenerated
// by one Run* function. cmd/drugtree-bench prints them; bench_test.go
// wraps them as testing.B benchmarks.
//
// The poster publishes no numbered tables or figures (see DESIGN.md
// §0), so this suite operationalizes its claims: tree-query lag and
// its removal (T1, F1), multi-source integration cost (T2, T3, T4),
// and mobile interaction latency (F2, F3, F4).
package experiments

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// Report is one regenerated table or figure. Figures are reported as
// the CSV series that would be plotted.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes records the qualitative expectation and whether it held.
	Notes string
}

// Render formats the report as aligned text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	if r.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", r.Notes)
	}
	return b.String()
}

// CSV renders the report as comma-separated values (for plotting the
// figure experiments).
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// clock times every experiment measurement. The wall-clock default
// reports real latencies; tests swap in a netsim.VirtualClock via
// SetClock so the T1–T8 report shapes are reproducible tick-for-tick
// with no dependence on machine speed.
var clock netsim.Clock = netsim.NewWallClock()

// SetClock replaces the measurement clock and returns a function
// restoring the previous one. Intended for tests.
func SetClock(c netsim.Clock) (restore func()) {
	prev := clock
	clock = c
	return func() { clock = prev }
}

// Runner is one experiment entry point. Run executes under ctx: the
// whole table regeneration aborts when the caller cancels.
type Runner struct {
	ID    string
	Title string
	Run   func(ctx context.Context, seed int64) (*Report, error)
}

// All lists every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"T1", "Query latency by class: naive vs optimized engine", RunT1},
		{"T2", "Remote-source traffic: predicate pushdown ablation", RunT2},
		{"T3", "Join ordering: cost-based vs syntactic", RunT3},
		{"T4", "Entity resolution accuracy and throughput", RunT4},
		{"T5", "Tree reconstruction quality vs generating topology", RunT5},
		{"T6", "Statement cache: first execution vs exact repeat", RunT6},
		{"T8", "Availability under scripted source faults: resilience on vs off", RunT8},
		{"T9", "Overload protection: deadline-aware shedding vs unprotected queueing", RunT9},
		{"T10", "Vectorized execution ablation: row vs batch vs batch+parallel", RunT10},
		{"T11", "Scatter-gather sharding: single-node vs 4 partitioned shards", RunT11},
		{"T12", "Replication chaos: WAL-shipped replicas, kill-tested promotion failover", RunT12},
		{"T13", "Crash-point torture: deterministic power cuts over every persistence path", RunT13},
		{"T14", "Live ingest: snapshot isolation, incremental overlay identity, reader latency", RunT14},
		{"F1", "Subtree-query latency vs tree size", RunF1},
		{"F2", "Interactive session: semantic cache and prefetching", RunF2},
		{"F3", "Mobile transfer strategies: bytes and modelled latency", RunF3},
		{"F4", "End-to-end mobile latency ablation (3G)", RunF4},
	}
}

// ByID returns the named experiment runner.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// buildStandardEngine generates, integrates and indexes the standard
// benchmark dataset and returns an engine with the given core config.
func buildStandardEngine(ctx context.Context, seed int64, families, perFamily, ligands int, cfg core.Config) (*core.Engine, *source.Bundle, error) {
	gen := datagen.DefaultConfig()
	gen.Seed = seed
	gen.NumFamilies = families
	gen.ProteinsPerFamily = perFamily
	gen.NumLigands = ligands
	gen.ActivityDensity = 0.3
	ds, err := datagen.Generate(gen)
	if err != nil {
		return nil, nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, nil, err
	}
	bundle := source.NewBundle(ds, netsim.ProfileLAN, seed, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(ctx); err != nil {
		return nil, nil, err
	}
	if cfg.Method == "" {
		cfg.Method = core.TreeNJKmer
	}
	e, err := core.New(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	return e, bundle, nil
}

// EngineWithConfig builds the standard benchmark dataset engine with
// an explicit core configuration (exported for bench_test.go).
func EngineWithConfig(ctx context.Context, seed int64, cfg core.Config) (*core.Engine, error) {
	e, _, err := buildStandardEngine(ctx, seed, 10, 20, 60, cfg)
	return e, err
}

// fmtDur renders a duration in microseconds with 1 decimal.
func fmtDur(us float64) string { return fmt.Sprintf("%.1fµs", us) }

// fmtMs renders a duration in milliseconds with 2 decimals.
func fmtMs(ms float64) string { return fmt.Sprintf("%.2fms", ms) }
