package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"drugtree/internal/integrate"
)

// RunT4 measures entity-resolution accuracy and throughput over
// high-entropy accessions at increasing corruption levels. Quality is
// split three ways because the failure modes differ: a miss costs a
// dropped record, a wrong match silently corrupts the overlay.
func RunT4(ctx context.Context, seed int64) (*Report, error) {
	_ = ctx // resolution is in-memory; ctx kept for the Runner contract
	rng := rand.New(rand.NewSource(seed))
	const nCanonical = 10000
	const nQueries = 5000
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

	ids := make([]string, nCanonical)
	seen := map[string]bool{}
	for i := range ids {
		for {
			b := make([]byte, 8)
			for j := range b {
				b[j] = alphabet[rng.Intn(len(alphabet))]
			}
			id := "DT" + string(b)
			if !seen[id] {
				seen[id] = true
				ids[i] = id
				break
			}
		}
	}
	resolver := integrate.NewResolver(ids)

	rep := &Report{
		ID:     "T4",
		Title:  fmt.Sprintf("Entity resolution over %d canonical IDs, %d refs per level", nCanonical, nQueries),
		Header: []string{"edits", "correct", "missed", "wrong", "accuracy", "throughput"},
	}
	for _, edits := range []int{0, 1, 2, 3} {
		queries := make([]string, nQueries)
		truth := make([]string, nQueries)
		for i := range queries {
			truth[i] = ids[rng.Intn(nCanonical)]
			queries[i] = integrate.CorruptID(rng, truth[i], edits)
		}
		correct, missed, wrong := 0, 0, 0
		start := clock.Now()
		for i, q := range queries {
			got, _, ok := resolver.Resolve(q)
			switch {
			case !ok:
				missed++
			case got == truth[i]:
				correct++
			default:
				wrong++
			}
		}
		elapsed := clock.Now() - start
		if elapsed <= 0 {
			elapsed = time.Nanosecond // virtual clocks may not advance here
		}
		perSec := float64(nQueries) / elapsed.Seconds()
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(edits),
			fmt.Sprint(correct),
			fmt.Sprint(missed),
			fmt.Sprint(wrong),
			fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(nQueries)),
			fmt.Sprintf("%.0f refs/s", perSec),
		})
	}
	rep.Notes = "expectation: ≥99% at ≤1 edit, graceful decay after; wrong matches stay rare because ties are rejected (resolver MaxEdits=2, so 3-edit refs mostly miss by design)"
	return rep, nil
}
