package experiments

import (
	"context"
	"fmt"
	"strings"

	"drugtree/internal/core"
	"drugtree/internal/store"
)

// T11 — scatter-gather sharding. Same dataset, same tree, two
// topologies: the single-node engine and the store partitioned across
// 4 in-process shards (tree_nodes by preorder interval, proteins and
// activities following their protein's leaf) served by the
// coordinator. Correctness is asserted inline — every class must
// return identical rows on both topologies before any timing is
// reported. The committed performance expectation: with ≥4 cores the
// scatter classes reach ≥1.5× throughput at 4 shards because each
// shard scans a quarter of the data concurrently, while pruned point
// lookups stay within the coordinator's fixed classify-and-clone
// overhead (~10µs) — they route to one shard instead of paying a
// 4-way fan-out.

// t11SpeedupFloor is the committed scatter-class expectation at 4
// shards on ≥4 cores (shared with the regression test so the gate and
// the note cannot drift apart). Single-core runs skip the gate: four
// goroutines scanning a quarter each do the same total work.
const t11SpeedupFloor = 1.5

// t11Class is one measured query class. scatter marks the classes the
// throughput expectation is committed on; pruned marks the point
// lookups that must stay near-parity via shard pruning.
type t11Class struct {
	name    string
	scatter bool
	pruned  bool
	dtql    string
}

func t11Classes() []t11Class {
	return []t11Class{
		{"pruned point lookup (tree pre)", false, true,
			"SELECT name FROM tree_nodes WHERE pre = 7"},
		{"scan: arithmetic filter", true, false,
			"SELECT protein_id, affinity FROM activities WHERE affinity * 2.0 > 18.0"},
		{"group-aggregate join", true, false,
			`SELECT p.family, COUNT(*), AVG(a.affinity) FROM proteins p
			 JOIN activities a ON p.accession = a.protein_id GROUP BY p.family`},
		{"subtree filter", false, false,
			""}, // dtql filled in at run time: the clade name depends on the tree
	}
}

// t11Engines builds the standard dataset once and serves it from both
// topologies — the sharded engine partitions the same store over the
// same tree, so any row divergence is a coordinator bug, not fixture
// noise.
func t11Engines(ctx context.Context, seed int64, shards int) (single, sharded *core.Engine, err error) {
	cfg := core.DefaultConfig()
	cfg.Method = core.TreeNJKmer
	cfg.CacheBytes = 0
	e, _, err := buildStandardEngine(ctx, seed, 10, 20, 400, cfg)
	if err != nil {
		return nil, nil, err
	}
	scfg := cfg
	scfg.Shards = shards
	se, err := core.NewWithTree(e.DB(), e.Tree(), scfg)
	if err != nil {
		return nil, nil, err
	}
	return e, se, nil
}

// t11Canon encodes a row with floats rounded to 10 significant digits:
// the coordinator's partial-aggregate merge reassociates float
// addition, so bit-exact comparison is unsound.
func t11Canon(r store.Row) string {
	var b []byte
	for _, v := range r {
		if v.K == store.KindFloat {
			b = append(b, fmt.Sprintf("|%.9e", v.F)...)
			continue
		}
		b = append(b, '|')
		b = store.AppendValue(b, v)
	}
	return string(b)
}

// t11VerifyIdentical runs dtql on both engines and errors unless the
// row multisets agree.
func t11VerifyIdentical(ctx context.Context, single, sharded *core.Engine, dtql string) error {
	a, err := single.Query(ctx, dtql)
	if err != nil {
		return fmt.Errorf("single-node: %w", err)
	}
	b, err := sharded.Query(ctx, dtql)
	if err != nil {
		return fmt.Errorf("sharded: %w", err)
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row counts diverge: single %d, sharded %d", len(a.Rows), len(b.Rows))
	}
	counts := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		counts[t11Canon(r)]++
	}
	for _, r := range b.Rows {
		k := t11Canon(r)
		counts[k]--
		if counts[k] < 0 {
			return fmt.Errorf("result multisets differ (%d rows each)", len(a.Rows))
		}
	}
	return nil
}

// RunT11 verifies row identity per class, measures both topologies,
// and checks that the pruned point lookup really does skip shards.
func RunT11(ctx context.Context, seed int64) (*Report, error) {
	const shards = 4
	single, sharded, err := t11Engines(ctx, seed, shards)
	if err != nil {
		return nil, err
	}
	defer sharded.Close()

	classes := t11Classes()
	// The subtree class targets the largest non-root clade so the
	// interval spans several shards' cuts.
	tree := single.Tree()
	clade, best := "", 0
	for i := 1; i < tree.Len(); i++ {
		id := tree.NodeAtPre(i)
		if n := tree.LeafCount(id); !tree.Node(id).IsLeaf() && n > best && n < len(tree.Leaves()) {
			clade, best = tree.Node(id).Name, n
		}
	}
	for i := range classes {
		if classes[i].name == "subtree filter" {
			classes[i].dtql = fmt.Sprintf(
				"SELECT pre, name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s')", clade)
		}
	}

	rep := &Report{
		ID:     "T11",
		Title:  fmt.Sprintf("Scatter-gather sharding: single-node vs %d shards (mean of 20 runs, rows verified identical)", shards),
		Header: []string{"query class", "single-node", "sharded x4", "speedup (single/shard)"},
	}
	const reps = 20
	minScatter, prunedSpeedup := 0.0, 0.0
	for _, cls := range classes {
		if err := t11VerifyIdentical(ctx, single, sharded, cls.dtql); err != nil {
			return nil, fmt.Errorf("T11 %s: %w", cls.name, err)
		}
		ds, err := MeasureQuery(ctx, single, cls.dtql, reps)
		if err != nil {
			return nil, fmt.Errorf("T11 %s single: %w", cls.name, err)
		}
		dh, err := MeasureQuery(ctx, sharded, cls.dtql, reps)
		if err != nil {
			return nil, fmt.Errorf("T11 %s sharded: %w", cls.name, err)
		}
		speedup := float64(ds) / float64(dh)
		if cls.scatter && (minScatter == 0 || speedup < minScatter) {
			minScatter = speedup
		}
		if cls.pruned {
			prunedSpeedup = speedup
		}
		rep.Rows = append(rep.Rows, []string{
			cls.name,
			fmtDur(float64(ds.Nanoseconds()) / 1e3),
			fmtDur(float64(dh.Nanoseconds()) / 1e3),
			fmt.Sprintf("%.1fx", speedup),
		})
	}

	// The pruning claim is structural, not a timing: EXPLAIN must show
	// the point lookup reaching exactly one shard.
	res, err := sharded.Query(ctx, "EXPLAIN "+classes[0].dtql)
	if err != nil {
		return nil, err
	}
	if !strings.Contains(res.Plan, fmt.Sprintf("Gather [shards=1 pruned=%d", shards-1)) {
		return nil, fmt.Errorf("T11: point lookup not pruned to one shard:\n%s", res.Plan)
	}

	rep.Notes = fmt.Sprintf(
		"rows verified identical on every class; expectation (≥4 cores): scatter classes ≥%.1fx at %d shards, pruned point lookups at parity; observed: min scatter speedup %.1fx, pruned-lookup speedup %.1fx",
		t11SpeedupFloor, shards, minScatter, prunedSpeedup)
	return rep, nil
}
