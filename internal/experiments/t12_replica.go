package experiments

import (
	"context"
	"errors"
	"fmt"

	"drugtree/internal/core"
	"drugtree/internal/replica"
	"drugtree/internal/store"
)

// T12 — replication chaos. The T11 dataset is served from a
// replicated topology (4 shards × 1 leader + 2 followers, WAL-shipped)
// while a scripted fault sequence kills and restarts leaders and
// followers mid-workload. The committed claims: reads never fail (a
// shard with any live replica keeps answering), served staleness stays
// within the configured lag bound, a dead leader is promoted over on
// the next replication tick with its WAL tail replayed (latency
// measured), and once replication quiesces the replica-served answers
// are row-identical — under the DESIGN §8 merge contract — to the
// single-node engine over the same data, writes included.

// t12Rounds is the scripted workload length. Fault injection points
// are fixed rounds so every run exercises the same transitions:
// leader killed mid-workload, promoted over, ex-leader rejoining
// (snapshot re-seed on the bumped term), and a follower bounce on a
// different shard.
const (
	t12Rounds          = 20
	t12KillLeaderRound = 5  // leader of the chaos shard dies
	t12RejoinRound     = 12 // ex-leader restarts, re-seeds as follower
	t12KillFollower    = 8  // follower bounce on another shard...
	t12RestartFollower = 15 // ...and its recovery
	t12WritesPerRound  = 5
)

// t12Workload is the read mix issued every round; the final quiesced
// differential re-checks the same classes plus T11's full corpus.
func t12Workload() []string {
	return []string{
		"SELECT COUNT(*) FROM proteins",
		"SELECT accession, family FROM proteins",
		"SELECT p.family, COUNT(*), AVG(a.affinity) FROM proteins p JOIN activities a ON p.accession = a.protein_id GROUP BY p.family",
		"SELECT name FROM tree_nodes WHERE pre = 7",
	}
}

// t12Row builds one synthetic protein row matching the integrated
// schema (accession, name, family, sequence, length).
func t12Row(round, i int) store.Row {
	return store.Row{
		store.StringValue(fmt.Sprintf("ZZ%03d%03d", round, i)),
		store.StringValue("chaos protein"),
		store.StringValue("fam-chaos"),
		store.StringValue("ACDEFGHIK"),
		store.IntValue(int64(100 + round + i)),
	}
}

// RunT12 drives the scripted chaos workload and errors on any broken
// claim: a failed read, a served read past the lag bound, a missing
// promotion or re-seed, or post-quiesce row divergence.
func RunT12(ctx context.Context, seed int64) (*Report, error) {
	const shards = 4
	cfg := core.DefaultConfig()
	cfg.Method = core.TreeNJKmer
	cfg.CacheBytes = 0
	single, _, err := buildStandardEngine(ctx, seed, 10, 20, 400, cfg)
	if err != nil {
		return nil, err
	}
	rcfg := cfg
	rcfg.Shards = shards
	rcfg.Replicas = 2
	rcfg.MaxLagSeqs = 0 // strict: replicas serve only at the live frontier
	replicated, err := core.NewWithTree(single.DB(), single.Tree(), rcfg)
	if err != nil {
		return nil, err
	}
	defer replicated.Close()
	coord := replicated.Coordinator()
	coord.SetReadPolicy(replica.ReadAny)

	// The chaos shard loses its leader; a different shard loses a
	// follower, so both degraded modes are live in the same run.
	chaosShard, bounceShard := 1, 2

	var reads, writes, refused int
	workload := t12Workload()
	for round := 1; round <= t12Rounds; round++ {
		for i := 0; i < t12WritesPerRound; i++ {
			row := t12Row(round, i)
			if _, err := coord.Insert("proteins", row); err != nil {
				if errors.Is(err, replica.ErrLeaderDown) {
					// The victim shard is leaderless until the next tick
					// promotes a follower; refusal (not silent loss) is
					// the committed write behaviour in that window.
					refused++
					continue
				}
				return nil, fmt.Errorf("T12 round %d: write: %w", round, err)
			}
			if _, err := single.DB().Insert("proteins", row); err != nil {
				return nil, fmt.Errorf("T12 round %d: mirror write: %w", round, err)
			}
			writes++
		}

		// Faults land after the round's writes and before its reads, so
		// the killed leader dies holding an unshipped WAL tail — the
		// worst case promotion must replay — while the reads probe the
		// freshly degraded topology.
		switch round {
		case t12KillLeaderRound:
			coord.KillLeader(chaosShard)
		case t12RejoinRound:
			// The dead ex-leader was node 0; it rejoins on a term it has
			// never seen and must re-seed from the promoted leader.
			if err := coord.RestartReplica(ctx, chaosShard, 0); err != nil {
				return nil, fmt.Errorf("T12 round %d: rejoin ex-leader: %w", round, err)
			}
		case t12KillFollower:
			coord.KillReplica(bounceShard, 2)
		case t12RestartFollower:
			if err := coord.RestartReplica(ctx, bounceShard, 2); err != nil {
				return nil, fmt.Errorf("T12 round %d: restart follower: %w", round, err)
			}
		}

		for _, q := range workload {
			if _, err := replicated.Query(ctx, q); err != nil {
				return nil, fmt.Errorf("T12 round %d: read failed under chaos (%q): %w", round, q, err)
			}
			reads++
		}

		// One replication tick per round: ship tails, promote over any
		// dead leader (this is what the daemon's -ship-interval drives).
		if err := coord.SyncReplicas(ctx); err != nil {
			return nil, fmt.Errorf("T12 round %d: replication tick: %w", round, err)
		}
	}

	if lag := coord.MaxServedLag(); lag > 0 {
		return nil, fmt.Errorf("T12: served reads at lag %d, committed bound 0", lag)
	}
	if n := coord.Promotions(); n != 1 {
		return nil, fmt.Errorf("T12: %d promotions, want exactly 1 (the killed leader)", n)
	}
	promoteLat, replayed := coord.LastPromotion()
	var reseeds int64
	for _, h := range coord.Health() {
		if h.Status != "ok" {
			return nil, fmt.Errorf("T12: shard %d ended %q, want ok after recovery", h.Shard, h.Status)
		}
		for _, rh := range h.Replicas {
			reseeds += rh.Reseeds
		}
	}
	if reseeds == 0 {
		return nil, fmt.Errorf("T12: ex-leader rejoined a bumped term without re-seeding")
	}

	// Quiesced differential: with every follower at its leader's
	// frontier, follower-served scatter results must be row-identical
	// to the single-node answers over the same data, chaos writes
	// included.
	if err := coord.SyncReplicas(ctx); err != nil {
		return nil, err
	}
	coord.SetReadPolicy(replica.ReadFollowers)
	for _, q := range t12Workload() {
		if err := t11VerifyIdentical(ctx, single, replicated, q); err != nil {
			return nil, fmt.Errorf("T12 quiesced differential (%q): %w", q, err)
		}
	}
	coord.SetReadPolicy(replica.ReadAny)

	rep := &Report{
		ID:     "T12",
		Title:  fmt.Sprintf("Replication chaos: %d shards × 3 replicas, leader+follower kill/restart over %d rounds", shards, t12Rounds),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"reads served under chaos", fmt.Sprintf("%d", reads)},
			{"failed reads", "0"},
			{"writes applied", fmt.Sprintf("%d", writes)},
			{"writes refused (leaderless window)", fmt.Sprintf("%d", refused)},
			{"max served staleness (WAL records)", fmt.Sprintf("%d", coord.MaxServedLag())},
			{"promotions", fmt.Sprintf("%d", coord.Promotions())},
			{"promotion latency", fmtDur(float64(promoteLat.Nanoseconds()) / 1e3)},
			{"WAL tail records replayed at promotion", fmt.Sprintf("%d", replayed)},
			{"snapshot re-seeds (rejoin on bumped term)", fmt.Sprintf("%d", reseeds)},
		},
	}
	rep.Notes = fmt.Sprintf(
		"fault script: leader killed round %d (promoted next tick), ex-leader rejoined round %d (re-seeded), follower bounced rounds %d/%d; zero failed reads, staleness bound 0 held, quiesced follower-served results row-identical to single-node",
		t12KillLeaderRound, t12RejoinRound, t12KillFollower, t12RestartFollower)
	return rep, nil
}
