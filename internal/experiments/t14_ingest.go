package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drugtree/internal/core"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// T14 — snapshot isolation under live ingest. PR 10 retires the
// stop-the-world resync: integrate.Sync diffs each source against the
// current table version and publishes the delta atomically
// (store.DB.CommitDeltas), every statement executes against one pinned
// MVCC snapshot, and the per-subtree activity overlay is maintained
// incrementally from the commit-event stream. This experiment gates
// the three claims that make that safe:
//
//   (a) zero torn reads: a probe table is rewritten generation by
//       generation through atomic delta commits while readers hammer
//       it; every reader must see one complete generation (full row
//       count, MIN(gen) == MAX(gen)), never rows from two;
//   (b) overlay byte-identity: after ≥100 seeded delta batches of
//       activity churn, the incrementally maintained overlay equals a
//       from-scratch recompute bit for bit (same Rows, same Count,
//       same Float64bits of every node's Sum) — checked repeatedly
//       mid-churn, not just at the end;
//   (c) ingest does not stall readers: p99 statement latency measured
//       during continuous resync+commit churn stays within 1.5× of the
//       quiescent p99 (plus a fixed sub-millisecond noise floor — the
//       retired stop-the-world path held the lock for network-speed
//       work, a regression measured in milliseconds);
//
// plus the lifecycle gate behind them all: when the run goes
// quiescent, no snapshot pin is leaked (ActiveSnapshots == 0) and the
// version GC has drained every superseded row version
// (DeadVersions == 0).

const (
	t14ProbeRows   = 32
	t14Batches     = 120 // seeded churn batches for the identity gate (≥100)
	t14CheckEvery  = 10  // rebuild-and-compare cadence during churn
	t14LatN        = 300 // latency samples per trial
	t14LatTrials   = 3   // per-phase trials; the gate takes the min p99
	t14P99Ratio    = 1.5
	t14NoiseFloor  = 500 * time.Microsecond
	t14ProbeTable  = "ingest_probe"
	t14ProbeQuery  = "SELECT COUNT(*), MIN(gen), MAX(gen) FROM ingest_probe"
	t14TornWorkers = 4
	t14TornQueries = 60
)

// t14Fixture is the engine under test plus the pieces the gates drive.
type t14Fixture struct {
	eng *core.Engine
	db  *store.DB
	im  *integrate.Importer
}

func t14Build(ctx context.Context, seed int64) (*t14Fixture, error) {
	gen := datagen.DefaultConfig()
	gen.Seed = seed
	gen.NumFamilies = 6
	gen.ProteinsPerFamily = 10
	gen.NumLigands = 30
	gen.ActivityDensity = 0.3
	ds, err := datagen.Generate(gen)
	if err != nil {
		return nil, err
	}
	db, err := store.Open("")
	if err != nil {
		return nil, err
	}
	bundle := source.NewBundle(ds, netsim.ProfileLAN, seed, true)
	im := integrate.NewImporter(db, bundle)
	if _, err := im.ImportAll(ctx); err != nil {
		return nil, err
	}
	probeSchema := store.MustSchema(
		store.Column{Name: "slot", Kind: store.KindInt},
		store.Column{Name: "gen", Kind: store.KindInt},
	)
	if _, err := db.CreateTable(t14ProbeTable, probeSchema); err != nil {
		return nil, err
	}
	if err := db.CommitDeltas([]store.TableDelta{{Table: t14ProbeTable, Inserts: t14ProbeGen(0)}}); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Method = core.TreeNJKmer
	eng, err := core.New(db, cfg)
	if err != nil {
		return nil, err
	}
	return &t14Fixture{eng: eng, db: db, im: im}, nil
}

func t14ProbeGen(g int64) []store.Row {
	rows := make([]store.Row, t14ProbeRows)
	for i := range rows {
		rows[i] = store.Row{store.IntValue(int64(i)), store.IntValue(g)}
	}
	return rows
}

// t14FlipProbe atomically replaces the probe's generation.
func t14FlipProbe(db *store.DB, g int64) error {
	var old []int64
	snap := db.PinSnapshot()
	if tv, err := snap.View(t14ProbeTable); err == nil {
		tv.Scan(func(id int64, _ store.Row) bool {
			old = append(old, id)
			return true
		})
	}
	snap.Release()
	return db.CommitDeltas([]store.TableDelta{{
		Table:     t14ProbeTable,
		DeleteIDs: old,
		Inserts:   t14ProbeGen(g),
	}})
}

// t14TornReads runs gate (a): readers against the probe while a
// writer loop alternates full resyncs with probe generation flips.
// It returns (queries run, torn observations, first error).
func t14TornReads(ctx context.Context, fx *t14Fixture) (int64, int64, error) {
	var (
		ran  int64
		torn int64
		errv atomic.Value
	)
	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		g := int64(1)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := fx.im.Sync(ctx); err != nil {
				errv.Store(fmt.Errorf("sync: %w", err))
				return
			}
			if err := t14FlipProbe(fx.db, g); err != nil {
				errv.Store(fmt.Errorf("probe flip: %w", err))
				return
			}
			g++
		}
	}()
	var readers sync.WaitGroup
	for w := 0; w < t14TornWorkers; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < t14TornQueries; i++ {
				res, err := fx.eng.Query(ctx, t14ProbeQuery)
				if err != nil {
					errv.Store(fmt.Errorf("probe query: %w", err))
					return
				}
				row := res.Rows[0]
				if row[0].I != t14ProbeRows || row[1].I != row[2].I {
					atomic.AddInt64(&torn, 1)
				}
				atomic.AddInt64(&ran, 1)
			}
		}()
	}
	// Readers own the run length; the writer churns until they finish.
	readers.Wait()
	close(done)
	writer.Wait()
	if err, ok := errv.Load().(error); ok && err != nil {
		return ran, torn, err
	}
	return ran, torn, nil
}

// t14Churn applies one seeded delta batch to activities: k deletes of
// random current rows plus k inserts keyed at random tree leaves (and
// occasionally at a name outside the tree, which the overlay must
// ignore exactly like the scan path would).
func t14Churn(db *store.DB, rng *rand.Rand, leaves []string, batch int) error {
	var ids []int64
	snap := db.PinSnapshot()
	tv, err := snap.View(integrate.TableActivities)
	if err != nil {
		snap.Release()
		return err
	}
	tv.Scan(func(id int64, _ store.Row) bool {
		ids = append(ids, id)
		return true
	})
	snap.Release()
	k := 3 + rng.Intn(5)
	delta := store.TableDelta{Table: integrate.TableActivities}
	for i := 0; i < k && len(ids) > 0; i++ {
		j := rng.Intn(len(ids))
		delta.DeleteIDs = append(delta.DeleteIDs, ids[j])
		ids[j] = ids[len(ids)-1]
		ids = ids[:len(ids)-1]
	}
	for i := 0; i < k; i++ {
		key := leaves[rng.Intn(len(leaves))]
		if rng.Intn(16) == 0 {
			key = fmt.Sprintf("UNKNOWN-%d", batch)
		}
		delta.Inserts = append(delta.Inserts, store.Row{
			store.StringValue(key),
			store.StringValue(fmt.Sprintf("L-churn-%d-%d", batch, i)),
			store.FloatValue(rng.NormFloat64() * 3.5),
			store.StringValue("churn"),
		})
	}
	return db.CommitDeltas([]store.TableDelta{delta})
}

// t14OverlayDiff compares the live overlay against a fresh recompute
// at the current version and returns the number of diverging nodes.
func t14OverlayDiff(fx *t14Fixture) (int, error) {
	snap := fx.db.PinSnapshot()
	defer snap.Release()
	rebuilt, err := core.RebuildActivityOverlay(snap, fx.eng.Tree())
	if err != nil {
		return 0, err
	}
	live := fx.eng.Overlay()
	if live.Version() != rebuilt.Version() {
		return 0, fmt.Errorf("live overlay at version %d, rebuild at %d", live.Version(), rebuilt.Version())
	}
	diverged := 0
	for p := 0; p < live.Nodes(); p++ {
		a, b := live.Agg(p), rebuilt.Agg(p)
		if a.Rows != b.Rows || a.Count != b.Count ||
			math.Float64bits(a.Sum) != math.Float64bits(b.Sum) {
			diverged++
		}
	}
	return diverged, nil
}

// t14P99 returns the p99 of the samples.
func t14P99(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)*99/100]
}

// t14Latency samples statement latency on the experiment clock. With
// churn, a full ingest round (resync diff + activity delta + probe
// flip) lands immediately before every third timed statement, so the
// samples measure the per-statement cost of querying right after a
// commit publishes — the retired stop-the-world design paid a rebuild
// there; the MVCC design must not. The ingest work itself runs
// interleaved on the sampling goroutine and is excluded from the
// timed window: co-scheduling a CPU-bound diff loop with the readers
// would measure the host's core count (a reader waiting out a diff
// burst on a single-core box), not the engine. True concurrent
// overlap is the torn-read gate's job.
func t14Latency(ctx context.Context, fx *t14Fixture, leaves []string, churn bool, seed int64) ([]time.Duration, error) {
	queries := []string{
		"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family",
		"SELECT COUNT(*), AVG(affinity) FROM activities WHERE WITHIN_SUBTREE(protein_id, '" + fx.eng.Root().Name + "')",
		t14ProbeQuery,
	}
	rng := rand.New(rand.NewSource(seed * 7))
	g := seed*1_000_000 + 1_000
	samples := make([]time.Duration, 0, t14LatN)
	for i := 0; i < t14LatN; i++ {
		if churn && i%len(queries) == 0 {
			if _, err := fx.im.Sync(ctx); err != nil {
				return nil, fmt.Errorf("sync: %w", err)
			}
			if err := t14Churn(fx.db, rng, leaves, i); err != nil {
				return nil, fmt.Errorf("churn: %w", err)
			}
			if err := t14FlipProbe(fx.db, g); err != nil {
				return nil, fmt.Errorf("probe flip: %w", err)
			}
			g++
		}
		q := queries[i%len(queries)]
		start := clock.Now()
		if _, err := fx.eng.Query(ctx, q); err != nil {
			return nil, err
		}
		samples = append(samples, clock.Now()-start)
	}
	return samples, nil
}

// RunT14 runs the live-ingest isolation gates and errors on any
// violation, so the CI `make ingest` run fails loudly with the seed.
func RunT14(ctx context.Context, seed int64) (*Report, error) {
	fx, err := t14Build(ctx, seed)
	if err != nil {
		return nil, err
	}
	defer fx.db.Close()
	leaves := fx.eng.Tree().LeafNames()

	// Gate (a): torn reads.
	ran, torn, err := t14TornReads(ctx, fx)
	if err != nil {
		return nil, fmt.Errorf("T14 torn-read phase: %w", err)
	}
	if torn != 0 {
		return nil, fmt.Errorf("T14: %d torn reads in %d probe queries at seed %d", torn, ran, seed)
	}

	// Gate (b): overlay byte-identity across seeded churn.
	rng := rand.New(rand.NewSource(seed))
	checks := 0
	for b := 0; b < t14Batches; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := t14Churn(fx.db, rng, leaves, b); err != nil {
			return nil, fmt.Errorf("T14 churn batch %d: %w", b, err)
		}
		if (b+1)%t14CheckEvery == 0 || b == t14Batches-1 {
			diverged, err := t14OverlayDiff(fx)
			if err != nil {
				return nil, fmt.Errorf("T14 overlay check after batch %d: %w", b, err)
			}
			if diverged != 0 {
				return nil, fmt.Errorf("T14: overlay diverged from recompute on %d nodes after batch %d (seed %d)", diverged, b, seed)
			}
			checks++
		}
	}

	// Gate (c): ingest must not stall readers. Each phase's p99 is the
	// minimum over independent trials: a systematic stall (a lock held
	// across commit publication) shows up in every trial and survives
	// the min, while a one-off scheduler or GC hiccup does not — the
	// gate measures the system, not the test host's worst moment.
	p99Trial := func(churn bool) (time.Duration, error) {
		best := time.Duration(math.MaxInt64)
		for trial := 0; trial < t14LatTrials; trial++ {
			samples, err := t14Latency(ctx, fx, leaves, churn, seed+int64(trial))
			if err != nil {
				return 0, err
			}
			if p := t14P99(samples); p < best {
				best = p
			}
		}
		return best, nil
	}
	quiP99, err := p99Trial(false)
	if err != nil {
		return nil, fmt.Errorf("T14 quiescent latency: %w", err)
	}
	ingP99, err := p99Trial(true)
	if err != nil {
		return nil, fmt.Errorf("T14 ingest latency: %w", err)
	}
	bound := time.Duration(float64(quiP99)*t14P99Ratio) + t14NoiseFloor
	if ingP99 > bound {
		return nil, fmt.Errorf("T14: p99 under ingest %v exceeds %.1fx quiescent %v (+%v floor) at seed %d",
			ingP99, t14P99Ratio, quiP99, t14NoiseFloor, seed)
	}

	// Lifecycle gate: quiescence leaks nothing. A pin/release cycle
	// nudges the GC so versions freed by the final commits are swept.
	fx.db.PinSnapshot().Release()
	if n := fx.db.ActiveSnapshots(); n != 0 {
		return nil, fmt.Errorf("T14: %d snapshot pins leaked after quiescence", n)
	}
	if n := fx.db.DeadVersions(); n != 0 {
		return nil, fmt.Errorf("T14: %d dead row versions survived GC after quiescence", n)
	}

	rep := &Report{
		ID:     "T14",
		Title:  "Live ingest: snapshot isolation, incremental overlay identity, reader latency",
		Header: []string{"gate", "measured", "bound", "status"},
		Rows: [][]string{
			{"torn reads", fmt.Sprintf("%d / %d probe queries", torn, ran), "0", "ok"},
			{"overlay identity", fmt.Sprintf("%d checks over %d delta batches, 0 diverging nodes", checks, t14Batches), "bit-identical", "ok"},
			{"p99 under ingest", fmt.Sprint(ingP99.Round(time.Microsecond)), fmt.Sprintf("≤ %.1fx quiescent (%v) + %v", t14P99Ratio, quiP99.Round(time.Microsecond), t14NoiseFloor), "ok"},
			{"snapshot pins at rest", "0", "0", "ok"},
			{"dead versions at rest", "0", "0", "ok"},
		},
		Notes: fmt.Sprintf(
			"resync is diff+publish, never stop-the-world: readers pin one MVCC snapshot per statement and observed zero mixed-generation rows; the subtree overlay tracked %d atomic delta batches bit-for-bit (exact big-int summation); seed %d",
			t14Batches, seed),
	}
	return rep, nil
}
