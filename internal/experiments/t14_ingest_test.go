package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestRunT14 gates the live-ingest isolation claims. RunT14 enforces
// every gate inline — zero torn reads across concurrent generation
// flips, bit-identical overlay vs recompute over ≥100 delta batches,
// p99 under ingest within bound, zero leaked pins and zero unGC'd
// versions at rest — and errors with the seed on any violation, so a
// broken claim surfaces here replayably. The test additionally pins
// the report shape the CI `make ingest` target prints.
func TestRunT14(t *testing.T) {
	rep, err := RunT14(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("T14 report has %d gate rows, want 5:\n%s", len(rep.Rows), rep.Render())
	}
	for _, row := range rep.Rows {
		if row[3] != "ok" {
			t.Errorf("gate %q reports status %q", row[0], row[3])
		}
	}
	if !strings.Contains(rep.Rows[0][1], "/") {
		t.Errorf("torn-read row does not report the query count: %q", rep.Rows[0][1])
	}
	if rep.Notes == "" {
		t.Error("T14 report has no notes")
	}
}
