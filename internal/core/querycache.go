package core

import (
	"container/list"
	"fmt"
	"sync"

	"drugtree/internal/query"
	"drugtree/internal/store"
)

// queryCache is a statement-level LRU result cache: repeated DTQL
// strings are answered without re-planning or re-executing, as long
// as no table changed since the entry was filled. It complements the
// range-semantic cache (which serves *subsumed* tree navigation);
// this one serves exact repeats of arbitrary statements — the
// dashboard-refresh pattern.
//
// get returns a deep copy (query.Result.Clone), so a caller mutating
// the rows it was handed cannot corrupt the cached entry that later
// hits serve from.
type queryCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recent
}

type queryCacheEntry struct {
	key     string
	version string // per-table version key at fill time (see versionKey)
	res     *query.Result
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// get returns the cached result when present and still current.
func (c *queryCache) get(key string, version string) (*query.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*queryCacheEntry)
	if e.version != version {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.res.Clone(), true
}

// put stores a result, evicting the least-recently-used entry at
// capacity.
func (c *queryCache) put(key string, version string, res *query.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*queryCacheEntry).version = version
		el.Value.(*queryCacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*queryCacheEntry).key)
	}
	el := c.order.PushFront(&queryCacheEntry{key: key, version: version, res: res})
	c.entries[key] = el
}

// clear empties the cache.
func (c *queryCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element, c.capacity)
	c.order.Init()
}

// len reports the number of cached statements.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// versionKey renders the per-table commit versions of exactly the
// tables stmt reads — taken from the statement's pinned snapshot, so
// the currency check and the execution agree on one image — plus the
// coordinator's topology epoch when sharded (a shard failing or
// recovering changes which rows a query can see). A commit to a table
// the statement never reads leaves its key unchanged, so a ligands
// sync no longer evicts cached tree_nodes plans.
func (e *Engine) versionKey(stmt *query.SelectStmt, snap *store.SnapshotHandle) string {
	vers := make(map[string]int64)
	for _, name := range query.TablesReferenced(stmt) {
		if v, ok := snap.Version(name); ok {
			vers[name] = v
		}
	}
	key := store.VersionKey(vers)
	if e.coord != nil {
		key = fmt.Sprintf("%sepoch=%d;", key, e.coord.Epoch())
	}
	return key
}
