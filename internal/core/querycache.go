package core

import (
	"container/list"
	"sync"

	"drugtree/internal/query"
)

// queryCache is a statement-level LRU result cache: repeated DTQL
// strings are answered without re-planning or re-executing, as long
// as no table changed since the entry was filled. It complements the
// range-semantic cache (which serves *subsumed* tree navigation);
// this one serves exact repeats of arbitrary statements — the
// dashboard-refresh pattern.
//
// get returns a deep copy (query.Result.Clone), so a caller mutating
// the rows it was handed cannot corrupt the cached entry that later
// hits serve from.
type queryCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recent
}

type queryCacheEntry struct {
	key     string
	version int64 // sum of table versions at fill time
	res     *query.Result
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// get returns the cached result when present and still current.
func (c *queryCache) get(key string, version int64) (*query.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*queryCacheEntry)
	if e.version != version {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.res.Clone(), true
}

// put stores a result, evicting the least-recently-used entry at
// capacity.
func (c *queryCache) put(key string, version int64, res *query.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*queryCacheEntry).version = version
		el.Value.(*queryCacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*queryCacheEntry).key)
	}
	el := c.order.PushFront(&queryCacheEntry{key: key, version: version, res: res})
	c.entries[key] = el
}

// clear empties the cache.
func (c *queryCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element, c.capacity)
	c.order.Init()
}

// len reports the number of cached statements.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// dbVersion sums every table's version — a cheap global change
// counter that conservatively invalidates the statement cache on any
// write anywhere. Sharded engines also fold in the coordinator's
// topology epoch: a shard failing (or recovering) changes which rows
// a query can see, so results cached against the old topology must
// not be served against the new one.
func (e *Engine) dbVersion() int64 {
	var v int64
	for _, name := range e.db.TableNames() {
		t, err := e.db.Table(name)
		if err != nil {
			continue
		}
		v += t.Version()
	}
	if e.coord != nil {
		v += e.coord.Epoch() << 32
	}
	return v
}
