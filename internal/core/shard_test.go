package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"drugtree/internal/netsim"
	"drugtree/internal/store"
)

// canonShardRow encodes a row for multiset comparison with floats
// rounded to 10 significant digits: the coordinator's merge
// reassociates float addition, so bit-exact comparison is unsound.
func canonShardRow(r store.Row) string {
	var b []byte
	for _, v := range r {
		if v.K == store.KindFloat {
			b = append(b, fmt.Sprintf("|%.9e", v.F)...)
			continue
		}
		b = append(b, '|')
		b = store.AppendValue(b, v)
	}
	return string(b)
}

// TestShardedEngineMatchesSingleNode builds the same integrated
// dataset twice — once single-node, once partitioned across three
// shards — and requires identical answers over the integrate-schema
// corpus: scans, co-partitioned joins, partial re-aggregation, top-k
// merge, subtree predicates, and the gather fallback.
func TestShardedEngineMatchesSingleNode(t *testing.T) {
	single := buildEngine(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Shards = 3
	// Same store, same tree: only the execution topology differs.
	sharded, err := NewWithTree(single.DB(), single.Tree(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })

	if sharded.Coordinator() == nil {
		t.Fatal("Shards=3 engine has no coordinator")
	}
	if single.Coordinator() != nil || single.ShardHealth() != nil {
		t.Fatal("single-node engine reports a coordinator")
	}

	// A named clade for the subtree query: first non-root internal node.
	tree := single.Tree()
	clade := ""
	for i := 0; i < tree.Len(); i++ {
		id := tree.NodeAtPre(i)
		if !tree.Node(id).IsLeaf() && i != 0 {
			clade = tree.Node(id).Name
			break
		}
	}

	corpus := []struct {
		q      string
		keyPos int // sort-key column for ordered queries, -1 otherwise
	}{
		{"SELECT accession, family, length FROM proteins", -1},
		{"SELECT accession FROM proteins WHERE family = 'FAM01'", -1},
		{"SELECT p.accession, a.ligand_id, a.affinity FROM proteins p JOIN activities a ON p.accession = a.protein_id WHERE a.affinity > 6", -1},
		{"SELECT p.accession, n.organism FROM proteins p JOIN annotations n ON p.accession = n.protein_id", -1},
		{"SELECT COUNT(*), SUM(affinity), AVG(affinity), MIN(affinity), MAX(affinity) FROM activities", -1},
		{"SELECT family, COUNT(*), AVG(length) FROM proteins GROUP BY family", -1},
		{"SELECT protein_id, AVG(affinity) AS m FROM activities GROUP BY protein_id ORDER BY m DESC LIMIT 5", 1},
		{"SELECT accession, length FROM proteins ORDER BY length DESC LIMIT 7", 1},
		{"SELECT ligand_id, weight FROM ligands WHERE weight > 100", -1},
		{fmt.Sprintf("SELECT name FROM tree_nodes WHERE WITHIN_SUBTREE(pre, '%s') AND is_leaf = TRUE", clade), -1},
		{"SELECT accession FROM proteins WHERE accession IN (SELECT protein_id FROM activities WHERE affinity > 7)", -1},
		{"SELECT pre, name FROM tree_nodes WHERE pre >= 5 AND pre <= 20", -1},
	}
	ctx := context.Background()
	for _, c := range corpus {
		base, err := single.Query(ctx, c.q)
		if err != nil {
			t.Fatalf("query %q: single-node: %v", c.q, err)
		}
		got, err := sharded.Query(ctx, c.q)
		if err != nil {
			t.Fatalf("query %q: sharded: %v", c.q, err)
		}
		if len(base.Rows) != len(got.Rows) {
			t.Fatalf("query %q: row counts diverge: single %d, sharded %d", c.q, len(base.Rows), len(got.Rows))
		}
		if c.keyPos >= 0 {
			for j := range base.Rows {
				a, b := base.Rows[j][c.keyPos], got.Rows[j][c.keyPos]
				if a.K != b.K || canonShardRow(store.Row{a}) != canonShardRow(store.Row{b}) {
					t.Fatalf("query %q: sort key %d differs: %v vs %v", c.q, j, a, b)
				}
			}
			continue
		}
		counts := map[string]int{}
		for _, r := range base.Rows {
			counts[canonShardRow(r)]++
		}
		for _, r := range got.Rows {
			k := canonShardRow(r)
			counts[k]--
			if counts[k] < 0 {
				t.Fatalf("query %q: result multisets differ", c.q)
			}
		}
	}

	// Shard health: three live partitions, all holding rows.
	hs := sharded.ShardHealth()
	if len(hs) != 3 {
		t.Fatalf("ShardHealth reports %d shards, want 3", len(hs))
	}
	var total int64
	for _, h := range hs {
		if h.Status != "ok" {
			t.Fatalf("shard %d status %q, want ok", h.Shard, h.Status)
		}
		total += h.Rows
	}
	if total == 0 {
		t.Fatal("no partitioned rows resident on any shard")
	}

	// EXPLAIN through the engine surfaces the gather header, and a
	// point lookup on the partition key prunes to one shard.
	res, err := sharded.Query(ctx, "EXPLAIN SELECT accession FROM proteins")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Gather [shards=3 pruned=0") {
		t.Fatalf("EXPLAIN plan lacks gather header:\n%s", res.Plan)
	}
	res, err = sharded.Query(ctx, "EXPLAIN SELECT name FROM tree_nodes WHERE pre = 0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "Gather [shards=1 pruned=2") {
		t.Fatalf("point lookup did not prune shards:\n%s", res.Plan)
	}
}

// TestShardedStatementCache pins that the statement cache fronts the
// scatter-gather coordinator exactly as it fronts the single-node
// executor — repeated statements hit without re-scattering — and that
// a topology transition (shard failure or recovery) invalidates
// entries filled against the old topology, so a cached full COUNT is
// never served while a partition is down, nor a degraded COUNT after
// it recovers.
func TestShardedStatementCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 3
	cfg.QueryCacheEntries = 16
	// The degraded-topology phases query across a failed shard.
	cfg.AllowPartial = true
	e := buildEngine(t, cfg)
	t.Cleanup(func() { e.Close() })
	ctx := context.Background()
	hits := func() int64 { return e.Metrics.Counter("query.stmt_cache_hits").Value() }

	const q = "SELECT COUNT(*) FROM proteins"
	full, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hits() != 0 {
		t.Fatalf("first execution hit the cache (%d hits)", hits())
	}
	again, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("repeat execution missed the cache (%d hits)", hits())
	}
	if again.Rows[0][0].I != full.Rows[0][0].I {
		t.Fatalf("cached COUNT = %d, want %d", again.Rows[0][0].I, full.Rows[0][0].I)
	}

	// Failing a shard must invalidate the cached full answer.
	e.Coordinator().FailShard(1)
	degraded, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("degraded topology served a cached full result (%d hits)", hits())
	}
	victim, err := e.Coordinator().Shard(1).DB().Table("proteins")
	if err != nil {
		t.Fatal(err)
	}
	if want := full.Rows[0][0].I - int64(victim.Len()); degraded.Rows[0][0].I != want {
		t.Fatalf("degraded COUNT = %d, want %d", degraded.Rows[0][0].I, want)
	}

	// Restoring it must invalidate the cached degraded answer.
	e.Coordinator().RestoreShard(1)
	restored, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("restored topology served a cached degraded result (%d hits)", hits())
	}
	if restored.Rows[0][0].I != full.Rows[0][0].I {
		t.Fatalf("restored COUNT = %d, want %d", restored.Rows[0][0].I, full.Rows[0][0].I)
	}
	// And the restored-topology entry itself caches again.
	if _, err := e.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if hits() != 2 {
		t.Fatalf("restored topology does not cache (%d hits)", hits())
	}
}

// TestReplicatedEngineCacheInvalidatesOnPromotion runs a replicated
// sharded engine and pins that both replication topology transitions —
// a leader kill and the follower promotion that heals it — move the
// topology epoch the statement cache is keyed on, so no answer crosses
// a transition, while the query itself keeps succeeding throughout
// (the follower serves reads while the leader is dead).
func TestReplicatedEngineCacheInvalidatesOnPromotion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 3
	cfg.Replicas = 1
	cfg.QueryCacheEntries = 16
	cfg.ReplicaClock = netsim.NewVirtualClock()
	e := buildEngine(t, cfg)
	t.Cleanup(func() { e.Close() })
	ctx := context.Background()
	hits := func() int64 { return e.Metrics.Counter("query.stmt_cache_hits").Value() }

	const q = "SELECT COUNT(*) FROM proteins"
	full, err := e.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("repeat execution missed the cache (%d hits)", hits())
	}

	// A dead leader is a topology transition: the cached entry must not
	// be served, but the shard's follower answers the re-execution with
	// the full count — zero failed reads, zero missing rows.
	e.Coordinator().KillLeader(1)
	deg, err := e.Query(ctx, q)
	if err != nil {
		t.Fatalf("query with dead leader: %v", err)
	}
	if hits() != 1 {
		t.Fatalf("dead-leader topology served a cached result (%d hits)", hits())
	}
	if deg.Rows[0][0].I != full.Rows[0][0].I {
		t.Fatalf("follower-served COUNT = %d, want %d", deg.Rows[0][0].I, full.Rows[0][0].I)
	}
	if hs := e.ShardHealth(); hs[1].Status != "degraded" || len(hs[1].Replicas) != 2 {
		t.Fatalf("health with dead leader: %+v", hs[1])
	}

	// Promotion is another transition: it must invalidate again, then
	// the healed topology caches normally.
	if err := e.Coordinator().SyncReplicas(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Coordinator().Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", e.Coordinator().Promotions())
	}
	if _, err := e.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("post-promotion topology served a cached result (%d hits)", hits())
	}
	if _, err := e.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if hits() != 2 {
		t.Fatalf("healed topology does not cache (%d hits)", hits())
	}
}

// TestShardedEngineDegradedHealth fails one shard through the
// coordinator and checks the engine keeps answering with degraded
// health — the serving layers surface this as a stale pseudo-source.
func TestShardedEngineDegradedHealth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 3
	// Degraded service across a failed shard is opt-in.
	cfg.AllowPartial = true
	e := buildEngine(t, cfg)
	t.Cleanup(func() { e.Close() })
	if e.Coordinator() == nil {
		t.Fatal("Shards=3 engine has no coordinator")
	}
	e.Coordinator().FailShard(1)
	hs := e.ShardHealth()
	if hs[1].Status != "failed" || hs[0].Status != "ok" || hs[2].Status != "ok" {
		t.Fatalf("health after failure: %+v", hs)
	}
	res, err := e.Query(context.Background(), "SELECT COUNT(*) FROM proteins")
	if err != nil {
		t.Fatalf("query with failed shard: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("degraded COUNT returned %d rows", len(res.Rows))
	}
}
