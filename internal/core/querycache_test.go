package core

import (
	"context"
	"fmt"
	"testing"

	"drugtree/internal/store"
)

func TestStatementCacheHitsOnRepeat(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 16
	e := buildEngine(t, cfg)
	q := "SELECT family, COUNT(*) FROM proteins GROUP BY family ORDER BY family"
	r1, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if e.Metrics.Counter("query.stmt_cache_hits").Value() != 1 {
		t.Fatalf("hits = %d", e.Metrics.Counter("query.stmt_cache_hits").Value())
	}
	// The hit serves a private clone, never the cached pointer.
	if r1 == r2 {
		t.Fatal("cache hit returned the shared cached result pointer")
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("hit rows = %d, want %d", len(r2.Rows), len(r1.Rows))
	}
}

// TestStatementCacheHitIsolation is the cache-aliasing regression
// test: a caller scribbling over the rows one hit returned must not
// corrupt what the next hit serves.
func TestStatementCacheHitIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 16
	e := buildEngine(t, cfg)
	q := "SELECT family, COUNT(*) FROM proteins GROUP BY family ORDER BY family"
	fill, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", fill.Rows)
	for _, r := range fill.Rows {
		for i := range r {
			r[i] = store.StringValue("CORRUPTED")
		}
	}
	hit, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%v", hit.Rows); got != want {
		t.Fatalf("mutating the fill result corrupted the cache:\n got %s\nwant %s", got, want)
	}
	for _, r := range hit.Rows {
		for i := range r {
			r[i] = store.StringValue("CORRUPTED")
		}
	}
	again, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%v", again.Rows); got != want {
		t.Fatalf("mutating a hit result corrupted the cache:\n got %s\nwant %s", got, want)
	}
}

func TestStatementCacheInvalidatedByWrite(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 16
	e := buildEngine(t, cfg)
	q := "SELECT COUNT(*) FROM ligands"
	r1, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the ligands table: any table version change invalidates.
	lig, err := e.DB().Table("ligands")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lig.Insert(store.Row{
		store.StringValue("LIGX"), store.StringValue("x"),
		store.StringValue("CCO"), store.FloatValue(46), store.StringValue("C2H6O"),
	}); err != nil {
		t.Fatal(err)
	}
	r2, err := e.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("stale statement served after write")
	}
	if r2.Rows[0][0].I != r1.Rows[0][0].I+1 {
		t.Fatalf("count did not reflect the write: %v vs %v", r2.Rows[0][0], r1.Rows[0][0])
	}
}

func TestStatementCacheLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 2
	e := buildEngine(t, cfg)
	queries := []string{
		"SELECT COUNT(*) FROM proteins",
		"SELECT COUNT(*) FROM ligands",
		"SELECT COUNT(*) FROM activities",
	}
	for _, q := range queries {
		if _, err := e.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.stmtCache.len(); got != 2 {
		t.Fatalf("cache holds %d statements, capacity 2", got)
	}
	// The first statement was evicted: querying it misses.
	before := e.Metrics.Counter("query.stmt_cache_hits").Value()
	if _, err := e.Query(context.Background(), queries[0]); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.Counter("query.stmt_cache_hits").Value() != before {
		t.Fatal("evicted statement hit")
	}
	// The most recent one still hits.
	if _, err := e.Query(context.Background(), queries[2]); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.Counter("query.stmt_cache_hits").Value() != before+1 {
		t.Fatal("recent statement missed")
	}
}

func TestStatementCacheDisabledByDefault(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	q := "SELECT COUNT(*) FROM proteins"
	r1, _ := e.Query(context.Background(), q)
	r2, _ := e.Query(context.Background(), q)
	if r1 == r2 {
		t.Fatal("statement cache active without opt-in")
	}
}

func TestStatementCacheClearedByResetSession(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 8
	e := buildEngine(t, cfg)
	q := "SELECT COUNT(*) FROM proteins"
	e.Query(context.Background(), q)
	e.ResetSession()
	if e.stmtCache.len() != 0 {
		t.Fatal("reset did not clear the statement cache")
	}
}

func TestStatementCacheConcurrentAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 8
	e := buildEngine(t, cfg)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("SELECT COUNT(*) FROM proteins WHERE family = 'FAM%d'", i%3)
				if _, err := e.Query(context.Background(), q); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
