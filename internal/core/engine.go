// Package core is the DrugTree engine: it builds the
// protein-motivated phylogenetic tree, overlays ligand activity data
// on it, and answers interactive queries through the optimizing DTQL
// engine with the semantic cache and prefetcher in front — the system
// the poster describes.
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"drugtree/internal/admission"
	"drugtree/internal/bio/align"
	"drugtree/internal/bio/seq"
	"drugtree/internal/cache"
	"drugtree/internal/integrate"
	"drugtree/internal/metrics"
	"drugtree/internal/netsim"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/shard"
	"drugtree/internal/store"
)

// TreeMethod selects how the phylogeny is built from sequences.
type TreeMethod string

const (
	// TreeNJAlign builds an NJ tree over alignment distances
	// (accurate; O(n²) alignments).
	TreeNJAlign TreeMethod = "nj-align"
	// TreeNJKmer builds an NJ tree over alignment-free k-mer cosine
	// distances (fast; the default above a few hundred proteins).
	TreeNJKmer TreeMethod = "nj-kmer"
	// TreeUPGMA builds a UPGMA tree over k-mer distances.
	TreeUPGMA TreeMethod = "upgma"
)

// Config tunes the engine.
type Config struct {
	// Method selects tree construction (default TreeNJAlign under
	// 300 proteins, TreeNJKmer above).
	Method TreeMethod
	// QueryOptions configures the DTQL optimizer (default: all on).
	QueryOptions query.Options
	// CacheBytes bounds the semantic cache (default 8 MiB; 0
	// disables caching).
	CacheBytes int64
	// CacheExactOnly disables cache range subsumption (ablation).
	CacheExactOnly bool
	// QueryCacheEntries enables the statement-level result cache with
	// the given LRU capacity; 0 (the default) disables it. Cached
	// results are returned by pointer, so callers must treat query
	// results as immutable when this is on. Opt-in because repeated
	// identical statements short-circuit the optimizer and executor
	// entirely, which would invalidate latency experiments that rerun
	// one query (the server enables it; see experiment T6).
	QueryCacheEntries int
	// EnablePrefetch turns on navigation prefetching.
	EnablePrefetch bool
	// KmerK is the k-mer length for alignment-free distances.
	KmerK int
	// Admission, when set, gates Query behind an overload-protection
	// limiter (internal/admission): past the configured concurrency
	// and queue bounds, queries fail fast with a *admission.Rejection
	// carrying a retry hint instead of queueing unboundedly. Statement
	// cache hits bypass the gate (they do no engine work). Nil leaves
	// admission to the serving layers.
	Admission *admission.Config
	// Shards, when >= 2, partitions the database across that many
	// in-process shard instances at build time — tree_nodes by
	// preorder interval, proteins/activities/annotations following
	// their protein's leaf — and answers Query through the
	// scatter-gather coordinator (internal/shard). Each shard owns its
	// own store (durable under <dir>/shards when the source store is
	// durable), indexes, and, when Admission is set, its own limiter.
	// 0 or 1 keeps the single-node path unchanged.
	//
	// The engine-level caches sit in front of the coordinator exactly
	// as they do in front of the single-node executor: statement-cache
	// hits (QueryCacheEntries) are served before admission and before
	// any shard work, with entries additionally invalidated on shard
	// failure/recovery via the coordinator's topology epoch; the
	// semantic range cache and prefetcher serve tree navigation from
	// the engine's retained source store and are unaffected by the
	// query topology.
	Shards int
	// Replicas, when > 0 (and Shards >= 2), gives every shard a
	// replica set: one leader plus Replicas followers kept current by
	// per-shard WAL shipping, with read subplans routed across the
	// healthy replicas and promotion failover when a leader dies
	// (internal/replica). Replication needs a durable log, so an
	// in-memory store gets a private temporary durability root that is
	// removed on Close. 0 leaves the single-store shard path
	// unchanged.
	Replicas int
	// MaxLagSeqs bounds replica read staleness (WAL records behind
	// the shard frontier); 0 demands fully-caught-up replicas,
	// negative disables the bound. Ignored without Replicas.
	MaxLagSeqs int64
	// AllowPartial serves queries that need unavailable shards (every
	// replica down) from the reachable ones — annotating results with
	// SkippedShards — instead of failing with shard.ErrShardUnavailable.
	AllowPartial bool
	// ReplicaClock injects the replication time source (experiments
	// use a virtual clock); nil means wall clock. Ignored without
	// Replicas.
	ReplicaClock netsim.Clock
	// WALSync selects the store's WAL fsync policy — the durability
	// contract of DESIGN §10. The zero value (store.SyncInterval)
	// group-commits every WALSyncEvery records; store.SyncAlways
	// fsyncs before acknowledging each write; store.SyncOff leaves
	// flushing to the OS. The policy must be set on the source store
	// at open time (see StoreOptions); shard stores and replica
	// followers inherit it from there, so one setting governs every
	// persistence path in the topology.
	WALSync store.SyncPolicy
	// WALSyncEvery is the group-commit interval for WALSync ==
	// store.SyncInterval (records between fsyncs); zero means
	// store.DefaultSyncEvery.
	WALSyncEvery int
}

// StoreOptions translates the config's durability knobs into the
// store.Options the source database must be opened with. The engine
// never reopens the source store itself — callers (drugtreed, tests)
// open it with these options and every derived store (shard
// partitions under <dir>/shards, replica followers) inherits them
// through src.Opts().
func (c Config) StoreOptions() store.Options {
	return store.Options{Sync: c.WALSync, SyncEvery: c.WALSyncEvery}
}

// DefaultConfig returns the fully optimized configuration.
func DefaultConfig() Config {
	return Config{
		QueryOptions:   query.DefaultOptions(),
		CacheBytes:     8 << 20,
		EnablePrefetch: true,
		KmerK:          4,
	}
}

// TreeTable is the name of the materialized tree relation.
const TreeTable = "tree_nodes"

// TreeSchema is the schema of the materialized tree relation. The
// `pre` column is the preorder number the interval index and
// WITHIN_SUBTREE operate on.
var TreeSchema = store.MustSchema(
	store.Column{Name: "pre", Kind: store.KindInt},
	store.Column{Name: "name", Kind: store.KindString},
	store.Column{Name: "parent_pre", Kind: store.KindInt},
	store.Column{Name: "depth", Kind: store.KindInt},
	store.Column{Name: "is_leaf", Kind: store.KindBool},
	store.Column{Name: "branch_length", Kind: store.KindFloat},
	store.Column{Name: "root_dist", Kind: store.KindFloat},
	store.Column{Name: "leaf_count", Kind: store.KindInt},
	store.Column{Name: "x", Kind: store.KindFloat},
	store.Column{Name: "y", Kind: store.KindFloat},
	// end_pre is the last preorder number inside the node's subtree;
	// [pre, end_pre] is the subtree interval, and pre ≤ P ≤ end_pre
	// is the indexable ancestor test ANCESTOR_OF rewrites to.
	store.Column{Name: "end_pre", Kind: store.KindInt},
)

// Engine is a live DrugTree instance.
type Engine struct {
	cfg     Config
	db      *store.DB
	tree    *phylo.Tree
	layout  *phylo.Layout
	catalog *query.DBCatalog
	sql     *query.Engine

	cache      *cache.Cache
	stmtCache  *queryCache
	prefetcher *cache.Prefetcher
	limiter    *admission.Limiter
	coord      *shard.Coordinator
	overlay    *ActivityOverlay
	Metrics    *metrics.Registry

	healthFn func() []integrate.SourceHealth

	byName map[string]phylo.NodeID
}

// New builds an engine over an integrated database (see
// internal/integrate): it constructs the phylogenetic tree from the
// proteins table, materializes tree_nodes, and wires the query stack.
func New(db *store.DB, cfg Config) (*Engine, error) {
	proteins, err := loadProteins(db)
	if err != nil {
		return nil, err
	}
	if len(proteins) == 0 {
		return nil, fmt.Errorf("core: proteins table is empty")
	}
	method := cfg.Method
	if method == "" {
		if len(proteins) <= 300 {
			method = TreeNJAlign
		} else {
			method = TreeNJKmer
		}
	}
	if cfg.KmerK == 0 {
		cfg.KmerK = 4
	}
	tree, err := buildTree(proteins, method, cfg.KmerK)
	if err != nil {
		return nil, err
	}
	return NewWithTree(db, tree, cfg)
}

// NewWithTree builds an engine over a prebuilt (indexed or unindexed)
// tree — the path scaling experiments use with synthetic topologies.
func NewWithTree(db *store.DB, tree *phylo.Tree, cfg Config) (*Engine, error) {
	if err := tree.Index(); err != nil {
		return nil, err
	}
	nameClades(tree)
	if err := materializeTree(db, tree); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		db:         db,
		tree:       tree,
		layout:     phylo.NewLayout(tree),
		catalog:    query.NewDBCatalog(db, tree),
		Metrics:    metrics.NewRegistry(),
		prefetcher: cache.NewPrefetcher(),
		byName:     make(map[string]phylo.NodeID, tree.Len()),
	}
	e.sql = query.NewEngine(e.catalog, cfg.QueryOptions)
	if _, err := db.Table(integrate.TableActivities); err == nil {
		// Incrementally-maintained subtree aggregates over activities:
		// the optimizer answers WITHIN_SUBTREE COUNT/SUM/AVG(affinity)
		// from the overlay when the statement's snapshot matches the
		// overlay version (see overlay.go and query/overlay.go).
		ov, err := NewActivityOverlay(db, tree)
		if err != nil {
			return nil, err
		}
		e.overlay = ov
		e.catalog.OverlayAggs = ov
	}
	if cfg.CacheBytes > 0 {
		e.cache = cache.New(cfg.CacheBytes)
		e.cache.ExactOnly = cfg.CacheExactOnly
	}
	if cfg.QueryCacheEntries > 0 {
		e.stmtCache = newQueryCache(cfg.QueryCacheEntries)
	}
	if cfg.Admission != nil {
		ac := *cfg.Admission
		if ac.Name == "" {
			ac.Name = "engine"
		}
		if ac.Metrics == nil {
			ac.Metrics = e.Metrics
		}
		e.limiter = admission.NewLimiter(ac)
	}
	if cfg.Shards >= 2 {
		sopts := shard.Options{
			Shards:       cfg.Shards,
			QueryOptions: cfg.QueryOptions,
			Replicas:     cfg.Replicas,
			MaxLagSeqs:   cfg.MaxLagSeqs,
			AllowPartial: cfg.AllowPartial,
			Clock:        cfg.ReplicaClock,
		}
		if cfg.Admission != nil {
			// Each shard gets its own limiter over the same bounds; the
			// engine-level gate above already caps whole-query
			// concurrency, so the per-shard gates only shed when a
			// single partition is independently saturated.
			ac := *cfg.Admission
			if ac.Metrics == nil {
				ac.Metrics = e.Metrics
			}
			sopts.Admission = &ac
		}
		if dir := db.Dir(); dir != "" {
			sopts.Dir = filepath.Join(dir, "shards")
		}
		coord, err := shard.Partition(db, tree, sopts)
		if err != nil {
			return nil, err
		}
		e.coord = coord
	}
	for i := 0; i < tree.Len(); i++ {
		e.byName[tree.Node(phylo.NodeID(i)).Name] = phylo.NodeID(i)
	}
	return e, nil
}

// loadProteins reads the proteins table into seq.Protein records.
func loadProteins(db *store.DB) ([]*seq.Protein, error) {
	t, err := db.Table(integrate.TableProteins)
	if err != nil {
		return nil, err
	}
	acc := t.Schema().ColumnIndex("accession")
	name := t.Schema().ColumnIndex("name")
	fam := t.Schema().ColumnIndex("family")
	sq := t.Schema().ColumnIndex("sequence")
	if acc < 0 || sq < 0 {
		return nil, fmt.Errorf("core: proteins table lacks accession/sequence columns")
	}
	var out []*seq.Protein
	t.Scan(func(_ int64, r store.Row) bool {
		p := &seq.Protein{ID: r[acc].S, Residues: r[sq].S}
		if name >= 0 {
			p.Name = r[name].S
		}
		if fam >= 0 {
			p.Family = r[fam].S
		}
		out = append(out, p)
		return true
	})
	return out, nil
}

// buildTree constructs the phylogeny with the selected method.
func buildTree(proteins []*seq.Protein, method TreeMethod, k int) (*phylo.Tree, error) {
	names := make([]string, len(proteins))
	for i, p := range proteins {
		names[i] = p.ID
	}
	var m *phylo.DistanceMatrix
	switch method {
	case TreeNJAlign:
		scoring := align.BLOSUM62(8)
		m = phylo.ComputeDistances(names, func(i, j int) float64 {
			return align.DistanceBanded(proteins[i].Residues, proteins[j].Residues, scoring, 32)
		})
	case TreeNJKmer, TreeUPGMA:
		profiles := make([]*seq.KmerProfile, len(proteins))
		for i, p := range proteins {
			prof, err := seq.NewKmerProfile(p.Residues, k)
			if err != nil {
				return nil, err
			}
			profiles[i] = prof
		}
		m = phylo.ComputeDistances(names, func(i, j int) float64 {
			return profiles[i].Cosine(profiles[j])
		})
	default:
		return nil, fmt.Errorf("core: unknown tree method %q", method)
	}
	if method == TreeUPGMA {
		return phylo.UPGMA(m)
	}
	return phylo.NeighborJoining(m)
}

// nameClades assigns synthetic names to unnamed internal nodes so
// WITHIN_SUBTREE can reference any clade.
func nameClades(t *phylo.Tree) {
	for i := 0; i < t.Len(); i++ {
		n := t.Node(phylo.NodeID(i))
		if n.Name == "" {
			n.Name = fmt.Sprintf("clade_%d", t.Pre(phylo.NodeID(i)))
		}
	}
}

// materializeTree (re)creates the tree_nodes relation.
func materializeTree(db *store.DB, t *phylo.Tree) error {
	tab, err := db.Table(TreeTable)
	if err != nil {
		tab, err = db.CreateTable(TreeTable, TreeSchema)
		if err != nil {
			return err
		}
	} else if tab.Len() == t.Len() {
		// Reopened database with the same tree already materialized.
		return nil
	} else if tab.Len() > 0 {
		return fmt.Errorf("core: %s holds %d rows but the tree has %d nodes", TreeTable, tab.Len(), t.Len())
	}
	layout := phylo.NewLayout(t)
	for p := 0; p < t.Len(); p++ {
		id := t.NodeAtPre(p)
		n := t.Node(id)
		parentPre := int64(-1)
		if n.Parent != phylo.None {
			parentPre = int64(t.Pre(n.Parent))
		}
		_, endPre := t.SubtreeInterval(id)
		row := store.Row{
			store.IntValue(int64(p)),
			store.StringValue(n.Name),
			store.IntValue(parentPre),
			store.IntValue(int64(t.Depth(id))),
			store.BoolValue(n.IsLeaf()),
			store.FloatValue(n.Length),
			store.FloatValue(t.RootDistance(id)),
			store.IntValue(int64(t.LeafCount(id))),
			store.FloatValue(layout.X[id]),
			store.FloatValue(layout.Y[id]),
			store.IntValue(int64(endPre)),
		}
		if _, err := db.Insert(TreeTable, row); err != nil {
			return err
		}
	}
	if err := tab.CreateIndex("pre", store.IndexBTree); err != nil {
		return err
	}
	if err := tab.CreateIndex("name", store.IndexHash); err != nil {
		return err
	}
	return nil
}

// Tree returns the engine's phylogenetic tree.
func (e *Engine) Tree() *phylo.Tree { return e.tree }

// Layout returns the display layout.
func (e *Engine) Layout() *phylo.Layout { return e.layout }

// DB returns the underlying store.
func (e *Engine) DB() *store.DB { return e.db }

// Overlay returns the live activity overlay (nil when the database has
// no activities table).
func (e *Engine) Overlay() *ActivityOverlay { return e.overlay }

// CacheStats returns semantic cache counters (zero Stats when caching
// is disabled).
func (e *Engine) CacheStats() cache.Stats {
	if e.cache == nil {
		return cache.Stats{}
	}
	return e.cache.Stats()
}

// AttachHealth connects a per-source freshness provider (normally the
// importer's Health method) so servers can surface degraded sources.
func (e *Engine) AttachHealth(fn func() []integrate.SourceHealth) { e.healthFn = fn }

// SourceHealth reports per-source freshness, or nil when no provider
// is attached (engines built from a static snapshot).
func (e *Engine) SourceHealth() []integrate.SourceHealth {
	if e.healthFn == nil {
		return nil
	}
	return e.healthFn()
}

// NodeByName resolves a node name (protein accession or clade label).
func (e *Engine) NodeByName(name string) (phylo.NodeID, error) {
	id, ok := e.byName[name]
	if !ok {
		return phylo.None, fmt.Errorf("core: no tree node named %q", name)
	}
	return id, nil
}

// Query runs a DTQL statement through the engine's optimizer
// settings, consulting the statement cache first when enabled. The
// caller owns the returned result and may mutate it freely: cache
// entries are cloned on both fill and hit. The context cancels
// mid-flight execution — a client that navigates away mid-query
// aborts the work instead of waiting it out.
//
// Each statement runs against one pinned MVCC snapshot: the cache
// currency check and the execution read the same frozen image, so a
// sync publishing between them can neither serve a stale hit against
// new versions nor fill the cache with a result no single version ever
// contained.
func (e *Engine) Query(ctx context.Context, src string) (*query.Result, error) {
	start := time.Now()
	stmt, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	var snap *store.SnapshotHandle
	if e.coord == nil || e.stmtCache != nil {
		// The sharded path executes against the shard stores and only
		// needs the source snapshot for cache-key versions.
		snap = e.db.PinSnapshot()
		defer snap.Release()
	}
	var version string
	if e.stmtCache != nil {
		version = e.versionKey(stmt, snap)
		if res, ok := e.stmtCache.get(src, version); ok {
			e.Metrics.Counter("query.stmt_cache_hits").Inc()
			e.Metrics.Histogram("query.latency").Record(time.Since(start))
			return res, nil
		}
		e.Metrics.Counter("query.stmt_cache_misses").Inc()
	}
	if e.limiter != nil {
		release, err := e.limiter.Acquire(ctx, 1)
		if err != nil {
			e.Metrics.Counter("query.shed").Inc()
			return nil, fmt.Errorf("core: query admission: %w", err)
		}
		defer release()
	}
	var res *query.Result
	if e.coord != nil {
		res, err = e.coord.Query(ctx, src)
	} else {
		res, err = e.sql.RunAt(ctx, stmt, snap)
	}
	e.Metrics.Histogram("query.latency").Record(time.Since(start))
	if err != nil {
		e.Metrics.Counter("query.errors").Inc()
		return nil, err
	}
	if e.stmtCache != nil {
		// Store a private copy: the caller owns res and may mutate its
		// rows, which must not reach the cached entry (get clones on
		// the way out for the same reason).
		e.stmtCache.put(src, version, res.Clone())
	}
	e.Metrics.Counter("query.count").Inc()
	return res, nil
}

// Limiter exposes the engine's admission limiter (nil when
// Config.Admission is unset) so serving layers can inspect Stats.
func (e *Engine) Limiter() *admission.Limiter { return e.limiter }

// Coordinator exposes the scatter-gather coordinator (nil when
// Config.Shards < 2).
func (e *Engine) Coordinator() *shard.Coordinator { return e.coord }

// ShardHealth reports per-shard liveness and resident row counts, or
// nil for a single-node engine. Serving layers surface these next to
// source freshness so clients see a degraded (not dead) system when a
// partition is down.
func (e *Engine) ShardHealth() []shard.Health {
	if e.coord == nil {
		return nil
	}
	return e.coord.Health()
}

// Close releases sharded resources (the shard stores and their WALs).
// A no-op for single-node engines, whose store the caller owns.
func (e *Engine) Close() error {
	if e.coord == nil {
		return nil
	}
	return e.coord.Close()
}

// Drain gracefully stops query admission: queued queries are shed, the
// in-flight ones finish, bounded by ctx. A no-op without admission.
func (e *Engine) Drain(ctx context.Context) error {
	if e.limiter == nil {
		return nil
	}
	return e.limiter.Drain(ctx)
}
