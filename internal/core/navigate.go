package core

import (
	"context"
	"fmt"
	"time"

	"drugtree/internal/cache"
	"drugtree/internal/phylo"
	"drugtree/internal/store"
)

// NodeView is one tree node as shipped to clients.
type NodeView struct {
	Pre       int64
	Name      string
	ParentPre int64
	Depth     int64
	IsLeaf    bool
	Length    float64
	RootDist  float64
	LeafCount int64
	X, Y      float64
}

// viewFromRow decodes a tree_nodes row (TreeSchema order).
func viewFromRow(r store.Row) NodeView {
	return NodeView{
		Pre:       r[0].I,
		Name:      r[1].S,
		ParentPre: r[2].I,
		Depth:     r[3].I,
		IsLeaf:    r[4].Bool(),
		Length:    r[5].F,
		RootDist:  r[6].F,
		LeafCount: r[7].I,
		X:         r[8].F,
		Y:         r[9].F,
	}
}

var treeCacheKey = cache.Key{Relation: TreeTable, RangeCol: "pre", Residual: ""}

// OpenSubtree returns every node in the subtree rooted at the named
// node, serving from the semantic cache when possible and recording
// the visit for the prefetcher. cached reports whether the cache
// answered.
func (e *Engine) OpenSubtree(ctx context.Context, nodeName string) (views []NodeView, cached bool, err error) {
	id, err := e.NodeByName(nodeName)
	if err != nil {
		return nil, false, err
	}
	start := time.Now()
	defer func() {
		e.Metrics.Histogram("navigate.latency").Record(time.Since(start))
	}()
	e.prefetcher.RecordVisit(id)
	rows, hit, err := e.subtreeRows(ctx, id)
	if err != nil {
		return nil, false, err
	}
	views = make([]NodeView, len(rows))
	for i, r := range rows {
		views[i] = viewFromRow(r)
	}
	if hit {
		e.Metrics.Counter("navigate.cache_hits").Inc()
	} else {
		e.Metrics.Counter("navigate.cache_misses").Inc()
	}
	return views, hit, nil
}

// subtreeRows fetches the tree_nodes rows of a subtree through the
// cache.
func (e *Engine) subtreeRows(ctx context.Context, id phylo.NodeID) ([]store.Row, bool, error) {
	lo, hi := e.tree.SubtreeInterval(id)
	tab, err := e.db.Table(TreeTable)
	if err != nil {
		return nil, false, err
	}
	version := tab.Version()
	if e.cache != nil {
		if rows, _, ok := e.cache.Get(treeCacheKey, int64(lo), int64(hi), version); ok {
			return rows, true, nil
		}
	}
	start := time.Now()
	res, err := e.Query(ctx, fmt.Sprintf(
		"SELECT pre, name, parent_pre, depth, is_leaf, branch_length, root_dist, leaf_count, x, y FROM %s WHERE pre BETWEEN %d AND %d",
		TreeTable, lo, hi))
	if err != nil {
		return nil, false, err
	}
	cost := time.Since(start)
	if e.cache != nil {
		e.cache.Put(&cache.Entry{
			Key: treeCacheKey, Lo: int64(lo), Hi: int64(hi),
			Columns: res.Columns, Rows: res.Rows, RangeIdx: 0,
			Version: version, Cost: cost,
		})
	}
	return res.Rows, false, nil
}

// RunPrefetch executes the prefetcher's current suggestions, warming
// the cache. It returns the number of subtrees prefetched. The server
// calls this in the background after answering each interaction; the
// experiments call it synchronously for determinism.
func (e *Engine) RunPrefetch(ctx context.Context) int {
	if !e.cfg.EnablePrefetch || e.cache == nil {
		return 0
	}
	suggestions := e.prefetcher.Suggest(e.tree)
	n := 0
	for _, id := range suggestions {
		// Only prefetch what the cache does not already cover.
		lo, hi := e.tree.SubtreeInterval(id)
		tab, err := e.db.Table(TreeTable)
		if err != nil {
			return n
		}
		if _, _, ok := e.cache.Get(treeCacheKey, int64(lo), int64(hi), tab.Version()); ok {
			continue
		}
		if _, _, err := e.subtreeRows(ctx, id); err == nil {
			n++
			e.Metrics.Counter("prefetch.executed").Inc()
		}
	}
	return n
}

// ResetSession clears navigation history and cache counters between
// simulated sessions.
func (e *Engine) ResetSession() {
	e.prefetcher.Reset()
	if e.cache != nil {
		e.cache.Clear()
	}
	if e.stmtCache != nil {
		e.stmtCache.clear()
	}
	e.Metrics.Reset()
}

// Children returns the direct children of the named node.
func (e *Engine) Children(nodeName string) ([]NodeView, error) {
	id, err := e.NodeByName(nodeName)
	if err != nil {
		return nil, err
	}
	var out []NodeView
	for _, c := range e.tree.Node(id).Children {
		out = append(out, e.nodeView(c))
	}
	return out, nil
}

// nodeView builds a NodeView directly from the in-memory tree (used
// for structural navigation that skips the query path).
func (e *Engine) nodeView(id phylo.NodeID) NodeView {
	n := e.tree.Node(id)
	parentPre := int64(-1)
	if n.Parent != phylo.None {
		parentPre = int64(e.tree.Pre(n.Parent))
	}
	return NodeView{
		Pre:       int64(e.tree.Pre(id)),
		Name:      n.Name,
		ParentPre: parentPre,
		Depth:     int64(e.tree.Depth(id)),
		IsLeaf:    n.IsLeaf(),
		Length:    n.Length,
		RootDist:  e.tree.RootDistance(id),
		LeafCount: int64(e.tree.LeafCount(id)),
		X:         e.layout.X[id],
		Y:         e.layout.Y[id],
	}
}

// Root returns the root node view.
func (e *Engine) Root() NodeView {
	return e.nodeView(e.tree.Root())
}

// Breadcrumbs returns the path from the root to the named node
// (inclusive, root first) through the DTQL engine's ANCESTOR_OF
// operator — the query behind the mobile client's breadcrumb bar.
func (e *Engine) Breadcrumbs(ctx context.Context, nodeName string) ([]NodeView, error) {
	if _, err := e.NodeByName(nodeName); err != nil {
		return nil, err
	}
	res, err := e.Query(ctx, fmt.Sprintf(
		"SELECT pre, name, parent_pre, depth, is_leaf, branch_length, root_dist, leaf_count, x, y FROM %s WHERE ANCESTOR_OF(pre, '%s') ORDER BY depth",
		TreeTable, nodeName))
	if err != nil {
		return nil, err
	}
	out := make([]NodeView, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = viewFromRow(r)
	}
	return out, nil
}
