package core

import (
	"context"
	"strings"
	"testing"

	"drugtree/internal/admission"
	"drugtree/internal/datagen"
	"drugtree/internal/integrate"
	"drugtree/internal/netsim"
	"drugtree/internal/phylo"
	"drugtree/internal/query"
	"drugtree/internal/source"
	"drugtree/internal/store"
)

// buildEngine generates a dataset, integrates it, and builds the
// engine with the given config.
func buildEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 3
	gen.ProteinsPerFamily = 8
	gen.NumLigands = 15
	gen.ActivityDensity = 0.5
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 5, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	e, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineBuildsTree(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	if got := len(e.Tree().Leaves()); got != 24 {
		t.Fatalf("tree has %d leaves, want 24", got)
	}
	tab, err := e.DB().Table(TreeTable)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != e.Tree().Len() {
		t.Fatalf("tree_nodes has %d rows, tree has %d nodes", tab.Len(), e.Tree().Len())
	}
	// Indexes exist.
	if typ, ok := tab.HasIndex("pre"); !ok || typ != store.IndexBTree {
		t.Fatal("pre index missing")
	}
	// Root view is consistent.
	root := e.Root()
	if root.LeafCount != 24 || root.Depth != 0 {
		t.Fatalf("root view = %+v", root)
	}
}

func TestEngineErrorsOnEmptyDB(t *testing.T) {
	db, _ := store.Open("")
	defer db.Close()
	if _, err := New(db, DefaultConfig()); err == nil {
		t.Fatal("engine built over empty DB")
	}
}

func TestNodeByName(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	if _, err := e.NodeByName("DT00000"); err != nil {
		t.Fatalf("leaf lookup: %v", err)
	}
	if _, err := e.NodeByName("nope"); err == nil {
		t.Fatal("missing node resolved")
	}
	// Internal clades got synthetic names.
	found := false
	for i := 0; i < e.Tree().Len(); i++ {
		if strings.HasPrefix(e.Tree().Node(phylo.NodeID(i)).Name, "clade_") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no named clades")
	}
}

func TestOpenSubtreeAndCache(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	rootName := e.Root().Name
	views, cached, err := e.OpenSubtree(context.Background(), rootName)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first open reported cached")
	}
	if len(views) != e.Tree().Len() {
		t.Fatalf("root subtree = %d nodes, want %d", len(views), e.Tree().Len())
	}
	// Second open hits the cache.
	_, cached, err = e.OpenSubtree(context.Background(), rootName)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second open missed the cache")
	}
	// A child subtree is answered by subsumption from the root entry.
	children, err := e.Children(rootName)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) == 0 {
		t.Fatal("root has no children")
	}
	_, cached, err = e.OpenSubtree(context.Background(), children[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("child subtree not subsumed by cached root")
	}
	if e.CacheStats().SubsumedHits == 0 {
		t.Fatalf("no subsumed hits recorded: %+v", e.CacheStats())
	}
}

func TestOpenSubtreeNoCacheConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 0
	e := buildEngine(t, cfg)
	name := e.Root().Name
	e.OpenSubtree(context.Background(), name)
	_, cached, err := e.OpenSubtree(context.Background(), name)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cache disabled but hit reported")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	rootName := e.Root().Name
	children, _ := e.Children(rootName)
	if len(children) < 2 {
		t.Skip("root too narrow for the prefetch scenario")
	}
	// Visit a child (not the root, whose entry would subsume all).
	_, _, err := e.OpenSubtree(context.Background(), children[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.RunPrefetch(context.Background()); n == 0 {
		t.Fatal("prefetch did nothing")
	}
	// The sibling should now be cached.
	_, cached, err := e.OpenSubtree(context.Background(), children[1].Name)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("prefetch did not warm the sibling subtree")
	}
}

func TestPrefetchDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnablePrefetch = false
	e := buildEngine(t, cfg)
	e.OpenSubtree(context.Background(), e.Root().Name)
	if n := e.RunPrefetch(context.Background()); n != 0 {
		t.Fatalf("prefetch ran while disabled: %d", n)
	}
}

func TestSubtreeActivity(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	rootName := e.Root().Name
	sum, err := e.SubtreeActivity(context.Background(), rootName)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Proteins != 24 {
		t.Fatalf("proteins = %d, want 24", sum.Proteins)
	}
	if sum.Activities == 0 || sum.DistinctLig == 0 {
		t.Fatalf("no activity aggregated: %+v", sum)
	}
	if sum.MeanAff <= 0 || sum.MaxAff < sum.MeanAff {
		t.Fatalf("implausible affinities: %+v", sum)
	}
	// Activities under root equal the whole activities table (all
	// references resolve to leaves).
	act, _ := e.DB().Table(integrate.TableActivities)
	if sum.Activities != int64(act.Len()) {
		t.Fatalf("root subtree activities = %d, table has %d", sum.Activities, act.Len())
	}
}

func TestSubtreeActivityOnLeaf(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	sum, err := e.SubtreeActivity(context.Background(), "DT00000")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Proteins != 1 {
		t.Fatalf("leaf subtree proteins = %d", sum.Proteins)
	}
}

func TestTopLigands(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	hits, err := e.TopLigands(context.Background(), e.Root().Name, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || len(hits) > 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].MeanAff > hits[i-1].MeanAff {
			t.Fatalf("hits not sorted by mean affinity: %v", hits)
		}
	}
	if _, err := e.TopLigands(context.Background(), "nope", 5, 1); err == nil {
		t.Fatal("missing node accepted")
	}
}

func TestProteinProfile(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	p, err := e.ProteinProfile(context.Background(), "DT00003")
	if err != nil {
		t.Fatal(err)
	}
	if p.Accession != "DT00003" || p.Organism == "" || p.EC == "" {
		t.Fatalf("profile = %+v", p)
	}
	for i := 1; i < len(p.Activities); i++ {
		if p.Activities[i].MeanAff > p.Activities[i-1].MeanAff {
			t.Fatal("activities not sorted")
		}
	}
	if _, err := e.ProteinProfile(context.Background(), "nope"); err == nil {
		t.Fatal("missing protein accepted")
	}
}

func TestFamilyEnrichment(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	// Find a ligand that actually has activity.
	res, err := e.Query(context.Background(), "SELECT ligand_id, COUNT(*) FROM activities GROUP BY ligand_id ORDER BY COUNT(*) DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	lig := res.Rows[0][0].S
	clades, err := e.FamilyEnrichment(context.Background(), lig, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clades) == 0 {
		t.Fatal("no enriched clades")
	}
	for i := 1; i < len(clades); i++ {
		if clades[i].MeanAff > clades[i-1].MeanAff {
			t.Fatal("clades not sorted")
		}
	}
}

func TestNaiveAndOptimizedEngineAgree(t *testing.T) {
	optCfg := DefaultConfig()
	naiveCfg := DefaultConfig()
	naiveCfg.QueryOptions = query.NaiveOptions()
	naiveCfg.CacheBytes = 0
	naiveCfg.EnablePrefetch = false

	opt := buildEngine(t, optCfg)
	naive := buildEngine(t, naiveCfg)
	// Same seed → same tree → same answers.
	oSum, err := opt.SubtreeActivity(context.Background(), opt.Root().Name)
	if err != nil {
		t.Fatal(err)
	}
	nSum, err := naive.SubtreeActivity(context.Background(), naive.Root().Name)
	if err != nil {
		t.Fatal(err)
	}
	if oSum.Activities != nSum.Activities || oSum.DistinctLig != nSum.DistinctLig {
		t.Fatalf("engines disagree: %+v vs %+v", oSum, nSum)
	}
	if diff := oSum.MeanAff - nSum.MeanAff; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean affinity differs: %g vs %g", oSum.MeanAff, nSum.MeanAff)
	}
}

func TestResetSession(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	e.OpenSubtree(context.Background(), e.Root().Name)
	e.ResetSession()
	if e.CacheStats().Hits != 0 {
		t.Fatal("reset did not clear stats")
	}
	_, cached, _ := e.OpenSubtree(context.Background(), e.Root().Name)
	if cached {
		t.Fatal("cache survived reset")
	}
}

func TestEnginePersistenceRoundTrip(t *testing.T) {
	// Full durability cycle: integrate into a disk-backed DB, build
	// the engine (materializing tree_nodes), checkpoint, close,
	// reopen, rebuild the engine — the materialized tree must be
	// reused and queries must agree.
	dir := t.TempDir()
	gen := datagen.DefaultConfig()
	gen.NumFamilies = 2
	gen.ProteinsPerFamily = 6
	gen.NumLigands = 8
	ds, err := datagen.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bundle := source.NewBundle(ds, netsim.ProfileLAN, 1, true)
	if _, err := integrate.NewImporter(db, bundle).ImportAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	e1, err := New(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum1, err := e1.SubtreeActivity(context.Background(), e1.Root().Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tab, err := db2.Table(TreeTable)
	if err != nil {
		t.Fatal(err)
	}
	rowsBefore := tab.Len()
	e2, err := New(db2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Same deterministic data → same tree; materialization reused
	// (no duplicate rows).
	if tab.Len() != rowsBefore {
		t.Fatalf("tree_nodes grew on reopen: %d → %d", rowsBefore, tab.Len())
	}
	sum2, err := e2.SubtreeActivity(context.Background(), e2.Root().Name)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Activities != sum2.Activities || sum1.DistinctLig != sum2.DistinctLig {
		t.Fatalf("answers changed across restart: %+v vs %+v", sum1, sum2)
	}
}

func TestBreadcrumbs(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	crumbs, err := e.Breadcrumbs(context.Background(), "DT00005")
	if err != nil {
		t.Fatal(err)
	}
	if len(crumbs) < 2 {
		t.Fatalf("breadcrumbs = %d entries", len(crumbs))
	}
	if crumbs[0].Name != e.Root().Name {
		t.Fatalf("first crumb = %q, want root", crumbs[0].Name)
	}
	if crumbs[len(crumbs)-1].Name != "DT00005" {
		t.Fatalf("last crumb = %q, want DT00005", crumbs[len(crumbs)-1].Name)
	}
	for i := 1; i < len(crumbs); i++ {
		if crumbs[i].Depth != crumbs[i-1].Depth+1 {
			t.Fatalf("crumb depths not consecutive: %v", crumbs)
		}
		if crumbs[i].ParentPre != crumbs[i-1].Pre {
			t.Fatalf("crumb %d not child of previous", i)
		}
	}
	if _, err := e.Breadcrumbs(context.Background(), "missing"); err == nil {
		t.Fatal("missing node accepted")
	}
}

func TestSimilarLigands(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	// Use one of the dataset's own ligands as the query: it must rank
	// itself first with similarity 1.
	res, err := e.Query(context.Background(), "SELECT smiles FROM ligands LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	probe := res.Rows[0][0].S
	hits, err := e.SimilarLigands(context.Background(), probe, 5, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no similarity hits")
	}
	if hits[0].Similarity != 1 || hits[0].SMILES != probe {
		t.Fatalf("query ligand not first: %+v", hits[0])
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Similarity > hits[i-1].Similarity {
			t.Fatal("hits not sorted by similarity")
		}
	}
	// Threshold trims the tail.
	strict, err := e.SimilarLigands(context.Background(), probe, 50, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range strict {
		if h.Similarity < 0.999 {
			t.Fatalf("threshold leak: %+v", h)
		}
	}
	// Garbage query structure errors.
	if _, err := e.SimilarLigands(context.Background(), "((((", 5, 0); err == nil {
		t.Fatal("invalid SMILES accepted")
	}
}

func TestEngineWithSyntheticTopology(t *testing.T) {
	// The scaling path: tree from RandomTopology with leaf-named
	// tree_nodes only (no protein data needed for navigation).
	tree, err := datagen.RandomTopology(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := store.Open("")
	defer db.Close()
	e, err := NewWithTree(db, tree, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	views, _, err := e.OpenSubtree(context.Background(), e.Root().Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != tree.Len() {
		t.Fatalf("views = %d, want %d", len(views), tree.Len())
	}
}

func TestQueryAdmissionGate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission = &admission.Config{MaxConcurrency: 1, MaxQueue: 0}
	e := buildEngine(t, cfg)
	if e.Limiter() == nil {
		t.Fatal("limiter not constructed")
	}

	// Saturate the single slot, then a second query must shed with a
	// typed rejection instead of queueing.
	release, err := e.Limiter().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Query(context.Background(), "SELECT COUNT(*) FROM proteins")
	if !admission.IsShed(err) {
		t.Fatalf("saturated query got %v, want admission rejection", err)
	}
	if e.Metrics.Counter("query.shed").Value() != 1 {
		t.Fatal("query.shed counter not incremented")
	}
	release()

	// With the slot free the same query runs.
	if _, err := e.Query(context.Background(), "SELECT COUNT(*) FROM proteins"); err != nil {
		t.Fatalf("query after release: %v", err)
	}
	// Drain stops admission; in-flight-free drain returns immediately.
	if err := e.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), "SELECT COUNT(*) FROM proteins"); err == nil {
		t.Fatal("query admitted after drain")
	}
}

func TestQueryStmtCacheBypassesAdmission(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueryCacheEntries = 8
	cfg.Admission = &admission.Config{MaxConcurrency: 1, MaxQueue: 0}
	e := buildEngine(t, cfg)
	const q = "SELECT COUNT(*) FROM ligands"
	if _, err := e.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// Saturate the limiter: the cached statement must still answer.
	release, err := e.Limiter().Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := e.Query(context.Background(), q); err != nil {
		t.Fatalf("stmt-cache hit shed by admission: %v", err)
	}
}
