package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"drugtree/internal/integrate"
	"drugtree/internal/query"
	"drugtree/internal/store"
)

// overlayQuery is the canonical overlay-answerable shape.
func overlayQuery(node string) string {
	return "SELECT COUNT(*), COUNT(affinity), SUM(affinity), AVG(affinity) " +
		"FROM activities WHERE WITHIN_SUBTREE(protein_id, '" + node + "')"
}

// overlayPlan runs the query under EXPLAIN ANALYZE and returns the
// annotated plan (EXPLAIN ANALYZE drops the rows; values are checked
// with the plain statement).
func overlayPlan(t *testing.T, e *Engine, node string) string {
	t.Helper()
	res, err := e.Query(context.Background(), "EXPLAIN ANALYZE "+overlayQuery(node))
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

// TestOverlayReadAnswersSubtreeAggregate proves the optimizer serves
// the clade-activity aggregate from the overlay (OverlayRead in the
// plan) and that the answer agrees with the scan path.
func TestOverlayReadAnswersSubtreeAggregate(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	if e.Overlay() == nil {
		t.Fatal("engine built without an activity overlay")
	}
	ctx := context.Background()
	for _, node := range []string{e.Root().Name, "DT00000"} {
		if plan := overlayPlan(t, e, node); !strings.Contains(plan, "OverlayRead") {
			t.Fatalf("overlay rewrite did not fire for %s:\n%s", node, plan)
		}
		res, err := e.Query(ctx, overlayQuery(node))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("global aggregate returned %d rows", len(res.Rows))
		}

		// The scan path must agree. COUNTs are exact; SUM differs only
		// by accumulation order (the overlay sum is correctly rounded,
		// the scan sum is sequential float64), so compare within an ulp
		// margin.
		stmt, err := query.Parse(overlayQuery(node))
		if err != nil {
			t.Fatal(err)
		}
		e.catalog.OverlayAggs = nil
		scan, err := e.sql.Run(ctx, stmt)
		e.catalog.OverlayAggs = e.overlay
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(scan.Plan, "OverlayRead") {
			t.Fatalf("overlay fired with no overlay wired:\n%s", scan.Plan)
		}
		ov, sc := res.Rows[0], scan.Rows[0]
		if ov[0] != sc[0] || ov[1] != sc[1] {
			t.Fatalf("counts disagree at %s: overlay %v scan %v", node, ov, sc)
		}
		for i := 2; i < 4; i++ {
			a, b := ov[i].AsFloat(), sc[i].AsFloat()
			if diff := math.Abs(a - b); diff > 1e-9*math.Max(math.Abs(a), 1) {
				t.Fatalf("agg %d disagrees at %s: overlay %g scan %g", i, node, a, b)
			}
		}
	}
}

// TestOverlayRequiresMatchingVersion proves staleness safety: an
// overlay pinned at an older version than the statement's snapshot
// falls back to the scan rather than serving stale aggregates.
func TestOverlayRequiresMatchingVersion(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	root := e.Root().Name

	// Wire a frozen (non-subscribing) overlay pinned at the current
	// version, then advance the table: the version mismatch must
	// disable the rewrite.
	pre := e.db.PinSnapshot()
	frozen, err := RebuildActivityOverlay(pre, e.Tree())
	pre.Release()
	if err != nil {
		t.Fatal(err)
	}
	e.catalog.OverlayAggs = frozen
	if err := e.db.CommitDeltas([]store.TableDelta{{
		Table: integrate.TableActivities,
		Inserts: []store.Row{{
			store.StringValue("DT00000"), store.StringValue("L999"),
			store.FloatValue(5.5), store.StringValue("ic50"),
		}},
	}}); err != nil {
		t.Fatal(err)
	}
	if plan := overlayPlan(t, e, root); strings.Contains(plan, "OverlayRead") {
		t.Fatalf("stale overlay served a newer snapshot:\n%s", plan)
	}

	// The live overlay saw the commit synchronously and serves again.
	e.catalog.OverlayAggs = e.overlay
	if plan := overlayPlan(t, e, root); !strings.Contains(plan, "OverlayRead") {
		t.Fatalf("live overlay did not catch up:\n%s", plan)
	}
}

// TestOverlayIncrementalMatchesRebuild is the byte-identity property
// T14 gates on: after a churn of delta commits, the incrementally
// maintained overlay must equal a from-scratch rebuild bit for bit —
// same Rows, same Count, same Float64bits of every node's Sum.
func TestOverlayIncrementalMatchesRebuild(t *testing.T) {
	e := buildEngine(t, DefaultConfig())
	db := e.DB()

	// Churn: rounds of deletes (oldest surviving ids) plus inserts,
	// committed as atomic deltas so the overlay advances one version
	// per round.
	for round := 0; round < 20; round++ {
		var ids []int64
		snap := db.PinSnapshot()
		tv, err := snap.View(integrate.TableActivities)
		if err != nil {
			t.Fatal(err)
		}
		tv.Scan(func(id int64, r store.Row) bool {
			ids = append(ids, id)
			return len(ids) < 3
		})
		snap.Release()
		delta := store.TableDelta{Table: integrate.TableActivities, DeleteIDs: ids}
		for i := 0; i < 5; i++ {
			delta.Inserts = append(delta.Inserts, store.Row{
				store.StringValue("DT000" + string(rune('0'+round%10)) + string(rune('0'+i))),
				store.StringValue("L1"),
				store.FloatValue(float64(round)*0.1 + float64(i)*1e-9),
				store.StringValue("kd"),
			})
		}
		if err := db.CommitDeltas([]store.TableDelta{delta}); err != nil {
			t.Fatal(err)
		}
	}

	snap := db.PinSnapshot()
	defer snap.Release()
	rebuilt, err := RebuildActivityOverlay(snap, e.Tree())
	if err != nil {
		t.Fatal(err)
	}
	live := e.Overlay()
	if lv, rv := live.Version(), rebuilt.Version(); lv != rv {
		t.Fatalf("live overlay at version %d, rebuild at %d", lv, rv)
	}
	if live.Nodes() != rebuilt.Nodes() {
		t.Fatalf("node counts differ: %d vs %d", live.Nodes(), rebuilt.Nodes())
	}
	for p := 0; p < live.Nodes(); p++ {
		a, b := live.Agg(p), rebuilt.Agg(p)
		if a.Rows != b.Rows || a.Count != b.Count ||
			math.Float64bits(a.Sum) != math.Float64bits(b.Sum) {
			t.Fatalf("node pre=%d diverged: incremental %+v rebuild %+v", p, a, b)
		}
	}
}
